// Experiment F4 (paper Fig. 4): the DPE three-step flow. Measures (a) model
// analysis (balance equations, fusion) vs graph size, (b) DSE quality —
// genetic front vs exhaustive ground truth — and cost vs graph size, and
// (c) deployment-spec (CSAR) emission throughput.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "bench/report.hpp"
#include "dpe/pipeline.hpp"

using namespace myrtus;

namespace {

void PrintDseQualityTable(bench::Report& report) {
  std::printf("=== Fig. 4: DPE pipeline — DSE front quality and cost ===\n");
  std::printf("%-8s | %-10s | %-12s | %-14s | %-12s\n", "actors", "method",
              "evaluations", "best latency", "front size");
  for (const int actors : {3, 5, 7}) {
    util::Rng gen(100 + static_cast<unsigned>(actors));
    dpe::DataflowGraph graph = dpe::RandomPipeline(actors, gen);
    dpe::KpiEstimator estimator(graph, dpe::HmpsocTargets());
    auto exhaustive = dpe::ExploreExhaustive(estimator, 2'000'000);
    if (exhaustive.ok() && !exhaustive->front.empty()) {
      std::printf("%-8d | %-10s | %-12d | %11.3f ms | %-12zu\n", actors,
                  "exhaustive", exhaustive->evaluated,
                  exhaustive->front.front().kpi.latency_s * 1e3,
                  exhaustive->front.size());
    }
    util::Rng rng(7);
    const dpe::DseResult ga = dpe::ExploreGenetic(estimator, rng, 48, 30);
    if (!ga.front.empty()) {
      std::printf("%-8d | %-10s | %-12d | %11.3f ms | %-12zu\n", actors,
                  "genetic", ga.evaluated, ga.front.front().kpi.latency_s * 1e3,
                  ga.front.size());
      if (actors == 7) {
        report.AddMetric("genetic_best_latency_ms_7_actors",
                         ga.front.front().kpi.latency_s * 1e3, "ms");
        report.AddMetric("genetic_front_size_7_actors",
                         static_cast<double>(ga.front.size()), "points",
                         /*higher_is_better=*/true);
      }
    }
  }
  // Larger graphs: genetic only.
  for (const int actors : {15, 30, 60}) {
    util::Rng gen(200 + static_cast<unsigned>(actors));
    dpe::DataflowGraph graph = dpe::RandomPipeline(actors, gen);
    dpe::KpiEstimator estimator(graph, dpe::HmpsocTargets());
    util::Rng rng(9);
    const dpe::DseResult ga = dpe::ExploreGenetic(estimator, rng, 48, 30);
    if (!ga.front.empty()) {
      std::printf("%-8d | %-10s | %-12d | %11.3f ms | %-12zu\n", actors,
                  "genetic", ga.evaluated, ga.front.front().kpi.latency_s * 1e3,
                  ga.front.size());
    }
  }
  std::printf("\n");
}

void BM_RepetitionVector(benchmark::State& state) {
  util::Rng gen(1);
  dpe::DataflowGraph graph =
      dpe::RandomPipeline(static_cast<int>(state.range(0)), gen);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph.RepetitionVector());
  }
}
BENCHMARK(BM_RepetitionVector)->Arg(10)->Arg(40)->Arg(160)->ArgNames({"actors"});

void BM_FusionPass(benchmark::State& state) {
  util::Rng gen(2);
  dpe::DataflowGraph graph =
      dpe::RandomPipeline(static_cast<int>(state.range(0)), gen);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph.FuseLinearChains());
  }
}
BENCHMARK(BM_FusionPass)->Arg(10)->Arg(40)->Arg(160)->ArgNames({"actors"});

void BM_GeneticDse(benchmark::State& state) {
  util::Rng gen(3);
  dpe::DataflowGraph graph =
      dpe::RandomPipeline(static_cast<int>(state.range(0)), gen);
  dpe::KpiEstimator estimator(graph, dpe::HmpsocTargets());
  util::Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dpe::ExploreGenetic(estimator, rng, 32, 10));
  }
  state.SetLabel("pop=32,gen=10");
}
BENCHMARK(BM_GeneticDse)->Arg(10)->Arg(30)->ArgNames({"actors"})->Unit(benchmark::kMillisecond);

void BM_FullPipeline(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    dpe::DpeInput input;
    input.app_name = "bench-app";
    util::Rng gen(static_cast<std::uint64_t>(state.iterations()));
    input.graph = dpe::RandomPipeline(static_cast<int>(state.range(0)), gen);
    dpe::DpePipeline pipeline(5);
    state.ResumeTiming();
    benchmark::DoNotOptimize(pipeline.Run(input));
  }
}
BENCHMARK(BM_FullPipeline)->Arg(6)->Arg(20)->ArgNames({"actors"})->Unit(benchmark::kMillisecond);

void BM_CsarPackUnpack(benchmark::State& state) {
  dpe::DpeInput input;
  input.app_name = "bench-app";
  util::Rng gen(11);
  input.graph = dpe::RandomPipeline(12, gen);
  dpe::DpePipeline pipeline(5);
  auto out = pipeline.Run(input);
  util::MustOk(out);
  const std::string wire = out->package.Pack();
  for (auto _ : state) {
    auto unpacked = tosca::CsarPackage::Unpack(wire);
    util::MustOk(unpacked);
    benchmark::DoNotOptimize(unpacked->Pack());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(wire.size()));
}
BENCHMARK(BM_CsarPackUnpack);

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = bench::StripValueFlag(argc, argv, "--out=", "");
  bench::Report report("F4_dpe_pipeline", "dpe_pipeline");
  report.set_seed(7);
  PrintDseQualityTable(report);
  util::MustOk(report.Write(out_path));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
