// Experiment F2 (paper Fig. 2): the layered continuum. Sweeps task profiles
// (compute demand × input size × deadline class) and reports, per profile,
// the end-to-end latency and energy of placing the task at each layer —
// expected shape: latency-critical small tasks win at the edge, medium
// analytics at the fog, heavy batch in the cloud, with crossovers as compute
// demand grows.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "bench/report.hpp"
#include "continuum/infrastructure.hpp"

using namespace myrtus;

namespace {

struct LayerOutcome {
  double latency_ms;
  double energy_mj;
};

/// Analytical end-to-end cost of running (cycles, bytes) on a layer's
/// representative node, including the network path from the source edge node.
LayerOutcome EvaluateAt(const continuum::Infrastructure& infra,
                        continuum::ComputeNode* node, std::uint64_t cycles,
                        std::uint64_t bytes) {
  continuum::TaskDemand demand;
  demand.cycles = cycles;
  demand.bytes_in = bytes;
  demand.parallel_fraction = 0.8;
  const std::size_t device = node->BestDeviceFor(demand);
  const continuum::ExecutionEstimate est =
      node->devices()[device].Estimate(demand);

  double network_ms = 0.0;
  double network_mj = 0.0;
  if (node->id() != "edge-0") {
    auto route = infra.topology.FindRoute("edge-0", node->id());
    if (route.ok()) {
      network_ms = route->propagation.ToMillisF() +
                   static_cast<double>(bytes) * 8.0 /
                       route->min_bandwidth_bps * 1e3;
      network_mj = static_cast<double>(bytes) * 20e-9 * 1e3;  // 20 nJ/byte radio+NIC
    }
  }
  return {est.latency.ToMillisF() + network_ms, est.energy_mj + network_mj};
}

void PrintCrossoverTable(bench::Report& report) {
  sim::Engine engine;
  continuum::Infrastructure infra = continuum::BuildInfrastructure(engine, {});
  continuum::ComputeNode* edge = infra.FindNode("edge-0");
  continuum::ComputeNode* fog = infra.FindNode("fmdc-0");
  continuum::ComputeNode* cloud = infra.FindNode("cloud-0");

  std::printf("=== Fig. 2: placement crossover across the continuum ===\n");
  std::printf("(end-to-end ms / mJ, source at edge-0; * marks the winner)\n");
  std::printf("%-12s %-10s | %-18s %-18s %-18s | winner\n", "cycles", "input",
              "edge", "fog (FMDC)", "cloud");
  for (const std::uint64_t cycles :
       {10'000'000ULL, 100'000'000ULL, 1'000'000'000ULL, 10'000'000'000ULL,
        100'000'000'000ULL}) {
    for (const std::uint64_t bytes : {10'000ULL, 1'000'000ULL, 100'000'000ULL}) {
      const LayerOutcome e = EvaluateAt(infra, edge, cycles, bytes);
      const LayerOutcome f = EvaluateAt(infra, fog, cycles, bytes);
      const LayerOutcome c = EvaluateAt(infra, cloud, cycles, bytes);
      const char* winner = "edge";
      double best = e.latency_ms;
      if (f.latency_ms < best) {
        best = f.latency_ms;
        winner = "fog";
      }
      if (c.latency_ms < best) winner = "cloud";
      std::printf("%-12llu %-10llu | %8.2f / %-8.1f %8.2f / %-8.1f %8.2f / %-8.1f | %s\n",
                  static_cast<unsigned long long>(cycles),
                  static_cast<unsigned long long>(bytes), e.latency_ms,
                  e.energy_mj, f.latency_ms, f.energy_mj, c.latency_ms,
                  c.energy_mj, winner);
      // The mid-sweep cell is the crossover region the figure cares about:
      // the analytical model is deterministic, so these gate the diff.
      if (cycles == 1'000'000'000ULL && bytes == 1'000'000ULL) {
        report.AddMetric("edge_latency_ms_1e9_1mb", e.latency_ms, "ms");
        report.AddMetric("fog_latency_ms_1e9_1mb", f.latency_ms, "ms");
        report.AddMetric("cloud_latency_ms_1e9_1mb", c.latency_ms, "ms");
        report.AddMetric("edge_energy_mj_1e9_1mb", e.energy_mj, "mJ");
      }
    }
  }
  std::printf("\n");
}

void BM_PlacementEvaluation(benchmark::State& state) {
  sim::Engine engine;
  continuum::Infrastructure infra = continuum::BuildInfrastructure(engine, {});
  continuum::ComputeNode* node =
      infra.FindNode(state.range(0) == 0 ? "edge-0"
                                         : (state.range(0) == 1 ? "fmdc-0"
                                                                : "cloud-0"));
  const auto cycles = static_cast<std::uint64_t>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvaluateAt(infra, node, cycles, 1'000'000));
  }
  state.SetLabel(state.range(0) == 0 ? "edge" : (state.range(0) == 1 ? "fog" : "cloud"));
}
BENCHMARK(BM_PlacementEvaluation)
    ->ArgsProduct({{0, 1, 2}, {100'000'000, 10'000'000'000}})
    ->ArgNames({"layer", "cycles"});

void BM_InfrastructureBuild(benchmark::State& state) {
  const int scale = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    continuum::InfrastructureSpec spec;
    spec.edge_hmpsoc = 2 * scale;
    spec.edge_riscv = 2 * scale;
    spec.edge_multicore = 2 * scale;
    spec.gateways = scale;
    spec.fmdcs = scale;
    benchmark::DoNotOptimize(continuum::BuildInfrastructure(engine, spec));
  }
}
BENCHMARK(BM_InfrastructureBuild)->Arg(1)->Arg(4)->Arg(16)->ArgNames({"scale"});

/// Simulated execution (not just the analytical estimate): queueing shows up
/// under concurrent load at a single edge node vs the wide cloud.
void BM_QueueingUnderLoad(benchmark::State& state) {
  const bool use_cloud = state.range(0) == 1;
  for (auto _ : state) {
    sim::Engine engine;
    continuum::Infrastructure infra = continuum::BuildInfrastructure(engine, {});
    continuum::ComputeNode* node =
        infra.FindNode(use_cloud ? "cloud-0" : "edge-0");
    continuum::TaskDemand demand;
    demand.cycles = 50'000'000;
    demand.parallel_fraction = 0.5;
    double total_wait_ms = 0.0;
    int completed = 0;
    for (int i = 0; i < 64; ++i) {
      node->Submit(demand, 0, [&](const continuum::TaskReport& r) {
        total_wait_ms += r.queued.ToMillisF();
        ++completed;
      });
    }
    engine.Run();
    benchmark::DoNotOptimize(completed);
    state.counters["mean_queue_ms"] = total_wait_ms / completed;
  }
  state.SetLabel(use_cloud ? "cloud" : "edge");
}
BENCHMARK(BM_QueueingUnderLoad)->Arg(0)->Arg(1)->ArgNames({"cloud"});

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = bench::StripValueFlag(argc, argv, "--out=", "");
  bench::Report report("F2_layer_crossover", "layer_crossover");
  PrintCrossoverTable(report);
  util::MustOk(report.Write(out_path));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
