// Experiment A3 ([29]/[30] mechanism the paper adopts): operating-point-aware
// runtime adaptation vs fixed configurations. Sweeps offered load and
// compares energy and deadline violations under (a) always-fastest point,
// (b) always-eco point, and (c) the NodeManager's utilization-driven
// adaptation — expected shape: adaptive ~ matches fastest's violations at
// high load while approaching eco's energy at low load.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "bench/report.hpp"
#include "continuum/infrastructure.hpp"
#include "mirto/managers.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

using namespace myrtus;

namespace {

enum class Policy { kFastest, kEco, kAdaptive };

struct Outcome {
  double energy_mj = 0;
  double violation_rate = 0;
  double p95_ms = 0;
};

Outcome RunLoad(Policy policy, double load_fraction, std::uint64_t seed) {
  sim::Engine engine;
  continuum::ComputeNode node(engine, "edge", continuum::Layer::kEdge,
                              "multicore", security::SecurityLevel::kLow, 2048);
  node.AddDevice(continuum::MakeBigCore("edge/big"));
  continuum::Device& device = node.mutable_device(0);
  switch (policy) {
    case Policy::kFastest: util::MustOk(device.SetOperatingPoint(0)); break;
    case Policy::kEco:
      util::MustOk(device.SetOperatingPoint(device.operating_points().size() - 1));
      break;
    case Policy::kAdaptive: util::MustOk(device.SetOperatingPoint(1)); break;
  }
  mirto::NodeManager manager(0.7, 0.3);
  if (policy == Policy::kAdaptive) {
    engine.SchedulePeriodic(sim::SimTime::Millis(100), [&] {
      for (const auto& decision : manager.PlanNode(node)) {
        util::MustOk(manager.Execute(node, decision));
      }
    });
  }

  // Tasks: 20ms service at the fastest point; deadline 60ms; Poisson load.
  const double fastest_rate = 1.8e9 * 1.6 / 57.6e6;  // tasks/s at point 0
  const double arrival_rate = load_fraction * fastest_rate;
  util::Rng rng(seed, "a3");
  util::Samples latency_ms;
  std::uint64_t violations = 0;
  std::uint64_t completed = 0;

  std::function<void()> schedule_next = [&] {
    engine.ScheduleAfter(
        sim::SimTime::FromSeconds(rng.NextExponential(arrival_rate)), [&] {
          if (engine.Now() >= sim::SimTime::Seconds(20)) return;
          continuum::TaskDemand demand;
          demand.cycles = 57'600'000;
          const sim::SimTime start = engine.Now();
          node.Submit(demand, 0, [&, start](const continuum::TaskReport&) {
            const double ms = (engine.Now() - start).ToMillisF();
            latency_ms.Add(ms);
            ++completed;
            if (ms > 60.0) ++violations;
          });
          schedule_next();
        });
  };
  schedule_next();
  engine.RunUntil(sim::SimTime::Seconds(25));

  Outcome out;
  out.energy_mj = node.total_energy_mj() + node.IdleEnergyMj(engine.Now());
  out.violation_rate =
      completed == 0 ? 0.0 : static_cast<double>(violations) / completed;
  out.p95_ms = latency_ms.p95();
  return out;
}

void PrintTable(bench::Report& report) {
  std::printf("=== A3: operating-point policies vs offered load ===\n");
  std::printf("(20s of Poisson tasks; energy includes idle draw)\n");
  std::printf("%-6s | %-28s | %-28s | %-28s\n", "load", "fastest (mJ/viol%/p95)",
              "eco (mJ/viol%/p95)", "adaptive (mJ/viol%/p95)");
  for (const double load : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const Outcome fast = RunLoad(Policy::kFastest, load, 1);
    const Outcome eco = RunLoad(Policy::kEco, load, 1);
    const Outcome adaptive = RunLoad(Policy::kAdaptive, load, 1);
    std::printf("%-6.1f | %9.0f / %5.1f%% / %6.1f | %9.0f / %5.1f%% / %6.1f | "
                "%9.0f / %5.1f%% / %6.1f\n",
                load, fast.energy_mj, fast.violation_rate * 100, fast.p95_ms,
                eco.energy_mj, eco.violation_rate * 100, eco.p95_ms,
                adaptive.energy_mj, adaptive.violation_rate * 100,
                adaptive.p95_ms);
    if (load == 0.5) {
      report.AddMetric("adaptive_energy_mj_load50", adaptive.energy_mj, "mJ");
      report.AddMetric("adaptive_violation_rate_load50",
                       adaptive.violation_rate, "fraction");
      report.AddMetric("adaptive_p95_ms_load50", adaptive.p95_ms, "ms");
    }
  }
  std::printf("\n");
}

void BM_AdaptiveRun(benchmark::State& state) {
  const double load = static_cast<double>(state.range(0)) / 10.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunLoad(Policy::kAdaptive, load, 2));
  }
}
BENCHMARK(BM_AdaptiveRun)->Arg(3)->Arg(8)->ArgNames({"load_x10"})->Unit(benchmark::kMillisecond);

void BM_OperatingPointSwitch(benchmark::State& state) {
  continuum::Device device = continuum::MakeFpgaAccelerator("fpga");
  std::size_t p = 0;
  for (auto _ : state) {
    p = (p + 1) % device.operating_points().size();
    benchmark::DoNotOptimize(device.SetOperatingPoint(p));
  }
  state.counters["reconfigs"] = static_cast<double>(device.reconfigurations());
}
BENCHMARK(BM_OperatingPointSwitch);

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = bench::StripValueFlag(argc, argv, "--out=", "");
  bench::Report report("A3_operating_points", "operating_points");
  report.set_seed(1);
  report.set_sim_ms(25'000.0);
  PrintTable(report);
  util::MustOk(report.Write(out_path));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
