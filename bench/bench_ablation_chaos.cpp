// Experiment A6: fault-injection ablation. The continuum keeps operating
// through lossy links and node churn only because every control-plane RPC
// rides Network::CallWithRetry and the scheduler reconciles displaced pods.
// This bench sweeps per-hop loss × retry policy (commit rate and latency of
// the Raft KB, with the retry layer on vs off) and node-kill chaos with the
// reconcile loop on vs off (placement success) — the "with/without"
// comparison rows the robustness layer is judged by.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "bench/report.hpp"
#include "continuum/infrastructure.hpp"
#include "kb/cluster.hpp"
#include "sched/controller.hpp"
#include "sim/chaos.hpp"
#include "util/stats.hpp"

using namespace myrtus;

namespace {

int g_writes_per_cell = 30;
sim::SimTime g_chaos_horizon = sim::SimTime::Seconds(20);

struct LossyRaftWorld {
  sim::Engine engine;
  std::unique_ptr<net::Network> network;
  std::unique_ptr<kb::KbCluster> cluster;

  LossyRaftWorld(double loss_rate, bool with_retry, std::uint64_t seed = 23) {
    net::Topology topo;
    std::vector<net::HostId> hosts = {"kb-0", "kb-1", "kb-2"};
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      for (std::size_t j = i + 1; j < hosts.size(); ++j) {
        topo.AddBidirectional(hosts[i], hosts[j], sim::SimTime::Millis(2), 1e9,
                              loss_rate);
      }
    }
    for (const auto& h : hosts) {
      topo.AddBidirectional("client", h, sim::SimTime::Millis(2), 1e9,
                            loss_rate);
    }
    network = std::make_unique<net::Network>(engine, std::move(topo), seed);
    kb::RaftConfig config;
    if (!with_retry) config.rpc_retry = net::RetryPolicy::None();
    cluster = std::make_unique<kb::KbCluster>(*network, hosts, seed, config);
    cluster->Start();
    engine.RunUntil(sim::SimTime::Seconds(3));
  }
};

void PrintLossSweepTable(bench::Report& report) {
  std::printf(
      "=== A6: Raft commit under per-hop loss, CallWithRetry on vs off "
      "(3 replicas, 2ms links, %d writes/cell) ===\n",
      g_writes_per_cell);
  std::printf("%-8s | %-9s | %-12s | %-10s | %-10s | %-10s\n", "loss",
              "retry", "committed", "p50 (ms)", "p95 (ms)", "rpc retries");
  for (const double loss : {0.0, 0.05, 0.10, 0.20}) {
    for (const bool with_retry : {false, true}) {
      LossyRaftWorld world(loss, with_retry);
      if (world.cluster->LeaderIndex() < 0) {
        std::printf("%-8.2f | %-9s | %12s | %10s | %10s | %10s\n", loss,
                    with_retry ? "on" : "off", "no leader", "-", "-", "-");
        continue;
      }
      kb::KbClient client(*world.network, *world.cluster, "client");
      // "off" means no transport-level retries anywhere: Raft peer RPCs
      // (set in LossyRaftWorld) and the client's legs fall back to single
      // legacy attempts with long timeouts.
      if (!with_retry) client.set_rpc_retry(net::RetryPolicy::None());
      util::Samples latency_ms;
      int committed = 0;
      for (int i = 0; i < g_writes_per_cell; ++i) {
        const sim::SimTime start = world.engine.Now();
        bool done = false;
        bool ok = false;
        client.Put("/bench/" + std::to_string(i), util::Json(i),
                   [&](util::Status s) {
                     done = true;
                     ok = s.ok();
                   });
        while (!done &&
               world.engine.Now() < start + sim::SimTime::Seconds(15)) {
          world.engine.RunUntil(world.engine.Now() + sim::SimTime::Millis(1));
        }
        if (ok) {
          ++committed;
          latency_ms.Add((world.engine.Now() - start).ToMillisF());
        }
      }
      std::printf("%-8.2f | %-9s | %5d /%5d | %10.1f | %10.1f | %10llu\n",
                  loss, with_retry ? "on" : "off", committed,
                  g_writes_per_cell, latency_ms.p50(), latency_ms.p95(),
                  static_cast<unsigned long long>(world.network->retries()));
      // The headline robustness cell: sim-time results are seed-deterministic,
      // so they gate the regression diff.
      if (loss == 0.10 && with_retry) {
        report.AddMetric("raft_commit_rate_loss10_retry",
                         g_writes_per_cell > 0
                             ? static_cast<double>(committed) /
                                   g_writes_per_cell
                             : 0.0,
                         "fraction", /*higher_is_better=*/true);
        report.AddMetric("raft_commit_p95_ms_loss10_retry", latency_ms.p95(),
                         "ms");
      }
    }
  }
  std::printf(
      "(loss is i.i.d. per hop; each RPC crosses the hop twice, so one\n"
      " attempt at loss 0.10 fails ~19%% of the time)\n\n");
}

void PrintNodeChurnTable(bench::Report& report) {
  std::printf(
      "=== A6b: placement success under node-kill chaos, reconcile loop "
      "on vs off (6 replicas, 3 flapping nodes, %.0fs horizon) ===\n",
      g_chaos_horizon.ToSecondsF());
  std::printf("%-10s | %-10s | %-12s | %-12s | %-11s\n", "chaos", "reconcile",
              "mean ready", "final ready", "reschedules");
  for (const bool chaos_on : {false, true}) {
    for (const bool reconcile_on : {false, true}) {
      sim::Engine engine;
      continuum::Infrastructure infra =
          continuum::BuildInfrastructure(engine, {});
      sched::Cluster cluster(engine, sched::Scheduler::Default());
      for (auto& n : infra.nodes) cluster.AddNode(n.get());
      sched::Deployment dep;
      dep.name = "svc";
      dep.pod_template.cpu_request = 0.25;
      dep.replicas = 6;
      cluster.ApplyDeployment(dep);
      cluster.Reconcile();
      if (reconcile_on) cluster.StartReconcileLoop(sim::SimTime::Millis(100));

      sim::ChaosController chaos(engine, 31);
      if (chaos_on) {
        for (const char* id : {"edge-0", "edge-1", "fmdc-0"}) {
          continuum::ComputeNode* node = infra.FindNode(id);
          chaos.RegisterTarget(
              id, [node] { node->SetUp(false); },
              [node] { node->SetUp(true); });
          chaos.ScheduleRandomFaults(id, sim::SimTime::Millis(500),
                                     g_chaos_horizon, sim::SimTime::Seconds(3),
                                     sim::SimTime::Seconds(2));
        }
      }
      // Placement success = replicas actually serving, i.e. bound to a node
      // that is up. (DeploymentReadyReplicas alone goes stale without the
      // reconcile loop: nothing re-phases pods stranded on dead nodes.)
      const auto healthy_replicas = [&] {
        int healthy = 0;
        for (const auto& n : infra.nodes) {
          if (!n->up()) continue;
          for (const sched::PodView& p : cluster.PodsOnNode(n->id())) {
            if (p.spec().name.rfind("svc", 0) == 0) ++healthy;
          }
        }
        return healthy;
      };
      double healthy_sum = 0.0;
      int samples = 0;
      while (engine.Now() < g_chaos_horizon) {
        engine.RunUntil(engine.Now() + sim::SimTime::Millis(200));
        healthy_sum += healthy_replicas();
        ++samples;
      }
      const double mean_healthy = samples > 0 ? healthy_sum / samples : 0.0;
      if (chaos_on && reconcile_on) {
        report.AddMetric("mean_healthy_replicas_chaos", mean_healthy,
                         "replicas", /*higher_is_better=*/true);
        report.AddMetric("final_healthy_replicas_chaos",
                         static_cast<double>(healthy_replicas()), "replicas",
                         /*higher_is_better=*/true);
      }
      std::printf("%-10s | %-10s | %6.2f /%3d | %7d /%3d | %11llu\n",
                  chaos_on ? "on" : "off", reconcile_on ? "on" : "off",
                  mean_healthy, dep.replicas, healthy_replicas(),
                  dep.replicas,
                  static_cast<unsigned long long>(cluster.reschedules()));
      cluster.StopReconcileLoop();
    }
  }
  std::printf(
      "(mean healthy replicas sampled every 200ms; without reconciliation,\n"
      " pods on killed nodes stay lost for the rest of the run)\n\n");
}

void BM_ChaosRandomSchedule(benchmark::State& state) {
  // Host-side cost of drawing and replaying one seeded fault timeline.
  const auto targets = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    sim::ChaosController chaos(engine, 5);
    for (int i = 0; i < targets; ++i) {
      chaos.RegisterTarget("t" + std::to_string(i), [] {}, [] {});
      chaos.ScheduleRandomFaults("t" + std::to_string(i), sim::SimTime::Zero(),
                                 sim::SimTime::Seconds(60),
                                 sim::SimTime::Seconds(1),
                                 sim::SimTime::Millis(200));
    }
    engine.Run();
    benchmark::DoNotOptimize(chaos.injections());
  }
}
BENCHMARK(BM_ChaosRandomSchedule)->Arg(1)->Arg(8)->Arg(64)->ArgNames({"targets"});

void BM_CallWithRetryLossyLink(benchmark::State& state) {
  // Wall cost of one retried RPC over a 25%-lossy hop.
  sim::Engine engine;
  net::Topology topo;
  topo.AddBidirectional("a", "b", sim::SimTime::Millis(1), 1e9, 0.25);
  net::Network network(engine, std::move(topo), 13);
  network.RegisterRpc("b", "echo",
                      [](const net::HostId&, const util::Json& req)
                          -> util::StatusOr<util::Json> { return req; });
  net::RetryPolicy policy;
  policy.max_attempts = 8;
  policy.initial_backoff = sim::SimTime::Millis(10);
  policy.attempt_timeout = sim::SimTime::Millis(50);
  int i = 0;
  for (auto _ : state) {
    bool done = false;
    network.CallWithRetry("a", "b", "echo", util::Json(++i),
                          [&](util::StatusOr<util::Json>) { done = true; },
                          policy);
    while (!done) {
      engine.RunUntil(engine.Now() + sim::SimTime::Millis(5));
    }
    benchmark::DoNotOptimize(done);
  }
}
BENCHMARK(BM_CallWithRetryLossyLink);

}  // namespace

int main(int argc, char** argv) {
  // `--quick` keeps CI smoke runs to a few simulated seconds; strip it
  // before benchmark::Initialize, which rejects unknown flags.
  const bool quick = bench::StripFlag(argc, argv, "--quick");
  if (quick) {
    g_writes_per_cell = 4;
    g_chaos_horizon = sim::SimTime::Seconds(5);
  }
  const std::string out_path = bench::StripValueFlag(argc, argv, "--out=", "");
  bench::Report report("A6_chaos_ablation", "chaos");
  report.set_mode(quick ? "quick" : "full");
  report.set_seed(23);
  report.set_sim_ms(g_chaos_horizon.ToMillisF());
  PrintLossSweepTable(report);
  PrintNodeChurnTable(report);
  util::MustOk(report.Write(out_path));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
