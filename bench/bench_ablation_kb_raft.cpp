// Experiment A2: the consistency tax of the distributed Knowledge Base. The
// paper chooses etcd (strongly consistent, Raft-replicated); this ablation
// quantifies commit latency and throughput vs cluster size and compares
// against a single-node (unreplicated) store — expected shape: latency grows
// with cluster size (more replication RTTs), and 1-node is the floor.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "bench/report.hpp"
#include "kb/cluster.hpp"
#include "util/stats.hpp"

using namespace myrtus;

namespace {

struct RaftWorld {
  sim::Engine engine;
  std::unique_ptr<net::Network> network;
  std::unique_ptr<kb::KbCluster> cluster;

  explicit RaftWorld(std::size_t replicas, sim::SimTime link_latency) {
    net::Topology topo;
    std::vector<net::HostId> hosts;
    for (std::size_t i = 0; i < replicas; ++i) {
      hosts.push_back("kb-" + std::to_string(i));
    }
    for (std::size_t i = 0; i < replicas; ++i) {
      for (std::size_t j = i + 1; j < replicas; ++j) {
        topo.AddBidirectional(hosts[i], hosts[j], link_latency, 1e9);
      }
    }
    for (const auto& h : hosts) {
      topo.AddBidirectional("client", h, link_latency, 1e9);
    }
    network = std::make_unique<net::Network>(engine, std::move(topo), 17);
    cluster = std::make_unique<kb::KbCluster>(*network, hosts, 17);
    cluster->Start();
    engine.RunUntil(sim::SimTime::Seconds(2));
  }
};

/// Measures commit latency (simulated) of sequential client writes.
util::Samples MeasureCommitLatency(std::size_t replicas, int writes) {
  RaftWorld world(replicas, sim::SimTime::Millis(2));
  kb::KbClient client(*world.network, *world.cluster, "client");
  util::Samples latency_ms;
  for (int i = 0; i < writes; ++i) {
    const sim::SimTime start = world.engine.Now();
    bool done = false;
    client.Put("/bench/" + std::to_string(i), util::Json(i),
               [&](util::Status s) { done = s.ok(); });
    while (!done && world.engine.Now() < start + sim::SimTime::Seconds(10)) {
      world.engine.RunUntil(world.engine.Now() + sim::SimTime::Millis(1));
    }
    if (done) latency_ms.Add((world.engine.Now() - start).ToMillisF());
  }
  return latency_ms;
}

void PrintLatencyTable(bench::Report& report) {
  std::printf("=== A2: KB commit latency vs replication factor (2ms links) ===\n");
  std::printf("%-10s | %-10s | %-10s | %-10s\n", "replicas", "p50 (ms)",
              "p95 (ms)", "writes/s*");
  for (const std::size_t n : {1u, 3u, 5u, 7u}) {
    util::Samples lat = MeasureCommitLatency(n, 60);
    const double throughput = lat.p50() > 0 ? 1000.0 / lat.p50() : 0.0;
    std::printf("%-10zu | %10.2f | %10.2f | %10.1f\n", n, lat.p50(), lat.p95(),
                throughput);
    if (n == 3u) {
      report.AddMetric("commit_p50_ms_3_replicas", lat.p50(), "ms");
      report.AddMetric("commit_p95_ms_3_replicas", lat.p95(), "ms");
    }
  }
  std::printf("(*sequential closed-loop; simulated time)\n\n");
}

void BM_RaftCommit(benchmark::State& state) {
  // Wall-clock cost of simulating one replicated commit.
  const auto replicas = static_cast<std::size_t>(state.range(0));
  RaftWorld world(replicas, sim::SimTime::Millis(2));
  kb::KbClient client(*world.network, *world.cluster, "client");
  int i = 0;
  for (auto _ : state) {
    bool done = false;
    ++i;
    client.Put("/k/" + std::to_string(i), util::Json(i),
               [&](util::Status s) { done = s.ok(); });
    while (!done) {
      world.engine.RunUntil(world.engine.Now() + sim::SimTime::Millis(5));
    }
    benchmark::DoNotOptimize(done);
  }
}
BENCHMARK(BM_RaftCommit)->Arg(1)->Arg(3)->Arg(5)->ArgNames({"replicas"});

void BM_LocalStorePut(benchmark::State& state) {
  // The unreplicated floor: a bare MVCC store mutation.
  kb::Store store;
  int i = 0;
  for (auto _ : state) {
    ++i;
    benchmark::DoNotOptimize(store.Put("/k/" + std::to_string(i % 1024),
                                       util::Json(i)));
  }
}
BENCHMARK(BM_LocalStorePut);

void BM_WatchFanout(benchmark::State& state) {
  kb::Store store;
  const int watchers = static_cast<int>(state.range(0));
  std::uint64_t events = 0;
  for (int i = 0; i < watchers; ++i) {
    // LINT: deferred-capture-ok(default) -- watchers only fire inside the Put
    // loop below; the store and the counter die with this frame together
    store.Watch("/nodes/", [&](const kb::WatchEvent&) { ++events; });
  }
  int i = 0;
  for (auto _ : state) {
    ++i;
    store.Put("/nodes/n" + std::to_string(i % 64), util::Json(i));
  }
  benchmark::DoNotOptimize(events);
  state.counters["events"] = static_cast<double>(events);
}
BENCHMARK(BM_WatchFanout)->Arg(1)->Arg(16)->Arg(128)->ArgNames({"watchers"});

void BM_RangeScan(benchmark::State& state) {
  kb::Store store;
  for (int i = 0; i < 4096; ++i) {
    store.Put("/registry/nodes/n" + std::to_string(i), util::Json(i));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Range("/registry/nodes/"));
  }
}
BENCHMARK(BM_RangeScan);

void PrintFailoverTable(bench::Report& report) {
  std::printf("=== A2b: leader failover downtime (5 replicas, 2ms links) ===\n");
  RaftWorld world(5, sim::SimTime::Millis(2));
  const int leader = world.cluster->LeaderIndex();
  if (leader < 0) {
    std::printf("no leader elected\n\n");
    return;
  }
  world.cluster->Crash(static_cast<std::size_t>(leader));
  const sim::SimTime crashed_at = world.engine.Now();
  while (world.cluster->LeaderIndex() < 0 &&
         world.engine.Now() < crashed_at + sim::SimTime::Seconds(30)) {
    world.engine.RunUntil(world.engine.Now() + sim::SimTime::Millis(10));
  }
  const double failover_ms = (world.engine.Now() - crashed_at).ToMillisF();
  report.AddMetric("leader_failover_ms_5_replicas", failover_ms, "ms");
  std::printf("new leader after %.1f ms (election timeout 150-300ms)\n\n",
              failover_ms);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = bench::StripValueFlag(argc, argv, "--out=", "");
  bench::Report report("A2_kb_raft_ablation", "kb_raft");
  report.set_seed(17);
  PrintLatencyTable(report);
  PrintFailoverTable(report);
  util::MustOk(report.Write(out_path));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
