// Shared BENCH_*.json artifact writer: every bench serializes its headline
// numbers through this one schema so runs are comparable across commits and
// machines. The schema is versioned (kBenchSchemaVersion) and diffed by
// tools/benchdiff, which exits nonzero when a gated metric regresses past its
// threshold — the artifact IS the regression gate, the printed tables are
// for humans.
//
// Schema (myrtus.bench.v1):
//   {
//     "schema_version": 1,
//     "experiment": "A7_parallel_ablation",   // experiment index name
//     "bench": "parallel",                    // artifact short name
//     "mode": "full" | "quick",
//     "seed": 1,
//     "workers": 1,                           // util::ParallelWorkers()
//     "git_sha": "<MYRTUS_GIT_SHA env or unknown>",
//     "wall_ms": 123.4,                       // construction -> write
//     "sim_ms": 456.7,                        // simulated time covered (0 = n/a)
//     "metrics": { "<name>": { "value": 1.0, "unit": "ms",
//                              "higher_is_better": false, "gate": true } },
//     "extra": { ... }                        // free-form, never diffed
//   }
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "util/json.hpp"
#include "util/status.hpp"

namespace myrtus::bench {

inline constexpr int kBenchSchemaVersion = 1;

/// The commit under test: $MYRTUS_GIT_SHA when set (CI exports it), else
/// "unknown". Never shells out — benches must run without git present.
std::string GitSha();

/// Strips `flag` (exact match, e.g. "--quick") from argv; returns whether it
/// was present. Call before benchmark::Initialize, which rejects unknown flags.
bool StripFlag(int& argc, char** argv, std::string_view flag);

/// Strips `prefix`-style value flags (e.g. "--out=") from argv; returns the
/// value of the last occurrence, or `fallback` when absent.
std::string StripValueFlag(int& argc, char** argv, std::string_view prefix,
                           std::string fallback);

/// One run's artifact. Construct early (wall_ms counts from construction),
/// add metrics as the experiment produces them, Write() at the end.
class Report {
 public:
  /// `experiment` names the experiment-index row (e.g. "F3_mirto_loop");
  /// `bench` is the artifact short name — the default output file is
  /// BENCH_<bench>.json in the working directory.
  Report(std::string experiment, std::string bench);

  void set_mode(std::string mode) { mode_ = std::move(mode); }
  void set_seed(std::uint64_t seed) { seed_ = seed; }
  /// Simulated time the experiment covered; 0 for pure wall-clock benches.
  void set_sim_ms(double sim_ms) { sim_ms_ = sim_ms; }

  /// Adds one metric row. `gate` metrics are compared by benchdiff;
  /// non-gated ones are informational (timings that vary across hardware).
  void AddMetric(const std::string& name, double value, std::string unit,
                 bool higher_is_better = false, bool gate = true);
  /// Attaches free-form context under "extra" (never diffed).
  void SetExtra(const std::string& key, util::Json value);

  [[nodiscard]] std::string default_path() const {
    return "BENCH_" + bench_ + ".json";
  }
  [[nodiscard]] util::Json ToJson() const;
  /// Serializes to `path` (empty = default_path()). Prints the destination
  /// so CI logs show where the artifact landed.
  [[nodiscard]] util::Status Write(const std::string& path = "") const;

 private:
  std::string experiment_;
  std::string bench_;
  std::string mode_ = "full";
  std::uint64_t seed_ = 0;
  double sim_ms_ = 0.0;
  std::chrono::steady_clock::time_point started_;
  util::Json metrics_ = util::Json::MakeObject();
  util::Json extra_ = util::Json::MakeObject();
};

}  // namespace myrtus::bench
