#include "bench/report.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "util/parallel.hpp"

namespace myrtus::bench {

std::string GitSha() {
  const char* sha = std::getenv("MYRTUS_GIT_SHA");
  return (sha != nullptr && sha[0] != '\0') ? std::string(sha) : "unknown";
}

bool StripFlag(int& argc, char** argv, std::string_view flag) {
  bool found = false;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) {
      found = true;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  return found;
}

std::string StripValueFlag(int& argc, char** argv, std::string_view prefix,
                           std::string fallback) {
  std::string value = std::move(fallback);
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.data(), prefix.size()) == 0) {
      value.assign(argv[i] + prefix.size());
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  return value;
}

Report::Report(std::string experiment, std::string bench)
    : experiment_(std::move(experiment)),
      bench_(std::move(bench)),
      started_(std::chrono::steady_clock::now()) {}

void Report::AddMetric(const std::string& name, double value, std::string unit,
                       bool higher_is_better, bool gate) {
  metrics_.Set(name, util::Json::MakeObject()
                         .Set("value", value)
                         .Set("unit", std::move(unit))
                         .Set("higher_is_better", higher_is_better)
                         .Set("gate", gate));
}

void Report::SetExtra(const std::string& key, util::Json value) {
  extra_.Set(key, std::move(value));
}

util::Json Report::ToJson() const {
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - started_)
                             .count();
  return util::Json::MakeObject()
      .Set("schema_version", kBenchSchemaVersion)
      .Set("experiment", experiment_)
      .Set("bench", bench_)
      .Set("mode", mode_)
      .Set("seed", seed_)
      .Set("workers", util::ParallelWorkers())
      .Set("git_sha", GitSha())
      .Set("wall_ms", wall_ms)
      .Set("sim_ms", sim_ms_)
      .Set("metrics", metrics_)
      .Set("extra", extra_);
}

util::Status Report::Write(const std::string& path) const {
  const std::string dest = path.empty() ? default_path() : path;
  std::ofstream out(dest);
  if (!out) {
    return util::Status::InvalidArgument("cannot open " + dest + " for write");
  }
  out << ToJson().Dump() << "\n";
  std::printf("wrote bench artifact %s\n", dest.c_str());
  return util::Status::Ok();
}

}  // namespace myrtus::bench
