// Experiment T1 (paper Table I): the EU-CEI building blocks and their MYRTUS
// implementations. One benchmark per building block exercising the
// implementing subsystem, plus the DPE as the ninth block MYRTUS contributes.
// The printed table is the functional coverage matrix.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <iterator>
#include <string>

#include "bench/report.hpp"
#include "dpe/pipeline.hpp"
#include "kb/cluster.hpp"
#include "mirto/agent.hpp"
#include "net/pubsub.hpp"
#include "security/channel.hpp"
#include "swarm/placement.hpp"
#include "usecases/scenario.hpp"

using namespace myrtus;

namespace {

void PrintCoverage(bench::Report& report) {
  std::printf("=== Table I: EU-CEI building blocks -> MYRTUS implementation ===\n");
  const struct {
    const char* block;
    const char* implementation;
  } rows[] = {
      {"Security and Privacy", "security:: real AES/ASCON/SHA suites, SecureChannel, Table II policy"},
      {"Trust and Reputation", "mirto::PrivacySecurityManager runtime trust + veto"},
      {"Data management", "kb::Store MVCC + ResourceRegistry telemetry, layered storage"},
      {"Resource management", "sched:: kube-like cluster (filter/score/bind, reconcile)"},
      {"Orchestration", "mirto:: MAPE-K agents + contract-net + swarm placement"},
      {"Network", "net:: topology/transport/HTTP-MQTT-CoAP + pubsub gateway"},
      {"Monitoring & Observability", "continuum:: PMCs -> kb registry telemetry via MIRTO Monitor"},
      {"Artificial Intelligence", "swarm:: PSO/ACO/GA + fl:: FedAvg operating-point models"},
      {"(+) Design & Programming Env", "dpe:: SDF IR, DSE, ADT, CSAR deployment specs"},
  };
  for (const auto& row : rows) {
    std::printf("  %-28s | %s\n", row.block, row.implementation);
  }
  report.AddMetric("building_blocks_covered",
                   static_cast<double>(std::size(rows)), "blocks",
                   /*higher_is_better=*/true);
  std::printf("\n");
}

// --- Security and Privacy ---------------------------------------------------
void BM_BB_SecurityChannel(benchmark::State& state) {
  util::Rng rng(1);
  auto pair = security::SecureChannel::Establish(security::SecurityLevel::kMedium, rng);
  util::MustOk(pair);
  const util::Bytes msg(512, 0x42);
  for (auto _ : state) {
    auto sealed = pair->initiator.Seal(msg);
    util::MustOk(sealed);
    benchmark::DoNotOptimize(pair->responder.Open(*sealed));
  }
}
BENCHMARK(BM_BB_SecurityChannel);

// --- Trust and Reputation -----------------------------------------------------
void BM_BB_TrustUpdates(benchmark::State& state) {
  mirto::PrivacySecurityManager psm;
  util::Rng rng(2);
  int i = 0;
  for (auto _ : state) {
    psm.RecordOutcome("node-" + std::to_string(i++ % 64), rng.NextBool(0.9));
    benchmark::DoNotOptimize(psm.TrustOf("node-0"));
  }
}
BENCHMARK(BM_BB_TrustUpdates);

// --- Data management ----------------------------------------------------------
void BM_BB_KbStoreOps(benchmark::State& state) {
  kb::Store store;
  int i = 0;
  for (auto _ : state) {
    const std::string key = "/registry/nodes/n" + std::to_string(i % 256);
    store.Put(key, util::Json::MakeObject().Set("seq", i));
    benchmark::DoNotOptimize(store.Get(key));
    ++i;
  }
  state.counters["revision"] = static_cast<double>(store.revision());
}
BENCHMARK(BM_BB_KbStoreOps);

// --- Resource management --------------------------------------------------------
void BM_BB_SchedulerPipeline(benchmark::State& state) {
  sim::Engine engine;
  continuum::Infrastructure infra = continuum::BuildInfrastructure(engine, {});
  sched::Cluster cluster(engine, sched::Scheduler::Default());
  for (auto& n : infra.nodes) cluster.AddNode(n.get());
  sched::Scheduler scheduler = sched::Scheduler::Default();
  sched::PodSpec pod;
  pod.name = "probe";
  pod.cpu_request = 0.5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.Schedule(pod, cluster.NodeStates()));
  }
}
BENCHMARK(BM_BB_SchedulerPipeline);

// --- Orchestration ---------------------------------------------------------------
void BM_BB_PlacementPlanning(benchmark::State& state) {
  sim::Engine engine;
  continuum::Infrastructure infra = continuum::BuildInfrastructure(engine, {});
  sched::Cluster cluster(engine, sched::Scheduler::Default());
  for (auto& n : infra.nodes) cluster.AddNode(n.get());
  mirto::WlManager wl(cluster, mirto::PlacementStrategy::kGreedy, 3);
  std::vector<sched::PodSpec> pods(6);
  for (std::size_t i = 0; i < pods.size(); ++i) {
    pods[i].name = "wl-" + std::to_string(i);
    pods[i].cpu_request = 0.4;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(wl.PlanPlacement(pods, {}, {}));
  }
}
BENCHMARK(BM_BB_PlacementPlanning);

// --- Network -----------------------------------------------------------------------
void BM_BB_NetworkRpc(benchmark::State& state) {
  sim::Engine engine;
  net::Topology topo;
  topo.AddBidirectional("a", "b", sim::SimTime::Millis(1), 1e9);
  net::Network network(engine, std::move(topo), 4);
  network.RegisterRpc("b", "echo",
                      [](const net::HostId&, const util::Json& req)
                          -> util::StatusOr<util::Json> { return req; });
  for (auto _ : state) {
    bool done = false;
    network.Call("a", "b", "echo", util::Json(1),
                 [&](util::StatusOr<util::Json>) { done = true; });
    engine.Run();
    benchmark::DoNotOptimize(done);
  }
  state.counters["sim_msgs"] = static_cast<double>(network.messages_delivered());
}
BENCHMARK(BM_BB_NetworkRpc);

void BM_BB_PubSubFanout(benchmark::State& state) {
  const int subscribers = static_cast<int>(state.range(0));
  sim::Engine engine;
  net::Topology topo;
  for (int i = 0; i < subscribers; ++i) {
    topo.AddBidirectional("sub-" + std::to_string(i), "gw",
                          sim::SimTime::Millis(1), 1e8);
  }
  topo.AddBidirectional("sensor", "gw", sim::SimTime::Millis(1), 1e8);
  net::Network network(engine, std::move(topo), 5);
  net::Broker broker(network, "gw");
  int events = 0;
  for (int i = 0; i < subscribers; ++i) {
    broker.Subscribe("sub-" + std::to_string(i), "telemetry/#",
                     [&](const std::string&, const util::Json&) { ++events; });
  }
  for (auto _ : state) {
    broker.Publish("sensor", "telemetry/t", util::Json(21.5));
    engine.Run();
  }
  benchmark::DoNotOptimize(events);
}
BENCHMARK(BM_BB_PubSubFanout)->Arg(4)->Arg(32)->ArgNames({"subs"});

// --- Monitoring & Observability -------------------------------------------------------
void BM_BB_MonitorSampling(benchmark::State& state) {
  sim::Engine engine;
  continuum::Infrastructure infra = continuum::BuildInfrastructure(engine, {});
  net::Network network(engine, infra.topology, 6);
  sched::Cluster cluster(engine, sched::Scheduler::Default());
  for (auto& n : infra.nodes) cluster.AddNode(n.get());
  kb::Store store;
  mirto::AgentConfig config;
  config.host = "gw-0";
  mirto::MirtoAgent agent(network, cluster, infra, store,
                          mirto::AuthModule(util::BytesOf("x")), config);
  for (auto _ : state) {
    agent.RunMapeIteration();
  }
  state.counters["registry_keys"] = static_cast<double>(store.size());
}
BENCHMARK(BM_BB_MonitorSampling);

// --- Artificial Intelligence ------------------------------------------------------------
void BM_BB_SwarmPlacementSolve(benchmark::State& state) {
  swarm::PlacementProblem problem;
  util::Rng setup(7);
  for (int i = 0; i < 10; ++i) {
    problem.tasks.push_back({setup.Uniform(0.2, 1.5), 128, 0, false, 50});
  }
  for (int i = 0; i < 6; ++i) {
    problem.nodes.push_back({"n" + std::to_string(i), 8, 8192, 2, true,
                             setup.Uniform(200, 900), setup.Uniform(1, 30)});
  }
  util::Rng rng(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(swarm::SolvePso(problem, rng, 16, 20));
  }
}
BENCHMARK(BM_BB_SwarmPlacementSolve);

// --- Network (slicing + gateway aggregation) ------------------------------------------
void BM_BB_PrioritySlicing(benchmark::State& state) {
  // Wall cost of pushing a control frame through a bulk-congested link.
  for (auto _ : state) {
    sim::Engine engine;
    net::Topology t;
    t.AddLink(net::Link{"a", "b", sim::SimTime::Zero(), 1e6, 0.0, {}});
    net::Network network(engine, std::move(t), 4);
    network.Attach("b", [](const net::Message&) {});
    for (int i = 0; i < 32; ++i) {
      net::Message bulk;
      bulk.from = "a";
      bulk.to = "b";
      bulk.kind = "bulk";
      bulk.body_bytes = 1000;
      util::MustOk(network.Send(std::move(bulk)));
    }
    net::Message control;
    control.from = "a";
    control.to = "b";
    control.kind = "control";
    control.priority = 2;
    control.body_bytes = 64;
    util::MustOk(network.Send(std::move(control)));
    engine.Run();
    benchmark::DoNotOptimize(network.messages_delivered());
  }
}
BENCHMARK(BM_BB_PrioritySlicing);

// --- The DPE as MYRTUS's additional building block ----------------------------------------
void BM_BB_DpeEndToEnd(benchmark::State& state) {
  for (auto _ : state) {
    dpe::DpeInput input;
    input.app_name = "bb-app";
    util::Rng gen(42);
    input.graph = dpe::RandomPipeline(8, gen);
    dpe::DpePipeline pipeline(9);
    benchmark::DoNotOptimize(pipeline.Run(input));
  }
}
BENCHMARK(BM_BB_DpeEndToEnd)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = bench::StripValueFlag(argc, argv, "--out=", "");
  bench::Report report("T1_building_blocks", "building_blocks");
  PrintCoverage(report);
  util::MustOk(report.Write(out_path));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
