// Experiment A4 (§IV claims): (a) federated learning lets MIRTO edge agents
// "evolve based on each other's experiences" — FedAvg operating-point
// predictor accuracy vs local-only training across agent counts and non-IID
// severity; (b) swarm placement (PSO/ACO) scales where exhaustive search
// cannot, staying near greedy-or-better cost.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "bench/report.hpp"
#include "fl/fedavg.hpp"
#include "swarm/placement.hpp"

using namespace myrtus;

namespace {

/// Synthetic operating-point dataset: features (load, deadline_slack) ->
/// label 1 when the fast point is needed. Each agent observes a different
/// load regime (non-IID).
fl::Dataset MakeAgentData(std::size_t n, double regime_center, util::Rng& rng) {
  fl::Dataset data;
  for (std::size_t i = 0; i < n; ++i) {
    const double load = std::clamp(regime_center + rng.NextGaussian() * 0.2, 0.0, 1.0);
    const double slack = rng.Uniform(0.0, 1.0);
    const double label = (load > 0.6 || slack < 0.2) ? 1.0 : 0.0;
    data.push_back({{load, slack}, label});
  }
  return data;
}

void PrintFlTable(bench::Report& report) {
  std::printf("=== A4a: FedAvg vs local-only operating-point predictors ===\n");
  std::printf("%-8s | %-18s | %-18s\n", "agents", "FedAvg accuracy",
              "mean local accuracy");
  for (const std::size_t agents : {4u, 8u, 16u, 32u, 64u}) {
    util::Rng rng(50 + agents);
    std::vector<fl::Dataset> clients;
    for (std::size_t a = 0; a < agents; ++a) {
      // Agents see disjoint load regimes: classic non-IID.
      const double center = 0.15 + 0.7 * static_cast<double>(a) /
                                       static_cast<double>(agents - 1 + 1e-9);
      clients.push_back(MakeAgentData(60, center, rng));
    }
    fl::FederatedTrainer trainer(clients, 2, fl::LinearModel::Link::kLogistic,
                                 60 + agents);
    fl::FederatedConfig config;
    config.rounds = 30;
    config.local_epochs = 2;
    config.learning_rate = 0.3;
    const fl::LinearModel global = trainer.Train(config);
    const fl::Dataset pooled = trainer.PooledData();

    const auto locals = trainer.TrainLocalOnly(4, 0.3);
    double local_acc = 0;
    for (const auto& m : locals) local_acc += m.Accuracy(pooled);
    local_acc /= static_cast<double>(locals.size());
    std::printf("%-8zu | %17.1f%% | %17.1f%%\n", agents,
                global.Accuracy(pooled) * 100, local_acc * 100);
    if (agents == 16u) {
      report.AddMetric("fedavg_accuracy_16_agents", global.Accuracy(pooled),
                       "fraction", /*higher_is_better=*/true);
      report.AddMetric("local_only_accuracy_16_agents", local_acc, "fraction",
                       /*higher_is_better=*/true);
    }
  }
  std::printf("\n");
}

swarm::PlacementProblem MakeProblem(std::size_t tasks, std::size_t nodes,
                                    std::uint64_t seed) {
  util::Rng rng(seed);
  swarm::PlacementProblem p;
  for (std::size_t i = 0; i < tasks; ++i) {
    p.tasks.push_back({rng.Uniform(0.1, 1.5), rng.Uniform(32, 512),
                       static_cast<int>(rng.NextBounded(3)), rng.NextBool(0.2),
                       rng.Uniform(1, 200)});
  }
  for (std::size_t i = 0; i < nodes; ++i) {
    p.nodes.push_back({"n" + std::to_string(i), rng.Uniform(4, 64),
                       rng.Uniform(2048, 65536), static_cast<int>(rng.NextBounded(3)),
                       rng.NextBool(0.4), rng.Uniform(100, 900),
                       rng.Uniform(1, 40)});
  }
  // Guarantee feasibility: one roomy high-security accelerator node always
  // exists, so solver comparisons measure optimization, not luck.
  p.nodes[0].security_level = 2;
  p.nodes[0].has_accelerator = true;
  p.nodes[0].cpu_capacity = static_cast<double>(tasks) * 2.0;
  p.nodes[0].mem_capacity_mb = static_cast<double>(tasks) * 1024.0;
  return p;
}

void PrintSwarmTable(bench::Report& report) {
  std::printf("=== A4b: placement solvers at scale (cost; lower is better) ===\n");
  std::printf("%-14s | %-10s | %-10s | %-10s | %-10s\n", "tasks x nodes",
              "random", "greedy", "pso", "aco");
  for (const auto& [tasks, nodes] :
       std::vector<std::pair<std::size_t, std::size_t>>{
           {6, 4}, {16, 8}, {40, 12}, {80, 20}}) {
    const swarm::PlacementProblem p = MakeProblem(tasks, nodes, tasks * 100 + nodes);
    util::Rng r1(1), r2(2), r3(3);
    double random_cost = 0;
    for (int i = 0; i < 10; ++i) random_cost += swarm::SolveRandom(p, r1).cost;
    random_cost /= 10;
    const double greedy = swarm::SolveGreedy(p).cost;
    const double pso = swarm::SolvePso(p, r2, 40, 60).cost;
    const double aco = swarm::SolveAco(p, r3, 32, 40).cost;
    char label[32];
    std::snprintf(label, sizeof label, "%zu x %zu", tasks, nodes);
    std::printf("%-14s | %10.1f | %10.1f | %10.1f | %10.1f\n", label,
                random_cost, greedy, pso, aco);
    if (tasks == 80) {
      report.AddMetric("greedy_cost_80x20", greedy, "cost");
      report.AddMetric("pso_cost_80x20", pso, "cost");
      report.AddMetric("aco_cost_80x20", aco, "cost");
    }
  }
  std::printf("\n");
}

void BM_FedAvgRound(benchmark::State& state) {
  const auto agents = static_cast<std::size_t>(state.range(0));
  util::Rng rng(9);
  std::vector<fl::Dataset> clients;
  for (std::size_t a = 0; a < agents; ++a) {
    clients.push_back(MakeAgentData(60, 0.5, rng));
  }
  for (auto _ : state) {
    fl::FederatedTrainer trainer(clients, 2, fl::LinearModel::Link::kLogistic, 9);
    fl::FederatedConfig config;
    config.rounds = 1;
    benchmark::DoNotOptimize(trainer.Train(config));
  }
}
BENCHMARK(BM_FedAvgRound)->Arg(4)->Arg(16)->Arg(64)->ArgNames({"agents"});

void BM_SwarmSolvers(benchmark::State& state) {
  const swarm::PlacementProblem p = MakeProblem(24, 10, 99);
  util::Rng rng(5);
  for (auto _ : state) {
    switch (state.range(0)) {
      case 0: benchmark::DoNotOptimize(swarm::SolveGreedy(p)); break;
      case 1: benchmark::DoNotOptimize(swarm::SolvePso(p, rng, 32, 40)); break;
      default: benchmark::DoNotOptimize(swarm::SolveAco(p, rng, 24, 30));
    }
  }
  state.SetLabel(state.range(0) == 0 ? "greedy" : (state.range(0) == 1 ? "pso" : "aco"));
}
BENCHMARK(BM_SwarmSolvers)->Arg(0)->Arg(1)->Arg(2)->ArgNames({"solver"})->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = bench::StripValueFlag(argc, argv, "--out=", "");
  bench::Report report("A4_fl_swarm_ablation", "fl_swarm");
  report.set_seed(50);
  PrintFlTable(report);
  PrintSwarmTable(report);
  util::MustOk(report.Write(out_path));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
