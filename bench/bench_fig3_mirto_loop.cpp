// Experiment F3 (paper Fig. 3): the MIRTO Cognitive Engine agent and its
// MAPE-K orchestration loop. Measures (a) the sense→reconfigure reaction time
// after injected node failures, (b) KPI recovery (requests complete again
// after healing) vs a no-orchestrator baseline, and (c) the cost of one MAPE
// iteration as the fleet grows.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench/report.hpp"
#include "mirto/agent.hpp"
#include "mirto/engine.hpp"
#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"
#include "usecases/scenario.hpp"

using namespace myrtus;

namespace {

struct World {
  sim::Engine engine;
  continuum::Infrastructure infra;
  std::unique_ptr<net::Network> network;
  sched::Cluster cluster;
  kb::Store kb_store;
  std::unique_ptr<mirto::MirtoAgent> agent;

  explicit World(int edge_scale = 1, bool with_agent = true)
      : infra(continuum::BuildInfrastructure(
            engine,
            continuum::InfrastructureSpec{.edge_hmpsoc = 2 * edge_scale,
                                          .edge_riscv = 2 * edge_scale,
                                          .edge_multicore = 2 * edge_scale})),
        cluster(engine, sched::Scheduler::Default()) {
    net::Topology topo = infra.topology;
    topo.AddBidirectional("mirto-0", "gw-0", sim::SimTime::Micros(200), 1e9);
    network = std::make_unique<net::Network>(engine, std::move(topo), 5);
    for (auto& n : infra.nodes) cluster.AddNode(n.get());
    if (with_agent) {
      mirto::AgentConfig config;
      config.host = "mirto-0";
      config.mape_period = sim::SimTime::Millis(250);
      agent = std::make_unique<mirto::MirtoAgent>(
          *network, cluster, infra, kb_store,
          mirto::AuthModule(util::BytesOf("bench")), config);
      agent->Start();
    }
  }
};

/// Reaction time: kill a pod-hosting node, measure sim-time until the pod
/// runs elsewhere.
double MeasureRecoveryMs(World& world, usecases::Scenario& scenario) {
  if (!usecases::DeployScenario(scenario, world.cluster, 1).ok()) return -1;
  world.engine.RunUntil(world.engine.Now() + sim::SimTime::Seconds(1));

  const sched::PodView detect =
      world.cluster.FindPod(scenario.name + "/" + scenario.stages[1].pod_name);
  if (!detect) return -1;
  const std::string victim = detect.node_id();
  world.infra.FindNode(victim)->SetUp(false);
  const sim::SimTime failed_at = world.engine.Now();

  while (world.engine.Now() < failed_at + sim::SimTime::Seconds(30)) {
    world.engine.RunUntil(world.engine.Now() + sim::SimTime::Millis(50));
    const sched::PodView pod = world.cluster.FindPod(scenario.name + "/" +
                                                     scenario.stages[1].pod_name);
    if (pod && pod.phase() == sched::PodPhase::kRunning &&
        pod.node_id() != victim) {
      return (world.engine.Now() - failed_at).ToMillisF();
    }
  }
  return -1;
}

void PrintRecoveryTable(bench::Report& report) {
  std::printf("=== Fig. 3: MAPE-K loop reaction to node failure ===\n");
  std::printf("%-28s | recovery time after node kill\n", "configuration");
  for (const auto period_ms : {100, 250, 500, 1000}) {
    World world;
    world.agent->Stop();
    mirto::AgentConfig config;
    config.host = "mirto-1";
    config.mape_period = sim::SimTime::Millis(period_ms);
    world.network->topology().AddBidirectional("mirto-1", "gw-0",
                                               sim::SimTime::Micros(200), 1e9);
    mirto::MirtoAgent agent(*world.network, world.cluster, world.infra,
                            world.kb_store,
                            mirto::AuthModule(util::BytesOf("bench")), config);
    // LINT: deferred-capture-ok(agent) -- MeasureRecoveryMs drains the shared
    // engine and Stop() disarms the MAPE loop before the agent leaves scope
    agent.Start();
    usecases::Scenario scenario = usecases::SmartMobilityScenario();
    const double ms = MeasureRecoveryMs(world, scenario);
    if (ms < 0) {
      std::printf("MAPE period %4d ms           | NOT RECOVERED\n", period_ms);
    } else {
      std::printf("MAPE period %4d ms           | %.0f ms\n", period_ms, ms);
    }
    if (period_ms == 250) {
      report.AddMetric("recovery_ms_period_250", ms < 0 ? 60'000.0 : ms, "ms");
    }
    agent.Stop();
  }
  {
    World world(1, /*with_agent=*/false);
    usecases::Scenario scenario = usecases::SmartMobilityScenario();
    const double ms = MeasureRecoveryMs(world, scenario);
    std::printf("%-28s | %s\n", "no orchestrator (baseline)",
                ms < 0 ? "NOT RECOVERED (expected)" : "unexpectedly recovered");
  }
  std::printf("\n");
}

enum class TelemetryMode { kDisabled, kEnabled, kEnabledNoRecorder };

/// Wall-clock latency of MAPE iterations, bucketed into a telemetry
/// histogram so the table below can quote p50/p95/p99.
telemetry::Histogram MeasureMapeLatency(TelemetryMode mode, int iterations) {
  telemetry::ResetGlobal();
  World world;
  usecases::Scenario scenario = usecases::SmartMobilityScenario();
  util::MustOk(usecases::DeployScenario(scenario, world.cluster, 1));
  world.engine.RunUntil(world.engine.Now() + sim::SimTime::Millis(500));

  telemetry::SetEnabled(mode != TelemetryMode::kDisabled);
  if (mode == TelemetryMode::kEnabledNoRecorder) {
    telemetry::Global().recorder.set_enabled(false);
  }
  telemetry::Histogram hist(
      telemetry::Histogram::ExponentialBounds(1e-4, 2.0, 30));  // 0.1 µs..
  for (int i = 0; i < iterations; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    world.agent->RunMapeIteration();
    const auto t1 = std::chrono::steady_clock::now();
    hist.Observe(std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  telemetry::SetEnabled(false);
  telemetry::ResetGlobal();
  return hist;
}

void PrintMapeLatencyTable(bench::Report& report) {
  constexpr int kIterations = 2000;
  // Warm every path once so allocator/cache effects don't bias the rows.
  (void)MeasureMapeLatency(TelemetryMode::kDisabled, 100);
  (void)MeasureMapeLatency(TelemetryMode::kEnabled, 100);
  const telemetry::Histogram off =
      MeasureMapeLatency(TelemetryMode::kDisabled, kIterations);
  const telemetry::Histogram on =
      MeasureMapeLatency(TelemetryMode::kEnabled, kIterations);
  const telemetry::Histogram no_rec =
      MeasureMapeLatency(TelemetryMode::kEnabledNoRecorder, kIterations);

  std::printf("=== MAPE-K iteration latency (wall-clock, %d iterations) ===\n",
              kIterations);
  std::printf("%-18s | %9s | %9s | %9s | %9s\n", "telemetry", "p50 ms",
              "p95 ms", "p99 ms", "mean ms");
  const auto mean = [](const telemetry::Histogram& h) {
    return h.count() > 0 ? h.sum() / static_cast<double>(h.count()) : 0.0;
  };
  const auto row = [&](const char* label, const telemetry::Histogram& h) {
    std::printf("%-18s | %9.4f | %9.4f | %9.4f | %9.4f\n", label, h.p50(),
                h.p95(), h.p99(), mean(h));
  };
  row("disabled", off);
  row("on, no recorder", no_rec);
  row("enabled", on);
  report.AddMetric("mape_iteration_mean_ms", mean(off), "ms",
                   /*higher_is_better=*/false, /*gate=*/false);
  if (off.count() > 0 && off.sum() > 0.0) {
    const double overhead = mean(on) / mean(off) - 1.0;
    std::printf("enabled-vs-disabled mean overhead: %+.1f%%\n",
                overhead * 100.0);
    report.AddMetric("telemetry_overhead_frac", overhead, "fraction",
                     /*higher_is_better=*/false, /*gate=*/false);
  }
  if (no_rec.count() > 0 && no_rec.sum() > 0.0) {
    // The flight recorder's marginal cost on an instrumented iteration: the
    // acceptance target is <= 3% on this loop.
    const double recorder_overhead = mean(on) / mean(no_rec) - 1.0;
    std::printf("recorder-vs-no-recorder mean overhead: %+.1f%%\n",
                recorder_overhead * 100.0);
    report.AddMetric("recorder_overhead_frac", recorder_overhead, "fraction",
                     /*higher_is_better=*/false, /*gate=*/false);
  }
  std::printf("\n");
}

/// Runs one negotiated deployment (full MAPE-K world + contract-net
/// announce→bid→award→schedule→start) with tracing on and dumps the span
/// tree as a Chrome trace_event file for about:tracing / Perfetto.
void DumpNegotiationTrace(const std::string& path) {
  telemetry::ResetGlobal();
  sim::Engine engine;
  continuum::Infrastructure infra = continuum::BuildInfrastructure(engine, {});
  net::Network network(engine, infra.topology, 5);
  mirto::MirtoEngine mirto(network, infra);
  telemetry::SetEnabled(true);
  mirto.Start();
  engine.RunUntil(sim::SimTime::Millis(500));

  usecases::Scenario scenario = usecases::TelerehabScenario();
  dpe::DpePipeline pipeline(3);
  auto design = pipeline.Run(scenario.dpe_input);
  if (design.ok()) {
    mirto.DeployNegotiated(design->package, [](util::Status) {});
    engine.RunUntil(engine.Now() + sim::SimTime::Seconds(5));
  }
  mirto.Stop();

  const auto& tracer = telemetry::Global().tracer;
  const util::Status written = telemetry::WriteChromeTrace(tracer, path);
  if (written.ok()) {
    std::printf("wrote %zu spans (%zu MAPE cycles + negotiation) to %s\n",
                tracer.finished().size(),
                static_cast<std::size_t>(telemetry::Global().metrics.Value(
                    "myrtus_mirto_mape_iterations_total",
                    {{"agent", "mirto-edge"}})),
                path.c_str());
  } else {
    std::printf("trace dump failed: %s\n", written.ToString().c_str());
  }
  telemetry::SetEnabled(false);
  telemetry::ResetGlobal();
}

void BM_MapeIteration(benchmark::State& state) {
  World world(static_cast<int>(state.range(0)));
  usecases::Scenario scenario = usecases::SmartMobilityScenario();
  util::MustOk(usecases::DeployScenario(scenario, world.cluster, 1));
  for (auto _ : state) {
    world.agent->RunMapeIteration();
  }
  state.counters["nodes"] = static_cast<double>(world.infra.nodes.size());
}
BENCHMARK(BM_MapeIteration)->Arg(1)->Arg(4)->Arg(16)->ArgNames({"edge_scale"});

/// Same loop with tracing + metrics enabled: the delta vs BM_MapeIteration is
/// the telemetry-enabled cost per iteration.
void BM_MapeIterationTelemetry(benchmark::State& state) {
  telemetry::ResetGlobal();
  World world(static_cast<int>(state.range(0)));
  usecases::Scenario scenario = usecases::SmartMobilityScenario();
  util::MustOk(usecases::DeployScenario(scenario, world.cluster, 1));
  telemetry::SetEnabled(true);
  for (auto _ : state) {
    world.agent->RunMapeIteration();
  }
  telemetry::SetEnabled(false);
  state.counters["nodes"] = static_cast<double>(world.infra.nodes.size());
  state.counters["spans"] =
      static_cast<double>(telemetry::Global().tracer.finished().size() +
                          telemetry::Global().tracer.dropped_spans());
  telemetry::ResetGlobal();
}
BENCHMARK(BM_MapeIterationTelemetry)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->ArgNames({"edge_scale"});

void BM_DeployThroughApi(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    World world;
    world.network->topology().AddBidirectional("client", "gw-0",
                                               sim::SimTime::Millis(1), 1e9);
    usecases::Scenario scenario = usecases::TelerehabScenario();
    dpe::DpePipeline pipeline(3);
    auto design = pipeline.Run(scenario.dpe_input);
    util::MustOk(design);
    mirto::AuthModule client(util::BytesOf("bench"));
    util::Json request = util::Json::MakeObject()
                             .Set("token", client.IssueToken("bench"))
                             .Set("csar", design->package.Pack());
    state.ResumeTiming();
    bool done = false;
    world.network->Call("client", "mirto-0", "mirto.deploy", std::move(request),
                        [&](util::StatusOr<util::Json> r) { done = r.ok(); });
    world.engine.RunUntil(world.engine.Now() + sim::SimTime::Seconds(2));
    benchmark::DoNotOptimize(done);
  }
}
BENCHMARK(BM_DeployThroughApi)->Unit(benchmark::kMillisecond);

void BM_TrustUpdateSweep(benchmark::State& state) {
  mirto::PrivacySecurityManager psm;
  const int nodes = static_cast<int>(state.range(0));
  util::Rng rng(3);
  for (auto _ : state) {
    for (int i = 0; i < nodes; ++i) {
      psm.RecordOutcome("node-" + std::to_string(i), rng.NextBool(0.95));
    }
    benchmark::DoNotOptimize(psm.VetoedNodes());
  }
}
BENCHMARK(BM_TrustUpdateSweep)->Arg(16)->Arg(256)->ArgNames({"nodes"});

}  // namespace

int main(int argc, char** argv) {
  // --trace-out=<file>: dump one traced MAPE-K + negotiation cycle as a
  // Chrome trace_event file, then continue with the regular experiment.
  const std::string trace_out =
      bench::StripValueFlag(argc, argv, "--trace-out=", "");
  const std::string out_path = bench::StripValueFlag(argc, argv, "--out=", "");

  bench::Report report("F3_mirto_loop", "mape");
  report.set_seed(5);
  PrintRecoveryTable(report);
  PrintMapeLatencyTable(report);
  util::MustOk(report.Write(out_path));
  if (!trace_out.empty()) DumpNegotiationTrace(trace_out);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
