// Experiment A7: deterministic parallel runtime ablation. The fork-join pool
// (util/parallel) promises two things at once: wall-clock speedup on the
// DSE / placement / FL hot paths, and byte-identical results at every worker
// count. This bench measures both — a serial-vs-N-worker speedup table over
// the three adopted workloads, with an FNV checksum per cell that MUST match
// the serial baseline. A checksum mismatch is a correctness bug in the
// determinism contract and fails the run (exit 1), which is how CI guards
// the contract on real multi-core hardware.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/report.hpp"
#include "dpe/dse.hpp"
#include "fl/fedavg.hpp"
#include "swarm/placement.hpp"
#include "util/bytes.hpp"
#include "util/json.hpp"
#include "util/parallel.hpp"
#include "util/status.hpp"

using namespace myrtus;

namespace {

bool g_quick = false;

void AppendU64(std::string& buf, std::uint64_t v) {
  char bytes[sizeof(v)];
  std::memcpy(bytes, &v, sizeof(v));
  buf.append(bytes, sizeof(bytes));
}

void AppendF64(std::string& buf, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU64(buf, bits);
}

double MillisSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// --- Workloads ---------------------------------------------------------------
// Each returns an FNV-1a checksum over every result byte it produced; the
// checksum is the determinism witness compared across worker counts.

std::uint64_t RunDseSweep() {
  dpe::DataflowGraph graph;
  const std::size_t n_actors = g_quick ? 6 : 9;
  for (std::size_t a = 0; a < n_actors; ++a) {
    dpe::Actor actor;
    actor.name = "a" + std::to_string(a);
    actor.cycles_per_firing = 1'000'000 + 137'000 * a;
    actor.state_bytes = 2048;
    actor.accelerable = (a % 2) == 0;
    actor.parallel_fraction = 0.1 * static_cast<double>(a % 8);
    util::MustOk(graph.AddActor(actor));
  }
  for (std::size_t a = 0; a + 1 < n_actors; ++a) {
    util::MustOk(graph.AddChannel(
        {"a" + std::to_string(a), "a" + std::to_string(a + 1), 1, 1, 4096}));
  }
  dpe::KpiEstimator estimator(graph, dpe::HmpsocTargets());
  auto exhaustive = dpe::ExploreExhaustive(estimator, 2'000'000);

  util::Rng rng(17, "bench.dse");
  const dpe::DseResult genetic =
      dpe::ExploreGenetic(estimator, rng, g_quick ? 16 : 48, g_quick ? 6 : 30);

  std::string buf;
  if (exhaustive.ok()) {
    AppendU64(buf, static_cast<std::uint64_t>(exhaustive->evaluated));
    for (const dpe::ParetoPoint& p : exhaustive->front) {
      for (const int d : p.config.actor_to_device) {
        AppendU64(buf, static_cast<std::uint64_t>(d));
      }
      AppendF64(buf, p.kpi.latency_s);
      AppendF64(buf, p.kpi.energy_mj);
    }
  }
  AppendU64(buf, static_cast<std::uint64_t>(genetic.evaluated));
  for (const dpe::ParetoPoint& p : genetic.front) {
    AppendF64(buf, p.kpi.latency_s);
    AppendF64(buf, p.kpi.energy_mj);
  }
  return util::Fnv1a64(buf);
}

std::uint64_t RunPlacementSolvers() {
  swarm::PlacementProblem problem;
  const std::size_t n_tasks = g_quick ? 24 : 64;
  const std::size_t n_nodes = g_quick ? 12 : 24;
  for (std::size_t t = 0; t < n_tasks; ++t) {
    swarm::PlacementTask task;
    task.cpu = 0.25 + 0.05 * static_cast<double>(t % 7);
    task.mem_mb = 64 + 16 * static_cast<double>(t % 5);
    task.traffic_kbps = 10.0 * static_cast<double>(1 + t % 9);
    task.min_security = static_cast<int>(t % 3);
    task.needs_accelerator = (t % 11) == 0;
    problem.tasks.push_back(task);
  }
  for (std::size_t n = 0; n < n_nodes; ++n) {
    swarm::PlacementNode node;
    node.cpu_capacity = 4.0 + static_cast<double>(n % 3);
    node.mem_capacity_mb = 2048;
    node.power_mw_per_cpu = 300.0 + 100.0 * static_cast<double>(n % 4);
    node.latency_to_consumer_ms = 1.0 + static_cast<double>(n % 6);
    node.security_level = static_cast<int>(n % 4);
    node.has_accelerator = (n % 5) == 0;
    problem.nodes.push_back(node);
  }

  const swarm::PlacementSolution greedy = swarm::SolveGreedy(problem);
  util::Rng rng(29, "bench.placement");
  const swarm::PlacementSolution aco = swarm::SolveAco(
      problem, rng, g_quick ? 8 : 24, g_quick ? 6 : 20, 0.35);

  std::string buf;
  for (const int a : greedy.assignment) {
    AppendU64(buf, static_cast<std::uint64_t>(a));
  }
  AppendF64(buf, greedy.cost);
  for (const int a : aco.assignment) {
    AppendU64(buf, static_cast<std::uint64_t>(a));
  }
  AppendF64(buf, aco.cost);
  return util::Fnv1a64(buf);
}

std::uint64_t RunFederatedRounds() {
  const std::size_t features = 8;
  const std::size_t clients = g_quick ? 6 : 12;
  util::Rng data_rng(41, "bench.fl.data");
  fl::Dataset data;
  for (int i = 0; i < (g_quick ? 600 : 2400); ++i) {
    fl::Example ex;
    ex.features.resize(features);
    double score = 0.0;
    for (std::size_t f = 0; f < features; ++f) {
      ex.features[f] = data_rng.Uniform(-1.0, 1.0);
      score += (f % 2 == 0 ? 1.0 : -0.5) * ex.features[f];
    }
    ex.label = score > 0 ? 1.0 : 0.0;
    data.push_back(std::move(ex));
  }
  std::vector<fl::Dataset> split =
      fl::NonIidSplit(std::move(data), clients, data_rng);

  fl::FederatedTrainer trainer(std::move(split), features,
                               fl::LinearModel::Link::kLogistic, 57);
  fl::FederatedConfig config;
  config.rounds = g_quick ? 4 : 16;
  config.local_epochs = 2;
  const fl::LinearModel global = trainer.Train(config);

  std::string buf;
  for (const double p : global.Parameters()) AppendF64(buf, p);
  return util::Fnv1a64(buf);
}

struct Workload {
  const char* name;
  std::uint64_t (*run)();
};

constexpr Workload kWorkloads[] = {
    {"dse_sweep", RunDseSweep},
    {"placement", RunPlacementSolvers},
    {"fedavg", RunFederatedRounds},
};

/// Runs the ablation: every workload at workers {1, 2, 4, 8}, timing each
/// cell and checking its checksum against the serial baseline. Returns false
/// on any checksum mismatch.
bool RunAblation(const std::string& out_path) {
  bench::Report report("A7_parallel_ablation", "parallel");
  report.set_mode(g_quick ? "quick" : "full");
  report.set_seed(17);
  std::printf(
      "=== A7: deterministic parallel runtime — serial vs pooled "
      "(%s mode) ===\n",
      g_quick ? "quick" : "full");
  std::printf("%-10s | %-8s | %-10s | %-8s | %-18s | %s\n", "workload",
              "workers", "time (ms)", "speedup", "checksum", "match");

  util::Json rows = util::Json::MakeArray();
  bool all_match = true;
  for (const Workload& w : kWorkloads) {
    util::SetParallelWorkers(1);
    const auto t0 = std::chrono::steady_clock::now();
    const std::uint64_t baseline = w.run();
    const double serial_ms = MillisSince(t0);
    std::printf("%-10s | %-8d | %-10.2f | %-8s | 0x%016llx | %s\n", w.name, 1,
                serial_ms, "1.00",
                static_cast<unsigned long long>(baseline), "ref");
    rows.Append(util::Json::MakeObject()
                    .Set("workload", w.name)
                    .Set("workers", 1)
                    .Set("time_ms", serial_ms)
                    .Set("speedup", 1.0)
                    .Set("checksum_matches", true));

    for (const int workers : {2, 4, 8}) {
      util::SetParallelWorkers(workers);
      const auto t1 = std::chrono::steady_clock::now();
      const std::uint64_t checksum = w.run();
      const double ms = MillisSince(t1);
      const bool match = checksum == baseline;
      all_match = all_match && match;
      const double speedup = ms > 0 ? serial_ms / ms : 0.0;
      std::printf("%-10s | %-8d | %-10.2f | %-8.2f | 0x%016llx | %s\n", w.name,
                  workers, ms, speedup,
                  static_cast<unsigned long long>(checksum),
                  match ? "yes" : "MISMATCH");
      rows.Append(util::Json::MakeObject()
                      .Set("workload", w.name)
                      .Set("workers", workers)
                      .Set("time_ms", ms)
                      .Set("speedup", speedup)
                      .Set("checksum_matches", match));
      // Wall-clock speedups vary across machines, so they ride along ungated;
      // the determinism witness is the gate.
      if (workers == 8) {
        report.AddMetric(std::string(w.name) + "_speedup_8_workers", speedup,
                         "x", /*higher_is_better=*/true, /*gate=*/false);
      }
    }
  }
  util::SetParallelWorkers(1);

  const util::ParallelPoolStats stats = util::ParallelStats();
  report.AddMetric("all_checksums_match", all_match ? 1.0 : 0.0, "bool",
                   /*higher_is_better=*/true);
  report.SetExtra("rows", std::move(rows));
  report.SetExtra("pool", util::Json::MakeObject()
                              .Set("regions", stats.regions)
                              .Set("pooled_regions", stats.pooled_regions)
                              .Set("shards", stats.shards)
                              .Set("items", stats.items));
  util::MustOk(report.Write(out_path));
  if (!all_match) {
    std::printf(
        "FATAL: checksum mismatch — pooled execution diverged from the "
        "serial baseline; the determinism contract is broken\n");
  }
  return all_match;
}

// --- Microbenchmarks ---------------------------------------------------------

void BM_ParallelReduceSerial(benchmark::State& state) {
  util::SetParallelWorkers(1);
  for (auto _ : state) {
    const double sum = util::ParallelReduce<double>(
        100'000, 0.0,
        [](std::size_t i) { return 1.0 / (1.0 + static_cast<double>(i)); },
        [](double a, double b) { return a + b; });
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_ParallelReduceSerial);

void BM_ParallelReducePooled(benchmark::State& state) {
  util::SetParallelWorkers(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const double sum = util::ParallelReduce<double>(
        100'000, 0.0,
        [](std::size_t i) { return 1.0 / (1.0 + static_cast<double>(i)); },
        [](double a, double b) { return a + b; });
    benchmark::DoNotOptimize(sum);
  }
  util::SetParallelWorkers(1);
}
BENCHMARK(BM_ParallelReducePooled)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_parallel.json";
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    if (arg == "--quick") {
      g_quick = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  const bool ok = RunAblation(out_path);
  if (!ok) return 1;  // CI gate: determinism contract violation
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
