// Experiment F1 (paper Fig. 1): the three technical pillars integrated.
// Drives both use cases through the full stack — Pillar 3 (DPE: model,
// threat analysis, DSE, CSAR) feeding Pillar 2 (MIRTO: authenticated deploy,
// negotiation, MAPE-K) running on Pillar 1 (continuum infrastructure +
// network + KB) — and reports the end-to-end pipeline latencies per phase.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>

#include "bench/report.hpp"
#include "mirto/engine.hpp"
#include "usecases/scenario.hpp"

using namespace myrtus;

namespace {

void PrintIntegrationTable(bench::Report& report) {
  std::printf("=== Fig. 1: pillar integration, per-phase wall times ===\n");
  std::printf("%-16s | %-12s | %-14s | %-16s | KPIs\n", "use case",
              "P3 design", "P2 deploy", "P1+2 runtime");
  for (const bool mobility : {true, false}) {
    usecases::Scenario scenario = mobility ? usecases::SmartMobilityScenario()
                                           : usecases::TelerehabScenario();
    const auto t0 = std::chrono::steady_clock::now();

    // Pillar 3: design time.
    dpe::DpePipeline dpe_pipeline(11);
    auto design = dpe_pipeline.Run(scenario.dpe_input);
    if (!design.ok()) continue;
    const auto t1 = std::chrono::steady_clock::now();

    // Pillar 1 + 2: infrastructure, agents, negotiated deployment.
    sim::Engine engine;
    continuum::Infrastructure infra = continuum::BuildInfrastructure(engine, {});
    net::Network network(engine, infra.topology, 3);
    mirto::MirtoEngine mirto(network, infra);
    mirto.Start();
    engine.RunUntil(sim::SimTime::Millis(400));
    bool deployed = false;
    mirto.DeployNegotiated(design->package,
                           [&](util::Status s) { deployed = s.ok(); });
    engine.RunUntil(engine.Now() + sim::SimTime::Seconds(3));
    const auto t2 = std::chrono::steady_clock::now();

    // Runtime traffic over the per-stage pods.
    sched::Cluster stages_cluster(engine, sched::Scheduler::Default());
    for (auto& n : infra.nodes) stages_cluster.AddNode(n.get());
    util::MustOk(usecases::DeployScenario(scenario, stages_cluster, 1));
    usecases::RequestPipeline pipeline(network, infra, stages_cluster, scenario);
    pipeline.StartStream(engine.Now() + sim::SimTime::Seconds(3), 5);
    engine.RunUntil(engine.Now() + sim::SimTime::Seconds(4));
    mirto.Stop();
    const auto t3 = std::chrono::steady_clock::now();

    const auto ms = [](auto a, auto b) {
      return std::chrono::duration<double, std::milli>(b - a).count();
    };
    const usecases::ScenarioKpis& kpis = pipeline.kpis();
    std::printf("%-16s | %9.1f ms | %11.1f ms | %13.1f ms | "
                "deployed=%d frames=%llu p95=%.1fms viol=%.1f%%\n",
                scenario.name.c_str(), ms(t0, t1), ms(t1, t2), ms(t2, t3),
                deployed ? 1 : 0,
                static_cast<unsigned long long>(kpis.completed),
                kpis.latency_ms.p95(), kpis.ViolationRate() * 100);
    const std::string prefix = mobility ? "mobility" : "telerehab";
    report.AddMetric(prefix + "_deployed", deployed ? 1.0 : 0.0, "bool",
                     /*higher_is_better=*/true);
    report.AddMetric(prefix + "_frames", static_cast<double>(kpis.completed),
                     "frames", /*higher_is_better=*/true);
    report.AddMetric(prefix + "_p95_ms", kpis.latency_ms.p95(), "ms");
    report.AddMetric(prefix + "_design_wall_ms", ms(t0, t1), "ms",
                     /*higher_is_better=*/false, /*gate=*/false);
  }
  std::printf("\n");
}

void BM_FullStackDeployAndRun(benchmark::State& state) {
  for (auto _ : state) {
    usecases::Scenario scenario = usecases::SmartMobilityScenario();
    dpe::DpePipeline dpe_pipeline(11);
    auto design = dpe_pipeline.Run(scenario.dpe_input);
    util::MustOk(design);
    sim::Engine engine;
    continuum::Infrastructure infra = continuum::BuildInfrastructure(engine, {});
    net::Network network(engine, infra.topology, 3);
    mirto::MirtoEngine mirto(network, infra);
    mirto.Start();
    engine.RunUntil(sim::SimTime::Millis(400));
    bool deployed = false;
    mirto.DeployNegotiated(design->package,
                           [&](util::Status s) { deployed = s.ok(); });
    engine.RunUntil(engine.Now() + sim::SimTime::Seconds(3));
    mirto.Stop();
    benchmark::DoNotOptimize(deployed);
  }
}
BENCHMARK(BM_FullStackDeployAndRun)->Unit(benchmark::kMillisecond);

void BM_SimulatedSecondOfTraffic(benchmark::State& state) {
  // Wall cost of simulating one second of scenario traffic (simulator
  // throughput metric).
  sim::Engine engine;
  continuum::Infrastructure infra = continuum::BuildInfrastructure(engine, {});
  net::Network network(engine, infra.topology, 3);
  sched::Cluster cluster(engine, sched::Scheduler::Default());
  for (auto& n : infra.nodes) cluster.AddNode(n.get());
  usecases::Scenario scenario = usecases::TelerehabScenario();
  util::MustOk(usecases::DeployScenario(scenario, cluster, 1));
  usecases::RequestPipeline pipeline(network, infra, cluster, scenario);
  for (auto _ : state) {
    pipeline.StartStream(engine.Now() + sim::SimTime::Seconds(1), 5);
    engine.RunUntil(engine.Now() + sim::SimTime::Seconds(2));
  }
  state.counters["completed"] = static_cast<double>(pipeline.kpis().completed);
}
BENCHMARK(BM_SimulatedSecondOfTraffic)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = bench::StripValueFlag(argc, argv, "--out=", "");
  bench::Report report("F1_pillar_integration", "pillar_integration");
  report.set_seed(3);
  PrintIntegrationTable(report);
  util::MustOk(report.Write(out_path));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
