// Experiment A1 (§IV claim): AI-driven orchestration beats static baselines.
// Runs both use cases under every placement strategy (static kube pipeline,
// greedy cost model, PSO, ACO, random floor) and reports placement cost,
// end-to-end KPIs, and energy — expected shape: swarm/greedy < static <
// random on combined cost, with the gap widening as the fleet grows.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "bench/report.hpp"
#include "mirto/managers.hpp"
#include "usecases/scenario.hpp"

using namespace myrtus;
using mirto::PlacementStrategy;

namespace {

struct RunResult {
  double p95_ms = 0;
  double violation_rate = 0;
  double energy_mj = 0;
  std::uint64_t completed = 0;
  bool deployed = false;
};

RunResult RunScenario(PlacementStrategy strategy, bool mobility, int edge_scale) {
  sim::Engine engine;
  continuum::InfrastructureSpec spec;
  spec.edge_hmpsoc = 2 * edge_scale;
  spec.edge_riscv = edge_scale;
  spec.edge_multicore = edge_scale;
  continuum::Infrastructure infra = continuum::BuildInfrastructure(engine, spec);
  net::Network network(engine, infra.topology, 23);
  sched::Cluster cluster(engine, sched::Scheduler::Default());
  for (auto& n : infra.nodes) cluster.AddNode(n.get());

  usecases::Scenario scenario =
      mobility ? usecases::SmartMobilityScenario() : usecases::TelerehabScenario();

  // Place stage pods through the WL Manager under the chosen strategy.
  mirto::WlManager wl(cluster, strategy, 31);
  mirto::NetworkManager netmgr(infra.topology);
  std::vector<sched::PodSpec> pods;
  for (const usecases::Stage& stage : scenario.stages) {
    sched::PodSpec pod;
    pod.name = scenario.name + "/" + stage.pod_name;
    pod.cpu_request = stage.cpu_request;
    pod.mem_request_mb = stage.mem_request_mb;
    pod.min_security = stage.min_security;
    pod.needs_accelerator = stage.demand.accelerable;
    pod.layer_affinity = stage.layer_affinity;
    pods.push_back(pod);
  }
  std::vector<std::string> node_ids;
  for (auto& n : infra.nodes) node_ids.push_back(n->id());
  const auto costs = netmgr.LatencyCostMs(scenario.source_host, node_ids);

  RunResult result;
  auto directives = wl.PlanPlacement(pods, costs, {});
  if (!directives.ok()) return result;
  if (!wl.Execute(pods, *directives).ok()) return result;
  result.deployed = true;

  usecases::RequestPipeline pipeline(network, infra, cluster, scenario);
  pipeline.StartStream(sim::SimTime::Seconds(5), 37);
  engine.RunUntil(sim::SimTime::Seconds(12));

  const usecases::ScenarioKpis& kpis = pipeline.kpis();
  result.p95_ms = kpis.latency_ms.p95();
  result.violation_rate = kpis.ViolationRate();
  result.energy_mj = kpis.compute_energy_mj;
  result.completed = kpis.completed;
  return result;
}

void PrintComparison(bench::Report& report) {
  std::printf("=== A1: orchestration strategies on both use cases ===\n");
  for (const int scale : {1, 3}) {
    for (const bool mobility : {true, false}) {
      std::printf("\n-- %s, edge fleet x%d --\n",
                  mobility ? "smart-mobility" : "telerehab", scale);
      std::printf("%-12s | %-9s | %-10s | %-12s | %-9s\n", "strategy",
                  "p95 (ms)", "viol. rate", "energy (mJ)", "frames");
      for (const auto strategy :
           {PlacementStrategy::kRandom, PlacementStrategy::kStaticKube,
            PlacementStrategy::kGreedy, PlacementStrategy::kPso,
            PlacementStrategy::kAco}) {
        const RunResult r = RunScenario(strategy, mobility, scale);
        if (!r.deployed) {
          std::printf("%-12s | failed to place all stages\n",
                      std::string(PlacementStrategyName(strategy)).c_str());
          continue;
        }
        std::printf("%-12s | %9.2f | %9.1f%% | %12.1f | %9llu\n",
                    std::string(PlacementStrategyName(strategy)).c_str(),
                    r.p95_ms, r.violation_rate * 100, r.energy_mj,
                    static_cast<unsigned long long>(r.completed));
        // Headline cell: greedy on smart-mobility at the base fleet size.
        if (strategy == PlacementStrategy::kGreedy && mobility && scale == 1) {
          report.AddMetric("greedy_mobility_p95_ms", r.p95_ms, "ms");
          report.AddMetric("greedy_mobility_violation_rate", r.violation_rate,
                           "fraction");
          report.AddMetric("greedy_mobility_energy_mj", r.energy_mj, "mJ");
          report.AddMetric("greedy_mobility_frames",
                           static_cast<double>(r.completed), "frames",
                           /*higher_is_better=*/true);
        }
      }
    }
  }
  std::printf("\n");
}

void BM_StrategyEndToEnd(benchmark::State& state) {
  const auto strategy = static_cast<PlacementStrategy>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunScenario(strategy, true, 1));
  }
  state.SetLabel(std::string(PlacementStrategyName(strategy)));
}
BENCHMARK(BM_StrategyEndToEnd)
    ->Arg(0)->Arg(1)->Arg(2)->Arg(3)
    ->ArgNames({"strategy"})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = bench::StripValueFlag(argc, argv, "--out=", "");
  bench::Report report("A1_orchestrator_ablation", "orchestrators");
  report.set_seed(31);
  report.set_sim_ms(12'000.0);
  PrintComparison(report);
  util::MustOk(report.Write(out_path));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
