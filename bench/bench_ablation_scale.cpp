// Experiment A9: control-plane scale ablation. The indexed scheduler
// (NodeIndex bitmaps + candidate cache) exists so the MYRTUS control plane
// can admit continuum-scale pod fleets; this bench sweeps 1k -> 1M pods over
// up to 10k nodes and measures indexed admission throughput, the sampled
// scan-path throughput (the ablation baseline), incremental-reconcile p99
// under node-failure churn, MAPE-iteration p99 on a loaded cluster, and RSS.
// Wall-clock numbers ride along ungated; the gates are the deterministic
// contracts: every pod places, the scan and indexed paths return
// byte-identical verdicts (FNV witness), and indexed admission beats the
// scan by >= 10x at the reference scale point.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/report.hpp"
#include "continuum/infrastructure.hpp"
#include "kb/store.hpp"
#include "mirto/agent.hpp"
#include "net/transport.hpp"
#include "sched/controller.hpp"
#include "sched/scheduler.hpp"
#include "util/bytes.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

using namespace myrtus;

namespace {

bool g_quick = false;

double MillisSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

double Percentile99(std::vector<double> samples) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const auto idx = static_cast<std::size_t>(
      0.99 * static_cast<double>(samples.size() - 1));
  return samples[idx];
}

/// "VmRSS:" / "VmHWM:" from /proc/self/status, in MB (0 when unavailable).
double ProcStatusMb(const char* key) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0.0;
  char line[256];
  double kb = 0.0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, key, std::strlen(key)) == 0) {
      kb = std::strtod(line + std::strlen(key), nullptr);
      break;
    }
  }
  std::fclose(f);
  return kb / 1024.0;
}

// --- Synthetic continuum fleet ----------------------------------------------
// Nodes are striped over zones (~100 nodes/zone) and every pod carries a zone
// selector: that is the realistic shape (placement is locality-scoped in the
// continuum) and what keeps indexed candidate sets small at 10k nodes.

struct World {
  sim::Engine engine;
  std::vector<std::unique_ptr<continuum::ComputeNode>> nodes;
  std::unique_ptr<sched::Cluster> cluster;
  std::size_t zones = 1;
};

World BuildWorld(std::size_t n_nodes) {
  World w;
  w.zones = std::max<std::size_t>(1, n_nodes / 100);
  w.cluster =
      std::make_unique<sched::Cluster>(w.engine, sched::Scheduler::Default());
  for (std::size_t i = 0; i < n_nodes; ++i) {
    const std::string id = "n" + std::to_string(i);
    // Position *within the zone* drives layer/security/accelerator so every
    // zone contains the full mix (i % zones is the zone itself).
    const std::size_t pos = i / w.zones;
    auto node = std::make_unique<continuum::ComputeNode>(
        w.engine, id, static_cast<continuum::Layer>(pos % 3), "bench",
        static_cast<security::SecurityLevel>(pos % 3), 8192);
    node->AddDevice(continuum::Device(id + "/cpu",
                                      continuum::DeviceKind::kServerCpu, 32,
                                      {continuum::OperatingPoint{"base"}}));
    if (pos % 10 == 0) {
      node->AddDevice(
          continuum::Device(id + "/fpga",
                            continuum::DeviceKind::kFpgaAccelerator, 1,
                            {continuum::OperatingPoint{"accel"}}));
    }
    w.cluster->AddNode(node.get(),
                       {{"zone", "z" + std::to_string(i % w.zones)}});
    w.nodes.push_back(std::move(node));
  }
  return w;
}

sched::PodSpec MakePod(std::size_t i, std::size_t zones,
                       const std::string& name_prefix = "p") {
  sched::PodSpec pod;
  pod.name = name_prefix + std::to_string(i);
  pod.cpu_request = 0.2;
  pod.mem_request_mb = 24;
  pod.priority = static_cast<int>(i % 5);
  pod.node_selector["zone"] = "z" + std::to_string(i % zones);
  if (i % 7 == 0) pod.min_security = security::SecurityLevel::kMedium;
  if (i % 64 == 0) pod.needs_accelerator = true;
  return pod;
}

struct ScaleRow {
  std::size_t pods = 0;
  std::size_t nodes = 0;
  std::size_t failures = 0;
  double indexed_pods_per_s = 0.0;
  double scan_pods_per_s = 0.0;
  double speedup = 0.0;
  double reconcile_p99_ms = 0.0;
  double mape_p99_ms = 0.0;
  double rss_mb = 0.0;
  bool verdicts_match = true;
};

/// Differential witness: FNV checksum over the verdict (winner or failure
/// message) of `probes` dry-run pods, once per scheduler path.
bool VerdictsMatch(sched::Cluster& cluster, std::size_t zones,
                   std::size_t probes) {
  const sched::Scheduler scan_sched = sched::Scheduler::Default();
  std::string indexed_buf;
  std::string scan_buf;
  for (std::size_t k = 0; k < probes; ++k) {
    // Vary the shape: reuse the pod generator plus an oversized outlier.
    sched::PodSpec pod = MakePod(k * 13 + 5, zones, "probe");
    if (k % 9 == 0) pod.cpu_request = 64.0;  // infeasible on purpose
    auto indexed = cluster.DryRunSchedule(pod);
    auto scanned = scan_sched.Schedule(pod, cluster.NodeStates());
    indexed_buf += indexed.ok() ? indexed->node_id : indexed.status().message();
    indexed_buf.push_back('\n');
    scan_buf += scanned.ok() ? scanned->node_id : scanned.status().message();
    scan_buf.push_back('\n');
  }
  return util::Fnv1a64(indexed_buf) == util::Fnv1a64(scan_buf);
}

/// MAPE-iteration latency on a default infrastructure whose cluster carries
/// `n_pods` (tiny) pods — the monitoring/analysis side of the control plane.
double MapeP99Ms(std::size_t n_pods, std::size_t iterations) {
  sim::Engine engine;
  continuum::Infrastructure infra = continuum::BuildInfrastructure(engine, {});
  net::Topology topo = infra.topology;
  topo.AddBidirectional("mirto-agent", "gw-0", sim::SimTime::Micros(100), 1e9);
  net::Network net(engine, std::move(topo), 3);
  sched::Cluster cluster(engine, sched::Scheduler::Default());
  for (auto& n : infra.nodes) cluster.AddNode(n.get());
  kb::Store store;
  mirto::AgentConfig config;
  config.host = "mirto-agent";
  mirto::MirtoAgent agent(net, cluster, infra, store,
                          mirto::AuthModule(util::BytesOf("bench")), config);
  for (std::size_t i = 0; i < n_pods; ++i) {
    sched::PodSpec pod;
    pod.name = "m" + std::to_string(i);
    pod.cpu_request = 0.01;
    pod.mem_request_mb = 1;
    if (!cluster.BindPod(pod).ok()) break;  // fleet is small; fill what fits
  }
  std::vector<double> samples;
  samples.reserve(iterations);
  for (std::size_t it = 0; it < iterations; ++it) {
    const auto t0 = std::chrono::steady_clock::now();
    agent.RunMapeIteration();
    samples.push_back(MillisSince(t0));
  }
  return Percentile99(samples);
}

// --- MAPE churn ablation -----------------------------------------------------
// Twin worlds replay the same scripted ~1%-of-fleet node churn; one MIRTO
// agent monitors with the full fleet walk, the other with the event-driven
// incremental path (change-epoch dirty sets). The worlds run sequentially —
// that halves peak RSS and cannot skew the comparison because the churn
// script is drawn once up front. Churn is bounces/wiggles/submissions rather
// than sustained outages: a down node with pods would trigger Reconcile in
// Execute, identical work on both paths that is already timed separately by
// reconcile_p99 and would only mask the Monitor/Analyze/Plan delta this
// ablation isolates. Equivalence is an FNV witness over the observable MAPE
// outcomes: registry NodeRecords, SLO engine state, published /slo verdicts,
// trust scores, planned operating-point decisions, and pod counts.

struct ChurnOp {
  std::size_t node = 0;
  int action = 0;  // 0 up/down bounce, 1 memory wiggle, 2 task submission
  std::uint64_t cycles = 0;
};

std::vector<std::vector<ChurnOp>> MakeChurnScript(std::size_t n_nodes,
                                                  std::size_t iterations) {
  util::Rng rng(13, "mape-churn-ablation");
  std::vector<std::vector<ChurnOp>> script(iterations);
  const std::size_t per_iter = std::max<std::size_t>(1, n_nodes / 100);
  for (auto& ops : script) {
    ops.reserve(per_iter);
    for (std::size_t k = 0; k < per_iter; ++k) {
      ChurnOp op;
      op.node = static_cast<std::size_t>(rng.NextBounded(n_nodes));
      op.action = static_cast<int>(rng.NextBounded(3));
      op.cycles = 1'000'000 + rng.NextBounded(20'000'000);
      ops.push_back(op);
    }
  }
  return script;
}

struct MapeChurnResult {
  double p99_ms = 0.0;
  std::uint64_t witness = 0;
  std::uint64_t nodes_observed = 0;
  double rss_mb = 0.0;
};

MapeChurnResult RunMapeChurnWorld(
    std::size_t n_pods, std::size_t n_nodes, mirto::MonitorPath path,
    const std::vector<std::vector<ChurnOp>>& script) {
  MapeChurnResult result;
  sim::Engine engine;
  continuum::Infrastructure infra;
  const std::size_t zones = std::max<std::size_t>(1, n_nodes / 100);
  sched::Cluster cluster(engine, sched::Scheduler::Default());
  for (std::size_t i = 0; i < n_nodes; ++i) {
    const std::string id = "n" + std::to_string(i);
    const std::size_t pos = i / zones;
    auto node = std::make_unique<continuum::ComputeNode>(
        engine, id, static_cast<continuum::Layer>(pos % 3), "bench",
        static_cast<security::SecurityLevel>(pos % 3), 8192);
    node->AddDevice(continuum::Device(id + "/cpu",
                                      continuum::DeviceKind::kServerCpu, 32,
                                      {continuum::OperatingPoint{"base"}}));
    cluster.AddNode(node.get(), {{"zone", "z" + std::to_string(i % zones)}});
    infra.nodes.push_back(std::move(node));
  }
  // The agent only uses the network for RPC registration and the sim clock;
  // a two-host topology is all the wiring it needs.
  net::Topology topo;
  topo.AddBidirectional("mirto-agent", "hub", sim::SimTime::Micros(100), 1e9);
  net::Network net(engine, std::move(topo), 3);
  kb::Store store;
  mirto::AgentConfig config;
  config.host = "mirto-agent";
  config.monitor_path = path;
  mirto::MirtoAgent agent(net, cluster, infra, store,
                          mirto::AuthModule(util::BytesOf("bench")), config);
  for (std::size_t i = 0; i < n_pods; ++i) {
    sched::PodSpec pod = MakePod(i, zones, "m");
    if (!cluster.BindPod(pod).ok()) break;
  }
  result.rss_mb = ProcStatusMb("VmRSS:");

  std::vector<double> samples;
  samples.reserve(script.size());
  for (const auto& ops : script) {
    for (const ChurnOp& op : ops) {
      continuum::ComputeNode& node = *infra.nodes[op.node];
      if (op.action == 0) {
        node.SetUp(false);
        node.SetUp(true);
      } else if (op.action == 1) {
        if (node.ReserveMemory(8).ok()) node.ReleaseMemory(8);
      } else {
        continuum::TaskDemand demand;
        demand.cycles = op.cycles;
        node.Submit(demand, nullptr);
      }
    }
    engine.RunUntil(engine.Now() + sim::SimTime::Millis(100));
    const auto t0 = std::chrono::steady_clock::now();
    agent.RunMapeIteration();
    samples.push_back(MillisSince(t0));
  }
  result.p99_ms = Percentile99(std::move(samples));
  result.nodes_observed = agent.stats().nodes_observed;

  // Outcome witness: everything the MAPE loop is allowed to affect.
  std::string out;
  for (const kb::NodeRecord& record : agent.registry().ListNodes()) {
    out += record.ToJson().Dump();
    out.push_back('\n');
  }
  for (const char* objective : {"fleet.availability", "pod.start_wait"}) {
    if (const telemetry::SloStatus* s = agent.slo_engine().Find(objective)) {
      out += util::Json::MakeObject()
                 .Set("objective", std::string(objective))
                 .Set("state", std::string(telemetry::SloStateName(s->state)))
                 .Set("fast", s->fast_burn_rate)
                 .Set("slow", s->slow_burn_rate)
                 .Set("observations", s->observations)
                 .Set("bad", s->bad)
                 .Set("breaches", s->breaches)
                 .Dump();
      out.push_back('\n');
    }
    if (auto verdict = agent.registry().GetSloState("mirto-agent", objective);
        verdict.ok()) {
      out += verdict->Dump();
      out.push_back('\n');
    }
  }
  for (const auto& node : infra.nodes) {
    out += node->id() + "=" +
           std::to_string(agent.security_manager().TrustOf(node->id()));
    out.push_back('\n');
  }
  for (const mirto::NodeManager::Decision& d : agent.planned_decisions()) {
    out += d.node_id + "/" + std::to_string(d.device_index) + "->" +
           std::to_string(d.operating_point) + "\n";
  }
  out += "pending=" + std::to_string(cluster.PendingPods()) +
         " running=" + std::to_string(cluster.RunningPods());
  result.witness = util::Fnv1a64(out);
  return result;
}

struct MapeAblation {
  std::size_t pods = 0;
  std::size_t nodes = 0;
  double full_p99_ms = 0.0;
  double incremental_p99_ms = 0.0;
  double speedup = 0.0;
  bool outcomes_match = false;
  bool incremental_exercised = false;
};

MapeAblation RunMapeChurnAblation(std::size_t n_pods, std::size_t n_nodes) {
  MapeAblation result;
  result.pods = n_pods;
  result.nodes = n_nodes;
  const std::size_t iterations = g_quick ? 12 : 40;
  const auto script = MakeChurnScript(n_nodes, iterations);
  const MapeChurnResult full =
      RunMapeChurnWorld(n_pods, n_nodes, mirto::MonitorPath::kFull, script);
  const MapeChurnResult incremental = RunMapeChurnWorld(
      n_pods, n_nodes, mirto::MonitorPath::kIncremental, script);
  result.full_p99_ms = full.p99_ms;
  result.incremental_p99_ms = incremental.p99_ms;
  result.speedup = incremental.p99_ms > 0
                       ? full.p99_ms / incremental.p99_ms
                       : 0.0;
  result.outcomes_match = full.witness == incremental.witness;
  // The witness must not be vacuous: the incremental agent has to have
  // observed strictly fewer nodes than the full walk, or the "equivalence"
  // never covered the incremental monitor path at all.
  result.incremental_exercised =
      incremental.nodes_observed < full.nodes_observed;
  return result;
}

ScaleRow RunScalePoint(std::size_t n_pods) {
  ScaleRow row;
  row.pods = n_pods;
  row.nodes = std::min<std::size_t>(
      10000, std::max<std::size_t>(100, n_pods / 100));
  World w = BuildWorld(row.nodes);

  // Indexed bulk admission.
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < n_pods; ++i) {
    if (!w.cluster->BindPod(MakePod(i, w.zones)).ok()) ++row.failures;
  }
  const double indexed_ms = MillisSince(t0);
  row.indexed_pods_per_s =
      indexed_ms > 0 ? 1000.0 * static_cast<double>(n_pods) / indexed_ms : 0.0;
  row.rss_mb = ProcStatusMb("VmRSS:");

  // Scan-path sample on the same loaded fleet (the ablation baseline).
  const std::size_t scan_n = std::min<std::size_t>(n_pods, 500);
  w.cluster->set_schedule_path(sched::Cluster::SchedulePath::kScan);
  const auto t1 = std::chrono::steady_clock::now();
  for (std::size_t j = 0; j < scan_n; ++j) {
    if (!w.cluster->BindPod(MakePod(n_pods + j, w.zones, "s")).ok()) {
      ++row.failures;
    }
  }
  const double scan_ms = MillisSince(t1);
  w.cluster->set_schedule_path(sched::Cluster::SchedulePath::kIndexed);
  row.scan_pods_per_s =
      scan_ms > 0 ? 1000.0 * static_cast<double>(scan_n) / scan_ms : 0.0;
  row.speedup = row.scan_pods_per_s > 0
                    ? row.indexed_pods_per_s / row.scan_pods_per_s
                    : 0.0;

  // Verdict differential witness.
  row.verdicts_match =
      VerdictsMatch(*w.cluster, w.zones, g_quick ? 200 : 500);

  // Incremental reconcile under node-failure churn: each pass kills one node
  // (evicting ~100 pods that must rebind) and times the Reconcile sweep.
  std::vector<double> reconcile_ms;
  const std::size_t passes = g_quick ? 20 : 60;
  for (std::size_t pass = 0; pass < passes; ++pass) {
    continuum::ComputeNode* victim = w.nodes[pass % w.nodes.size()].get();
    victim->SetUp(false);
    const auto tr = std::chrono::steady_clock::now();
    w.cluster->Reconcile();
    reconcile_ms.push_back(MillisSince(tr));
    victim->SetUp(true);
  }
  row.reconcile_p99_ms = Percentile99(reconcile_ms);

  row.mape_p99_ms =
      MapeP99Ms(std::min<std::size_t>(n_pods / 10, 1000), g_quick ? 10 : 40);
  return row;
}

bool RunAblation(const std::string& out_path) {
  bench::Report report("A9_scale_ablation", "scale");
  report.set_mode(g_quick ? "quick" : "full");
  report.set_seed(13);
  // Quick mode drops only the 1M point: the 100k point stays so the speedup
  // gate is evaluated at the same reference scale in both modes (the scan
  // path is only meaningfully slow on 1000+ node fleets).
  const std::vector<std::size_t> scales =
      g_quick ? std::vector<std::size_t>{1'000, 10'000, 100'000}
              : std::vector<std::size_t>{1'000, 10'000, 100'000, 1'000'000};
  const std::size_t gate_scale = 100'000;

  std::printf(
      "=== A9: control-plane scale — indexed vs scan admission (%s mode) "
      "===\n",
      g_quick ? "quick" : "full");
  std::printf("%-9s | %-6s | %-12s | %-12s | %-8s | %-12s | %-10s | %-8s | %s\n",
              "pods", "nodes", "indexed p/s", "scan p/s", "speedup",
              "reconcile99", "mape99", "rss MB", "verdicts");

  util::Json rows = util::Json::MakeArray();
  bool all_placed = true;
  bool all_verdicts_match = true;
  double gate_speedup = 0.0;
  double top_scale_rss_mb = 0.0;
  std::size_t top_scale_nodes = 0;
  for (const std::size_t n_pods : scales) {
    const ScaleRow row = RunScalePoint(n_pods);
    all_placed = all_placed && row.failures == 0;
    all_verdicts_match = all_verdicts_match && row.verdicts_match;
    if (n_pods == gate_scale) gate_speedup = row.speedup;
    if (n_pods == scales.back()) {
      top_scale_rss_mb = row.rss_mb;
      top_scale_nodes = row.nodes;
    }
    std::printf(
        "%-9zu | %-6zu | %-12.0f | %-12.0f | %-8.1f | %-9.3f ms | %-7.3f ms "
        "| %-8.1f | %s\n",
        row.pods, row.nodes, row.indexed_pods_per_s, row.scan_pods_per_s,
        row.speedup, row.reconcile_p99_ms, row.mape_p99_ms, row.rss_mb,
        row.verdicts_match ? "match" : "MISMATCH");
    rows.Append(util::Json::MakeObject()
                    .Set("pods", static_cast<std::int64_t>(row.pods))
                    .Set("nodes", static_cast<std::int64_t>(row.nodes))
                    .Set("failures", static_cast<std::int64_t>(row.failures))
                    .Set("indexed_pods_per_s", row.indexed_pods_per_s)
                    .Set("scan_pods_per_s", row.scan_pods_per_s)
                    .Set("speedup", row.speedup)
                    .Set("reconcile_p99_ms", row.reconcile_p99_ms)
                    .Set("mape_p99_ms", row.mape_p99_ms)
                    .Set("rss_mb", row.rss_mb));
    const std::string tag = std::to_string(n_pods);
    report.AddMetric("indexed_pods_per_s_" + tag, row.indexed_pods_per_s,
                     "pods/s", /*higher_is_better=*/true, /*gate=*/false);
    report.AddMetric("reconcile_p99_ms_" + tag, row.reconcile_p99_ms, "ms",
                     /*higher_is_better=*/false, /*gate=*/false);
    report.AddMetric("mape_p99_ms_" + tag, row.mape_p99_ms, "ms",
                     /*higher_is_better=*/false, /*gate=*/false);
  }

  // MAPE churn ablation at the largest scale of this run: full-walk vs.
  // event-driven Monitor/Analyze/Plan under ~1% node churn per iteration.
  const MapeAblation mape =
      RunMapeChurnAblation(scales.back(), top_scale_nodes);
  std::printf(
      "--- MAPE churn ablation: %zu pods / %zu nodes, 1%% churn ---\n"
      "full p99 %.3f ms | incremental p99 %.3f ms | speedup %.1fx | %s\n",
      mape.pods, mape.nodes, mape.full_p99_ms, mape.incremental_p99_ms,
      mape.speedup, mape.outcomes_match ? "outcomes match" : "MISMATCH");

  // Gates: deterministic contracts only (wall-clock rates ride along above),
  // plus the two scale regressions CI tracks against the committed baseline:
  // incremental MAPE p99 and RSS at the largest scale point.
  report.AddMetric("all_pods_placed", all_placed ? 1.0 : 0.0, "bool",
                   /*higher_is_better=*/true);
  report.AddMetric("verdict_equivalence", all_verdicts_match ? 1.0 : 0.0,
                   "bool", /*higher_is_better=*/true);
  const bool speedup_ok = gate_speedup >= 10.0;
  report.AddMetric("indexed_speedup_ge_10x", speedup_ok ? 1.0 : 0.0, "bool",
                   /*higher_is_better=*/true);
  report.AddMetric("indexed_speedup_at_gate_scale", gate_speedup, "x",
                   /*higher_is_better=*/true, /*gate=*/false);
  report.AddMetric("peak_rss_mb", ProcStatusMb("VmHWM:"), "MB",
                   /*higher_is_better=*/false, /*gate=*/false);
  const bool mape_speedup_ok = mape.speedup >= 10.0;
  const bool mape_equivalent =
      mape.outcomes_match && mape.incremental_exercised;
  report.AddMetric("mape_p99_full_ms", mape.full_p99_ms, "ms",
                   /*higher_is_better=*/false, /*gate=*/false);
  report.AddMetric("mape_p99_incremental_ms", mape.incremental_p99_ms, "ms",
                   /*higher_is_better=*/false);
  report.AddMetric("mape_churn_speedup", mape.speedup, "x",
                   /*higher_is_better=*/true, /*gate=*/false);
  report.AddMetric("mape_speedup_ge_10x", mape_speedup_ok ? 1.0 : 0.0, "bool",
                   /*higher_is_better=*/true);
  report.AddMetric("mape_outcome_equivalence", mape_equivalent ? 1.0 : 0.0,
                   "bool", /*higher_is_better=*/true);
  report.AddMetric("rss_mb", top_scale_rss_mb, "MB",
                   /*higher_is_better=*/false);
  report.SetExtra("rows", std::move(rows));
  report.SetExtra("gate_scale_pods",
                  util::Json(static_cast<std::int64_t>(gate_scale)));
  report.SetExtra("mape_churn_pods",
                  util::Json(static_cast<std::int64_t>(mape.pods)));
  report.SetExtra("mape_churn_nodes",
                  util::Json(static_cast<std::int64_t>(mape.nodes)));
  util::MustOk(report.Write(out_path));

  if (!all_placed) {
    std::printf("FATAL: some pods failed to place on a fleet sized to fit "
                "them — capacity accounting or candidate selection is off\n");
  }
  if (!all_verdicts_match) {
    std::printf("FATAL: indexed and scan verdicts diverged — the "
                "verdict-equivalence contract is broken\n");
  }
  if (!speedup_ok) {
    std::printf("FATAL: indexed admission is only %.1fx the scan at %zu pods "
                "(>= 10x required)\n",
                gate_speedup, gate_scale);
  }
  if (!mape_speedup_ok) {
    std::printf("FATAL: incremental MAPE is only %.1fx the full walk at %zu "
                "pods / %zu nodes (>= 10x required)\n",
                mape.speedup, mape.pods, mape.nodes);
  }
  if (!mape.outcomes_match) {
    std::printf("FATAL: full-walk and incremental MAPE outcomes diverged — "
                "the monitor-path equivalence contract is broken\n");
  }
  if (!mape.incremental_exercised) {
    std::printf("FATAL: the MAPE equivalence witness is vacuous — the "
                "incremental agent observed as many nodes as the full walk, "
                "so the incremental monitor path was never covered\n");
  }
  return all_placed && all_verdicts_match && speedup_ok && mape_speedup_ok &&
         mape_equivalent;
}

// --- Microbenchmarks ---------------------------------------------------------

void BM_DryRunScheduleIndexed(benchmark::State& state) {
  World w = BuildWorld(static_cast<std::size_t>(state.range(0)));
  const sched::PodSpec pod = MakePod(1, w.zones);
  for (auto _ : state) {
    auto result = w.cluster->DryRunSchedule(pod);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_DryRunScheduleIndexed)->Arg(100)->Arg(1000);

void BM_ScheduleScan(benchmark::State& state) {
  World w = BuildWorld(static_cast<std::size_t>(state.range(0)));
  const sched::Scheduler sched = sched::Scheduler::Default();
  const sched::PodSpec pod = MakePod(1, w.zones);
  const std::vector<sched::NodeState*> states = w.cluster->NodeStates();
  for (auto _ : state) {
    auto result = sched.Schedule(pod, states);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ScheduleScan)->Arg(100)->Arg(1000);

}  // namespace

int main(int argc, char** argv) {
  g_quick = bench::StripFlag(argc, argv, "--quick");
  const std::string out_path =
      bench::StripValueFlag(argc, argv, "--out=", "BENCH_scale.json");
  const bool ok = RunAblation(out_path);
  if (!ok) return 1;  // CI gate: scale/equivalence contract violation
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
