// Experiment T2 (paper Table II): the three MYRTUS security levels and their
// primitive suites. Reproduces the table as (a) the suite matrix with modeled
// asymmetric costs, (b) host-measured throughput of the real symmetric/hash
// implementations across payload sizes — expected shape: cost(High) >
// cost(Medium) > cost(Low), with the lightweight suite winning hardest on
// small payloads.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "bench/report.hpp"
#include "security/ascon.hpp"
#include "security/channel.hpp"
#include "security/gcm.hpp"
#include "security/hmac.hpp"
#include "security/sha2.hpp"

using namespace myrtus;
using security::SecurityLevel;

namespace {

util::Bytes Payload(std::size_t n) { return util::Bytes(n, 0x5A); }
const util::Bytes kKey32(32, 1);
const util::Bytes kKey16(16, 2);
const util::Bytes kNonce12(12, 3);
const util::Bytes kNonce16(16, 4);

void PrintTable(bench::Report& report) {
  std::printf("=== Table II: MYRTUS security levels ===\n");
  std::printf("%-8s | %-12s | %-22s | %-20s | %-10s | handshake@1GHz | wire bytes\n",
              "level", "encryption", "authentication", "key exchange", "hashing");
  for (const auto level : {SecurityLevel::kHigh, SecurityLevel::kMedium,
                           SecurityLevel::kLow}) {
    const security::SecuritySuite& s = security::SuiteFor(level);
    std::printf("%-8s | %-12s | %-22s | %-20s | %-10s | %11.1f us | %7llu\n",
                std::string(security::SecurityLevelName(level)).c_str(),
                std::string(security::SymAlgName(s.encryption)).c_str(),
                std::string(security::AsymAlgName(s.authentication)).c_str(),
                std::string(security::AsymAlgName(s.key_exchange)).c_str(),
                std::string(security::SymAlgName(s.hashing)).c_str(),
                security::HandshakeLatencyUs(level, 1.0),
                static_cast<unsigned long long>(security::HandshakeWireBytes(level)));
    const std::string name(security::SecurityLevelName(level));
    report.AddMetric("handshake_us_" + name,
                     security::HandshakeLatencyUs(level, 1.0), "us");
    report.AddMetric(
        "handshake_wire_bytes_" + name,
        static_cast<double>(security::HandshakeWireBytes(level)), "bytes");
  }
  std::printf("\n");
}

void BM_Encrypt(benchmark::State& state) {
  const auto level = static_cast<SecurityLevel>(state.range(0));
  const std::size_t bytes = static_cast<std::size_t>(state.range(1));
  const util::Bytes pt = Payload(bytes);
  for (auto _ : state) {
    switch (security::SuiteFor(level).encryption) {
      case security::SymAlg::kAes256Gcm:
        benchmark::DoNotOptimize(security::AesGcmSeal(kKey32, kNonce12, {}, pt));
        break;
      case security::SymAlg::kAes128Gcm:
        benchmark::DoNotOptimize(security::AesGcmSeal(kKey16, kNonce12, {}, pt));
        break;
      default:
        benchmark::DoNotOptimize(security::Ascon128Seal(kKey16, kNonce16, {}, pt));
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
  state.SetLabel(std::string(security::SecurityLevelName(level)));
}
BENCHMARK(BM_Encrypt)
    ->ArgsProduct({{0, 1, 2}, {64, 1024, 16384, 262144, 1048576}})
    ->ArgNames({"level", "bytes"});

void BM_Hash(benchmark::State& state) {
  const auto level = static_cast<SecurityLevel>(state.range(0));
  const std::size_t bytes = static_cast<std::size_t>(state.range(1));
  const util::Bytes data = Payload(bytes);
  for (auto _ : state) {
    switch (security::SuiteFor(level).hashing) {
      case security::SymAlg::kSha512:
        benchmark::DoNotOptimize(security::Sha512::Digest(data));
        break;
      case security::SymAlg::kSha256:
        benchmark::DoNotOptimize(security::Sha256::Digest(data));
        break;
      default:
        benchmark::DoNotOptimize(security::AsconHash(data));
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
  state.SetLabel(std::string(security::SecurityLevelName(level)));
}
BENCHMARK(BM_Hash)
    ->ArgsProduct({{0, 1, 2}, {64, 4096, 262144}})
    ->ArgNames({"level", "bytes"});

void BM_ChannelRecordRoundtrip(benchmark::State& state) {
  const auto level = static_cast<SecurityLevel>(state.range(0));
  util::Rng rng(7);
  auto pair = security::SecureChannel::Establish(level, rng);
  util::MustOk(pair);
  const util::Bytes msg = Payload(1024);
  for (auto _ : state) {
    auto sealed = pair->initiator.Seal(msg);
    util::MustOk(sealed);
    auto opened = pair->responder.Open(*sealed);
    benchmark::DoNotOptimize(opened);
  }
  state.SetLabel(std::string(security::SecurityLevelName(level)));
}
BENCHMARK(BM_ChannelRecordRoundtrip)->Arg(0)->Arg(1)->Arg(2)->ArgNames({"level"});

void BM_HandshakeModeledLatency(benchmark::State& state) {
  const auto level = static_cast<SecurityLevel>(state.range(0));
  double acc = 0;
  for (auto _ : state) {
    acc += security::HandshakeLatencyUs(level, 1.0);
    benchmark::DoNotOptimize(acc);
  }
  state.counters["modeled_us_at_1GHz"] = security::HandshakeLatencyUs(level, 1.0);
  state.counters["wire_bytes"] =
      static_cast<double>(security::HandshakeWireBytes(level));
  state.SetLabel(std::string(security::SecurityLevelName(level)));
}
BENCHMARK(BM_HandshakeModeledLatency)->Arg(0)->Arg(1)->Arg(2)->ArgNames({"level"});

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = bench::StripValueFlag(argc, argv, "--out=", "");
  bench::Report report("T2_security_levels", "security_levels");
  PrintTable(report);
  util::MustOk(report.Write(out_path));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
