# One google-benchmark binary per bench_*.cpp (one per paper table/figure,
# see the experiment index in DESIGN.md). Each bench provides its own main():
# it first prints the experiment's table/series (the rows the paper frames),
# then runs the microbenchmarks, and writes a schema-versioned
# BENCH_<name>.json artifact through the shared report writer below
# (diffed across commits by tools/benchdiff).
add_library(myrtus_bench_report STATIC "${CMAKE_SOURCE_DIR}/bench/report.cpp")
target_include_directories(myrtus_bench_report PUBLIC "${CMAKE_SOURCE_DIR}")
target_link_libraries(myrtus_bench_report PUBLIC myrtus_util)

file(GLOB bench_sources CONFIGURE_DEPENDS "${CMAKE_SOURCE_DIR}/bench/bench_*.cpp")

foreach(src ${bench_sources})
  get_filename_component(name ${src} NAME_WE)
  add_executable(${name} ${src})
  target_link_libraries(${name} PRIVATE myrtus myrtus_bench_report
                        benchmark::benchmark Threads::Threads)
  set_target_properties(${name} PROPERTIES RUNTIME_OUTPUT_DIRECTORY "${CMAKE_BINARY_DIR}/bench")
endforeach()
