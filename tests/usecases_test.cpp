// Smart Mobility & Telerehabilitation scenarios: DPE-compatibility, pod
// deployment, and the end-to-end request pipeline KPIs.
#include <gtest/gtest.h>

#include "dpe/pipeline.hpp"
#include "usecases/scenario.hpp"

namespace myrtus::usecases {
namespace {

using continuum::BuildInfrastructure;
using continuum::Infrastructure;
using sim::SimTime;

struct Fixture {
  sim::Engine engine;
  Infrastructure infra;
  std::unique_ptr<net::Network> net;
  sched::Cluster cluster;

  Fixture() : infra(BuildInfrastructure(engine, {})),
              cluster(engine, sched::Scheduler::Default()) {
    net = std::make_unique<net::Network>(engine, infra.topology, 21);
    for (auto& n : infra.nodes) cluster.AddNode(n.get());
  }
};

class ScenarioTest : public ::testing::TestWithParam<bool> {
 protected:
  static Scenario Make() {
    return GetParam() ? SmartMobilityScenario() : TelerehabScenario();
  }
};

TEST_P(ScenarioTest, GraphIsValidSdfAndRunsThroughDpe) {
  Scenario s = Make();
  EXPECT_TRUE(s.dpe_input.graph.RepetitionVector().ok());
  EXPECT_TRUE(s.dpe_input.graph.IsAcyclic());
  dpe::DpePipeline pipeline(3);
  auto out = pipeline.Run(s.dpe_input);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_FALSE(out->pareto_front.empty());
  // Threat models raise the security floor above "low".
  EXPECT_NE(out->effective_security_level, "low");
}

TEST_P(ScenarioTest, DeploysOntoInfrastructure) {
  Fixture f;
  Scenario s = Make();
  ASSERT_TRUE(DeployScenario(s, f.cluster, 1).ok());
  EXPECT_EQ(f.cluster.RunningPods(), s.stages.size());
  // Layer-pinned stages respect their affinity.
  for (const Stage& stage : s.stages) {
    const sched::PodView pod = f.cluster.FindPod(s.name + "/" + stage.pod_name);
    ASSERT_TRUE(pod.valid());
    if (!stage.layer_affinity.empty()) {
      EXPECT_EQ(std::string(continuum::LayerName(
                    f.infra.FindNode(pod.node_id())->layer())),
                stage.layer_affinity)
          << stage.pod_name;
    }
  }
}

TEST_P(ScenarioTest, RequestsCompleteWithinReasonableLatency) {
  Fixture f;
  Scenario s = Make();
  ASSERT_TRUE(DeployScenario(s, f.cluster, 1).ok());
  RequestPipeline pipeline(*f.net, f.infra, f.cluster, s);
  for (int i = 0; i < 20; ++i) pipeline.LaunchRequest();
  f.engine.RunUntil(SimTime::Seconds(10));
  const ScenarioKpis& kpis = pipeline.kpis();
  EXPECT_EQ(kpis.completed, 20u);
  EXPECT_EQ(kpis.failed, 0u);
  EXPECT_GT(kpis.latency_ms.p50(), 0.0);
  EXPECT_GT(kpis.compute_energy_mj, 0.0);
}

TEST_P(ScenarioTest, PoissonStreamGeneratesLoad) {
  Fixture f;
  Scenario s = Make();
  ASSERT_TRUE(DeployScenario(s, f.cluster, 1).ok());
  RequestPipeline pipeline(*f.net, f.infra, f.cluster, s);
  pipeline.StartStream(SimTime::Seconds(2), 99);
  f.engine.RunUntil(SimTime::Seconds(12));
  const double expected = s.arrival_rate_hz * 2.0;
  EXPECT_NEAR(static_cast<double>(pipeline.kpis().completed +
                                  pipeline.kpis().failed),
              expected, expected * 0.5);
}

INSTANTIATE_TEST_SUITE_P(Both, ScenarioTest, ::testing::Bool(),
                         [](const auto& suite_info) {
                           return suite_info.param ? std::string("SmartMobility")
                                             : std::string("Telerehab");
                         });

TEST(RequestPipeline, NodeFailureMidStreamCountsAsFailures) {
  Fixture f;
  Scenario s = SmartMobilityScenario();
  ASSERT_TRUE(DeployScenario(s, f.cluster, 1).ok());
  RequestPipeline pipeline(*f.net, f.infra, f.cluster, s);
  pipeline.LaunchRequest();
  f.engine.RunUntil(SimTime::Seconds(2));
  ASSERT_EQ(pipeline.kpis().completed, 1u);

  // Kill the node hosting the detect stage; new requests must fail (until an
  // orchestrator repairs the placement, which this test deliberately omits).
  const sched::PodView detect = f.cluster.FindPod("smart-mobility/detect");
  ASSERT_TRUE(detect.valid());
  f.infra.FindNode(detect.node_id())->SetUp(false);
  pipeline.LaunchRequest();
  f.engine.RunUntil(SimTime::Seconds(4));
  EXPECT_EQ(pipeline.kpis().failed, 1u);
}

TEST(RequestPipeline, DeadlineViolationsDetectedUnderOverload) {
  Fixture f;
  Scenario s = SmartMobilityScenario();
  s.deadline_ms = 0.001;  // impossible deadline: every completion violates
  ASSERT_TRUE(DeployScenario(s, f.cluster, 1).ok());
  RequestPipeline pipeline(*f.net, f.infra, f.cluster, s);
  for (int i = 0; i < 5; ++i) pipeline.LaunchRequest();
  f.engine.RunUntil(SimTime::Seconds(5));
  EXPECT_EQ(pipeline.kpis().completed, 5u);
  EXPECT_EQ(pipeline.kpis().violations, 5u);
  EXPECT_DOUBLE_EQ(pipeline.kpis().ViolationRate(), 1.0);
}

TEST(Scenarios, MobilityIsTighterThanTelerehab) {
  const Scenario mobility = SmartMobilityScenario();
  const Scenario rehab = TelerehabScenario();
  EXPECT_LT(mobility.deadline_ms, rehab.deadline_ms);
  EXPECT_GT(mobility.arrival_rate_hz, rehab.arrival_rate_hz);
  // Telerehab handles health data: its archive stage demands High security.
  bool high_found = false;
  for (const Stage& st : rehab.stages) {
    if (st.min_security == security::SecurityLevel::kHigh) high_found = true;
  }
  EXPECT_TRUE(high_found);
}

}  // namespace
}  // namespace myrtus::usecases
