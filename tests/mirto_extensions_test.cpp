// The paper's "ongoing/under consideration" mechanisms, implemented as
// extensions: FREVO→DynAA swarm-rule synthesis, FL-federated operating-point
// prediction, RL-based network-manager offload, and the container image
// registry.
#include <gtest/gtest.h>

#include "dpe/whatif.hpp"
#include "mirto/op_predictor.hpp"
#include "mirto/rl.hpp"
#include "sched/image_registry.hpp"

namespace myrtus {
namespace {

// --- FREVO / DynAA loop ------------------------------------------------------

TEST(WhatIf, DeterministicGivenSeed) {
  util::Rng rng(1);
  const swarm::RulePolicy policy = swarm::RulePolicy::Random(dpe::SwarmRuleSpec(), rng);
  const dpe::WhatIfOutcome a = dpe::EvaluateRules(policy, {}, 7);
  const dpe::WhatIfOutcome b = dpe::EvaluateRules(policy, {}, 7);
  EXPECT_DOUBLE_EQ(a.fitness, b.fitness);
  EXPECT_EQ(a.completed, b.completed);
}

TEST(WhatIf, AllLocalVsAllUpstreamTradeoff) {
  dpe::WhatIfConfig config;
  config.arrival_prob = 0.9;  // overload: local-only queues grow unboundedly
  const swarm::RuleSpec spec = dpe::SwarmRuleSpec();
  swarm::RulePolicy all_local(spec, std::vector<int>(spec.TableSize(), 0));
  swarm::RulePolicy all_up(spec, std::vector<int>(spec.TableSize(), 2));
  const auto local = dpe::EvaluateRules(all_local, config, 3);
  const auto up = dpe::EvaluateRules(all_up, config, 3);
  // Pushing everything upstream caps queueing (bounded latency) but pays
  // fixed distance; staying local queues up under this load.
  EXPECT_GT(local.mean_latency, up.mean_latency);
  EXPECT_GT(up.energy, 0.0);
  EXPECT_GT(local.completed, 0);
}

TEST(WhatIf, SynthesizedRulesBeatFixedPolicies) {
  dpe::WhatIfConfig config;
  swarm::GaConfig ga;
  ga.population = 24;
  ga.generations = 20;
  const dpe::SwarmRuleSynthesis synth = dpe::SynthesizeSwarmRules(config, 11, ga);

  const swarm::RuleSpec spec = dpe::SwarmRuleSpec();
  for (int fixed_action = 0; fixed_action < 3; ++fixed_action) {
    swarm::RulePolicy fixed(spec,
                            std::vector<int>(spec.TableSize(), fixed_action));
    const auto outcome = dpe::EvaluateRules(fixed, config, 11);
    EXPECT_GE(synth.outcome.fitness, outcome.fitness - 1e-9)
        << "fixed action " << fixed_action;
  }
  EXPECT_FALSE(synth.fitness_history.empty());
}

// --- FL operating-point predictor ---------------------------------------------

TEST(OpPredictor, LearnsFromObservations) {
  mirto::OperatingPointLearner learner(5);
  util::Rng rng(5);
  for (int i = 0; i < 400; ++i) {
    const double util = rng.NextDouble();
    const double slack = rng.NextDouble();
    learner.Observe(util, slack, util > 0.6 || slack < 0.15);
  }
  learner.TrainLocal(30);
  EXPECT_GT(learner.PredictFastNeeded(0.95, 0.5), 0.5);
  EXPECT_LT(learner.PredictFastNeeded(0.05, 0.9), 0.5);
}

TEST(OpPredictor, FederationSharesExperienceAcrossRegimes) {
  // Agent A only ever sees low load; agent B only high load. After FedAvg,
  // BOTH predict sensibly across the full range.
  mirto::OperatingPointLearner low_agent(1);
  mirto::OperatingPointLearner high_agent(2);
  util::Rng rng(6);
  for (int i = 0; i < 300; ++i) {
    const double u_low = rng.Uniform(0.0, 0.4);
    low_agent.Observe(u_low, rng.NextDouble(), false);
    const double u_high = rng.Uniform(0.6, 1.0);
    high_agent.Observe(u_high, rng.NextDouble(), true);
  }
  const auto report =
      mirto::FederateLearners({&low_agent, &high_agent}, 25, 77);
  EXPECT_GT(report.bytes_exchanged, 0u);
  // The low-load agent now knows what high load means, and vice versa.
  EXPECT_GT(low_agent.PredictFastNeeded(0.9, 0.5), 0.5);
  EXPECT_LT(high_agent.PredictFastNeeded(0.1, 0.5), 0.5);
}

TEST(OpPredictor, LearnedManagerColdStartsWithHysteresis) {
  sim::Engine engine;
  continuum::ComputeNode node(engine, "n", continuum::Layer::kEdge, "multicore",
                              security::SecurityLevel::kLow, 512);
  node.AddDevice(continuum::MakeBigCore("n/big"));
  engine.RunUntil(sim::SimTime::Seconds(1));  // idle -> hysteresis demotes

  mirto::OperatingPointLearner learner(3);  // empty buffer
  mirto::LearnedNodeManager manager(learner, 60.0);
  const auto decision = manager.Plan(node, 0, 0.5);
  EXPECT_TRUE(decision.changed);
  EXPECT_EQ(decision.operating_point,
            node.devices()[0].operating_points().size() - 1);
}

TEST(OpPredictor, LearnedManagerFollowsModelWhenTrained) {
  sim::Engine engine;
  continuum::ComputeNode node(engine, "n", continuum::Layer::kEdge, "multicore",
                              security::SecurityLevel::kLow, 512);
  node.AddDevice(continuum::MakeBigCore("n/big"));
  ASSERT_TRUE(node.mutable_device(0).SetOperatingPoint(2).ok());
  engine.RunUntil(sim::SimTime::Seconds(1));  // idle: util ~ 0

  // Train a model that says "fast needed whenever slack is tiny".
  mirto::OperatingPointLearner learner(4);
  util::Rng rng(4);
  for (int i = 0; i < 300; ++i) {
    const double slack = rng.NextDouble();
    learner.Observe(rng.NextDouble(), slack, slack < 0.3);
  }
  learner.TrainLocal(40);
  mirto::LearnedNodeManager manager(learner, 60.0);
  // Even though the node is idle, near-zero slack demands the fast point —
  // something threshold hysteresis cannot express.
  const auto urgent = manager.Plan(node, 0, /*recent_slack=*/0.02);
  EXPECT_TRUE(urgent.changed);
  EXPECT_EQ(urgent.operating_point, 0u);
  const auto relaxed = manager.Plan(node, 0, /*recent_slack=*/0.95);
  EXPECT_EQ(relaxed.operating_point,
            node.devices()[0].operating_points().size() - 1);
}

// --- RL network manager ---------------------------------------------------------

TEST(QLearner, ConvergesOnBanditProblem) {
  mirto::QLearner q(1, 3, 0.3, 0.0, 0.2);
  util::Rng rng(8);
  // Arm rewards: 1.0, 2.0, 0.5 (+noise).
  for (int i = 0; i < 2000; ++i) {
    const std::size_t a = q.ChooseAction(0, rng);
    const double mean = a == 0 ? 1.0 : (a == 1 ? 2.0 : 0.5);
    q.UpdateTerminal(0, a, mean + rng.NextGaussian() * 0.1);
  }
  EXPECT_EQ(q.BestAction(0), 1u);
  EXPECT_NEAR(q.Q(0, 1), 2.0, 0.3);
}

TEST(QLearner, BootstrapsAcrossStates) {
  // Two-state chain: action 0 in state 0 leads to state 1; state 1's best
  // action pays 10. With gamma=0.9 the Q of (0,0) approaches 9.
  mirto::QLearner q(2, 2, 0.2, 0.9, 0.0);
  for (int i = 0; i < 500; ++i) {
    q.Update(0, 0, 0.0, 1);
    q.UpdateTerminal(1, 0, 10.0);
  }
  EXPECT_NEAR(q.Q(1, 0), 10.0, 0.2);
  EXPECT_NEAR(q.Q(0, 0), 9.0, 0.3);
}

TEST(RlOffload, LearnsCongestionDependentRouting) {
  mirto::RlOffloadSelector selector(9);
  util::Rng rng(9);
  // Ground truth: when the uplink is congested, cloud (2) is slow and the
  // gateway (0) is best; when clear, cloud is fastest.
  const auto latency = [&](double uplink, std::size_t target) {
    const double base = target == 0 ? 8.0 : (target == 1 ? 6.0 : 4.0);
    const double congestion_penalty = target == 2 ? uplink * 30.0
                                      : target == 1 ? uplink * 12.0 : 0.0;
    return base + congestion_penalty + rng.NextGaussian() * 0.3;
  };
  for (int i = 0; i < 4000; ++i) {
    const double uplink = rng.NextBool() ? 0.05 : 0.9;
    const std::size_t target = selector.ChooseTarget(0.2, uplink);
    selector.Reward(0.2, uplink, target, latency(uplink, target));
  }
  EXPECT_EQ(selector.ChooseTarget(0.2, 0.05, /*explore=*/false), 2u)
      << "clear uplink: go to the cloud";
  EXPECT_EQ(selector.ChooseTarget(0.2, 0.9, /*explore=*/false), 0u)
      << "congested uplink: stay at the gateway";
}

// --- Container image registry ------------------------------------------------------

using util::BytesOf;

TEST(ImageRegistry, PushPullDedup) {
  sched::ImageRegistry registry;
  const util::Bytes base = BytesOf(std::string(4096, 'B'));  // shared base layer
  ASSERT_TRUE(registry.Push("myrtus/pose", "v1", {base, BytesOf("pose-app-v1")}).ok());
  ASSERT_TRUE(registry.Push("myrtus/score", "v1", {base, BytesOf("score-app-v1")}).ok());
  EXPECT_EQ(registry.ListImages().size(), 2u);
  EXPECT_EQ(registry.unique_layers(), 3u) << "base layer stored once";
  EXPECT_LT(registry.StoredBytes(), registry.LogicalBytes());

  auto pull1 = registry.Pull("myrtus/pose:v1", "edge-0");
  ASSERT_TRUE(pull1.ok());
  EXPECT_EQ(pull1->layers_fetched, 2);
  EXPECT_EQ(pull1->bytes_deduplicated, 0u);

  // Second image reuses the cached base layer on the same node.
  auto pull2 = registry.Pull("myrtus/score:v1", "edge-0");
  ASSERT_TRUE(pull2.ok());
  EXPECT_EQ(pull2->layers_fetched, 1);
  EXPECT_EQ(pull2->layers_cached, 1);
  EXPECT_EQ(pull2->bytes_deduplicated, base.size());
  EXPECT_TRUE(registry.NodeHasImage("myrtus/score:v1", "edge-0"));
  EXPECT_FALSE(registry.NodeHasImage("myrtus/score:v1", "edge-1"));
}

TEST(ImageRegistry, RepeatPullIsFullyCached) {
  sched::ImageRegistry registry;
  ASSERT_TRUE(registry.Push("app", "v1", {BytesOf("layer")}).ok());
  ASSERT_TRUE(registry.Pull("app:v1", "n0").ok());
  auto again = registry.Pull("app:v1", "n0");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->bytes_transferred, 0u);
  registry.EvictNodeCache("n0");
  auto after_evict = registry.Pull("app:v1", "n0");
  ASSERT_TRUE(after_evict.ok());
  EXPECT_GT(after_evict->bytes_transferred, 0u);
}

TEST(ImageRegistry, ScanHookQuarantinesBadLayers) {
  sched::ImageRegistry registry;
  registry.set_scan_hook([](const sched::ImageLayer&, const util::Bytes& content)
                             -> util::Status {
    if (util::StringOf(content).find("malware") != std::string::npos) {
      return util::Status::PermissionDenied("CVE detected");
    }
    return util::Status::Ok();
  });
  EXPECT_TRUE(registry.Push("clean", "v1", {BytesOf("fine")}).ok());
  EXPECT_FALSE(registry.Push("dirty", "v1", {BytesOf("fine"), BytesOf("malware!!")}).ok());
  EXPECT_FALSE(registry.Manifest("dirty:v1").ok()) << "atomic push: nothing stored";
}

TEST(ImageRegistry, DeleteGarbageCollectsUnreferencedLayers) {
  sched::ImageRegistry registry;
  const util::Bytes shared = BytesOf(std::string(1000, 'S'));
  ASSERT_TRUE(registry.Push("a", "v1", {shared, BytesOf("only-a")}).ok());
  ASSERT_TRUE(registry.Push("b", "v1", {shared, BytesOf("only-b")}).ok());
  auto reclaimed = registry.DeleteImage("a:v1");
  ASSERT_TRUE(reclaimed.ok());
  EXPECT_EQ(*reclaimed, 6u) << "only 'only-a' reclaimed; shared layer survives";
  EXPECT_EQ(registry.unique_layers(), 2u);
  EXPECT_FALSE(registry.DeleteImage("a:v1").ok());
}

TEST(ImageRegistry, RejectsMalformedPushes) {
  sched::ImageRegistry registry;
  EXPECT_FALSE(registry.Push("", "v1", {BytesOf("x")}).ok());
  EXPECT_FALSE(registry.Push("a", "", {BytesOf("x")}).ok());
  EXPECT_FALSE(registry.Push("a", "v1", {}).ok());
  EXPECT_FALSE(registry.Pull("ghost:v1", "n0").ok());
}

}  // namespace
}  // namespace myrtus
