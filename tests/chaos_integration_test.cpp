// End-to-end chaos: the ChaosController driving real fault hooks (lossy
// links, link partitions, node kills) against Raft and the scheduler, with
// CallWithRetry providing the graceful degradation ISSUE acceptance demands.
#include <gtest/gtest.h>

#include "continuum/infrastructure.hpp"
#include "kb/cluster.hpp"
#include "net/transport.hpp"
#include "sched/controller.hpp"
#include "sim/chaos.hpp"

namespace myrtus {
namespace {

using sim::SimTime;

struct RaftFixture {
  sim::Engine engine;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<kb::KbCluster> cluster;

  RaftFixture(std::size_t n, double loss_rate, std::uint64_t seed = 1) {
    net::Topology topo;
    std::vector<net::HostId> hosts;
    for (std::size_t i = 0; i < n; ++i) {
      hosts.push_back("kb-" + std::to_string(i));
    }
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        topo.AddBidirectional(hosts[i], hosts[j], SimTime::Millis(2), 1e9,
                              loss_rate);
      }
    }
    topo.AddHost("client");
    for (const auto& h : hosts) {
      topo.AddBidirectional("client", h, SimTime::Millis(2), 1e9, loss_rate);
    }
    net = std::make_unique<net::Network>(engine, std::move(topo), seed);
    cluster = std::make_unique<kb::KbCluster>(*net, hosts, seed);
    cluster->Start();
  }
};

// ISSUE acceptance: with 10% per-hop loss, Raft (on CallWithRetry) still
// elects and commits. Each RPC crosses the hop twice, so a single attempt
// fails ~19% of the time — without retries, replication stalls regularly.
TEST(ChaosIntegration, RaftCommitsUnderTenPercentPerHopLoss) {
  RaftFixture f(3, /*loss_rate=*/0.10, /*seed=*/5);
  f.engine.RunUntil(SimTime::Seconds(3));
  ASSERT_GE(f.cluster->LeaderIndex(), 0);

  kb::KbClient client(*f.net, *f.cluster, "client");
  int acks = 0;
  constexpr int kPuts = 20;
  for (int i = 0; i < kPuts; ++i) {
    client.Put("/lossy/" + std::to_string(i), util::Json(i),
               [&](util::Status s) {
                 if (s.ok()) ++acks;
               });
  }
  f.engine.RunUntil(f.engine.Now() + SimTime::Seconds(20));
  EXPECT_GE(acks, kPuts * 95 / 100)
      << "retry layer must carry Raft through 10% loss";
  EXPECT_GT(f.net->retries(), 0u) << "loss this high must trigger retries";
}

// Chaos partitions a follower's links on a seeded-random schedule while a
// client keeps writing. Commits only need a majority, so every write lands,
// and the flapped follower converges once its last down-phase ends.
TEST(ChaosIntegration, LinkFlappingFollowerDoesNotStallCommits) {
  RaftFixture f(3, /*loss_rate=*/0.0, /*seed=*/9);
  sim::ChaosController chaos(f.engine, 42);

  const net::HostId victim = "kb-2";
  std::vector<std::size_t> victim_links;
  auto& topo = f.net->topology();
  for (std::size_t i = 0; i < topo.link_count(); ++i) {
    const net::Link& l = topo.link(i);
    if (l.from == victim || l.to == victim) victim_links.push_back(i);
  }
  chaos.RegisterTarget(
      "links:kb-2",
      [&] {
        for (const std::size_t i : victim_links) topo.SetLinkUp(i, false);
      },
      [&] {
        for (const std::size_t i : victim_links) topo.SetLinkUp(i, true);
      });
  chaos.ScheduleRandomFaults("links:kb-2", SimTime::Seconds(3),
                             SimTime::Seconds(25),
                             /*mean_up=*/SimTime::Seconds(2),
                             /*mean_down=*/SimTime::Seconds(1));

  f.engine.RunUntil(SimTime::Seconds(3));
  ASSERT_GE(f.cluster->LeaderIndex(), 0);
  kb::KbClient client(*f.net, *f.cluster, "client");
  int acks = 0;
  constexpr int kPuts = 10;
  for (int i = 0; i < kPuts; ++i) {
    client.Put("/flap/" + std::to_string(i), util::Json(i),
               [&](util::Status s) {
                 if (s.ok()) ++acks;
               });
  }
  f.engine.RunUntil(SimTime::Seconds(40));
  EXPECT_GT(chaos.injections(), 0u);
  EXPECT_FALSE(chaos.IsFaulty("links:kb-2")) << "horizon restores the links";
  EXPECT_EQ(acks, kPuts);

  // The flapped follower caught back up after its final heal.
  for (int i = 0; i < kPuts; ++i) {
    auto kv = f.cluster->replica(2).store->Get("/flap/" + std::to_string(i));
    EXPECT_TRUE(kv.ok()) << "follower missing /flap/" << i;
  }
}

// Graceful degradation: chaos kills nodes under a deployment; the
// reconciliation loop evicts their pods and rebuilds the replicas on
// survivors, so placement success stays at 100% of desired once healed.
TEST(ChaosIntegration, ReconcileReschedulesPodsOffChaosKilledNodes) {
  sim::Engine engine;
  sim::Trace trace;
  continuum::Infrastructure infra =
      continuum::BuildInfrastructure(engine, {});
  sched::Cluster cluster(engine, sched::Scheduler::Default());
  for (auto& n : infra.nodes) cluster.AddNode(n.get());

  sched::Deployment dep;
  dep.name = "svc";
  dep.pod_template.cpu_request = 0.25;
  dep.replicas = 6;
  cluster.ApplyDeployment(dep);
  cluster.Reconcile();
  ASSERT_EQ(cluster.DeploymentReadyReplicas("svc"), 6);
  cluster.StartReconcileLoop(SimTime::Millis(100));

  sim::ChaosController chaos(engine, 7, &trace);
  for (const char* id : {"edge-0", "edge-1", "fmdc-0"}) {
    continuum::ComputeNode* node = infra.FindNode(id);
    ASSERT_NE(node, nullptr) << id;
    chaos.RegisterTarget(
        id, [node] { node->SetUp(false); }, [node] { node->SetUp(true); });
  }
  chaos.ScheduleFault("edge-0", SimTime::Millis(500), SimTime::Seconds(2));
  chaos.ScheduleFault("edge-1", SimTime::Seconds(1), SimTime::Seconds(2));
  chaos.ScheduleFault("fmdc-0", SimTime::Millis(1500), SimTime::Seconds(2));

  // Mid-fault: dead nodes hold no pods, replicas rebuilt elsewhere.
  engine.RunUntil(SimTime::Millis(1800));
  EXPECT_EQ(chaos.active_faults(), 3u);
  for (const char* id : {"edge-0", "edge-1", "fmdc-0"}) {
    EXPECT_TRUE(cluster.PodsOnNode(id).empty())
        << "pods left on chaos-killed node " << id;
  }
  EXPECT_EQ(cluster.DeploymentReadyReplicas("svc"), 6)
      << "survivors must absorb the displaced replicas";
  EXPECT_GT(cluster.evictions(), 0u);

  // After all faults clear, the deployment is still whole and the chaos
  // timeline recorded every inject/restore pair.
  engine.RunUntil(SimTime::Seconds(5));
  EXPECT_EQ(chaos.active_faults(), 0u);
  EXPECT_EQ(cluster.DeploymentReadyReplicas("svc"), 6);
  EXPECT_EQ(chaos.injections(), 3u);
  EXPECT_EQ(chaos.restores(), 3u);
  EXPECT_EQ(trace.CountOf("inject:edge-0"), 1u);
  cluster.StopReconcileLoop();
}

}  // namespace
}  // namespace myrtus
