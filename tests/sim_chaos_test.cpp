// ChaosController: scripted and seeded-random fault schedules, timeline
// recording, and byte-identical determinism across runs with the same seed.
#include <gtest/gtest.h>

#include "sim/chaos.hpp"

namespace myrtus::sim {
namespace {

struct Counters {
  int injected = 0;
  int restored = 0;
};

void RegisterCounting(ChaosController& chaos, const std::string& name,
                      Counters& c) {
  // LINT: deferred-capture-ok(c) -- every caller declares the Counters before
  // the controller, so the hooks die before the storage they point at
  chaos.RegisterTarget(
      name, [&c] { ++c.injected; }, [&c] { ++c.restored; });
}

TEST(Chaos, ScriptedFaultInjectsAndRestoresOnSchedule) {
  Engine engine;
  Trace trace;
  Counters c;  // declared before the controller: the hooks must die first
  ChaosController chaos(engine, 1, &trace);
  RegisterCounting(chaos, "link-0", c);

  chaos.ScheduleFault("link-0", SimTime::Millis(100), SimTime::Millis(50));
  engine.RunUntil(SimTime::Millis(120));
  EXPECT_TRUE(chaos.IsFaulty("link-0"));
  EXPECT_EQ(c.injected, 1);
  EXPECT_EQ(chaos.active_faults(), 1u);
  engine.RunUntil(SimTime::Millis(200));
  EXPECT_FALSE(chaos.IsFaulty("link-0"));
  EXPECT_EQ(c.restored, 1);
  EXPECT_EQ(chaos.active_faults(), 0u);

  ASSERT_EQ(chaos.timeline().size(), 2u);
  EXPECT_EQ(chaos.timeline()[0].at, SimTime::Millis(100));
  EXPECT_TRUE(chaos.timeline()[0].injected);
  EXPECT_EQ(chaos.timeline()[1].at, SimTime::Millis(150));
  EXPECT_FALSE(chaos.timeline()[1].injected);
  EXPECT_EQ(trace.CountOf("inject:link-0"), 1u);
  EXPECT_EQ(trace.CountOf("restore:link-0"), 1u);
}

TEST(Chaos, PermanentFaultStaysUntilRestoreAll) {
  Engine engine;
  Counters c;
  ChaosController chaos(engine, 1);
  RegisterCounting(chaos, "node-0", c);
  chaos.ScheduleFault("node-0", SimTime::Millis(10), SimTime::Zero());
  engine.RunUntil(SimTime::Seconds(10));
  EXPECT_TRUE(chaos.IsFaulty("node-0"));
  chaos.RestoreAll();
  EXPECT_FALSE(chaos.IsFaulty("node-0"));
  EXPECT_EQ(c.restored, 1);
}

TEST(Chaos, DuplicateInjectionsDoNotDoubleFire) {
  Engine engine;
  Counters c;
  ChaosController chaos(engine, 1);
  RegisterCounting(chaos, "t", c);
  chaos.ScheduleFault("t", SimTime::Millis(10), SimTime::Zero());
  chaos.ScheduleFault("t", SimTime::Millis(20), SimTime::Zero());
  engine.Run();
  EXPECT_EQ(c.injected, 1) << "already-faulty target must not re-inject";
  EXPECT_EQ(chaos.injections(), 1u);
  EXPECT_EQ(chaos.timeline().size(), 1u);
}

TEST(Chaos, UnknownTargetIsIgnored) {
  Engine engine;
  ChaosController chaos(engine, 1);
  chaos.ScheduleFault("ghost", SimTime::Millis(1), SimTime::Millis(1));
  engine.Run();
  EXPECT_EQ(chaos.injections(), 0u);
  EXPECT_TRUE(chaos.timeline().empty());
}

TEST(Chaos, RandomScheduleAlternatesAndEndsHealthy) {
  Engine engine;
  Counters c;
  ChaosController chaos(engine, 99);
  RegisterCounting(chaos, "flappy", c);
  chaos.ScheduleRandomFaults("flappy", SimTime::Zero(), SimTime::Seconds(60),
                             /*mean_up=*/SimTime::Seconds(2),
                             /*mean_down=*/SimTime::Millis(500));
  engine.Run();
  EXPECT_GT(c.injected, 0);
  EXPECT_EQ(c.injected, c.restored) << "horizon must leave the target healthy";
  EXPECT_FALSE(chaos.IsFaulty("flappy"));
  // Strict inject/restore alternation in the recorded timeline.
  bool expect_inject = true;
  for (const ChaosEvent& ev : chaos.timeline()) {
    EXPECT_EQ(ev.injected, expect_inject);
    expect_inject = !expect_inject;
  }
}

TEST(Chaos, ScheduledFaultAfterControllerDestructionIsInert) {
  // Regression for the capture-lifetime fix: scheduled fault events hold a
  // shared liveness guard, so events still queued when the controller dies
  // become no-ops instead of calling into a destroyed object.
  Engine engine;
  Counters c;
  {
    ChaosController chaos(engine, 1);
    RegisterCounting(chaos, "t", c);
    chaos.ScheduleFault("t", SimTime::Millis(100), SimTime::Millis(50));
  }  // controller gone; inject@100ms and restore@150ms still queued
  engine.RunUntil(SimTime::Millis(200));
  EXPECT_EQ(c.injected, 0) << "detached event must not fire the inject hook";
  EXPECT_EQ(c.restored, 0);
  EXPECT_EQ(engine.Now(), SimTime::Millis(200));
}

TEST(Chaos, IdenticalSeedsProduceByteIdenticalTimelines) {
  const auto run = [](std::uint64_t seed) {
    Engine engine;
    ChaosController chaos(engine, seed);
    chaos.RegisterTarget("a", [] {}, [] {});
    chaos.RegisterTarget("b", [] {}, [] {});
    chaos.ScheduleRandomFaults("a", SimTime::Zero(), SimTime::Seconds(30),
                               SimTime::Seconds(1), SimTime::Millis(200));
    chaos.ScheduleRandomFaults("b", SimTime::Millis(7), SimTime::Seconds(30),
                               SimTime::Millis(800), SimTime::Millis(300));
    engine.Run();
    return chaos.TimelineString();
  };
  const std::string t1 = run(1234);
  const std::string t2 = run(1234);
  EXPECT_FALSE(t1.empty());
  EXPECT_EQ(t1, t2) << "same seed must replay the exact fault schedule";
  EXPECT_NE(t1, run(4321)) << "different seed must differ";
}

TEST(Chaos, ScheduleOrderDoesNotPerturbOtherTargetsDraws) {
  // Random draws happen at ScheduleRandomFaults() time, so adding a second
  // target AFTER the first keeps the first target's phase boundaries fixed.
  const auto first_only_lines = [](bool with_second) {
    Engine engine;
    ChaosController chaos(engine, 77);
    chaos.RegisterTarget("first", [] {}, [] {});
    chaos.ScheduleRandomFaults("first", SimTime::Zero(), SimTime::Seconds(20),
                               SimTime::Seconds(1), SimTime::Millis(250));
    if (with_second) {
      chaos.RegisterTarget("second", [] {}, [] {});
      chaos.ScheduleRandomFaults("second", SimTime::Zero(),
                                 SimTime::Seconds(20), SimTime::Millis(500),
                                 SimTime::Millis(100));
    }
    engine.Run();
    std::string out;
    for (const ChaosEvent& ev : chaos.timeline()) {
      if (ev.target != "first") continue;
      out += std::to_string(ev.at.ns) + (ev.injected ? " i\n" : " r\n");
    }
    return out;
  };
  EXPECT_EQ(first_only_lines(false), first_only_lines(true));
}

}  // namespace
}  // namespace myrtus::sim
