// Flight recorder: ring wraparound accounting, (at_ns, seq) snapshot order,
// trigger/dump plumbing, and the determinism acceptance check — a dump of the
// same seeded world is byte-identical at any SetParallelWorkers count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "mirto/agent.hpp"
#include "mirto/engine.hpp"
#include "sim/chaos.hpp"
#include "telemetry/telemetry.hpp"
#include "util/parallel.hpp"

namespace myrtus::telemetry {
namespace {

using sim::SimTime;

class RecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ResetGlobal();
    SetEnabled(true);
  }
  void TearDown() override {
    SetEnabled(false);
    ResetGlobal();
    util::SetParallelWorkers(0);
  }
};

TEST_F(RecorderTest, RingWrapsAndAccountsOverwrites) {
  FlightRecorder rec;
  rec.set_capacity(8);
  for (int i = 0; i < 20; ++i) {
    rec.RecordCounter("c", static_cast<double>(i), i * 10);
  }
  EXPECT_EQ(rec.size(), 8u);
  EXPECT_EQ(rec.total_recorded(), 20u);
  EXPECT_EQ(rec.overwritten(), 12u);

  // Only the newest `capacity` records survive, still in order.
  const std::vector<FlightRecord> snap = rec.Snapshot();
  ASSERT_EQ(snap.size(), 8u);
  for (std::size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].value, static_cast<double>(12 + i));
    if (i > 0) {
      EXPECT_GT(snap[i].seq, snap[i - 1].seq);
    }
  }
}

TEST_F(RecorderTest, SetCapacityRestartsRingButKeepsSequence) {
  FlightRecorder rec;
  rec.set_capacity(4);
  for (int i = 0; i < 6; ++i) rec.RecordEvent("e", "", i);
  EXPECT_EQ(rec.size(), 4u);
  rec.set_capacity(16);
  EXPECT_EQ(rec.size(), 0u);
  rec.RecordEvent("after", "", 100);
  ASSERT_EQ(rec.size(), 1u);
  // The global sequence survives the resize: records before and after remain
  // totally ordered.
  EXPECT_EQ(rec.Snapshot()[0].seq, 6u);
}

TEST_F(RecorderTest, SnapshotOrdersByTimeThenSequence) {
  FlightRecorder rec;
  // Same timestamp: sequence breaks the tie; a later-recorded earlier
  // timestamp (a span that *ended* now but started before) still sorts by
  // at_ns first.
  rec.RecordEvent("a", "", 50);
  rec.RecordEvent("b", "", 50);
  rec.RecordCounter("c", 1.0, 10);
  const auto snap = rec.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "c");
  EXPECT_EQ(snap[1].name, "a");
  EXPECT_EQ(snap[2].name, "b");
}

TEST_F(RecorderTest, DisabledRecorderDropsEverything) {
  FlightRecorder rec;
  rec.set_enabled(false);
  rec.RecordEvent("e", "", 1);
  rec.RecordCounter("c", 1.0, 2);
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.total_recorded(), 0u);
  EXPECT_EQ(rec.Trigger("ignored", 3), "");
  EXPECT_EQ(rec.triggers(), 0u);
}

TEST_F(RecorderTest, SpanSinkFeedsGlobalRecorder) {
  Tracer& tracer = Global().tracer;
  std::int64_t now = 0;
  // LINT: deferred-capture-ok(now) -- clock only ticks inside this body;
  // TearDown's ResetGlobal() uninstalls it before anything else can call it
  tracer.set_clock([&now] { return now; });
  {
    ScopedSpan span("unit.work", "test");
    now = 500;
  }
  const auto snap = Global().recorder.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].kind, FlightRecordKind::kSpan);
  EXPECT_EQ(snap[0].name, "unit.work");
  EXPECT_EQ(snap[0].at_ns, 500);
  EXPECT_EQ(snap[0].value, 500.0);  // duration ns
}

TEST_F(RecorderTest, TriggerRecordsEventAndWritesWhenArmed) {
  FlightRecorder rec;
  rec.RecordEvent("before", "", 1);
  // Disarmed: counted and ring-stamped, no file.
  EXPECT_EQ(rec.Trigger("raft.leadership_lost:kb-1", 2), "");
  EXPECT_EQ(rec.triggers(), 1u);
  EXPECT_EQ(rec.last_trigger(), "raft.leadership_lost:kb-1");

  rec.ArmDump(::testing::TempDir() + "flight_");
  const std::string path = rec.Trigger("chaos.inject:link", 3);
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(rec.triggers(), 2u);
  auto parsed = util::Json::Parse([&] {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::string content;
    char buf[4096];
    std::size_t n = 0;
    while (f != nullptr && (n = std::fread(buf, 1, sizeof buf, f)) > 0) {
      content.append(buf, n);
    }
    if (f != nullptr) std::fclose(f);
    return content;
  }());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->at("schema").as_string(), "myrtus.flight.v1");
  // The ring holds: before, trigger#1, trigger#2.
  EXPECT_EQ(parsed->at("records").items().size(), 3u);
  std::remove(path.c_str());
}

TEST_F(RecorderTest, ChaosInjectionLandsInGlobalRecorder) {
  sim::Engine engine;
  Global().tracer.set_clock([&engine] { return engine.Now().ns; });
  sim::ChaosController chaos(engine, 7);
  bool down = false;
  chaos.RegisterTarget("link-a", [&down] { down = true; },
                       [&down] { down = false; });
  chaos.ScheduleFault("link-a", SimTime::Millis(10), SimTime::Millis(5));
  engine.Run();
  EXPECT_FALSE(down);

  const auto snap = Global().recorder.Snapshot();
  std::vector<std::string> names;
  for (const FlightRecord& r : snap) names.push_back(r.name);
  EXPECT_NE(std::find(names.begin(), names.end(), "chaos.inject"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "chaos.restore"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "flight.trigger"),
            names.end());
  EXPECT_EQ(Global().recorder.last_trigger(), "chaos.inject:link-a");
}

// The acceptance check: one seeded MIRTO world, telemetry on, dumped after a
// few MAPE iterations — the dump must not depend on the worker count.
std::string DumpAfterMapeIterations(int workers) {
  ResetGlobal();
  util::SetParallelWorkers(workers);
  SetEnabled(true);
  std::string dump;
  {
    sim::Engine engine;
    continuum::Infrastructure infra =
        continuum::BuildInfrastructure(engine, {});
    net::Topology topo = infra.topology;
    topo.AddBidirectional("mirto-agent", "gw-0", SimTime::Micros(100), 1e9);
    net::Network network(engine, std::move(topo), 3);
    sched::Cluster cluster(engine, sched::Scheduler::Default());
    for (auto& n : infra.nodes) cluster.AddNode(n.get());
    kb::Store store;
    mirto::AgentConfig config;
    config.host = "mirto-agent";
    mirto::MirtoAgent agent(network, cluster, infra, store,
                            mirto::AuthModule(util::BytesOf("k")), config);
    Global().tracer.set_clock([&engine] { return engine.Now().ns; });
    for (int i = 0; i < 5; ++i) {
      engine.RunUntil(SimTime::Millis(250 * (i + 1)));
      agent.RunMapeIteration();
    }
    dump = Global().recorder.DumpJson();
  }
  SetEnabled(false);
  ResetGlobal();
  util::SetParallelWorkers(0);
  return dump;
}

TEST_F(RecorderTest, DumpIsByteIdenticalAcrossWorkerCounts) {
  const std::string serial = DumpAfterMapeIterations(1);
  const std::string parallel4 = DumpAfterMapeIterations(4);
  const std::string parallel8 = DumpAfterMapeIterations(8);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel4);
  EXPECT_EQ(serial, parallel8);
}

TEST_F(RecorderTest, ChromeTraceDumpIsValidJson) {
  Tracer& tracer = Global().tracer;
  std::int64_t now = 0;
  // LINT: deferred-capture-ok(now) -- clock only ticks inside this body;
  // TearDown's ResetGlobal() uninstalls it before anything else can call it
  tracer.set_clock([&now] { return now; });
  {
    ScopedSpan span("trace.me", "test");
    now = 1000;
  }
  Global().recorder.RecordCounter("gauge", 3.5, 1500);
  Global().recorder.RecordEvent("instant", "detail", 2000);
  auto parsed = util::Json::Parse(Global().recorder.DumpChromeTrace());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  // 1 metadata + span + counter + instant.
  EXPECT_EQ(parsed->at("traceEvents").items().size(), 4u);
}

}  // namespace
}  // namespace myrtus::telemetry
