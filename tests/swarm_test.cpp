// PSO convergence, placement solver portfolio (greedy/random/exhaustive/
// PSO/ACO), and FREVO-style rule evolution.
#include <gtest/gtest.h>

#include <cmath>

#include "swarm/placement.hpp"
#include "swarm/pso.hpp"
#include "swarm/rules.hpp"

namespace myrtus::swarm {
namespace {

TEST(Pso, MinimizesSphereFunction) {
  util::Rng rng(1);
  const auto sphere = [](const std::vector<double>& x) {
    double s = 0;
    for (const double v : x) s += v * v;
    return s;
  };
  const PsoResult r = MinimizePso(sphere, {-5, -5, -5}, {5, 5, 5}, rng);
  EXPECT_LT(r.best_value, 1e-2);
  EXPECT_GT(r.evaluations, 100);
}

TEST(Pso, MinimizesShiftedRosenbrockIsh) {
  util::Rng rng(2);
  const auto f = [](const std::vector<double>& x) {
    return std::pow(x[0] - 2.0, 2) + 5.0 * std::pow(x[1] + 1.0, 2);
  };
  PsoConfig config;
  config.iterations = 120;
  const PsoResult r = MinimizePso(f, {-10, -10}, {10, 10}, rng, config);
  EXPECT_NEAR(r.best_position[0], 2.0, 0.05);
  EXPECT_NEAR(r.best_position[1], -1.0, 0.05);
}

TEST(Pso, RespectsBounds) {
  util::Rng rng(3);
  const auto f = [](const std::vector<double>& x) { return -x[0]; };  // wants +inf
  const PsoResult r = MinimizePso(f, {0}, {3}, rng);
  EXPECT_LE(r.best_position[0], 3.0);
  EXPECT_NEAR(r.best_position[0], 3.0, 1e-6);
}

TEST(Pso, EmptyProblemIsHarmless) {
  util::Rng rng(4);
  const PsoResult r = MinimizePso([](const std::vector<double>&) { return 0.0; },
                                  {}, {}, rng);
  EXPECT_TRUE(r.best_position.empty());
}

PlacementProblem SmallProblem() {
  PlacementProblem p;
  // Three tasks, one needs an accelerator, one needs security >= 1.
  p.tasks = {
      {1.0, 256, 0, false, 100.0},
      {2.0, 512, 0, true, 10.0},
      {0.5, 128, 1, false, 500.0},
  };
  p.nodes = {
      {"edge-fpga", 4.0, 2048, 0, true, 900.0, 2.0},
      {"fog", 8.0, 8192, 1, false, 400.0, 7.0},
      {"cloud", 64.0, 65536, 2, false, 150.0, 30.0},
  };
  return p;
}

TEST(Placement, GreedyProducesFeasibleSolution) {
  const PlacementProblem p = SmallProblem();
  const PlacementSolution s = SolveGreedy(p);
  EXPECT_TRUE(p.Feasible(s.assignment)) << "cost=" << s.cost;
  // Accelerator task must be on the FPGA node.
  EXPECT_EQ(s.assignment[1], 0);
  // Security-1 task cannot be on the level-0 edge node.
  EXPECT_NE(s.assignment[2], 0);
}

TEST(Placement, ExhaustiveMatchesOrBeatsGreedy) {
  const PlacementProblem p = SmallProblem();
  const PlacementSolution greedy = SolveGreedy(p);
  auto exact = SolveExhaustive(p);
  ASSERT_TRUE(exact.ok());
  EXPECT_LE(exact->cost, greedy.cost + 1e-9);
  EXPECT_TRUE(p.Feasible(exact->assignment));
}

TEST(Placement, ExhaustiveRefusesHugeSpaces) {
  PlacementProblem p;
  p.tasks.resize(30, {0.1, 1, 0, false, 0});
  p.nodes.resize(10, {"n", 100, 1e6, 2, true, 1, 1});
  EXPECT_FALSE(SolveExhaustive(p).ok());
}

TEST(Placement, PsoAndAcoBeatRandom) {
  PlacementProblem p;
  util::Rng setup(7);
  for (int i = 0; i < 12; ++i) {
    p.tasks.push_back({setup.Uniform(0.2, 2.0), setup.Uniform(64, 512),
                       static_cast<int>(setup.NextBounded(2)), setup.NextBool(0.25),
                       setup.Uniform(1, 300)});
  }
  p.nodes = {
      {"e0", 6.0, 4096, 0, true, 800, 2},   {"e1", 6.0, 4096, 1, true, 850, 2},
      {"f0", 16.0, 16384, 1, false, 400, 8}, {"f1", 16.0, 16384, 2, false, 420, 8},
      {"c0", 128.0, 262144, 2, false, 150, 30},
  };
  util::Rng r1(11), r2(12), r3(13);
  // Average several random draws for a fair baseline.
  double random_cost = 0.0;
  for (int i = 0; i < 20; ++i) random_cost += SolveRandom(p, r1).cost;
  random_cost /= 20;
  const PlacementSolution pso = SolvePso(p, r2);
  const PlacementSolution aco = SolveAco(p, r3);
  EXPECT_LT(pso.cost, random_cost);
  EXPECT_LT(aco.cost, random_cost);
  EXPECT_TRUE(p.Feasible(pso.assignment));
  EXPECT_TRUE(p.Feasible(aco.assignment));
}

TEST(Placement, CostPenalizesOverCommit) {
  PlacementProblem p;
  p.tasks = {{4.0, 100, 0, false, 0}, {4.0, 100, 0, false, 0}};
  p.nodes = {{"tiny", 5.0, 1e6, 2, true, 100, 1},
             {"big", 50.0, 1e6, 2, true, 100, 1}};
  // Both on tiny: overcommitted -> must cost far more than split.
  EXPECT_GT(p.Cost({0, 0}), p.Cost({0, 1}) * 100);
  EXPECT_TRUE(p.Feasible({0, 1}));
  EXPECT_FALSE(p.Feasible({0, 0}));
}

TEST(Rules, TableSizeAndIndexing) {
  RuleSpec spec;
  spec.feature_levels = {3, 4, 2};
  spec.actions = 5;
  EXPECT_EQ(spec.TableSize(), 24u);
  EXPECT_EQ(spec.StateIndex({0, 0, 0}), 0u);
  EXPECT_EQ(spec.StateIndex({2, 3, 1}), 23u);
  EXPECT_EQ(spec.StateIndex({1, 0, 0}), 8u);
  // Out-of-range features clamp instead of overflowing.
  EXPECT_EQ(spec.StateIndex({99, 99, 99}), 23u);
}

TEST(Rules, RandomPolicyActsWithinRange) {
  RuleSpec spec;
  spec.feature_levels = {4, 4};
  spec.actions = 3;
  util::Rng rng(5);
  const RulePolicy p = RulePolicy::Random(spec, rng);
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      const int act = p.Act({a, b});
      EXPECT_GE(act, 0);
      EXPECT_LT(act, 3);
    }
  }
}

TEST(Rules, EvolutionLearnsTargetPolicy) {
  // Fitness: match action = (f0 + f1) % actions for every state.
  RuleSpec spec;
  spec.feature_levels = {4, 4};
  spec.actions = 4;
  const auto fitness = [&](const RulePolicy& p) {
    int correct = 0;
    for (int a = 0; a < 4; ++a) {
      for (int b = 0; b < 4; ++b) {
        if (p.Act({a, b}) == (a + b) % 4) ++correct;
      }
    }
    return static_cast<double>(correct);
  };
  util::Rng rng(6);
  GaConfig config;
  config.generations = 60;
  config.population = 40;
  const EvolutionResult r = EvolveRules(spec, fitness, rng, config);
  EXPECT_GE(r.best_fitness, 15.0) << "should learn nearly all 16 states";
  EXPECT_GE(r.fitness_history.size(), 10u);
  // Fitness is monotone non-decreasing over generations (elitism).
  for (std::size_t i = 1; i < r.fitness_history.size(); ++i) {
    EXPECT_GE(r.fitness_history[i] + 1e-9, r.fitness_history[i - 1]);
  }
}

TEST(Rules, EvolutionBeatsRandomBaseline) {
  RuleSpec spec;
  spec.feature_levels = {3, 3, 3};
  spec.actions = 3;
  const auto fitness = [&](const RulePolicy& p) {
    // Reward always choosing action 2 in "overloaded" states (f0 == 2).
    double score = 0;
    for (int a = 0; a < 3; ++a)
      for (int b = 0; b < 3; ++b)
        for (int c = 0; c < 3; ++c)
          if (a == 2 && p.Act({a, b, c}) == 2) score += 1;
    return score;
  };
  util::Rng rng(7);
  const EvolutionResult evolved = EvolveRules(spec, fitness, rng);
  util::Rng rng2(8);
  double random_best = 0;
  for (int i = 0; i < 10; ++i) {
    random_best = std::max(random_best, fitness(RulePolicy::Random(spec, rng2)));
  }
  EXPECT_GT(evolved.best_fitness, random_best);
  EXPECT_NEAR(evolved.best_fitness, 9.0, 1.0);
}

}  // namespace
}  // namespace myrtus::swarm
