// Known-answer tests for SHA-256/512 (FIPS 180-2 appendices), HMAC (RFC
// 4231), HKDF (RFC 5869), and ASCON-Hash (NIST LWC KAT).
#include <gtest/gtest.h>

#include "security/ascon.hpp"
#include "security/hmac.hpp"
#include "security/sha2.hpp"
#include "util/bytes.hpp"

namespace myrtus::security {
namespace {

using util::Bytes;
using util::BytesOf;
using util::FromHex;
using util::ToHex;

TEST(Sha256, Fips180EmptyString) {
  EXPECT_EQ(ToHex(Sha256::Digest(BytesOf(""))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Fips180Abc) {
  EXPECT_EQ(ToHex(Sha256::Digest(BytesOf("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, Fips180TwoBlockMessage) {
  EXPECT_EQ(ToHex(Sha256::Digest(BytesOf(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  EXPECT_EQ(ToHex(h.Final()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const Bytes msg = BytesOf("The MYRTUS computing continuum");
  Sha256 h;
  for (std::uint8_t b : msg) h.Update(&b, 1);
  EXPECT_EQ(h.Final(), Sha256::Digest(msg));
}

TEST(Sha256, BoundarySizedInputs) {
  // Exercise padding around the 55/56/63/64-byte boundaries.
  for (std::size_t n : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const Bytes msg(n, 0x61);
    Sha256 split;
    split.Update(msg.data(), n / 2);
    split.Update(msg.data() + n / 2, n - n / 2);
    EXPECT_EQ(split.Final(), Sha256::Digest(msg)) << "n=" << n;
  }
}

TEST(Sha512, Fips180EmptyString) {
  EXPECT_EQ(ToHex(Sha512::Digest(BytesOf(""))),
            "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce"
            "47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e");
}

TEST(Sha512, Fips180Abc) {
  EXPECT_EQ(ToHex(Sha512::Digest(BytesOf("abc"))),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
            "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f");
}

TEST(Sha512, Fips180TwoBlockMessage) {
  EXPECT_EQ(ToHex(Sha512::Digest(BytesOf(
                "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn"
                "hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"))),
            "8e959b75dae313da8cf4f72814fc143f8f7779c6eb9f7fa17299aeadb6889018"
            "501d289e4900f7e4331b99dec4b5433ac7d329eeb6dd26545e96e55b874be909");
}

TEST(Sha512, BoundarySizedInputs) {
  for (std::size_t n : {111u, 112u, 113u, 127u, 128u, 129u, 255u, 256u}) {
    const Bytes msg(n, 0x62);
    Sha512 split;
    split.Update(msg.data(), n / 3);
    split.Update(msg.data() + n / 3, n - n / 3);
    EXPECT_EQ(split.Final(), Sha512::Digest(msg)) << "n=" << n;
  }
}

TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const Bytes data = BytesOf("Hi There");
  EXPECT_EQ(ToHex(HmacSha256(key, data)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
  EXPECT_EQ(ToHex(HmacSha512(key, data)),
            "87aa7cdea5ef619d4ff0b4241a1d6cb02379f4e2ce4ec2787ad0b30545e17cde"
            "daa833b7d6b8a702038b274eaea3f4e4be9d914eeb61f1702e696c203a126854");
}

TEST(Hmac, Rfc4231Case2JeffeKey) {
  const Bytes key = BytesOf("Jefe");
  const Bytes data = BytesOf("what do ya want for nothing?");
  EXPECT_EQ(ToHex(HmacSha256(key, data)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, LongKeyIsHashedFirst) {
  // RFC 4231 test case 6: 131-byte key.
  const Bytes key(131, 0xaa);
  const Bytes data = BytesOf("Test Using Larger Than Block-Size Key - Hash Key First");
  EXPECT_EQ(ToHex(HmacSha256(key, data)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hkdf, Rfc5869Case1) {
  auto ikm = FromHex("0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b");
  auto salt = FromHex("000102030405060708090a0b0c");
  ASSERT_TRUE(ikm.ok() && salt.ok());
  const std::string info = "\xf0\xf1\xf2\xf3\xf4\xf5\xf6\xf7\xf8\xf9";
  const Bytes okm = HkdfSha256(*ikm, *salt, info, 42);
  EXPECT_EQ(ToHex(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(Hkdf, ProducesRequestedLength) {
  for (std::size_t len : {1u, 16u, 31u, 32u, 33u, 64u, 100u}) {
    EXPECT_EQ(HkdfSha256(BytesOf("secret"), BytesOf("salt"), "ctx", len).size(), len);
  }
}

TEST(Hkdf, DistinctInfoGivesDistinctKeys) {
  const Bytes a = HkdfSha256(BytesOf("secret"), {}, "client", 32);
  const Bytes b = HkdfSha256(BytesOf("secret"), {}, "server", 32);
  EXPECT_NE(a, b);
}

TEST(AsconHash, NistLwcEmptyKat) {
  EXPECT_EQ(ToHex(AsconHash(BytesOf(""))),
            "7346bc14f036e87ae03d0997913088f5f68411434b3cf8b54fa796a80d251f91");
}

TEST(AsconHash, DigestIs32Bytes) {
  EXPECT_EQ(AsconHash(BytesOf("myrtus")).size(), 32u);
}

TEST(AsconHash, DistinctInputsDistinctDigests) {
  EXPECT_NE(AsconHash(BytesOf("a")), AsconHash(BytesOf("b")));
  EXPECT_NE(AsconHash(Bytes{}), AsconHash(Bytes{0x00}));
}

TEST(AsconHash, BlockBoundaryStability) {
  // Inputs spanning 7/8/9 bytes exercise the 64-bit rate padding.
  for (std::size_t n : {7u, 8u, 9u, 15u, 16u, 17u}) {
    const Bytes m1(n, 0x41);
    Bytes m2 = m1;
    m2.back() ^= 1;
    EXPECT_NE(AsconHash(m1), AsconHash(m2)) << "n=" << n;
  }
}

}  // namespace
}  // namespace myrtus::security
