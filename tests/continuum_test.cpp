// Device execution/energy models, node queueing and PMCs, and the Fig. 2
// infrastructure builder.
#include <gtest/gtest.h>

#include "continuum/device.hpp"
#include "continuum/infrastructure.hpp"
#include "continuum/node.hpp"

namespace myrtus::continuum {
namespace {

using sim::SimTime;

TaskDemand SmallTask() {
  TaskDemand d;
  d.cycles = 1'000'000;  // 1 Mcycle
  d.bytes_in = 10'000;
  d.bytes_out = 1'000;
  d.parallel_fraction = 0.5;
  return d;
}

TEST(Device, EstimateScalesWithClock) {
  Device d = MakeBigCore("big");
  TaskDemand task = SmallTask();
  ASSERT_TRUE(d.SetOperatingPoint(0).ok());  // 1.8 GHz
  const auto fast = d.Estimate(task);
  ASSERT_TRUE(d.SetOperatingPoint(2).ok());  // 0.6 GHz
  const auto slow = d.Estimate(task);
  EXPECT_GT(slow.latency, fast.latency);
}

TEST(Device, LowerPointSavesEnergyOnComputeBoundWork) {
  Device d = MakeBigCore("big");
  TaskDemand task;
  task.cycles = 100'000'000;
  ASSERT_TRUE(d.SetOperatingPoint(0).ok());
  const auto fast = d.Estimate(task);
  ASSERT_TRUE(d.SetOperatingPoint(2).ok());
  const auto slow = d.Estimate(task);
  // 0.6GHz/420mW vs 1.8GHz/2200mW: energy/cycle favors the low point.
  EXPECT_LT(slow.energy_mj, fast.energy_mj);
}

TEST(Device, AcceleratorOnlyHelpsAccelerableWork) {
  Device fpga = MakeFpgaAccelerator("fpga");
  Device cpu = MakeBigCore("cpu");
  TaskDemand plain = SmallTask();
  plain.cycles = 50'000'000;
  TaskDemand kernel = plain;
  kernel.accelerable = true;
  // FPGA dominates CPU for the accelerable kernel...
  EXPECT_LT(fpga.Estimate(kernel).latency, cpu.Estimate(kernel).latency);
  // ...but at its slow fabric clock it loses on non-accelerable code.
  EXPECT_GT(fpga.Estimate(plain).latency, cpu.Estimate(plain).latency);
}

TEST(Device, ParallelFractionFollowsAmdahl) {
  Device d = MakeServerCpu("srv", 16, 3.0);
  TaskDemand serial;
  serial.cycles = 1'000'000'000;
  serial.parallel_fraction = 0.0;
  TaskDemand parallel = serial;
  parallel.parallel_fraction = 1.0;
  const double ratio = d.Estimate(serial).latency.ToSecondsF() /
                       d.Estimate(parallel).latency.ToSecondsF();
  EXPECT_NEAR(ratio, 16.0, 0.01);
}

TEST(Device, OperatingPointSwitchCountsAsReconfiguration) {
  Device d = MakeFpgaAccelerator("fpga");
  EXPECT_EQ(d.reconfigurations(), 0u);
  ASSERT_TRUE(d.SetOperatingPoint(1).ok());
  ASSERT_TRUE(d.SetOperatingPoint(1).ok());  // no-op, same point
  ASSERT_TRUE(d.SetOperatingPoint(2).ok());
  EXPECT_EQ(d.reconfigurations(), 2u);
  EXPECT_FALSE(d.SetOperatingPoint(9).ok());
  EXPECT_GT(d.reconfigure_cost().ns, 0);
}

TEST(Node, ExecutesAndReports) {
  sim::Engine engine;
  ComputeNode node(engine, "edge-0", Layer::kEdge, "hmpsoc",
                   security::SecurityLevel::kLow, 2048);
  node.AddDevice(MakeBigCore("edge-0/big"));
  bool done = false;
  node.Submit(SmallTask(), [&](const TaskReport& r) {
    EXPECT_EQ(r.node_id, "edge-0");
    EXPECT_GT(r.service.ns, 0);
    EXPECT_GT(r.energy_mj, 0.0);
    EXPECT_EQ(r.queued, SimTime::Zero());
    done = true;
  });
  engine.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(node.tasks_completed(), 1u);
  EXPECT_GT(node.total_energy_mj(), 0.0);
}

TEST(Node, FifoQueueingAddsWait) {
  sim::Engine engine;
  ComputeNode node(engine, "n", Layer::kEdge, "multicore",
                   security::SecurityLevel::kLow, 1024);
  node.AddDevice(MakeBigCore("n/big"));
  std::vector<SimTime> queue_times;
  for (int i = 0; i < 3; ++i) {
    node.Submit(SmallTask(), 0,
                [&](const TaskReport& r) { queue_times.push_back(r.queued); });
  }
  engine.Run();
  ASSERT_EQ(queue_times.size(), 3u);
  EXPECT_EQ(queue_times[0], SimTime::Zero());
  EXPECT_GT(queue_times[1], SimTime::Zero());
  EXPECT_GT(queue_times[2], queue_times[1]);
}

TEST(Node, BestDevicePrefersFabricForKernels) {
  sim::Engine engine;
  ComputeNode node(engine, "n", Layer::kEdge, "hmpsoc",
                   security::SecurityLevel::kLow, 1024);
  node.AddDevice(MakeBigCore("n/big"));        // 0
  node.AddDevice(MakeFpgaAccelerator("n/fpga"));  // 1
  TaskDemand kernel = SmallTask();
  kernel.cycles = 100'000'000;
  kernel.accelerable = true;
  EXPECT_EQ(node.BestDeviceFor(kernel), 1u);
  TaskDemand plain = kernel;
  plain.accelerable = false;
  EXPECT_EQ(node.BestDeviceFor(plain), 0u);
}

TEST(Node, MemoryReservationEnforced) {
  sim::Engine engine;
  ComputeNode node(engine, "n", Layer::kFog, "fmdc",
                   security::SecurityLevel::kHigh, 1000);
  EXPECT_TRUE(node.ReserveMemory(600).ok());
  EXPECT_TRUE(node.ReserveMemory(400).ok());
  EXPECT_FALSE(node.ReserveMemory(1).ok());
  node.ReleaseMemory(500);
  EXPECT_TRUE(node.ReserveMemory(500).ok());
  EXPECT_EQ(node.mem_allocated_mb(), 1000u);
}

TEST(Node, UtilizationTracksBusyTime) {
  sim::Engine engine;
  ComputeNode node(engine, "n", Layer::kEdge, "multicore",
                   security::SecurityLevel::kLow, 1024);
  node.AddDevice(MakeBigCore("n/big"));
  TaskDemand task;
  task.cycles = 288'000'000;  // 100ms at 1.8GHz*1.6
  node.Submit(task, 0, nullptr);
  engine.RunUntil(SimTime::Millis(200));
  const double u = node.Utilization(0);
  EXPECT_NEAR(u, 0.5, 0.05);
}

TEST(Infrastructure, BuildsAllLayers) {
  sim::Engine engine;
  InfrastructureSpec spec;
  Infrastructure infra = BuildInfrastructure(engine, spec);
  EXPECT_EQ(infra.NodesInLayer(Layer::kEdge).size(), 6u);
  EXPECT_EQ(infra.NodesInLayer(Layer::kFog).size(), 2u);  // gw + fmdc
  EXPECT_EQ(infra.NodesInLayer(Layer::kCloud).size(), 1u);
  EXPECT_NE(infra.FindNode("edge-0"), nullptr);
  EXPECT_EQ(infra.FindNode("nope"), nullptr);
  EXPECT_EQ(infra.DefaultGateway(), "gw-0");
}

TEST(Infrastructure, EveryEdgeNodeReachesCloud) {
  sim::Engine engine;
  Infrastructure infra = BuildInfrastructure(engine, {});
  for (ComputeNode* edge : infra.NodesInLayer(Layer::kEdge)) {
    auto route = infra.topology.FindRoute(edge->id(), "cloud-0");
    ASSERT_TRUE(route.ok()) << edge->id();
    // edge -> gw -> fmdc -> cloud: 2 + 5 + 25 ms.
    EXPECT_EQ(route->propagation, SimTime::Millis(32));
  }
}

TEST(Infrastructure, SecurityLevelsFollowLayers) {
  sim::Engine engine;
  Infrastructure infra = BuildInfrastructure(engine, {});
  for (ComputeNode* n : infra.NodesInLayer(Layer::kCloud)) {
    EXPECT_EQ(n->security_level(), security::SecurityLevel::kHigh);
  }
  for (ComputeNode* n : infra.NodesInLayer(Layer::kEdge)) {
    EXPECT_EQ(n->security_level(), security::SecurityLevel::kLow);
  }
}

TEST(Infrastructure, HmpsocNodesHaveFpga) {
  sim::Engine engine;
  Infrastructure infra = BuildInfrastructure(engine, {});
  int fpga_nodes = 0;
  for (ComputeNode* n : infra.NodesInLayer(Layer::kEdge)) {
    for (const Device& d : n->devices()) {
      if (d.kind() == DeviceKind::kFpgaAccelerator) {
        ++fpga_nodes;
        break;
      }
    }
  }
  EXPECT_EQ(fpga_nodes, 2);
}

TEST(Infrastructure, CloudOutcomputesEdge) {
  sim::Engine engine;
  Infrastructure infra = BuildInfrastructure(engine, {});
  double edge_cap = 0.0;
  for (ComputeNode* n : infra.NodesInLayer(Layer::kEdge)) {
    edge_cap += n->CpuCapacity();
  }
  const double cloud_cap = infra.FindNode("cloud-0")->CpuCapacity();
  EXPECT_GT(cloud_cap, 10 * edge_cap);
}

TEST(Infrastructure, NoGatewaysStillConnected) {
  sim::Engine engine;
  InfrastructureSpec spec;
  spec.gateways = 0;
  spec.fmdcs = 0;
  Infrastructure infra = BuildInfrastructure(engine, spec);
  for (ComputeNode* edge : infra.NodesInLayer(Layer::kEdge)) {
    EXPECT_TRUE(infra.topology.FindRoute(edge->id(), "cloud-0").ok());
  }
}

}  // namespace
}  // namespace myrtus::continuum
