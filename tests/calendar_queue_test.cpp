#include "sim/calendar_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <queue>
#include <vector>

#include "util/rng.hpp"

namespace myrtus::sim {
namespace {

// Reference model: a binary heap with the same (at_ns, seq) order the
// calendar queue promises. Property tests drive both structures with one
// operation stream and demand identical pop sequences.
struct Later {
  bool operator()(const QueuedEvent& a, const QueuedEvent& b) const {
    if (a.at_ns != b.at_ns) return a.at_ns > b.at_ns;
    return a.seq > b.seq;
  }
};
using ReferenceHeap =
    std::priority_queue<QueuedEvent, std::vector<QueuedEvent>, Later>;

QueuedEvent Ev(std::int64_t at_ns, std::uint64_t seq) {
  return QueuedEvent{at_ns, seq, seq, nullptr};
}

TEST(CalendarQueue, PopsByTimestampThenSeq) {
  CalendarQueue q;
  q.Push(Ev(30, 1));
  q.Push(Ev(10, 2));
  q.Push(Ev(10, 3));
  q.Push(Ev(20, 4));
  std::vector<std::uint64_t> seqs;
  QueuedEvent out;
  while (q.PopMin(out)) seqs.push_back(out.seq);
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{2, 3, 4, 1}));
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, FifoWithinEqualTimestamps) {
  CalendarQueue q;
  for (std::uint64_t s = 1; s <= 100; ++s) q.Push(Ev(5'000, s));
  QueuedEvent out;
  std::uint64_t expect = 1;
  while (q.PopMin(out)) EXPECT_EQ(out.seq, expect++);
  EXPECT_EQ(expect, 101u);
}

TEST(CalendarQueue, MatchesReferenceHeapUnderRandomWorkload) {
  util::Rng rng(0xC0FFEEu, "calendar-property");
  CalendarQueue q;
  ReferenceHeap ref;
  std::uint64_t seq = 1;
  std::int64_t clock = 0;

  for (int step = 0; step < 20'000; ++step) {
    const bool push = ref.empty() || rng.NextDouble() < 0.55;
    if (push) {
      // Mixed horizon: mostly near-future, occasionally far future to force
      // the queue through empty-day scans and year-wrap fallbacks.
      std::int64_t delta = static_cast<std::int64_t>(rng.NextBounded(1'000));
      if (rng.NextDouble() < 0.02) {
        delta += static_cast<std::int64_t>(rng.NextBounded(100) + 1) * 1'000'000;
      }
      const QueuedEvent ev = Ev(clock + delta, seq++);
      q.Push(Ev(ev.at_ns, ev.seq));
      ref.push(ev);
    } else {
      QueuedEvent got;
      ASSERT_TRUE(q.PopMin(got));
      const QueuedEvent want = ref.top();
      ref.pop();
      ASSERT_EQ(got.at_ns, want.at_ns) << "step " << step;
      ASSERT_EQ(got.seq, want.seq) << "step " << step;
      ASSERT_GE(got.at_ns, clock);  // time never runs backwards
      clock = got.at_ns;
    }
    ASSERT_EQ(q.size(), ref.size());
  }
  // Drain whatever is left and compare the tails too.
  QueuedEvent got;
  while (q.PopMin(got)) {
    const QueuedEvent want = ref.top();
    ref.pop();
    ASSERT_EQ(got.at_ns, want.at_ns);
    ASSERT_EQ(got.seq, want.seq);
  }
  EXPECT_TRUE(ref.empty());
}

TEST(CalendarQueue, ResizesWithPopulation) {
  CalendarQueue q;
  const std::size_t initial = q.bucket_count();
  for (std::uint64_t s = 0; s < 4096; ++s) {
    q.Push(Ev(static_cast<std::int64_t>(s) * 17, s));
  }
  EXPECT_GT(q.bucket_count(), initial);
  QueuedEvent out;
  while (q.PopMin(out)) {
  }
  EXPECT_EQ(q.bucket_count(), initial);  // shrinks back as it drains
}

TEST(CalendarQueue, SparseFarApartEvents) {
  // Events much farther apart than nbuckets * width exercise the full-year
  // fallback that jumps the cursor directly to the global minimum.
  CalendarQueue q;
  std::vector<std::int64_t> times = {0, 1'000'000'000, 7'000'000'000,
                                     7'000'000'001, 90'000'000'000};
  for (std::size_t i = 0; i < times.size(); ++i) {
    q.Push(Ev(times[times.size() - 1 - i], static_cast<std::uint64_t>(i)));
  }
  std::vector<std::int64_t> popped;
  QueuedEvent out;
  while (q.PopMin(out)) popped.push_back(out.at_ns);
  std::vector<std::int64_t> sorted = times;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(popped, sorted);
}

TEST(CalendarQueue, PushEarlierThanCursorReordersCorrectly) {
  CalendarQueue q;
  q.Push(Ev(1'000, 1));
  q.Push(Ev(2'000, 2));
  QueuedEvent out;
  ASSERT_TRUE(q.PopMin(out));
  EXPECT_EQ(out.at_ns, 1'000);
  // An event landing before the cursor's current window must still pop next.
  q.Push(Ev(1'100, 3));
  ASSERT_TRUE(q.PopMin(out));
  EXPECT_EQ(out.at_ns, 1'100);
  ASSERT_TRUE(q.PopMin(out));
  EXPECT_EQ(out.at_ns, 2'000);
}

}  // namespace
}  // namespace myrtus::sim
