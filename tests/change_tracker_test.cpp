// ChangeTracker: multi-listener dirty bitmaps over the node change hooks,
// late-append syncing, KB watch-event mirroring, and the incremental fleet
// energy total.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "continuum/change_tracker.hpp"
#include "continuum/device.hpp"
#include "continuum/node.hpp"
#include "sim/engine.hpp"

namespace myrtus::continuum {
namespace {

std::unique_ptr<ComputeNode> MakeNode(sim::Engine& engine,
                                      const std::string& id) {
  auto node = std::make_unique<ComputeNode>(engine, id, Layer::kEdge, "riscv",
                                            security::SecurityLevel::kLow,
                                            1024);
  node->AddDevice(MakeBigCore(id + "-core"));
  return node;
}

class ChangeTrackerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    nodes_.push_back(MakeNode(engine_, "n-0"));
    nodes_.push_back(MakeNode(engine_, "n-1"));
    nodes_.push_back(MakeNode(engine_, "n-2"));
  }

  std::vector<std::size_t> Drained(int listener) {
    std::vector<std::size_t> out;
    tracker_.Drain(nodes_, listener, out);
    return out;
  }

  sim::Engine engine_;
  ChangeTracker::NodeList nodes_;
  ChangeTracker tracker_;
};

TEST_F(ChangeTrackerTest, FreshListenerSeesEveryNodeOnceThenNothing) {
  const int listener = tracker_.AddListener(nodes_);
  EXPECT_EQ(Drained(listener), (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_TRUE(Drained(listener).empty()) << "drain clears the bitmap";
}

TEST_F(ChangeTrackerTest, MutationsMarkOnlyTheTouchedNode) {
  const int listener = tracker_.AddListener(nodes_);
  (void)Drained(listener);
  nodes_[1]->SetUp(false);
  EXPECT_EQ(Drained(listener), (std::vector<std::size_t>{1}));
  ASSERT_TRUE(nodes_[2]->ReserveMemory(64).ok());
  nodes_[2]->ReleaseMemory(64);
  EXPECT_EQ(Drained(listener), (std::vector<std::size_t>{2}));
}

TEST_F(ChangeTrackerTest, ListenersDrainIndependently) {
  const int first = tracker_.AddListener(nodes_);
  (void)Drained(first);
  const int second = tracker_.AddListener(nodes_);
  nodes_[0]->SetUp(false);
  // `second` still owes its initial full view plus the new mutation;
  // `first` only the mutation.
  EXPECT_EQ(Drained(second), (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(Drained(first), (std::vector<std::size_t>{0}));
}

TEST_F(ChangeTrackerTest, LateAppendedNodesAreAttachedAndReportedDirty) {
  const int listener = tracker_.AddListener(nodes_);
  (void)Drained(listener);
  nodes_.push_back(MakeNode(engine_, "n-3"));
  EXPECT_EQ(Drained(listener), (std::vector<std::size_t>{3}));
  nodes_[3]->SetUp(false);
  EXPECT_EQ(Drained(listener), (std::vector<std::size_t>{3}))
      << "hook attached to the appended node";
}

TEST_F(ChangeTrackerTest, MarkDirtyByIdMirrorsWatchEvents) {
  const int listener = tracker_.AddListener(nodes_);
  (void)Drained(listener);
  tracker_.MarkDirtyById(nodes_, "n-1", listener);
  tracker_.MarkDirtyById(nodes_, "no-such-node", listener);  // ignored
  EXPECT_EQ(Drained(listener), (std::vector<std::size_t>{1}));
}

TEST_F(ChangeTrackerTest, RemovedListenerStopsReceivingEvents) {
  const int retired = tracker_.AddListener(nodes_);
  const int live = tracker_.AddListener(nodes_);
  (void)Drained(retired);
  (void)Drained(live);
  tracker_.RemoveListener(retired);
  nodes_[0]->SetUp(false);
  EXPECT_TRUE(Drained(retired).empty());
  EXPECT_EQ(Drained(live), (std::vector<std::size_t>{0}));
}

TEST_F(ChangeTrackerTest, EnergyTotalTracksTaskCompletions) {
  EXPECT_DOUBLE_EQ(tracker_.TotalEnergyMj(nodes_), 0.0);
  TaskDemand task;
  task.cycles = 5'000'000;
  nodes_[0]->Submit(task, [](const TaskReport&) {});
  nodes_[2]->Submit(task, [](const TaskReport&) {});
  // LINT: discard(drain the sim; completion counts are checked via energy)
  (void)engine_.Run();
  double walk = 0.0;
  for (const auto& node : nodes_) walk += node->total_energy_mj();
  EXPECT_GT(walk, 0.0);
  EXPECT_NEAR(tracker_.TotalEnergyMj(nodes_), walk, 1e-9 + 1e-9 * walk);
}

TEST_F(ChangeTrackerTest, EnergyAccruedBeforeAttachIsFoldedIn) {
  TaskDemand task;
  task.cycles = 5'000'000;
  nodes_[1]->Submit(task, [](const TaskReport&) {});
  // LINT: discard(drain the sim; completion counts are checked via energy)
  (void)engine_.Run();
  // First tracker contact happens after the completion: the attach-time fold
  // must pick up the already-accrued counter.
  double walk = 0.0;
  for (const auto& node : nodes_) walk += node->total_energy_mj();
  EXPECT_GT(walk, 0.0);
  EXPECT_NEAR(tracker_.TotalEnergyMj(nodes_), walk, 1e-9 + 1e-9 * walk);
}

}  // namespace
}  // namespace myrtus::continuum
