// Drives myrtus_lint's flow-aware rule families (parallel-capture-race,
// statusor-use-before-ok, rng-substream-discipline) over the checked-in
// fixtures in tests/lint_fixtures/, and unit-tests the syntactic front-end:
// the CFG builder's edge wiring and the lambda/function extractor. Fixtures
// are read from disk (LINT_FIXTURES_DIR) but analyzed under synthetic
// repo-relative paths so module attribution can be chosen per case.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ast.hpp"
#include "cfg.hpp"
#include "flow_rules.hpp"
#include "rules.hpp"

namespace myrtus::lint {
namespace {

std::string ReadFixture(const std::string& name) {
  const std::string path = std::string(LINT_FIXTURES_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Lints one fixture as if it lived at `as_path` inside the repo.
std::vector<Finding> LintFixture(const std::string& name,
                                 const std::string& as_path) {
  std::vector<FileContext> files;
  files.push_back(MakeFileContext(as_path, ReadFixture(name)));
  return RunRules(files, {});
}

std::size_t CountRule(const std::vector<Finding>& findings,
                      const std::string& rule) {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [&rule](const Finding& f) { return f.rule == rule; }));
}

/// 1-based line of the first occurrence of `marker` in `text`.
int LineOfMarker(const std::string& text, const std::string& marker) {
  const std::size_t pos = text.find(marker);
  EXPECT_NE(pos, std::string::npos) << "marker not in fixture: " << marker;
  return 1 + static_cast<int>(std::count(text.begin(), text.begin() +
                                             static_cast<std::ptrdiff_t>(pos),
                                         '\n'));
}

bool HasFindingAtLine(const std::vector<Finding>& findings,
                      const std::string& rule, int line) {
  return std::any_of(findings.begin(), findings.end(), [&](const Finding& f) {
    return f.rule == rule && f.line == line;
  });
}

// --- parallel-capture-race ---------------------------------------------------

TEST(LintFlowRace, FiresOnUnindexedWritesAndUnsafeAliases) {
  const std::string src = ReadFixture("flow_race_fire.cpp");
  const auto findings =
      LintFixture("flow_race_fire.cpp", "src/fx/flow_race_fire.cpp");
  // Two direct writes, plus the unsafe alias binding and the write through it.
  EXPECT_EQ(CountRule(findings, "parallel-capture-race"), 4u);
  EXPECT_EQ(findings.size(), 4u) << "no other rule may fire on this fixture";
  EXPECT_TRUE(HasFindingAtLine(findings, "parallel-capture-race",
                               LineOfMarker(src, "total += xs[i]")));
  EXPECT_TRUE(HasFindingAtLine(findings, "parallel-capture-race",
                               LineOfMarker(src, "out[0] = xs[i]")));
  EXPECT_TRUE(HasFindingAtLine(findings, "parallel-capture-race",
                               LineOfMarker(src, "bucket.push_back")));
  for (const Finding& f : findings) {
    EXPECT_GT(f.col, 0) << "flow findings carry exact columns";
  }
}

TEST(LintFlowRace, FiresInsideNestedLambda) {
  const std::string src = ReadFixture("flow_race_nested_fire.cpp");
  const auto findings = LintFixture("flow_race_nested_fire.cpp",
                                    "src/fx/flow_race_nested_fire.cpp");
  EXPECT_EQ(CountRule(findings, "parallel-capture-race"), 1u);
  EXPECT_TRUE(HasFindingAtLine(findings, "parallel-capture-race",
                               LineOfMarker(src, "hits.push_back")));
}

TEST(LintFlowRace, ShardIndexedWritesStaySilent) {
  const auto findings =
      LintFixture("flow_race_clean.cpp", "src/fx/flow_race_clean.cpp");
  EXPECT_EQ(findings.size(), 0u)
      << "first: " << (findings.empty() ? "" : findings[0].message);
}

TEST(LintFlowRace, NestedValueCaptureStaysSilent) {
  const auto findings = LintFixture("flow_race_nested_clean.cpp",
                                    "src/fx/flow_race_nested_clean.cpp");
  EXPECT_EQ(findings.size(), 0u)
      << "first: " << (findings.empty() ? "" : findings[0].message);
}

// --- statusor-use-before-ok --------------------------------------------------

TEST(LintFlowStatusOr, FiresOnUncheckedDerefs) {
  const std::string src = ReadFixture("flow_statusor_fire.cpp");
  const auto findings =
      LintFixture("flow_statusor_fire.cpp", "src/fx/flow_statusor_fire.cpp");
  EXPECT_EQ(CountRule(findings, "statusor-use-before-ok"), 4u);
  EXPECT_EQ(findings.size(), 4u) << "no other rule may fire on this fixture";
  EXPECT_TRUE(HasFindingAtLine(findings, "statusor-use-before-ok",
                               LineOfMarker(src, "return v.value();")));
  EXPECT_TRUE(HasFindingAtLine(findings, "statusor-use-before-ok",
                               LineOfMarker(src, "return *v + 1;")));
  // The canonical if/else join: only one branch checked, the deref after the
  // join fires.
  EXPECT_TRUE(HasFindingAtLine(findings, "statusor-use-before-ok",
                               LineOfMarker(src, "return *v - penalty;")));
  // Reassignment invalidates an earlier check.
  EXPECT_TRUE(HasFindingAtLine(
      findings, "statusor-use-before-ok",
      LineOfMarker(src, "return *v;         // FIRE")));
}

TEST(LintFlowStatusOr, GuardShapesStaySilent) {
  const auto findings =
      LintFixture("flow_statusor_clean.cpp", "src/fx/flow_statusor_clean.cpp");
  EXPECT_EQ(findings.size(), 0u)
      << "first: " << (findings.empty() ? "" : findings[0].message);
}

// --- rng-substream-discipline ------------------------------------------------

TEST(LintFlowRng, FiresInParallelBodyAndOnDuplicateIdentity) {
  const std::string src = ReadFixture("flow_rng_fire.cpp");
  const auto findings =
      LintFixture("flow_rng_fire.cpp", "src/fx/flow_rng_fire.cpp");
  EXPECT_EQ(CountRule(findings, "rng-substream-discipline"), 2u);
  const int parallel_line = LineOfMarker(src, "util::Rng rng(seed, \"fx.jitter\")");
  const int dup_line =
      LineOfMarker(src, "return util::Rng(42, \"fx.shared\");  // FIRE");
  EXPECT_TRUE(
      HasFindingAtLine(findings, "rng-substream-discipline", parallel_line));
  EXPECT_TRUE(HasFindingAtLine(findings, "rng-substream-discipline", dup_line));
  for (const Finding& f : findings) {
    if (f.line == dup_line) {
      EXPECT_NE(f.message.find("duplicate"), std::string::npos);
      EXPECT_NE(f.message.find("fx.shared"), std::string::npos);
    }
  }
}

TEST(LintFlowRng, SubstreamShapesStaySilent) {
  const auto findings =
      LintFixture("flow_rng_clean.cpp", "src/fx/flow_rng_clean.cpp");
  EXPECT_EQ(findings.size(), 0u)
      << "first: " << (findings.empty() ? "" : findings[0].message);
}

TEST(LintFlowRng, DuplicateIdentityOutsideSrcIsExempt) {
  // Same fixture under a tests/ path: the in-parallel ctor still fires, the
  // duplicate-identity half (production modules only) does not.
  const auto findings =
      LintFixture("flow_rng_fire.cpp", "tests/flow_rng_fire.cpp");
  EXPECT_EQ(CountRule(findings, "rng-substream-discipline"), 1u);
}

// --- CFG builder -------------------------------------------------------------

struct BuiltCfg {
  std::string code;
  Cfg cfg;
};

BuiltCfg BuildFromFunction(const std::string& src) {
  BuiltCfg out;
  out.code = src;
  const std::size_t open = src.find('{');
  EXPECT_NE(open, std::string::npos);
  const std::size_t close = MatchForward(src, open);
  EXPECT_NE(close, std::string::npos);
  const TextIndex index(src);
  out.cfg = BuildCfg(src, open, close, index);
  return out;
}

/// Index of the first non-entry/exit node whose span contains `text`.
int NodeWith(const BuiltCfg& b, const std::string& text) {
  for (std::size_t i = 2; i < b.cfg.nodes.size(); ++i) {
    const CfgNode& n = b.cfg.nodes[i];
    // LINT: allow(unsigned-underflow, CFG node spans satisfy begin <= end by
    // construction and the n.end > n.begin conjunct guards this very line)
    if (n.end > n.begin &&
        b.code.substr(n.begin, n.end - n.begin).find(text) !=
            std::string::npos) {
      return static_cast<int>(i);
    }
  }
  ADD_FAILURE() << "no CFG node contains: " << text;
  return -1;
}

bool HasEdge(const BuiltCfg& b, int from, int to) {
  const auto& succ = b.cfg.nodes[static_cast<std::size_t>(from)].succ;
  return std::find(succ.begin(), succ.end(), to) != succ.end();
}

TEST(LintCfg, IfElseBranchesAndJoin) {
  const BuiltCfg b =
      BuildFromFunction("void f(int c) { if (c) { a(); } else { b(); } d(); }");
  const int cond = NodeWith(b, "c");
  const int then_n = NodeWith(b, "a()");
  const int else_n = NodeWith(b, "b()");
  const int after = NodeWith(b, "d()");
  EXPECT_EQ(b.cfg.nodes[static_cast<std::size_t>(cond)].kind,
            CfgNode::Kind::kCondition);
  // succ[0] is the true edge, succ[1] the false edge.
  EXPECT_EQ(b.cfg.nodes[static_cast<std::size_t>(cond)].succ[0], then_n);
  EXPECT_EQ(b.cfg.nodes[static_cast<std::size_t>(cond)].succ[1], else_n);
  EXPECT_TRUE(HasEdge(b, then_n, after));
  EXPECT_TRUE(HasEdge(b, else_n, after));
  EXPECT_TRUE(HasEdge(b, after, b.cfg.exit));
}

TEST(LintCfg, WhileLoopWithBreak) {
  const BuiltCfg b = BuildFromFunction(
      "void f(int n) { while (n) { if (q) break; c(); } t(); }");
  const int loop_cond = NodeWith(b, "n");
  const int break_cond = NodeWith(b, "q");
  const int break_stmt = NodeWith(b, "break");
  const int body_stmt = NodeWith(b, "c()");
  const int after = NodeWith(b, "t()");
  EXPECT_EQ(b.cfg.nodes[static_cast<std::size_t>(loop_cond)].succ[0],
            break_cond);
  EXPECT_EQ(b.cfg.nodes[static_cast<std::size_t>(loop_cond)].succ[1], after);
  EXPECT_TRUE(HasEdge(b, break_stmt, after));  // break jumps past the loop
  EXPECT_TRUE(HasEdge(b, body_stmt, loop_cond));  // back edge
}

TEST(LintCfg, EarlyReturnWiresToExit) {
  const BuiltCfg b =
      BuildFromFunction("void f(int c) { if (c) return; g(); }");
  const int cond = NodeWith(b, "c");
  const int ret = NodeWith(b, "return");
  const int after = NodeWith(b, "g()");
  EXPECT_EQ(b.cfg.nodes[static_cast<std::size_t>(cond)].succ[0], ret);
  EXPECT_EQ(b.cfg.nodes[static_cast<std::size_t>(cond)].succ[1], after);
  EXPECT_TRUE(HasEdge(b, ret, b.cfg.exit));
  EXPECT_FALSE(HasEdge(b, ret, after));
}

TEST(LintCfg, ForLoopHeaderSplitsIntoInitCondIncrement) {
  const BuiltCfg b = BuildFromFunction(
      "void f(int n) { for (int i = 0; i < n; ++i) { s(); } u(); }");
  const int init = NodeWith(b, "int i = 0");
  const int cond = NodeWith(b, "i < n");
  const int incr = NodeWith(b, "++i");
  const int body = NodeWith(b, "s()");
  const int after = NodeWith(b, "u()");
  EXPECT_TRUE(HasEdge(b, init, cond));
  EXPECT_EQ(b.cfg.nodes[static_cast<std::size_t>(cond)].succ[0], body);
  EXPECT_EQ(b.cfg.nodes[static_cast<std::size_t>(cond)].succ[1], after);
  EXPECT_TRUE(HasEdge(b, body, incr));
  EXPECT_TRUE(HasEdge(b, incr, cond));
}

TEST(LintCfg, SwitchIsOneOpaqueStatement) {
  const BuiltCfg b = BuildFromFunction(
      "void f(int c) { switch (c) { case 1: a(); break; default: b(); } "
      "d(); }");
  const int sw = NodeWith(b, "switch");
  const int after = NodeWith(b, "d()");
  EXPECT_EQ(b.cfg.nodes[static_cast<std::size_t>(sw)].kind,
            CfgNode::Kind::kStatement);
  EXPECT_TRUE(HasEdge(b, sw, after));
  // The whole construct (including its internal break) is one node.
  const CfgNode& sw_node = b.cfg.nodes[static_cast<std::size_t>(sw)];
  // LINT: allow(unsigned-underflow, CFG node spans satisfy begin <= end by
  // construction)
  const std::string span =
      b.code.substr(sw_node.begin, sw_node.end - sw_node.begin);
  EXPECT_NE(span.find("default"), std::string::npos);
}

// --- AST front-end -----------------------------------------------------------

TEST(LintAst, LambdaCapturesParamsAndParallelAttribution) {
  const FileContext f = MakeFileContext(
      "src/util/x.cpp",
      "void g(std::size_t n) {\n"
      "  util::ParallelFor(n, [&total, count](const util::Shard& shard) {\n"
      "    use(shard);\n"
      "  });\n"
      "  auto h = [](int a) { return a; };\n"
      "}\n");
  const FileAst ast = BuildFileAst(f);
  ASSERT_EQ(ast.lambdas.size(), 2u);
  EXPECT_EQ(ast.lambdas[0].parallel_callee, "ParallelFor");
  EXPECT_EQ(ast.lambdas[0].ref_captures,
            std::vector<std::string>{"total"});
  EXPECT_EQ(ast.lambdas[0].value_captures,
            std::vector<std::string>{"count"});
  EXPECT_EQ(ast.lambdas[0].param_names,
            std::vector<std::string>{"shard"});
  EXPECT_FALSE(ast.lambdas[0].default_ref);
  EXPECT_TRUE(ast.lambdas[1].parallel_callee.empty());
}

TEST(LintAst, LambdaWrappedInAnotherCallIsNotAttributed) {
  const FileContext f = MakeFileContext(
      "src/util/x.cpp",
      "void g(std::size_t n) {\n"
      "  util::ParallelFor(n, wrap([&](const util::Shard& s) { use(s); }));\n"
      "}\n");
  const FileAst ast = BuildFileAst(f);
  ASSERT_EQ(ast.lambdas.size(), 1u);
  EXPECT_TRUE(ast.lambdas[0].parallel_callee.empty());
}

TEST(LintAst, FunctionExtractorFindsBodies) {
  const FileContext f = MakeFileContext(
      "src/util/x.cpp",
      "int Add(int a, int b) { return a + b; }\n"
      "struct S {\n"
      "  explicit S(int v) : v_(v) { Init(); }\n"
      "  int Get() const { return v_; }\n"
      "  int v_;\n"
      "};\n"
      "int forward_decl(int);\n");
  const FileAst ast = BuildFileAst(f);
  std::vector<std::string> names;
  for (const FunctionInfo& fn : ast.functions) names.push_back(fn.name);
  EXPECT_NE(std::find(names.begin(), names.end(), "Add"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "S"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "Get"), names.end());
  EXPECT_EQ(std::find(names.begin(), names.end(), "forward_decl"),
            names.end());
}

TEST(LintAst, TextIndexMapsOffsetsToLineAndColumn) {
  const TextIndex index("ab\ncde\nf");
  EXPECT_EQ(index.LineOf(0), 1);
  EXPECT_EQ(index.ColOf(0), 1);
  EXPECT_EQ(index.LineOf(3), 2);
  EXPECT_EQ(index.ColOf(5), 3);
  EXPECT_EQ(index.LineOf(7), 3);
}

}  // namespace
}  // namespace myrtus::lint
