// Unit tests for src/util/units.hpp — the conversion vocabulary the
// unit-mismatch lint rule recognizes, and the SubSat clamp the
// unsigned-underflow rule recommends.
#include "util/units.hpp"

#include <cstdint>
#include <limits>

#include <gtest/gtest.h>

namespace myrtus::util {
namespace {

TEST(SubSat, ClampsAtZero) {
  EXPECT_EQ(SubSat<std::uint64_t>(10, 3), 7u);
  EXPECT_EQ(SubSat<std::uint64_t>(3, 10), 0u);
  EXPECT_EQ(SubSat<std::uint64_t>(5, 5), 0u);
  EXPECT_EQ(SubSat<std::uint32_t>(0, std::numeric_limits<std::uint32_t>::max()),
            0u);
  // The whole point: the unclamped expression would wrap to a huge value.
  constexpr std::uint64_t cap = 4096;
  constexpr std::uint64_t alloc = 5120;  // peering reflection over-commit
  static_assert(SubSat(cap, alloc) == 0);
  static_assert(SubSat(alloc, cap) == 1024);
}

TEST(TimeConversions, IntegerGridRoundTrips) {
  EXPECT_EQ(MsToNs(1), 1000000u);
  EXPECT_EQ(MsToUs(1), 1000u);
  EXPECT_EQ(UsToNs(1), 1000u);
  EXPECT_EQ(NsToMs(MsToNs(250)), 250u);
  EXPECT_EQ(NsToUs(UsToNs(77)), 77u);
  EXPECT_EQ(UsToMs(MsToUs(42)), 42u);
  // Downward conversions floor, ledger-style.
  EXPECT_EQ(NsToMs(1999999), 1u);
  EXPECT_EQ(NsToUs(999), 0u);
}

TEST(TimeConversions, SecondsAreDouble) {
  EXPECT_DOUBLE_EQ(NsToS(1500000000), 1.5);
  EXPECT_DOUBLE_EQ(UsToS(250000), 0.25);
  EXPECT_DOUBLE_EQ(MsToS(1500), 1.5);
  EXPECT_EQ(SToNs(1.5), 1500000000u);
  EXPECT_EQ(SToUs(0.25), 250000u);
  EXPECT_EQ(SToMs(1.5), 1500u);
}

TEST(ByteConversions, PowersOfTwo) {
  EXPECT_EQ(KbToB(1), 1024u);
  EXPECT_EQ(MbToB(1), 1024u * 1024u);
  EXPECT_EQ(MbToKb(2), 2048u);
  EXPECT_EQ(BToKb(4096), 4u);
  EXPECT_EQ(BToMb(3u * 1024u * 1024u), 3u);
  EXPECT_EQ(KbToMb(2048), 2u);
  EXPECT_EQ(BToKb(1023), 0u);  // floors
}

TEST(RatioConversions, PctFrac) {
  EXPECT_DOUBLE_EQ(PctToFrac(85.0), 0.85);
  EXPECT_DOUBLE_EQ(FracToPct(0.125), 12.5);
  EXPECT_DOUBLE_EQ(FracToPct(PctToFrac(33.0)), 33.0);
}

TEST(EnergyConversions, PowerTimesDurationIsEnergy) {
  // 200 mW sustained for 3 s = 600 mJ.
  EXPECT_DOUBLE_EQ(MwToMj(200.0, 3.0), 600.0);
  EXPECT_DOUBLE_EQ(MjToMw(600.0, 3.0), 200.0);
  EXPECT_DOUBLE_EQ(MjToMw(600.0, 0.0), 0.0);  // degenerate duration
}

}  // namespace
}  // namespace myrtus::util
