// Telemetry layer: tracer causality, histogram quantiles, exporters, the
// legacy sim::Metrics bridge, and end-to-end span trees across the simulated
// continuum (pubsub hop, full contract-net negotiation).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "continuum/infrastructure.hpp"
#include "mirto/engine.hpp"
#include "net/pubsub.hpp"
#include "net/transport.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"
#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"
#include "tosca/csar.hpp"
#include "util/json.hpp"

namespace myrtus::telemetry {
namespace {

using sim::SimTime;

// Every test runs against a clean global sink with telemetry on, and leaves
// it off (the library default) so unrelated suites keep the free path.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ResetGlobal();
    SetEnabled(true);
  }
  void TearDown() override {
    SetEnabled(false);
    ResetGlobal();
  }
};

const SpanRecord* FindSpan(const std::vector<SpanRecord>& spans,
                           const std::string& name) {
  for (const SpanRecord& s : spans) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

TEST_F(TelemetryTest, SpansNestThroughImplicitContext) {
  Tracer& tracer = Global().tracer;
  std::int64_t now = 0;
  // LINT: deferred-capture-ok(now) -- clock only ticks inside this body;
  // TearDown's ResetGlobal() uninstalls it before anything else can call it
  tracer.set_clock([&now] { return now; });

  const SpanContext root = tracer.StartSpan("root", "test");
  tracer.PushContext(root);
  now = 100;
  const SpanContext child = tracer.StartSpan("child", "test");
  tracer.PushContext(child);
  now = 250;
  const SpanContext grandchild = tracer.StartSpan("leaf", "test");
  tracer.EndSpan(grandchild);
  tracer.PopContext();
  tracer.EndSpan(child);
  tracer.PopContext();
  now = 400;
  tracer.EndSpan(root);

  const auto& spans = tracer.finished();
  ASSERT_EQ(spans.size(), 3u);
  const SpanRecord* r = FindSpan(spans, "root");
  const SpanRecord* c = FindSpan(spans, "child");
  const SpanRecord* g = FindSpan(spans, "leaf");
  ASSERT_NE(r, nullptr);
  ASSERT_NE(c, nullptr);
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(r->parent_id, 0u);
  EXPECT_EQ(c->parent_id, r->span_id);
  EXPECT_EQ(g->parent_id, c->span_id);
  // One trace; sim-time stamps.
  EXPECT_EQ(c->trace_id, r->trace_id);
  EXPECT_EQ(g->trace_id, r->trace_id);
  EXPECT_EQ(r->start_ns, 0);
  EXPECT_EQ(r->end_ns, 400);
  EXPECT_EQ(g->start_ns, 250);
}

TEST_F(TelemetryTest, SpanContextJsonRoundtrip) {
  const SpanContext ctx{42, 7};
  const SpanContext back = SpanContext::FromJson(ctx.ToJson());
  EXPECT_EQ(back.trace_id, 42u);
  EXPECT_EQ(back.span_id, 7u);
  EXPECT_TRUE(back.valid());
  EXPECT_FALSE(SpanContext::FromJson(util::Json()).valid());
  EXPECT_FALSE(SpanContext::FromJson(util::Json::MakeObject()).valid());
}

TEST_F(TelemetryTest, TracerCapsFinishedSpans) {
  Tracer& tracer = Global().tracer;
  tracer.set_max_finished(4);
  for (int i = 0; i < 10; ++i) {
    tracer.EndSpan(tracer.StartSpan("s", "test"));
  }
  EXPECT_EQ(tracer.finished().size(), 4u);
  EXPECT_EQ(tracer.dropped_spans(), 6u);
}

TEST_F(TelemetryTest, HistogramQuantilesTrackExactValues) {
  // 1..1000 uniform into 10-wide buckets: the interpolation error is bounded
  // by one bucket width.
  Histogram h(Histogram::LinearBounds(0.0, 10.0, 100));
  for (int v = 1; v <= 1000; ++v) h.Observe(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_DOUBLE_EQ(h.sum(), 1000.0 * 1001.0 / 2.0);
  EXPECT_NEAR(h.p50(), 500.0, 10.0);
  EXPECT_NEAR(h.p95(), 950.0, 10.0);
  EXPECT_NEAR(h.p99(), 990.0, 10.0);
  // Quantiles never escape the observed range.
  EXPECT_GE(h.Quantile(0.0), 1.0);
  EXPECT_LE(h.Quantile(1.0), 1000.0);
}

TEST_F(TelemetryTest, HistogramHandlesOverflowBucket) {
  Histogram h({1.0, 2.0});
  h.Observe(0.5);
  h.Observe(1.5);
  h.Observe(100.0);  // +Inf bucket
  ASSERT_EQ(h.bucket_counts().size(), 3u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_LE(h.p99(), 100.0);
  EXPECT_DOUBLE_EQ(h.observed_max(), 100.0);
}

TEST_F(TelemetryTest, ExponentialBoundsAreGeometric) {
  const auto bounds = Histogram::ExponentialBounds(0.001, 2.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 0.001);
  EXPECT_DOUBLE_EQ(bounds[3], 0.008);
  EXPECT_TRUE(std::is_sorted(bounds.begin(), bounds.end()));
}

TEST_F(TelemetryTest, RegistryKeysSeriesByLabelSetOrderIndependently) {
  MetricsRegistry reg;
  reg.Add("requests_total", 1.0, {{"method", "bid"}, {"layer", "edge"}});
  reg.Add("requests_total", 2.0, {{"layer", "edge"}, {"method", "bid"}});
  reg.Add("requests_total", 5.0, {{"layer", "fog"}, {"method", "bid"}});
  EXPECT_DOUBLE_EQ(
      reg.Value("requests_total", {{"method", "bid"}, {"layer", "edge"}}), 3.0);
  EXPECT_DOUBLE_EQ(
      reg.Value("requests_total", {{"method", "bid"}, {"layer", "fog"}}), 5.0);
  reg.Set("depth", 9.0);
  reg.Set("depth", 4.0);
  EXPECT_DOUBLE_EQ(reg.Value("depth"), 4.0);
}

TEST_F(TelemetryTest, PrometheusTextGolden) {
  MetricsRegistry reg;
  reg.Add("myrtus_demo_total", 3.0, {{"layer", "edge"}});
  reg.Set("myrtus_demo_depth", 2.0);
  reg.Observe("myrtus_demo_latency_ms", 0.5, {}, {1.0, 10.0});
  reg.Observe("myrtus_demo_latency_ms", 5.0, {}, {1.0, 10.0});
  reg.Observe("myrtus_demo_latency_ms", 50.0, {}, {1.0, 10.0});

  const std::string expected =
      "# TYPE myrtus_demo_depth gauge\n"
      "myrtus_demo_depth 2\n"
      "# TYPE myrtus_demo_latency_ms histogram\n"
      "myrtus_demo_latency_ms_bucket{le=\"1\"} 1\n"
      "myrtus_demo_latency_ms_bucket{le=\"10\"} 2\n"
      "myrtus_demo_latency_ms_bucket{le=\"+Inf\"} 3\n"
      "myrtus_demo_latency_ms_sum 55.5\n"
      "myrtus_demo_latency_ms_count 3\n"
      "# TYPE myrtus_demo_total counter\n"
      "myrtus_demo_total{layer=\"edge\"} 3\n";
  EXPECT_EQ(PrometheusText(reg), expected);
}

TEST_F(TelemetryTest, ChromeTraceJsonRoundtripsThroughParser) {
  Tracer& tracer = Global().tracer;
  std::int64_t now = 2'000;  // ns
  // LINT: deferred-capture-ok(now) -- clock only ticks inside this body;
  // TearDown's ResetGlobal() uninstalls it before anything else can call it
  tracer.set_clock([&now] { return now; });
  const SpanContext root = tracer.StartSpan("negotiate", "mirto");
  tracer.SetAttribute(root, "pod", "pose-0");
  now = 5'000;
  tracer.EndSpan(root);

  auto parsed = util::Json::Parse(ChromeTraceJson(tracer));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const auto& events = parsed->at("traceEvents").items();
  // Metadata (process_name) + one complete event.
  ASSERT_GE(events.size(), 2u);
  const util::Json* complete = nullptr;
  for (const util::Json& e : events) {
    if (e.at("ph").as_string() == "X") complete = &e;
  }
  ASSERT_NE(complete, nullptr);
  EXPECT_EQ(complete->at("name").as_string(), "negotiate");
  EXPECT_EQ(complete->at("cat").as_string(), "mirto");
  EXPECT_DOUBLE_EQ(complete->at("ts").as_double(), 2.0);   // µs
  EXPECT_DOUBLE_EQ(complete->at("dur").as_double(), 3.0);  // µs
  EXPECT_EQ(complete->at("args").at("pod").as_string(), "pose-0");
}

TEST_F(TelemetryTest, LegacySimMetricsBridgeIntoRegistry) {
  sim::Metrics legacy;
  legacy.Inc("pods_scheduled");
  legacy.Inc("pods_scheduled", 2);
  legacy.Set("queue_depth", 7);
  EXPECT_DOUBLE_EQ(legacy.Get("pods_scheduled"), 3.0);
  auto& reg = Global().metrics;
  EXPECT_DOUBLE_EQ(reg.Value("myrtus_sim_pods_scheduled"), 3.0);
  EXPECT_DOUBLE_EQ(reg.Value("myrtus_sim_queue_depth"), 7.0);
}

TEST_F(TelemetryTest, DisabledPathRecordsNothing) {
  SetEnabled(false);
  sim::Metrics legacy;
  legacy.Inc("quiet");
  {
    ScopedSpan span("ghost", "test");
    span.SetAttribute("k", "v");
  }
  EXPECT_TRUE(Global().tracer.finished().empty());
  EXPECT_TRUE(Global().metrics.families().empty());
  SetEnabled(true);
}

// --- End-to-end: causality across a pubsub network hop ---------------------

TEST_F(TelemetryTest, PubSubDeliveryLinksBackToPublisherSpan) {
  sim::Engine engine;
  net::Topology topo;
  topo.AddBidirectional("sensor", "gw", SimTime::Micros(200), 1e9);
  topo.AddBidirectional("gw", "app", SimTime::Micros(200), 1e9);
  net::Network network(engine, std::move(topo), 1);
  net::Broker broker(network, "gw");

  int received = 0;
  broker.Subscribe("app", "patients/+/pose", [&](const std::string&,
                                                 const util::Json&) {
    ++received;
  });

  Tracer& tracer = Global().tracer;
  const SpanContext root = tracer.StartSpan("sensor.sample", "app");
  {
    ContextGuard guard(tracer, root);
    broker.Publish("sensor", "patients/7/pose",
                   util::Json::MakeObject().Set("x", 1.0));
  }
  engine.RunUntil(SimTime::Seconds(1));
  tracer.EndSpan(root);
  ASSERT_EQ(received, 1);

  const auto& spans = tracer.finished();
  const SpanRecord* deliver_serve = FindSpan(spans, "rpc.serve pubsub.deliver");
  const SpanRecord* deliver_call = FindSpan(spans, "rpc.call pubsub.deliver");
  const SpanRecord* publish_serve = FindSpan(spans, "rpc.serve pubsub.publish");
  const SpanRecord* publish_call = FindSpan(spans, "rpc.call pubsub.publish");
  const SpanRecord* sample = FindSpan(spans, "sensor.sample");
  ASSERT_NE(deliver_serve, nullptr);
  ASSERT_NE(deliver_call, nullptr);
  ASSERT_NE(publish_serve, nullptr);
  ASSERT_NE(publish_call, nullptr);
  ASSERT_NE(sample, nullptr);

  // The causal chain survives two network hops: the subscriber-side serve
  // span walks parent-by-parent back to the publisher's root span.
  EXPECT_EQ(deliver_serve->parent_id, deliver_call->span_id);
  EXPECT_EQ(deliver_call->parent_id, publish_serve->span_id);
  EXPECT_EQ(publish_serve->parent_id, publish_call->span_id);
  EXPECT_EQ(publish_call->parent_id, sample->span_id);
  EXPECT_EQ(deliver_serve->trace_id, sample->trace_id);
  // The broker annotated its serve span with the fanout.
  bool saw_topic = false;
  for (const auto& [k, v] : publish_serve->attrs) {
    if (k == "topic") {
      saw_topic = true;
      EXPECT_EQ(v, "patients/7/pose");
    }
  }
  EXPECT_TRUE(saw_topic);
  // Counters moved too.
  EXPECT_DOUBLE_EQ(Global().metrics.Value("myrtus_pubsub_publishes_total"), 1.0);
  EXPECT_DOUBLE_EQ(Global().metrics.Value("myrtus_pubsub_deliveries_total"), 1.0);
}

// --- End-to-end: one placement = one connected span tree --------------------

tosca::CsarPackage TwoActorPackage() {
  tosca::ServiceTemplate tpl;
  tpl.tosca_version = "tosca_2_0";
  for (const char* name : {"pose", "score"}) {
    tosca::NodeTemplate nt;
    nt.name = name;
    nt.type = std::string(tosca::kTypeWorkload);
    nt.properties = util::Json::MakeObject().Set("cpu", 0.5).Set("memory_mb", 128);
    tpl.node_templates[name] = nt;
  }
  return tosca::CsarPackage::Create(tpl);
}

TEST_F(TelemetryTest, NegotiationProducesOneConnectedSpanTreePerPod) {
  sim::Engine engine;
  continuum::Infrastructure infra = continuum::BuildInfrastructure(engine, {});
  net::Topology topo = infra.topology;
  net::Network network(engine, std::move(topo), 5);
  mirto::MirtoEngine mirto(network, infra);
  mirto.Start();
  engine.RunUntil(SimTime::Millis(500));

  bool done = false;
  mirto.DeployNegotiated(TwoActorPackage(), [&](util::Status s) {
    EXPECT_TRUE(s.ok()) << s;
    done = true;
  });
  engine.RunUntil(engine.Now() + SimTime::Seconds(5));
  mirto.Stop();
  ASSERT_TRUE(done);

  const auto& spans = Global().tracer.finished();
  std::map<std::uint64_t, const SpanRecord*> by_id;
  std::vector<const SpanRecord*> roots;
  for (const SpanRecord& s : spans) {
    by_id[s.span_id] = &s;
    if (s.name == "negotiate.pod") roots.push_back(&s);
  }
  ASSERT_EQ(roots.size(), 2u);  // one negotiation root per pod

  for (const SpanRecord* root : roots) {
    EXPECT_EQ(root->parent_id, 0u);
    // Gather this trace and walk every span's parent chain to the root:
    // the acceptance criterion — announce→bid→award→schedule→start is one
    // connected tree.
    std::set<std::string> names;
    for (const SpanRecord& s : spans) {
      if (s.trace_id != root->trace_id) continue;
      names.insert(s.name);
      const SpanRecord* cursor = &s;
      int hops = 0;
      while (cursor->parent_id != 0) {
        ASSERT_LT(++hops, 32) << "parent cycle at " << s.name;
        const auto it = by_id.find(cursor->parent_id);
        ASSERT_NE(it, by_id.end())
            << s.name << " has a dangling parent " << cursor->parent_id;
        cursor = it->second;
      }
      EXPECT_EQ(cursor, root) << s.name << " is rooted outside its negotiation";
    }
    for (const char* expected :
         {"rpc.call mirto.bid", "rpc.serve mirto.bid", "mirto.compute_bid",
          "sched.schedule", "rpc.call mirto.award", "rpc.serve mirto.award",
          "sched.bind", "pod.start"}) {
      EXPECT_TRUE(names.count(expected)) << "missing span " << expected;
    }
  }

  // The same tree is visible in the Chrome export: every non-root event
  // carries its parent id and the exporter groups a trace into one lane.
  auto parsed = util::Json::Parse(ChromeTraceJson(Global().tracer));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  std::map<std::uint64_t, std::uint64_t> exported_parent;  // span -> parent
  for (const util::Json& e : parsed->at("traceEvents").items()) {
    if (e.at("ph").as_string() != "X") continue;
    exported_parent[static_cast<std::uint64_t>(
        e.at("args").at("span_id").as_int())] =
        static_cast<std::uint64_t>(e.at("args").at("parent_id").as_int());
  }
  for (const SpanRecord& s : spans) {
    ASSERT_TRUE(exported_parent.count(s.span_id)) << s.name;
    EXPECT_EQ(exported_parent[s.span_id], s.parent_id) << s.name;
  }

  // Negotiation latency histogram got one observation per pod.
  const Histogram* latency =
      Global().metrics.FindHistogram("myrtus_mirto_negotiation_latency_ms");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count(), 2u);
  EXPECT_GT(latency->p50(), 0.0);
  EXPECT_DOUBLE_EQ(
      Global().metrics.Value("myrtus_mirto_negotiations_total",
                             {{"result", "placed"}}),
      2.0);
}

}  // namespace
}  // namespace myrtus::telemetry
