#include "util/json.hpp"

#include <gtest/gtest.h>

namespace myrtus::util {
namespace {

TEST(Json, DefaultIsNull) {
  Json j;
  EXPECT_TRUE(j.is_null());
  EXPECT_EQ(j.Dump(), "null");
}

TEST(Json, Scalars) {
  EXPECT_EQ(Json(true).Dump(), "true");
  EXPECT_EQ(Json(false).Dump(), "false");
  EXPECT_EQ(Json(42).Dump(), "42");
  EXPECT_EQ(Json(-7).Dump(), "-7");
  EXPECT_EQ(Json("hi").Dump(), "\"hi\"");
  EXPECT_EQ(Json(1.5).Dump(), "1.5");
}

TEST(Json, ObjectBuilderAndLookup) {
  Json j = Json::MakeObject();
  j.Set("name", "edge-0").Set("cores", 4).Set("ghz", 1.2);
  EXPECT_TRUE(j.has("name"));
  EXPECT_EQ(j.at("name").as_string(), "edge-0");
  EXPECT_EQ(j.at("cores").as_int(), 4);
  EXPECT_DOUBLE_EQ(j.at("ghz").as_double(), 1.2);
  EXPECT_TRUE(j.at("missing").is_null());
}

TEST(Json, CanonicalObjectOrderingIsSorted) {
  Json j = Json::MakeObject();
  j.Set("zeta", 1).Set("alpha", 2);
  EXPECT_EQ(j.Dump(), "{\"alpha\":2,\"zeta\":1}");
}

TEST(Json, ArrayAppend) {
  Json j = Json::MakeArray();
  j.Append(1).Append("two").Append(Json::MakeObject().Set("k", 3));
  EXPECT_EQ(j.Dump(), "[1,\"two\",{\"k\":3}]");
  EXPECT_EQ(j.items().size(), 3u);
}

TEST(Json, StringEscaping) {
  Json j = Json(std::string("a\"b\\c\nd\te\x01"));
  EXPECT_EQ(j.Dump(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
}

TEST(Json, ParseRoundtrip) {
  // Keys are already in canonical (sorted) order so Dump() reproduces the
  // input byte-for-byte.
  const std::string text =
      R"({"app":"telerehab","pinned":true,"replicas":2,"stages":[{"ms":3.5,"name":"pose"},{"ms":1,"name":"score"}]})";
  auto parsed = Json::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->Dump(), text);
}

TEST(Json, ParseNestedAndWhitespace) {
  auto parsed = Json::Parse("  { \"a\" : [ 1 , 2.0e1 , null , false ] }  ");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->at("a").items().size(), 4u);
  EXPECT_DOUBLE_EQ(parsed->at("a").items()[1].as_double(), 20.0);
}

TEST(Json, ParseUnicodeEscape) {
  auto parsed = Json::Parse(R"("Aé")");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->as_string(), "A\xc3\xa9");
}

TEST(Json, ParseErrors) {
  EXPECT_FALSE(Json::Parse("").ok());
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1,]").ok());
  EXPECT_FALSE(Json::Parse("{\"a\":}").ok());
  EXPECT_FALSE(Json::Parse("tru").ok());
  EXPECT_FALSE(Json::Parse("\"unterminated").ok());
  EXPECT_FALSE(Json::Parse("1 2").ok());
  EXPECT_FALSE(Json::Parse("{'single':1}").ok());
}

TEST(Json, DeepNestingRejected) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(Json::Parse(deep).ok());
}

TEST(Json, IntegerOverflowFallsBackToDouble) {
  auto parsed = Json::Parse("123456789012345678901234567890");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->is_double());
}

TEST(Json, PrettyIsReparseable) {
  Json j = Json::MakeObject();
  j.Set("list", Json::MakeArray().Append(1).Append(2))
      .Set("obj", Json::MakeObject().Set("x", true));
  auto reparsed = Json::Parse(j.Pretty());
  ASSERT_TRUE(reparsed.ok()) << j.Pretty();
  EXPECT_EQ(*reparsed, j);
}

TEST(Json, EqualityIsDeep) {
  auto a = Json::Parse(R"({"x":[1,{"y":2}]})");
  auto b = Json::Parse(R"({ "x" : [ 1, { "y": 2 } ] })");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
}

}  // namespace
}  // namespace myrtus::util
