// Additional security-suite edge cases: AES-192 CTR, GCM nonce uniqueness
// consequences, channel cross-wiring, HKDF salt sensitivity, and Store watch
// re-entrancy (watch callbacks mutating the store).
#include <gtest/gtest.h>

#include "kb/store.hpp"
#include "security/aes.hpp"
#include "security/channel.hpp"
#include "security/gcm.hpp"
#include "security/hmac.hpp"
#include "util/rng.hpp"

namespace myrtus::security {
namespace {

using util::Bytes;
using util::BytesOf;

TEST(AesCtrExtra, Aes192Roundtrip) {
  const Bytes key(24, 0x5c);
  const Bytes iv(12, 0x01);
  const Bytes pt = BytesOf("AES-192 is valid per FIPS-197 even if rare");
  auto enc = AesCtr::Create(key, iv);
  auto dec = AesCtr::Create(key, iv);
  ASSERT_TRUE(enc.ok() && dec.ok());
  EXPECT_EQ(dec->Crypt(enc->Crypt(pt)), pt);
}

TEST(GcmExtra, SameKeyNonceGivesSameCiphertext) {
  // Determinism under (key, nonce) reuse is exactly why nonces must be
  // unique; the channel layer derives them from sequence numbers.
  const Bytes key(16, 0x11);
  const Bytes nonce(12, 0x22);
  auto a = AesGcmSeal(key, nonce, {}, BytesOf("m"));
  auto b = AesGcmSeal(key, nonce, {}, BytesOf("m"));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
  auto c = AesGcmSeal(key, Bytes(12, 0x23), {}, BytesOf("m"));
  ASSERT_TRUE(c.ok());
  EXPECT_NE(*a, *c);
}

TEST(GcmExtra, CiphertextLongerAadStillAuthenticates) {
  const Bytes key(32, 0x31);
  const Bytes nonce(12, 0x32);
  const Bytes aad(1000, 0x41);  // AAD larger than payload
  auto sealed = AesGcmSeal(key, nonce, aad, BytesOf("x"));
  ASSERT_TRUE(sealed.ok());
  EXPECT_TRUE(AesGcmOpen(key, nonce, aad, *sealed).ok());
}

TEST(HkdfExtra, SaltChangesOutput) {
  const Bytes a = HkdfSha256(BytesOf("ikm"), BytesOf("salt-1"), "ctx", 32);
  const Bytes b = HkdfSha256(BytesOf("ikm"), BytesOf("salt-2"), "ctx", 32);
  EXPECT_NE(a, b);
  // Empty salt is well-defined (zero block).
  EXPECT_EQ(HkdfSha256(BytesOf("ikm"), {}, "ctx", 16).size(), 16u);
}

TEST(ChannelExtra, CrossWiredEndpointsCannotTalk) {
  // Records from pair A must not open on pair B even at the same level.
  util::Rng rng(64);
  auto pair_a = SecureChannel::Establish(SecurityLevel::kMedium, rng);
  auto pair_b = SecureChannel::Establish(SecurityLevel::kMedium, rng);
  ASSERT_TRUE(pair_a.ok() && pair_b.ok());
  auto sealed = pair_a->initiator.Seal(BytesOf("secret"));
  ASSERT_TRUE(sealed.ok());
  EXPECT_FALSE(pair_b->responder.Open(*sealed).ok());
}

TEST(ChannelExtra, DirectionalKeysAreIndependent) {
  util::Rng rng(65);
  auto pair = SecureChannel::Establish(SecurityLevel::kHigh, rng);
  ASSERT_TRUE(pair.ok());
  // A record sealed by the initiator must not open as if it came from the
  // responder (the initiator's own Open uses the reverse-direction key).
  auto sealed = pair->initiator.Seal(BytesOf("to responder"));
  ASSERT_TRUE(sealed.ok());
  EXPECT_FALSE(pair->initiator.Open(*sealed).ok());
  EXPECT_TRUE(pair->responder.Open(*sealed).ok());
}

}  // namespace
}  // namespace myrtus::security

namespace myrtus::kb {
namespace {

TEST(StoreReentrancy, WatchCallbackMayWriteToStore) {
  Store store;
  // A controller-style watch: every pod write mirrors a status key.
  store.Watch("/pods/", [&](const WatchEvent& e) {
    if (e.type == WatchEvent::Type::kPut &&
        e.kv.key.rfind("/status/", 0) == std::string::npos) {
      store.Put("/status/" + e.kv.key.substr(6), util::Json("observed"));
    }
  });
  store.Put("/pods/a", util::Json(1));
  EXPECT_TRUE(store.Get("/status/a").ok());
  EXPECT_EQ(store.revision(), 2);
}

TEST(StoreReentrancy, WatchCallbackMayCancelItself) {
  Store store;
  std::int64_t id = 0;
  int events = 0;
  id = store.Watch("/k", [&](const WatchEvent&) {
    ++events;
    store.CancelWatch(id);  // one-shot watch
  });
  store.Put("/k", util::Json(1));
  store.Put("/k", util::Json(2));
  EXPECT_EQ(events, 1);
}

TEST(StoreReentrancy, WatchCallbackMayAddWatches) {
  Store store;
  int inner_events = 0;
  store.Watch("/trigger", [&](const WatchEvent&) {
    store.Watch("/late", [&](const WatchEvent&) { ++inner_events; });
  });
  store.Put("/trigger", util::Json(1));
  store.Put("/late", util::Json(1));
  EXPECT_EQ(inner_events, 1);
}

}  // namespace
}  // namespace myrtus::kb
