// Property-based and chaos tests: invariants that must hold under randomized
// inputs/schedules — Raft safety under crash churn, serialization
// roundtrips on random documents, scheduler resource-accounting invariants,
// deterministic simulation, and crypto roundtrips under random fragmentation.
#include <gtest/gtest.h>

#include "kb/cluster.hpp"
#include "security/gcm.hpp"
#include "security/sha2.hpp"
#include "sched/controller.hpp"
#include "continuum/infrastructure.hpp"
#include "swarm/placement.hpp"
#include "telemetry/recorder.hpp"
#include "tosca/yaml.hpp"
#include "usecases/scenario.hpp"

#include <cmath>

namespace myrtus {
namespace {

using sim::SimTime;

// --- Random document generators ---------------------------------------------

util::Json RandomJson(util::Rng& rng, int depth) {
  const std::uint64_t kind = rng.NextBounded(depth <= 0 ? 5 : 7);
  switch (kind) {
    case 0: return util::Json(nullptr);
    case 1: return util::Json(rng.NextBool());
    case 2: return util::Json(static_cast<std::int64_t>(rng.NextU64() >> 16) -
                              (std::int64_t{1} << 46));
    case 3: return util::Json(rng.Uniform(-1e6, 1e6));
    case 4: {
      std::string s;
      const std::uint64_t len = rng.NextBounded(12);
      for (std::uint64_t i = 0; i < len; ++i) {
        // Printable ASCII plus the escapes that matter.
        static const char kChars[] =
            "abcXYZ019 _-/.:#\"\\\n\t{}[],'";
        s.push_back(kChars[rng.NextBounded(sizeof(kChars) - 1)]);
      }
      return util::Json(std::move(s));
    }
    case 5: {
      util::Json arr = util::Json::MakeArray();
      const std::uint64_t n = rng.NextBounded(4);
      for (std::uint64_t i = 0; i < n; ++i) {
        arr.Append(RandomJson(rng, depth - 1));
      }
      return arr;
    }
    default: {
      util::Json obj = util::Json::MakeObject();
      const std::uint64_t n = rng.NextBounded(4);
      for (std::uint64_t i = 0; i < n; ++i) {
        obj.Set("k" + std::to_string(rng.NextBounded(8)), RandomJson(rng, depth - 1));
      }
      return obj;
    }
  }
}

class JsonRoundtripProperty : public ::testing::TestWithParam<int> {};

TEST_P(JsonRoundtripProperty, DumpParseIsIdentity) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()), "json-prop");
  for (int i = 0; i < 50; ++i) {
    const util::Json doc = RandomJson(rng, 4);
    auto parsed = util::Json::Parse(doc.Dump());
    ASSERT_TRUE(parsed.ok()) << doc.Dump() << " -> " << parsed.status();
    EXPECT_EQ(*parsed, doc) << doc.Dump();
    auto pretty = util::Json::Parse(doc.Pretty());
    ASSERT_TRUE(pretty.ok());
    EXPECT_EQ(*pretty, doc);
  }
}
INSTANTIATE_TEST_SUITE_P(Seeds, JsonRoundtripProperty, ::testing::Range(1, 6));

/// YAML cannot represent every JSON string scalar unambiguously, so the YAML
/// property uses a restricted generator (no exotic characters in keys).
util::Json RandomYamlFriendly(util::Rng& rng, int depth) {
  const std::uint64_t kind = rng.NextBounded(depth <= 0 ? 4 : 6);
  switch (kind) {
    case 0: return util::Json(rng.NextBool());
    case 1: return util::Json(static_cast<std::int64_t>(rng.NextBounded(100000)) - 50000);
    case 2: return util::Json(std::round(rng.Uniform(-1000, 1000) * 4.0) / 4.0);
    case 3: {
      static const char* kWords[] = {"edge", "fog node", "x:y", "42abc",
                                     "true-ish", "a#b", "", "hello world"};
      return util::Json(std::string(kWords[rng.NextBounded(8)]));
    }
    case 4: {
      util::Json arr = util::Json::MakeArray();
      const std::uint64_t n = 1 + rng.NextBounded(3);
      for (std::uint64_t i = 0; i < n; ++i) {
        arr.Append(RandomYamlFriendly(rng, depth - 1));
      }
      return arr;
    }
    default: {
      util::Json obj = util::Json::MakeObject();
      const std::uint64_t n = 1 + rng.NextBounded(3);
      for (std::uint64_t i = 0; i < n; ++i) {
        obj.Set("key" + std::to_string(rng.NextBounded(6)),
                RandomYamlFriendly(rng, depth - 1));
      }
      return obj;
    }
  }
}

class YamlRoundtripProperty : public ::testing::TestWithParam<int> {};

TEST_P(YamlRoundtripProperty, EmitParseIsIdentity) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()), "yaml-prop");
  for (int i = 0; i < 40; ++i) {
    // Top level must be a mapping (like every TOSCA document).
    util::Json doc = util::Json::MakeObject();
    const std::uint64_t n = 1 + rng.NextBounded(4);
    for (std::uint64_t k = 0; k < n; ++k) {
      doc.Set("top" + std::to_string(k), RandomYamlFriendly(rng, 3));
    }
    const std::string yaml = tosca::EmitYaml(doc);
    auto parsed = tosca::ParseYaml(yaml);
    ASSERT_TRUE(parsed.ok()) << yaml << "\n" << parsed.status();
    EXPECT_EQ(*parsed, doc) << yaml;
  }
}
INSTANTIATE_TEST_SUITE_P(Seeds, YamlRoundtripProperty, ::testing::Range(1, 6));

// --- Crypto under random fragmentation ------------------------------------------

class CryptoFragmentProperty : public ::testing::TestWithParam<int> {};

TEST_P(CryptoFragmentProperty, ShaIncrementalEqualsOneShotAnySplit) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()), "sha-prop");
  for (int trial = 0; trial < 20; ++trial) {
    util::Bytes msg(rng.NextBounded(700));
    for (auto& b : msg) b = static_cast<std::uint8_t>(rng.NextU64());
    security::Sha256 inc;
    std::size_t pos = 0;
    while (pos < msg.size()) {
      const std::size_t chunk =
          1 + rng.NextBounded(std::min<std::uint64_t>(97, msg.size() - pos));
      inc.Update(msg.data() + pos, chunk);
      pos += chunk;
    }
    EXPECT_EQ(inc.Final(), security::Sha256::Digest(msg));
  }
}

TEST_P(CryptoFragmentProperty, GcmRoundtripRandomSizes) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()), "gcm-prop");
  for (int trial = 0; trial < 15; ++trial) {
    util::Bytes key(rng.NextBool() ? 16 : 32);
    for (auto& b : key) b = static_cast<std::uint8_t>(rng.NextU64());
    util::Bytes nonce(12);
    for (auto& b : nonce) b = static_cast<std::uint8_t>(rng.NextU64());
    util::Bytes aad(rng.NextBounded(40));
    for (auto& b : aad) b = static_cast<std::uint8_t>(rng.NextU64());
    util::Bytes pt(rng.NextBounded(500));
    for (auto& b : pt) b = static_cast<std::uint8_t>(rng.NextU64());

    auto sealed = security::AesGcmSeal(key, nonce, aad, pt);
    ASSERT_TRUE(sealed.ok());
    auto opened = security::AesGcmOpen(key, nonce, aad, *sealed);
    ASSERT_TRUE(opened.ok());
    EXPECT_EQ(*opened, pt);
    // One random bit flip anywhere must break authentication.
    if (!sealed->empty()) {
      util::Bytes tampered = *sealed;
      tampered[rng.NextBounded(tampered.size())] ^=
          static_cast<std::uint8_t>(1u << rng.NextBounded(8));
      EXPECT_FALSE(security::AesGcmOpen(key, nonce, aad, tampered).ok());
    }
  }
}
INSTANTIATE_TEST_SUITE_P(Seeds, CryptoFragmentProperty, ::testing::Range(1, 5));

// --- Scheduler accounting invariants ----------------------------------------------

TEST(SchedulerProperty, NeverOvercommitsUnderRandomChurn) {
  sim::Engine engine;
  continuum::Infrastructure infra = continuum::BuildInfrastructure(engine, {});
  sched::Cluster cluster(engine, sched::Scheduler::Default());
  for (auto& n : infra.nodes) cluster.AddNode(n.get());

  util::Rng rng(123, "sched-prop");
  std::vector<std::string> live;
  for (int op = 0; op < 800; ++op) {
    if (live.empty() || rng.NextBool(0.6)) {
      sched::PodSpec pod;
      pod.name = "p" + std::to_string(op);
      pod.cpu_request = rng.Uniform(0.1, 3.0);
      pod.mem_request_mb = 16 + rng.NextBounded(512);
      pod.priority = static_cast<int>(rng.NextBounded(5));
      if (rng.NextBool(0.2)) pod.needs_accelerator = true;
      if (rng.NextBool(0.3)) {
        pod.min_security = static_cast<security::SecurityLevel>(rng.NextBounded(3));
      }
      auto bound = rng.NextBool(0.3) ? cluster.BindPodWithPreemption(pod)
                                     : cluster.BindPod(pod);
      if (bound.ok()) {
        live.push_back(pod.name);
      } else {
        // LINT: discard(cleanup of a pod that may never have bound)
        (void)cluster.DeletePod(pod.name);
      }
    } else {
      const std::size_t victim = rng.NextBounded(live.size());
      EXPECT_TRUE(cluster.DeletePod(live[victim]).ok());
      live.erase(live.begin() + static_cast<long>(victim));
    }
    // Invariants after every operation.
    for (sched::NodeState* ns : cluster.NodeStates()) {
      EXPECT_LE(ns->cpu_allocated(), ns->cpu_capacity() + 1e-9)
          << ns->node->id();
      EXPECT_LE(ns->mem_allocated_mb(), ns->mem_capacity_mb())
          << ns->node->id();
      EXPECT_GE(ns->cpu_allocated(), -1e-9);
      // Cross-check allocation against the actual pod set.
      double cpu_sum = 0;
      for (const sched::PodView& p : cluster.PodsOnNode(ns->node->id())) {
        cpu_sum += p.spec().cpu_request;
        // Hard constraints hold for every running pod.
        EXPECT_TRUE(security::Satisfies(ns->node->security_level(),
                                        p.spec().min_security));
        if (p.spec().needs_accelerator) {
          EXPECT_TRUE(ns->HasAccelerator());
        }
      }
      EXPECT_NEAR(cpu_sum, ns->cpu_allocated(), 1e-6) << ns->node->id();
    }
  }
}

TEST(SchedulerProperty, ReconcileIsIdempotent) {
  sim::Engine engine;
  continuum::Infrastructure infra = continuum::BuildInfrastructure(engine, {});
  sched::Cluster cluster(engine, sched::Scheduler::Default());
  for (auto& n : infra.nodes) cluster.AddNode(n.get());
  sched::Deployment dep;
  dep.name = "svc";
  dep.pod_template.cpu_request = 0.3;
  dep.replicas = 5;
  cluster.ApplyDeployment(dep);
  const std::size_t running = cluster.RunningPods();
  const auto evictions = cluster.evictions();
  for (int i = 0; i < 10; ++i) cluster.Reconcile();
  EXPECT_EQ(cluster.RunningPods(), running);
  EXPECT_EQ(cluster.evictions(), evictions);
}

class SchedLedgerProperty : public ::testing::TestWithParam<int> {};

// Random bind/evict/delete/preempt/cordon/fail/reconcile sequences: the
// scheduler ledger and the ComputeNode memory ledger must stay equal, free
// resources must never wrap negative, and the scan and indexed scheduler
// paths must agree on every probe verdict.
TEST_P(SchedLedgerProperty, LedgersAndVerdictsStayConsistentUnderChurn) {
  sim::Engine engine;
  continuum::Infrastructure infra = continuum::BuildInfrastructure(engine, {});
  sched::Cluster cluster(engine, sched::Scheduler::Default());
  for (auto& n : infra.nodes) cluster.AddNode(n.get());
  const sched::Scheduler scan_sched = sched::Scheduler::Default();

  util::Rng rng(static_cast<std::uint64_t>(GetParam()), "sched-ledger");
  std::vector<std::string> live;
  for (int op = 0; op < 300; ++op) {
    switch (rng.NextBounded(8)) {
      case 0:
      case 1:
      case 2: {  // bind (sometimes with preemption)
        sched::PodSpec pod;
        pod.name = "p" + std::to_string(op);
        pod.cpu_request = rng.Uniform(0.1, 3.0);
        pod.mem_request_mb = 16 + rng.NextBounded(512);
        pod.priority = static_cast<int>(rng.NextBounded(5));
        if (rng.NextBool(0.2)) pod.needs_accelerator = true;
        auto bound = rng.NextBool(0.3) ? cluster.BindPodWithPreemption(pod)
                                       : cluster.BindPod(pod);
        if (bound.ok()) {
          live.push_back(pod.name);
        } else {
          // LINT: discard(cleanup of a pod that may never have bound)
          (void)cluster.DeletePod(pod.name);
        }
        break;
      }
      case 3: {  // delete — and the stale PodId must not resurrect
        if (live.empty()) break;
        const std::size_t victim = rng.NextBounded(live.size());
        const sched::PodView doomed = cluster.FindPod(live[victim]);
        ASSERT_TRUE(doomed.valid());
        const sched::PodId stale = doomed.id();
        EXPECT_TRUE(cluster.DeletePod(live[victim]).ok());
        EXPECT_FALSE(cluster.PodById(stale).valid())
            << "generation bump must invalidate " << live[victim];
        live.erase(live.begin() + static_cast<long>(victim));
        break;
      }
      case 4: {  // cordon toggle
        auto states = cluster.NodeStates();
        sched::NodeState* ns = states[rng.NextBounded(states.size())];
        cluster.Cordon(ns->node->id(), rng.NextBool());
        break;
      }
      case 5: {  // node failure / recovery + reconcile sweeps the fallout
        auto states = cluster.NodeStates();
        sched::NodeState* ns = states[rng.NextBounded(states.size())];
        ns->node->SetUp(rng.NextBool(0.7));
        cluster.Reconcile();
        // Reconcile may have rebound or evicted; rebuild the live list.
        std::vector<std::string> still;
        for (const std::string& name : live) {
          const sched::PodView p = cluster.FindPod(name);
          if (p && p.phase() == sched::PodPhase::kRunning) {
            still.push_back(name);
          } else if (p) {
            EXPECT_TRUE(cluster.DeletePod(name).ok());
          }
        }
        live = std::move(still);
        break;
      }
      case 6: {  // reflected allocation overwrite (peering)
        auto states = cluster.NodeStates();
        sched::NodeState* ns = states[rng.NextBounded(states.size())];
        // Reflection can legally exceed capacity; frees must clamp, not wrap.
        EXPECT_TRUE(cluster
                        .SetReflectedCpuAllocation(
                            ns->node->id(), rng.Uniform(0.0, 4.0))
                        .ok());
        break;
      }
      default:
        cluster.Reconcile();
        break;
    }

    // Invariant: ledger equality and clamped frees on every node.
    for (sched::NodeState* ns : cluster.NodeStates()) {
      EXPECT_EQ(ns->mem_allocated_mb(), ns->node->mem_allocated_mb())
          << ns->node->id() << " after op " << op;
      EXPECT_LE(ns->MemFreeMb(), ns->mem_capacity_mb()) << ns->node->id();
      EXPECT_GE(ns->cpu_allocated(), -1e-9) << ns->node->id();
    }

    // Invariant: pod-ledger counters are exact. Every pod this test created
    // is either in `live` (bound-failures are deleted on the spot), so the
    // running/pending tallies must reconcile against per-pod phases, and the
    // per-node rosters must cover exactly the running pods.
    std::size_t running = 0;
    std::size_t pending = 0;
    for (const std::string& name : live) {
      const sched::PodView p = cluster.FindPod(name);
      ASSERT_TRUE(p.valid()) << name << " after op " << op;
      EXPECT_EQ(cluster.PodById(p.id()).name(), name) << "handle round-trip";
      if (p.phase() == sched::PodPhase::kRunning) {
        ++running;
      } else {
        ++pending;
      }
    }
    EXPECT_EQ(cluster.RunningPods(), running) << "op " << op;
    EXPECT_EQ(cluster.PendingPods(), pending) << "op " << op;
    std::size_t on_nodes = 0;
    for (sched::NodeState* ns : cluster.NodeStates()) {
      on_nodes += cluster.PodsOnNode(ns->node->id()).size();
    }
    EXPECT_EQ(on_nodes, cluster.RunningPods()) << "op " << op;

    // Invariant: both scheduler paths agree on a random probe.
    sched::PodSpec probe;
    probe.name = "probe";
    probe.cpu_request = rng.Uniform(0.1, 3.0);
    probe.mem_request_mb = 16 + rng.NextBounded(512);
    if (rng.NextBool(0.2)) probe.needs_accelerator = true;
    auto indexed = cluster.DryRunSchedule(probe);
    auto scanned = scan_sched.Schedule(probe, cluster.NodeStates());
    ASSERT_EQ(indexed.ok(), scanned.ok()) << "op " << op;
    if (indexed.ok()) {
      EXPECT_EQ(indexed->node_id, scanned->node_id) << "op " << op;
    } else {
      EXPECT_EQ(indexed.status().message(), scanned.status().message());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedLedgerProperty, ::testing::Range(1, 5));

// --- Placement solver properties ----------------------------------------------------

class PlacementSolverProperty : public ::testing::TestWithParam<int> {};

TEST_P(PlacementSolverProperty, SolversRespectHardConstraintsWhenFeasible) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()), "place-prop");
  swarm::PlacementProblem p;
  const std::size_t tasks = 4 + rng.NextBounded(8);
  for (std::size_t i = 0; i < tasks; ++i) {
    p.tasks.push_back({rng.Uniform(0.1, 1.0), rng.Uniform(16, 128),
                       static_cast<int>(rng.NextBounded(3)), rng.NextBool(0.3),
                       rng.Uniform(0, 100)});
  }
  // Feasible by construction: a universal node always exists.
  p.nodes.push_back({"universal", 100.0, 1e6, 2, true, 500, 10});
  for (int i = 0; i < 4; ++i) {
    p.nodes.push_back({"n" + std::to_string(i), rng.Uniform(1, 8),
                       rng.Uniform(256, 4096), static_cast<int>(rng.NextBounded(3)),
                       rng.NextBool(0.5), rng.Uniform(100, 900),
                       rng.Uniform(1, 30)});
  }
  util::Rng r1(1), r2(2);
  for (const auto& solution :
       {swarm::SolveGreedy(p), swarm::SolvePso(p, r1, 24, 30),
        swarm::SolveAco(p, r2, 16, 20)}) {
    ASSERT_TRUE(p.Feasible(solution.assignment));
    for (std::size_t t = 0; t < p.tasks.size(); ++t) {
      const auto& node = p.nodes[static_cast<std::size_t>(solution.assignment[t])];
      EXPECT_GE(node.security_level, p.tasks[t].min_security);
      if (p.tasks[t].needs_accelerator) {
        EXPECT_TRUE(node.has_accelerator);
      }
    }
  }
}
INSTANTIATE_TEST_SUITE_P(Seeds, PlacementSolverProperty, ::testing::Range(1, 8));

// --- Deterministic simulation --------------------------------------------------------

TEST(DeterminismProperty, IdenticalSeedsGiveIdenticalTraces) {
  const auto run = [](std::uint64_t seed) {
    sim::Engine engine;
    continuum::Infrastructure infra = continuum::BuildInfrastructure(engine, {});
    net::Network network(engine, infra.topology, seed);
    sched::Cluster cluster(engine, sched::Scheduler::Default());
    for (auto& n : infra.nodes) cluster.AddNode(n.get());
    usecases::Scenario scenario = usecases::SmartMobilityScenario();
    util::MustOk(usecases::DeployScenario(scenario, cluster, seed));
    usecases::RequestPipeline pipeline(network, infra, cluster, scenario);
    pipeline.StartStream(SimTime::Seconds(2), seed);
    engine.RunUntil(SimTime::Seconds(5));
    return std::make_tuple(pipeline.kpis().completed,
                           pipeline.kpis().latency_ms.mean(),
                           pipeline.kpis().compute_energy_mj,
                           network.bytes_sent());
  };
  EXPECT_EQ(run(99), run(99));
  EXPECT_NE(std::get<3>(run(99)), std::get<3>(run(100)));
}

// --- Raft chaos -----------------------------------------------------------------------

class RaftChaosProperty : public ::testing::TestWithParam<int> {};

TEST_P(RaftChaosProperty, AcknowledgedWritesSurviveCrashChurn) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  sim::Engine engine;
  net::Topology topo;
  std::vector<net::HostId> hosts = {"kb-0", "kb-1", "kb-2", "kb-3", "kb-4"};
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    for (std::size_t j = i + 1; j < hosts.size(); ++j) {
      topo.AddBidirectional(hosts[i], hosts[j], SimTime::Millis(2), 1e9);
    }
  }
  for (const auto& h : hosts) {
    topo.AddBidirectional("client", h, SimTime::Millis(2), 1e9);
  }
  net::Network network(engine, std::move(topo), seed);
  kb::KbCluster cluster(network, hosts, seed);
  cluster.Start();
  engine.RunUntil(SimTime::Seconds(2));

  kb::KbClient client(network, cluster, "client");
  util::Rng chaos(seed, "chaos");
  std::set<std::string> acked;
  int issued = 0;

  // Random crash/recover churn, never exceeding a minority down.
  std::set<std::size_t> down;
  for (int round = 0; round < 12; ++round) {
    // Issue a few writes.
    for (int w = 0; w < 3; ++w) {
      const std::string key = "/chaos/" + std::to_string(issued++);
      client.Put(key, util::Json(round), [&acked, key](util::Status s) {
        if (s.ok()) acked.insert(key);
      });
    }
    // Maybe crash one (if minority stays), maybe recover one.
    if (down.size() < 2 && chaos.NextBool(0.5)) {
      std::size_t victim = chaos.NextBounded(hosts.size());
      if (down.count(victim) == 0) {
        cluster.Crash(victim);
        down.insert(victim);
      }
    }
    if (!down.empty() && chaos.NextBool(0.4)) {
      const std::size_t back = *down.begin();
      cluster.Recover(back);
      down.erase(down.begin());
    }
    engine.RunUntil(engine.Now() + SimTime::Millis(1500));
  }
  // Recover everyone and settle.
  for (const std::size_t i : down) cluster.Recover(i);
  engine.RunUntil(engine.Now() + SimTime::Seconds(10));

  EXPECT_GT(acked.size(), 0u) << "chaos schedule prevented every write";
  // Every acknowledged write is present on every replica, identically.
  for (const std::string& key : acked) {
    for (std::size_t r = 0; r < hosts.size(); ++r) {
      auto kv = cluster.replica(r).store->Get(key);
      EXPECT_TRUE(kv.ok()) << key << " missing on replica " << r;
    }
  }
  // All replicas converge to the same revision count for the chaos prefix.
  const std::size_t reference = cluster.replica(0).store->Range("/chaos/").size();
  for (std::size_t r = 1; r < hosts.size(); ++r) {
    EXPECT_EQ(cluster.replica(r).store->Range("/chaos/").size(), reference);
  }
}
INSTANTIATE_TEST_SUITE_P(Seeds, RaftChaosProperty, ::testing::Values(1, 2, 3, 7, 13));

// --- Flight recorder invariants ---------------------------------------------

/// Under a random mix of spans/counters/events at random (monotone) sim
/// timestamps and random capacity changes, the ring never exceeds its
/// capacity, the accounting identity total == size + overwritten holds, and
/// every snapshot is sorted by (at_ns, seq).
class FlightRecorderProperty : public ::testing::TestWithParam<int> {};

TEST_P(FlightRecorderProperty, BoundedAndSorted) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()), "recorder-prop");
  telemetry::FlightRecorder rec;
  rec.set_capacity(1 + rng.NextBounded(64));
  std::int64_t now = 0;
  for (int i = 0; i < 2000; ++i) {
    now += static_cast<std::int64_t>(rng.NextBounded(1000));  // may repeat
    switch (rng.NextBounded(3)) {
      case 0: {
        telemetry::SpanRecord span;
        span.trace_id = 1;
        span.span_id = static_cast<std::uint64_t>(i) + 1;
        span.name = "s" + std::to_string(rng.NextBounded(8));
        span.start_ns = now - static_cast<std::int64_t>(rng.NextBounded(500));
        span.end_ns = now;
        rec.RecordSpan(span);
        break;
      }
      case 1:
        rec.RecordCounter("c" + std::to_string(rng.NextBounded(4)),
                          rng.Uniform(0.0, 100.0), now);
        break;
      default:
        rec.RecordEvent("e", "detail", now);
    }
    if (rng.NextBool(0.01)) {  // occasional live resize restarts the ring
      rec.set_capacity(1 + rng.NextBounded(64));
    }

    ASSERT_LE(rec.size(), rec.capacity());
    ASSERT_EQ(rec.total_recorded(), rec.size() + rec.overwritten());
  }

  const std::vector<telemetry::FlightRecord> snap = rec.Snapshot();
  ASSERT_EQ(snap.size(), rec.size());
  for (std::size_t i = 1; i < snap.size(); ++i) {
    ASSERT_TRUE(snap[i - 1].at_ns < snap[i].at_ns ||
                (snap[i - 1].at_ns == snap[i].at_ns &&
                 snap[i - 1].seq < snap[i].seq))
        << "snapshot order violated at " << i;
  }
}
INSTANTIATE_TEST_SUITE_P(Seeds, FlightRecorderProperty,
                         ::testing::Values(1, 2, 3, 11, 29));

}  // namespace
}  // namespace myrtus
