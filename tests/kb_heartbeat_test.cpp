// Lease-based liveness: registered components stay visible while beating,
// evaporate after crashing, and watchers observe the failure as a delete.
#include <gtest/gtest.h>

#include "kb/heartbeat.hpp"

namespace myrtus::kb {
namespace {

using sim::SimTime;

NodeRecord Edge(const std::string& id) {
  NodeRecord r;
  r.node_id = id;
  r.layer = "edge";
  r.kind = "hmpsoc";
  return r;
}

struct Fixture {
  sim::Engine engine;
  Store store;
  ResourceRegistry registry{store};
  HeartbeatService heartbeats{engine, store, SimTime::Seconds(1)};

  Fixture() { heartbeats.StartSweeper(); }
};

TEST(Heartbeat, BeatingComponentStaysRegistered) {
  Fixture f;
  f.heartbeats.Register(Edge("edge-0"));
  f.engine.RunUntil(SimTime::Seconds(10));
  EXPECT_TRUE(f.registry.GetNode("edge-0").ok());
  EXPECT_TRUE(f.heartbeats.IsBeating("edge-0"));
  EXPECT_EQ(f.heartbeats.expirations(), 0u);
}

TEST(Heartbeat, CrashedComponentExpiresWithinTtl) {
  Fixture f;
  f.heartbeats.Register(Edge("edge-0"));
  f.heartbeats.Register(Edge("edge-1"));
  f.engine.RunUntil(SimTime::Seconds(5));
  f.heartbeats.StopBeating("edge-0");  // crash
  // Within ~1.5 * ttl the record must be gone; the healthy peer survives.
  f.engine.RunUntil(f.engine.Now() + SimTime::Millis(2000));
  EXPECT_FALSE(f.registry.GetNode("edge-0").ok());
  EXPECT_TRUE(f.registry.GetNode("edge-1").ok());
  EXPECT_EQ(f.heartbeats.expirations(), 1u);
}

TEST(Heartbeat, WatcherSeesFailureAsDelete) {
  Fixture f;
  std::vector<std::string> deleted;
  f.store.Watch("/registry/nodes/", [&](const WatchEvent& e) {
    if (e.type == WatchEvent::Type::kDelete) deleted.push_back(e.kv.key);
  });
  f.heartbeats.Register(Edge("edge-0"));
  f.engine.RunUntil(SimTime::Seconds(3));
  ASSERT_TRUE(deleted.empty());
  f.heartbeats.StopBeating("edge-0");
  f.engine.RunUntil(f.engine.Now() + SimTime::Seconds(3));
  ASSERT_EQ(deleted.size(), 1u);
  EXPECT_EQ(deleted[0], ResourceRegistry::NodeKey("edge-0"));
}

TEST(Heartbeat, ReRegistrationRevivesComponent) {
  Fixture f;
  f.heartbeats.Register(Edge("edge-0"));
  f.heartbeats.StopBeating("edge-0");
  f.engine.RunUntil(SimTime::Seconds(3));
  ASSERT_FALSE(f.registry.GetNode("edge-0").ok());
  f.heartbeats.Register(Edge("edge-0"));  // node rejoined
  f.engine.RunUntil(f.engine.Now() + SimTime::Seconds(3));
  EXPECT_TRUE(f.registry.GetNode("edge-0").ok());
  EXPECT_TRUE(f.heartbeats.IsBeating("edge-0"));
}

// Regression: Register() on an already-registered node erased the local
// session but left the old lease alive in the Store. The orphaned lease kept
// ticking and eventually expired, deleting the freshly re-registered record
// out from under the live node. Re-registration must revoke the old lease.
TEST(Heartbeat, ReRegistrationDoesNotLeakOldLease) {
  Fixture f;
  f.heartbeats.Register(Edge("edge-0"));
  f.engine.RunUntil(SimTime::Millis(500));
  ASSERT_EQ(f.store.lease_count(), 1u);

  // Re-register while the first lease is still live (e.g. agent restart).
  f.heartbeats.Register(Edge("edge-0"));
  EXPECT_EQ(f.store.lease_count(), 1u) << "old lease must be revoked";

  // Run well past several TTLs: the orphaned lease would have expired here
  // and torn the record down, counting a spurious expiration.
  f.engine.RunUntil(SimTime::Seconds(10));
  EXPECT_TRUE(f.registry.GetNode("edge-0").ok());
  EXPECT_TRUE(f.heartbeats.IsBeating("edge-0"));
  EXPECT_EQ(f.heartbeats.expirations(), 0u);
  EXPECT_EQ(f.store.lease_count(), 1u);
}

TEST(Store, RevokeLeaseDetachesKeysWithoutDeleteEvents) {
  Fixture f;
  int deletes = 0;
  f.store.Watch("/x/", [&](const WatchEvent& e) {
    if (e.type == WatchEvent::Type::kDelete) ++deletes;
  });
  const std::int64_t lease = f.store.GrantLease(SimTime::Seconds(1).ns);
  f.store.Put("/x/a", "1", lease);
  ASSERT_EQ(f.store.lease_count(), 1u);
  EXPECT_TRUE(f.store.RevokeLease(lease));
  EXPECT_FALSE(f.store.RevokeLease(lease)) << "double revoke is a no-op";
  EXPECT_EQ(f.store.lease_count(), 0u);
  // The key survives, now unleased, and no phantom delete was observed.
  f.engine.RunUntil(SimTime::Seconds(5));
  EXPECT_TRUE(f.store.Get("/x/a").ok());
  EXPECT_EQ(deletes, 0);
}

TEST(Heartbeat, ManyComponentsIndependentLifecycles) {
  Fixture f;
  for (int i = 0; i < 20; ++i) {
    f.heartbeats.Register(Edge("edge-" + std::to_string(i)));
  }
  f.engine.RunUntil(SimTime::Seconds(2));
  // Crash the even-numbered half.
  for (int i = 0; i < 20; i += 2) {
    f.heartbeats.StopBeating("edge-" + std::to_string(i));
  }
  f.engine.RunUntil(f.engine.Now() + SimTime::Seconds(3));
  EXPECT_EQ(f.registry.ListNodes().size(), 10u);
  for (int i = 1; i < 20; i += 2) {
    EXPECT_TRUE(f.registry.GetNode("edge-" + std::to_string(i)).ok()) << i;
  }
}

}  // namespace
}  // namespace myrtus::kb
