// NodeIndex internals (bitmaps, inverted indexes, candidate cache) and the
// scan-vs-indexed differential: both scheduler paths must produce identical
// verdicts on randomized fleets, pods, and structural churn.
#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "continuum/infrastructure.hpp"
#include "sched/controller.hpp"
#include "sched/node_index.hpp"
#include "sched/scheduler.hpp"
#include "util/rng.hpp"

namespace myrtus::sched {
namespace {

using continuum::ComputeNode;
using continuum::Device;
using continuum::DeviceKind;
using continuum::Layer;
using continuum::OperatingPoint;

// --- Bitmap ------------------------------------------------------------------

TEST(Bitmap, SetTestResetCountAcrossWordBoundaries) {
  Bitmap b;
  b.Resize(130);
  EXPECT_EQ(b.Count(), 0u);
  const std::size_t set[] = {0, 63, 64, 127, 129};
  for (std::size_t bit : set) b.Set(bit);
  EXPECT_EQ(b.Count(), 5u);
  for (std::size_t bit : set) EXPECT_TRUE(b.Test(bit)) << bit;
  for (std::size_t bit : {std::size_t{1}, std::size_t{65}, std::size_t{128}}) {
    EXPECT_FALSE(b.Test(bit)) << bit;
  }
  EXPECT_FALSE(b.Test(100000));  // out of range reads as unset
  b.Reset(64);
  EXPECT_FALSE(b.Test(64));
  EXPECT_EQ(b.Count(), 4u);
  b.ClearAll();
  EXPECT_EQ(b.Count(), 0u);
}

TEST(Bitmap, AndWithIntersectsAndTreatsMissingWordsAsZero) {
  Bitmap a;
  a.Resize(130);
  a.Set(1);
  a.Set(70);
  a.Set(129);
  Bitmap b;
  b.Resize(130);
  b.Set(70);
  b.Set(129);
  b.Set(2);
  a.AndWith(b);
  EXPECT_EQ(a.Count(), 2u);
  EXPECT_TRUE(a.Test(70));
  EXPECT_TRUE(a.Test(129));
  EXPECT_FALSE(a.Test(1));

  // Intersecting with a shorter bitmap clears everything past its words.
  Bitmap c;
  c.Resize(10);
  c.Set(1);
  Bitmap d;
  d.Resize(130);
  d.Set(1);
  d.Set(129);
  d.AndWith(c);
  EXPECT_EQ(d.Count(), 1u);
  EXPECT_TRUE(d.Test(1));
}

TEST(Bitmap, ForEachSetVisitsAscendingSlots) {
  Bitmap b;
  b.Resize(200);
  b.Set(129);
  b.Set(2);
  b.Set(64);
  std::vector<std::size_t> seen;
  b.ForEachSet([&](std::size_t slot) { seen.push_back(slot); });
  EXPECT_EQ(seen, (std::vector<std::size_t>{2, 64, 129}));
}

// --- NodeIndex ---------------------------------------------------------------

struct IndexFixture {
  sim::Engine engine;
  std::vector<std::unique_ptr<ComputeNode>> nodes;
  NodeIndex index;

  ComputeNode* AddNode(const std::string& id, Layer layer,
                       security::SecurityLevel level, bool accel,
                       std::map<std::string, std::string> labels = {}) {
    auto node =
        std::make_unique<ComputeNode>(engine, id, layer, "test", level, 1024);
    node->AddDevice(Device(id + "/cpu", DeviceKind::kServerCpu, 4,
                           {OperatingPoint{"base"}}));
    if (accel) {
      node->AddDevice(Device(id + "/fpga", DeviceKind::kFpgaAccelerator, 1,
                             {OperatingPoint{"accel"}}));
    }
    ComputeNode* raw = node.get();
    nodes.push_back(std::move(node));
    index.Add(raw, std::move(labels));
    return raw;
  }
};

std::vector<std::string> Ids(const NodeIndex& index, const Bitmap& bits) {
  std::vector<std::string> out;
  bits.ForEachSet(
      [&](std::size_t slot) { out.push_back(index.at(slot).node->id()); });
  return out;
}

TEST(NodeIndex, CandidatesIntersectStructuralDimensions) {
  IndexFixture f;
  f.AddNode("e0", Layer::kEdge, security::SecurityLevel::kLow, true);
  f.AddNode("e1", Layer::kEdge, security::SecurityLevel::kLow, false,
            {{"zone", "a"}});
  f.AddNode("f0", Layer::kFog, security::SecurityLevel::kMedium, false,
            {{"zone", "a"}});
  f.AddNode("c0", Layer::kCloud, security::SecurityLevel::kHigh, true);

  CandidateQuery q;
  EXPECT_EQ(f.index.Candidates(q).Count(), 4u);  // unrestricted

  q.restrict_security = true;
  q.min_security = security::SecurityLevel::kMedium;
  EXPECT_EQ(Ids(f.index, f.index.Candidates(q)),
            (std::vector<std::string>{"f0", "c0"}));

  CandidateQuery accel;
  accel.restrict_accelerator = true;
  EXPECT_EQ(Ids(f.index, f.index.Candidates(accel)),
            (std::vector<std::string>{"e0", "c0"}));

  const std::string edge = "edge";
  CandidateQuery layer;
  layer.layer = &edge;
  EXPECT_EQ(Ids(f.index, f.index.Candidates(layer)),
            (std::vector<std::string>{"e0", "e1"}));

  const std::map<std::string, std::string> zone_a = {{"zone", "a"}};
  CandidateQuery selector;
  selector.selector = &zone_a;
  EXPECT_EQ(Ids(f.index, f.index.Candidates(selector)),
            (std::vector<std::string>{"e1", "f0"}));

  CandidateQuery combined;
  combined.restrict_security = true;
  combined.min_security = security::SecurityLevel::kMedium;
  combined.selector = &zone_a;
  EXPECT_EQ(Ids(f.index, f.index.Candidates(combined)),
            (std::vector<std::string>{"f0"}));

  const std::string moon = "moon";
  CandidateQuery unknown_layer;
  unknown_layer.layer = &moon;
  EXPECT_EQ(f.index.Candidates(unknown_layer).Count(), 0u);

  const std::map<std::string, std::string> nowhere = {{"zone", "zz"}};
  CandidateQuery unknown_label;
  unknown_label.selector = &nowhere;
  EXPECT_EQ(f.index.Candidates(unknown_label).Count(), 0u);
}

TEST(NodeIndex, StructuralMutationsMoveBitmapMembership) {
  IndexFixture f;
  f.AddNode("e0", Layer::kEdge, security::SecurityLevel::kLow, false,
            {{"zone", "a"}});
  f.AddNode("e1", Layer::kEdge, security::SecurityLevel::kLow, false,
            {{"zone", "a"}});

  CandidateQuery uncordoned;
  uncordoned.restrict_cordoned = true;
  EXPECT_EQ(f.index.Candidates(uncordoned).Count(), 2u);
  f.index.SetCordoned(0, true);
  EXPECT_EQ(Ids(f.index, f.index.Candidates(uncordoned)),
            (std::vector<std::string>{"e1"}));
  f.index.SetCordoned(0, false);
  EXPECT_EQ(f.index.Candidates(uncordoned).Count(), 2u);

  const std::map<std::string, std::string> zone_a = {{"zone", "a"}};
  const std::map<std::string, std::string> zone_b = {{"zone", "b"}};
  CandidateQuery in_a;
  in_a.selector = &zone_a;
  CandidateQuery in_b;
  in_b.selector = &zone_b;
  f.index.SetLabel(1, "zone", "b");
  EXPECT_EQ(Ids(f.index, f.index.Candidates(in_a)),
            (std::vector<std::string>{"e0"}));
  EXPECT_EQ(Ids(f.index, f.index.Candidates(in_b)),
            (std::vector<std::string>{"e1"}));
}

TEST(NodeIndex, CandidateCacheHitsUntilStructuralChange) {
  IndexFixture f;
  f.AddNode("e0", Layer::kEdge, security::SecurityLevel::kLow, false);
  f.AddNode("e1", Layer::kEdge, security::SecurityLevel::kLow, false);

  CandidateQuery q;
  q.restrict_cordoned = true;
  const NodeIndex::Stats start = f.index.stats();
  (void)f.index.Candidates(q);
  (void)f.index.Candidates(q);
  EXPECT_EQ(f.index.stats().cache_misses, start.cache_misses + 1);
  EXPECT_EQ(f.index.stats().cache_hits, start.cache_hits + 1);

  // Allocation churn is non-structural: the cache survives.
  f.index.AddAllocation(0, 1.0, 64);
  f.index.SubAllocation(0, 1.0, 64);
  (void)f.index.Candidates(q);
  EXPECT_EQ(f.index.stats().cache_misses, start.cache_misses + 1);
  EXPECT_EQ(f.index.stats().cache_hits, start.cache_hits + 2);

  // A structural mutation invalidates and forces a rebuild.
  const std::uint64_t invalidations = f.index.stats().invalidations;
  f.index.SetLabel(0, "zone", "a");
  EXPECT_EQ(f.index.stats().invalidations, invalidations + 1);
  (void)f.index.Candidates(q);
  EXPECT_EQ(f.index.stats().cache_misses, start.cache_misses + 2);
}

TEST(Cluster, BindBatchIsAdmittedThroughOneCandidateBuild) {
  sim::Engine engine;
  continuum::Infrastructure infra = continuum::BuildInfrastructure(engine, {});
  Cluster cluster(engine, Scheduler::Default());
  for (auto& n : infra.nodes) cluster.AddNode(n.get());

  const NodeIndex::Stats start = cluster.index().stats();
  PodSpec pod;
  pod.cpu_request = 0.1;
  pod.mem_request_mb = 8;
  for (int i = 0; i < 8; ++i) {
    pod.name = "batch-" + std::to_string(i);
    ASSERT_TRUE(cluster.BindPod(pod).ok());
  }
  // Binds only touch the allocation ledger, so the whole same-shape batch
  // reuses one cached candidate set.
  EXPECT_EQ(cluster.index().stats().cache_misses, start.cache_misses + 1);
  EXPECT_GE(cluster.index().stats().cache_hits, start.cache_hits + 7);
}

// --- Scan vs indexed differential -------------------------------------------

class SchedDifferential : public ::testing::TestWithParam<int> {};

TEST_P(SchedDifferential, VerdictsMatchUnderRandomFleetsAndChurn) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()), "sched-diff");
  sim::Engine engine;
  Scheduler sched = Scheduler::Default();
  Cluster cluster(engine, Scheduler::Default());
  std::vector<std::unique_ptr<ComputeNode>> nodes;
  std::vector<std::string> ids;
  static const char* kZones[] = {"a", "b", "c"};
  static const char* kLayers[] = {"edge", "fog", "cloud"};

  const std::size_t fleet = 24 + rng.NextBounded(24);
  for (std::size_t i = 0; i < fleet; ++i) {
    const std::string id = "n" + std::to_string(i);
    auto node = std::make_unique<ComputeNode>(
        engine, id, static_cast<Layer>(rng.NextBounded(3)), "test",
        static_cast<security::SecurityLevel>(rng.NextBounded(3)),
        256 + rng.NextBounded(2048));
    node->AddDevice(Device(id + "/cpu", DeviceKind::kServerCpu,
                           2 + static_cast<int>(rng.NextBounded(6)),
                           {OperatingPoint{"base"}}));
    if (rng.NextBool(0.3)) {
      node->AddDevice(Device(id + "/fpga", DeviceKind::kFpgaAccelerator, 1,
                             {OperatingPoint{"accel"}}));
    }
    cluster.AddNode(node.get(), {{"zone", kZones[rng.NextBounded(3)]}});
    nodes.push_back(std::move(node));
    ids.push_back(id);
  }

  int pod_tag = 0;
  auto probe = [&]() {
    PodSpec pod;
    pod.name = "probe-" + std::to_string(pod_tag++);
    pod.cpu_request = rng.Uniform(0.1, 4.0);
    pod.mem_request_mb = 16 + rng.NextBounded(1024);
    if (rng.NextBool(0.3)) pod.needs_accelerator = true;
    if (rng.NextBool(0.4)) {
      pod.min_security =
          static_cast<security::SecurityLevel>(rng.NextBounded(3));
    }
    if (rng.NextBool(0.3)) pod.layer_affinity = kLayers[rng.NextBounded(3)];
    if (rng.NextBool(0.4)) pod.node_selector["zone"] = kZones[rng.NextBounded(3)];

    auto scan = sched.Schedule(pod, cluster.NodeStates());
    auto indexed = sched.Schedule(pod, cluster.index());
    ASSERT_EQ(scan.ok(), indexed.ok()) << pod.name;
    if (scan.ok()) {
      EXPECT_EQ(scan->node_id, indexed->node_id) << pod.name;
      EXPECT_DOUBLE_EQ(scan->score, indexed->score) << pod.name;
    } else {
      // Same status, same per-node first-failing-filter reasons.
      EXPECT_EQ(scan.status().code(), indexed.status().code());
      EXPECT_EQ(scan.status().message(), indexed.status().message());
    }
    ScheduleOptions opts;
    opts.explain = true;
    auto explain = sched.Schedule(pod, cluster.index(), opts);
    ASSERT_EQ(explain.ok(), scan.ok()) << pod.name;
    if (scan.ok()) {
      EXPECT_EQ(explain->node_id, scan->node_id);
      EXPECT_EQ(explain->rejections, scan->rejections) << pod.name;
    }
  };

  for (int round = 0; round < 6; ++round) {
    for (int p = 0; p < 10; ++p) probe();
    for (int m = 0; m < 8; ++m) {
      const std::string& id = ids[rng.NextBounded(ids.size())];
      switch (rng.NextBounded(5)) {
        case 0: {  // real bind: allocation churn
          PodSpec pod;
          pod.name = "w-" + std::to_string(pod_tag++);
          pod.cpu_request = rng.Uniform(0.1, 2.0);
          pod.mem_request_mb = 16 + rng.NextBounded(256);
          // LINT: discard(churn bind; infeasible pods just stay pending)
          (void)cluster.BindPod(pod);
          break;
        }
        case 1:
          cluster.Cordon(id, rng.NextBool());
          break;
        case 2:
          ASSERT_TRUE(
              cluster.SetNodeLabel(id, "zone", kZones[rng.NextBounded(3)])
                  .ok());
          break;
        case 3:
          cluster.FindNodeState(id)->node->SetUp(rng.NextBool(0.8));
          break;
        default:
          ASSERT_TRUE(cluster
                          .SetReflectedMemAllocation(
                              id, rng.NextBounded(4096))
                          .ok());
          break;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedDifferential, ::testing::Range(1, 6));

TEST(SchedDifferential, OpaqueFiltersRunOnBothPaths) {
  sim::Engine engine;
  continuum::Infrastructure infra = continuum::BuildInfrastructure(engine, {});
  Scheduler sched = Scheduler::Default();
  // Opaque filter: only node ids with an even digit sum pass. The indexed
  // path cannot prune on this; it must still apply it per candidate.
  sched.AddFilter([](const PodSpec&,
                     const NodeState& n) -> std::optional<std::string> {
    int sum = 0;
    for (char c : n.node->id()) {
      if (c >= '0' && c <= '9') sum += c - '0';
    }
    if (sum % 2 != 0) return "odd digit sum";
    return std::nullopt;
  });
  Cluster cluster(engine, Scheduler::Default());
  for (auto& n : infra.nodes) cluster.AddNode(n.get());

  util::Rng rng(7, "sched-diff-opaque");
  for (int i = 0; i < 30; ++i) {
    PodSpec pod;
    pod.name = "p" + std::to_string(i);
    pod.cpu_request = rng.Uniform(0.1, 2.0);
    pod.mem_request_mb = 16 + rng.NextBounded(512);
    if (rng.NextBool(0.3)) pod.needs_accelerator = true;
    auto scan = sched.Schedule(pod, cluster.NodeStates());
    auto indexed = sched.Schedule(pod, cluster.index());
    ASSERT_EQ(scan.ok(), indexed.ok());
    if (scan.ok()) {
      EXPECT_EQ(scan->node_id, indexed->node_id);
      int sum = 0;
      for (char c : scan->node_id) {
        if (c >= '0' && c <= '9') sum += c - '0';
      }
      EXPECT_EQ(sum % 2, 0) << scan->node_id;
    } else {
      EXPECT_EQ(scan.status().message(), indexed.status().message());
    }
  }
}

TEST(SchedDifferential, ClusterPathsProduceIdenticalPlacements) {
  // Two identical worlds, one bound through each schedule path: every pod
  // must land on the same node in both.
  sim::Engine engine_a;
  sim::Engine engine_b;
  continuum::Infrastructure infra_a =
      continuum::BuildInfrastructure(engine_a, {});
  continuum::Infrastructure infra_b =
      continuum::BuildInfrastructure(engine_b, {});
  Cluster indexed(engine_a, Scheduler::Default());
  Cluster scan(engine_b, Scheduler::Default());
  for (auto& n : infra_a.nodes) indexed.AddNode(n.get());
  for (auto& n : infra_b.nodes) scan.AddNode(n.get());
  scan.set_schedule_path(Cluster::SchedulePath::kScan);

  util::Rng rng(11, "sched-diff-paths");
  for (int i = 0; i < 60; ++i) {
    PodSpec pod;
    pod.name = "p" + std::to_string(i);
    pod.cpu_request = rng.Uniform(0.1, 2.5);
    pod.mem_request_mb = 16 + rng.NextBounded(512);
    if (rng.NextBool(0.2)) pod.needs_accelerator = true;
    if (rng.NextBool(0.3)) {
      pod.min_security =
          static_cast<security::SecurityLevel>(rng.NextBounded(3));
    }
    auto a = indexed.BindPod(pod);
    auto b = scan.BindPod(pod);
    ASSERT_EQ(a.ok(), b.ok()) << pod.name;
    if (a.ok()) {
      EXPECT_EQ(*a, *b) << pod.name;
    } else {
      EXPECT_EQ(a.status().message(), b.status().message()) << pod.name;
    }
  }
  EXPECT_EQ(indexed.RunningPods(), scan.RunningPods());
}

}  // namespace
}  // namespace myrtus::sched
