// The four MIRTO Manager drivers in isolation.
#include <gtest/gtest.h>

#include "continuum/infrastructure.hpp"
#include "mirto/managers.hpp"

namespace myrtus::mirto {
namespace {

using continuum::BuildInfrastructure;
using continuum::Infrastructure;

struct Fixture {
  sim::Engine engine;
  Infrastructure infra;
  sched::Cluster cluster;

  Fixture() : infra(BuildInfrastructure(engine, {})),
              cluster(engine, sched::Scheduler::Default()) {
    for (auto& n : infra.nodes) cluster.AddNode(n.get());
  }
};

std::vector<sched::PodSpec> SamplePods() {
  std::vector<sched::PodSpec> pods;
  sched::PodSpec a;
  a.name = "detector";
  a.cpu_request = 1.0;
  a.needs_accelerator = true;
  pods.push_back(a);
  sched::PodSpec b;
  b.name = "aggregator";
  b.cpu_request = 2.0;
  b.min_security = security::SecurityLevel::kMedium;
  pods.push_back(b);
  sched::PodSpec c;
  c.name = "archiver";
  c.cpu_request = 0.5;
  pods.push_back(c);
  return pods;
}

class WlStrategyTest : public ::testing::TestWithParam<PlacementStrategy> {};

TEST_P(WlStrategyTest, PlansAndExecutesFeasiblePlacement) {
  Fixture f;
  WlManager wl(f.cluster, GetParam(), 7);
  NetworkManager netmgr(f.infra.topology);
  std::vector<std::string> node_ids;
  for (auto& n : f.infra.nodes) node_ids.push_back(n->id());
  const auto costs = netmgr.LatencyCostMs(f.infra.DefaultGateway(), node_ids);

  const auto pods = SamplePods();
  auto directives = wl.PlanPlacement(pods, costs, {});
  ASSERT_TRUE(directives.ok()) << directives.status();
  ASSERT_TRUE(wl.Execute(pods, *directives).ok());
  EXPECT_EQ(f.cluster.RunningPods(), 3u);

  // Hard constraints hold regardless of strategy.
  const sched::PodView detector = f.cluster.FindPod("detector");
  ASSERT_TRUE(detector.valid());
  EXPECT_TRUE(f.cluster.FindNodeState(detector.node_id())->HasAccelerator());
  const sched::PodView aggregator = f.cluster.FindPod("aggregator");
  ASSERT_TRUE(aggregator.valid());
  EXPECT_TRUE(security::Satisfies(
      f.infra.FindNode(aggregator.node_id())->security_level(),
      security::SecurityLevel::kMedium));
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, WlStrategyTest,
    ::testing::Values(PlacementStrategy::kStaticKube, PlacementStrategy::kGreedy,
                      PlacementStrategy::kPso, PlacementStrategy::kAco),
    [](const auto& suite_info) {
      std::string name(PlacementStrategyName(suite_info.param));
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

TEST(WlManager, VetoedNodesAreAvoided) {
  Fixture f;
  WlManager wl(f.cluster, PlacementStrategy::kGreedy, 7);
  sched::PodSpec pod;
  pod.name = "vision";
  pod.needs_accelerator = true;
  pod.layer_affinity = "edge";
  // Veto every accelerator edge node except edge-1.
  std::vector<std::string> vetoed = {"edge-0", "edge-2", "edge-3"};
  auto directives = wl.PlanPlacement({pod}, {}, vetoed);
  ASSERT_TRUE(directives.ok());
  ASSERT_TRUE(directives->count("vision") > 0);
  EXPECT_EQ(directives->at("vision"), "edge-1");
}

TEST(WlManager, StaticKubeProducesNoDirectives) {
  Fixture f;
  WlManager wl(f.cluster, PlacementStrategy::kStaticKube, 7);
  auto directives = wl.PlanPlacement(SamplePods(), {}, {});
  ASSERT_TRUE(directives.ok());
  EXPECT_TRUE(directives->empty());
}

TEST(NodeManager, HotDevicePromotedToFastestPoint) {
  sim::Engine engine;
  continuum::ComputeNode node(engine, "n", continuum::Layer::kEdge, "multicore",
                              security::SecurityLevel::kLow, 1024);
  node.AddDevice(continuum::MakeBigCore("n/big"));
  ASSERT_TRUE(node.mutable_device(0).SetOperatingPoint(2).ok());  // eco

  // Saturate the device: utilization -> ~1.
  continuum::TaskDemand heavy;
  heavy.cycles = 2'000'000'000;
  node.Submit(heavy, 0, nullptr);
  engine.RunUntil(sim::SimTime::Millis(500));

  NodeManager mgr;
  auto decisions = mgr.PlanNode(node);
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_TRUE(decisions[0].changed);
  EXPECT_EQ(decisions[0].operating_point, 0u);
  ASSERT_TRUE(mgr.Execute(node, decisions[0]).ok());
  EXPECT_EQ(node.devices()[0].active_point_index(), 0u);
  EXPECT_EQ(mgr.reconfigurations(), 1u);
}

TEST(NodeManager, IdleDeviceDemotedToEco) {
  sim::Engine engine;
  continuum::ComputeNode node(engine, "n", continuum::Layer::kEdge, "multicore",
                              security::SecurityLevel::kLow, 1024);
  node.AddDevice(continuum::MakeBigCore("n/big"));
  engine.RunUntil(sim::SimTime::Seconds(1));  // fully idle
  NodeManager mgr;
  auto decisions = mgr.PlanNode(node);
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_TRUE(decisions[0].changed);
  EXPECT_EQ(decisions[0].operating_point,
            node.devices()[0].operating_points().size() - 1);
}

TEST(NodeManager, MidUtilizationHolds) {
  sim::Engine engine;
  continuum::ComputeNode node(engine, "n", continuum::Layer::kEdge, "multicore",
                              security::SecurityLevel::kLow, 1024);
  node.AddDevice(continuum::MakeBigCore("n/big"));
  // ~50% utilization.
  continuum::TaskDemand task;
  task.cycles = 1'440'000'000;  // 500ms at 1.8GHz*1.6
  node.Submit(task, 0, nullptr);
  engine.RunUntil(sim::SimTime::Seconds(1));
  NodeManager mgr;
  auto decisions = mgr.PlanNode(node);
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_FALSE(decisions[0].changed);
}

TEST(NetworkManager, LatencyCostsFollowTopology) {
  Fixture f;
  NetworkManager mgr(f.infra.topology);
  const auto costs = mgr.LatencyCostMs("gw-0", {"edge-0", "fmdc-0", "cloud-0"});
  EXPECT_NEAR(costs.at("edge-0"), 2.0, 0.01);
  EXPECT_NEAR(costs.at("fmdc-0"), 5.0, 0.01);
  EXPECT_NEAR(costs.at("cloud-0"), 30.0, 0.01);
  auto nearest = mgr.NearestNode("gw-0", {"fmdc-0", "cloud-0"});
  ASSERT_TRUE(nearest.ok());
  EXPECT_EQ(*nearest, "fmdc-0");
}

TEST(NetworkManager, UnreachableNodesGetInfiniteCost) {
  net::Topology topo;
  topo.AddHost("island");
  topo.AddBidirectional("a", "b", sim::SimTime::Millis(1), 1e9);
  NetworkManager mgr(topo);
  const auto costs = mgr.LatencyCostMs("a", {"b", "island"});
  EXPECT_LT(costs.at("b"), 10.0);
  EXPECT_GE(costs.at("island"), 1e9);
  EXPECT_FALSE(mgr.NearestNode("a", {"island"}).ok());
}

TEST(SecurityManager, TrustDecaysOnFailuresAndRecovers) {
  PrivacySecurityManager psm(0.4);
  EXPECT_DOUBLE_EQ(psm.TrustOf("edge-0"), 1.0);
  for (int i = 0; i < 3; ++i) psm.RecordOutcome("edge-0", false);
  EXPECT_LT(psm.TrustOf("edge-0"), 0.4);
  EXPECT_EQ(psm.VetoedNodes(), std::vector<std::string>{"edge-0"});
  for (int i = 0; i < 60; ++i) psm.RecordOutcome("edge-0", true);
  EXPECT_GT(psm.TrustOf("edge-0"), 0.9);
  EXPECT_TRUE(psm.VetoedNodes().empty());
}

TEST(SecurityManager, PermitsChecksLevelAndTrust) {
  sim::Engine engine;
  continuum::ComputeNode low_node(engine, "edge-x", continuum::Layer::kEdge,
                                  "riscv", security::SecurityLevel::kLow, 512);
  continuum::ComputeNode high_node(engine, "fmdc-x", continuum::Layer::kFog,
                                   "fmdc", security::SecurityLevel::kHigh, 4096);
  PrivacySecurityManager psm(0.4);
  sched::PodSpec secure;
  secure.min_security = security::SecurityLevel::kHigh;
  EXPECT_FALSE(psm.Permits(secure, low_node));
  EXPECT_TRUE(psm.Permits(secure, high_node));
  for (int i = 0; i < 5; ++i) psm.RecordOutcome("fmdc-x", false);
  EXPECT_FALSE(psm.Permits(secure, high_node)) << "distrusted node vetoed";
}

TEST(SecurityManager, PublishesTrustToRegistry) {
  kb::Store store;
  kb::ResourceRegistry registry(store);
  registry.PutNode({.node_id = "edge-0", .layer = "edge"});
  PrivacySecurityManager psm;
  psm.RecordOutcome("edge-0", false);
  psm.PublishTrust(registry);
  auto record = registry.GetNode("edge-0");
  ASSERT_TRUE(record.ok());
  EXPECT_NEAR(record->trust_score, 0.7, 1e-9);
}

}  // namespace
}  // namespace myrtus::mirto
