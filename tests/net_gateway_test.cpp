// Network slicing (priority classes at links), the smart-gateway protocol
// bridge / aggregator / adapters, and the monitoring & alerting service.
#include <gtest/gtest.h>

#include "continuum/monitor.hpp"
#include "net/gateway.hpp"
#include "net/transport.hpp"

namespace myrtus::net {
namespace {

using sim::SimTime;

TEST(NetworkSlicing, ControlTrafficPreemptsBulkQueue) {
  sim::Engine engine;
  Topology t;
  // 1 Mb/s link: a 1250-byte frame takes 10ms to serialize.
  t.AddLink(Link{"a", "b", SimTime::Zero(), 1e6, 0.0, {}});
  Network net(engine, std::move(t), 1);
  std::vector<std::string> arrivals;
  net.Attach("b", [&](const Message& m) { arrivals.push_back(m.kind); });

  // Flood five bulk frames, then one control frame while the first bulk
  // frame is still on the wire.
  for (int i = 0; i < 5; ++i) {
    Message bulk;
    bulk.from = "a";
    bulk.to = "b";
    bulk.kind = "bulk-" + std::to_string(i);
    bulk.protocol = Protocol::kMqtt;
    bulk.body_bytes = 1242;
    bulk.priority = 0;
    ASSERT_TRUE(net.Send(std::move(bulk)).ok());
  }
  Message control;
  control.from = "a";
  control.to = "b";
  control.kind = "control";
  control.protocol = Protocol::kMqtt;
  control.body_bytes = 42;
  control.priority = 2;
  ASSERT_TRUE(net.Send(std::move(control)).ok());

  engine.Run();
  ASSERT_EQ(arrivals.size(), 6u);
  // bulk-0 was already transmitting; control jumps the remaining queue.
  EXPECT_EQ(arrivals[0], "bulk-0");
  EXPECT_EQ(arrivals[1], "control");
  EXPECT_EQ(arrivals[2], "bulk-1");
  EXPECT_EQ(arrivals[5], "bulk-4");
}

TEST(NetworkSlicing, EqualPriorityKeepsFifo) {
  sim::Engine engine;
  Topology t;
  t.AddLink(Link{"a", "b", SimTime::Zero(), 1e6, 0.0, {}});
  Network net(engine, std::move(t), 1);
  std::vector<std::string> arrivals;
  net.Attach("b", [&](const Message& m) { arrivals.push_back(m.kind); });
  for (int i = 0; i < 4; ++i) {
    Message m;
    m.from = "a";
    m.to = "b";
    m.kind = std::to_string(i);
    m.body_bytes = 500;
    m.priority = 1;
    ASSERT_TRUE(net.Send(std::move(m)).ok());
  }
  engine.Run();
  EXPECT_EQ(arrivals, (std::vector<std::string>{"0", "1", "2", "3"}));
}

struct GatewayFixture {
  sim::Engine engine;
  std::unique_ptr<Network> net;
  std::unique_ptr<SmartGateway> gateway;
  std::vector<Message> cloud_inbox;

  GatewayFixture() {
    Topology t;
    t.AddBidirectional("sensor-1", "gw", SimTime::Millis(1), 1e8);
    t.AddBidirectional("sensor-2", "gw", SimTime::Millis(1), 1e8);
    t.AddBidirectional("gw", "cloud", SimTime::Millis(20), 1e9);
    net = std::make_unique<Network>(engine, std::move(t), 9);
    gateway = std::make_unique<SmartGateway>(*net, "gw");
    net->Attach("cloud", [this](const Message& m) { cloud_inbox.push_back(m); });
  }

  void SendReading(const std::string& sensor, const std::string& kind,
                   double value, Protocol protocol = Protocol::kCoap) {
    Message m;
    m.from = sensor;
    m.to = "gw";
    m.kind = kind;
    m.protocol = protocol;
    m.payload = util::Json::MakeObject().Set("v", value);
    m.body_bytes = 64;
    ASSERT_TRUE(net->Send(std::move(m)).ok());
  }
};

TEST(SmartGateway, BridgesCoapSensorToHttpCloud) {
  GatewayFixture f;
  f.gateway->AddBridgeRule("telemetry", "cloud", Protocol::kHttp);
  f.SendReading("sensor-1", "telemetry", 21.5);
  f.engine.Run();
  ASSERT_EQ(f.cloud_inbox.size(), 1u);
  EXPECT_EQ(f.cloud_inbox[0].protocol, Protocol::kHttp);
  EXPECT_EQ(f.cloud_inbox[0].from, "gw");
  EXPECT_EQ(f.cloud_inbox[0].payload.at("origin").as_string(), "sensor-1");
  EXPECT_DOUBLE_EQ(
      f.cloud_inbox[0].payload.at("payload").at("v").as_double(), 21.5);
  EXPECT_EQ(f.gateway->bridged(), 1u);
}

TEST(SmartGateway, RemovedBridgeStopsForwarding) {
  GatewayFixture f;
  const int rule = f.gateway->AddBridgeRule("telemetry", "cloud", Protocol::kHttp);
  f.SendReading("sensor-1", "telemetry", 1);
  f.engine.Run();
  f.gateway->RemoveBridgeRule(rule);
  f.SendReading("sensor-1", "telemetry", 2);
  f.engine.Run();
  EXPECT_EQ(f.cloud_inbox.size(), 1u);
}

TEST(SmartGateway, AggregationBatchesByWindow) {
  GatewayFixture f;
  f.gateway->EnableAggregation("telemetry", "cloud", SimTime::Millis(100), 64);
  for (int i = 0; i < 5; ++i) f.SendReading("sensor-1", "telemetry", i);
  f.engine.RunUntil(SimTime::Millis(500));
  ASSERT_EQ(f.cloud_inbox.size(), 1u) << "one batch, not five messages";
  const Message& batch = f.cloud_inbox[0];
  EXPECT_EQ(batch.kind, "gw.batch");
  EXPECT_EQ(batch.payload.at("count").as_int(), 5);
  EXPECT_EQ(batch.payload.at("items").items().size(), 5u);
  EXPECT_EQ(f.gateway->aggregated_in(), 5u);
  EXPECT_EQ(f.gateway->batches_out(), 1u);
}

TEST(SmartGateway, AggregationFlushesEarlyWhenFull) {
  GatewayFixture f;
  f.gateway->EnableAggregation("telemetry", "cloud", SimTime::Seconds(10), 3);
  for (int i = 0; i < 7; ++i) f.SendReading("sensor-2", "telemetry", i);
  f.engine.RunUntil(SimTime::Seconds(1));
  // 7 readings with max_batch 3: two full batches immediately; the remainder
  // waits for the (long) window.
  EXPECT_EQ(f.gateway->batches_out(), 2u);
  f.engine.RunUntil(SimTime::Seconds(12));
  EXPECT_EQ(f.gateway->batches_out(), 3u);
  std::size_t total = 0;
  for (const Message& m : f.cloud_inbox) {
    total += m.payload.at("items").items().size();
  }
  EXPECT_EQ(total, 7u);
}

TEST(SmartGateway, AggregationSavesUplinkBytes) {
  // Compare bytes on the gw->cloud link with and without aggregation.
  const auto run = [](bool aggregate) {
    GatewayFixture f;
    if (aggregate) {
      f.gateway->EnableAggregation("telemetry", "cloud", SimTime::Millis(50), 64);
    } else {
      f.gateway->AddBridgeRule("telemetry", "cloud", Protocol::kHttp);
    }
    for (int i = 0; i < 50; ++i) f.SendReading("sensor-1", "telemetry", i);
    f.engine.RunUntil(SimTime::Seconds(1));
    return f.net->bytes_sent();
  };
  const auto with = run(true);
  const auto without = run(false);
  EXPECT_LT(with, without)
      << "batching must amortize per-message protocol overhead";
}

TEST(SmartGateway, AdapterFiltersAndTransforms) {
  GatewayFixture f;
  f.gateway->AddBridgeRule("telemetry", "cloud", Protocol::kHttp);
  // Drop readings below zero; annotate the rest.
  f.gateway->AddAdapter("telemetry", [](Message& m) {
    if (m.payload.at("v").as_double() < 0) return false;
    m.payload.Set("validated", true);
    return true;
  });
  f.SendReading("sensor-1", "telemetry", -5);
  f.SendReading("sensor-1", "telemetry", 7);
  f.engine.Run();
  ASSERT_EQ(f.cloud_inbox.size(), 1u);
  EXPECT_TRUE(f.cloud_inbox[0].payload.at("payload").at("validated").as_bool());
  EXPECT_EQ(f.gateway->dropped_by_adapter(), 1u);
}

// Regression: bridged/batched traffic aimed at an unroutable upstream used to
// be dropped with a discarded Send status — no counter moved, so the loss was
// invisible. Failures must now be counted (and must not inflate the success
// counters).
TEST(SmartGateway, UnroutableBridgeTargetIsCountedNotSilent) {
  GatewayFixture f;
  f.gateway->AddBridgeRule("telemetry", "no-such-node", Protocol::kHttp);
  f.SendReading("sensor-1", "telemetry", 3.5);
  f.engine.Run();
  EXPECT_TRUE(f.cloud_inbox.empty());
  EXPECT_EQ(f.gateway->upstream_send_failures(), 1u);
  EXPECT_EQ(f.gateway->bridged(), 0u) << "a failed bridge is not a bridge";
}

TEST(SmartGateway, UnroutableAggregationTargetIsCountedNotSilent) {
  GatewayFixture f;
  f.gateway->EnableAggregation("telemetry", "no-such-node", SimTime::Millis(50), 64);
  for (int i = 0; i < 4; ++i) f.SendReading("sensor-2", "telemetry", i);
  f.engine.RunUntil(SimTime::Seconds(1));
  EXPECT_EQ(f.gateway->aggregated_in(), 4u);
  EXPECT_EQ(f.gateway->batches_out(), 0u) << "a dropped batch never went out";
  EXPECT_EQ(f.gateway->upstream_send_failures(), 1u);
}

TEST(Monitoring, SamplesTelemetryAndFiresAlerts) {
  sim::Engine engine;
  continuum::Infrastructure infra = continuum::BuildInfrastructure(engine, {});
  kb::Store store;
  kb::ResourceRegistry registry(store);
  continuum::MonitoringService monitor(engine, infra, registry);

  std::vector<continuum::Alert> alerts;
  ASSERT_TRUE(monitor
                  .AddAlertRule("queue_depth", 4.0,
                                [&](const continuum::Alert& a) {
                                  alerts.push_back(a);
                                })
                  .ok());
  monitor.Start(SimTime::Millis(100));

  // Overload edge-0: many long tasks stack up.
  continuum::ComputeNode* edge = infra.FindNode("edge-0");
  continuum::TaskDemand task;
  task.cycles = 500'000'000;
  for (int i = 0; i < 10; ++i) edge->Submit(task, 0, nullptr);
  engine.RunUntil(SimTime::Seconds(1));
  monitor.Stop();

  EXPECT_GT(monitor.samples_taken(), 5u);
  EXPECT_FALSE(registry.GetTelemetry("edge-0", "utilization").empty());
  EXPECT_FALSE(registry.GetTelemetry("cloud-0", "queue_depth").empty());
  ASSERT_FALSE(alerts.empty());
  EXPECT_EQ(alerts[0].node_id, "edge-0");
  EXPECT_EQ(alerts[0].metric, "queue_depth");
  EXPECT_GT(alerts[0].value, 4.0);
}

TEST(Monitoring, NoAlertsBelowThreshold) {
  sim::Engine engine;
  continuum::Infrastructure infra = continuum::BuildInfrastructure(engine, {});
  kb::Store store;
  kb::ResourceRegistry registry(store);
  continuum::MonitoringService monitor(engine, infra, registry);
  int fired = 0;
  ASSERT_TRUE(monitor
                  .AddAlertRule("utilization", 0.99,
                                [&](const continuum::Alert&) { ++fired; })
                  .ok());
  monitor.Start(SimTime::Millis(100));
  engine.RunUntil(SimTime::Seconds(1));  // idle fleet
  EXPECT_EQ(fired, 0);
}

TEST(Monitoring, RejectsUnknownAlertMetric) {
  sim::Engine engine;
  continuum::Infrastructure infra = continuum::BuildInfrastructure(engine, {});
  kb::Store store;
  kb::ResourceRegistry registry(store);
  continuum::MonitoringService monitor(engine, infra, registry);
  const util::Status bad =
      monitor.AddAlertRule("utilisation", 1.0, [](const continuum::Alert&) {});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(bad.message().find("utilisation"), std::string::npos);
  // The rejected rule must not have been installed.
  monitor.SampleOnce();
  EXPECT_EQ(monitor.alerts_fired(), 0u);
}

}  // namespace
}  // namespace myrtus::net
