// Locks in the deterministic fork-join contract of util/parallel: any worker
// count — inline serial (0/1) or pooled (2/8) — produces byte-identical
// results, including bodies that consume randomness, and a full MAPE world
// emits an identical sim::Trace whether its hot loops ran serial or pooled.
#include "util/parallel.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "dpe/pipeline.hpp"
#include "mirto/agent.hpp"
#include "mirto/engine.hpp"
#include "usecases/scenario.hpp"
#include "util/rng.hpp"

namespace myrtus::util {
namespace {

/// Runs `body` under each worker count and asserts every result equals the
/// serial (workers=1) baseline, bit for bit.
template <typename Fn>
void ExpectWorkerInvariant(Fn&& body) {
  SetParallelWorkers(1);
  const auto baseline = body();
  for (const int workers : {2, 8}) {
    SetParallelWorkers(workers);
    const auto got = body();
    EXPECT_EQ(got, baseline) << "diverged at " << workers << " workers";
  }
  SetParallelWorkers(1);
}

TEST(ParallelShards, CountIsPureFunctionOfN) {
  EXPECT_EQ(ParallelShardCount(0), 0u);
  EXPECT_EQ(ParallelShardCount(1), 1u);
  EXPECT_EQ(ParallelShardCount(63), 63u);
  EXPECT_EQ(ParallelShardCount(64), kParallelMaxShards);
  EXPECT_EQ(ParallelShardCount(100'000), kParallelMaxShards);
  // Worker count must not influence sharding (it would break substreams).
  SetParallelWorkers(8);
  EXPECT_EQ(ParallelShardCount(100'000), kParallelMaxShards);
  SetParallelWorkers(1);
}

TEST(ParallelShards, ShardsTileTheIndexSpaceExactly) {
  for (const std::size_t n : {1u, 7u, 64u, 65u, 1000u}) {
    std::vector<int> hits(n, 0);
    ParallelFor(n, [&](const Shard& shard) {
      EXPECT_EQ(shard.count, ParallelShardCount(n));
      for (std::size_t i = shard.begin; i < shard.end; ++i) ++hits[i];
    });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i], 1) << "item " << i << " of " << n;
    }
  }
}

TEST(ParallelFor, ByteIdenticalAcrossWorkerCounts) {
  ExpectWorkerInvariant([] {
    std::vector<double> out(10'000);
    ParallelFor(out.size(), [&](const Shard& shard) {
      for (std::size_t i = shard.begin; i < shard.end; ++i) {
        out[i] = static_cast<double>(i) * 1.000000119e-3 + 0.5 / (1.0 + i);
      }
    });
    return out;
  });
}

TEST(ParallelMap, CommitsInItemOrderAtAnyWorkerCount) {
  ExpectWorkerInvariant([] {
    return ParallelMap<std::size_t>(4097, [](std::size_t i) { return i * i; });
  });
}

TEST(ParallelForRng, SubstreamsAreWorkerCountInvariant) {
  ExpectWorkerInvariant([] {
    std::vector<std::uint64_t> draws(997);
    ParallelForRng(draws.size(), 0xABCDEFu, "test.stream",
                   [&](const Shard& shard, Rng& rng) {
                     for (std::size_t i = shard.begin; i < shard.end; ++i) {
                       draws[i] = rng.NextU64();
                     }
                   });
    return draws;
  });
}

TEST(ParallelForRng, ShardRngMatchesDirectSubstreamConstruction) {
  // The substream a shard receives is pinned API behavior, not an accident of
  // the pool: shard i of (seed, stream) is exactly Rng(seed, stream, i).
  constexpr std::uint64_t kSeed = 77;
  std::vector<std::uint64_t> first_draw(8, 0);
  SetParallelWorkers(4);
  ParallelForRng(first_draw.size(), kSeed, "pinned",
                 [&](const Shard& shard, Rng& rng) {
                   // 8 items -> 8 shards, one item each.
                   ASSERT_EQ(shard.size(), 1u);
                   first_draw[shard.index] = rng.NextU64();
                 });
  SetParallelWorkers(1);
  for (std::size_t i = 0; i < first_draw.size(); ++i) {
    Rng direct(kSeed, "pinned", i);
    EXPECT_EQ(first_draw[i], direct.NextU64()) << "substream " << i;
  }
}

TEST(ParallelReduce, FixedFoldOrderMakesFloatSumsExact) {
  ExpectWorkerInvariant([] {
    // Catastrophic-cancellation-prone values: any change in association
    // changes the double result, so equality across worker counts proves the
    // fold order really is fixed.
    return ParallelReduce<double>(
        50'000, 0.0,
        [](std::size_t i) { return 1.0 / (1.0 + static_cast<double>(i * 7)); },
        [](double a, double b) { return a + b; });
  });
}

TEST(ParallelFor, NestedRegionsRunInlineAndStayCorrect) {
  ExpectWorkerInvariant([] {
    std::vector<std::size_t> out(256);
    ParallelFor(out.size(), [&](const Shard& shard) {
      for (std::size_t i = shard.begin; i < shard.end; ++i) {
        // A helper that parallelizes internally must be safe to call from a
        // shard body; the nested region runs inline on this worker.
        out[i] = ParallelReduce<std::size_t>(
            i % 17, std::size_t{0}, [](std::size_t k) { return k + 1; },
            [](std::size_t a, std::size_t b) { return a + b; });
      }
    });
    return out;
  });
}

TEST(ParallelPool, StatsCountRegionsAndItems) {
  const ParallelPoolStats before = ParallelStats();
  SetParallelWorkers(4);
  ParallelFor(100, [](const Shard&) {});
  const ParallelPoolStats after = ParallelStats();
  SetParallelWorkers(1);
  EXPECT_EQ(after.regions, before.regions + 1);
  EXPECT_EQ(after.items, before.items + 100);
  EXPECT_GE(after.shards, before.shards + ParallelShardCount(100));
  EXPECT_GT(after.pooled_regions, before.pooled_regions);
}

// --- Full MAPE world: serial vs pooled traces --------------------------------

/// Deploys the telerehab scenario through a MIRTO agent, runs the periodic
/// MAPE loop for a stretch of simulated time, and fingerprints everything
/// observable: the network trace, metric aggregates, and scheduler state.
std::string RunMapeWorldFingerprint() {
  sim::Engine engine;
  continuum::Infrastructure infra = continuum::BuildInfrastructure(engine, {});
  net::Topology topo = infra.topology;
  topo.AddBidirectional("dpe-tool", "gw-0", sim::SimTime::Millis(1), 1e9);
  net::Network network(engine, std::move(topo), 2026);

  sched::Cluster cluster(engine, sched::Scheduler::Default());
  for (auto& n : infra.nodes) cluster.AddNode(n.get());
  kb::Store store;
  mirto::AgentConfig config;
  config.host = "gw-0";
  mirto::MirtoAgent agent(network, cluster, infra, store,
                          mirto::AuthModule(util::BytesOf("par-secret")),
                          config);
  agent.Start();

  usecases::Scenario scenario = usecases::TelerehabScenario();
  dpe::DpePipeline pipeline(5);
  auto design = pipeline.Run(scenario.dpe_input);
  EXPECT_TRUE(design.ok());

  mirto::AuthModule client(util::BytesOf("par-secret"));
  bool deployed = false;
  network.Call("dpe-tool", "gw-0", "mirto.deploy",
               util::Json::MakeObject()
                   .Set("token", client.IssueToken("dpe-tool"))
                   .Set("csar", design->package.Pack()),
               [&](util::StatusOr<util::Json> r) { deployed = r.ok(); });
  engine.RunUntil(sim::SimTime::Seconds(8));
  EXPECT_TRUE(deployed);

  std::ostringstream fp;
  fp.precision(17);
  for (const sim::TraceRecord& r : network.trace().records()) {
    fp << r.at.ns << '|' << r.component << '|' << r.event << '|' << r.value
       << '\n';
  }
  fp << "pods=" << cluster.RunningPods() << '\n';
  fp << "events=" << engine.executed_events() << '\n';
  for (const std::string& app : agent.DeployedApps()) fp << app << '\n';
  return fp.str();
}

TEST(ParallelMapeWorld, TraceIsIdenticalSerialVsPooled) {
  SetParallelWorkers(1);
  const std::string serial = RunMapeWorldFingerprint();
  ASSERT_FALSE(serial.empty());
  SetParallelWorkers(8);
  const std::string pooled = RunMapeWorldFingerprint();
  SetParallelWorkers(1);
  ASSERT_EQ(serial.size(), pooled.size());
  EXPECT_EQ(serial, pooled) << "MAPE world diverged between serial and pooled";
}

}  // namespace
}  // namespace myrtus::util
