// YAML parser, TOSCA object model + validation processor, pod lowering,
// and CSAR packaging.
#include <gtest/gtest.h>

#include "tosca/csar.hpp"
#include "tosca/model.hpp"
#include "tosca/yaml.hpp"

namespace myrtus::tosca {
namespace {

TEST(Yaml, ScalarsAreTyped) {
  auto doc = ParseYaml("a: 3\nb: 2.5\nc: true\nd: hello\ne: null\nf: \"42\"\n");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_TRUE(doc->at("a").is_int());
  EXPECT_EQ(doc->at("a").as_int(), 3);
  EXPECT_TRUE(doc->at("b").is_double());
  EXPECT_TRUE(doc->at("c").as_bool());
  EXPECT_EQ(doc->at("d").as_string(), "hello");
  EXPECT_TRUE(doc->at("e").is_null());
  EXPECT_TRUE(doc->at("f").is_string());
  EXPECT_EQ(doc->at("f").as_string(), "42");
}

TEST(Yaml, NestedMappings) {
  auto doc = ParseYaml(
      "top:\n"
      "  mid:\n"
      "    leaf: 1\n"
      "  other: 2\n"
      "after: 3\n");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->at("top").at("mid").at("leaf").as_int(), 1);
  EXPECT_EQ(doc->at("top").at("other").as_int(), 2);
  EXPECT_EQ(doc->at("after").as_int(), 3);
}

TEST(Yaml, Sequences) {
  auto doc = ParseYaml(
      "items:\n"
      "  - 1\n"
      "  - two\n"
      "  - true\n");
  ASSERT_TRUE(doc.ok()) << doc.status();
  const auto& items = doc->at("items").items();
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0].as_int(), 1);
  EXPECT_EQ(items[1].as_string(), "two");
  EXPECT_TRUE(items[2].as_bool());
}

TEST(Yaml, SequenceOfMappings) {
  auto doc = ParseYaml(
      "policies:\n"
      "  - name: p1\n"
      "    type: security\n"
      "  - name: p2\n"
      "    type: placement\n");
  ASSERT_TRUE(doc.ok()) << doc.status();
  const auto& pols = doc->at("policies").items();
  ASSERT_EQ(pols.size(), 2u);
  EXPECT_EQ(pols[0].at("name").as_string(), "p1");
  EXPECT_EQ(pols[1].at("type").as_string(), "placement");
}

TEST(Yaml, SequenceAtKeyIndent) {
  // Common style: sequence dash at the same indent as its key.
  auto doc = ParseYaml(
      "targets:\n"
      "- a\n"
      "- b\n");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->at("targets").items().size(), 2u);
}

TEST(Yaml, FlowCollections) {
  auto doc = ParseYaml("a: [1, 2, 3]\nb: {x: 1, y: two}\n");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->at("a").items().size(), 3u);
  EXPECT_EQ(doc->at("b").at("x").as_int(), 1);
  EXPECT_EQ(doc->at("b").at("y").as_string(), "two");
}

TEST(Yaml, CommentsAndBlanksIgnored) {
  auto doc = ParseYaml(
      "# header comment\n"
      "\n"
      "key: value  # trailing comment\n"
      "url: http://example.com/path  # colon inside value\n");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->at("key").as_string(), "value");
  EXPECT_EQ(doc->at("url").as_string(), "http://example.com/path");
}

TEST(Yaml, QuotedStringsPreserveSpecials) {
  auto doc = ParseYaml("a: \"x: y # not a comment\"\n");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->at("a").as_string(), "x: y # not a comment");
}

TEST(Yaml, EmitRoundtrip) {
  util::Json original = util::Json::MakeObject()
          .Set("name", "app")
          .Set("count", 3)
          .Set("ratio", 2.5)
          .Set("flag", true)
          .Set("list", util::Json::MakeArray().Append(1).Append("two"))
          .Set("nested", util::Json::MakeObject().Set("k", "v"))
          .Set("numeric_string", "123")
          .Set("empty_list", util::Json::MakeArray())
          .Set("empty_map", util::Json::MakeObject());
  auto reparsed = ParseYaml(EmitYaml(original));
  ASSERT_TRUE(reparsed.ok()) << EmitYaml(original) << reparsed.status();
  EXPECT_EQ(*reparsed, original) << EmitYaml(original);
}

TEST(Yaml, ErrorsCarryLineNumbers) {
  auto doc = ParseYaml("ok: 1\nnot a mapping line\n");
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.status().message().find("line 2"), std::string::npos);
}

const char* kTelerehabYaml = R"(
tosca_definitions_version: tosca_2_0
description: Virtual telerehabilitation pipeline
service_template:
  node_templates:
    pose_estimation:
      type: myrtus.nodes.AcceleratedKernel
      properties:
        cpu: 1.5
        memory_mb: 512
        accelerable: true
      requirements:
        - connects_to: exercise_scoring
    exercise_scoring:
      type: myrtus.nodes.Workload
      properties:
        cpu: 0.5
        memory_mb: 256
    session_archive:
      type: myrtus.nodes.Workload
      properties:
        cpu: 0.25
        memory_mb: 1024
  policies:
    - patient_privacy:
        type: myrtus.policies.SecurityLevel
        targets: [pose_estimation, exercise_scoring]
        properties:
          level: medium
    - near_patient:
        type: myrtus.policies.Placement
        targets: [pose_estimation]
        properties:
          layer: edge
    - responsiveness:
        type: myrtus.policies.EndToEndLatency
        targets: []
        properties:
          max_ms: 50
)";

TEST(Tosca, ParsesServiceTemplate) {
  auto tpl = ServiceTemplate::FromYaml(kTelerehabYaml);
  ASSERT_TRUE(tpl.ok()) << tpl.status();
  EXPECT_EQ(tpl->tosca_version, "tosca_2_0");
  EXPECT_EQ(tpl->node_templates.size(), 3u);
  EXPECT_EQ(tpl->policies.size(), 3u);
  const NodeTemplate& pose = tpl->node_templates.at("pose_estimation");
  EXPECT_EQ(pose.type, kTypeAccelerator);
  ASSERT_EQ(pose.requirements.size(), 1u);
  EXPECT_EQ(pose.requirements[0].target, "exercise_scoring");
}

TEST(Tosca, ValidTemplatePassesValidation) {
  auto tpl = ServiceTemplate::FromYaml(kTelerehabYaml);
  ASSERT_TRUE(tpl.ok());
  ValidationProcessor v;
  EXPECT_TRUE(v.Check(*tpl).ok()) << v.Check(*tpl);
}

TEST(Tosca, ValidationCatchesUnknownTypeAndTarget) {
  auto tpl = ServiceTemplate::FromYaml(kTelerehabYaml);
  ASSERT_TRUE(tpl.ok());
  tpl->node_templates["rogue"] = NodeTemplate{
      "rogue", "acme.nodes.Mystery", util::Json::MakeObject(), {{"host", "ghost"}}};
  ValidationProcessor v;
  const auto issues = v.Validate(*tpl);
  ASSERT_GE(issues.size(), 2u);
  EXPECT_FALSE(v.Check(*tpl).ok());
}

TEST(Tosca, ValidationCatchesBadSecurityLevelAndVersion) {
  auto tpl = ServiceTemplate::FromYaml(kTelerehabYaml);
  ASSERT_TRUE(tpl.ok());
  tpl->tosca_version = "tosca_9_9";
  tpl->policies[0].properties.Set("level", "quantum");
  ValidationProcessor v;
  const auto issues = v.Validate(*tpl);
  EXPECT_EQ(issues.size(), 2u);
}

TEST(Tosca, ValidationCatchesRequirementCycle) {
  ServiceTemplate tpl;
  tpl.tosca_version = "tosca_2_0";
  tpl.node_templates["a"] = NodeTemplate{
      "a", std::string(kTypeWorkload), util::Json::MakeObject(), {{"host", "b"}}};
  tpl.node_templates["b"] = NodeTemplate{
      "b", std::string(kTypeWorkload), util::Json::MakeObject(), {{"host", "a"}}};
  ValidationProcessor v;
  bool found_cycle = false;
  for (const auto& issue : v.Validate(tpl)) {
    if (issue.problem.find("cycle") != std::string::npos) found_cycle = true;
  }
  EXPECT_TRUE(found_cycle);
}

TEST(Tosca, LowerToPodsAppliesPolicies) {
  auto tpl = ServiceTemplate::FromYaml(kTelerehabYaml);
  ASSERT_TRUE(tpl.ok());
  auto pods = LowerToPods(*tpl);
  ASSERT_TRUE(pods.ok()) << pods.status();
  ASSERT_EQ(pods->size(), 3u);
  const sched::PodSpec* pose = nullptr;
  const sched::PodSpec* archive = nullptr;
  for (const auto& p : *pods) {
    if (p.name == "pose_estimation") pose = &p;
    if (p.name == "session_archive") archive = &p;
  }
  ASSERT_NE(pose, nullptr);
  ASSERT_NE(archive, nullptr);
  EXPECT_TRUE(pose->needs_accelerator);
  EXPECT_EQ(pose->min_security, security::SecurityLevel::kMedium);
  EXPECT_EQ(pose->layer_affinity, "edge");
  EXPECT_DOUBLE_EQ(pose->cpu_request, 1.5);
  EXPECT_EQ(archive->min_security, security::SecurityLevel::kLow);
  EXPECT_TRUE(archive->layer_affinity.empty());
}

TEST(Tosca, LowerToPodsRejectsInvalidTemplate) {
  ServiceTemplate empty;
  empty.tosca_version = "tosca_2_0";
  EXPECT_FALSE(LowerToPods(empty).ok());
}

TEST(Tosca, TemplateJsonYamlRoundtrip) {
  auto tpl = ServiceTemplate::FromYaml(kTelerehabYaml);
  ASSERT_TRUE(tpl.ok());
  auto back = ServiceTemplate::FromYaml(tpl->ToYaml());
  ASSERT_TRUE(back.ok()) << tpl->ToYaml() << "\n" << back.status();
  EXPECT_EQ(back->node_templates.size(), 3u);
  EXPECT_EQ(back->policies.size(), 3u);
  EXPECT_EQ(back->node_templates.at("pose_estimation").requirements[0].target,
            "exercise_scoring");
}

TEST(Csar, PackUnpackRoundtrip) {
  auto tpl = ServiceTemplate::FromYaml(kTelerehabYaml);
  ASSERT_TRUE(tpl.ok());
  CsarPackage pkg = CsarPackage::Create(*tpl);
  pkg.AddFile("scripts/deploy.sh", "#!/bin/sh\necho deploy\n");
  pkg.AddFile("meta/operating_points.json", "[{\"point\":0}]");

  const std::string wire = pkg.Pack();
  auto back = CsarPackage::Unpack(wire);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->files().size(), 4u);
  auto script = back->ReadFile("scripts/deploy.sh");
  ASSERT_TRUE(script.ok());
  EXPECT_EQ(*script, "#!/bin/sh\necho deploy\n");

  auto entry = back->EntryTemplate();
  ASSERT_TRUE(entry.ok()) << entry.status();
  EXPECT_EQ(entry->node_templates.size(), 3u);
}

TEST(Csar, UnpackRejectsCorruptData) {
  EXPECT_FALSE(CsarPackage::Unpack("NOTCSAR").ok());
  auto tpl = ServiceTemplate::FromYaml(kTelerehabYaml);
  ASSERT_TRUE(tpl.ok());
  CsarPackage pkg = CsarPackage::Create(*tpl);
  std::string wire = pkg.Pack();
  wire.resize(wire.size() / 2);  // truncate
  EXPECT_FALSE(CsarPackage::Unpack(wire).ok());
}

TEST(Csar, EntryPathFromMeta) {
  auto tpl = ServiceTemplate::FromYaml(kTelerehabYaml);
  ASSERT_TRUE(tpl.ok());
  CsarPackage pkg = CsarPackage::Create(*tpl, "defs/app.yaml");
  auto entry = pkg.EntryPath();
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(*entry, "defs/app.yaml");
  EXPECT_TRUE(pkg.HasFile("defs/app.yaml"));
}

}  // namespace
}  // namespace myrtus::tosca
