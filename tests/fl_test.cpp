// Linear/logistic SGD models, FedAvg/FedProx aggregation, non-IID splits,
// and the federated-vs-local comparison the paper's §IV motivates.
#include <gtest/gtest.h>

#include <cmath>

#include "fl/fedavg.hpp"
#include "fl/model.hpp"

namespace myrtus::fl {
namespace {

Dataset LinearData(std::size_t n, util::Rng& rng) {
  // y = 2x0 - 3x1 + 1 + noise
  Dataset data;
  for (std::size_t i = 0; i < n; ++i) {
    const double x0 = rng.Uniform(-1, 1);
    const double x1 = rng.Uniform(-1, 1);
    data.push_back({{x0, x1}, 2 * x0 - 3 * x1 + 1 + rng.NextGaussian() * 0.01});
  }
  return data;
}

Dataset LogisticData(std::size_t n, util::Rng& rng) {
  // Class 1 iff x0 + x1 > 0.
  Dataset data;
  for (std::size_t i = 0; i < n; ++i) {
    const double x0 = rng.Uniform(-1, 1);
    const double x1 = rng.Uniform(-1, 1);
    data.push_back({{x0, x1}, x0 + x1 > 0 ? 1.0 : 0.0});
  }
  return data;
}

TEST(LinearModel, LearnsRegression) {
  util::Rng rng(1);
  const Dataset data = LinearData(500, rng);
  LinearModel m(2, LinearModel::Link::kIdentity);
  for (int e = 0; e < 50; ++e) m.TrainEpoch(data, 0.05, rng);
  EXPECT_LT(m.Evaluate(data), 0.01);
  EXPECT_NEAR(m.Predict({1, 0}), 3.0, 0.1);
  EXPECT_NEAR(m.Predict({0, 1}), -2.0, 0.1);
}

TEST(LinearModel, LearnsClassification) {
  util::Rng rng(2);
  const Dataset data = LogisticData(500, rng);
  LinearModel m(2, LinearModel::Link::kLogistic);
  for (int e = 0; e < 50; ++e) m.TrainEpoch(data, 0.2, rng);
  EXPECT_GT(m.Accuracy(data), 0.95);
}

TEST(LinearModel, ParameterRoundtrip) {
  LinearModel a(3, LinearModel::Link::kIdentity);
  a.SetParameters({1, 2, 3, 4});
  LinearModel b(3, LinearModel::Link::kIdentity);
  b.SetParameters(a.Parameters());
  EXPECT_EQ(a.Parameters(), b.Parameters());
  EXPECT_DOUBLE_EQ(b.Predict({1, 1, 1}), 1 + 2 + 3 + 4);
}

TEST(LinearModel, L2ShrinksWeights) {
  util::Rng rng(3);
  const Dataset data = LinearData(200, rng);
  LinearModel free(2, LinearModel::Link::kIdentity);
  LinearModel reg(2, LinearModel::Link::kIdentity);
  for (int e = 0; e < 30; ++e) {
    free.TrainEpoch(data, 0.05, rng);
    reg.TrainEpoch(data, 0.05, rng, /*l2=*/0.5);
  }
  const auto wf = free.Parameters();
  const auto wr = reg.Parameters();
  EXPECT_LT(std::fabs(wr[0]), std::fabs(wf[0]));
  EXPECT_LT(std::fabs(wr[1]), std::fabs(wf[1]));
}

TEST(NonIid, SplitPreservesAllExamplesAndSkews) {
  util::Rng rng(4);
  Dataset data = LogisticData(400, rng);
  // One contiguous shard per client guarantees label skew on sorted data.
  auto shards = NonIidSplit(data, 4, rng, /*shards_per_client=*/1);
  std::size_t total = 0;
  for (const Dataset& d : shards) total += d.size();
  EXPECT_EQ(total, 400u);
  // At least one client should be visibly label-skewed (non-IID).
  bool skew_found = false;
  for (const Dataset& d : shards) {
    if (d.empty()) continue;
    double ones = 0;
    for (const Example& e : d) ones += e.label;
    const double frac = ones / static_cast<double>(d.size());
    if (frac < 0.25 || frac > 0.75) skew_found = true;
  }
  EXPECT_TRUE(skew_found);
}

TEST(FedAvg, ConvergesOnPartitionedData) {
  util::Rng rng(5);
  Dataset all = LinearData(600, rng);
  auto clients = NonIidSplit(all, 6, rng);
  FederatedTrainer trainer(clients, 2, LinearModel::Link::kIdentity, 42);
  FederatedConfig config;
  config.rounds = 30;
  config.local_epochs = 3;
  FederatedMetrics metrics;
  LinearModel global = trainer.Train(config, &metrics);
  EXPECT_LT(global.Evaluate(trainer.PooledData()), 0.05);
  ASSERT_EQ(metrics.global_loss_per_round.size(), 30u);
  EXPECT_LT(metrics.global_loss_per_round.back(),
            metrics.global_loss_per_round.front());
  EXPECT_GT(metrics.bytes_uploaded, 0u);
}

TEST(FedAvg, GlobalModelBeatsLocalOnCrossClientData) {
  util::Rng rng(6);
  Dataset all = LogisticData(800, rng);
  auto clients = NonIidSplit(all, 8, rng);
  FederatedTrainer trainer(clients, 2, LinearModel::Link::kLogistic, 43);
  FederatedConfig config;
  config.rounds = 25;
  config.local_epochs = 2;
  config.learning_rate = 0.2;
  LinearModel global = trainer.Train(config);

  const auto locals = trainer.TrainLocalOnly(4, 0.2);
  const Dataset pooled = trainer.PooledData();
  double local_acc = 0;
  for (const LinearModel& m : locals) local_acc += m.Accuracy(pooled);
  local_acc /= static_cast<double>(locals.size());
  // FL's whole point on non-IID data: the averaged model generalizes across
  // clients better than the average local model.
  EXPECT_GT(global.Accuracy(pooled), local_acc);
  EXPECT_GT(global.Accuracy(pooled), 0.9);
}

TEST(FedProx, ProximalTermKeepsClientsCloser) {
  util::Rng rng(7);
  Dataset all = LinearData(400, rng);
  auto clients = NonIidSplit(all, 4, rng);
  FederatedTrainer trainer(clients, 2, LinearModel::Link::kIdentity, 44);
  FederatedConfig fedprox;
  fedprox.rounds = 20;
  fedprox.prox_mu = 0.1;
  FederatedMetrics m;
  LinearModel global = trainer.Train(fedprox, &m);
  EXPECT_LT(global.Evaluate(trainer.PooledData()), 0.2);
}

TEST(FedAvg, ClientSamplingStillConverges) {
  util::Rng rng(8);
  Dataset all = LinearData(500, rng);
  auto clients = NonIidSplit(all, 10, rng);
  FederatedTrainer trainer(clients, 2, LinearModel::Link::kIdentity, 45);
  FederatedConfig config;
  config.rounds = 40;
  config.client_fraction = 0.4;
  FederatedMetrics metrics;
  LinearModel global = trainer.Train(config, &metrics);
  EXPECT_LT(global.Evaluate(trainer.PooledData()), 0.1);
  // Sampling must reduce traffic vs full participation.
  FederatedMetrics full_metrics;
  FederatedConfig full = config;
  full.client_fraction = 1.0;
  trainer.Train(full, &full_metrics);
  EXPECT_LT(metrics.bytes_uploaded, full_metrics.bytes_uploaded);
}

// Regression: participation used to be a single int overwritten every round,
// so the metric only reflected the final round and hid sampling dips. It is
// now recorded per round with summed/mean accessors.
TEST(FedAvg, ParticipationIsRecordedPerRound) {
  util::Rng rng(9);
  Dataset all = LinearData(300, rng);
  auto clients = NonIidSplit(all, 10, rng);
  FederatedTrainer trainer(clients, 2, LinearModel::Link::kIdentity, 46);
  FederatedConfig config;
  config.rounds = 12;
  config.client_fraction = 0.5;
  FederatedMetrics metrics;
  trainer.Train(config, &metrics);

  ASSERT_EQ(metrics.participating_clients_per_round.size(), 12u);
  int summed = 0;
  for (const int n : metrics.participating_clients_per_round) {
    EXPECT_GE(n, 1);   // at least one client is always sampled
    EXPECT_LE(n, 10);  // never more than the population
    summed += n;
  }
  EXPECT_EQ(metrics.total_participations(), summed);
  EXPECT_DOUBLE_EQ(metrics.mean_participating_clients(), summed / 12.0);

  // Full participation: every round records the whole population.
  FederatedMetrics full_metrics;
  FederatedConfig full = config;
  full.client_fraction = 1.0;
  trainer.Train(full, &full_metrics);
  ASSERT_EQ(full_metrics.participating_clients_per_round.size(), 12u);
  for (const int n : full_metrics.participating_clients_per_round) {
    EXPECT_EQ(n, 10);
  }
  EXPECT_DOUBLE_EQ(full_metrics.mean_participating_clients(), 10.0);
}

}  // namespace
}  // namespace myrtus::fl
