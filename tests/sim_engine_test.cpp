#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include "sim/trace.hpp"

namespace myrtus::sim {
namespace {

TEST(SimTime, Conversions) {
  EXPECT_EQ(SimTime::Millis(3).ns, 3'000'000);
  EXPECT_EQ(SimTime::Seconds(2).ns, 2'000'000'000);
  EXPECT_DOUBLE_EQ(SimTime::Millis(1500).ToSecondsF(), 1.5);
  EXPECT_EQ(SimTime::FromSeconds(0.001).ns, 1'000'000);
}

TEST(SimTime, Arithmetic) {
  EXPECT_EQ((SimTime::Millis(2) + SimTime::Millis(3)).ns, SimTime::Millis(5).ns);
  EXPECT_LT(SimTime::Millis(2), SimTime::Millis(3));
  EXPECT_EQ(SimTime::Micros(5) * 3, SimTime::Micros(15));
}

TEST(Engine, ExecutesInTimestampOrder) {
  Engine e;
  std::vector<int> order;
  e.ScheduleAt(SimTime::Millis(30), [&] { order.push_back(3); });
  e.ScheduleAt(SimTime::Millis(10), [&] { order.push_back(1); });
  e.ScheduleAt(SimTime::Millis(20), [&] { order.push_back(2); });
  e.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.Now(), SimTime::Millis(30));
}

TEST(Engine, FifoTieBreakAtEqualTimestamps) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.ScheduleAt(SimTime::Millis(5), [&order, i] { order.push_back(i); });
  }
  e.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, ScheduleAfterIsRelative) {
  Engine e;
  SimTime seen = SimTime::Zero();
  e.ScheduleAt(SimTime::Millis(10), [&] {
    e.ScheduleAfter(SimTime::Millis(5), [&] { seen = e.Now(); });
  });
  e.Run();
  EXPECT_EQ(seen, SimTime::Millis(15));
}

TEST(Engine, PastSchedulingClampsToNow) {
  Engine e;
  SimTime seen{-1};
  e.ScheduleAt(SimTime::Millis(10), [&] {
    e.ScheduleAt(SimTime::Millis(1), [&] { seen = e.Now(); });
  });
  e.Run();
  EXPECT_EQ(seen, SimTime::Millis(10));
}

TEST(Engine, CancelPreventsExecution) {
  Engine e;
  bool fired = false;
  EventHandle h = e.ScheduleAt(SimTime::Millis(10), [&] { fired = true; });
  e.Cancel(h);
  e.Run();
  EXPECT_FALSE(fired);
}

TEST(Engine, PeriodicFiresUntilCancelled) {
  Engine e;
  int count = 0;
  EventHandle h = e.SchedulePeriodic(SimTime::Millis(10), [&] { ++count; });
  e.RunUntil(SimTime::Millis(55));
  EXPECT_EQ(count, 5);
  e.Cancel(h);
  e.RunUntil(SimTime::Millis(200));
  EXPECT_EQ(count, 5);
}

TEST(Engine, PeriodicCanCancelItself) {
  Engine e;
  int count = 0;
  EventHandle h;
  h = e.SchedulePeriodic(SimTime::Millis(10), [&] {
    if (++count == 3) e.Cancel(h);
  });
  e.RunUntil(SimTime::Seconds(10));
  EXPECT_EQ(count, 3);
}

TEST(Engine, RunUntilAdvancesClockToDeadline) {
  Engine e;
  e.RunUntil(SimTime::Millis(100));
  EXPECT_EQ(e.Now(), SimTime::Millis(100));
}

TEST(Engine, RunUntilLeavesFutureEventsPending) {
  Engine e;
  bool fired = false;
  e.ScheduleAt(SimTime::Millis(200), [&] { fired = true; });
  e.RunUntil(SimTime::Millis(100));
  EXPECT_FALSE(fired);
  EXPECT_EQ(e.pending_events(), 1u);
  e.Run();
  EXPECT_TRUE(fired);
}

TEST(Engine, StopInterruptsRun) {
  Engine e;
  int count = 0;
  e.SchedulePeriodic(SimTime::Millis(1), [&] {
    if (++count == 10) e.Stop();
  });
  e.Run();
  EXPECT_EQ(count, 10);
}

TEST(Engine, RunWithEventLimit) {
  Engine e;
  int count = 0;
  for (int i = 0; i < 100; ++i) {
    e.ScheduleAt(SimTime::Millis(i), [&] { ++count; });
  }
  EXPECT_EQ(e.Run(7), 7u);
  EXPECT_EQ(count, 7);
}

TEST(Trace, AggregatesAndSelects) {
  Trace t;
  t.Emit(SimTime::Millis(1), "edge-0", "latency_ms", 5.0);
  t.Emit(SimTime::Millis(2), "edge-0", "latency_ms", 7.0);
  t.Emit(SimTime::Millis(3), "fog-0", "latency_ms", 2.0);
  EXPECT_EQ(t.StatFor("edge-0", "latency_ms").count(), 2u);
  EXPECT_DOUBLE_EQ(t.StatFor("edge-0", "latency_ms").mean(), 6.0);
  auto selected = t.Select("latency_ms");
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(selected->size(), 3u);
  EXPECT_EQ(t.CountOf("latency_ms"), 3u);
  EXPECT_EQ(t.CountOf("nonexistent"), 0u);
}

TEST(Trace, DropRecordsKeepsAggregates) {
  Trace t;
  t.Emit(SimTime::Zero(), "a", "x", 1.0);
  t.DropRecords();
  t.Emit(SimTime::Zero(), "a", "x", 3.0);
  EXPECT_TRUE(t.records().empty());
  EXPECT_EQ(t.StatFor("a", "x").count(), 2u);
}

TEST(Trace, SelectAfterDropRecordsFailsLoudly) {
  Trace t;
  t.Emit(SimTime::Zero(), "a", "x", 1.0);
  ASSERT_TRUE(t.Select("x").ok());
  t.DropRecords();
  t.Emit(SimTime::Zero(), "a", "x", 3.0);
  // Select would silently return only post-drop records; it must refuse.
  const auto selected = t.Select("x");
  ASSERT_FALSE(selected.ok());
  EXPECT_EQ(selected.status().code(), util::StatusCode::kFailedPrecondition);
  // Aggregates remain the sanctioned way to query after a drop.
  EXPECT_EQ(t.CountOf("x"), 2u);
}

// Regression: a zero (or negative) period used to re-enqueue the task at the
// same timestamp forever, hanging Run()/RunUntil(). It is now clamped to the
// 1 ns tick, so the loop advances and terminates.
TEST(Engine, SchedulePeriodicClampsNonPositivePeriod) {
  Engine e;
  int zero_fires = 0;
  const EventHandle h =
      e.SchedulePeriodic(SimTime::Zero(), [&] { ++zero_fires; });
  EXPECT_TRUE(h.valid());
  e.RunUntil(SimTime::Nanos(10));
  EXPECT_EQ(zero_fires, 10);  // one fire per clamped 1 ns tick
  e.Cancel(h);

  int negative_fires = 0;
  e.SchedulePeriodic(SimTime::Nanos(-5), [&] { ++negative_fires; });
  e.RunUntil(e.Now() + SimTime::Nanos(3));
  EXPECT_EQ(negative_fires, 3);
}

TEST(Metrics, CountersAndGauges) {
  Metrics m;
  m.Inc("pods_scheduled");
  m.Inc("pods_scheduled", 2);
  m.Set("queue_depth", 17);
  EXPECT_DOUBLE_EQ(m.Get("pods_scheduled"), 3.0);
  EXPECT_DOUBLE_EQ(m.Get("queue_depth"), 17.0);
  EXPECT_DOUBLE_EQ(m.Get("missing"), 0.0);
}

}  // namespace
}  // namespace myrtus::sim
