// AES block cipher (FIPS-197 Appendix C KATs), CTR mode, AES-GCM (NIST
// SP 800-38D semantics), and ASCON-128 AEAD behaviour.
#include <gtest/gtest.h>

#include "security/aes.hpp"
#include "security/ascon.hpp"
#include "security/gcm.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace myrtus::security {
namespace {

using util::Bytes;
using util::BytesOf;
using util::FromHex;
using util::ToHex;

Bytes Hex(const char* h) {
  auto b = FromHex(h);
  EXPECT_TRUE(b.ok());
  return *b;
}

TEST(Aes, Fips197Aes128Kat) {
  const Bytes key = Hex("000102030405060708090a0b0c0d0e0f");
  const Bytes pt = Hex("00112233445566778899aabbccddeeff");
  auto aes = Aes::Create(key);
  ASSERT_TRUE(aes.ok());
  std::uint8_t ct[16];
  aes->EncryptBlock(pt.data(), ct);
  EXPECT_EQ(ToHex(ct, 16), "69c4e0d86a7b0430d8cdb78070b4c55a");
  std::uint8_t back[16];
  aes->DecryptBlock(ct, back);
  EXPECT_EQ(ToHex(back, 16), ToHex(pt));
}

TEST(Aes, Fips197Aes192Kat) {
  const Bytes key = Hex("000102030405060708090a0b0c0d0e0f1011121314151617");
  const Bytes pt = Hex("00112233445566778899aabbccddeeff");
  auto aes = Aes::Create(key);
  ASSERT_TRUE(aes.ok());
  EXPECT_EQ(aes->rounds(), 12);
  std::uint8_t ct[16];
  aes->EncryptBlock(pt.data(), ct);
  EXPECT_EQ(ToHex(ct, 16), "dda97ca4864cdfe06eaf70a0ec0d7191");
}

TEST(Aes, Fips197Aes256Kat) {
  const Bytes key =
      Hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const Bytes pt = Hex("00112233445566778899aabbccddeeff");
  auto aes = Aes::Create(key);
  ASSERT_TRUE(aes.ok());
  EXPECT_EQ(aes->rounds(), 14);
  std::uint8_t ct[16];
  aes->EncryptBlock(pt.data(), ct);
  EXPECT_EQ(ToHex(ct, 16), "8ea2b7ca516745bfeafc49904b496089");
  std::uint8_t back[16];
  aes->DecryptBlock(ct, back);
  EXPECT_EQ(ToHex(back, 16), ToHex(pt));
}

TEST(Aes, RejectsBadKeySizes) {
  EXPECT_FALSE(Aes::Create(Bytes(15, 0)).ok());
  EXPECT_FALSE(Aes::Create(Bytes(17, 0)).ok());
  EXPECT_FALSE(Aes::Create(Bytes(0, 0)).ok());
  EXPECT_TRUE(Aes::Create(Bytes(24, 0)).ok());
}

TEST(AesCtr, RoundtripAllSizes) {
  const Bytes key(16, 0x42);
  const Bytes iv(12, 0x01);
  util::Rng rng(99);
  for (std::size_t n : {0u, 1u, 15u, 16u, 17u, 64u, 1000u}) {
    Bytes pt(n);
    for (auto& b : pt) b = static_cast<std::uint8_t>(rng.NextU64());
    auto enc = AesCtr::Create(key, iv);
    auto dec = AesCtr::Create(key, iv);
    ASSERT_TRUE(enc.ok() && dec.ok());
    const Bytes ct = enc->Crypt(pt);
    EXPECT_EQ(dec->Crypt(ct), pt) << "n=" << n;
    if (n > 0) {
      EXPECT_NE(ct, pt);
    }
  }
}

TEST(AesCtr, StreamingMatchesOneShot) {
  const Bytes key(32, 0x07);
  const Bytes iv(12, 0x09);
  Bytes msg = BytesOf("counter mode keystream must be byte-addressable");
  auto one = AesCtr::Create(key, iv);
  auto split = AesCtr::Create(key, iv);
  ASSERT_TRUE(one.ok() && split.ok());
  const Bytes expected = one->Crypt(msg);
  Bytes actual = msg;
  split->Crypt(actual.data(), 3);
  split->Crypt(actual.data() + 3, actual.size() - 3);
  EXPECT_EQ(actual, expected);
}

TEST(AesCtr, RejectsBadIvLength) {
  EXPECT_FALSE(AesCtr::Create(Bytes(16, 0), Bytes(16, 0)).ok());
}

TEST(AesGcm, SealOpenRoundtrip) {
  const Bytes key(32, 0x11);
  const Bytes nonce(12, 0x22);
  const Bytes aad = BytesOf("header");
  const Bytes pt = BytesOf("attack at dawn");
  auto sealed = AesGcmSeal(key, nonce, aad, pt);
  ASSERT_TRUE(sealed.ok());
  EXPECT_EQ(sealed->size(), pt.size() + 16);
  auto opened = AesGcmOpen(key, nonce, aad, *sealed);
  ASSERT_TRUE(opened.ok()) << opened.status();
  EXPECT_EQ(*opened, pt);
}

TEST(AesGcm, EmptyPlaintextProducesTagOnly) {
  const Bytes key(16, 0);
  const Bytes nonce(12, 0);
  auto sealed = AesGcmSeal(key, nonce, {}, {});
  ASSERT_TRUE(sealed.ok());
  EXPECT_EQ(sealed->size(), 16u);
  auto opened = AesGcmOpen(key, nonce, {}, *sealed);
  EXPECT_TRUE(opened.ok());
  EXPECT_TRUE(opened->empty());
}

TEST(AesGcm, TamperedCiphertextRejected) {
  const Bytes key(16, 0x33);
  const Bytes nonce(12, 0x44);
  auto sealed = AesGcmSeal(key, nonce, {}, BytesOf("payload"));
  ASSERT_TRUE(sealed.ok());
  Bytes tampered = *sealed;
  tampered[0] ^= 1;
  EXPECT_FALSE(AesGcmOpen(key, nonce, {}, tampered).ok());
}

TEST(AesGcm, TamperedTagRejected) {
  const Bytes key(16, 0x33);
  const Bytes nonce(12, 0x44);
  auto sealed = AesGcmSeal(key, nonce, {}, BytesOf("payload"));
  ASSERT_TRUE(sealed.ok());
  Bytes tampered = *sealed;
  tampered.back() ^= 0x80;
  EXPECT_FALSE(AesGcmOpen(key, nonce, {}, tampered).ok());
}

TEST(AesGcm, WrongAadRejected) {
  const Bytes key(16, 0x55);
  const Bytes nonce(12, 0x66);
  auto sealed = AesGcmSeal(key, nonce, BytesOf("aad-1"), BytesOf("data"));
  ASSERT_TRUE(sealed.ok());
  EXPECT_FALSE(AesGcmOpen(key, nonce, BytesOf("aad-2"), *sealed).ok());
}

TEST(AesGcm, WrongKeyOrNonceRejected) {
  const Bytes key(16, 0x01);
  const Bytes nonce(12, 0x02);
  auto sealed = AesGcmSeal(key, nonce, {}, BytesOf("data"));
  ASSERT_TRUE(sealed.ok());
  Bytes other_key = key;
  other_key[0] ^= 1;
  Bytes other_nonce = nonce;
  other_nonce[0] ^= 1;
  EXPECT_FALSE(AesGcmOpen(other_key, nonce, {}, *sealed).ok());
  EXPECT_FALSE(AesGcmOpen(key, other_nonce, {}, *sealed).ok());
}

TEST(AesGcm, TooShortSealedBufferRejected) {
  EXPECT_FALSE(AesGcmOpen(Bytes(16, 0), Bytes(12, 0), {}, Bytes(15, 0)).ok());
}

TEST(Ascon128, SealOpenRoundtripVariousSizes) {
  const Bytes key(16, 0xaa);
  const Bytes nonce(16, 0xbb);
  util::Rng rng(5);
  for (std::size_t n : {0u, 1u, 7u, 8u, 9u, 16u, 63u, 64u, 257u}) {
    Bytes pt(n);
    for (auto& b : pt) b = static_cast<std::uint8_t>(rng.NextU64());
    auto sealed = Ascon128Seal(key, nonce, BytesOf("ad"), pt);
    ASSERT_TRUE(sealed.ok());
    EXPECT_EQ(sealed->size(), n + 16);
    auto opened = Ascon128Open(key, nonce, BytesOf("ad"), *sealed);
    ASSERT_TRUE(opened.ok()) << "n=" << n << " " << opened.status();
    EXPECT_EQ(*opened, pt) << "n=" << n;
  }
}

TEST(Ascon128, AadBlockBoundaries) {
  const Bytes key(16, 0x01);
  const Bytes nonce(16, 0x02);
  for (std::size_t alen : {0u, 1u, 7u, 8u, 9u, 16u}) {
    const Bytes aad(alen, 0x5a);
    auto sealed = Ascon128Seal(key, nonce, aad, BytesOf("msg"));
    ASSERT_TRUE(sealed.ok());
    EXPECT_TRUE(Ascon128Open(key, nonce, aad, *sealed).ok()) << "alen=" << alen;
    // Any AAD perturbation must break authentication.
    Bytes aad2 = aad;
    if (!aad2.empty()) {
      aad2[0] ^= 1;
      EXPECT_FALSE(Ascon128Open(key, nonce, aad2, *sealed).ok());
    }
  }
}

TEST(Ascon128, TamperDetection) {
  const Bytes key(16, 0xcc);
  const Bytes nonce(16, 0xdd);
  auto sealed = Ascon128Seal(key, nonce, {}, BytesOf("sensor reading 42"));
  ASSERT_TRUE(sealed.ok());
  for (std::size_t i = 0; i < sealed->size(); i += 5) {
    Bytes tampered = *sealed;
    tampered[i] ^= 0x40;
    EXPECT_FALSE(Ascon128Open(key, nonce, {}, tampered).ok()) << "byte " << i;
  }
}

TEST(Ascon128, DistinctNoncesDistinctCiphertexts) {
  const Bytes key(16, 0xee);
  Bytes n1(16, 0x00);
  Bytes n2(16, 0x00);
  n2[15] = 1;
  auto c1 = Ascon128Seal(key, n1, {}, BytesOf("same message"));
  auto c2 = Ascon128Seal(key, n2, {}, BytesOf("same message"));
  ASSERT_TRUE(c1.ok() && c2.ok());
  EXPECT_NE(*c1, *c2);
}

TEST(Ascon128, RejectsBadParameterSizes) {
  EXPECT_FALSE(Ascon128Seal(Bytes(15, 0), Bytes(16, 0), {}, {}).ok());
  EXPECT_FALSE(Ascon128Seal(Bytes(16, 0), Bytes(12, 0), {}, {}).ok());
  EXPECT_FALSE(Ascon128Open(Bytes(16, 0), Bytes(16, 0), {}, Bytes(8, 0)).ok());
}

}  // namespace
}  // namespace myrtus::security
