// Topology routing, transport timing/loss/queueing, RPC fabric, and the
// MQTT-style broker.
#include <gtest/gtest.h>

#include <memory>

#include "net/pubsub.hpp"
#include "net/topology.hpp"
#include "net/transport.hpp"
#include "telemetry/telemetry.hpp"

namespace myrtus::net {
namespace {

using sim::SimTime;

Topology LineTopology() {
  // edge -- fog -- cloud, 1ms and 10ms links, 1 Gb/s.
  Topology t;
  t.AddBidirectional("edge", "fog", SimTime::Millis(1), 1e9);
  t.AddBidirectional("fog", "cloud", SimTime::Millis(10), 1e9);
  return t;
}

TEST(Topology, RouteAlongLine) {
  Topology t = LineTopology();
  auto route = t.FindRoute("edge", "cloud");
  ASSERT_TRUE(route.ok());
  EXPECT_EQ(route->link_indices.size(), 2u);
  EXPECT_EQ(route->propagation, SimTime::Millis(11));
}

TEST(Topology, LoopbackIsEmptyRoute) {
  Topology t = LineTopology();
  auto route = t.FindRoute("fog", "fog");
  ASSERT_TRUE(route.ok());
  EXPECT_TRUE(route->link_indices.empty());
  EXPECT_EQ(route->propagation, SimTime::Zero());
}

TEST(Topology, UnknownHostIsNotFound) {
  Topology t = LineTopology();
  EXPECT_FALSE(t.FindRoute("edge", "mars").ok());
}

TEST(Topology, PicksLowerLatencyPath) {
  Topology t;
  t.AddBidirectional("a", "b", SimTime::Millis(10), 1e9);
  t.AddBidirectional("a", "c", SimTime::Millis(1), 1e9);
  t.AddBidirectional("c", "b", SimTime::Millis(2), 1e9);
  auto route = t.FindRoute("a", "b");
  ASSERT_TRUE(route.ok());
  EXPECT_EQ(route->link_indices.size(), 2u);  // via c: 3ms < 10ms direct
  EXPECT_EQ(route->propagation, SimTime::Millis(3));
}

TEST(Topology, LinkFailureReroutes) {
  Topology t;
  t.AddBidirectional("a", "b", SimTime::Millis(10), 1e9);
  t.AddBidirectional("a", "c", SimTime::Millis(1), 1e9);
  t.AddBidirectional("c", "b", SimTime::Millis(2), 1e9);
  // Kill the a->c link; route must fall back to the direct 10ms path.
  for (std::size_t i = 0; i < t.link_count(); ++i) {
    if (t.link(i).from == "a" && t.link(i).to == "c") t.SetLinkUp(i, false);
  }
  auto route = t.FindRoute("a", "b");
  ASSERT_TRUE(route.ok());
  EXPECT_EQ(route->propagation, SimTime::Millis(10));
}

TEST(Topology, DisconnectedIsNotFound) {
  Topology t;
  t.AddHost("island");
  t.AddBidirectional("a", "b", SimTime::Millis(1), 1e9);
  EXPECT_FALSE(t.FindRoute("a", "island").ok());
}

TEST(Topology, MinBandwidthAlongRoute) {
  Topology t;
  t.AddBidirectional("a", "b", SimTime::Millis(1), 1e9);
  t.AddBidirectional("b", "c", SimTime::Millis(1), 1e6);
  auto route = t.FindRoute("a", "c");
  ASSERT_TRUE(route.ok());
  EXPECT_DOUBLE_EQ(route->min_bandwidth_bps, 1e6);
}

TEST(Network, DeliversWithExpectedLatency) {
  sim::Engine engine;
  Network net(engine, LineTopology(), 1);
  SimTime arrival{-1};
  net.Attach("cloud", [&](const Message& m) {
    EXPECT_EQ(m.kind, "telemetry");
    arrival = engine.Now();
  });
  Message msg;
  msg.from = "edge";
  msg.to = "cloud";
  msg.kind = "telemetry";
  msg.protocol = Protocol::kCoap;
  msg.body_bytes = 1000;
  ASSERT_TRUE(net.Send(std::move(msg)).ok());
  engine.Run();
  // 11ms propagation + ~2 * (1012B * 8 / 1e9)s serialization ≈ 11.016ms.
  EXPECT_GT(arrival, SimTime::Millis(11));
  EXPECT_LT(arrival, SimTime::Millis(12));
  EXPECT_EQ(net.messages_delivered(), 1u);
}

TEST(Network, LoopbackDelivery) {
  sim::Engine engine;
  Network net(engine, LineTopology(), 1);
  int got = 0;
  net.Attach("edge", [&](const Message&) { ++got; });
  Message msg;
  msg.from = "edge";
  msg.to = "edge";
  msg.kind = "self";
  ASSERT_TRUE(net.Send(std::move(msg)).ok());
  engine.Run();
  EXPECT_EQ(got, 1);
}

TEST(Network, NoRouteFailsFast) {
  sim::Engine engine;
  Topology t;
  t.AddHost("a");
  t.AddHost("b");
  Network net(engine, std::move(t), 1);
  Message msg;
  msg.from = "a";
  msg.to = "b";
  EXPECT_FALSE(net.Send(std::move(msg)).ok());
}

TEST(Network, LossyLinkDropsApproximatelyAtRate) {
  sim::Engine engine;
  Topology t;
  t.AddLink(Link{"a", "b", SimTime::Micros(10), 1e9, 0.3, {}});
  Network net(engine, std::move(t), 42);
  int delivered = 0;
  net.Attach("b", [&](const Message&) { ++delivered; });
  for (int i = 0; i < 2000; ++i) {
    Message m;
    m.from = "a";
    m.to = "b";
    m.kind = "probe";
    m.body_bytes = 10;
    ASSERT_TRUE(net.Send(std::move(m)).ok());
  }
  engine.Run();
  EXPECT_NEAR(static_cast<double>(delivered) / 2000.0, 0.7, 0.04);
  EXPECT_EQ(net.messages_dropped() + net.messages_delivered(), 2000u);
}

TEST(Network, QueueingDelaysBackToBackMessages) {
  sim::Engine engine;
  Topology t;
  // Slow 1 Mb/s link: 1250-byte frame takes 10ms to serialize.
  t.AddLink(Link{"a", "b", SimTime::Zero(), 1e6, 0.0, {}});
  Network net(engine, std::move(t), 7);
  std::vector<SimTime> arrivals;
  net.Attach("b", [&](const Message&) { arrivals.push_back(engine.Now()); });
  for (int i = 0; i < 3; ++i) {
    Message m;
    m.from = "a";
    m.to = "b";
    m.kind = "bulk";
    m.protocol = Protocol::kMqtt;
    m.body_bytes = 1242;  // + 8B MQTT = 1250B = 10ms at 1 Mb/s
    ASSERT_TRUE(net.Send(std::move(m)).ok());
  }
  engine.Run();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[0], SimTime::Millis(10));
  EXPECT_EQ(arrivals[1], SimTime::Millis(20));  // queued behind the first
  EXPECT_EQ(arrivals[2], SimTime::Millis(30));
}

TEST(Network, RpcRoundtrip) {
  sim::Engine engine;
  Network net(engine, LineTopology(), 1);
  net.RegisterRpc("cloud", "echo",
                  [](const HostId& caller, const util::Json& req)
                      -> util::StatusOr<util::Json> {
                    return util::Json::MakeObject()
                        .Set("caller", caller)
                        .Set("echo", req);
                  });
  bool replied = false;
  net.Call("edge", "cloud", "echo", util::Json(42),
           [&](util::StatusOr<util::Json> reply) {
             ASSERT_TRUE(reply.ok());
             EXPECT_EQ(reply->at("caller").as_string(), "edge");
             EXPECT_EQ(reply->at("echo").as_int(), 42);
             replied = true;
           });
  engine.Run();
  EXPECT_TRUE(replied);
}

TEST(Network, RpcErrorPropagates) {
  sim::Engine engine;
  Network net(engine, LineTopology(), 1);
  net.RegisterRpc("fog", "fail",
                  [](const HostId&, const util::Json&)
                      -> util::StatusOr<util::Json> {
                    return util::Status::ResourceExhausted("no capacity");
                  });
  bool replied = false;
  net.Call("edge", "fog", "fail", {}, [&](util::StatusOr<util::Json> reply) {
    EXPECT_FALSE(reply.ok());
    EXPECT_EQ(reply.status().code(), util::StatusCode::kResourceExhausted);
    EXPECT_EQ(reply.status().message(), "no capacity");
    replied = true;
  });
  engine.Run();
  EXPECT_TRUE(replied);
}

TEST(Network, RpcUnknownMethodIsUnimplemented) {
  sim::Engine engine;
  Network net(engine, LineTopology(), 1);
  bool replied = false;
  net.Call("edge", "fog", "nope", {}, [&](util::StatusOr<util::Json> reply) {
    EXPECT_EQ(reply.status().code(), util::StatusCode::kUnimplemented);
    replied = true;
  });
  engine.Run();
  EXPECT_TRUE(replied);
}

TEST(Network, RpcTimesOutOnLostReply) {
  sim::Engine engine;
  Topology t;
  // Fully lossy link: requests never arrive.
  t.AddLink(Link{"a", "b", SimTime::Millis(1), 1e9, 1.0, {}});
  t.AddLink(Link{"b", "a", SimTime::Millis(1), 1e9, 1.0, {}});
  Network net(engine, std::move(t), 3);
  net.RegisterRpc("b", "m", [](const HostId&, const util::Json&)
                                -> util::StatusOr<util::Json> {
    return util::Json(1);
  });
  bool timed_out = false;
  net.Call("a", "b", "m", {}, [&](util::StatusOr<util::Json> reply) {
    EXPECT_EQ(reply.status().code(), util::StatusCode::kDeadlineExceeded);
    timed_out = true;
  }, SimTime::Millis(100));
  engine.Run();
  EXPECT_TRUE(timed_out);
  EXPECT_EQ(engine.Now(), SimTime::Millis(100));
}

TEST(TopicMatch, ExactAndWildcards) {
  EXPECT_TRUE(TopicMatches("a/b", "a/b"));
  EXPECT_FALSE(TopicMatches("a/b", "a/c"));
  EXPECT_TRUE(TopicMatches("a/+", "a/b"));
  EXPECT_FALSE(TopicMatches("a/+", "a/b/c"));
  EXPECT_TRUE(TopicMatches("a/#", "a/b/c"));
  EXPECT_TRUE(TopicMatches("#", "anything/at/all"));
  EXPECT_FALSE(TopicMatches("a/b", "a"));
  EXPECT_FALSE(TopicMatches("a", "a/b"));
  EXPECT_TRUE(TopicMatches("+/b/#", "x/b/y/z"));
}

// Regression: `#` used to be honoured anywhere in the filter, so malformed
// filters like "a/#/b" silently matched everything under "a". Per MQTT, `#`
// is only valid as the final level; elsewhere it must match nothing.
TEST(TopicMatch, TableDrivenWildcardSemantics) {
  struct Case {
    const char* filter;
    const char* topic;
    bool match;
  };
  const Case kCases[] = {
      // Multi-level wildcard also matches the parent level itself.
      {"a/#", "a", true},
      {"a/#", "a/b", true},
      {"a/#", "a/b/c/d", true},
      {"#", "a", true},
      {"sport/tennis/#", "sport/tennis/player1/ranking", true},
      // Non-trailing `#` is malformed and must never match.
      {"a/#/b", "a/x/b", false},
      {"a/#/b", "a/b", false},
      {"a/#/b", "a/anything/at/all", false},
      {"#/b", "a/b", false},
      {"#/#", "a/b", false},
      // `+` is exactly one level, combinable with a trailing `#`.
      {"+", "a", true},
      {"+", "a/b", false},
      {"a/+/c", "a/b/c", true},
      {"a/+/c", "a/c", false},
      {"+/#", "a/b/c", true},
      // Exact matches are unchanged.
      {"a/b/c", "a/b/c", true},
      {"a/b/c", "a/b", false},
  };
  for (const Case& c : kCases) {
    EXPECT_EQ(TopicMatches(c.filter, c.topic), c.match)
        << "filter='" << c.filter << "' topic='" << c.topic << "'";
  }
}

TEST(Broker, PublishFansOutToMatchingSubscribers) {
  sim::Engine engine;
  Topology t;
  t.AddBidirectional("sensor", "gateway", SimTime::Millis(1), 1e8);
  t.AddBidirectional("gateway", "analytics", SimTime::Millis(2), 1e8);
  t.AddBidirectional("gateway", "dashboard", SimTime::Millis(5), 1e8);
  Network net(engine, std::move(t), 11);
  Broker broker(net, "gateway");

  std::vector<std::string> analytics_topics;
  int dashboard_events = 0;
  broker.Subscribe("analytics", "telemetry/#",
                   [&](const std::string& topic, const util::Json&) {
                     analytics_topics.push_back(topic);
                   });
  broker.Subscribe("dashboard", "telemetry/temp/+",
                   [&](const std::string&, const util::Json&) {
                     ++dashboard_events;
                   });

  broker.Publish("sensor", "telemetry/temp/room1",
                 util::Json::MakeObject().Set("c", 21.5));
  broker.Publish("sensor", "telemetry/humidity/room1",
                 util::Json::MakeObject().Set("rh", 0.4));
  engine.Run();

  EXPECT_EQ(broker.publishes(), 2u);
  ASSERT_EQ(analytics_topics.size(), 2u);
  EXPECT_EQ(dashboard_events, 1);
  EXPECT_EQ(broker.deliveries(), 3u);
}

TEST(Broker, UnsubscribeStopsDelivery) {
  sim::Engine engine;
  Topology t;
  t.AddBidirectional("pub", "gw", SimTime::Millis(1), 1e8);
  t.AddBidirectional("gw", "sub", SimTime::Millis(1), 1e8);
  Network net(engine, std::move(t), 11);
  Broker broker(net, "gw");
  int events = 0;
  broker.Subscribe("sub", "t/#", [&](const std::string&, const util::Json&) {
    ++events;
  });
  broker.Publish("pub", "t/1", util::Json(1));
  engine.Run();
  broker.Unsubscribe("sub", "t/#");
  broker.Publish("pub", "t/2", util::Json(2));
  engine.Run();
  EXPECT_EQ(events, 1);
}

TEST(Network, DestructionUninstallsTracerClock) {
  // Regression for the capture-lifetime fix: the constructor hands the global
  // tracer a closure over &engine_; the destructor must take it back, or the
  // tracer dereferences a destroyed network on the next NowNs().
  telemetry::ResetGlobal();
  {
    sim::Engine engine;
    Network net(engine, LineTopology(), 1);
    engine.RunUntil(SimTime::Millis(5));
    EXPECT_EQ(telemetry::Global().tracer.NowNs(), SimTime::Millis(5).ns);
  }
  EXPECT_EQ(telemetry::Global().tracer.NowNs(), 0)
      << "destroyed network left its clock installed";
  telemetry::ResetGlobal();
}

TEST(Network, StaleClockTokenDoesNotClobberNewerInstall) {
  // Last-constructed wins must survive out-of-order destruction: the first
  // network's (stale) token is a no-op against the second's installation.
  telemetry::ResetGlobal();
  sim::Engine engine_a;
  sim::Engine engine_b;
  auto net_a = std::make_unique<Network>(engine_a, LineTopology(), 1);
  Network net_b(engine_b, LineTopology(), 2);
  engine_b.RunUntil(SimTime::Millis(3));
  net_a.reset();
  EXPECT_EQ(telemetry::Global().tracer.NowNs(), SimTime::Millis(3).ns)
      << "stale uninstall token clobbered the newer clock";
  telemetry::ResetGlobal();
}

}  // namespace
}  // namespace myrtus::net
