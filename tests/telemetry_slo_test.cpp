// SLO engine: burn-rate arithmetic, multi-window (fast AND slow) agreement,
// breach/clear hysteresis, objective validation, and the breach -> flight
// recorder / transition-handler plumbing.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "telemetry/slo.hpp"
#include "telemetry/telemetry.hpp"

namespace myrtus::telemetry {
namespace {

constexpr std::int64_t kMs = 1'000'000;  // ns per ms

SloObjective Availability(const std::string& name, double target,
                          double threshold) {
  SloObjective o;
  o.name = name;
  o.kind = SloObjective::Kind::kAvailability;
  o.target = target;
  o.burn_rate_threshold = threshold;
  return o;
}

TEST(SloEngine, RejectsMalformedObjectives) {
  SloEngine engine;
  EXPECT_FALSE(engine.AddObjective({}).ok());  // no name

  SloObjective bad_target = Availability("t", 1.0, 4.0);
  EXPECT_FALSE(engine.AddObjective(bad_target).ok());

  SloObjective inverted = Availability("w", 0.9, 4.0);
  inverted.fast_window_ns = 10'000 * kMs;
  inverted.slow_window_ns = 2'000 * kMs;
  EXPECT_FALSE(engine.AddObjective(inverted).ok());

  ASSERT_TRUE(engine.AddObjective(Availability("ok", 0.9, 4.0)).ok());
  EXPECT_FALSE(engine.AddObjective(Availability("ok", 0.9, 4.0)).ok());
  EXPECT_EQ(engine.objective_count(), 1u);
}

TEST(SloEngine, BurnRateIsBadFractionOverBudget) {
  SloEngine engine;
  // target 0.9 -> error budget 0.1: a 50% bad mix burns 5x the budget.
  ASSERT_TRUE(engine.AddObjective(Availability("avail", 0.9, 4.0)).ok());
  for (int i = 0; i < 10; ++i) {
    engine.RecordAvailability("avail", i % 2 == 0, i * kMs);
  }
  engine.Evaluate(10 * kMs);
  const SloStatus* status = engine.Find("avail");
  ASSERT_NE(status, nullptr);
  EXPECT_DOUBLE_EQ(status->fast_burn_rate, 5.0);
  EXPECT_DOUBLE_EQ(status->slow_burn_rate, 5.0);
  EXPECT_EQ(status->observations, 10u);
  EXPECT_EQ(status->bad, 5u);
  // Both windows >= 4.0 -> breach.
  EXPECT_EQ(status->state, SloState::kBreach);
  EXPECT_EQ(status->breaches, 1u);
}

TEST(SloEngine, LatencyObjectiveClassifiesByThreshold) {
  SloEngine engine;
  SloObjective o;
  o.name = "lat";
  o.kind = SloObjective::Kind::kLatency;
  o.latency_threshold_ms = 100.0;
  o.target = 0.5;
  ASSERT_TRUE(engine.AddObjective(o).ok());
  engine.RecordLatencyMs("lat", 50.0, 1 * kMs);    // good
  engine.RecordLatencyMs("lat", 100.0, 2 * kMs);   // good (<=)
  engine.RecordLatencyMs("lat", 250.0, 3 * kMs);   // bad
  engine.RecordLatencyMs("lat", 1000.0, 4 * kMs);  // bad
  engine.Evaluate(5 * kMs);
  const SloStatus* status = engine.Find("lat");
  ASSERT_NE(status, nullptr);
  EXPECT_EQ(status->bad, 2u);
  // bad fraction 0.5 / budget 0.5 = burn 1.0.
  EXPECT_DOUBLE_EQ(status->fast_burn_rate, 1.0);
  EXPECT_EQ(status->state, SloState::kOk);
}

TEST(SloEngine, MismatchedKindObservationsAreIgnored) {
  SloEngine engine;
  ASSERT_TRUE(engine.AddObjective(Availability("avail", 0.9, 4.0)).ok());
  engine.RecordLatencyMs("avail", 1e9, 1 * kMs);  // wrong kind: dropped
  engine.RecordLatencyMs("ghost", 1e9, 1 * kMs);  // unknown: dropped
  engine.Evaluate(2 * kMs);
  EXPECT_EQ(engine.Find("avail")->observations, 0u);
}

TEST(SloEngine, BreachNeedsBothWindowsBurning) {
  // Fast window 2s, slow 10s. Seed 8 seconds of clean history, then a burst
  // of failures in the last 2 seconds: the fast window saturates but the slow
  // window still holds enough good observations to stay under threshold.
  SloEngine engine;
  ASSERT_TRUE(engine.AddObjective(Availability("avail", 0.9, 4.0)).ok());
  for (int i = 0; i < 80; ++i) {  // t = 0..7.9s, all good
    engine.RecordAvailability("avail", true, i * 100 * kMs);
  }
  for (int i = 80; i < 100; ++i) {  // t = 8..9.9s, all bad
    engine.RecordAvailability("avail", false, i * 100 * kMs);
  }
  engine.Evaluate(10'000 * kMs);
  const SloStatus* status = engine.Find("avail");
  ASSERT_NE(status, nullptr);
  EXPECT_GE(status->fast_burn_rate, 4.0);  // recent window: all bad
  EXPECT_LT(status->slow_burn_rate, 4.0);  // 20 bad / ~100 total = burn ~2
  EXPECT_EQ(status->state, SloState::kOk) << "slow window must veto the blip";

  // Keep failing: once the slow window fills with failures too, breach.
  for (int i = 100; i < 140; ++i) {
    engine.RecordAvailability("avail", false, i * 100 * kMs);
  }
  engine.Evaluate(14'000 * kMs);
  EXPECT_EQ(status->state, SloState::kBreach);
  EXPECT_EQ(status->breaches, 1u);
}

TEST(SloEngine, ClearRequiresHysteresisMargin) {
  // threshold 4.0, clear_fraction 0.5 -> clears only below burn 2.0.
  SloEngine engine;
  SloObjective o = Availability("avail", 0.9, 4.0);
  o.clear_fraction = 0.5;
  ASSERT_TRUE(engine.AddObjective(o).ok());

  // Drive into breach: all-bad everywhere.
  for (int i = 0; i < 100; ++i) {
    engine.RecordAvailability("avail", false, i * 100 * kMs);
  }
  engine.Evaluate(10'000 * kMs);
  const SloStatus* status = engine.Find("avail");
  ASSERT_EQ(status->state, SloState::kBreach);

  // Recover to a mix that burns ~3: below the fire threshold but above the
  // clear line -> the alert must NOT flap back to ok.
  for (int i = 100; i < 200; ++i) {
    engine.RecordAvailability("avail", i % 10 < 7, i * 100 * kMs);  // 30% bad
  }
  engine.Evaluate(20'000 * kMs);
  EXPECT_GT(status->fast_burn_rate, 2.0);
  EXPECT_LT(status->fast_burn_rate, 4.0);
  EXPECT_EQ(status->state, SloState::kBreach) << "hysteresis must hold";

  // Full recovery: burn well under 2.0 in both windows -> clears.
  for (int i = 200; i < 320; ++i) {
    engine.RecordAvailability("avail", true, i * 100 * kMs);
  }
  engine.Evaluate(32'000 * kMs);
  EXPECT_EQ(status->state, SloState::kOk);
  EXPECT_EQ(status->breaches, 1u);  // one breach episode, not a flap storm
}

TEST(SloEngine, OldObservationsEvictFromWindows) {
  SloEngine engine;
  ASSERT_TRUE(engine.AddObjective(Availability("avail", 0.9, 4.0)).ok());
  for (int i = 0; i < 50; ++i) {
    engine.RecordAvailability("avail", false, i * 100 * kMs);
  }
  engine.Evaluate(5'000 * kMs);
  EXPECT_EQ(engine.Find("avail")->state, SloState::kBreach);
  // 30 simulated seconds later every bucket is stale: burn decays to zero
  // and the breach clears.
  engine.Evaluate(35'000 * kMs);
  EXPECT_DOUBLE_EQ(engine.Find("avail")->fast_burn_rate, 0.0);
  EXPECT_DOUBLE_EQ(engine.Find("avail")->slow_burn_rate, 0.0);
  EXPECT_EQ(engine.Find("avail")->state, SloState::kOk);
}

TEST(SloEngine, TransitionHandlerAndBreachedListFire) {
  SloEngine engine;
  ASSERT_TRUE(engine.AddObjective(Availability("a.avail", 0.9, 4.0)).ok());
  ASSERT_TRUE(engine.AddObjective(Availability("b.avail", 0.9, 4.0)).ok());
  std::vector<std::string> transitions;
  // LINT: deferred-capture-ok(default) -- the handler only runs inside the
  // Evaluate() call below; engine and transitions die with this frame
  engine.set_transition_handler(
      [&](const std::string& name, const SloStatus&, bool breached) {
        transitions.push_back((breached ? "breach:" : "clear:") + name);
      });
  for (int i = 0; i < 100; ++i) {
    engine.RecordAvailability("a.avail", false, i * 100 * kMs);
    engine.RecordAvailability("b.avail", true, i * 100 * kMs);
  }
  engine.Evaluate(10'000 * kMs);
  ASSERT_EQ(transitions.size(), 1u);
  EXPECT_EQ(transitions[0], "breach:a.avail");
  EXPECT_TRUE(engine.any_breached());
  EXPECT_EQ(engine.Breached(), std::vector<std::string>{"a.avail"});

  engine.Evaluate(40'000 * kMs);  // windows empty -> clear
  ASSERT_EQ(transitions.size(), 2u);
  EXPECT_EQ(transitions[1], "clear:a.avail");
  EXPECT_FALSE(engine.any_breached());
}

TEST(SloEngine, BreachLandsInFlightRecorder) {
  ResetGlobal();
  SetEnabled(true);
  SloEngine engine;
  ASSERT_TRUE(engine.AddObjective(Availability("fleet", 0.9, 4.0)).ok());
  for (int i = 0; i < 100; ++i) {
    engine.RecordAvailability("fleet", false, i * 100 * kMs);
  }
  engine.Evaluate(10'000 * kMs);

  auto& recorder = Global().recorder;
  bool saw_breach = false;
  bool saw_trigger = false;
  for (const FlightRecord& r : recorder.Snapshot()) {
    if (r.name == "slo.breach" && r.detail == "fleet") saw_breach = true;
    if (r.name == "flight.trigger") saw_trigger = true;
  }
  EXPECT_TRUE(saw_breach);
  EXPECT_TRUE(saw_trigger);
  EXPECT_EQ(recorder.last_trigger(), "slo.breach:fleet");
  SetEnabled(false);
  ResetGlobal();
}

}  // namespace
}  // namespace myrtus::telemetry
