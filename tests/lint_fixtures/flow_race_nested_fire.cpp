// Fixture: parallel-capture-race must fire inside a nested lambda — the
// helper closure still writes shared state captured by reference from the
// enclosing ParallelFor body.
#include <cstddef>
#include <vector>

#include "util/parallel.hpp"

namespace fx {

void NestedLogger(const std::vector<double>& xs) {
  std::vector<double> hits;
  util::ParallelFor(xs.size(), [&](const util::Shard& shard) {
    auto log_hit = [&](double v) {
      hits.push_back(v);  // FIRE: shared vector, no shard indexing
    };
    for (std::size_t i = shard.begin; i < shard.end; ++i) {
      if (xs[i] > 0.5) log_hit(xs[i]);
    }
  });
}

}  // namespace fx
