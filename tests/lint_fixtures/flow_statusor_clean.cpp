// Fixture: statusor-use-before-ok must stay silent — every dereference is
// dominated by a check, across the guard shapes this codebase uses.
#include <string>
#include <utility>

#include "util/status.hpp"

namespace fx {

util::StatusOr<int> Parse(const std::string& text);
void Consume(int v);

int EarlyReturnGuard(const std::string& s) {
  auto v = Parse(s);
  if (!v.ok()) return -1;
  return *v;
}

int IfInitGuard(const std::string& s) {
  if (auto q = Parse(s); q.ok()) return *q;
  return 0;
}

int ShortCircuitAnd(const std::string& s) {
  auto v = Parse(s);
  if (v.ok() && *v > 3) return 1;
  return 0;
}

int ShortCircuitOr(const std::string& s) {
  auto v = Parse(s);
  if (!v.ok() || *v < 0) return -1;
  return *v;
}

int BothBranchesChecked(const std::string& s) {
  auto v = Parse(s);
  if (v.ok()) {
    return *v;
  } else {
    return -1;
  }
}

int MustOkAssertion(const std::string& s) {
  auto v = Parse(s);
  util::MustOk(v);
  return v.value();
}

int MoveAfterCheck(const std::string& s) {
  auto v = Parse(s);
  if (!v.ok()) return -1;
  return std::move(v).value();
}

void LoopGuard(const std::string& s) {
  while (true) {
    auto v = Parse(s);
    if (!v.ok()) break;
    Consume(*v);
  }
}

}  // namespace fx
