// FIXTURE: a compliant header — no pragma-once finding.
#pragma once

namespace fixture {
inline int Guarded() { return 1; }
}  // namespace fixture
