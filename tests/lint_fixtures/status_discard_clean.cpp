// FIXTURE: must produce zero status-discard findings — every discard is
// either annotated, of a non-Status callee, or of a plain variable.
#include "util/status.hpp"

namespace fixture {

myrtus::util::Status Configure() { return myrtus::util::Status::Ok(); }
int PlainInt() { return 7; }

void JustifiedAndIrrelevantDiscards(int unused_param) {
  // LINT: discard(fixture: failure here is indistinguishable from a timeout)
  (void)Configure();
  (void)PlainInt();       // not a Status-returning callee
  (void)unused_param;     // variable discard, not a call
}

}  // namespace fixture
