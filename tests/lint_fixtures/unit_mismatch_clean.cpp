// FIXTURE: zero unit-mismatch findings. The same flows as
// unit_mismatch_fire.cpp, but every unit crossing goes through a named
// conversion helper (util::MsToNs-style names type-check as "produces the
// target unit"), and the multiplicative power-times-duration form is exempt
// by design — multiplication legitimately *forms* new dimensions.
#include <cstdint>

#include "util/units.hpp"

namespace fixture {

struct EnergyEstimate {
  double energy_mj = 0.0;
};

void Sink(std::uint64_t window_ns);
void Sink(std::uint64_t window_ns) { (void)window_ns; }

double AccountEnergy(double sample_mw, double duration_s) {
  EnergyEstimate est;
  est.energy_mj = myrtus::util::MwToMj(sample_mw, duration_s);
  return est.energy_mj;
}

double FormedDimension(double power_mw, double duration_s) {
  return power_mw * duration_s;  // multiplicative: exempt, forms mJ
}

std::uint64_t MixedBudget(std::uint64_t window_ms, std::uint64_t latency_ns) {
  return myrtus::util::MsToNs(window_ms) + latency_ns;
}

bool DeadlineBlown(std::uint64_t deadline_us, std::uint64_t budget_ms) {
  return myrtus::util::UsToMs(deadline_us) < budget_ms;
}

void Schedule(std::uint64_t timeout_ms) {
  Sink(myrtus::util::MsToNs(timeout_ms));
}

std::uint64_t SameUnitArithmetic(std::uint64_t a_ns, std::uint64_t b_ns) {
  return a_ns + b_ns;  // same unit on both sides: fine
}

}  // namespace fixture
