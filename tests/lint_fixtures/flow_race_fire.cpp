// Fixture: parallel-capture-race must fire — writes through by-reference
// captures inside a ParallelFor body that are not shard-indexed.
#include <cstddef>
#include <vector>

#include "util/parallel.hpp"

namespace fx {

void Accumulate(const std::vector<double>& xs) {
  double total = 0.0;
  std::vector<double> out(xs.size());
  util::ParallelFor(xs.size(), [&](const util::Shard& shard) {
    for (std::size_t i = shard.begin; i < shard.end; ++i) {
      total += xs[i];  // FIRE: unindexed accumulation across shards
      out[0] = xs[i];  // FIRE: every shard hammers slot zero
    }
  });
}

void UnsafeAlias(const std::vector<double>& xs) {
  std::vector<std::vector<double>> buckets(4);
  util::ParallelFor(xs.size(), [&](const util::Shard& shard) {
    std::vector<double>& bucket = buckets[0];  // not shard-owned
    for (std::size_t i = shard.begin; i < shard.end; ++i) {
      bucket.push_back(xs[i]);  // FIRE: write through an unsafe alias
    }
  });
}

}  // namespace fx
