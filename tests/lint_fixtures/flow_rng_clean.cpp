// Fixture: rng-substream-discipline must stay silent — parallel bodies use
// the handed-in substream or the 3-arg indexed constructor, and every literal
// (seed, stream) identity is unique.
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace fx {

void HandedInSubstream(std::vector<double>& xs, std::uint64_t seed) {
  util::ParallelForRng(xs.size(), seed, "fx.handed",
                       [&](const util::Shard& shard, util::Rng& rng) {
                         for (std::size_t i = shard.begin; i < shard.end; ++i) {
                           xs[i] += rng.Uniform();
                         }
                       });
}

void IndexedSubstream(std::vector<double>& xs, std::uint64_t seed) {
  util::ParallelFor(xs.size(), [&, seed](const util::Shard& shard) {
    util::Rng rng(seed, "fx.indexed", shard.index);  // 3-arg: sanctioned
    for (std::size_t i = shard.begin; i < shard.end; ++i) {
      xs[i] += rng.Uniform();
    }
  });
}

double SerialAmbient(std::uint64_t seed) {
  util::Rng rng(seed, "fx.serial");  // outside any parallel body: fine
  return rng.Uniform();
}

util::Rng DistinctA() { return util::Rng(42, "fx.a"); }
util::Rng DistinctB() { return util::Rng(42, "fx.b"); }
util::Rng DistinctSeed() { return util::Rng(7, "fx.a"); }

util::Rng VariableSeedA(std::uint64_t seed) { return util::Rng(seed, "fx.v"); }
util::Rng VariableSeedB(std::uint64_t seed) { return util::Rng(seed, "fx.v"); }

}  // namespace fx
