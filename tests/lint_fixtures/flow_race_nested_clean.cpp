// Fixture: parallel-capture-race must stay silent — the nested lambda
// captures the vector by value, so its writes hit a private copy, and the
// shard's own results land in a shard-indexed slot.
#include <cstddef>
#include <vector>

#include "util/parallel.hpp"

namespace fx {

void NestedCopies(const std::vector<double>& xs) {
  std::vector<double> seen;
  std::vector<int> counts(util::ParallelShardCount(xs.size()), 0);
  util::ParallelFor(xs.size(), [&](const util::Shard& shard) {
    auto probe = [seen](double v) mutable {
      seen.push_back(v);  // writes a by-value copy, not the shared vector
      return seen.size();
    };
    int found = 0;  // local
    for (std::size_t i = shard.begin; i < shard.end; ++i) {
      if (probe(xs[i]) > 0) ++found;
    }
    counts[shard.index] = found;
  });
}

}  // namespace fx
