// FIXTURE: every line below must trip the determinism rule when scanned as a
// src/ file outside the allowlisted host-time boundaries.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>
#include <thread>

namespace fixture {

void WallClockReads() {
  auto a = std::chrono::system_clock::now();
  auto b = std::chrono::steady_clock::now();
  auto c = std::chrono::high_resolution_clock::now();
  (void)a; (void)b; (void)c;
  std::time_t t = time(nullptr);
  (void)t;
  std::clock_t k = clock();
  (void)k;
}

void AmbientRandomness() {
  std::random_device rd;
  std::mt19937 gen(rd());
  std::mt19937_64 gen64(1234);
  (void)gen; (void)gen64;
  srand(42);
  int r = std::rand();
  (void)r;
}

void HostConcurrency() {
  std::thread worker([] {});
  worker.detach();
  auto fut = std::async([] { return 1; });
  (void)fut;
}

}  // namespace fixture
