// FIXTURE: every (void) cast below must trip status-discard. The callees are
// wrappers that merely *forward* a Status-returning call — their own return
// type is deduced, so the per-TU regex pass cannot see them; the call-graph
// closure (AugmentStatusRegistry) must propagate status-ness through the
// forwarding chain, including through a lambda and a two-hop wrapper.
#include "util/status.hpp"

namespace fixture {

myrtus::util::Status Commit() { return myrtus::util::Status::Ok(); }

auto ForwardCommit() { return Commit(); }

auto DoubleForward() { return ForwardCommit(); }

void DiscardsThroughWrappers() {
  (void)ForwardCommit();  // FIRE: one hop from Commit
  (void)DoubleForward();  // FIRE: two hops, needs the fixpoint
  const auto retry = [] { return Commit(); };
  (void)retry();  // FIRE: lambda wrapper swallows the Status
}

}  // namespace fixture
