// FIXTURE: a header with no #pragma once (the mention in this comment must
// not count) — trips the pragma-once rule.
#ifndef FIXTURE_PRAGMA_ONCE_FIRE_HPP_
#define FIXTURE_PRAGMA_ONCE_FIRE_HPP_

namespace fixture {
inline int GuardedTheOldWay() { return 1; }
}  // namespace fixture

#endif  // FIXTURE_PRAGMA_ONCE_FIRE_HPP_
