// FIXTURE: recorder-dump-shaped code that stamps dump metadata with the host
// clock. Legitimate only under the src/telemetry/recorder. allowlist prefix
// (the exporter-adjacent dump boundary); anywhere else in src/ every clock
// read below must trip the determinism rule.
#include <chrono>
#include <string>

namespace fixture {

struct DumpMeta {
  long long wall_unix_ms = 0;
  std::string reason;
};

DumpMeta StampDump(const std::string& reason) {
  DumpMeta meta;
  meta.reason = reason;
  const auto now = std::chrono::system_clock::now();
  meta.wall_unix_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                          now.time_since_epoch())
                          .count();
  return meta;
}

double DumpLatencyMs() {
  const auto begin = std::chrono::steady_clock::now();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - begin).count();
}

}  // namespace fixture
