// FIXTURE: the same recorder-dump shape done right — every timestamp is
// simulation-clock nanoseconds handed in by the caller, so the file is clean
// under ANY path with an empty allowlist.
#include <cstdint>
#include <string>

namespace fixture {

struct DumpMeta {
  std::int64_t sim_ns = 0;
  std::string reason;
};

DumpMeta StampDump(const std::string& reason, std::int64_t now_ns) {
  DumpMeta meta;
  meta.reason = reason;
  meta.sim_ns = now_ns;
  return meta;
}

double DumpLatencyMs(std::int64_t begin_ns, std::int64_t end_ns) {
  return static_cast<double>(end_ns - begin_ns) * 1e-6;
}

}  // namespace fixture
