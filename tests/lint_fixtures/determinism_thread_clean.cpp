// FIXTURE: the sanctioned way to go parallel — util::ParallelFor's static
// sharding and per-shard RNG substreams keep results independent of worker
// count and scheduling, so none of this may trip the determinism rule.
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace fixture {

double ShardedSum(const std::vector<double>& xs) {
  return myrtus::util::ParallelReduce<double>(
      xs.size(), 0.0, [&](std::size_t i) { return xs[i]; },
      [](double a, double b) { return a + b; });
}

void SeededFanOut(std::vector<double>& out) {
  myrtus::util::ParallelForRng(
      out.size(), 0xFEEDu, "fixture.fanout",
      [&](const myrtus::util::Shard& shard, myrtus::util::Rng& rng) {
        for (std::size_t i = shard.begin; i < shard.end; ++i) {
          out[i] = rng.NextDouble();
        }
      });
}

}  // namespace fixture
