// FIXTURE: zero status-discard findings. The same forwarding wrappers as
// interproc_status_fire.cpp, but every returned Status is consumed: bound
// and checked, returned onward, or annotated at the discard site.
#include "util/status.hpp"

namespace fixture {

myrtus::util::Status Commit() { return myrtus::util::Status::Ok(); }

auto ForwardCommit() { return Commit(); }

auto DoubleForward() { return ForwardCommit(); }

int ConsumesEverything() {
  const myrtus::util::Status direct = ForwardCommit();
  if (!direct.ok()) return 1;
  const auto retry = [] { return Commit(); };
  const myrtus::util::Status retried = retry();
  if (!retried.ok()) return 2;
  return DoubleForward().ok() ? 0 : 3;
}

myrtus::util::Status ReturnsOnward() { return DoubleForward(); }

}  // namespace fixture
