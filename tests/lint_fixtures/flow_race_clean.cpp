// Fixture: parallel-capture-race must stay silent — every write inside the
// parallel bodies lands in a shard-owned slot, a local, a safe reference
// alias, or an atomic.
#include <atomic>
#include <cstddef>
#include <vector>

#include "util/parallel.hpp"

namespace fx {

void PerItemSlots(const std::vector<double>& xs) {
  std::vector<double> out(xs.size());
  std::vector<double> partial(util::ParallelShardCount(xs.size()), 0.0);
  std::atomic<long> hits{0};
  util::ParallelFor(xs.size(), [&](const util::Shard& shard) {
    double acc = 0.0;  // local accumulator
    for (std::size_t i = shard.begin; i < shard.end; ++i) {
      out[i] = xs[i] * 2.0;  // per-item slot via the shard-range induction var
      acc += xs[i];
      hits.fetch_add(1);  // atomic counter
    }
    partial[shard.index] = acc;  // shard-indexed commit
  });
}

void SafeAlias(const std::vector<double>& xs) {
  std::vector<std::vector<double>> buckets(util::ParallelShardCount(xs.size()));
  util::ParallelFor(xs.size(), [&](const util::Shard& shard) {
    std::vector<double>& bucket = buckets[shard.index];  // shard-owned
    for (std::size_t i = shard.begin; i < shard.end; ++i) {
      bucket.push_back(xs[i]);
    }
  });
}

std::vector<double> MapForm(const std::vector<double>& xs) {
  return util::ParallelMap<double>(xs.size(),
                                   [&](std::size_t i) { return xs[i] + 1.0; });
}

}  // namespace fx
