// FIXTURE: zero unsigned-underflow findings. Each function shows one
// recognized discharge: a dominating >= guard, an early-exit on the negated
// comparison, a std::min clamp (both as the direct subtrahend and through an
// intermediate `take = std::min(...)` assignment), util::SubSat, and a
// guard that survives a loop back-edge because neither side is written.
#include <algorithm>
#include <cstdint>

#include "util/units.hpp"

namespace fixture {

std::uint64_t GuardedBranch(std::uint64_t cap_mb, std::uint64_t used_mb) {
  if (cap_mb >= used_mb) {
    return cap_mb - used_mb;  // dominated by the guard's true edge
  }
  return 0;
}

std::uint64_t EarlyExit(std::uint64_t cap_mb, std::uint64_t used_mb) {
  if (cap_mb < used_mb) return 0;
  return cap_mb - used_mb;  // false edge of a strict < is cap >= used
}

std::uint64_t DirectMinClamp(std::uint64_t total_b, std::uint64_t used_b) {
  return total_b - std::min(total_b, used_b);  // subtrahend clamped in place
}

std::uint64_t MinThroughAssignment(std::uint64_t len_b, std::uint64_t room_b) {
  const std::uint64_t take_b = std::min(len_b, room_b);
  return len_b - take_b;  // take = min(len, ...) implies len >= take
}

std::uint64_t Saturating(std::uint64_t cap_mb, std::uint64_t used_mb) {
  return myrtus::util::SubSat(cap_mb, used_mb);  // no raw subtraction at all
}

std::uint64_t LoopDrain(std::uint64_t len_b, std::uint64_t chunk_b) {
  std::uint64_t drained_b = 0;
  while (len_b > 0) {
    const std::uint64_t take_b = std::min(len_b, chunk_b);
    len_b -= take_b;  // fact regenerated each iteration by the min above
    drained_b += take_b;
  }
  return drained_b;
}

}  // namespace fixture
