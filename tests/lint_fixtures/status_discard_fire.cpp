// FIXTURE: both discard forms below must trip status-discard — the callees
// are declared here to return util::Status / util::StatusOr.
#include "util/status.hpp"

namespace fixture {

myrtus::util::Status Configure() { return myrtus::util::Status::Ok(); }
myrtus::util::StatusOr<int> Measure() { return 42; }

void DiscardsWithoutJustification() {
  (void)Configure();
  static_cast<void>(Measure());
}

}  // namespace fixture
