// Capture-lifetime CLEAN fixture: every construct here is a near-miss of a
// lifetime_fire.cpp case — by-value state, shared owners, drain discharge
// (Run and the Settle fixture idiom), annotation waivers, init-captures of
// members, and the immediate-invocation vetoes. The lifetime family must
// report NOTHING in this file; lint_lifetime_test asserts exactly that.
// (Other families may fire here — the lock is per-family.)
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

namespace liftest_clean {

struct TickC {
  long ns = 0;
};

class MotorC {
 public:
  void ScheduleAt(TickC at, std::function<void()> fn) {
    (void)at;
    jobs_.push_back(std::move(fn));
  }
  void Run() {
    for (auto& fn : jobs_) fn();
    jobs_.clear();
  }

 private:
  std::vector<std::function<void()>> jobs_;
};

// The test-fixture drain idiom: Settle wraps the engine drain.
struct HarnessC {
  MotorC motor;
  void Settle() { motor.Run(); }
};

void CleanValueCapture(MotorC& motor) {
  int n = 7;
  motor.ScheduleAt(TickC{1}, [n] { (void)n; });  // by value: owned copy
}

void CleanSharedOwner(MotorC& motor) {
  auto state = std::make_shared<int>(0);
  motor.ScheduleAt(TickC{2}, [state] { ++*state; });  // shared ownership
}

void CleanDrainedRef(MotorC& motor) {
  int tally = 0;
  motor.ScheduleAt(TickC{3}, [&tally] { ++tally; });
  motor.Run();  // drains before tally dies
}

void CleanSettledRef(HarnessC& fix) {
  int tally = 0;
  fix.motor.ScheduleAt(TickC{4}, [&tally] { ++tally; });
  fix.Settle();  // the fixture-drain idiom discharges too
}

void CleanAnnotatedRef(MotorC& motor, int& durable) {
  // LINT: deferred-capture-ok(durable) -- the caller owns durable for the
  // whole life of the motor; checked at every call site
  motor.ScheduleAt(TickC{5}, [&durable] { ++durable; });
}

void CleanAnnotatedDefault(MotorC& motor, int& durable) {
  // LINT: deferred-capture-ok(default) -- everything captured here outlives
  // the motor by construction
  motor.ScheduleAt(TickC{6}, [&] { ++durable; });
}

// [&alias = member] init-captures denote object-lifetime state, not the
// registering frame — exempt from the ref rule.
class GaugeC {
 public:
  void Arm(MotorC& motor) {
    motor.ScheduleAt(TickC{7}, [&level = level_] { level += 1; });
  }

 private:
  int level_ = 0;
};

// this-capture negatives: a function-scope receiver (not block-scoped), and
// a block-scoped receiver whose events drain inside the block.
class SensorC {
 public:
  void Arm(MotorC& motor) {
    motor.ScheduleAt(TickC{8}, [this] { ++hits_; });
  }

 private:
  int hits_ = 0;
};

void CleanTopLevelReceiver(MotorC& motor) {
  SensorC sensor;
  sensor.Arm(motor);
}

void CleanDrainedReceiver(MotorC& motor) {
  {
    SensorC sensor;
    sensor.Arm(motor);
    motor.Run();
  }
}

// Immediate-invocation vetoes: ParallelFor-style callees run the body before
// returning, Pool::Run joins before returning even though it stores the job
// in a member, and FilterFn-typed parameters run inside the callee.
void ParallelFor(int n, const std::function<void(int)>& body) {
  for (int i = 0; i < n; ++i) body(i);
}

void CleanImmediateCallee(int n) {
  int acc = 0;
  ParallelFor(n, [&acc](int i) { acc += i; });
}

class PoolC {
 public:
  void Run(std::function<void()> job) {
    job_ = std::move(job);
    if (job_) job_();
  }

 private:
  std::function<void()> job_;
};

void CleanPoolRunVeto(PoolC& pool) {
  int acc = 0;
  pool.Run([&acc] { ++acc; });
}

using FilterFn = std::function<bool(int)>;

class ScannerC {
 public:
  void SetFilter(FilterFn keep) { keep_ = std::move(keep); }

 private:
  FilterFn keep_;
};

void CleanImmediateParamType(ScannerC& scanner, int threshold) {
  scanner.SetFilter([&threshold](int v) { return v > threshold; });
}

}  // namespace liftest_clean
