// FIXTURE: scanned as src/sched/layering_clean.cpp — every edge below is in
// sched's transitive dependency closure, and the quoted include in the string
// literal must be ignored by the lexer.
#include "continuum/infrastructure.hpp"
#include "security/policy.hpp"
#include "util/status.hpp"

#include <string>

namespace fixture {

std::string NotAnInclude() {
  return "#include \"dpe/dse.hpp\" inside a string is not an edge";
}

}  // namespace fixture
