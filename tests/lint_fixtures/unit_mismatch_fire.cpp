// FIXTURE: every marked line must trip unit-mismatch. The first case is the
// pre-PR-7 energy-accounting bug reproduced verbatim: a milliwatt power
// sample stored into a millijoule energy field with no duration anywhere in
// sight. The rule infers units from identifier suffixes and fires whenever
// two *known, different* units meet across =, + -, comparison, or a call
// argument without a named conversion helper in between.
#include <cstdint>

namespace fixture {

struct EnergyEstimate {
  double energy_mj = 0.0;
};

void Sink(std::uint64_t window_ns);
void Sink(std::uint64_t window_ns) { (void)window_ns; }

double AccountEnergy(double sample_mw) {
  EnergyEstimate est;
  est.energy_mj = sample_mw;  // FIRE: power (mw) assigned to energy (mj)
  return est.energy_mj;
}

std::uint64_t MixedBudget(std::uint64_t window_ms, std::uint64_t latency_ns) {
  return window_ms + latency_ns;  // FIRE: additive mix of ms and ns
}

bool DeadlineBlown(std::uint64_t deadline_us, std::uint64_t budget_ms) {
  return deadline_us < budget_ms;  // FIRE: comparison across us and ms
}

void Schedule(std::uint64_t timeout_ms) {
  Sink(timeout_ms);  // FIRE: ms argument into a ns parameter
}

}  // namespace fixture
