// FIXTURE: each call below is a banned C string/conversion function and must
// trip hygiene-banned.
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace fixture {

void UnsafeStringHandling(char* dst, const char* src) {
  strcpy(dst, src);
  strcat(dst, src);
  char buf[16];
  sprintf(buf, "%s", src);
  int n = atoi(src);
  double d = atof(src);
  (void)n; (void)d;
}

}  // namespace fixture
