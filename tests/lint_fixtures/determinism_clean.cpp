// FIXTURE: must produce zero determinism findings. Uses the sanctioned
// sources of time and randomness, and mentions every banned token only in
// places the lexer must blank out (comments, strings, raw strings).
//
// Banned-in-comment: std::chrono::system_clock::now(), std::rand(), and
// std::thread must NOT fire here.
#include <cstdint>
#include <string>

namespace fixture {

// The real thing: named-stream deterministic RNG and simulated time.
struct Rng {
  std::uint64_t state = 0x9E3779B97F4A7C15ull;
  std::uint64_t Next() { return state *= 6364136223846793005ull; }
};

std::uint64_t SimNowMicros(std::uint64_t ticks) { return ticks * 10; }

std::string BannedTokensInLiterals() {
  std::string doc = "call std::random_device or time(nullptr) at your peril";
  std::string raw = R"(steady_clock::now() and mt19937 inside a raw string)";
  std::string esc = "escaped quote \" then clock() still inside the literal";
  /* block comment mentioning srand(7) and high_resolution_clock::now() */
  const std::uint64_t separated = 1'000'000;  // digit separator, not a char literal
  return doc + raw + esc + std::to_string(separated);
}

}  // namespace fixture
