// FIXTURE: must produce zero hygiene-banned findings. Uses the bounded
// replacements, and mentions banned names only where the lexer or the
// word-boundary matcher must ignore them.
#include <cstdio>
#include <string>

namespace fixture {

// strcpy in a comment must not fire.
void SafeStringHandling(char* dst, std::size_t cap, const char* src) {
  snprintf(dst, cap, "%s", src);           // bounded, allowed
  std::string note = "sprintf is banned";  // inside a literal, ignored
  long v = std::stol("42");                // checked conversion, allowed
  int my_atoi_result = 0;                  // substring of an identifier, ignored
  (void)note; (void)v; (void)my_atoi_result;
}

}  // namespace fixture
