// FIXTURE: every marked line must trip unsigned-underflow. The first case is
// the PR-7 scheduler ledger bug reproduced verbatim: free memory computed as
// capacity minus allocation, where peering reflection legitimately lets the
// allocation ledger exceed capacity — the unsigned difference wraps to
// "plenty of room". Ternaries are deliberately NOT recognized as guards
// (the project answer is util::SubSat), and a guard on one path does not
// dominate the other.
#include <cstdint>

namespace fixture {

std::uint64_t mem_capacity_mb();
std::uint64_t mem_allocated_mb();

std::uint64_t MemFreeMb() {
  return mem_capacity_mb() - mem_allocated_mb();  // FIRE: ledger can overcommit
}

std::uint64_t TernaryIsNotAGuard(std::uint64_t cap_mb, std::uint64_t used_mb) {
  return cap_mb > used_mb ? cap_mb - used_mb : 0;  // FIRE: use util::SubSat
}

std::uint64_t GuardOnWrongPath(std::uint64_t cap_mb, std::uint64_t used_mb) {
  if (cap_mb >= used_mb) {
    return 0;
  }
  return cap_mb - used_mb;  // FIRE: guarded branch is the *other* one
}

void CompoundWithoutGuard(std::uint64_t spent_mb, std::uint64_t refund_mb) {
  spent_mb -= refund_mb;  // FIRE: nothing relates refund to spent
  (void)spent_mb;
}

}  // namespace fixture
