// Capture-lifetime FIRE fixture for the deferred-capture family
// (tools/lint/lifetime_rules.cpp). Self-contained mini engine mirroring the
// src/sim shapes the rules were built for. Every FIRE-marked line must
// produce exactly one lifetime-family finding, and no other line may fire:
// lint_lifetime_test locks the reported line set to the marker set.
#include <functional>
#include <map>
#include <utility>
#include <vector>

namespace liftest {

struct TickF {
  long ns = 0;
};

// ScheduleAt is a seeded sink (name + arg index); the push_back into the
// '_'-suffixed member also classifies it structurally, so the fixture works
// even if the seed table changes.
class EngineF {
 public:
  void ScheduleAt(TickF at, std::function<void()> fn) {
    (void)at;
    pending_.push_back(std::move(fn));
  }
  void Run() {
    for (auto& fn : pending_) fn();
    pending_.clear();
  }

 private:
  std::vector<std::function<void()>> pending_;
};

// A std::function field at class scope: assignments through it are deferred
// stores (`hooks.on_bound = ...`).
struct HooksF {
  std::function<void()> on_bound;
};

// Forwarders: the fixpoint must make DeferF a sink (one hop from the seeded
// ScheduleAt) and RelayF a sink (two hops).
void DeferF(EngineF& eng, std::function<void()> fn) {
  eng.ScheduleAt(TickF{1}, std::move(fn));
}

void RelayF(EngineF& eng, std::function<void()> fn) {
  DeferF(eng, std::move(fn));
}

// A callback container behind a method: `pending_[token] = fn` makes
// Enqueue's callback parameter a structural sink.
class PipelineF {
 public:
  void Enqueue(int token, std::function<void()> fn) {
    pending_[token] = std::move(fn);
  }

 private:
  std::map<int, std::function<void()>> pending_;
};

// Registers a this-capturing deferred callback: calling Arm on a
// block-scoped receiver is the deferred-this-capture hazard.
class WidgetF {
 public:
  void Arm(EngineF& eng) {
    eng.ScheduleAt(TickF{2}, [this] { ++count_; });
  }

 private:
  int count_ = 0;
};

void FireDefault(EngineF& eng) {
  int count = 0;
  eng.ScheduleAt(TickF{3}, [&] { ++count; });  // FIRE: [&] into deferred sink
}

void FireNamedRef(EngineF& eng) {
  int counter = 0;
  eng.ScheduleAt(TickF{4}, [&counter] { ++counter; });  // FIRE: &local
}

void FireThroughForwarders(EngineF& eng) {
  int depth = 0;
  RelayF(eng, [&depth] { ++depth; });  // FIRE: two-hop forwarder chain
}

void FireFieldStore(HooksF& hooks) {
  bool bound = false;
  hooks.on_bound = [&bound] { bound = true; };  // FIRE: std::function field
}

void FireContainerStore(PipelineF& pipe) {
  bool done = false;
  pipe.Enqueue(7, [&done] { done = true; });  // FIRE: callback container
}

void FirePointerCaptures(EngineF& eng) {
  int slot = 0;
  int* cursor = &slot;
  eng.ScheduleAt(TickF{5}, [cursor] { ++*cursor; });  // FIRE: pointer capture
  eng.ScheduleAt(TickF{6}, [p = &slot] { ++*p; });    // FIRE: init &local
}

void FireNamedLambdaFlow(EngineF& eng) {
  int tally = 0;
  auto cb = [&tally] { ++tally; };  // FIRE: named lambda flows into sink
  eng.ScheduleAt(TickF{7}, std::move(cb));
}

void FireBlockScopedReceiver(EngineF& eng) {
  {
    WidgetF w;
    w.Arm(eng);  // FIRE: this-capture armed on a block-scoped receiver
  }
}

void FireInnerFrame(EngineF& eng) {
  // The outer [&eng] capture is drained below and must NOT fire; the inner
  // one captures a variable of the outer lambda's frame, which dies during
  // the drain — the discharge is refused for it.
  eng.ScheduleAt(TickF{8}, [&eng] {
    int inner = 0;
    eng.ScheduleAt(TickF{9}, [&inner] { ++inner; });  // FIRE: inner frame
  });
  eng.Run();
}

}  // namespace liftest
