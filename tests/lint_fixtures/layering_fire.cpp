// FIXTURE: scanned as src/util/layering_fire.cpp — util is the bottom layer
// and must not include from sched (or any other module above it).
#include "sched/controller.hpp"
#include "util/status.hpp"

namespace fixture {

int UsesUpperLayer() { return 1; }

}  // namespace fixture
