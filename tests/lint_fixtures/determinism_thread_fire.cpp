// FIXTURE: hand-rolled host threading outside util/parallel must trip the
// determinism rule — thread scheduling order is not reproducible, so any
// result it can influence is not either. The sanctioned route is
// util::ParallelFor and friends (see determinism_thread_clean.cpp).
#include <future>
#include <thread>
#include <vector>

namespace fixture {

void RawWorkerFanOut(std::vector<double>& out) {
  std::vector<std::thread> workers;
  for (std::size_t i = 0; i < out.size(); ++i) {
    workers.emplace_back([&out, i] { out[i] = static_cast<double>(i); });
  }
  for (std::thread& w : workers) w.join();
}

void DetachedSideWork() {
  std::thread([] {}).detach();
}

void JthreadAndAsync() {
  std::jthread j([] {});
  auto f = std::async([] { return 1; });
  (void)f.get();
}

}  // namespace fixture
