// Fixture: rng-substream-discipline must fire — ambient Rng construction
// inside a parallel body (shards would draw overlapping sequences), and a
// literal (seed, stream) identity constructed at two sites.
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace fx {

void JitterInParallel(std::vector<double>& xs, std::uint64_t seed) {
  util::ParallelFor(xs.size(), [&, seed](const util::Shard& shard) {
    util::Rng rng(seed, "fx.jitter");  // FIRE: 2-arg ctor inside the body
    for (std::size_t i = shard.begin; i < shard.end; ++i) {
      xs[i] += rng.Uniform();
    }
  });
}

util::Rng MakeNoiseStream() {
  return util::Rng(42, "fx.shared");
}

util::Rng MakeOtherStream() {
  return util::Rng(42, "fx.shared");  // FIRE: duplicate (42, "fx.shared")
}

}  // namespace fx
