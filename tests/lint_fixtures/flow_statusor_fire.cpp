// Fixture: statusor-use-before-ok must fire — dereferences not dominated by
// an ok()/MustOk check on every path. The if/else join case is the canonical
// miss: only one branch checks, the paths meet, the deref runs on both.
#include <string>

#include "util/status.hpp"

namespace fx {

util::StatusOr<int> Parse(const std::string& text);

int PlainUnchecked(const std::string& s) {
  util::StatusOr<int> v = Parse(s);
  return v.value();  // FIRE: never checked
}

int ArrowUnchecked(const std::string& s) {
  auto v = Parse(s);
  return *v + 1;  // FIRE: auto-declared from a StatusOr factory, unchecked
}

int IfElseJoin(const std::string& s, bool strict) {
  auto v = Parse(s);
  int penalty = 0;
  if (strict) {
    if (!v.ok()) return -1;
  } else {
    penalty = 1;  // this branch never checks v
  }
  return *v - penalty;  // FIRE: unchecked on the non-strict path
}

int CheckedThenReassigned(const std::string& s) {
  auto v = Parse(s);
  if (!v.ok()) return -1;
  v = Parse(s + s);  // reassignment invalidates the earlier check
  return *v;         // FIRE
}

}  // namespace fx
