// Drives the real benchdiff binary end to end over the checked-in fixture
// artifacts: self-compare must be silent (exit 0), the seeded regression pair
// must trip the gate (exit 1), thresholds must be tunable, and junk input
// must be a usage error (exit 2) — the same contract CI's smoke step relies
// on.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <sys/wait.h>

namespace {

const std::string kBin = BENCHDIFF_BIN;
const std::string kFixtures = BENCHDIFF_FIXTURES_DIR;

int RunBenchdiff(const std::string& args) {
  const std::string cmd = kBin + " " + args + " > /dev/null 2>&1";
  const int status = std::system(cmd.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(Benchdiff, SelfCompareIsClean) {
  EXPECT_EQ(RunBenchdiff(kFixtures + "/base.json " + kFixtures + "/base.json"),
            0);
}

TEST(Benchdiff, SeededRegressionTripsTheGate) {
  // commit_p95 +16.7% and commit_rate -26%: both past the default 10%.
  EXPECT_EQ(
      RunBenchdiff(kFixtures + "/base.json " + kFixtures + "/regressed.json"),
      1);
}

TEST(Benchdiff, ImprovementsNeverFire) {
  // Reversed direction: the "regressed" artifact as baseline makes the base
  // artifact a strict improvement on every gated metric.
  EXPECT_EQ(
      RunBenchdiff(kFixtures + "/regressed.json " + kFixtures + "/base.json"),
      0);
}

TEST(Benchdiff, ThresholdFlagWidensTheGate) {
  // Both deltas sit under 50%: a loose global threshold accepts them.
  EXPECT_EQ(RunBenchdiff("--threshold=50 " + kFixtures + "/base.json " +
                         kFixtures + "/regressed.json"),
            0);
}

TEST(Benchdiff, PerMetricOverrideTightensOneGate) {
  // Global threshold forgives everything except the p95, which gets its own
  // 5% budget and regresses by 16.7%.
  EXPECT_EQ(RunBenchdiff("--threshold=50 "
                         "--metric=commit_p95_ms_3_replicas=5 " +
                         kFixtures + "/base.json " + kFixtures +
                         "/regressed.json"),
            1);
}

TEST(Benchdiff, UsageAndParseErrorsExitTwo) {
  EXPECT_EQ(RunBenchdiff(""), 2);
  EXPECT_EQ(RunBenchdiff(kFixtures + "/base.json"), 2);
  EXPECT_EQ(RunBenchdiff(kFixtures + "/base.json /nonexistent.json"), 2);
}

}  // namespace
