#include "util/status.hpp"

#include <gtest/gtest.h>

namespace myrtus::util {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("node edge-3");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "node edge-3");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: node edge-3");
}

TEST(Status, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Internal("x"), Status::Internal("x"));
  EXPECT_FALSE(Status::Internal("x") == Status::Internal("y"));
  EXPECT_FALSE(Status::Internal("x") == Status::Aborted("x"));
}

TEST(Status, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kDataLoss); ++c) {
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v = Status::Unavailable("down");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kUnavailable);
}

TEST(StatusOr, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> taken = std::move(v).value();
  EXPECT_EQ(*taken, 7);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseMacros(int x, int* out) {
  MYRTUS_ASSIGN_OR_RETURN(const int h, Half(x));
  *out = h;
  return Status::Ok();
}

TEST(StatusOr, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseMacros(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_EQ(UseMacros(3, &out).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace myrtus::util
