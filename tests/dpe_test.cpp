// SDF dataflow IR (balance equations, fusion, partitioning), KPI estimation,
// DSE Pareto fronts, ADT countermeasure synthesis, and the full DPE pipeline.
#include <gtest/gtest.h>

#include "dpe/adt.hpp"
#include "dpe/dataflow.hpp"
#include "dpe/dse.hpp"
#include "dpe/pipeline.hpp"

namespace myrtus::dpe {
namespace {

DataflowGraph Chain3() {
  DataflowGraph g;
  util::MustOk(g.AddActor({"src", 2'000'000, 1024, false, 0.0}));
  util::MustOk(g.AddActor({"filter", 20'000'000, 4096, true, 0.8}));
  util::MustOk(g.AddActor({"sink", 1'000'000, 512, false, 0.0}));
  util::MustOk(g.AddChannel({"src", "filter", 1, 1, 4096}));
  util::MustOk(g.AddChannel({"filter", "sink", 1, 1, 1024}));
  return g;
}

TEST(Dataflow, RejectsDuplicateActorsAndBadChannels) {
  DataflowGraph g;
  ASSERT_TRUE(g.AddActor({"a", 1, 0, false, 0}).ok());
  EXPECT_FALSE(g.AddActor({"a", 1, 0, false, 0}).ok());
  EXPECT_FALSE(g.AddChannel({"a", "ghost", 1, 1, 1}).ok());
  EXPECT_FALSE(g.AddChannel({"a", "a", 0, 1, 1}).ok());
}

TEST(Dataflow, UniformRatesGiveUnitRepetitions) {
  auto q = Chain3().RepetitionVector();
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(*q, (std::vector<std::uint64_t>{1, 1, 1}));
}

TEST(Dataflow, MultirateRepetitionVector) {
  // src produces 2 per firing; sink consumes 3: q = [3, 2].
  DataflowGraph g;
  util::MustOk(g.AddActor({"src", 1, 0, false, 0}));
  util::MustOk(g.AddActor({"sink", 1, 0, false, 0}));
  util::MustOk(g.AddChannel({"src", "sink", 2, 3, 64}));
  auto q = g.RepetitionVector();
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(*q, (std::vector<std::uint64_t>{3, 2}));
}

TEST(Dataflow, InconsistentRatesDetected) {
  // Triangle with incompatible rates has no valid repetition vector.
  DataflowGraph g;
  util::MustOk(g.AddActor({"a", 1, 0, false, 0}));
  util::MustOk(g.AddActor({"b", 1, 0, false, 0}));
  util::MustOk(g.AddActor({"c", 1, 0, false, 0}));
  util::MustOk(g.AddChannel({"a", "b", 1, 1, 1}));
  util::MustOk(g.AddChannel({"b", "c", 1, 1, 1}));
  util::MustOk(g.AddChannel({"a", "c", 2, 1, 1}));
  EXPECT_FALSE(g.RepetitionVector().ok());
}

TEST(Dataflow, TopologicalOrderAndCycles) {
  DataflowGraph g = Chain3();
  auto topo = g.TopologicalOrder();
  ASSERT_TRUE(topo.ok());
  EXPECT_EQ((*topo)[0], g.ActorIndex("src"));
  EXPECT_TRUE(g.IsAcyclic());

  DataflowGraph cyclic;
  util::MustOk(cyclic.AddActor({"a", 1, 0, false, 0}));
  util::MustOk(cyclic.AddActor({"b", 1, 0, false, 0}));
  util::MustOk(cyclic.AddChannel({"a", "b", 1, 1, 1}));
  util::MustOk(cyclic.AddChannel({"b", "a", 1, 1, 1}));
  EXPECT_FALSE(cyclic.IsAcyclic());
}

TEST(Dataflow, IterationAggregates) {
  DataflowGraph g = Chain3();
  auto cycles = g.IterationCycles();
  ASSERT_TRUE(cycles.ok());
  EXPECT_EQ(*cycles, 23'000'000u);
  auto bytes = g.IterationTrafficBytes();
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, 5120u);
}

TEST(Dataflow, FusionCollapsesLinearChain) {
  auto [fused, fusions] = Chain3().FuseLinearChains();
  EXPECT_EQ(fusions, 2);
  EXPECT_EQ(fused.actors().size(), 1u);
  EXPECT_EQ(fused.channels().size(), 0u);
  EXPECT_EQ(fused.actors()[0].cycles_per_firing, 23'000'000u);
}

TEST(Dataflow, FusionRespectsFanout) {
  DataflowGraph g;
  util::MustOk(g.AddActor({"src", 1, 0, false, 0}));
  util::MustOk(g.AddActor({"a", 1, 0, false, 0}));
  util::MustOk(g.AddActor({"b", 1, 0, false, 0}));
  util::MustOk(g.AddChannel({"src", "a", 1, 1, 1}));
  util::MustOk(g.AddChannel({"src", "b", 1, 1, 1}));
  auto [fused, fusions] = g.FuseLinearChains();
  EXPECT_EQ(fusions, 0) << "fan-out must block fusion";
  EXPECT_EQ(fused.actors().size(), 3u);
}

TEST(Dataflow, PartitionCoversAllActorsAndBalances) {
  util::Rng rng(3);
  DataflowGraph g = RandomPipeline(12, rng);
  const std::vector<int> part = g.Partition(3);
  ASSERT_EQ(part.size(), 12u);
  std::vector<std::uint64_t> load(3, 0);
  for (std::size_t i = 0; i < part.size(); ++i) {
    ASSERT_GE(part[i], 0);
    ASSERT_LT(part[i], 3);
    load[static_cast<std::size_t>(part[i])] += g.actors()[i].cycles_per_firing;
  }
  for (const std::uint64_t l : load) EXPECT_GT(l, 0u);
  EXPECT_GT(g.CutBytes(part), 0u);
  // Single partition has zero cut.
  EXPECT_EQ(g.CutBytes(g.Partition(1)), 0u);
}

TEST(Kpi, FpgaMappingWinsForAccelerableKernel) {
  DataflowGraph g = Chain3();
  KpiEstimator est(g, HmpsocTargets());
  // All on big core.
  Configuration cpu_only{{0, 0, 0}, {0, 0, 0}};
  // Kernel on FPGA (device 2), rest on big.
  Configuration with_fpga{{0, 2, 0}, {0, 0, 0}};
  auto a = est.Estimate(cpu_only);
  auto b = est.Estimate(with_fpga);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_LT(b->latency_s, a->latency_s);
  EXPECT_TRUE(b->feasible);
}

TEST(Kpi, NonAccelerableOnFpgaIsInfeasible) {
  DataflowGraph g = Chain3();
  KpiEstimator est(g, HmpsocTargets());
  Configuration bad{{2, 2, 2}, {0, 0, 0}};
  auto kpi = est.Estimate(bad);
  ASSERT_TRUE(kpi.ok());
  EXPECT_FALSE(kpi->feasible);
}

TEST(Kpi, ValidatesShapes) {
  DataflowGraph g = Chain3();
  KpiEstimator est(g, HmpsocTargets());
  EXPECT_FALSE(est.Estimate(Configuration{{0}, {0, 0, 0}}).ok());
  EXPECT_FALSE(est.Estimate(Configuration{{0, 0, 0}, {0}}).ok());
  EXPECT_FALSE(est.Estimate(Configuration{{0, 0, 9}, {0, 0, 0}}).ok());
  EXPECT_FALSE(est.Estimate(Configuration{{0, 0, 0}, {0, 0, 9}}).ok());
}

TEST(Dse, ParetoFrontIsNonDominatedAndSorted) {
  DataflowGraph g = Chain3();
  KpiEstimator est(g, HmpsocTargets());
  auto result = ExploreExhaustive(est);
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result->front.size(), 2u) << "expect a latency/energy trade-off";
  for (std::size_t i = 1; i < result->front.size(); ++i) {
    EXPECT_GT(result->front[i].kpi.latency_s, result->front[i - 1].kpi.latency_s);
    EXPECT_LT(result->front[i].kpi.energy_mj, result->front[i - 1].kpi.energy_mj);
  }
}

TEST(Dse, GeneticApproachesExhaustiveFront) {
  DataflowGraph g = Chain3();
  KpiEstimator est(g, HmpsocTargets());
  auto exact = ExploreExhaustive(est);
  ASSERT_TRUE(exact.ok());
  util::Rng rng(9);
  const DseResult ga = ExploreGenetic(est, rng, 40, 30);
  ASSERT_FALSE(ga.front.empty());
  // GA's best latency within 10% of the exhaustive best.
  EXPECT_LE(ga.front.front().kpi.latency_s,
            exact->front.front().kpi.latency_s * 1.1);
}

TEST(Dse, ExhaustiveRefusesHugeSpaces) {
  util::Rng rng(10);
  DataflowGraph g = RandomPipeline(30, rng);
  KpiEstimator est(g, HmpsocTargets());
  EXPECT_FALSE(ExploreExhaustive(est, 1000).ok());
}

std::unique_ptr<AdtNode> SampleThreatModel() {
  // Root OR: steal data via network sniffing AND weak crypto, or via
  // physical access.
  std::vector<std::unique_ptr<AdtNode>> and_children;
  and_children.push_back(AdtNode::Leaf("sniff_traffic", 0.8));
  and_children.push_back(AdtNode::Leaf("break_crypto", 0.5));
  auto network_path = AdtNode::And("network_attack", std::move(and_children));
  network_path->AddDefence(
      {"upgrade_tls", 1.0, 0.2, "security-level:high"});

  auto physical = AdtNode::Leaf("physical_access", 0.1);
  physical->AddDefence({"tamper_seal", 0.5, 0.5, "enable:secure-boot"});

  std::vector<std::unique_ptr<AdtNode>> or_children;
  or_children.push_back(std::move(network_path));
  or_children.push_back(std::move(physical));
  return AdtNode::Or("steal_data", std::move(or_children));
}

TEST(Adt, ProbabilityAlgebra) {
  auto root = SampleThreatModel();
  // P(and) = 0.8*0.5 = 0.4; P(or) = 1 - (1-0.4)(1-0.1) = 0.46.
  EXPECT_NEAR(root->AttackProbability({}), 0.46, 1e-9);
  // With the TLS defence: and-branch 0.4*0.2=0.08 -> 1-(0.92)(0.9)=0.172.
  EXPECT_NEAR(root->AttackProbability({"upgrade_tls"}), 0.172, 1e-9);
}

TEST(Adt, SynthesisPicksBestDefencesUnderBudget) {
  auto root = SampleThreatModel();
  const CountermeasurePlan plan = SynthesizeCountermeasures(*root, 2.0);
  EXPECT_EQ(plan.selected.size(), 2u);
  EXPECT_LE(plan.total_cost, 2.0);
  EXPECT_LT(plan.residual_probability, 0.46);
  // The high-leverage TLS upgrade must be selected.
  EXPECT_NE(std::find(plan.selected.begin(), plan.selected.end(), "upgrade_tls"),
            plan.selected.end());
}

TEST(Adt, ZeroBudgetSelectsNothing) {
  auto root = SampleThreatModel();
  const CountermeasurePlan plan = SynthesizeCountermeasures(*root, 0.0);
  EXPECT_TRUE(plan.selected.empty());
  EXPECT_NEAR(plan.residual_probability, 0.46, 1e-9);
}

TEST(Pipeline, EndToEndProducesDeployableCsar) {
  DpeInput input;
  input.app_name = "telerehab";
  input.graph = Chain3();
  input.deadline_ms = 500.0;
  input.security_level = "low";
  auto threat = SampleThreatModel();
  input.threat_model = threat.get();

  DpePipeline pipeline(77);
  auto out = pipeline.Run(input);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_GT(out->fusions_applied, 0);
  EXPECT_FALSE(out->pareto_front.empty());
  EXPECT_GE(out->chosen_point, 0);
  EXPECT_TRUE(out->deadline_met);
  // Threat analysis raised the floor from low to high.
  EXPECT_EQ(out->effective_security_level, "high");

  // The emitted package round-trips into a valid template with metadata.
  auto tpl = out->package.EntryTemplate();
  ASSERT_TRUE(tpl.ok()) << tpl.status();
  tosca::ValidationProcessor validator;
  EXPECT_TRUE(validator.Check(*tpl).ok()) << validator.Check(*tpl);
  EXPECT_TRUE(tpl->metadata.has("operating_point_table"));
  EXPECT_TRUE(out->package.HasFile("security/countermeasures.json"));

  auto pods = tosca::LowerToPods(*tpl);
  ASSERT_TRUE(pods.ok()) << pods.status();
  for (const auto& pod : *pods) {
    EXPECT_EQ(pod.min_security, security::SecurityLevel::kHigh);
  }
}

TEST(Pipeline, TightDeadlineFallsBackToFastestPoint) {
  DpeInput input;
  input.app_name = "impossible";
  input.graph = Chain3();
  input.deadline_ms = 1e-6;  // unmeetable
  DpePipeline pipeline(78);
  auto out = pipeline.Run(input);
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE(out->deadline_met);
  EXPECT_EQ(out->chosen_point, 0) << "fastest Pareto point is the fallback";
}

TEST(Pipeline, RejectsCyclicGraphs) {
  DpeInput input;
  input.app_name = "cyclic";
  util::MustOk(input.graph.AddActor({"a", 1, 0, false, 0}));
  util::MustOk(input.graph.AddActor({"b", 1, 0, false, 0}));
  util::MustOk(input.graph.AddChannel({"a", "b", 1, 1, 1}));
  util::MustOk(input.graph.AddChannel({"b", "a", 1, 1, 1}));
  DpePipeline pipeline(79);
  EXPECT_FALSE(pipeline.Run(input).ok());
}

}  // namespace
}  // namespace myrtus::dpe
