// Exercises the capture-lifetime family (tools/lint/lifetime_rules.hpp): the
// deferred-sink registry (annotation seeds, structural member/container
// stores, the cross-TU fixpoint closure over the call graph), the three
// diagnostics over their marker-locked fire/clean fixtures, drain discharge
// (Run/RunUntil/Step and the Settle fixture idiom) with the inner-frame
// refusal, `deferred-capture-ok` waivers, SARIF severity tiers, the
// --timings breakdown, and the --changed-only report filter.
//
// Fixture "fire" files carry a `// FIRE` marker on every line that must
// produce a lifetime-family finding; the tests assert the reported line set
// equals the marked line set, so fixture and rule can never drift apart.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "callgraph.hpp"
#include "lifetime_rules.hpp"
#include "lint.hpp"
#include "rules.hpp"
#include "util/json.hpp"

namespace myrtus::lint {
namespace {

const char* const kLifetimeRules[] = {
    "deferred-ref-capture", "deferred-this-capture", "deferred-pointer-capture"};

std::string ReadFixture(const std::string& name) {
  const std::string path = std::string(LINT_FIXTURES_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// 1-based lines of `source` carrying a `// FIRE` marker.
std::set<int> MarkedLines(const std::string& source) {
  std::set<int> lines;
  std::istringstream in(source);
  std::string line;
  int n = 0;
  while (std::getline(in, line)) {
    ++n;
    if (line.find("// FIRE") != std::string::npos) lines.insert(n);
  }
  return lines;
}

bool IsLifetimeRule(const std::string& rule) {
  return std::any_of(std::begin(kLifetimeRules), std::end(kLifetimeRules),
                     [&](const char* r) { return rule == r; });
}

std::set<int> LifetimeLines(const std::vector<Finding>& findings) {
  std::set<int> lines;
  for (const Finding& f : findings) {
    if (IsLifetimeRule(f.rule)) lines.insert(f.line);
  }
  return lines;
}

std::size_t CountRule(const std::vector<Finding>& findings,
                      const std::string& rule) {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [&rule](const Finding& f) { return f.rule == rule; }));
}

struct Built {
  std::vector<FileContext> files;
  std::vector<FileAst> asts;
  CallGraph graph;
  DeferredSinkTable table;
};

Built BuildFrom(const std::vector<std::pair<std::string, std::string>>& srcs) {
  Built b;
  for (const auto& [path, text] : srcs) {
    b.files.push_back(MakeFileContext(path, text));
  }
  for (const FileContext& f : b.files) b.asts.push_back(BuildFileAst(f));
  b.graph = BuildCallGraph(b.files, b.asts);
  b.table = BuildDeferredSinkTable(b.files, b.asts, b.graph);
  return b;
}

Built BuildFixture(const std::string& name, const std::string& as_path) {
  return BuildFrom({{as_path, ReadFixture(name)}});
}

std::vector<Finding> Lifetime(const Built& b) {
  return CheckDeferredCaptureLifetime(b.files, b.asts, b.graph, b.table);
}

// --- deferred-sink registry --------------------------------------------------

TEST(DeferredSinkTable, SeedsCoverTheAnnotatedProjectSinks) {
  const Built b = BuildFrom({{"src/sim/empty.cpp", "int x = 0;\n"}});
  EXPECT_TRUE(b.table.IsSink("ScheduleAt", 1));
  EXPECT_TRUE(b.table.IsSink("SchedulePeriodic", 1));
  EXPECT_TRUE(b.table.IsSink("Subscribe", 2));
  EXPECT_TRUE(b.table.IsSink("Watch", 1));
  EXPECT_TRUE(b.table.IsSink("Call", 4));
  EXPECT_TRUE(b.table.IsSink("RegisterTarget", 1));
  EXPECT_TRUE(b.table.IsSink("RegisterTarget", 2));
  EXPECT_TRUE(b.table.IsSink("set_span_sink", 0));
  EXPECT_FALSE(b.table.IsSink("ScheduleAt", 0));
  EXPECT_FALSE(b.table.IsSink("ParallelFor", 1));
}

TEST(DeferredSinkTable, StructuralStoresClassifyCallbackParameters) {
  const Built b = BuildFixture("lifetime_fire.cpp", "src/sim/lf.cpp");
  // `pending_[token] = std::move(fn)` inside Enqueue marks its callback
  // parameter deferred without any seed entry.
  EXPECT_TRUE(b.table.IsSink("Enqueue", 1));
  EXPECT_FALSE(b.table.IsSink("Enqueue", 0));  // the int token is not one
}

TEST(DeferredSinkTable, ForwarderFixpointClosesOverTheCallGraph) {
  const Built b = BuildFixture("lifetime_fire.cpp", "src/sim/lf.cpp");
  EXPECT_TRUE(b.table.IsSink("DeferF", 1));  // one hop from ScheduleAt
  EXPECT_TRUE(b.table.IsSink("RelayF", 1));  // two hops
  EXPECT_FALSE(b.table.IsSink("DeferF", 0)); // the engine ref is not a sink
}

TEST(DeferredSinkTable, CollectsFunctionFieldsAndCallbackAliases) {
  const Built fire = BuildFixture("lifetime_fire.cpp", "src/sim/lf.cpp");
  EXPECT_EQ(fire.table.function_fields.count("on_bound"), 1u);
  const Built clean = BuildFixture("lifetime_clean.cpp", "src/sim/lc.cpp");
  EXPECT_EQ(clean.table.callback_aliases.count("FilterFn"), 1u);
}

TEST(DeferredSinkTable, ImmediateVetoesNeverBecomeSinks) {
  const Built b = BuildFixture("lifetime_clean.cpp", "src/sim/lc.cpp");
  // Pool::Run stores its job in a member yet joins before returning, and
  // ParallelFor invokes the body inline: both are vetoed by callee name.
  EXPECT_FALSE(b.table.IsSink("Run", 0));
  EXPECT_FALSE(b.table.IsSink("ParallelFor", 1));
  // FilterFn-typed parameters run inside the callee: vetoed by param type
  // even though SetFilter stores into a std::function field.
  EXPECT_FALSE(b.table.IsSink("SetFilter", 0));
}

// --- fixtures: marker-locked line sets ---------------------------------------

TEST(LifetimeFixtures, FireLineSetMatchesMarkersExactly) {
  const std::string source = ReadFixture("lifetime_fire.cpp");
  const Built b = BuildFrom({{"src/sim/lifetime_fire.cpp", source}});
  EXPECT_EQ(LifetimeLines(Lifetime(b)), MarkedLines(source));
}

TEST(LifetimeFixtures, FireSeveritiesSplitAcrossTheThreeRules) {
  const Built b = BuildFixture("lifetime_fire.cpp", "src/sim/lf.cpp");
  const std::vector<Finding> findings = Lifetime(b);
  EXPECT_EQ(CountRule(findings, "deferred-ref-capture"), 7u);
  EXPECT_EQ(CountRule(findings, "deferred-pointer-capture"), 2u);
  EXPECT_EQ(CountRule(findings, "deferred-this-capture"), 1u);
}

TEST(LifetimeFixtures, CleanFixtureProducesNoLifetimeFindings) {
  const std::string source = ReadFixture("lifetime_clean.cpp");
  const Built b = BuildFrom({{"src/sim/lifetime_clean.cpp", source}});
  const std::vector<Finding> findings = Lifetime(b);
  EXPECT_TRUE(findings.empty())
      << findings.size() << " unexpected finding(s), first: "
      << (findings.empty() ? "" : findings[0].message);
}

// --- cross-TU closure (the acceptance-criterion shape) -----------------------

TEST(LifetimeCrossTu, TwoHopForwarderChainAcrossFilesFlagsTheCaller) {
  const Built b = BuildFrom({
      {"src/sim/eng_x.cpp",
       "struct EngX { void ScheduleAt(long at, std::function<void()> fn); };\n"
       "void DeferA(EngX& eng, std::function<void()> fn) {\n"
       "  eng.ScheduleAt(1, std::move(fn));\n"
       "}\n"},
      {"src/kb/relay_b.cpp",
       "struct EngX;\n"
       "void DeferA(EngX& eng, std::function<void()> fn);\n"
       "void RelayB(EngX& eng, std::function<void()> fn) {\n"
       "  DeferA(eng, std::move(fn));\n"
       "}\n"},
      {"src/mirto/use_c.cpp",
       "struct EngX;\n"
       "void RelayB(EngX& eng, std::function<void()> fn);\n"
       "void UseC(EngX& eng) {\n"
       "  int hits = 0;\n"
       "  RelayB(eng, [&hits] { ++hits; });\n"
       "}\n"},
  });
  EXPECT_TRUE(b.table.IsSink("DeferA", 1));
  EXPECT_TRUE(b.table.IsSink("RelayB", 1));
  const std::vector<Finding> findings = Lifetime(b);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "deferred-ref-capture");
  EXPECT_EQ(findings[0].file, "src/mirto/use_c.cpp");
  EXPECT_EQ(findings[0].line, 5);
  EXPECT_NE(findings[0].message.find("'&hits'"), std::string::npos);
}

// --- drain discharge ---------------------------------------------------------

TEST(LifetimeDischarge, DrainAfterRegistrationDischargesRunAndSettle) {
  const Built b = BuildFrom({{"src/sim/drain.cpp",
                              "struct Eng {\n"
                              "  void ScheduleAt(long at, std::function<void()> fn);\n"
                              "};\n"
                              "void NotDrained(Eng& eng) {\n"
                              "  int n = 0;\n"
                              "  eng.ScheduleAt(1, [&n] { ++n; });\n"
                              "}\n"
                              "void DrainedByRun(Eng& eng) {\n"
                              "  int n = 0;\n"
                              "  eng.ScheduleAt(1, [&n] { ++n; });\n"
                              "  eng.Run();\n"
                              "}\n"
                              "void DrainedBySettle(Eng& fix) {\n"
                              "  int n = 0;\n"
                              "  fix.ScheduleAt(1, [&n] { ++n; });\n"
                              "  fix.Settle();\n"
                              "}\n"}});
  const std::vector<Finding> findings = Lifetime(b);
  ASSERT_EQ(findings.size(), 1u) << "only the undrained registration fires";
  EXPECT_EQ(findings[0].line, 6);
}

TEST(LifetimeDischarge, RefusedWhenTheCaptureDiesWithAnInnerFrame) {
  const Built b = BuildFrom({{"src/sim/inner.cpp",
                              "struct Eng {\n"
                              "  void ScheduleAt(long at, std::function<void()> fn);\n"
                              "};\n"
                              "void Nested(Eng& eng) {\n"
                              "  eng.ScheduleAt(1, [&eng] {\n"
                              "    int inner = 0;\n"
                              "    eng.ScheduleAt(2, [&inner] { ++inner; });\n"
                              "  });\n"
                              "  eng.Run();\n"
                              "}\n"}});
  // The drain protects the outer frame's captures, but `inner` belongs to
  // the outer *lambda's* frame, which dies during the drain itself.
  const std::vector<Finding> findings = Lifetime(b);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 7);
  EXPECT_NE(findings[0].message.find("'&inner'"), std::string::npos);
}

// --- waivers -----------------------------------------------------------------

TEST(LifetimeWaivers, AnnotationWaivesOnlyTheNamedCapture) {
  const Built b = BuildFrom({{"src/sim/waive.cpp",
                              "struct Eng {\n"
                              "  void ScheduleAt(long at, std::function<void()> fn);\n"
                              "};\n"
                              "void Waived(Eng& eng) {\n"
                              "  int a = 0;\n"
                              "  int b = 0;\n"
                              "  // LINT: deferred-capture-ok(a) -- a outlives the engine\n"
                              "  eng.ScheduleAt(1, [&a, &b] { a += b; });\n"
                              "}\n"}});
  const std::vector<Finding> findings = Lifetime(b);
  ASSERT_EQ(findings.size(), 1u) << "the waiver must not leak onto '&b'";
  EXPECT_NE(findings[0].message.find("'&b'"), std::string::npos);
}

// --- this-capture scope discrimination ---------------------------------------

TEST(LifetimeThisCapture, OnlyUndrainedBlockScopedReceiversFire) {
  const Built b = BuildFrom({{"src/sim/recv.cpp",
                              "struct Eng {\n"
                              "  void ScheduleAt(long at, std::function<void()> fn);\n"
                              "};\n"
                              "class Gadget {\n"
                              " public:\n"
                              "  void Arm(Eng& eng) {\n"
                              "    eng.ScheduleAt(1, [this] { ++n_; });\n"
                              "  }\n"
                              " private:\n"
                              "  int n_ = 0;\n"
                              "};\n"
                              "void BlockScoped(Eng& eng) {\n"
                              "  {\n"
                              "    Gadget g;\n"
                              "    g.Arm(eng);\n"
                              "  }\n"
                              "}\n"
                              "void FunctionScoped(Eng& eng) {\n"
                              "  Gadget g;\n"
                              "  g.Arm(eng);\n"
                              "}\n"
                              "void BlockScopedDrained(Eng& eng) {\n"
                              "  {\n"
                              "    Gadget g;\n"
                              "    g.Arm(eng);\n"
                              "    eng.Run();\n"
                              "  }\n"
                              "}\n"}});
  const std::vector<Finding> findings = Lifetime(b);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "deferred-this-capture");
  EXPECT_EQ(findings[0].line, 15);
}

// --- SARIF metadata ----------------------------------------------------------

TEST(LifetimeSarif, RuleTableCarriesTheFamilyAndPointerTierIsWarning) {
  LintResult result;
  Finding pointer;
  pointer.file = "src/sim/x.cpp";
  pointer.line = 3;
  pointer.col = 7;
  pointer.rule = "deferred-pointer-capture";
  pointer.message = "stack address smuggled by value";
  Finding ref = pointer;
  ref.rule = "deferred-ref-capture";
  ref.message = "by-ref capture into deferred sink";
  result.findings = {pointer, ref};

  const auto parsed = util::Json::Parse(SarifReport(result));
  ASSERT_TRUE(parsed.ok());
  const util::Json& run = parsed->at("runs").items()[0];
  std::set<std::string> ids;
  for (const util::Json& rule : run.at("tool").at("driver").at("rules").items()) {
    ids.insert(rule.at("id").as_string());
  }
  for (const char* rule : kLifetimeRules) {
    EXPECT_EQ(ids.count(rule), 1u) << rule << " missing from SARIF metadata";
  }
  ASSERT_EQ(run.at("results").items().size(), 2u);
  EXPECT_EQ(run.at("results").items()[0].at("level").as_string(), "warning");
  EXPECT_EQ(run.at("results").items()[1].at("level").as_string(), "error");
}

// --- --timings ---------------------------------------------------------------

TEST(LifetimeTimings, BreakdownCoversEveryFamilyIncludingThisOne) {
  std::vector<FileContext> files;
  files.push_back(MakeFileContext("src/sim/lf.cpp",
                                  ReadFixture("lifetime_fire.cpp")));
  std::vector<FamilyTiming> timings;
  (void)RunRules(files, {}, &timings);
  std::set<std::string> families;
  for (const FamilyTiming& t : timings) {
    EXPECT_GE(t.ms, 0.0) << t.family;
    families.insert(t.family);
  }
  EXPECT_EQ(families.count("front-end"), 1u);
  EXPECT_EQ(families.count("lexical"), 1u);
  EXPECT_EQ(families.count("deferred-capture"), 1u);
  ASSERT_FALSE(timings.empty());
  EXPECT_EQ(timings.front().family, "front-end");
}

TEST(LifetimeTimings, NullTimingsPointerCollectsNothing) {
  std::vector<FileContext> files;
  files.push_back(MakeFileContext("src/sim/tiny.cpp", "int x = 0;\n"));
  // The default-arg path must stay valid for every existing caller.
  EXPECT_TRUE(RunRules(files, {}).empty());
}

// --- --changed-only report filter --------------------------------------------

std::vector<std::pair<std::string, std::string>> CrossTuTrio() {
  return {
      {"src/sim/eng_x.cpp",
       "struct EngX { void ScheduleAt(long at, std::function<void()> fn); };\n"
       "void DeferA(EngX& eng, std::function<void()> fn) {\n"
       "  eng.ScheduleAt(1, std::move(fn));\n"
       "}\n"},
      {"src/kb/relay_b.cpp",
       "struct EngX;\n"
       "void DeferA(EngX& eng, std::function<void()> fn);\n"
       "void RelayB(EngX& eng, std::function<void()> fn) {\n"
       "  DeferA(eng, std::move(fn));\n"
       "}\n"},
      {"src/mirto/use_c.cpp",
       "struct EngX;\n"
       "void RelayB(EngX& eng, std::function<void()> fn);\n"
       "void UseC(EngX& eng) {\n"
       "  int hits = 0;\n"
       "  RelayB(eng, [&hits] { ++hits; });\n"
       "}\n"},
  };
}

TEST(ChangedOnly, ReportSubsetMatchesTheFullRunByConstruction) {
  std::vector<FileContext> files;
  for (const auto& [path, text] : CrossTuTrio()) {
    files.push_back(MakeFileContext(path, text));
  }
  const std::vector<Finding> full = RunRules(files, {});
  std::vector<Finding> full_on_c;
  for (const Finding& f : full) {
    if (f.file == "src/mirto/use_c.cpp") full_on_c.push_back(f);
  }
  const std::set<std::string> only_c = {"src/mirto/use_c.cpp"};
  const std::vector<Finding> restricted = RunRules(files, {}, nullptr, &only_c);
  ASSERT_EQ(restricted.size(), full_on_c.size());
  for (std::size_t i = 0; i < restricted.size(); ++i) {
    EXPECT_EQ(restricted[i].file, full_on_c[i].file);
    EXPECT_EQ(restricted[i].line, full_on_c[i].line);
    EXPECT_EQ(restricted[i].rule, full_on_c[i].rule);
    EXPECT_EQ(restricted[i].message, full_on_c[i].message);
  }
  ASSERT_FALSE(restricted.empty())
      << "the cross-TU finding must survive the filter: its sink chain lives "
         "in files OUTSIDE the reported set, proving the analysis context "
         "still spans the whole scanned set";
}

TEST(ChangedOnly, UnchangedFilesReportNothingButStillFeedTheContext) {
  std::vector<FileContext> files;
  for (const auto& [path, text] : CrossTuTrio()) {
    files.push_back(MakeFileContext(path, text));
  }
  // relay_b.cpp itself is finding-free; restricting to it reports nothing.
  const std::set<std::string> only_b = {"src/kb/relay_b.cpp"};
  EXPECT_TRUE(RunRules(files, {}, nullptr, &only_b).empty());
  // An empty report set reports nothing at all.
  const std::set<std::string> none;
  EXPECT_TRUE(RunRules(files, {}, nullptr, &none).empty());
}

}  // namespace
}  // namespace myrtus::lint
