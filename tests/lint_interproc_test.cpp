// Exercises myrtus_lint's interprocedural layer: the cross-TU symbol table
// and call graph (overloads, out-of-line methods, lambdas, recursion), the
// name-level type facts, the status-registry closure, the unit-mismatch and
// unsigned-underflow families over their fire/clean fixtures, glob
// suppression patterns, and the SARIF 2.1.0 rendering.
//
// Fixture "fire" files carry a `// FIRE:` marker on every line that must
// produce a finding; the tests assert the reported line set equals the
// marked line set, so fixture and rule can never drift apart silently.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "callgraph.hpp"
#include "lint.hpp"
#include "rules.hpp"
#include "util/json.hpp"

namespace myrtus::lint {
namespace {

std::string ReadFixture(const std::string& name) {
  const std::string path = std::string(LINT_FIXTURES_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::vector<Finding> LintFixture(const std::string& name,
                                 const std::string& as_path) {
  std::vector<FileContext> files;
  files.push_back(MakeFileContext(as_path, ReadFixture(name)));
  return RunRules(files, {});
}

/// 1-based lines of `source` carrying a `// FIRE` marker.
std::set<int> MarkedLines(const std::string& source) {
  std::set<int> lines;
  std::istringstream in(source);
  std::string line;
  int n = 0;
  while (std::getline(in, line)) {
    ++n;
    if (line.find("// FIRE") != std::string::npos) lines.insert(n);
  }
  return lines;
}

std::set<int> RuleLines(const std::vector<Finding>& findings,
                        const std::string& rule) {
  std::set<int> lines;
  for (const Finding& f : findings) {
    if (f.rule == rule) lines.insert(f.line);
  }
  return lines;
}

std::size_t CountRule(const std::vector<Finding>& findings,
                      const std::string& rule) {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [&rule](const Finding& f) { return f.rule == rule; }));
}

/// Builds the call graph over synthetic (path, source) pairs.
struct BuiltGraph {
  std::vector<FileContext> files;
  std::vector<FileAst> asts;
  CallGraph graph;
};

BuiltGraph BuildGraphFrom(
    const std::vector<std::pair<std::string, std::string>>& sources) {
  BuiltGraph b;
  for (const auto& [path, text] : sources) {
    b.files.push_back(MakeFileContext(path, text));
  }
  for (const FileContext& f : b.files) b.asts.push_back(BuildFileAst(f));
  b.graph = BuildCallGraph(b.files, b.asts);
  return b;
}

int SymbolNamed(const CallGraph& g, const std::string& name) {
  const auto& set = g.Resolve(name);
  EXPECT_EQ(set.size(), 1u) << "expected exactly one symbol '" << name << "'";
  return set.empty() ? -1 : set[0];
}

// --- Call graph --------------------------------------------------------------

TEST(CallGraph, OverloadedFreeFunctionsShareTheName) {
  const BuiltGraph b = BuildGraphFrom({{"src/sim/overload.cpp",
                                        "int Scale(int x) { return x * 2; }\n"
                                        "double Scale(double x, double k) "
                                        "{ return x * k; }\n"}});
  const auto& set = b.graph.Resolve("Scale");
  ASSERT_EQ(set.size(), 2u);  // the whole overload set, by design
  EXPECT_EQ(b.graph.symbols[static_cast<std::size_t>(set[0])].params.size(),
            1u);
  EXPECT_EQ(b.graph.symbols[static_cast<std::size_t>(set[1])].params.size(),
            2u);
}

TEST(CallGraph, OutOfLineMethodRecordsQualifiedName) {
  const BuiltGraph b = BuildGraphFrom(
      {{"src/kb/widget.cpp",
        "void Widget::Grow(std::size_t extra_b) { reserve(extra_b); }\n"}});
  const int idx = SymbolNamed(b.graph, "Grow");
  ASSERT_GE(idx, 0);
  const Symbol& sym = b.graph.symbols[static_cast<std::size_t>(idx)];
  EXPECT_EQ(sym.name, "Grow");
  EXPECT_EQ(sym.qualified, "Widget::Grow");
  ASSERT_EQ(sym.params.size(), 1u);
  EXPECT_EQ(sym.params[0].name, "extra_b");
}

TEST(CallGraph, LambdaInNamedVariableBecomesASymbol) {
  const BuiltGraph b = BuildGraphFrom(
      {{"src/sim/lam.cpp",
        "void Run() {\n"
        "  const auto drain = [](int queue) { return queue; };\n"
        "  drain(3);\n"
        "}\n"}});
  const int idx = SymbolNamed(b.graph, "drain");
  ASSERT_GE(idx, 0);
  EXPECT_TRUE(b.graph.symbols[static_cast<std::size_t>(idx)].is_lambda);
  // The call through the variable resolves like any function call.
  const int run = SymbolNamed(b.graph, "Run");
  const auto& callees = b.graph.callees[static_cast<std::size_t>(run)];
  EXPECT_TRUE(std::find(callees.begin(), callees.end(), idx) != callees.end());
}

TEST(CallGraph, RecursionIsASelfEdge) {
  const BuiltGraph b = BuildGraphFrom(
      {{"src/sim/fib.cpp",
        "int Fib(int n) { return n < 2 ? n : Fib(n - 1) + Fib(n - 2); }\n"}});
  const int fib = SymbolNamed(b.graph, "Fib");
  const auto& callees = b.graph.callees[static_cast<std::size_t>(fib)];
  EXPECT_TRUE(std::find(callees.begin(), callees.end(), fib) != callees.end());
}

TEST(CallGraph, MutualRecursionFormsACycle) {
  const BuiltGraph b = BuildGraphFrom(
      {{"src/sim/parity.cpp",
        "bool IsOdd(int n);\n"
        "bool IsEven(int n) { return n == 0 ? true : IsOdd(n - 1); }\n"
        "bool IsOdd(int n) { return n == 0 ? false : IsEven(n - 1); }\n"}});
  const int even = SymbolNamed(b.graph, "IsEven");
  const int odd = SymbolNamed(b.graph, "IsOdd");
  const auto& even_callees = b.graph.callees[static_cast<std::size_t>(even)];
  const auto& odd_callees = b.graph.callees[static_cast<std::size_t>(odd)];
  EXPECT_TRUE(std::find(even_callees.begin(), even_callees.end(), odd) !=
              even_callees.end());
  EXPECT_TRUE(std::find(odd_callees.begin(), odd_callees.end(), even) !=
              odd_callees.end());
}

TEST(CallGraph, CallsResolveAcrossTranslationUnits) {
  const BuiltGraph b = BuildGraphFrom(
      {{"src/kb/store.cpp", "void Persist(int row) { (void)row; }\n"},
       {"src/sched/loop.cpp",
        "void Reconcile() { Persist(7); }\n"}});
  const int persist = SymbolNamed(b.graph, "Persist");
  const int reconcile = SymbolNamed(b.graph, "Reconcile");
  const auto& callees = b.graph.callees[static_cast<std::size_t>(reconcile)];
  EXPECT_TRUE(std::find(callees.begin(), callees.end(), persist) !=
              callees.end());
}

// --- Type facts --------------------------------------------------------------

TEST(TypeFacts, SignedDeclarationAnywhereVetoesTheName) {
  const BuiltGraph b = BuildGraphFrom(
      {{"src/sched/a.cpp",
        "void F() { std::uint64_t cap = 1; std::uint64_t used = 2; "
        "(void)cap; (void)used; }\n"},
       {"src/sim/b.cpp", "void G() { double cap = 0.5; (void)cap; }\n"}});
  const TypeFacts facts = CollectTypeFacts(b.files, b.asts, b.graph);
  // `used` is only ever unsigned; `cap` is double in another TU, so the
  // conservative by-name notion drops it (the documented FN envelope).
  EXPECT_TRUE(facts.unsigned_names.count("used") > 0);
  EXPECT_EQ(facts.unsigned_names.count("cap"), 0u);
}

TEST(TypeFacts, UnsignedReturningFunctions) {
  const BuiltGraph b = BuildGraphFrom(
      {{"src/sched/c.cpp",
        "std::uint64_t CapacityMb() { return 4096; }\n"
        "double LoadFrac() { return 0.5; }\n"}});
  const TypeFacts facts = CollectTypeFacts(b.files, b.asts, b.graph);
  EXPECT_TRUE(facts.unsigned_returning.count("CapacityMb") > 0);
  EXPECT_EQ(facts.unsigned_returning.count("LoadFrac"), 0u);
}

// --- Status-registry closure -------------------------------------------------

TEST(StatusRegistry, ClosesOverForwardingWrappersAndLambdas) {
  const BuiltGraph b = BuildGraphFrom(
      {{"src/net/fwd.cpp",
        "auto ForwardCommit() { return Commit(); }\n"
        "auto DoubleForward() { return ForwardCommit(); }\n"
        "void Use() { const auto retry = [] { return Commit(); }; retry(); }\n"}});
  std::set<std::string> status_fns = {"Commit"};
  AugmentStatusRegistry(b.files, b.asts, b.graph, &status_fns);
  EXPECT_TRUE(status_fns.count("ForwardCommit") > 0);
  EXPECT_TRUE(status_fns.count("DoubleForward") > 0);  // needs the fixpoint
  EXPECT_TRUE(status_fns.count("retry") > 0);
}

// --- Fixtures: interprocedural status-discard --------------------------------

TEST(InterprocStatusDiscard, FiresThroughForwardingWrappers) {
  const std::string source = ReadFixture("interproc_status_fire.cpp");
  const auto findings =
      LintFixture("interproc_status_fire.cpp", "src/net/interproc_fire.cpp");
  EXPECT_EQ(RuleLines(findings, "status-discard"), MarkedLines(source));
}

TEST(InterprocStatusDiscard, CleanWhenEveryStatusIsConsumed) {
  const auto findings =
      LintFixture("interproc_status_clean.cpp", "src/net/interproc_clean.cpp");
  EXPECT_EQ(CountRule(findings, "status-discard"), 0u) << findings[0].message;
}

// --- Fixtures: unit-of-measure -----------------------------------------------

TEST(UnitMismatch, FiresOnTheEnergyAccountingBugShape) {
  const std::string source = ReadFixture("unit_mismatch_fire.cpp");
  const auto findings =
      LintFixture("unit_mismatch_fire.cpp", "src/sim/unit_fire.cpp");
  const std::set<int> marked = MarkedLines(source);
  ASSERT_EQ(marked.size(), 4u) << "fixture drifted";
  EXPECT_EQ(RuleLines(findings, "unit-mismatch"), marked);
  // The headline case: a milliwatt sample stored into a millijoule field
  // crosses *dimensions*, and the message says to relate them via a helper.
  bool saw_energy_case = false;
  for (const Finding& f : findings) {
    if (f.rule == "unit-mismatch" &&
        f.message.find("mw") != std::string::npos &&
        f.message.find("mj") != std::string::npos) {
      saw_energy_case = true;
    }
  }
  EXPECT_TRUE(saw_energy_case);
}

TEST(UnitMismatch, CleanWhenConversionsAreNamed) {
  const auto findings =
      LintFixture("unit_mismatch_clean.cpp", "src/sim/unit_clean.cpp");
  EXPECT_EQ(CountRule(findings, "unit-mismatch"), 0u);
}

// --- Fixtures: unsigned underflow --------------------------------------------

TEST(UnsignedUnderflow, FiresOnTheMemFreeLedgerWrapShape) {
  const std::string source = ReadFixture("unsigned_underflow_fire.cpp");
  const auto findings = LintFixture("unsigned_underflow_fire.cpp",
                                    "src/sched/underflow_fire.cpp");
  const std::set<int> marked = MarkedLines(source);
  ASSERT_EQ(marked.size(), 4u) << "fixture drifted";
  EXPECT_EQ(RuleLines(findings, "unsigned-underflow"), marked);
  // The headline case recommends the project clamp by name.
  bool recommends_subsat = false;
  for (const Finding& f : findings) {
    if (f.rule == "unsigned-underflow" &&
        f.message.find("util::SubSat(mem_capacity_mb(), mem_allocated_mb())") !=
            std::string::npos) {
      recommends_subsat = true;
    }
  }
  EXPECT_TRUE(recommends_subsat);
}

TEST(UnsignedUnderflow, CleanUnderEveryRecognizedGuardShape) {
  const auto findings = LintFixture("unsigned_underflow_clean.cpp",
                                    "src/sched/underflow_clean.cpp");
  EXPECT_EQ(CountRule(findings, "unsigned-underflow"), 0u)
      << findings[0].message;
}

// --- Suppressions: glob patterns ---------------------------------------------

TEST(Suppressions, PathPatternShapes) {
  // Exact.
  EXPECT_TRUE(PathPatternMatches("src/kb/store.cpp", "src/kb/store.cpp"));
  EXPECT_FALSE(PathPatternMatches("src/kb/store.cpp", "src/kb/store.hpp"));
  // Legacy trailing-'*' prefix crosses '/'.
  EXPECT_TRUE(PathPatternMatches("src/kb/*", "src/kb/deep/nested.cpp"));
  EXPECT_FALSE(PathPatternMatches("src/kb/*", "src/sched/loop.cpp"));
  // Glob: '*' stays within one path segment.
  EXPECT_TRUE(PathPatternMatches("src/sched/*.cpp", "src/sched/loop.cpp"));
  EXPECT_FALSE(PathPatternMatches("src/sched/*.cpp", "src/sched/sub/x.cpp"));
  EXPECT_FALSE(PathPatternMatches("src/sched/*.cpp", "src/sched/loop.hpp"));
  EXPECT_TRUE(PathPatternMatches("tools/*/main.cpp", "tools/lint/main.cpp"));
  // '?' matches exactly one non-'/' character.
  EXPECT_TRUE(PathPatternMatches("src/v?/a.cpp", "src/v2/a.cpp"));
  EXPECT_FALSE(PathPatternMatches("src/v?/a.cpp", "src/v22/a.cpp"));
  EXPECT_FALSE(PathPatternMatches("src?util.cpp", "src/util.cpp"));
}

TEST(Suppressions, GlobEntryMatchesFindings) {
  const auto parsed = ParseSuppressions(
      "unsigned-underflow tools/lint/*.cpp -- span offsets are monotone\n",
      "suppressions.txt");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 1u);
  Finding hit;
  hit.rule = "unsigned-underflow";
  hit.file = "tools/lint/callgraph.cpp";
  hit.line = 42;
  EXPECT_TRUE(SuppressionMatches(parsed->front(), hit));
  Finding nested = hit;
  nested.file = "tools/lint/sub/x.cpp";  // '*' must not cross '/'
  EXPECT_FALSE(SuppressionMatches(parsed->front(), nested));
  Finding other_rule = hit;
  other_rule.rule = "unit-mismatch";
  EXPECT_FALSE(SuppressionMatches(parsed->front(), other_rule));
}

TEST(Suppressions, ExactEntryShadowedByGlobIsRejected) {
  const auto bad = ParseSuppressions(
      "unsigned-underflow tools/lint/*.cpp -- span offsets are monotone\n"
      "unsigned-underflow tools/lint/cfg.cpp -- already covered above\n",
      "suppressions.txt");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().ToString().find("already covered"),
            std::string::npos);
  // A different rule with the same paths does not overlap.
  const auto ok = ParseSuppressions(
      "unsigned-underflow tools/lint/*.cpp -- span offsets are monotone\n"
      "unit-mismatch tools/lint/cfg.cpp -- different rule, no overlap\n",
      "suppressions.txt");
  EXPECT_TRUE(ok.ok());
}

// --- SARIF -------------------------------------------------------------------

TEST(Sarif, RendersAValid210Log) {
  LintResult result;
  Finding with_col;
  with_col.rule = "unit-mismatch";
  with_col.file = "src/sim/power.cpp";
  with_col.line = 12;
  with_col.col = 7;
  with_col.message = "mw assigned to mj";
  Finding line_only;
  line_only.rule = "pragma-once";
  line_only.file = "src/kb/store.hpp";
  line_only.line = 1;
  line_only.col = 0;
  line_only.message = "missing #pragma once";
  result.findings = {with_col, line_only};

  const auto parsed = util::Json::Parse(SarifReport(result));
  ASSERT_TRUE(parsed.ok());
  const util::Json& log = *parsed;
  EXPECT_EQ(log.at("version").as_string(), "2.1.0");
  EXPECT_NE(log.at("$schema").as_string().find("sarif-2.1.0"),
            std::string::npos);
  ASSERT_EQ(log.at("runs").items().size(), 1u);
  const util::Json& run = log.at("runs").items()[0];
  EXPECT_EQ(run.at("tool").at("driver").at("name").as_string(), "myrtus-lint");
  // Every rule the engine can emit is in the metadata table, fired or not.
  EXPECT_GE(run.at("tool").at("driver").at("rules").items().size(), 10u);
  ASSERT_EQ(run.at("results").items().size(), 2u);
  const util::Json& first = run.at("results").items()[0];
  EXPECT_EQ(first.at("ruleId").as_string(), "unit-mismatch");
  EXPECT_EQ(first.at("level").as_string(), "error");
  const util::Json& loc =
      first.at("locations").items()[0].at("physicalLocation");
  EXPECT_EQ(loc.at("artifactLocation").at("uri").as_string(),
            "src/sim/power.cpp");
  EXPECT_EQ(loc.at("artifactLocation").at("uriBaseId").as_string(), "SRCROOT");
  EXPECT_EQ(loc.at("region").at("startLine").as_int(), 12);
  EXPECT_EQ(loc.at("region").at("startColumn").as_int(), 7);
  // Column-less findings omit startColumn rather than emitting 0.
  const util::Json& second_region = run.at("results")
                                        .items()[1]
                                        .at("locations")
                                        .items()[0]
                                        .at("physicalLocation")
                                        .at("region");
  EXPECT_FALSE(second_region.has("startColumn"));
}

}  // namespace
}  // namespace myrtus::lint
