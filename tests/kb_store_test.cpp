// MVCC store semantics: revisions, ranges, watches, leases — and the
// ResourceRegistry schema on top.
#include <gtest/gtest.h>

#include "kb/registry.hpp"
#include "kb/store.hpp"

namespace myrtus::kb {
namespace {

TEST(Store, PutBumpsRevisionAndVersion) {
  Store s;
  EXPECT_EQ(s.revision(), 0);
  s.Put("/a", util::Json(1));
  s.Put("/a", util::Json(2));
  auto kv = s.Get("/a");
  ASSERT_TRUE(kv.ok());
  EXPECT_EQ(kv->value.as_int(), 2);
  EXPECT_EQ(kv->create_revision, 1);
  EXPECT_EQ(kv->mod_revision, 2);
  EXPECT_EQ(kv->version, 2);
  EXPECT_EQ(s.revision(), 2);
}

TEST(Store, GetMissingIsNotFound) {
  Store s;
  EXPECT_EQ(s.Get("/nope").status().code(), util::StatusCode::kNotFound);
}

TEST(Store, DeleteRemovesAndBumpsRevision) {
  Store s;
  s.Put("/a", util::Json(1));
  auto rev = s.Delete("/a");
  ASSERT_TRUE(rev.has_value());
  EXPECT_EQ(*rev, 2);
  EXPECT_FALSE(s.Get("/a").ok());
  EXPECT_FALSE(s.Delete("/a").has_value());
  EXPECT_EQ(s.revision(), 2);  // deleting a missing key is not a mutation
}

TEST(Store, RecreatedKeyGetsNewCreateRevision) {
  Store s;
  s.Put("/a", util::Json(1));
  s.Delete("/a");
  s.Put("/a", util::Json(2));
  auto kv = s.Get("/a");
  ASSERT_TRUE(kv.ok());
  EXPECT_EQ(kv->create_revision, 3);
  EXPECT_EQ(kv->version, 1);
}

TEST(Store, RangeReturnsPrefixInOrder) {
  Store s;
  s.Put("/nodes/b", util::Json(2));
  s.Put("/nodes/a", util::Json(1));
  s.Put("/nodes/c", util::Json(3));
  s.Put("/other/x", util::Json(9));
  auto range = s.Range("/nodes/");
  ASSERT_EQ(range.size(), 3u);
  EXPECT_EQ(range[0].key, "/nodes/a");
  EXPECT_EQ(range[2].key, "/nodes/c");
  EXPECT_TRUE(s.Range("/missing/").empty());
}

TEST(Store, WatchFiresOnPrefixOnly) {
  Store s;
  std::vector<std::string> seen;
  s.Watch("/nodes/", [&](const WatchEvent& e) { seen.push_back(e.kv.key); });
  s.Put("/nodes/a", util::Json(1));
  s.Put("/pods/x", util::Json(2));
  s.Put("/nodes/b", util::Json(3));
  EXPECT_EQ(seen, (std::vector<std::string>{"/nodes/a", "/nodes/b"}));
}

TEST(Store, WatchSeesDeletesWithLastValue) {
  Store s;
  s.Put("/a", util::Json(42));
  WatchEvent::Type seen_type{};
  util::Json last_value;
  s.Watch("/a", [&](const WatchEvent& e) {
    seen_type = e.type;
    last_value = e.kv.value;
  });
  s.Delete("/a");
  EXPECT_EQ(seen_type, WatchEvent::Type::kDelete);
  EXPECT_EQ(last_value.as_int(), 42);
}

TEST(Store, CancelWatchStopsEvents) {
  Store s;
  int events = 0;
  const std::int64_t id = s.Watch("/", [&](const WatchEvent&) { ++events; });
  s.Put("/a", util::Json(1));
  s.CancelWatch(id);
  s.Put("/b", util::Json(2));
  EXPECT_EQ(events, 1);
}

TEST(Store, LeaseExpiryDeletesAttachedKeys) {
  Store s;
  const std::int64_t lease = s.GrantLease(1000);
  s.Put("/ephemeral/a", util::Json(1), lease);
  s.Put("/ephemeral/b", util::Json(2), lease);
  s.Put("/durable", util::Json(3));
  EXPECT_EQ(s.ExpireLeases(500), 0u);   // not yet due
  EXPECT_EQ(s.ExpireLeases(1000), 2u);  // due
  EXPECT_FALSE(s.Get("/ephemeral/a").ok());
  EXPECT_TRUE(s.Get("/durable").ok());
}

TEST(Store, LeaseRenewalPostponesExpiry) {
  Store s;
  const std::int64_t lease = s.GrantLease(1000);
  s.Put("/k", util::Json(1), lease);
  EXPECT_TRUE(s.RenewLease(lease, 5000));
  EXPECT_EQ(s.ExpireLeases(1000), 0u);
  EXPECT_EQ(s.ExpireLeases(5000), 1u);
  EXPECT_FALSE(s.RenewLease(lease, 9000));  // gone after expiry
}

TEST(Registry, NodeRecordRoundtrip) {
  NodeRecord r;
  r.node_id = "edge-3";
  r.layer = "edge";
  r.kind = "hmpsoc";
  r.cpu_capacity = 4;
  r.cpu_allocated = 1.5;
  r.mem_capacity_mb = 2048;
  r.security_level = 2;
  r.has_accelerator = true;
  r.energy_mj = 850.5;
  r.trust_score = 0.93;
  auto back = NodeRecord::FromJson(r.ToJson());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->node_id, "edge-3");
  EXPECT_EQ(back->kind, "hmpsoc");
  EXPECT_DOUBLE_EQ(back->cpu_allocated, 1.5);
  EXPECT_DOUBLE_EQ(back->energy_mj, 850.5);
  EXPECT_EQ(back->security_level, 2);
  EXPECT_TRUE(back->has_accelerator);
  EXPECT_DOUBLE_EQ(back->trust_score, 0.93);
}

TEST(Registry, NodeRecordDecodesLegacyEnergyKey) {
  // Records written before the energy_mw -> energy_mj rename carried
  // millijoules under the old key; FromJson must still pick them up.
  util::Json legacy = util::Json::MakeObject()
                          .Set("node_id", "edge-9")
                          .Set("energy_mw", 123.25);
  auto back = NodeRecord::FromJson(legacy);
  ASSERT_TRUE(back.ok());
  EXPECT_DOUBLE_EQ(back->energy_mj, 123.25);
}

TEST(Registry, NodeRecordRejectsGarbage) {
  EXPECT_FALSE(NodeRecord::FromJson(util::Json(3)).ok());
  EXPECT_FALSE(NodeRecord::FromJson(util::Json::MakeObject()).ok());
}

TEST(Registry, ListNodesFiltersByLayer) {
  Store store;
  ResourceRegistry reg(store);
  NodeRecord e{.node_id = "e0", .layer = "edge"};
  NodeRecord f{.node_id = "f0", .layer = "fog"};
  NodeRecord c{.node_id = "c0", .layer = "cloud"};
  reg.PutNode(e);
  reg.PutNode(f);
  reg.PutNode(c);
  EXPECT_EQ(reg.ListNodes().size(), 3u);
  EXPECT_EQ(reg.ListNodes("fog").size(), 1u);
  EXPECT_EQ(reg.ListNodes("fog")[0].node_id, "f0");
  reg.RemoveNode("f0");
  EXPECT_TRUE(reg.ListNodes("fog").empty());
}

TEST(Registry, WorkloadRecords) {
  Store store;
  ResourceRegistry reg(store);
  reg.PutWorkload("wl-1", util::Json::MakeObject().Set("node", "e0"));
  auto wl = reg.GetWorkload("wl-1");
  ASSERT_TRUE(wl.ok());
  EXPECT_EQ(wl->at("node").as_string(), "e0");
  reg.PutWorkload("wl-2", util::Json::MakeObject().Set("node", "f0"));
  auto all = reg.ListWorkloads();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].first, "wl-1");
}

TEST(Registry, TelemetryRingBuffer) {
  Store store;
  ResourceRegistry reg(store);
  for (int i = 0; i < 300; ++i) {
    reg.AppendTelemetry("e0", "latency_ms", {i, static_cast<double>(i)}, 256);
  }
  auto series = reg.GetTelemetry("e0", "latency_ms");
  ASSERT_EQ(series.size(), 256u);
  EXPECT_EQ(series.front().at_ns, 44);  // oldest surviving sample
  EXPECT_EQ(series.back().at_ns, 299);
}

TEST(Registry, RecentMeanUsesWindow) {
  Store store;
  ResourceRegistry reg(store);
  for (int i = 0; i < 10; ++i) {
    reg.AppendTelemetry("e0", "util", {i, i < 5 ? 0.0 : 1.0});
  }
  EXPECT_DOUBLE_EQ(reg.RecentMean("e0", "util", 5), 1.0);
  EXPECT_DOUBLE_EQ(reg.RecentMean("e0", "util", 10), 0.5);
  EXPECT_DOUBLE_EQ(reg.RecentMean("e0", "missing"), 0.0);
}

}  // namespace
}  // namespace myrtus::kb
