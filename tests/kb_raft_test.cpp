// Raft consensus over the simulated network: elections, replication,
// leader failover, partitions via link failures, and client semantics.
#include <gtest/gtest.h>

#include "kb/cluster.hpp"
#include "net/transport.hpp"

namespace myrtus::kb {
namespace {

using sim::SimTime;

struct Fixture {
  sim::Engine engine;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<KbCluster> cluster;

  explicit Fixture(std::size_t n, std::uint64_t seed = 1) {
    net::Topology topo;
    std::vector<net::HostId> hosts;
    for (std::size_t i = 0; i < n; ++i) hosts.push_back("kb-" + std::to_string(i));
    // Full mesh, 2ms links.
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        topo.AddBidirectional(hosts[i], hosts[j], SimTime::Millis(2), 1e9);
      }
    }
    topo.AddHost("client");
    for (const auto& h : hosts) {
      topo.AddBidirectional("client", h, SimTime::Millis(2), 1e9);
    }
    net = std::make_unique<net::Network>(engine, std::move(topo), seed);
    cluster = std::make_unique<KbCluster>(*net, hosts, seed);
    cluster->Start();
  }

  void Settle(SimTime t = SimTime::Seconds(2)) { engine.RunUntil(engine.Now() + t); }
};

TEST(Raft, SingleNodeBecomesLeaderAndCommits) {
  Fixture f(1);
  f.Settle();
  EXPECT_EQ(f.cluster->LeaderIndex(), 0);
  bool done = false;
  f.cluster->replica(0).raft->Propose(
      util::Json::MakeObject().Set("op", "put").Set("key", "/k").Set("value", 7)
          .Set("lease", 0),
      [&](util::StatusOr<std::int64_t> r) {
        ASSERT_TRUE(r.ok());
        done = true;
      });
  f.Settle(SimTime::Millis(100));
  EXPECT_TRUE(done);
  auto kv = f.cluster->replica(0).store->Get("/k");
  ASSERT_TRUE(kv.ok());
  EXPECT_EQ(kv->value.as_int(), 7);
}

TEST(Raft, ThreeNodeClusterElectsExactlyOneLeader) {
  Fixture f(3);
  f.Settle();
  int leaders = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    if (f.cluster->replica(i).raft->role() == RaftRole::kLeader) ++leaders;
  }
  EXPECT_EQ(leaders, 1);
}

TEST(Raft, CommittedEntryReachesAllReplicas) {
  Fixture f(3);
  f.Settle();
  const int leader = f.cluster->LeaderIndex();
  ASSERT_GE(leader, 0);
  bool done = false;
  f.cluster->replica(static_cast<std::size_t>(leader))
      .raft->Propose(util::Json::MakeObject()
                         .Set("op", "put")
                         .Set("key", "/x")
                         .Set("value", "v1")
                         .Set("lease", 0),
                     [&](util::StatusOr<std::int64_t> r) {
                       ASSERT_TRUE(r.ok()) << r.status();
                       done = true;
                     });
  f.Settle(SimTime::Seconds(1));
  ASSERT_TRUE(done);
  for (std::size_t i = 0; i < 3; ++i) {
    auto kv = f.cluster->replica(i).store->Get("/x");
    ASSERT_TRUE(kv.ok()) << "replica " << i;
    EXPECT_EQ(kv->value.as_string(), "v1");
  }
}

TEST(Raft, ProposeOnFollowerFailsWithLeaderHint) {
  Fixture f(3);
  f.Settle();
  const int leader = f.cluster->LeaderIndex();
  ASSERT_GE(leader, 0);
  const std::size_t follower = (static_cast<std::size_t>(leader) + 1) % 3;
  bool failed = false;
  // LINT: deferred-capture-ok(default) -- a follower rejects the proposal
  // synchronously, inside Propose; EXPECT_TRUE(failed) below relies on it
  f.cluster->replica(follower).raft->Propose(
      util::Json(1), [&](util::StatusOr<std::int64_t> r) {
        EXPECT_FALSE(r.ok());
        EXPECT_EQ(r.status().code(), util::StatusCode::kFailedPrecondition);
        EXPECT_NE(r.status().message().find("kb-"), std::string::npos);
        failed = true;
      });
  EXPECT_TRUE(failed);
}

TEST(Raft, LeaderCrashTriggersFailoverAndNewWritesSucceed) {
  Fixture f(5);
  f.Settle();
  const int old_leader = f.cluster->LeaderIndex();
  ASSERT_GE(old_leader, 0);
  f.cluster->Crash(static_cast<std::size_t>(old_leader));
  f.Settle(SimTime::Seconds(3));
  const int new_leader = f.cluster->LeaderIndex();
  ASSERT_GE(new_leader, 0);
  EXPECT_NE(new_leader, old_leader);

  bool done = false;
  f.cluster->replica(static_cast<std::size_t>(new_leader))
      .raft->Propose(util::Json::MakeObject()
                         .Set("op", "put")
                         .Set("key", "/after-failover")
                         .Set("value", 1)
                         .Set("lease", 0),
                     [&](util::StatusOr<std::int64_t> r) {
                       EXPECT_TRUE(r.ok()) << r.status();
                       done = true;
                     });
  f.Settle(SimTime::Seconds(1));
  EXPECT_TRUE(done);
}

TEST(Raft, RecoveredNodeCatchesUp) {
  Fixture f(3);
  f.Settle();
  int leader = f.cluster->LeaderIndex();
  ASSERT_GE(leader, 0);
  const std::size_t victim = (static_cast<std::size_t>(leader) + 1) % 3;
  f.cluster->Crash(victim);

  // Commit writes while the victim is down.
  for (int i = 0; i < 5; ++i) {
    f.cluster->replica(static_cast<std::size_t>(leader))
        .raft->Propose(util::Json::MakeObject()
                           .Set("op", "put")
                           .Set("key", "/k" + std::to_string(i))
                           .Set("value", i)
                           .Set("lease", 0),
                       [](util::StatusOr<std::int64_t>) {});
    f.Settle(SimTime::Millis(200));
  }
  f.cluster->Recover(victim);
  f.Settle(SimTime::Seconds(3));

  for (int i = 0; i < 5; ++i) {
    auto kv = f.cluster->replica(victim).store->Get("/k" + std::to_string(i));
    ASSERT_TRUE(kv.ok()) << "missing /k" << i << " on recovered replica";
    EXPECT_EQ(kv->value.as_int(), i);
  }
}

TEST(Raft, MinorityPartitionCannotCommit) {
  Fixture f(3);
  f.Settle();
  const int leader = f.cluster->LeaderIndex();
  ASSERT_GE(leader, 0);
  // Crash both followers: the leader keeps its role until it notices, but
  // nothing can commit.
  const std::size_t f1 = (static_cast<std::size_t>(leader) + 1) % 3;
  const std::size_t f2 = (static_cast<std::size_t>(leader) + 2) % 3;
  f.cluster->Crash(f1);
  f.cluster->Crash(f2);
  bool called = false;
  bool committed = false;
  f.cluster->replica(static_cast<std::size_t>(leader))
      .raft->Propose(util::Json::MakeObject()
                         .Set("op", "put")
                         .Set("key", "/orphan")
                         .Set("value", 1)
                         .Set("lease", 0),
                     [&](util::StatusOr<std::int64_t> r) {
                       called = true;
                       committed = r.ok();
                     });
  f.Settle(SimTime::Seconds(2));
  EXPECT_FALSE(committed);
  (void)called;  // may or may not have been failed yet; must not be committed
  EXPECT_FALSE(f.cluster->replica(static_cast<std::size_t>(leader))
                   .store->Get("/orphan")
                   .ok());
}

TEST(Raft, ClientPutGetThroughNetwork) {
  Fixture f(3);
  f.Settle();
  KbClient client(*f.net, *f.cluster, "client");
  bool put_done = false;
  client.Put("/app/config", util::Json::MakeObject().Set("replicas", 3),
             [&](util::Status s) {
               EXPECT_TRUE(s.ok()) << s;
               put_done = true;
             });
  f.Settle(SimTime::Seconds(2));
  ASSERT_TRUE(put_done);

  bool got = false;
  client.Get("/app/config", [&](util::StatusOr<util::Json> v) {
    ASSERT_TRUE(v.ok()) << v.status();
    EXPECT_EQ(v->at("replicas").as_int(), 3);
    got = true;
  });
  f.Settle(SimTime::Seconds(1));
  EXPECT_TRUE(got);
}

TEST(Raft, ClientSurvivesLeaderCrashMidStream) {
  Fixture f(5);
  f.Settle();
  KbClient client(*f.net, *f.cluster, "client");

  int completed = 0;
  for (int i = 0; i < 3; ++i) {
    client.Put("/pre/" + std::to_string(i), util::Json(i),
               [&](util::Status s) {
                 if (s.ok()) ++completed;
               });
  }
  f.Settle(SimTime::Seconds(1));
  const int leader = f.cluster->LeaderIndex();
  ASSERT_GE(leader, 0);
  f.cluster->Crash(static_cast<std::size_t>(leader));

  int post_completed = 0;
  for (int i = 0; i < 3; ++i) {
    client.Put("/post/" + std::to_string(i), util::Json(i),
               [&](util::Status s) {
                 if (s.ok()) ++post_completed;
               });
  }
  f.Settle(SimTime::Seconds(8));
  EXPECT_EQ(completed, 3);
  EXPECT_EQ(post_completed, 3) << "client should retry to the new leader";
}

TEST(Raft, LogsConvergeAcrossReplicasAfterChurn) {
  Fixture f(3, 99);
  f.Settle();
  KbClient client(*f.net, *f.cluster, "client");
  int acks = 0;
  for (int i = 0; i < 20; ++i) {
    client.Put("/churn/" + std::to_string(i), util::Json(i),
               [&](util::Status s) {
                 if (s.ok()) ++acks;
               });
  }
  f.Settle(SimTime::Seconds(5));
  ASSERT_EQ(acks, 20);
  // Every replica's store ends with identical contents.
  for (int i = 0; i < 20; ++i) {
    const std::string key = "/churn/" + std::to_string(i);
    for (std::size_t r = 0; r < 3; ++r) {
      auto kv = f.cluster->replica(r).store->Get(key);
      ASSERT_TRUE(kv.ok()) << key << " replica " << r;
      EXPECT_EQ(kv->value.as_int(), i);
    }
  }
}

// Regression: OnRequestVote used to re-arm the election timer whenever the
// candidate's term exceeded ours, even when the vote was NOT granted. A
// partitioned node that churned its term sky-high could then rejoin and
// perpetually suppress everyone else's elections — each denied RequestVote
// pushed their timeouts back — leaving the cluster leaderless after the real
// leader died. Denied votes must not touch the timer.
TEST(Raft, PartitionedStaleCandidateCannotSuppressElection) {
  Fixture f(5, 7);
  f.Settle();
  const int leader = f.cluster->LeaderIndex();
  ASSERT_GE(leader, 0);
  const std::size_t stale = (static_cast<std::size_t>(leader) + 1) % 5;
  const net::HostId stale_host = "kb-" + std::to_string(stale);

  // Partition the stale node by downing every link touching it.
  auto set_links = [&](bool up) {
    auto& topo = f.net->topology();
    for (std::size_t i = 0; i < topo.link_count(); ++i) {
      const net::Link& l = topo.link(i);
      if (l.from == stale_host || l.to == stale_host) topo.SetLinkUp(i, up);
    }
  };
  set_links(false);

  // Commit an entry the stale node will never see.
  bool committed = false;
  f.cluster->replica(static_cast<std::size_t>(leader))
      .raft->Propose(util::Json::MakeObject()
                         .Set("op", "put")
                         .Set("key", "/stable")
                         .Set("value", 1)
                         .Set("lease", 0),
                     [&](util::StatusOr<std::int64_t> r) {
                       ASSERT_TRUE(r.ok()) << r.status();
                       committed = true;
                     });
  // Let the isolated node churn candidacies and inflate its term.
  f.Settle(SimTime::Seconds(3));
  ASSERT_TRUE(committed);
  const std::int64_t stale_term = f.cluster->replica(stale).raft->current_term();
  EXPECT_GT(stale_term, f.cluster->replica(static_cast<std::size_t>(leader))
                            .raft->current_term());

  // Kill the leader, then heal the partition: the high-term stale candidate
  // rejoins exactly when the survivors need to elect among themselves.
  f.cluster->Crash(static_cast<std::size_t>(leader));
  set_links(true);
  f.Settle(SimTime::Seconds(5));

  const int new_leader = f.cluster->LeaderIndex();
  ASSERT_GE(new_leader, 0) << "stale candidate suppressed the election";
  EXPECT_NE(new_leader, leader);
  EXPECT_NE(static_cast<std::size_t>(new_leader), stale)
      << "a candidate missing committed entries must not win";
  // The committed entry survived the churn and reached the new leader.
  auto kv = f.cluster->replica(static_cast<std::size_t>(new_leader))
                .store->Get("/stable");
  ASSERT_TRUE(kv.ok());
  EXPECT_EQ(kv->value.as_int(), 1);
}

TEST(Raft, TermsAreMonotonic) {
  Fixture f(3);
  f.Settle();
  const std::int64_t t1 = f.cluster->replica(0).raft->current_term();
  const int leader = f.cluster->LeaderIndex();
  f.cluster->Crash(static_cast<std::size_t>(leader));
  f.Settle(SimTime::Seconds(3));
  f.cluster->Recover(static_cast<std::size_t>(leader));
  f.Settle(SimTime::Seconds(2));
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_GE(f.cluster->replica(i).raft->current_term(), t1);
  }
}

}  // namespace
}  // namespace myrtus::kb
