// Retry/backoff policy, per-destination circuit breaker, and the
// Network::CallWithRetry loop — including the regression for the old
// synchronous completion on routing failures.
#include <gtest/gtest.h>

#include "net/retry.hpp"
#include "net/topology.hpp"
#include "net/transport.hpp"

namespace myrtus::net {
namespace {

using sim::SimTime;

TEST(RetryPolicy, BackoffGrowsExponentiallyAndClamps) {
  RetryPolicy p;
  p.initial_backoff = SimTime::Millis(50);
  p.backoff_multiplier = 2.0;
  p.max_backoff = SimTime::Millis(150);
  p.jitter = 0.0;  // deterministic for exact values
  util::Rng rng(1);
  EXPECT_EQ(p.BackoffBefore(2, rng), SimTime::Millis(50));
  EXPECT_EQ(p.BackoffBefore(3, rng), SimTime::Millis(100));
  EXPECT_EQ(p.BackoffBefore(4, rng), SimTime::Millis(150));  // clamped
  EXPECT_EQ(p.BackoffBefore(9, rng), SimTime::Millis(150));  // stays clamped
}

TEST(RetryPolicy, JitterStaysWithinBandAndIsSeedDeterministic) {
  RetryPolicy p;
  p.initial_backoff = SimTime::Millis(100);
  p.jitter = 0.2;
  util::Rng a(42, "retry");
  util::Rng b(42, "retry");
  for (int i = 0; i < 8; ++i) {
    const SimTime wa = p.BackoffBefore(2, a);
    const SimTime wb = p.BackoffBefore(2, b);
    EXPECT_EQ(wa, wb) << "same seed must give the same jitter";
    // attempt 2 base is 100 ms; x in [1-j, 1+j) keeps it in [80, 120) ms.
    EXPECT_GE(wa, SimTime::Millis(80));
    EXPECT_LT(wa, SimTime::Millis(120));
  }
}

TEST(RetryPolicy, NoneIsSingleLegacyAttempt) {
  const RetryPolicy p = RetryPolicy::None();
  EXPECT_EQ(p.max_attempts, 1);
  EXPECT_EQ(p.attempt_timeout, SimTime::Seconds(5));
  EXPECT_FALSE(p.use_circuit_breaker);
}

TEST(RetryPolicy, RetryableStatuses) {
  EXPECT_TRUE(IsRetryableRpcStatus(util::Status::Unavailable("down")));
  EXPECT_TRUE(IsRetryableRpcStatus(util::Status::DeadlineExceeded("slow")));
  // Application errors prove the destination answered; never retried.
  EXPECT_FALSE(IsRetryableRpcStatus(util::Status::NotFound("no key")));
  EXPECT_FALSE(IsRetryableRpcStatus(util::Status::Unimplemented("no method")));
  EXPECT_FALSE(IsRetryableRpcStatus(util::Status::Ok()));
}

TEST(CircuitBreaker, OpensAtFailureThresholdAndNotBefore) {
  CircuitBreakerConfig cfg;
  cfg.window = 8;
  cfg.min_samples = 4;
  cfg.failure_threshold = 0.5;
  CircuitBreaker cb(cfg);
  const SimTime now = SimTime::Zero();

  // Below min_samples nothing trips even at 100% failures.
  cb.RecordFailure(now);
  cb.RecordFailure(now);
  cb.RecordFailure(now);
  EXPECT_EQ(cb.state(now), CircuitBreaker::State::kClosed);
  cb.RecordFailure(now);  // 4th sample, rate 1.0 >= 0.5 -> open
  EXPECT_EQ(cb.state(now), CircuitBreaker::State::kOpen);
  EXPECT_EQ(cb.opens(), 1u);
  EXPECT_FALSE(cb.AllowRequest(now));
  EXPECT_EQ(cb.rejections(), 1u);
}

TEST(CircuitBreaker, HalfOpenProbeHealsOrReopens) {
  CircuitBreakerConfig cfg;
  cfg.window = 4;
  cfg.min_samples = 2;
  cfg.failure_threshold = 0.5;
  cfg.open_timeout = SimTime::Millis(100);
  CircuitBreaker cb(cfg);
  cb.RecordFailure(SimTime::Zero());
  cb.RecordFailure(SimTime::Zero());
  ASSERT_EQ(cb.state(SimTime::Zero()), CircuitBreaker::State::kOpen);

  // Cooldown elapsed: exactly one probe allowed, concurrent ones rejected.
  const SimTime later = SimTime::Millis(150);
  EXPECT_EQ(cb.state(later), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(cb.AllowRequest(later));
  EXPECT_FALSE(cb.AllowRequest(later));

  // Failed probe: full cooldown again.
  cb.RecordFailure(later);
  EXPECT_EQ(cb.state(later), CircuitBreaker::State::kOpen);
  EXPECT_EQ(cb.opens(), 2u);
  EXPECT_FALSE(cb.AllowRequest(later + SimTime::Millis(50)));

  // Successful probe after the next cooldown closes with a clean window.
  const SimTime healed = later + SimTime::Millis(200);
  EXPECT_TRUE(cb.AllowRequest(healed));
  cb.RecordSuccess(healed);
  EXPECT_EQ(cb.state(healed), CircuitBreaker::State::kClosed);
  EXPECT_DOUBLE_EQ(cb.FailureRate(), 0.0);
}

TEST(CircuitBreaker, SlidingWindowForgetsOldFailures) {
  CircuitBreakerConfig cfg;
  cfg.window = 4;
  cfg.min_samples = 4;
  cfg.failure_threshold = 0.75;
  CircuitBreaker cb(cfg);
  const SimTime now = SimTime::Zero();
  cb.RecordFailure(now);
  cb.RecordFailure(now);
  // Successes push the failures out of the 4-sample window.
  for (int i = 0; i < 4; ++i) cb.RecordSuccess(now);
  EXPECT_DOUBLE_EQ(cb.FailureRate(), 0.0);
  EXPECT_EQ(cb.state(now), CircuitBreaker::State::kClosed);
}

struct NetFixture {
  sim::Engine engine;
  std::unique_ptr<Network> net;

  explicit NetFixture(double loss_rate = 0.0, std::uint64_t seed = 7) {
    Topology t;
    t.AddBidirectional("a", "b", SimTime::Millis(1), 1e9);
    for (std::size_t i = 0; i < t.link_count(); ++i) {
      t.mutable_link(i).loss_rate = loss_rate;
    }
    net = std::make_unique<Network>(engine, std::move(t), seed);
    net->RegisterRpc("b", "echo",
                     [](const HostId&, const util::Json& req)
                         -> util::StatusOr<util::Json> { return req; });
  }
};

TEST(CallWithRetry, SucceedsFirstTryOnCleanLink) {
  NetFixture f;
  bool ok = false;
  f.net->CallWithRetry("a", "b", "echo", util::Json(42),
                       [&](util::StatusOr<util::Json> reply) {
                         ASSERT_TRUE(reply.ok());
                         EXPECT_EQ(reply->as_int(), 42);
                         ok = true;
                       });
  f.engine.Run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(f.net->retries(), 0u);
}

TEST(CallWithRetry, RecoversOnLossyLinkWherePlainCallTimesOut) {
  // 25% per-hop loss: a single attempt fails ~44% of the time (request and
  // reply each cross the hop); eight attempts virtually always land.
  // Deterministic given the seed.
  NetFixture f(/*loss_rate=*/0.25, /*seed=*/3);
  RetryPolicy p;
  p.max_attempts = 8;
  p.initial_backoff = SimTime::Millis(20);
  p.backoff_multiplier = 1.5;
  p.attempt_timeout = SimTime::Millis(50);
  p.overall_deadline = SimTime::Seconds(10);
  // Isolate retry recovery: 20 concurrent calls over one lossy link would
  // legitimately trip the shared per-destination breaker mid-test.
  p.use_circuit_breaker = false;
  int ok = 0;
  int failed = 0;
  for (int i = 0; i < 20; ++i) {
    f.net->CallWithRetry("a", "b", "echo", util::Json(i),
                         [&](util::StatusOr<util::Json> reply) {
                           reply.ok() ? ++ok : ++failed;
                         },
                         p);
  }
  f.engine.Run();
  EXPECT_EQ(ok + failed, 20);
  EXPECT_GE(ok, 18) << "retries should recover nearly every call";
  EXPECT_GT(f.net->retries(), 0u);
}

TEST(CallWithRetry, ExhaustsAttemptsAgainstUnroutableHost) {
  NetFixture f;
  f.net->topology().AddHost("island");  // attached to nothing
  RetryPolicy p;
  p.max_attempts = 3;
  p.initial_backoff = SimTime::Millis(10);
  p.use_circuit_breaker = false;
  bool failed = false;
  f.net->CallWithRetry("a", "island", "echo", util::Json(1),
                       [&](util::StatusOr<util::Json> reply) {
                         EXPECT_FALSE(reply.ok());
                         EXPECT_EQ(reply.status().code(),
                                   util::StatusCode::kUnavailable);
                         EXPECT_NE(reply.status().message().find("attempt"),
                                   std::string::npos);
                         failed = true;
                       },
                       p);
  f.engine.Run();
  EXPECT_TRUE(failed);
  EXPECT_EQ(f.net->retries(), 2u);  // 3 attempts = 2 retries
}

TEST(CallWithRetry, DoesNotRetryApplicationErrors) {
  NetFixture f;
  int handler_calls = 0;
  f.net->RegisterRpc("b", "fails",
                     [&](const HostId&, const util::Json&)
                         -> util::StatusOr<util::Json> {
                       ++handler_calls;
                       return util::Status::NotFound("no such thing");
                     });
  bool done = false;
  f.net->CallWithRetry("a", "b", "fails", {},
                       [&](util::StatusOr<util::Json> reply) {
                         EXPECT_EQ(reply.status().code(),
                                   util::StatusCode::kNotFound);
                         done = true;
                       });
  f.engine.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(handler_calls, 1);
  EXPECT_EQ(f.net->retries(), 0u);
}

TEST(CallWithRetry, BreakerOpensAfterRepeatedFailuresAndFastFails) {
  NetFixture f;
  f.net->topology().AddHost("island");
  CircuitBreakerConfig cfg;
  cfg.window = 8;
  cfg.min_samples = 4;
  cfg.failure_threshold = 0.5;
  cfg.open_timeout = SimTime::Seconds(60);  // stays open for the test
  f.net->set_breaker_config(cfg);
  RetryPolicy p;
  p.max_attempts = 1;  // count failures one by one
  int failures = 0;
  for (int i = 0; i < 8; ++i) {
    f.net->CallWithRetry("a", "island", "echo", {},
                         [&](util::StatusOr<util::Json> reply) {
                           EXPECT_FALSE(reply.ok());
                           ++failures;
                         },
                         p);
    f.engine.Run();
  }
  EXPECT_EQ(failures, 8);
  EXPECT_EQ(f.net->BreakerFor("island").opens(), 1u);
  EXPECT_GT(f.net->BreakerFor("island").rejections(), 0u);
  // The healthy destination's breaker is unaffected (per-destination keying).
  EXPECT_EQ(f.net->BreakerFor("b").opens(), 0u);
}

// Regression (transport.cpp): a Call whose Send fails routing used to invoke
// the completion callback synchronously, re-entering the caller's stack.
TEST(Call, RoutingFailureCompletesAsynchronously) {
  NetFixture f;
  f.net->topology().AddHost("island");
  bool callback_ran = false;
  bool call_returned = false;
  f.net->Call("a", "island", "echo", {},
              [&](util::StatusOr<util::Json> reply) {
                EXPECT_TRUE(call_returned)
                    << "completion must not run inside Call()";
                EXPECT_EQ(reply.status().code(),
                          util::StatusCode::kUnavailable);
                callback_ran = true;
              });
  call_returned = true;
  EXPECT_FALSE(callback_ran);
  f.engine.Run();
  EXPECT_TRUE(callback_ran);
}

}  // namespace
}  // namespace myrtus::net
