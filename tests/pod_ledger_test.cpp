// PodLedger: the sharded-arena pod table — name index, generation-tagged
// PodId handles (ABA guard), row recycling, rehash survival, and ForEach.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "sched/pod_ledger.hpp"

namespace myrtus::sched {
namespace {

PodSpec Spec(const std::string& name) {
  PodSpec spec;
  spec.name = name;
  spec.cpu_request = 0.5;
  spec.mem_request_mb = 64;
  return spec;
}

TEST(PodLedger, CreateFindAndViewRoundTrip) {
  PodLedger ledger;
  const PodId id = ledger.Create(Spec("web-0"));
  ASSERT_NE(id, kInvalidPodId);
  EXPECT_EQ(ledger.FindId("web-0"), id);
  const PodView view = ledger.Find("web-0");
  ASSERT_TRUE(view.valid());
  EXPECT_EQ(view.name(), "web-0");
  EXPECT_EQ(view.phase(), PodPhase::kPending);
  EXPECT_FALSE(view.bound());
  EXPECT_EQ(view.bound_at_ns(), -1);
  EXPECT_EQ(ledger.size(), 1u);
}

TEST(PodLedger, DuplicateNameIsRejected) {
  PodLedger ledger;
  ASSERT_NE(ledger.Create(Spec("dup")), kInvalidPodId);
  EXPECT_EQ(ledger.Create(Spec("dup")), kInvalidPodId);
  EXPECT_EQ(ledger.size(), 1u);
}

TEST(PodLedger, BindAndClearBindingKeepBoundAt) {
  PodLedger ledger;
  const PodId id = ledger.Create(Spec("job"));
  ledger.Bind(id, /*node_slot=*/7, /*bound_at_ns=*/42, /*committed_cpu=*/0.5,
              /*committed_mem_mb=*/64);
  PodView view = ledger.View(id);
  EXPECT_EQ(view.phase(), PodPhase::kRunning);
  EXPECT_EQ(view.node_slot(), 7);
  EXPECT_EQ(view.bound_at_ns(), 42);
  EXPECT_DOUBLE_EQ(view.committed_cpu(), 0.5);
  EXPECT_EQ(view.committed_mem_mb(), 64u);
  ledger.ClearBinding(id);
  view = ledger.View(id);
  EXPECT_EQ(view.node_slot(), kNoNodeSlot);
  EXPECT_DOUBLE_EQ(view.committed_cpu(), 0.0);
  // The first-bind timestamp survives eviction: the MAPE monitor reads
  // deploy-to-bind latency off evicted pods too.
  EXPECT_EQ(view.bound_at_ns(), 42);
}

TEST(PodLedger, StaleIdGoesInvalidAfterEraseAndRowReuse) {
  PodLedger ledger;
  const PodId first = ledger.Create(Spec("ephemeral"));
  ledger.Erase(first);
  EXPECT_FALSE(ledger.Alive(first));
  EXPECT_FALSE(ledger.View(first).valid());
  EXPECT_EQ(ledger.size(), 0u);
  // The recycled row must not resurrect the old handle (generation bump).
  const PodId second = ledger.Create(Spec("replacement"));
  ASSERT_NE(second, kInvalidPodId);
  EXPECT_NE(first, second);
  EXPECT_FALSE(ledger.Alive(first));
  EXPECT_EQ(ledger.View(second).name(), "replacement");
  EXPECT_EQ(ledger.row_capacity(), 1u) << "row was recycled, not re-allocated";
  // Mutators on the stale handle are no-ops.
  ledger.Bind(first, 3, 9, 1.0, 8);
  EXPECT_FALSE(ledger.View(second).bound());
}

TEST(PodLedger, SurvivesRehashAndChurnAtScale) {
  PodLedger ledger;
  constexpr int kPods = 5000;  // forces several rehashes in every shard
  std::vector<PodId> ids;
  for (int i = 0; i < kPods; ++i) {
    ids.push_back(ledger.Create(Spec("pod-" + std::to_string(i))));
    ASSERT_NE(ids.back(), kInvalidPodId);
  }
  // Erase every third pod (leaves tombstones), then re-create them.
  for (int i = 0; i < kPods; i += 3) ledger.Erase(ids[i]);
  for (int i = 0; i < kPods; i += 3) {
    ids[i] = ledger.Create(Spec("pod-" + std::to_string(i)));
    ASSERT_NE(ids[i], kInvalidPodId) << i;
  }
  EXPECT_EQ(ledger.size(), static_cast<std::size_t>(kPods));
  for (int i = 0; i < kPods; ++i) {
    const PodView view = ledger.Find("pod-" + std::to_string(i));
    ASSERT_TRUE(view.valid()) << i;
    EXPECT_EQ(view.id(), ids[i]);
  }
  EXPECT_FALSE(ledger.Find("pod-" + std::to_string(kPods)).valid());
}

TEST(PodLedger, ForEachVisitsExactlyTheLivePods) {
  PodLedger ledger;
  const PodId a = ledger.Create(Spec("a"));
  const PodId b = ledger.Create(Spec("b"));
  const PodId c = ledger.Create(Spec("c"));
  ledger.Erase(b);
  std::set<std::string> seen;
  ledger.ForEach([&](const PodView& view) { seen.insert(view.name()); });
  EXPECT_EQ(seen, (std::set<std::string>{"a", "c"}));
  EXPECT_TRUE(ledger.Alive(a));
  EXPECT_TRUE(ledger.Alive(c));
}

TEST(PodLedger, NodeIdResolverBacksPodViewNodeId) {
  PodLedger ledger;
  const std::vector<std::string> slots = {"edge-0", "fog-0"};
  // LINT: deferred-capture-ok(slots) -- the resolver only runs inside View()
  // calls below; ledger and slots die with this frame together
  ledger.set_node_id_resolver(
      [&slots](std::int32_t slot) -> const std::string& {
        return slots[static_cast<std::size_t>(slot)];
      });
  const PodId id = ledger.Create(Spec("svc"));
  EXPECT_EQ(ledger.View(id).node_id(), "");
  ledger.Bind(id, 1, 5, 0.5, 64);
  EXPECT_EQ(ledger.View(id).node_id(), "fog-0");
}

}  // namespace
}  // namespace myrtus::sched
