// Drives the myrtus_lint rule engine over the checked-in fixture files in
// tests/lint_fixtures/: one firing and one non-firing case per rule, plus
// lexer and suppression-parser unit coverage. Fixture sources are read from
// disk (LINT_FIXTURES_DIR) but analyzed under synthetic repo-relative paths
// so module/layer attribution can be chosen per case.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lexer.hpp"
#include "lint.hpp"
#include "rules.hpp"

namespace myrtus::lint {
namespace {

std::string ReadFixture(const std::string& name) {
  const std::string path = std::string(LINT_FIXTURES_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Lints one fixture as if it lived at `as_path` inside the repo.
std::vector<Finding> LintFixture(const std::string& name,
                                 const std::string& as_path,
                                 const std::vector<std::string>& allowlist = {}) {
  std::vector<FileContext> files;
  files.push_back(MakeFileContext(as_path, ReadFixture(name)));
  return RunRules(files, allowlist);
}

std::size_t CountRule(const std::vector<Finding>& findings, const std::string& rule) {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [&rule](const Finding& f) { return f.rule == rule; }));
}

// --- Lexer -------------------------------------------------------------------

TEST(LintLexer, BlanksCommentsAndLiteralsPreservingGeometry) {
  const std::string src =
      "int a = 1; // trailing std::rand()\n"
      "/* block\n   spanning lines with strcpy */\n"
      "const char* s = \"sprintf inside \\\" a string\";\n";
  const std::string code = StripCommentsAndStrings(src);
  ASSERT_EQ(code.size(), src.size());
  // Newlines survive in place so line numbers survive.
  for (std::size_t i = 0; i < src.size(); ++i) {
    if (src[i] == '\n') {
      EXPECT_EQ(code[i], '\n') << "at byte " << i;
    }
  }
  EXPECT_EQ(code.find("std::rand"), std::string::npos);
  EXPECT_EQ(code.find("strcpy"), std::string::npos);
  EXPECT_EQ(code.find("sprintf"), std::string::npos);
  EXPECT_NE(code.find("int a = 1;"), std::string::npos);
}

TEST(LintLexer, HandlesRawStringsAndDigitSeparators) {
  const std::string src =
      "auto r = R\"xy(mt19937 \"quoted\" )not-yet)xy\";\n"
      "int n = 1'000'000; char c = '\\'';\n"
      "int after = 2;\n";
  const std::string code = StripCommentsAndStrings(src);
  ASSERT_EQ(code.size(), src.size());
  EXPECT_EQ(code.find("mt19937"), std::string::npos);
  // The digit separator must not open a char literal and eat the rest.
  EXPECT_NE(code.find("1'000'000"), std::string::npos);
  EXPECT_NE(code.find("int after = 2;"), std::string::npos);
}

TEST(LintLexer, SplitLinesAddressesSourceLines) {
  const auto lines = SplitLines("a\nb\n");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "a");
  EXPECT_EQ(lines[1], "b");
  EXPECT_EQ(lines[2], "");
}

// --- determinism -------------------------------------------------------------

TEST(LintRules, DeterminismFiresOnEveryForbiddenSource) {
  const auto findings =
      LintFixture("determinism_fire.cpp", "src/sim/determinism_fire.cpp");
  // Wall clocks (x3), time(nullptr), clock(), random_device, mt19937 (x2),
  // srand, std::rand, std::thread, detach, std::async — at minimum.
  EXPECT_GE(CountRule(findings, "determinism"), 12u);
}

TEST(LintRules, DeterminismIgnoresCommentsStringsAndSanctionedSources) {
  const auto findings =
      LintFixture("determinism_clean.cpp", "src/sim/determinism_clean.cpp");
  EXPECT_EQ(CountRule(findings, "determinism"), 0u)
      << "first: " << (findings.empty() ? "" : findings[0].message);
}

TEST(LintRules, DeterminismRespectsPathAllowlist) {
  const auto findings = LintFixture(
      "determinism_fire.cpp", "bench/determinism_fire.cpp", {"bench/"});
  EXPECT_EQ(CountRule(findings, "determinism"), 0u);
}

TEST(LintRules, DeterminismFiresOnRawThreadingOutsideParallelRuntime) {
  const auto findings =
      LintFixture("determinism_thread_fire.cpp",
                  "src/sched/determinism_thread_fire.cpp",
                  {"src/util/parallel."});
  // std::thread (x3: vector decl, emplace loop's join target, detach case),
  // std::jthread, std::async — at minimum.
  EXPECT_GE(CountRule(findings, "determinism"), 4u);
}

TEST(LintRules, DeterminismAcceptsParallelRuntimeCallers) {
  // Consumers of ParallelFor/Reduce never name a thread primitive, so the
  // fixture must be clean even under an empty allowlist.
  const auto findings =
      LintFixture("determinism_thread_clean.cpp",
                  "src/sched/determinism_thread_clean.cpp");
  EXPECT_EQ(CountRule(findings, "determinism"), 0u)
      << "first: " << (findings.empty() ? "" : findings[0].message);
}

TEST(LintRules, DeterminismAllowsThreadsInsideParallelRuntime) {
  // The pool implementation itself is the one sanctioned std::thread user.
  const auto findings =
      LintFixture("determinism_thread_fire.cpp", "src/util/parallel.cpp",
                  {"src/util/parallel."});
  EXPECT_EQ(CountRule(findings, "determinism"), 0u);
}

TEST(LintRules, DeterminismFiresOnRecorderDumpCodeOutsideBoundary) {
  // Host-clock dump stamping is only sanctioned under the recorder/exporter
  // prefixes; the same code elsewhere in src/telemetry must fire.
  const auto findings = LintFixture(
      "determinism_recorder_dump_fire.cpp", "src/telemetry/flight_meta.cpp",
      {"bench/", "src/telemetry/export.", "src/telemetry/recorder."});
  // system_clock::now + two steady_clock::now reads — at minimum.
  EXPECT_GE(CountRule(findings, "determinism"), 3u);
}

TEST(LintRules, DeterminismSanctionsRecorderDumpBoundary) {
  const auto findings = LintFixture(
      "determinism_recorder_dump_fire.cpp", "src/telemetry/recorder.cpp",
      {"bench/", "src/telemetry/export.", "src/telemetry/recorder."});
  EXPECT_EQ(CountRule(findings, "determinism"), 0u);
}

TEST(LintRules, SimStampedDumpCodeIsCleanEverywhere) {
  // The sim-time-parameterized twin never names a host clock, so it passes
  // under an empty allowlist at any path.
  const auto findings =
      LintFixture("determinism_recorder_dump_clean.cpp",
                  "src/telemetry/flight_meta.cpp");
  EXPECT_EQ(CountRule(findings, "determinism"), 0u)
      << "first: " << (findings.empty() ? "" : findings[0].message);
}

TEST(LintRules, DeterminismSiteAnnotationWaivesOneLine) {
  std::vector<FileContext> files;
  files.push_back(MakeFileContext(
      "src/sim/annotated.cpp",
      "// LINT: allow(determinism, fixture: seeding doc example)\n"
      "auto t = std::chrono::steady_clock::now();\n"
      "\n"
      "\n"
      "\n"
      "auto u = std::chrono::steady_clock::now();\n"));
  const auto findings = RunRules(files, {});
  ASSERT_EQ(CountRule(findings, "determinism"), 1u);
  // Only the call outside the annotation's 3-line reach fires.
  EXPECT_EQ(findings[0].line, 6);
}

// --- layering ----------------------------------------------------------------

TEST(LintRules, LayeringFiresOnUpwardInclude) {
  const auto findings =
      LintFixture("layering_fire.cpp", "src/util/layering_fire.cpp");
  ASSERT_EQ(CountRule(findings, "layering"), 1u);
  const auto it = std::find_if(findings.begin(), findings.end(),
                               [](const Finding& f) { return f.rule == "layering"; });
  EXPECT_NE(it->message.find("sched"), std::string::npos);
}

TEST(LintRules, LayeringAcceptsDagEdgesAndIgnoresLiterals) {
  const auto findings =
      LintFixture("layering_clean.cpp", "src/sched/layering_clean.cpp");
  EXPECT_EQ(CountRule(findings, "layering"), 0u)
      << "first: " << (findings.empty() ? "" : findings[0].message);
}

// --- status-discard ----------------------------------------------------------

TEST(LintRules, StatusDiscardFiresOnBothDiscardForms) {
  const auto findings =
      LintFixture("status_discard_fire.cpp", "src/net/status_discard_fire.cpp");
  EXPECT_EQ(CountRule(findings, "status-discard"), 2u);
}

TEST(LintRules, StatusDiscardAcceptsAnnotatedAndNonStatusDiscards) {
  const auto findings = LintFixture("status_discard_clean.cpp",
                                    "src/net/status_discard_clean.cpp");
  EXPECT_EQ(CountRule(findings, "status-discard"), 0u)
      << "first: " << (findings.empty() ? "" : findings[0].message);
}

TEST(LintRules, StatusRegistrySpansTheWholeScannedSet) {
  // The callee is declared in one file and discarded in another: pass 1 must
  // collect Status-returning names globally, not per file.
  std::vector<FileContext> files;
  files.push_back(MakeFileContext(
      "src/net/decl.hpp", "#pragma once\nmyrtus::util::Status Flush();\n"));
  files.push_back(
      MakeFileContext("src/net/use.cpp", "void f() { (void)Flush(); }\n"));
  const auto findings = RunRules(files, {});
  EXPECT_EQ(CountRule(findings, "status-discard"), 1u);
}

// --- pragma-once -------------------------------------------------------------

TEST(LintRules, PragmaOnceFiresOnGuardlessHeader) {
  const auto findings =
      LintFixture("pragma_once_fire.hpp", "src/util/pragma_once_fire.hpp");
  EXPECT_EQ(CountRule(findings, "pragma-once"), 1u);
}

TEST(LintRules, PragmaOnceAcceptsCompliantHeaderAndSkipsSources) {
  EXPECT_EQ(CountRule(LintFixture("pragma_once_clean.hpp",
                                  "src/util/pragma_once_clean.hpp"),
                      "pragma-once"),
            0u);
  // .cpp files are exempt by definition.
  EXPECT_EQ(CountRule(LintFixture("hygiene_clean.cpp", "src/util/h.cpp"),
                      "pragma-once"),
            0u);
}

// --- hygiene-banned ----------------------------------------------------------

TEST(LintRules, HygieneFiresOnEveryBannedCall) {
  const auto findings =
      LintFixture("hygiene_fire.cpp", "src/util/hygiene_fire.cpp");
  // strcpy, strcat, sprintf, atoi, atof.
  EXPECT_EQ(CountRule(findings, "hygiene-banned"), 5u);
}

TEST(LintRules, HygieneIgnoresBoundedCallsCommentsAndSubstrings) {
  const auto findings =
      LintFixture("hygiene_clean.cpp", "src/util/hygiene_clean.cpp");
  EXPECT_EQ(CountRule(findings, "hygiene-banned"), 0u)
      << "first: " << (findings.empty() ? "" : findings[0].message);
}

// --- suppression parsing -----------------------------------------------------

TEST(LintSuppressions, ParsesRulePathLineAndReason) {
  auto parsed = ParseSuppressions(
      "# comment\n"
      "\n"
      "determinism bench/* -- timing harness\n"
      "status-discard src/net/transport.cpp:42 -- send acts like a timeout\n",
      "test");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].rule, "determinism");
  EXPECT_EQ((*parsed)[0].path_pattern, "bench/*");
  EXPECT_EQ((*parsed)[0].line, 0);
  EXPECT_EQ((*parsed)[1].line, 42);
  EXPECT_EQ((*parsed)[1].reason, "send acts like a timeout");
}

TEST(LintSuppressions, RejectsEntriesWithoutAReason) {
  EXPECT_FALSE(ParseSuppressions("determinism bench/*\n", "test").ok());
  EXPECT_FALSE(ParseSuppressions("determinism bench/* -- \n", "test").ok());
}

}  // namespace
}  // namespace myrtus::lint
