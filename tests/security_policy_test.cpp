// Table II policy engine, cost models, DH, and the secure channel.
#include <gtest/gtest.h>

#include "security/channel.hpp"
#include "security/cost_model.hpp"
#include "security/policy.hpp"
#include "util/rng.hpp"

namespace myrtus::security {
namespace {

using util::BytesOf;

TEST(Policy, LevelNamesRoundtrip) {
  for (SecurityLevel level :
       {SecurityLevel::kLow, SecurityLevel::kMedium, SecurityLevel::kHigh}) {
    auto parsed = ParseSecurityLevel(SecurityLevelName(level));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, level);
  }
  EXPECT_FALSE(ParseSecurityLevel("ultra").ok());
}

TEST(Policy, TableIiSuites) {
  const SecuritySuite& high = SuiteFor(SecurityLevel::kHigh);
  EXPECT_EQ(high.encryption, SymAlg::kAes256Gcm);
  EXPECT_EQ(high.authentication, AsymAlg::kDilithium3);
  EXPECT_EQ(high.key_exchange, AsymAlg::kKyber768);
  EXPECT_EQ(high.hashing, SymAlg::kSha512);

  const SecuritySuite& medium = SuiteFor(SecurityLevel::kMedium);
  EXPECT_EQ(medium.encryption, SymAlg::kAes128Gcm);
  EXPECT_EQ(medium.hashing, SymAlg::kSha256);

  const SecuritySuite& low = SuiteFor(SecurityLevel::kLow);
  EXPECT_EQ(low.encryption, SymAlg::kAscon128);
  EXPECT_EQ(low.hashing, SymAlg::kAsconHash);
}

TEST(Policy, SatisfiesIsUpwardCompatible) {
  EXPECT_TRUE(Satisfies(SecurityLevel::kHigh, SecurityLevel::kLow));
  EXPECT_TRUE(Satisfies(SecurityLevel::kHigh, SecurityLevel::kHigh));
  EXPECT_TRUE(Satisfies(SecurityLevel::kMedium, SecurityLevel::kLow));
  EXPECT_FALSE(Satisfies(SecurityLevel::kLow, SecurityLevel::kMedium));
  EXPECT_FALSE(Satisfies(SecurityLevel::kMedium, SecurityLevel::kHigh));
}

TEST(CostModel, PqcSignaturesAreLargerThanClassical) {
  EXPECT_GT(CostOf(AsymAlg::kDilithium3).artifact_bytes,
            CostOf(AsymAlg::kEcdsaP256).artifact_bytes);
  EXPECT_GT(CostOf(AsymAlg::kDilithium2).public_key_bytes,
            CostOf(AsymAlg::kEcdsaP256).public_key_bytes);
}

TEST(CostModel, HandshakeWireBytesOrderedByLevel) {
  // The paper's premise: higher levels carry heavier handshakes.
  EXPECT_LT(HandshakeWireBytes(SecurityLevel::kLow),
            HandshakeWireBytes(SecurityLevel::kHigh));
}

TEST(CostModel, LatencyScalesInverselyWithClock) {
  const double slow = HandshakeLatencyUs(SecurityLevel::kMedium, 0.5);
  const double fast = HandshakeLatencyUs(SecurityLevel::kMedium, 2.0);
  EXPECT_NEAR(slow / fast, 4.0, 1e-9);
}

TEST(CostModel, RecordLatencyMonotoneInPayload) {
  for (SecurityLevel level :
       {SecurityLevel::kLow, SecurityLevel::kMedium, SecurityLevel::kHigh}) {
    EXPECT_LT(RecordLatencyUs(level, 64, 1.0), RecordLatencyUs(level, 4096, 1.0));
  }
}

TEST(CostModel, LightweightCipherWinsOnConstrainedCore) {
  // ASCON beats AES-256 in software on small cores — the reason Table II
  // assigns it to the Low level.
  EXPECT_LT(RecordLatencyUs(SecurityLevel::kLow, 1024, 1.0),
            RecordLatencyUs(SecurityLevel::kHigh, 1024, 1.0));
}

TEST(CostModel, AllAlgsHaveNamesAndCosts) {
  for (auto alg : {AsymAlg::kRsa2048, AsymAlg::kEcdsaP256, AsymAlg::kDilithium2,
                   AsymAlg::kDilithium3, AsymAlg::kFalcon512, AsymAlg::kKyber512,
                   AsymAlg::kKyber768}) {
    EXPECT_NE(AsymAlgName(alg), "?");
    EXPECT_GT(CostOf(alg).public_key_bytes, 0u);
  }
}

TEST(SimDh, KeyAgreementCommutes) {
  util::Rng rng(2024);
  for (int i = 0; i < 50; ++i) {
    const auto a = SimDh::Generate(rng);
    const auto b = SimDh::Generate(rng);
    EXPECT_EQ(SimDh::Derive(b.public_key, a.private_key),
              SimDh::Derive(a.public_key, b.private_key));
  }
}

TEST(SimDh, ModPowBasics) {
  EXPECT_EQ(SimDh::ModPow(3, 0), 1u);
  EXPECT_EQ(SimDh::ModPow(3, 1), 3u);
  EXPECT_EQ(SimDh::ModPow(2, 10), 1024u);
}

class ChannelLevelTest : public ::testing::TestWithParam<SecurityLevel> {};

TEST_P(ChannelLevelTest, SealOpenAcrossEndpoints) {
  util::Rng rng(7);
  auto pair = SecureChannel::Establish(GetParam(), rng);
  ASSERT_TRUE(pair.ok());
  auto sealed = pair->initiator.Seal(BytesOf("offload request"));
  ASSERT_TRUE(sealed.ok());
  auto opened = pair->responder.Open(*sealed);
  ASSERT_TRUE(opened.ok()) << opened.status();
  EXPECT_EQ(util::StringOf(*opened), "offload request");

  // And the reverse direction with independent keys.
  auto reply = pair->responder.Seal(BytesOf("accepted"));
  ASSERT_TRUE(reply.ok());
  auto opened_reply = pair->initiator.Open(*reply);
  ASSERT_TRUE(opened_reply.ok());
  EXPECT_EQ(util::StringOf(*opened_reply), "accepted");
}

TEST_P(ChannelLevelTest, ReplayIsRejected) {
  util::Rng rng(8);
  auto pair = SecureChannel::Establish(GetParam(), rng);
  ASSERT_TRUE(pair.ok());
  auto first = pair->initiator.Seal(BytesOf("m1"));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(pair->responder.Open(*first).ok());
  // Replaying the same record must fail: the receiver's sequence advanced.
  EXPECT_FALSE(pair->responder.Open(*first).ok());
}

TEST_P(ChannelLevelTest, ReorderIsRejected) {
  util::Rng rng(9);
  auto pair = SecureChannel::Establish(GetParam(), rng);
  ASSERT_TRUE(pair.ok());
  auto m1 = pair->initiator.Seal(BytesOf("m1"));
  auto m2 = pair->initiator.Seal(BytesOf("m2"));
  ASSERT_TRUE(m1.ok() && m2.ok());
  EXPECT_FALSE(pair->responder.Open(*m2).ok());  // skipped m1
  EXPECT_TRUE(pair->responder.Open(*m1).ok());   // in-order still works
  EXPECT_TRUE(pair->responder.Open(*m2).ok());
}

TEST_P(ChannelLevelTest, TamperIsRejected) {
  util::Rng rng(10);
  auto pair = SecureChannel::Establish(GetParam(), rng);
  ASSERT_TRUE(pair.ok());
  auto sealed = pair->initiator.Seal(BytesOf("integrity matters"));
  ASSERT_TRUE(sealed.ok());
  auto tampered = *sealed;
  tampered[tampered.size() / 2] ^= 0x10;
  EXPECT_FALSE(pair->responder.Open(tampered).ok());
}

TEST_P(ChannelLevelTest, ManyRecordsSustained) {
  util::Rng rng(11);
  auto pair = SecureChannel::Establish(GetParam(), rng);
  ASSERT_TRUE(pair.ok());
  for (int i = 0; i < 200; ++i) {
    auto sealed = pair->initiator.Seal(BytesOf("record #" + std::to_string(i)));
    ASSERT_TRUE(sealed.ok());
    auto opened = pair->responder.Open(*sealed);
    ASSERT_TRUE(opened.ok()) << "record " << i;
  }
  EXPECT_EQ(pair->initiator.sent_records(), 200u);
  EXPECT_EQ(pair->responder.received_records(), 200u);
}

INSTANTIATE_TEST_SUITE_P(AllLevels, ChannelLevelTest,
                         ::testing::Values(SecurityLevel::kLow,
                                           SecurityLevel::kMedium,
                                           SecurityLevel::kHigh),
                         [](const auto& suite_info) {
                           return std::string(SecurityLevelName(suite_info.param));
                         });

}  // namespace
}  // namespace myrtus::security
