// Scheduling pipeline (filters/scorers), preemption, deployments,
// reconciliation on node failure, and the horizontal autoscaler.
#include <gtest/gtest.h>

#include "continuum/infrastructure.hpp"
#include "sched/controller.hpp"
#include "sched/scheduler.hpp"

namespace myrtus::sched {
namespace {

using continuum::BuildInfrastructure;
using continuum::Infrastructure;
using sim::SimTime;

struct Fixture {
  sim::Engine engine;
  Infrastructure infra;
  Cluster cluster;

  Fixture() : infra(BuildInfrastructure(engine, {})),
              cluster(engine, Scheduler::Default()) {
    for (auto& n : infra.nodes) cluster.AddNode(n.get());
  }
};

TEST(PodSpec, JsonRoundtrip) {
  PodSpec s;
  s.name = "detector";
  s.cpu_request = 1.5;
  s.mem_request_mb = 512;
  s.min_security = security::SecurityLevel::kHigh;
  s.needs_accelerator = true;
  s.priority = 7;
  s.layer_affinity = "edge";
  s.node_selector["zone"] = "a";
  PodSpec back = PodSpec::FromJson(s.ToJson());
  EXPECT_EQ(back.name, "detector");
  EXPECT_DOUBLE_EQ(back.cpu_request, 1.5);
  EXPECT_EQ(back.min_security, security::SecurityLevel::kHigh);
  EXPECT_TRUE(back.needs_accelerator);
  EXPECT_EQ(back.priority, 7);
  EXPECT_EQ(back.layer_affinity, "edge");
  EXPECT_EQ(back.node_selector.at("zone"), "a");
}

TEST(Scheduler, PlacesPodOnFeasibleNode) {
  Fixture f;
  PodSpec pod;
  pod.name = "web";
  pod.cpu_request = 1.0;
  auto node = f.cluster.BindPod(pod);
  ASSERT_TRUE(node.ok()) << node.status();
  EXPECT_NE(f.cluster.FindNodeState(*node), nullptr);
  EXPECT_EQ(f.cluster.RunningPods(), 1u);
}

TEST(Scheduler, SecurityLevelFiltersEdgeNodes) {
  Fixture f;
  PodSpec pod;
  pod.name = "secure-wl";
  pod.min_security = security::SecurityLevel::kHigh;
  auto node = f.cluster.BindPod(pod);
  ASSERT_TRUE(node.ok());
  continuum::ComputeNode* n = f.infra.FindNode(*node);
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(n->security_level(), security::SecurityLevel::kHigh);
  EXPECT_NE(n->layer(), continuum::Layer::kEdge);  // edge is certified Low
}

TEST(Scheduler, AcceleratorRequirementBindsToFabricNode) {
  Fixture f;
  PodSpec pod;
  pod.name = "dsp-kernel";
  pod.needs_accelerator = true;
  pod.layer_affinity = "edge";
  auto node = f.cluster.BindPod(pod);
  ASSERT_TRUE(node.ok()) << node.status();
  NodeState* state = f.cluster.FindNodeState(*node);
  EXPECT_TRUE(state->HasAccelerator());
}

TEST(Scheduler, LayerAffinityHardConstraint) {
  Fixture f;
  PodSpec pod;
  pod.name = "analytics";
  pod.layer_affinity = "fog";
  auto node = f.cluster.BindPod(pod);
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(f.infra.FindNode(*node)->layer(), continuum::Layer::kFog);
}

TEST(Scheduler, NodeSelectorMatchesLabels) {
  Fixture f;
  ASSERT_TRUE(f.cluster.SetNodeLabel("edge-0", "camera", "true").ok());
  PodSpec pod;
  pod.name = "vision";
  pod.node_selector["camera"] = "true";
  auto node = f.cluster.BindPod(pod);
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(*node, "edge-0");
}

TEST(Scheduler, InfeasiblePodReportsReasons) {
  Fixture f;
  PodSpec pod;
  pod.name = "impossible";
  pod.needs_accelerator = true;
  pod.layer_affinity = "cloud";  // cloud has no fabric accelerators
  auto node = f.cluster.BindPod(pod);
  ASSERT_FALSE(node.ok());
  EXPECT_EQ(node.status().code(), util::StatusCode::kResourceExhausted);
  EXPECT_NE(node.status().message().find("impossible"), std::string::npos);
  EXPECT_EQ(f.cluster.PendingPods(), 1u);
}

TEST(Scheduler, CordonExcludesNode) {
  Fixture f;
  PodSpec pod;
  pod.name = "vision";
  pod.node_selector["camera"] = "true";
  ASSERT_TRUE(f.cluster.SetNodeLabel("edge-0", "camera", "true").ok());
  f.cluster.Cordon("edge-0", true);
  EXPECT_FALSE(f.cluster.BindPod(pod).ok());
  f.cluster.Cordon("edge-0", false);
  f.cluster.Reconcile();  // pending pod retried
  const PodView p = f.cluster.FindPod("vision");
  ASSERT_TRUE(p.valid());
  EXPECT_EQ(p.phase(), PodPhase::kRunning);
}

TEST(Scheduler, LeastAllocatedSpreadsLoad) {
  Fixture f;
  // Bind several identical edge pods; they should not all land on one node.
  std::map<std::string, int> per_node;
  for (int i = 0; i < 4; ++i) {
    PodSpec pod;
    pod.name = "spread-" + std::to_string(i);
    pod.layer_affinity = "edge";
    pod.cpu_request = 0.5;
    auto node = f.cluster.BindPod(pod);
    ASSERT_TRUE(node.ok());
    per_node[*node]++;
  }
  EXPECT_GE(per_node.size(), 2u);
}

TEST(Scheduler, ResourceExhaustionAfterManyBinds) {
  Fixture f;
  int bound = 0;
  for (int i = 0; i < 10000; ++i) {
    PodSpec pod;
    pod.name = "filler-" + std::to_string(i);
    pod.cpu_request = 4.0;
    pod.mem_request_mb = 256;
    if (f.cluster.BindPod(pod).ok()) {
      ++bound;
    } else {
      break;
    }
  }
  EXPECT_GT(bound, 10);
  EXPECT_LT(bound, 10000);
}

TEST(Preemption, HighPriorityEvictsLow) {
  Fixture f;
  // Saturate edge-0 (label-pinned) with low-priority pods.
  ASSERT_TRUE(f.cluster.SetNodeLabel("edge-0", "pin", "1").ok());
  const double cap = f.cluster.FindNodeState("edge-0")->cpu_capacity();
  PodSpec filler;
  filler.cpu_request = cap / 2;
  filler.mem_request_mb = 64;
  filler.priority = 1;
  filler.node_selector["pin"] = "1";
  filler.name = "low-a";
  ASSERT_TRUE(f.cluster.BindPod(filler).ok());
  filler.name = "low-b";
  ASSERT_TRUE(f.cluster.BindPod(filler).ok());

  PodSpec vip;
  vip.name = "vip";
  vip.cpu_request = cap / 2;
  vip.mem_request_mb = 64;
  vip.priority = 10;
  vip.node_selector["pin"] = "1";
  EXPECT_FALSE(f.cluster.BindPod(vip).ok());
  // LINT: discard(cleanup-if-present before the preemption attempt)
  (void)f.cluster.DeletePod("vip");
  auto node = f.cluster.BindPodWithPreemption(vip);
  ASSERT_TRUE(node.ok()) << node.status();
  EXPECT_EQ(*node, "edge-0");
  EXPECT_EQ(f.cluster.evictions(), 1u);
  // Exactly one low pod was sacrificed.
  int low_running = 0;
  for (const char* n : {"low-a", "low-b"}) {
    if (f.cluster.FindPod(n).phase() == PodPhase::kRunning) ++low_running;
  }
  EXPECT_EQ(low_running, 1);
}

TEST(Preemption, EqualPriorityNeverPreempts) {
  Fixture f;
  ASSERT_TRUE(f.cluster.SetNodeLabel("edge-0", "pin", "1").ok());
  const double cap = f.cluster.FindNodeState("edge-0")->cpu_capacity();
  PodSpec a;
  a.name = "a";
  a.cpu_request = cap;
  a.mem_request_mb = 64;
  a.priority = 5;
  a.node_selector["pin"] = "1";
  ASSERT_TRUE(f.cluster.BindPod(a).ok());
  PodSpec b = a;
  b.name = "b";
  EXPECT_FALSE(f.cluster.BindPodWithPreemption(b).ok());
}

TEST(Deployment, CreatesReplicas) {
  Fixture f;
  Deployment dep;
  dep.name = "detector";
  dep.pod_template.cpu_request = 0.5;
  dep.pod_template.mem_request_mb = 64;
  dep.replicas = 3;
  f.cluster.ApplyDeployment(dep);
  EXPECT_EQ(f.cluster.DeploymentReadyReplicas("detector"), 3);
  ASSERT_TRUE(f.cluster.ScaleDeployment("detector", 1).ok());
  EXPECT_EQ(f.cluster.DeploymentReadyReplicas("detector"), 1);
  ASSERT_TRUE(f.cluster.ScaleDeployment("detector", 5).ok());
  EXPECT_EQ(f.cluster.DeploymentReadyReplicas("detector"), 5);
  EXPECT_FALSE(f.cluster.ScaleDeployment("ghost", 1).ok());
}

TEST(Deployment, NodeFailureTriggersRescheduling) {
  Fixture f;
  Deployment dep;
  dep.name = "svc";
  dep.pod_template.cpu_request = 0.25;
  dep.pod_template.mem_request_mb = 32;
  dep.replicas = 4;
  f.cluster.ApplyDeployment(dep);
  ASSERT_EQ(f.cluster.DeploymentReadyReplicas("svc"), 4);

  // Fail a node hosting at least one replica.
  std::string victim;
  for (auto& n : f.infra.nodes) {
    if (!f.cluster.PodsOnNode(n->id()).empty()) {
      victim = n->id();
      break;
    }
  }
  ASSERT_FALSE(victim.empty());
  f.infra.FindNode(victim)->SetUp(false);
  f.cluster.Reconcile();
  EXPECT_EQ(f.cluster.DeploymentReadyReplicas("svc"), 4)
      << "replicas must be rebuilt on surviving nodes";
  for (const PodView& p : f.cluster.PodsOnNode(victim)) {
    FAIL() << "pod still on failed node: " << p.name();
  }
  EXPECT_GT(f.cluster.evictions(), 0u);
}

TEST(Deployment, ReconcileLoopRunsPeriodically) {
  Fixture f;
  Deployment dep;
  dep.name = "svc";
  dep.pod_template.cpu_request = 0.25;
  dep.replicas = 2;
  f.cluster.ApplyDeployment(dep);
  f.cluster.StartReconcileLoop(SimTime::Millis(100));
  f.infra.FindNode("edge-0")->SetUp(false);  // may or may not host pods
  f.engine.RunUntil(SimTime::Seconds(1));
  EXPECT_EQ(f.cluster.DeploymentReadyReplicas("svc"), 2);
  f.cluster.StopReconcileLoop();
}

TEST(Autoscaler, TracksLoadSignal) {
  Fixture f;
  double demand = 0.5;
  Deployment dep;
  dep.name = "elastic";
  dep.pod_template.cpu_request = 1.0;
  dep.replicas = 1;
  dep.min_replicas = 1;
  dep.max_replicas = 6;
  // LINT: deferred-capture-ok(demand) -- the signal only runs inside the
  // Reconcile() calls below, while demand is alive; both die with the test
  dep.load_signal = [&demand] { return demand; };
  f.cluster.ApplyDeployment(dep);
  EXPECT_EQ(f.cluster.DeploymentReadyReplicas("elastic"), 1);

  demand = 4.2;  // needs ceil(4.2/1.0) = 5 replicas
  f.cluster.Reconcile();
  EXPECT_EQ(f.cluster.DeploymentReadyReplicas("elastic"), 5);

  demand = 40.0;  // clamped at max
  f.cluster.Reconcile();
  EXPECT_EQ(f.cluster.DeploymentReadyReplicas("elastic"), 6);

  demand = 0.0;  // clamped at min
  f.cluster.Reconcile();
  EXPECT_EQ(f.cluster.DeploymentReadyReplicas("elastic"), 1);
}

}  // namespace
}  // namespace myrtus::sched
