// Bytes helpers, RNG determinism/distribution, and statistics utilities.
#include <gtest/gtest.h>

#include <cmath>

#include "util/bytes.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace myrtus::util {
namespace {

TEST(Bytes, HexRoundtrip) {
  const Bytes b = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(ToHex(b), "0001abff");
  auto back = FromHex("0001abff");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, b);
}

TEST(Bytes, FromHexAcceptsUppercase) {
  auto b = FromHex("DEADBEEF");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(ToHex(*b), "deadbeef");
}

TEST(Bytes, FromHexRejectsBadInput) {
  EXPECT_FALSE(FromHex("abc").ok());   // odd length
  EXPECT_FALSE(FromHex("zz").ok());    // non-hex
}

TEST(Bytes, BigEndianLoadStore) {
  std::uint8_t buf[8];
  StoreBe64(0x0102030405060708ULL, buf);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[7], 0x08);
  EXPECT_EQ(LoadBe64(buf), 0x0102030405060708ULL);
  EXPECT_EQ(LoadBe32(buf), 0x01020304u);
}

TEST(Bytes, ConstantTimeEqual) {
  EXPECT_TRUE(ConstantTimeEqual({1, 2, 3}, {1, 2, 3}));
  EXPECT_FALSE(ConstantTimeEqual({1, 2, 3}, {1, 2, 4}));
  EXPECT_FALSE(ConstantTimeEqual({1, 2}, {1, 2, 3}));
  EXPECT_TRUE(ConstantTimeEqual({}, {}));
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, StreamNamesDecorrelate) {
  Rng a(123, "net");
  Rng b(123, "sched");
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, BoundedStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.NextBounded(13), 13u);
  }
  EXPECT_EQ(r.NextBounded(0), 0u);
  EXPECT_EQ(r.NextBounded(1), 0u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(11);
  for (int i = 0; i < 10000; ++i) {
    const double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, GaussianMoments) {
  Rng r(42);
  RunningStat s;
  for (int i = 0; i < 200000; ++i) s.Add(r.NextGaussian());
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng r(43);
  RunningStat s;
  for (int i = 0; i < 100000; ++i) s.Add(r.NextExponential(4.0));
  EXPECT_NEAR(s.mean(), 0.25, 0.01);
}

TEST(Rng, PoissonMeanSmallAndLarge) {
  Rng r(44);
  RunningStat small, large;
  for (int i = 0; i < 50000; ++i) small.Add(static_cast<double>(r.NextPoisson(3.0)));
  for (int i = 0; i < 50000; ++i) large.Add(static_cast<double>(r.NextPoisson(120.0)));
  EXPECT_NEAR(small.mean(), 3.0, 0.1);
  EXPECT_NEAR(large.mean(), 120.0, 1.0);
}

TEST(RunningStat, MomentsMatchKnownValues) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, MergeEqualsSingleStream) {
  Rng r(5);
  RunningStat all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = r.NextGaussian();
    all.Add(x);
    (i % 2 == 0 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Samples, Quantiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.Add(i);
  EXPECT_NEAR(s.p50(), 50.5, 1e-9);
  EXPECT_NEAR(s.Quantile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(s.max(), 100.0, 1e-9);
  EXPECT_NEAR(s.p95(), 95.05, 0.01);
}

TEST(Samples, EmptyIsZero) {
  Samples s;
  EXPECT_EQ(s.p50(), 0.0);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(Log2Histogram, BucketsByPowerOfTwo) {
  Log2Histogram h;
  h.Add(0.5);   // bucket 0: [0,1)
  h.Add(1.0);   // bucket 1: [1,2)
  h.Add(3.0);   // bucket 2: [2,4)
  h.Add(1000);  // [512,1024)
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[2], 1u);
  EXPECT_EQ(h.buckets()[10], 1u);
}

TEST(Fnv1a64, StableAndDistinct) {
  EXPECT_EQ(Fnv1a64("abc"), Fnv1a64("abc"));
  EXPECT_NE(Fnv1a64("abc"), Fnv1a64("abd"));
  EXPECT_NE(Fnv1a64(""), Fnv1a64("a"));
}

}  // namespace
}  // namespace myrtus::util
