// Regression tests for control-plane accounting bugs: unsigned underflow in
// the free-memory math, NodeState/ComputeNode memory-ledger drift, and
// preemption stranding its victims when the post-eviction rebind fails.
// (The energy-unit regression is covered in mirto_agent_test/kb_store_test.)
#include <gtest/gtest.h>

#include "continuum/infrastructure.hpp"
#include "sched/controller.hpp"
#include "sched/scheduler.hpp"

namespace myrtus::sched {
namespace {

using continuum::BuildInfrastructure;
using continuum::Infrastructure;

struct Fixture {
  sim::Engine engine;
  Infrastructure infra;
  Cluster cluster;

  Fixture()
      : infra(BuildInfrastructure(engine, {})),
        cluster(engine, Scheduler::Default()) {
    for (auto& n : infra.nodes) cluster.AddNode(n.get());
  }
};

void ExpectLedgersEqual(Cluster& cluster) {
  for (NodeState* ns : cluster.NodeStates()) {
    EXPECT_EQ(ns->mem_allocated_mb(), ns->node->mem_allocated_mb())
        << ns->node->id();
  }
}

// A node whose allocation exceeds its capacity (reflected remote usage can do
// this) used to report ~2^64 MB free — `capacity - allocated` on unsigned
// integers wraps — so every pod "fit" on the fullest node in the fleet.
TEST(Regression, OverallocatedNodeReportsZeroFreeMemoryAndRejectsPods) {
  Fixture f;
  NodeState* edge = f.cluster.FindNodeState("edge-0");
  ASSERT_NE(edge, nullptr);
  ASSERT_TRUE(f.cluster.SetNodeLabel("edge-0", "pin", "1").ok());
  ASSERT_TRUE(
      f.cluster
          .SetReflectedMemAllocation("edge-0", edge->mem_capacity_mb() + 64)
          .ok());
  EXPECT_EQ(edge->MemFreeMb(), 0u);

  PodSpec pod;
  pod.name = "squeeze";
  pod.cpu_request = 0.1;
  pod.mem_request_mb = 1;
  pod.node_selector["pin"] = "1";

  for (Cluster::SchedulePath path :
       {Cluster::SchedulePath::kIndexed, Cluster::SchedulePath::kScan}) {
    f.cluster.set_schedule_path(path);
    auto bound = f.cluster.BindPod(pod);
    ASSERT_FALSE(bound.ok());
    EXPECT_EQ(bound.status().code(), util::StatusCode::kResourceExhausted);
    EXPECT_NE(bound.status().message().find("insufficient memory"),
              std::string::npos)
        << bound.status();
    // LINT: discard(cleanup of the pod left pending by the failed bind)
    (void)f.cluster.DeletePod(pod.name);
  }

  auto directed = f.cluster.BindPodToNode(pod, "edge-0");
  ASSERT_FALSE(directed.ok());
  EXPECT_EQ(directed.status().code(), util::StatusCode::kResourceExhausted);
}

// Releases used to debit the scheduler ledger and the ComputeNode ledger by
// independently clamped amounts; once the two disagreed (a reflected
// overwrite landing while pods were committed), the drift was permanent.
// Releases now refund exactly the amounts recorded at commit time on both.
TEST(Regression, LedgersStayEqualWhenReflectionLandsMidFlight) {
  Fixture f;
  NodeState* edge = f.cluster.FindNodeState("edge-0");
  ASSERT_NE(edge, nullptr);

  PodSpec pod;
  pod.name = "tenant";
  pod.cpu_request = 0.2;
  pod.mem_request_mb = 256;
  ASSERT_TRUE(f.cluster.BindPodToNode(pod, "edge-0").ok());
  ExpectLedgersEqual(f.cluster);

  // External reflection overwrites the scheduler ledger below the committed
  // amount, then the pod goes away.
  ASSERT_TRUE(f.cluster.SetReflectedMemAllocation("edge-0", 10).ok());
  ASSERT_TRUE(f.cluster.DeletePod("tenant").ok());

  // Both ledgers clamp to zero; neither strands the 256 MB.
  EXPECT_EQ(edge->mem_allocated_mb(), 0u);
  EXPECT_EQ(edge->node->mem_allocated_mb(), 0u);

  // The node is fully usable again: a pod sized to the whole node fits.
  PodSpec big;
  big.name = "big";
  big.cpu_request = 0.1;
  big.mem_request_mb = edge->mem_capacity_mb();
  auto rebound = f.cluster.BindPodToNode(big, "edge-0");
  ASSERT_TRUE(rebound.ok()) << rebound.status();
  ExpectLedgersEqual(f.cluster);
}

// Preemption used to evict victims, fail the post-eviction rebind (a filter
// the planner cannot model rejected the preemptor), and walk away — the
// victims stayed evicted although nothing was gained. They are now rolled
// back onto their original nodes with resources re-committed.
TEST(Regression, PreemptionRollsBackVictimsWhenRebindFails) {
  sim::Engine engine;
  Infrastructure infra = BuildInfrastructure(engine, {});
  Scheduler sched = Scheduler::Default();
  // Opaque filter the preemption planner cannot reason about: it rejects the
  // preemptor by name, so the post-eviction rebind is guaranteed to fail.
  sched.AddFilter([](const PodSpec& pod,
                     const NodeState&) -> std::optional<std::string> {
    if (pod.name == "vip") return "vip quarantined";
    return std::nullopt;
  });
  Cluster cluster(engine, std::move(sched));
  for (auto& n : infra.nodes) cluster.AddNode(n.get());
  ASSERT_TRUE(cluster.SetNodeLabel("edge-0", "pin", "1").ok());
  NodeState* edge = cluster.FindNodeState("edge-0");
  ASSERT_NE(edge, nullptr);
  const double cap = edge->cpu_capacity();

  PodSpec filler;
  filler.cpu_request = cap / 2;
  filler.mem_request_mb = 8;
  filler.priority = 0;
  filler.node_selector["pin"] = "1";
  filler.name = "low-a";
  ASSERT_TRUE(cluster.BindPod(filler).ok());
  filler.name = "low-b";
  ASSERT_TRUE(cluster.BindPod(filler).ok());
  ASSERT_EQ(cluster.RunningPods(), 2u);

  PodSpec vip;
  vip.name = "vip";
  vip.cpu_request = cap / 2;
  vip.mem_request_mb = 8;
  vip.priority = 10;
  vip.node_selector["pin"] = "1";
  auto attempt = cluster.BindPodWithPreemption(vip);
  ASSERT_FALSE(attempt.ok());

  // Nothing was gained, so nothing may be lost: every victim is back on its
  // node with resources re-committed, and no eviction was counted.
  for (const char* name : {"low-a", "low-b"}) {
    const PodView p = cluster.FindPod(name);
    ASSERT_TRUE(p.valid()) << name;
    EXPECT_EQ(p.phase(), PodPhase::kRunning) << name;
    EXPECT_EQ(p.node_id(), "edge-0") << name;
  }
  EXPECT_EQ(cluster.evictions(), 0u);
  EXPECT_EQ(cluster.RunningPods(), 2u);
  EXPECT_NEAR(edge->cpu_allocated(), cap, 1e-9);
  EXPECT_EQ(edge->mem_allocated_mb(), edge->node->mem_allocated_mb());

  // The preemptor stays pending (a later Reconcile may retry it).
  const PodView vip_pod = cluster.FindPod("vip");
  ASSERT_TRUE(vip_pod.valid());
  EXPECT_EQ(vip_pod.phase(), PodPhase::kPending);
  EXPECT_EQ(cluster.PendingPods(), 1u);
}

}  // namespace
}  // namespace myrtus::sched
