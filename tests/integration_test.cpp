// Full-stack integration: the three pillars plus the gateway, monitoring,
// image registry, and lifecycle management working together over one
// simulated continuum — the closest thing to the paper's M18 "partial
// integration of all the pillars' technologies".
#include <gtest/gtest.h>

#include "continuum/monitor.hpp"
#include "mirto/engine.hpp"
#include "net/gateway.hpp"
#include "sched/image_registry.hpp"
#include "usecases/scenario.hpp"

namespace myrtus {
namespace {

using continuum::Layer;
using sim::SimTime;

TEST(Integration, FullStackLifecycle) {
  // ---- Pillar 1: infrastructure, network, gateway, monitoring, registry.
  sim::Engine engine;
  continuum::Infrastructure infra = continuum::BuildInfrastructure(engine, {});
  net::Topology topo = infra.topology;
  topo.AddBidirectional("dpe-tool", "gw-0", SimTime::Millis(1), 1e9);
  net::Network network(engine, std::move(topo), 2026);

  kb::Store kb_store;
  kb::ResourceRegistry registry(kb_store);
  continuum::MonitoringService monitor(engine, infra, registry);
  monitor.Start(SimTime::Millis(200));

  sched::ImageRegistry images;
  const util::Bytes base_layer = util::BytesOf(std::string(1 << 16, 'L'));
  ASSERT_TRUE(images.Push("myrtus/telerehab", "v1",
                          {base_layer, util::BytesOf("pose-v1")}).ok());

  // ---- Pillar 3: DPE designs the application from the scenario model.
  usecases::Scenario scenario = usecases::TelerehabScenario();
  dpe::DpePipeline dpe_pipeline(5);
  auto design = dpe_pipeline.Run(scenario.dpe_input);
  ASSERT_TRUE(design.ok()) << design.status();
  ASSERT_TRUE(design->deadline_met);
  EXPECT_EQ(design->effective_security_level, "high");

  // ---- Pillar 2: agent deploys through the authenticated API.
  sched::Cluster cluster(engine, sched::Scheduler::Default());
  for (auto& n : infra.nodes) cluster.AddNode(n.get());
  mirto::AgentConfig config;
  config.host = "gw-0";  // agent co-located with the gateway
  mirto::MirtoAgent agent(network, cluster, infra, kb_store,
                          mirto::AuthModule(util::BytesOf("int-secret")),
                          config);
  agent.Start();

  mirto::AuthModule client(util::BytesOf("int-secret"));
  bool deployed = false;
  network.Call("dpe-tool", "gw-0", "mirto.deploy",
               util::Json::MakeObject()
                   .Set("token", client.IssueToken("dpe-tool"))
                   .Set("csar", design->package.Pack()),
               [&](util::StatusOr<util::Json> r) { deployed = r.ok(); });
  engine.RunUntil(SimTime::Seconds(1));
  ASSERT_TRUE(deployed);
  const std::size_t pods_v1 = cluster.RunningPods();
  ASSERT_GT(pods_v1, 0u);
  ASSERT_EQ(agent.DeployedApps(), std::vector<std::string>{"telerehab"});

  // Image pulls for each hosting node dedup the shared base layer.
  std::set<std::string> hosting_nodes;
  for (const auto& [name, record] : agent.registry().ListWorkloads()) {
    hosting_nodes.insert(record.at("node").as_string());
  }
  std::uint64_t transferred = 0;
  for (const std::string& node : hosting_nodes) {
    auto receipt = images.Pull("myrtus/telerehab:v1", node);
    ASSERT_TRUE(receipt.ok());
    transferred += receipt->bytes_transferred;
  }
  EXPECT_GT(transferred, 0u);

  // ---- Update in place (CH2: dynamic update): re-deploying the same app
  // replaces its pods rather than duplicating them.
  bool updated = false;
  network.Call("dpe-tool", "gw-0", "mirto.deploy",
               util::Json::MakeObject()
                   .Set("token", client.IssueToken("dpe-tool"))
                   .Set("csar", design->package.Pack()),
               [&](util::StatusOr<util::Json> r) { updated = r.ok(); });
  engine.RunUntil(engine.Now() + SimTime::Seconds(1));
  ASSERT_TRUE(updated);
  EXPECT_EQ(cluster.RunningPods(), pods_v1) << "update must not duplicate pods";

  // ---- Run traffic; the monitor sees utilization; KB fills up.
  sched::Cluster stage_cluster(engine, sched::Scheduler::Default());
  for (auto& n : infra.nodes) stage_cluster.AddNode(n.get());
  ASSERT_TRUE(usecases::DeployScenario(scenario, stage_cluster, 3).ok());
  usecases::RequestPipeline pipeline(network, infra, stage_cluster, scenario);
  pipeline.StartStream(engine.Now() + SimTime::Seconds(3), 9);
  engine.RunUntil(engine.Now() + SimTime::Seconds(5));
  EXPECT_GT(pipeline.kpis().completed, 20u);
  EXPECT_FALSE(registry.GetTelemetry("edge-1", "utilization").empty());

  // ---- Undeploy through the API; the registry forgets the workloads.
  bool undeployed = false;
  network.Call("dpe-tool", "gw-0", "mirto.undeploy",
               util::Json::MakeObject()
                   .Set("token", client.IssueToken("dpe-tool"))
                   .Set("app", "telerehab"),
               [&](util::StatusOr<util::Json> r) { undeployed = r.ok(); });
  engine.RunUntil(engine.Now() + SimTime::Seconds(1));
  ASSERT_TRUE(undeployed);
  EXPECT_EQ(cluster.RunningPods(), 0u);
  EXPECT_TRUE(agent.registry().ListWorkloads().empty());
  EXPECT_TRUE(agent.DeployedApps().empty());

  // Undeploying twice is a clean NOT_FOUND.
  bool second_failed = false;
  network.Call("dpe-tool", "gw-0", "mirto.undeploy",
               util::Json::MakeObject()
                   .Set("token", client.IssueToken("dpe-tool"))
                   .Set("app", "telerehab"),
               [&](util::StatusOr<util::Json> r) {
                 second_failed =
                     r.status().code() == util::StatusCode::kNotFound;
               });
  engine.RunUntil(engine.Now() + SimTime::Seconds(1));
  EXPECT_TRUE(second_failed);
  agent.Stop();
  monitor.Stop();
}

TEST(Integration, GatewayFeedsMonitoredContinuum) {
  // Sensors -> gateway aggregation -> fog analytics host, while monitoring
  // watches the fleet: the §III data-management picture.
  sim::Engine engine;
  continuum::Infrastructure infra = continuum::BuildInfrastructure(engine, {});
  net::Topology topo = infra.topology;
  for (int s = 0; s < 4; ++s) {
    topo.AddBidirectional("sensor-" + std::to_string(s), "gw-0",
                          SimTime::Millis(1), 1e7);
  }
  net::Network network(engine, std::move(topo), 77);
  net::SmartGateway gateway(network, "gw-0");
  gateway.EnableAggregation("reading", "fmdc-0", SimTime::Millis(250), 32);

  int batches = 0;
  std::size_t readings = 0;
  network.Attach("fmdc-0", [&](const net::Message& m) {
    if (m.kind == "gw.batch") {
      ++batches;
      readings += m.payload.at("items").items().size();
    }
  });

  // 4 sensors x 25 readings.
  for (int round = 0; round < 25; ++round) {
    engine.ScheduleAfter(SimTime::Millis(20 * round), [&network, round] {
      for (int s = 0; s < 4; ++s) {
        net::Message m;
        m.from = "sensor-" + std::to_string(s);
        m.to = "gw-0";
        m.kind = "reading";
        m.protocol = net::Protocol::kCoap;
        m.payload = util::Json::MakeObject().Set("seq", round);
        m.body_bytes = 48;
        util::MustOk(network.Send(std::move(m)));
      }
    });
  }
  engine.RunUntil(SimTime::Seconds(2));
  EXPECT_EQ(readings, 100u) << "no reading lost through aggregation";
  EXPECT_LT(batches, 20) << "batching must compress 100 messages";
  EXPECT_GT(batches, 0);
}

TEST(Integration, NegotiatedDeployThenLayerFailover) {
  // Deploy via contract-net, then kill the fog layer: MIRTO's per-layer
  // reconcilers move what they can; the fog pods land back when it recovers.
  sim::Engine engine;
  continuum::Infrastructure infra = continuum::BuildInfrastructure(engine, {});
  net::Network network(engine, infra.topology, 31);
  mirto::MirtoEngine mirto(network, infra);
  mirto.Start();
  engine.RunUntil(SimTime::Millis(400));

  tosca::ServiceTemplate tpl;
  tpl.tosca_version = "tosca_2_0";
  for (int i = 0; i < 4; ++i) {
    tosca::NodeTemplate nt;
    nt.name = "svc" + std::to_string(i);
    nt.type = std::string(tosca::kTypeWorkload);
    nt.properties =
        util::Json::MakeObject().Set("cpu", 0.5).Set("memory_mb", 64);
    tpl.node_templates[nt.name] = nt;
  }
  bool done = false;
  mirto.DeployNegotiated(tosca::CsarPackage::Create(tpl),
                         [&](util::Status s) { done = s.ok(); });
  engine.RunUntil(engine.Now() + SimTime::Seconds(4));
  ASSERT_TRUE(done);
  EXPECT_EQ(mirto.TotalRunningPods(), 4u);

  // Fail every fog node.
  for (continuum::ComputeNode* n : infra.NodesInLayer(Layer::kFog)) {
    n->SetUp(false);
  }
  engine.RunUntil(engine.Now() + SimTime::Seconds(3));
  // Pods on the fog layer were evicted; its cluster reports them pending.
  EXPECT_EQ(mirto.cluster(Layer::kFog).RunningPods(), 0u);

  for (continuum::ComputeNode* n : infra.NodesInLayer(Layer::kFog)) {
    n->SetUp(true);
  }
  engine.RunUntil(engine.Now() + SimTime::Seconds(3));
  EXPECT_EQ(mirto.TotalRunningPods(), 4u) << "fleet healed after recovery";
  mirto.Stop();
}

}  // namespace
}  // namespace myrtus
