// MIRTO agent: authentication, API daemon, MAPE-K loop reactions, LIQO
// peering, and multi-agent contract-net negotiation.
#include <gtest/gtest.h>

#include "dpe/pipeline.hpp"
#include "mirto/agent.hpp"
#include "mirto/engine.hpp"
#include "mirto/peering.hpp"

namespace myrtus::mirto {
namespace {

using continuum::BuildInfrastructure;
using continuum::Infrastructure;
using continuum::Layer;
using sim::SimTime;

TEST(AuthModule, TokenRoundtrip) {
  AuthModule auth(util::BytesOf("secret"));
  const std::string token = auth.IssueToken("dpe-tool");
  auto principal = auth.Authenticate(token);
  ASSERT_TRUE(principal.ok());
  EXPECT_EQ(*principal, "dpe-tool");
}

TEST(AuthModule, RejectsForgedAndMalformedTokens) {
  AuthModule auth(util::BytesOf("secret"));
  AuthModule other(util::BytesOf("other-secret"));
  EXPECT_FALSE(auth.Authenticate("no-dot-token").ok());
  EXPECT_FALSE(auth.Authenticate("user.deadbeef").ok());
  EXPECT_FALSE(auth.Authenticate(other.IssueToken("user")).ok());
  // Principal swap invalidates the MAC.
  std::string token = auth.IssueToken("alice");
  token.replace(0, 5, "mallo");
  EXPECT_FALSE(auth.Authenticate(token).ok());
}

tosca::CsarPackage TelerehabPackage() {
  dpe::DpeInput input;
  input.app_name = "telerehab";
  util::MustOk(input.graph.AddActor({"pose", 30'000'000, 4096, true, 0.8}));
  util::MustOk(input.graph.AddActor({"score", 5'000'000, 1024, false, 0.2}));
  util::MustOk(input.graph.AddActor({"feedback", 1'000'000, 512, false, 0.0}));
  util::MustOk(input.graph.AddActor({"archive", 2'000'000, 65536, false, 0.0}));
  util::MustOk(input.graph.AddChannel({"pose", "score", 1, 1, 8192}));
  util::MustOk(input.graph.AddChannel({"score", "feedback", 1, 1, 256}));
  util::MustOk(input.graph.AddChannel({"score", "archive", 1, 1, 4096}));
  input.deadline_ms = 500;
  input.security_level = "medium";
  dpe::DpePipeline pipeline(5);
  auto out = pipeline.Run(input);
  EXPECT_TRUE(out.ok());
  return out->package;
}

struct AgentFixture {
  sim::Engine engine;
  Infrastructure infra;
  std::unique_ptr<net::Network> net;
  sched::Cluster cluster;
  kb::Store store;
  std::unique_ptr<MirtoAgent> agent;

  AgentFixture() : infra(BuildInfrastructure(engine, {})),
                   cluster(engine, sched::Scheduler::Default()) {
    net::Topology topo = infra.topology;
    topo.AddBidirectional("mirto-agent", "gw-0", SimTime::Micros(100), 1e9);
    topo.AddBidirectional("client", "gw-0", SimTime::Millis(1), 1e9);
    net = std::make_unique<net::Network>(engine, std::move(topo), 3);
    for (auto& n : infra.nodes) cluster.AddNode(n.get());
    AgentConfig config;
    config.host = "mirto-agent";
    config.strategy = PlacementStrategy::kGreedy;
    agent = std::make_unique<MirtoAgent>(*net, cluster, infra, store,
                                         AuthModule(util::BytesOf("s3cret")),
                                         config);
    agent->Start();
  }
};

TEST(MirtoAgent, DeployViaApiWithValidToken) {
  AgentFixture f;
  AuthModule client_auth(util::BytesOf("s3cret"));
  util::Json request = util::Json::MakeObject()
                           .Set("token", client_auth.IssueToken("dpe"))
                           .Set("csar", TelerehabPackage().Pack());
  bool replied = false;
  f.net->Call("client", "mirto-agent", "mirto.deploy", std::move(request),
              [&](util::StatusOr<util::Json> reply) {
                ASSERT_TRUE(reply.ok()) << reply.status();
                EXPECT_EQ(reply->at("status").as_string(), "deployed");
                EXPECT_EQ(reply->at("principal").as_string(), "dpe");
                replied = true;
              });
  f.engine.RunUntil(SimTime::Seconds(1));
  ASSERT_TRUE(replied);
  EXPECT_EQ(f.cluster.RunningPods(), 2u);  // telerehab partitions
  EXPECT_EQ(f.agent->stats().deployments_accepted, 1u);

  // Placement recorded in the KB.
  EXPECT_FALSE(f.agent->registry().ListWorkloads().empty());
}

TEST(MirtoAgent, RejectsBadTokenWithoutDeploying) {
  AgentFixture f;
  util::Json request = util::Json::MakeObject()
                           .Set("token", "intruder.deadbeef")
                           .Set("csar", TelerehabPackage().Pack());
  bool rejected = false;
  f.net->Call("client", "mirto-agent", "mirto.deploy", std::move(request),
              [&](util::StatusOr<util::Json> reply) {
                EXPECT_EQ(reply.status().code(),
                          util::StatusCode::kUnauthenticated);
                rejected = true;
              });
  f.engine.RunUntil(SimTime::Seconds(1));
  EXPECT_TRUE(rejected);
  EXPECT_EQ(f.cluster.RunningPods(), 0u);
  EXPECT_EQ(f.agent->stats().auth_failures, 1u);
}

TEST(MirtoAgent, RejectsCorruptCsar) {
  AgentFixture f;
  AuthModule client_auth(util::BytesOf("s3cret"));
  util::Json request = util::Json::MakeObject()
                           .Set("token", client_auth.IssueToken("dpe"))
                           .Set("csar", "garbage-bytes");
  bool rejected = false;
  f.net->Call("client", "mirto-agent", "mirto.deploy", std::move(request),
              [&](util::StatusOr<util::Json> reply) {
                EXPECT_FALSE(reply.ok());
                rejected = true;
              });
  f.engine.RunUntil(SimTime::Seconds(1));
  EXPECT_TRUE(rejected);
  EXPECT_EQ(f.agent->stats().deployments_rejected, 1u);
}

TEST(MirtoAgent, MapeLoopPopulatesRegistry) {
  AgentFixture f;
  f.engine.RunUntil(SimTime::Seconds(2));
  EXPECT_GT(f.agent->stats().mape_iterations, 4u);
  const auto nodes = f.agent->registry().ListNodes();
  EXPECT_EQ(nodes.size(), f.infra.nodes.size());
  EXPECT_FALSE(
      f.agent->registry().GetTelemetry("edge-0", "utilization").empty());
}

TEST(MirtoAgent, MapeLoopRecoversFromNodeFailure) {
  AgentFixture f;
  ASSERT_TRUE(f.agent->Deploy(TelerehabPackage()).ok());
  ASSERT_EQ(f.cluster.RunningPods(), 2u);

  // Kill whichever node hosts the first pod.
  std::string victim;
  for (auto& n : f.infra.nodes) {
    if (!f.cluster.PodsOnNode(n->id()).empty()) {
      victim = n->id();
      break;
    }
  }
  ASSERT_FALSE(victim.empty());
  f.infra.FindNode(victim)->SetUp(false);
  f.engine.RunUntil(f.engine.Now() + SimTime::Seconds(3));

  EXPECT_EQ(f.cluster.RunningPods(), 2u) << "MAPE loop must re-place pods";
  EXPECT_TRUE(f.cluster.PodsOnNode(victim).empty());
  EXPECT_GT(f.agent->stats().reallocations, 0u);
  // Trust in the failed node decayed.
  EXPECT_LT(f.agent->security_manager().TrustOf(victim), 0.5);
}

TEST(MirtoAgent, MonitorRecordsCumulativeEnergyInMillijoules) {
  AgentFixture f;
  continuum::ComputeNode* node = f.infra.FindNode("edge-0");
  ASSERT_NE(node, nullptr);
  continuum::TaskDemand demand;
  demand.cycles = 50'000'000;
  demand.bytes_in = 4096;
  node->Submit(demand, nullptr);
  f.engine.RunUntil(SimTime::Seconds(2));
  ASSERT_GT(node->total_energy_mj(), 0.0);

  // Monitor used to publish instantaneous power (mW) under the cumulative
  // energy field; the record must carry the node's energy counter (mJ).
  f.agent->RunMapeIteration();
  auto record = f.agent->registry().GetNode("edge-0");
  ASSERT_TRUE(record.ok()) << record.status();
  EXPECT_DOUBLE_EQ(record->energy_mj, node->total_energy_mj());
}

TEST(MirtoAgent, OperatingPointsAdaptToIdleness) {
  AgentFixture f;
  // Run with zero load: every device should be demoted to eco points.
  f.engine.RunUntil(SimTime::Seconds(2));
  EXPECT_GT(f.agent->stats().operating_point_changes, 0u);
  continuum::ComputeNode* edge = f.infra.FindNode("edge-0");
  ASSERT_NE(edge, nullptr);
  for (const continuum::Device& d : edge->devices()) {
    EXPECT_EQ(d.active_point_index(), d.operating_points().size() - 1)
        << d.name();
  }
}

TEST(LiqoPeering, OffloadAndReclaim) {
  sim::Engine engine;
  Infrastructure edge_infra = BuildInfrastructure(engine, {});
  sched::Cluster local(engine, sched::Scheduler::Default());
  sched::Cluster remote(engine, sched::Scheduler::Default());
  // Local: only edge nodes. Remote: fog+cloud.
  for (auto& n : edge_infra.nodes) {
    if (n->layer() == Layer::kEdge) {
      local.AddNode(n.get());
    } else {
      remote.AddNode(n.get());
    }
  }
  LiqoPeering peering(engine, local, remote, "fog-cluster");
  EXPECT_NE(local.FindNodeState(peering.virtual_node_id()), nullptr);

  sched::PodSpec pod;
  pod.name = "analytics";
  pod.cpu_request = 2.0;
  auto node = peering.Offload(pod);
  ASSERT_TRUE(node.ok()) << node.status();
  EXPECT_EQ(remote.RunningPods(), 1u);
  auto where = peering.RemoteNodeOf("analytics");
  ASSERT_TRUE(where.ok());
  EXPECT_EQ(*where, *node);

  ASSERT_TRUE(peering.Reclaim("analytics").ok());
  EXPECT_EQ(remote.RunningPods(), 0u);
  EXPECT_FALSE(peering.RemoteNodeOf("analytics").ok());
  EXPECT_FALSE(peering.Reclaim("analytics").ok());
}

TEST(LiqoPeering, SyncCapacityReflectsRemoteUsage) {
  sim::Engine engine;
  Infrastructure infra = BuildInfrastructure(engine, {});
  sched::Cluster local(engine, sched::Scheduler::Default());
  sched::Cluster remote(engine, sched::Scheduler::Default());
  for (auto& n : infra.nodes) {
    if (n->layer() == Layer::kCloud) remote.AddNode(n.get());
  }
  LiqoPeering peering(engine, local, remote, "cloud");
  sched::NodeState* vnode = local.FindNodeState(peering.virtual_node_id());
  ASSERT_NE(vnode, nullptr);
  const double free_before = vnode->CpuFree();

  // Consume remote capacity directly, then sync.
  sched::PodSpec hog;
  hog.name = "hog";
  hog.cpu_request = 50.0;
  hog.mem_request_mb = 64;
  ASSERT_TRUE(remote.BindPod(hog).ok());
  peering.SyncCapacity();
  EXPECT_NEAR(vnode->CpuFree(), free_before - 50.0, 1.0);
}

TEST(MirtoEngine, NegotiatedDeploymentDistributesAcrossLayers) {
  sim::Engine engine;
  Infrastructure infra = BuildInfrastructure(engine, {});
  net::Topology topo = infra.topology;
  net::Network network(engine, std::move(topo), 5);
  MirtoEngine mirto(network, infra);
  mirto.Start();
  engine.RunUntil(SimTime::Millis(500));

  bool done = false;
  mirto.DeployNegotiated(TelerehabPackage(), [&](util::Status s) {
    EXPECT_TRUE(s.ok()) << s;
    done = true;
  });
  engine.RunUntil(engine.Now() + SimTime::Seconds(5));
  ASSERT_TRUE(done);
  EXPECT_EQ(mirto.TotalRunningPods(), 2u);
  EXPECT_EQ(mirto.negotiation_stats().announcements, 2u);
  EXPECT_GT(mirto.negotiation_stats().bids_received, 2u);
  EXPECT_EQ(mirto.negotiation_stats().awards, 2u);
  EXPECT_EQ(mirto.negotiation_stats().failed_pods, 0u);
  mirto.Stop();
}

TEST(MirtoEngine, AcceleratorPodLandsAtEdge) {
  sim::Engine engine;
  Infrastructure infra = BuildInfrastructure(engine, {});
  net::Network network(engine, infra.topology, 6);
  MirtoEngine mirto(network, infra);
  mirto.Start();
  engine.RunUntil(SimTime::Millis(500));

  // Single accelerable pod: only edge HMPSoCs can bid.
  tosca::ServiceTemplate tpl;
  tpl.tosca_version = "tosca_2_0";
  tosca::NodeTemplate nt;
  nt.name = "kernel";
  nt.type = std::string(tosca::kTypeAccelerator);
  nt.properties = util::Json::MakeObject().Set("cpu", 0.5).Set("memory_mb", 64);
  tpl.node_templates["kernel"] = nt;
  const tosca::CsarPackage pkg = tosca::CsarPackage::Create(tpl);

  bool done = false;
  mirto.DeployNegotiated(pkg, [&](util::Status s) {
    EXPECT_TRUE(s.ok()) << s;
    done = true;
  });
  engine.RunUntil(engine.Now() + SimTime::Seconds(5));
  ASSERT_TRUE(done);
  EXPECT_EQ(mirto.cluster(Layer::kEdge).RunningPods(), 1u);
  EXPECT_EQ(mirto.cluster(Layer::kCloud).RunningPods(), 0u);
  mirto.Stop();
}

TEST(MirtoEngine, ImpossiblePodReportsFailure) {
  sim::Engine engine;
  Infrastructure infra = BuildInfrastructure(engine, {});
  net::Network network(engine, infra.topology, 7);
  MirtoEngine mirto(network, infra);
  mirto.Start();
  engine.RunUntil(SimTime::Millis(500));

  tosca::ServiceTemplate tpl;
  tpl.tosca_version = "tosca_2_0";
  tosca::NodeTemplate nt;
  nt.name = "goliath";
  nt.type = std::string(tosca::kTypeWorkload);
  nt.properties = util::Json::MakeObject()
                      .Set("cpu", 1e6)  // no node can host this
                      .Set("memory_mb", 64);
  tpl.node_templates["goliath"] = nt;
  const tosca::CsarPackage pkg = tosca::CsarPackage::Create(tpl);

  bool done = false;
  mirto.DeployNegotiated(pkg, [&](util::Status s) {
    EXPECT_EQ(s.code(), util::StatusCode::kResourceExhausted);
    done = true;
  });
  engine.RunUntil(engine.Now() + SimTime::Seconds(5));
  EXPECT_TRUE(done);
  EXPECT_EQ(mirto.negotiation_stats().failed_pods, 1u);
  mirto.Stop();
}

TEST(MirtoEngine, StatusEndpointAnswers) {
  sim::Engine engine;
  Infrastructure infra = BuildInfrastructure(engine, {});
  net::Topology topo = infra.topology;
  topo.AddBidirectional("client", "gw-0", SimTime::Millis(1), 1e9);
  net::Network network(engine, std::move(topo), 8);
  MirtoEngine mirto(network, infra);
  mirto.Start();
  bool replied = false;
  network.Call("client", MirtoEngine::AgentHost(Layer::kFog), "mirto.status", {},
               [&](util::StatusOr<util::Json> reply) {
                 ASSERT_TRUE(reply.ok());
                 EXPECT_EQ(reply->at("strategy").as_string(), "greedy");
                 replied = true;
               });
  engine.RunUntil(SimTime::Seconds(1));
  EXPECT_TRUE(replied);
  mirto.Stop();
}


TEST(MirtoAgent, RegistryDeleteEventTriggersReallocationSignal) {
  // A component record vanishing from the KB (e.g. heartbeat-lease expiry)
  // must mark the fleet dirty even before the poll-based Analyze notices.
  AgentFixture f;
  ASSERT_TRUE(f.agent->Deploy(TelerehabPackage()).ok());
  f.engine.RunUntil(SimTime::Millis(600));  // a few MAPE iterations

  // Simulate the heartbeat service expiring a node record.
  f.store.Delete(kb::ResourceRegistry::NodeKey("edge-0"));
  const std::uint64_t before = f.agent->stats().mape_iterations;
  f.engine.RunUntil(f.engine.Now() + SimTime::Millis(600));
  EXPECT_GT(f.agent->stats().mape_iterations, before);
  // The record reappears on the next Monitor pass (the node is still up) --
  // the signal exists to force a reconcile, which must not lose any pod.
  EXPECT_TRUE(f.agent->registry().GetNode("edge-0").ok());
  EXPECT_EQ(f.cluster.RunningPods(), 2u);
}

TEST(MirtoAgent, UndeployRemovesTrackedPods) {
  AgentFixture f;
  ASSERT_TRUE(f.agent->Deploy(TelerehabPackage()).ok());
  ASSERT_EQ(f.cluster.RunningPods(), 2u);
  ASSERT_EQ(f.agent->DeployedApps(), std::vector<std::string>{"telerehab"});
  ASSERT_TRUE(f.agent->Undeploy("telerehab").ok());
  EXPECT_EQ(f.cluster.RunningPods(), 0u);
  EXPECT_FALSE(f.agent->Undeploy("telerehab").ok());
}

/// --- Full-walk vs. incremental MAPE differential ---------------------------
/// Two identical worlds run the same seeded 300-op churn schedule; one agent
/// observes with MonitorPath::kFull, the other with kIncremental. After every
/// MAPE iteration the observable outcomes — registry NodeRecords, SLO
/// statuses and published /slo verdicts, trust scores, planned operating
/// point decisions — must be byte-identical.
struct DifferentialWorld {
  sim::Engine engine;
  Infrastructure infra;
  std::unique_ptr<net::Network> net;
  sched::Cluster cluster;
  kb::Store store;
  std::unique_ptr<MirtoAgent> agent;

  explicit DifferentialWorld(MonitorPath path)
      : infra(BuildInfrastructure(engine, {})),
        cluster(engine, sched::Scheduler::Default()) {
    net::Topology topo = infra.topology;
    topo.AddBidirectional("mirto-agent", "gw-0", SimTime::Micros(100), 1e9);
    net = std::make_unique<net::Network>(engine, std::move(topo), 3);
    for (auto& n : infra.nodes) cluster.AddNode(n.get());
    AgentConfig config;
    config.host = "mirto-agent";
    config.strategy = PlacementStrategy::kGreedy;
    config.monitor_path = path;
    agent = std::make_unique<MirtoAgent>(*net, cluster, infra, store,
                                         AuthModule(util::BytesOf("s3cret")),
                                         config);
    // No Start(): iterations are driven manually so both paths step in
    // lockstep on identical sim clocks.
  }
};

std::string WorldSnapshot(DifferentialWorld& w) {
  std::string out;
  for (const kb::NodeRecord& record : w.agent->registry().ListNodes()) {
    out += record.ToJson().Dump();
    out += "\n";
  }
  for (const char* objective : {"fleet.availability", "pod.start_wait"}) {
    if (const telemetry::SloStatus* s = w.agent->slo_engine().Find(objective)) {
      out += util::Json::MakeObject()
                 .Set("objective", std::string(objective))
                 .Set("state", std::string(telemetry::SloStateName(s->state)))
                 .Set("fast", s->fast_burn_rate)
                 .Set("slow", s->slow_burn_rate)
                 .Set("observations", s->observations)
                 .Set("bad", s->bad)
                 .Set("breaches", s->breaches)
                 .Dump();
      out += "\n";
    }
    if (auto verdict = w.agent->registry().GetSloState("mirto-agent", objective);
        verdict.ok()) {
      out += verdict->Dump();
      out += "\n";
    }
  }
  for (const auto& node : w.infra.nodes) {
    out += util::Json::MakeObject()
               .Set("node", node->id())
               .Set("trust", w.agent->security_manager().TrustOf(node->id()))
               .Dump();
    out += "\n";
  }
  for (const NodeManager::Decision& d : w.agent->planned_decisions()) {
    out += d.node_id + "/" + std::to_string(d.device_index) + "->" +
           std::to_string(d.operating_point) + "\n";
  }
  out += "pending=" + std::to_string(w.cluster.PendingPods()) +
         " running=" + std::to_string(w.cluster.RunningPods()) + "\n";
  return out;
}

class MapeDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MapeDifferential, FullAndIncrementalPathsAgreeUnderChurn) {
  DifferentialWorld full(MonitorPath::kFull);
  DifferentialWorld inc(MonitorPath::kIncremental);
  ASSERT_EQ(full.agent->monitor_path(), MonitorPath::kFull);
  ASSERT_EQ(inc.agent->monitor_path(), MonitorPath::kIncremental);

  util::Rng rng(GetParam(), "mape-churn-differential");
  std::vector<std::string> churn_pods;
  int created = 0;
  bool deployed = false;
  const std::size_t fleet = full.infra.nodes.size();

  for (int op = 0; op < 300; ++op) {
    // Draw each decision once and apply it to both worlds, so the schedules
    // cannot diverge even if a bug desynchronizes the states.
    const double roll = rng.NextDouble();
    const std::size_t pick = static_cast<std::size_t>(rng.NextBounded(fleet));
    continuum::ComputeNode& node_full = *full.infra.nodes[pick];
    continuum::ComputeNode& node_inc = *inc.infra.nodes[pick];
    ASSERT_EQ(node_full.up(), node_inc.up()) << "worlds diverged at op " << op;
    if (roll < 0.25) {
      node_full.SetUp(!node_full.up());
      node_inc.SetUp(!node_inc.up());
    } else if (roll < 0.45) {
      if (node_full.up()) {
        continuum::TaskDemand demand;
        demand.cycles = 1'000'000 + rng.NextBounded(50'000'000);
        node_full.Submit(demand, nullptr);
        node_inc.Submit(demand, nullptr);
      }
    } else if (roll < 0.55) {
      // Allocation wiggle: net no-op, but an observable mutation.
      if (node_full.ReserveMemory(16).ok()) node_full.ReleaseMemory(16);
      if (node_inc.ReserveMemory(16).ok()) node_inc.ReleaseMemory(16);
    } else if (roll < 0.70) {
      sched::PodSpec pod;
      pod.name = "churn-" + std::to_string(created++);
      pod.cpu_request = 0.25;
      pod.mem_request_mb = 16;
      if (rng.NextBool(0.2)) pod.cpu_request = 1e6;  // stays pending
      // LINT: discard(differential churn: failure parity is what's asserted)
      (void)full.cluster.BindPod(pod);
      (void)inc.cluster.BindPod(pod);
      churn_pods.push_back(pod.name);
    } else if (roll < 0.80) {
      if (!churn_pods.empty()) {
        const std::size_t victim = static_cast<std::size_t>(
            rng.NextBounded(churn_pods.size()));
        const util::Status a = full.cluster.DeletePod(churn_pods[victim]);
        const util::Status b = inc.cluster.DeletePod(churn_pods[victim]);
        ASSERT_EQ(a.code(), b.code());
        churn_pods.erase(churn_pods.begin() +
                         static_cast<std::ptrdiff_t>(victim));
      }
    } else if (roll < 0.90) {
      const util::Status a = full.agent->Deploy(TelerehabPackage());
      const util::Status b = inc.agent->Deploy(TelerehabPackage());
      ASSERT_EQ(a.code(), b.code());
      deployed = a.ok();
    } else if (deployed) {
      ASSERT_TRUE(full.agent->Undeploy("telerehab").ok());
      ASSERT_TRUE(inc.agent->Undeploy("telerehab").ok());
      deployed = false;
    }
    const SimTime advance = SimTime::Millis(1 + rng.NextBounded(20));
    full.engine.RunUntil(full.engine.Now() + advance);
    inc.engine.RunUntil(inc.engine.Now() + advance);
    ASSERT_EQ(full.engine.Now().ns, inc.engine.Now().ns);

    if (op % 10 == 9) {
      full.agent->RunMapeIteration();
      inc.agent->RunMapeIteration();
      ASSERT_EQ(WorldSnapshot(full), WorldSnapshot(inc))
          << "outcome divergence after op " << op << " (seed " << GetParam()
          << ")";
    }
  }
  // The equivalence must not be vacuous: the incremental path has to have
  // done strictly less observation work than the full walk.
  EXPECT_GT(full.agent->stats().nodes_observed,
            inc.agent->stats().nodes_observed);
  EXPECT_GT(inc.agent->stats().mape_iterations, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MapeDifferential,
                         ::testing::Values(1u, 7u, 42u, 1337u));

TEST(MirtoAgent, SwitchingMonitorPathMidRunRebuildsCaches) {
  AgentFixture f;
  f.engine.RunUntil(SimTime::Millis(600));
  const std::uint64_t observed_before = f.agent->stats().nodes_observed;
  f.agent->set_monitor_path(MonitorPath::kFull);
  f.agent->RunMapeIteration();
  EXPECT_EQ(f.agent->stats().nodes_observed,
            observed_before + f.infra.nodes.size());
  f.agent->set_monitor_path(MonitorPath::kIncremental);
  // A fresh listener starts all-dirty: the first incremental iteration
  // re-observes the whole fleet, after which a quiet fleet costs zero visits.
  const std::uint64_t at_switch = f.agent->stats().nodes_observed;
  f.agent->RunMapeIteration();
  EXPECT_EQ(f.agent->stats().nodes_observed,
            at_switch + f.infra.nodes.size());
  const std::uint64_t after_rebuild = f.agent->stats().nodes_observed;
  f.agent->RunMapeIteration();
  EXPECT_EQ(f.agent->stats().nodes_observed, after_rebuild)
      << "quiet fleet, no dirty nodes";
}

TEST(MirtoAgent, SteadyStateSkipsSloRepublish) {
  AgentFixture f;
  f.engine.RunUntil(SimTime::Seconds(2));
  const std::uint64_t publishes = f.agent->stats().slo_publishes;
  const std::uint64_t iterations = f.agent->stats().mape_iterations;
  EXPECT_GT(publishes, 0u);
  // Two objectives x N iterations would be 2N publishes without the
  // on-change gate; steady state must be far below that.
  EXPECT_LT(publishes, iterations) << "verdicts republished every iteration";
}

TEST(MirtoAgent, RedeploySameAppUpdatesInPlace) {
  AgentFixture f;
  ASSERT_TRUE(f.agent->Deploy(TelerehabPackage()).ok());
  const std::size_t first = f.cluster.RunningPods();
  ASSERT_TRUE(f.agent->Deploy(TelerehabPackage()).ok());
  EXPECT_EQ(f.cluster.RunningPods(), first) << "no duplicate pods on update";
  EXPECT_EQ(f.agent->stats().deployments_accepted, 2u);
}

}  // namespace
}  // namespace myrtus::mirto
