// Coverage for the smaller public surfaces: protocol metadata, SimTime
// rendering, engine counters, Json accessor fallbacks, cost-model math,
// infrastructure spec variants, CSAR edge cases, and name tables.
#include <gtest/gtest.h>

#include "continuum/infrastructure.hpp"
#include "mirto/managers.hpp"
#include "kb/raft.hpp"
#include "net/transport.hpp"
#include "sched/pod.hpp"
#include "security/cost_model.hpp"
#include "tosca/csar.hpp"

namespace myrtus {
namespace {

using sim::SimTime;

TEST(Protocol, NamesAndOverheads) {
  EXPECT_EQ(net::ProtocolName(net::Protocol::kHttp), "http");
  EXPECT_EQ(net::ProtocolName(net::Protocol::kMqtt), "mqtt");
  EXPECT_EQ(net::ProtocolName(net::Protocol::kCoap), "coap");
  // HTTP's verbose headers dominate; MQTT is the leanest (paper's gateway
  // prefers it for constrained sensors).
  EXPECT_GT(net::ProtocolOverheadBytes(net::Protocol::kHttp),
            net::ProtocolOverheadBytes(net::Protocol::kCoap));
  EXPECT_GT(net::ProtocolOverheadBytes(net::Protocol::kCoap),
            net::ProtocolOverheadBytes(net::Protocol::kMqtt));
}

TEST(SimTime, HumanRendering) {
  EXPECT_EQ(SimTime::Nanos(500).ToString(), "500ns");
  EXPECT_EQ(SimTime::Micros(12).ToString(), "12.000us");
  EXPECT_EQ(SimTime::Millis(3).ToString(), "3.000ms");
  EXPECT_EQ(SimTime::Seconds(2).ToString(), "2.000s");
}

TEST(Engine, CountersTrackExecution) {
  sim::Engine e;
  for (int i = 0; i < 5; ++i) e.ScheduleAfter(SimTime::Millis(i), [] {});
  EXPECT_EQ(e.pending_events(), 5u);
  EXPECT_FALSE(e.empty());
  e.Run();
  EXPECT_EQ(e.executed_events(), 5u);
  EXPECT_TRUE(e.empty());
}

TEST(Engine, StepExecutesExactlyOne) {
  sim::Engine e;
  int fired = 0;
  e.ScheduleAfter(SimTime::Millis(1), [&] { ++fired; });
  e.ScheduleAfter(SimTime::Millis(2), [&] { ++fired; });
  EXPECT_TRUE(e.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(e.Step());
  EXPECT_FALSE(e.Step());
}

TEST(Json, AccessorFallbacks) {
  const util::Json j("text");
  EXPECT_EQ(j.as_int(42), 42);
  EXPECT_DOUBLE_EQ(j.as_double(1.5), 1.5);
  EXPECT_FALSE(j.as_bool());
  EXPECT_TRUE(util::Json(7).as_string().empty());
  EXPECT_TRUE(util::Json(7).items().empty());
  EXPECT_TRUE(util::Json(7).fields().empty());
  // Numeric cross-coercion.
  EXPECT_EQ(util::Json(2.9).as_int(), 2);
  EXPECT_DOUBLE_EQ(util::Json(3).as_double(), 3.0);
}

TEST(Json, SetOnScalarConvertsToObject) {
  util::Json j(5);
  j.Set("k", 1);
  EXPECT_TRUE(j.is_object());
  util::Json a("x");
  a.Append(2);
  EXPECT_TRUE(a.is_array());
}

TEST(Json, IntegralDoubleRoundtripsAsDouble) {
  const util::Json j(-251.0);
  EXPECT_EQ(j.Dump(), "-251.0");
  auto back = util::Json::Parse(j.Dump());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->is_double());
  EXPECT_EQ(*back, j);
}

TEST(CostModel, SymmetricLatencyLinearInBytes) {
  const double lat_1kb_us =
      security::SymLatencyUs(security::SymAlg::kAes128Gcm, 1024, 1.0);
  const double lat_2kb_us =
      security::SymLatencyUs(security::SymAlg::kAes128Gcm, 2048, 1.0);
  const double lat_zero_us =
      security::SymLatencyUs(security::SymAlg::kAes128Gcm, 0, 1.0);
  EXPECT_NEAR(lat_2kb_us - lat_1kb_us, lat_1kb_us - lat_zero_us, 1e-9);
  EXPECT_GT(lat_zero_us, 0.0) << "key schedule / init cost";
}

TEST(CostModel, AllSymAlgsNamed) {
  for (const auto alg :
       {security::SymAlg::kAes256Gcm, security::SymAlg::kAes128Gcm,
        security::SymAlg::kAscon128, security::SymAlg::kSha512,
        security::SymAlg::kSha256, security::SymAlg::kAsconHash}) {
    EXPECT_NE(security::SymAlgName(alg), "?");
    EXPECT_GT(security::CostOf(alg).cycles_per_byte, 0.0);
  }
}

TEST(Infrastructure, ScalesWithSpec) {
  sim::Engine engine;
  continuum::InfrastructureSpec spec;
  spec.edge_hmpsoc = 5;
  spec.edge_riscv = 3;
  spec.edge_multicore = 2;
  spec.gateways = 2;
  spec.fmdcs = 2;
  continuum::Infrastructure infra = continuum::BuildInfrastructure(engine, spec);
  EXPECT_EQ(infra.NodesInLayer(continuum::Layer::kEdge).size(), 10u);
  EXPECT_EQ(infra.NodesInLayer(continuum::Layer::kFog).size(), 4u);
  // Edge nodes round-robin across both gateways.
  int gw0 = 0;
  int gw1 = 0;
  for (continuum::ComputeNode* edge : infra.NodesInLayer(continuum::Layer::kEdge)) {
    auto route = infra.topology.FindRoute(edge->id(), "cloud-0");
    ASSERT_TRUE(route.ok());
    const std::string& first_hop = infra.topology.link(route->link_indices[0]).to;
    if (first_hop == "gw-0") ++gw0;
    if (first_hop == "gw-1") ++gw1;
  }
  EXPECT_EQ(gw0, 5);
  EXPECT_EQ(gw1, 5);
}

TEST(Csar, EntryTemplateRequiresMetaAndFile) {
  tosca::CsarPackage empty;
  EXPECT_FALSE(empty.EntryPath().ok());
  EXPECT_FALSE(empty.EntryTemplate().ok());
  // Meta pointing at a missing file is detected.
  tosca::CsarPackage broken;
  broken.AddFile(std::string(tosca::CsarPackage::kMetaPath),
                 "Entry-Definitions: missing.yaml\n");
  EXPECT_TRUE(broken.EntryPath().ok());
  EXPECT_FALSE(broken.EntryTemplate().ok());
}

TEST(Csar, PackIsDeterministic) {
  tosca::ServiceTemplate tpl;
  tpl.tosca_version = "tosca_2_0";
  tosca::NodeTemplate nt;
  nt.name = "w";
  nt.type = std::string(tosca::kTypeWorkload);
  nt.properties = util::Json::MakeObject().Set("cpu", 1);
  tpl.node_templates["w"] = nt;
  EXPECT_EQ(tosca::CsarPackage::Create(tpl).Pack(),
            tosca::CsarPackage::Create(tpl).Pack());
}

TEST(NameTables, StrategiesRolesPhasesLayers) {
  for (int s = 0; s <= 4; ++s) {
    EXPECT_NE(mirto::PlacementStrategyName(
                  static_cast<mirto::PlacementStrategy>(s)),
              "?");
  }
  EXPECT_EQ(kb::RaftRoleName(kb::RaftRole::kLeader), "leader");
  EXPECT_EQ(sched::PodPhaseName(sched::PodPhase::kRunning), "running");
  EXPECT_EQ(continuum::LayerName(continuum::Layer::kFog), "fog");
  for (int k = 0; k <= 4; ++k) {
    EXPECT_NE(continuum::DeviceKindName(static_cast<continuum::DeviceKind>(k)),
              "?");
  }
}

TEST(Trace, StatForUnknownIsEmpty) {
  sim::Trace t;
  EXPECT_EQ(t.StatFor("x", "y").count(), 0u);
  t.Clear();
  EXPECT_TRUE(t.records().empty());
}

TEST(Network, BytesAccountingIncludesProtocolOverhead) {
  sim::Engine engine;
  net::Topology topo;
  topo.AddLink(net::Link{"a", "b", SimTime::Millis(1), 1e9, 0.0, {}});
  net::Network network(engine, std::move(topo), 3);
  network.Attach("b", [](const net::Message&) {});
  net::Message m;
  m.from = "a";
  m.to = "b";
  m.kind = "x";
  m.protocol = net::Protocol::kHttp;
  m.body_bytes = 100;
  ASSERT_TRUE(network.Send(std::move(m)).ok());
  engine.Run();
  EXPECT_EQ(network.bytes_sent(),
            100 + net::ProtocolOverheadBytes(net::Protocol::kHttp));
}

}  // namespace
}  // namespace myrtus
