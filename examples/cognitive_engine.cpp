// The cognitive mechanisms of MIRTO in one tour: (1) FREVO-style evolution
// of swarm local rules against the DynAA-like what-if model, (2) federated
// learning of operating-point predictors across edge agents with disjoint
// experience, and (3) the RL network manager learning congestion-aware
// offload routing — the paper's §IV/§V/§VI "AI flavors".
//
//   $ ./example_cognitive_engine
#include <cstdio>

#include "dpe/whatif.hpp"
#include "mirto/op_predictor.hpp"
#include "mirto/rl.hpp"

using namespace myrtus;

int main() {
  std::printf("== MIRTO cognitive mechanisms ==\n");

  // --- 1. Swarm rule synthesis (FREVO -> DynAA -> MIRTO) -------------------
  std::printf("\n[1] evolving swarm local rules (8 peers, what-if model)\n");
  dpe::WhatIfConfig config;
  config.arrival_prob = 0.8;  // pressure makes the policy choice matter
  swarm::GaConfig ga;
  ga.population = 32;
  ga.generations = 25;
  const dpe::SwarmRuleSynthesis synth = dpe::SynthesizeSwarmRules(config, 7, ga);

  const swarm::RuleSpec spec = dpe::SwarmRuleSpec();
  const char* kActionNames[] = {"local", "neighbor", "upstream"};
  for (int fixed = 0; fixed < 3; ++fixed) {
    swarm::RulePolicy policy(spec, std::vector<int>(spec.TableSize(), fixed));
    const auto outcome = dpe::EvaluateRules(policy, config, 7);
    std::printf("  always-%-9s latency=%6.2f energy=%7.1f fitness=%7.2f\n",
                kActionNames[fixed], outcome.mean_latency, outcome.energy,
                outcome.fitness);
  }
  std::printf("  evolved rules:  latency=%6.2f energy=%7.1f fitness=%7.2f "
              "(after %zu generations)\n",
              synth.outcome.mean_latency, synth.outcome.energy,
              synth.outcome.fitness, synth.fitness_history.size());

  // Peek at what it learned for the overloaded state.
  std::printf("  learned action when own queue is deep: %s\n",
              kActionNames[synth.policy.Act({3, 2, 1})]);

  // --- 2. Federated operating-point prediction ------------------------------
  std::printf("\n[2] FedAvg across 6 edge agents with disjoint load regimes\n");
  std::vector<std::unique_ptr<mirto::OperatingPointLearner>> learners;
  util::Rng rng(13);
  for (int a = 0; a < 6; ++a) {
    auto learner = std::make_unique<mirto::OperatingPointLearner>(100 + a);
    const double center = 0.1 + 0.16 * a;  // each agent sees one load band
    for (int i = 0; i < 200; ++i) {
      const double util = std::clamp(center + rng.NextGaussian() * 0.05, 0.0, 1.0);
      const double slack = rng.NextDouble();
      learner->Observe(util, slack, util > 0.55 || slack < 0.2);
    }
    learners.push_back(std::move(learner));
  }
  std::vector<mirto::OperatingPointLearner*> ptrs;
  for (auto& l : learners) ptrs.push_back(l.get());
  const auto report = mirto::FederateLearners(ptrs, 30, 42);
  std::printf("  federated %d rounds, %llu bytes of parameters exchanged\n",
              report.rounds,
              static_cast<unsigned long long>(report.bytes_exchanged));
  std::printf("  low-load agent now predicts P(fast|util=0.9) = %.2f "
              "(never saw high load locally)\n",
              learners[0]->PredictFastNeeded(0.9, 0.5));
  std::printf("  high-load agent predicts P(fast|util=0.1)   = %.2f\n",
              learners[5]->PredictFastNeeded(0.1, 0.9));

  // --- 3. RL network manager --------------------------------------------------
  std::printf("\n[3] Q-learning offload routing (4000 trials)\n");
  mirto::RlOffloadSelector selector(21);
  util::Rng world(21);
  const auto latency = [&](double uplink, std::size_t target) {
    const double base = target == 0 ? 8.0 : (target == 1 ? 6.0 : 4.0);
    const double penalty = target == 2 ? uplink * 30.0
                           : target == 1 ? uplink * 12.0 : 0.0;
    return base + penalty + world.NextGaussian() * 0.3;
  };
  for (int i = 0; i < 4000; ++i) {
    const double uplink = world.NextBool() ? 0.05 : 0.9;
    const std::size_t t = selector.ChooseTarget(0.2, uplink);
    selector.Reward(0.2, uplink, t, latency(uplink, t));
  }
  const char* kTargets[] = {"gateway", "fmdc", "cloud"};
  std::printf("  clear uplink     -> %s\n",
              kTargets[selector.ChooseTarget(0.2, 0.05, false)]);
  std::printf("  congested uplink -> %s\n",
              kTargets[selector.ChooseTarget(0.2, 0.9, false)]);

  std::printf("\ncognitive-engine example done.\n");
  return 0;
}
