// Quickstart: build a continuum, start a MIRTO agent, deploy a TOSCA
// application through the authenticated API, and watch the MAPE-K loop and
// the request pipeline produce KPIs.
//
//   $ ./example_quickstart
#include <cstdio>

#include "continuum/infrastructure.hpp"
#include "mirto/agent.hpp"
#include "tosca/csar.hpp"
#include "usecases/scenario.hpp"

using namespace myrtus;

int main() {
  std::printf("== MYRTUS quickstart ==\n\n");

  // 1. Simulated continuum: 6 edge devices, gateway, FMDC, cloud (Fig. 2).
  sim::Engine engine;
  continuum::Infrastructure infra =
      continuum::BuildInfrastructure(engine, continuum::InfrastructureSpec{});
  std::printf("infrastructure: %zu nodes (%zu edge / %zu fog / %zu cloud)\n",
              infra.nodes.size(),
              infra.NodesInLayer(continuum::Layer::kEdge).size(),
              infra.NodesInLayer(continuum::Layer::kFog).size(),
              infra.NodesInLayer(continuum::Layer::kCloud).size());

  net::Topology topo = infra.topology;
  topo.AddBidirectional("dpe-workstation", "gw-0", sim::SimTime::Millis(1), 1e9);
  topo.AddBidirectional("mirto-0", "gw-0", sim::SimTime::Micros(200), 1e9);
  net::Network network(engine, std::move(topo), /*seed=*/42);

  // 2. One MIRTO agent orchestrating the whole slice.
  sched::Cluster cluster(engine, sched::Scheduler::Default());
  for (auto& node : infra.nodes) cluster.AddNode(node.get());
  kb::Store kb_store;
  mirto::AgentConfig config;
  config.host = "mirto-0";
  config.strategy = mirto::PlacementStrategy::kGreedy;
  mirto::MirtoAgent agent(network, cluster, infra, kb_store,
                          mirto::AuthModule(util::BytesOf("quickstart-secret")),
                          config);
  agent.Start();

  // 3. A minimal TOSCA application: one accelerated kernel + one service.
  tosca::ServiceTemplate tpl;
  tpl.tosca_version = "tosca_2_0";
  tpl.description = "hello-continuum";
  tosca::NodeTemplate kernel;
  kernel.name = "video_filter";
  kernel.type = std::string(tosca::kTypeAccelerator);
  kernel.properties =
      util::Json::MakeObject().Set("cpu", 0.8).Set("memory_mb", 128);
  tpl.node_templates[kernel.name] = kernel;
  tosca::NodeTemplate service;
  service.name = "dashboard";
  service.type = std::string(tosca::kTypeWorkload);
  service.properties =
      util::Json::MakeObject().Set("cpu", 0.4).Set("memory_mb", 64);
  service.requirements.push_back({"connects_to", "video_filter"});
  tpl.node_templates[service.name] = service;
  tosca::Policy privacy;
  privacy.name = "privacy";
  privacy.type = std::string(tosca::kPolicySecurity);
  privacy.targets = {"dashboard"};
  privacy.properties = util::Json::MakeObject().Set("level", "medium");
  tpl.policies.push_back(privacy);

  const tosca::CsarPackage package = tosca::CsarPackage::Create(tpl);
  std::printf("CSAR package: %zu files, %zu bytes\n", package.files().size(),
              package.TotalBytes());

  // 4. Deploy through the authenticated API daemon, over the network.
  mirto::AuthModule client_auth(util::BytesOf("quickstart-secret"));
  util::Json request = util::Json::MakeObject()
                           .Set("token", client_auth.IssueToken("dpe-workstation"))
                           .Set("csar", package.Pack());
  network.Call("dpe-workstation", "mirto-0", "mirto.deploy", std::move(request),
               [](util::StatusOr<util::Json> reply) {
                 if (reply.ok()) {
                   std::printf("deploy reply: %s\n", reply->Dump().c_str());
                 } else {
                   std::printf("deploy failed: %s\n",
                               reply.status().ToString().c_str());
                 }
               });
  engine.RunUntil(sim::SimTime::Seconds(1));

  std::printf("\npods after deployment:\n");
  for (const char* name : {"video_filter", "dashboard"}) {
    const sched::PodView pod = cluster.FindPod(name);
    if (pod) {
      std::printf("  %-14s -> %-8s (%s)\n", name, pod.node_id().c_str(),
                  std::string(sched::PodPhaseName(pod.phase())).c_str());
    }
  }

  // 5. Let the MAPE-K loop observe the system for a while.
  engine.RunUntil(sim::SimTime::Seconds(5));
  const mirto::AgentStats& stats = agent.stats();
  std::printf("\nMIRTO agent after 5s: %llu MAPE iterations, "
              "%llu operating-point changes, %llu reallocations\n",
              static_cast<unsigned long long>(stats.mape_iterations),
              static_cast<unsigned long long>(stats.operating_point_changes),
              static_cast<unsigned long long>(stats.reallocations));

  std::printf("\nKB registry view (trust / ready):\n");
  for (const kb::NodeRecord& record : agent.registry().ListNodes()) {
    std::printf("  %-8s layer=%-5s trust=%.2f ready=%d\n",
                record.node_id.c_str(), record.layer.c_str(),
                record.trust_score, record.ready ? 1 : 0);
  }
  agent.Stop();
  std::printf("\nquickstart done.\n");
  return 0;
}
