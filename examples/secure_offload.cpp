// Table II in action: measures the *real* symmetric/hash primitives on the
// host, shows the modeled asymmetric handshake costs per security level, and
// demonstrates a security-aware offload decision (a High-pinned workload
// refuses a Low edge node even when it is the fastest option).
//
//   $ ./example_secure_offload
#include <chrono>
#include <cstdio>

#include "continuum/infrastructure.hpp"
#include "sched/controller.hpp"
#include "security/ascon.hpp"
#include "security/channel.hpp"
#include "security/gcm.hpp"
#include "security/sha2.hpp"

using namespace myrtus;

namespace {

double MeasureMbps(const std::function<void()>& op, std::size_t bytes,
                   int iterations) {
  // LINT: allow(determinism, measures real host primitive throughput)
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iterations; ++i) op();
  // LINT: allow(determinism, measures real host primitive throughput)
  const auto end = std::chrono::steady_clock::now();
  const double seconds =
      std::chrono::duration<double>(end - start).count();
  return static_cast<double>(bytes) * iterations / seconds / 1e6;
}

}  // namespace

int main() {
  std::printf("== Table II: security levels on the continuum ==\n\n");
  const std::size_t kPayload = 64 * 1024;
  util::Bytes payload(kPayload, 0xA5);
  const util::Bytes key32(32, 1);
  const util::Bytes key16(16, 2);
  const util::Bytes nonce12(12, 3);
  const util::Bytes nonce16(16, 4);

  std::printf("host-measured primitive throughput (64 KiB payloads):\n");
  std::printf("  %-22s %8.1f MB/s\n", "AES-256-GCM (high)",
              // LINT: discard(throughput probe; only the wall time matters)
              MeasureMbps([&] { (void)security::AesGcmSeal(key32, nonce12, {}, payload); },
                          kPayload, 20));
  std::printf("  %-22s %8.1f MB/s\n", "AES-128-GCM (medium)",
              // LINT: discard(throughput probe; only the wall time matters)
              MeasureMbps([&] { (void)security::AesGcmSeal(key16, nonce12, {}, payload); },
                          kPayload, 20));
  std::printf("  %-22s %8.1f MB/s\n", "ASCON-128 (low)",
              // LINT: discard(throughput probe; only the wall time matters)
              MeasureMbps([&] { (void)security::Ascon128Seal(key16, nonce16, {}, payload); },
                          kPayload, 20));
  std::printf("  %-22s %8.1f MB/s\n", "SHA-512 (high)",
              MeasureMbps([&] { (void)security::Sha512::Digest(payload); },
                          kPayload, 50));
  std::printf("  %-22s %8.1f MB/s\n", "SHA-256 (medium)",
              MeasureMbps([&] { (void)security::Sha256::Digest(payload); },
                          kPayload, 50));
  std::printf("  %-22s %8.1f MB/s\n", "ASCON-Hash (low)",
              MeasureMbps([&] { (void)security::AsconHash(payload); },
                          kPayload, 20));

  std::printf("\nmodeled handshake cost per level (1 GHz edge core):\n");
  for (const auto level : {security::SecurityLevel::kLow,
                           security::SecurityLevel::kMedium,
                           security::SecurityLevel::kHigh}) {
    const security::SecuritySuite& suite = security::SuiteFor(level);
    std::printf("  %-7s sig=%-22s kem=%-20s  %9.1f us, %6llu wire bytes\n",
                std::string(security::SecurityLevelName(level)).c_str(),
                std::string(security::AsymAlgName(suite.authentication)).c_str(),
                std::string(security::AsymAlgName(suite.key_exchange)).c_str(),
                security::HandshakeLatencyUs(level, 1.0),
                static_cast<unsigned long long>(security::HandshakeWireBytes(level)));
  }

  // --- Security-aware offload decision ------------------------------------
  std::printf("\nsecurity-aware offload:\n");
  sim::Engine engine;
  continuum::Infrastructure infra = continuum::BuildInfrastructure(engine, {});
  sched::Cluster cluster(engine, sched::Scheduler::Default());
  for (auto& node : infra.nodes) cluster.AddNode(node.get());

  sched::PodSpec public_wl;
  public_wl.name = "public-analytics";
  public_wl.cpu_request = 0.5;
  auto node_a = cluster.BindPod(public_wl);
  std::printf("  public workload (level low)    -> %s\n",
              node_a.ok() ? node_a->c_str() : node_a.status().ToString().c_str());

  sched::PodSpec medical_wl;
  medical_wl.name = "medical-records";
  medical_wl.cpu_request = 0.5;
  medical_wl.min_security = security::SecurityLevel::kHigh;
  auto node_b = cluster.BindPod(medical_wl);
  std::printf("  medical workload (level high)  -> %s\n",
              node_b.ok() ? node_b->c_str() : node_b.status().ToString().c_str());
  if (node_b.ok()) {
    const continuum::ComputeNode* n = infra.FindNode(*node_b);
    std::printf("  (host level: %s — edge nodes were filtered out)\n",
                std::string(security::SecurityLevelName(n->security_level())).c_str());
  }
  std::printf("\nsecure-offload example done.\n");
  return 0;
}
