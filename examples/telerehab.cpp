// Virtual Telerehabilitation use case: privacy-driven orchestration. The ADT
// threat analysis raises the security floor, placement honors Table II level
// pinning, and patient data travels over a real post-quantum-tier secure
// channel (AES-256-GCM records, replay-protected).
//
//   $ ./example_telerehab
#include <cstdio>

#include "mirto/agent.hpp"
#include "security/channel.hpp"
#include "usecases/scenario.hpp"

using namespace myrtus;

int main() {
  std::printf("== Virtual Telerehabilitation ==\n\n");
  sim::Engine engine;
  continuum::Infrastructure infra = continuum::BuildInfrastructure(engine, {});
  net::Network network(engine, infra.topology, 13);

  usecases::Scenario scenario = usecases::TelerehabScenario();

  // Design time: the threat model forces the archive path to High security.
  dpe::DpePipeline dpe_pipeline(21);
  auto design = dpe_pipeline.Run(scenario.dpe_input);
  if (!design.ok()) {
    std::printf("DPE failed: %s\n", design.status().ToString().c_str());
    return 1;
  }
  std::printf("threat analysis: residual attack probability %.3f, "
              "security level raised %s -> %s\n",
              design->countermeasures.residual_probability,
              scenario.dpe_input.security_level.c_str(),
              design->effective_security_level.c_str());

  // Runtime: deploy the stage pods and check where health data may live.
  sched::Cluster cluster(engine, sched::Scheduler::Default());
  for (auto& n : infra.nodes) cluster.AddNode(n.get());
  if (auto st = usecases::DeployScenario(scenario, cluster, 5); !st.ok()) {
    std::printf("deploy failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("\nstage placements:\n");
  for (const usecases::Stage& stage : scenario.stages) {
    const sched::PodView pod = cluster.FindPod(scenario.name + "/" + stage.pod_name);
    const continuum::ComputeNode* node = infra.FindNode(pod.node_id());
    std::printf("  %-10s -> %-8s (node level: %-6s, required: %s)\n",
                stage.pod_name.c_str(), pod.node_id().c_str(),
                std::string(security::SecurityLevelName(node->security_level())).c_str(),
                std::string(security::SecurityLevelName(stage.min_security)).c_str());
  }

  // The patient->archive channel uses the High suite of Table II.
  util::Rng rng(2026);
  auto channel = security::SecureChannel::Establish(
      security::SecurityLevel::kHigh, rng);
  if (!channel.ok()) {
    std::printf("channel establishment failed\n");
    return 1;
  }
  std::printf("\nsecure channel (level=high, AES-256-GCM records):\n");
  std::printf("  modeled handshake: %.1f us on a 1 GHz fog core, %llu wire bytes\n",
              security::HandshakeLatencyUs(security::SecurityLevel::kHigh, 1.0),
              static_cast<unsigned long long>(
                  security::HandshakeWireBytes(security::SecurityLevel::kHigh)));
  const util::Bytes session = util::BytesOf(
      R"({"patient":"p-042","exercise":"shoulder-abduction","score":0.87})");
  auto sealed = channel->initiator.Seal(session);
  util::MustOk(sealed);
  auto opened = channel->responder.Open(*sealed);
  std::printf("  sealed %zu plaintext bytes into %zu record bytes; roundtrip %s\n",
              session.size(), sealed->size(),
              opened.ok() && *opened == session ? "OK" : "FAILED");
  auto replayed = channel->responder.Open(*sealed);
  std::printf("  replayed record rejected: %s\n",
              replayed.ok() ? "NO (BUG)" : "yes");

  // Drive a therapy session's worth of frames.
  usecases::RequestPipeline pipeline(network, infra, cluster, scenario);
  pipeline.StartStream(sim::SimTime::Seconds(10), 17);
  engine.RunUntil(sim::SimTime::Seconds(15));
  const usecases::ScenarioKpis& kpis = pipeline.kpis();
  std::printf("\n10s session @%.0f Hz: %llu frames, p50=%.2fms p95=%.2fms, "
              "violation rate %.1f%%\n",
              scenario.arrival_rate_hz,
              static_cast<unsigned long long>(kpis.completed),
              kpis.latency_ms.p50(), kpis.latency_ms.p95(),
              kpis.ViolationRate() * 100.0);
  std::printf("\ntelerehab example done.\n");
  return 0;
}
