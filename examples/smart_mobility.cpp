// Smart Mobility use case end-to-end: DPE design-time flow (threat analysis,
// DSE Pareto front, CSAR emission), multi-layer negotiated deployment, a
// live request stream, and a node failure that the MIRTO MAPE-K loop heals.
//
//   $ ./example_smart_mobility
#include <cstdio>

#include "mirto/engine.hpp"
#include "usecases/scenario.hpp"

using namespace myrtus;

int main() {
  std::printf("== Smart Mobility on the MYRTUS continuum ==\n\n");
  sim::Engine engine;
  continuum::InfrastructureSpec spec;
  spec.edge_hmpsoc = 3;
  continuum::Infrastructure infra = continuum::BuildInfrastructure(engine, spec);
  net::Network network(engine, infra.topology, 7);

  // --- Design time: the DPE pipeline -------------------------------------
  usecases::Scenario scenario = usecases::SmartMobilityScenario();
  dpe::DpePipeline dpe_pipeline(11);
  auto design = dpe_pipeline.Run(scenario.dpe_input);
  if (!design.ok()) {
    std::printf("DPE failed: %s\n", design.status().ToString().c_str());
    return 1;
  }
  std::printf("DPE: %d fusions, %zu-point Pareto front, security raised to %s\n",
              design->fusions_applied, design->pareto_front.size(),
              design->effective_security_level.c_str());
  for (const dpe::ParetoPoint& p : design->pareto_front) {
    std::printf("  pareto point: %8.3f ms  %8.3f mJ\n", p.kpi.latency_s * 1e3,
                p.kpi.energy_mj);
  }
  std::printf("  countermeasures:");
  for (const auto& cm : design->countermeasures.countermeasures) {
    std::printf(" %s", cm.c_str());
  }
  std::printf("  (residual attack probability %.3f)\n",
              design->countermeasures.residual_probability);

  // --- Runtime: MIRTO multi-layer engine ----------------------------------
  mirto::MirtoEngine mirto(network, infra);
  mirto.Start();
  engine.RunUntil(sim::SimTime::Millis(300));

  bool deployed = false;
  mirto.DeployNegotiated(design->package, [&](util::Status s) {
    deployed = s.ok();
    std::printf("\nnegotiated deployment: %s\n", s.ToString().c_str());
  });
  engine.RunUntil(engine.Now() + sim::SimTime::Seconds(3));
  const mirto::NegotiationStats& neg = mirto.negotiation_stats();
  std::printf("negotiation: %llu announcements, %llu bids, %llu awards\n",
              static_cast<unsigned long long>(neg.announcements),
              static_cast<unsigned long long>(neg.bids_received),
              static_cast<unsigned long long>(neg.awards));
  if (!deployed) return 1;

  // --- Live traffic against the per-stage pods ----------------------------
  // Deploy the runtime stage pods onto the edge cluster and drive frames.
  sched::Cluster& edge = mirto.cluster(continuum::Layer::kEdge);
  sched::Cluster all_layers(engine, sched::Scheduler::Default());
  for (auto& n : infra.nodes) all_layers.AddNode(n.get());
  if (auto st = usecases::DeployScenario(scenario, all_layers, 1); !st.ok()) {
    std::printf("stage deployment failed: %s\n", st.ToString().c_str());
    return 1;
  }
  usecases::RequestPipeline pipeline(network, infra, all_layers, scenario);
  pipeline.StartStream(engine.Now() + sim::SimTime::Seconds(5), 33);
  engine.RunUntil(engine.Now() + sim::SimTime::Seconds(6));

  const usecases::ScenarioKpis& kpis = pipeline.kpis();
  std::printf("\n5s of traffic @%.0f Hz: %llu frames, p50=%.2fms p95=%.2fms "
              "p99=%.2fms, %llu deadline violations, %.1f mJ compute energy\n",
              scenario.arrival_rate_hz,
              static_cast<unsigned long long>(kpis.completed),
              kpis.latency_ms.p50(), kpis.latency_ms.p95(), kpis.latency_ms.p99(),
              static_cast<unsigned long long>(kpis.violations),
              kpis.compute_energy_mj);

  // --- Failure injection ----------------------------------------------------
  const sched::PodView detect = all_layers.FindPod("smart-mobility/detect");
  if (detect) {
    std::printf("\ninjecting failure on %s (hosts the detector)...\n",
                detect.node_id().c_str());
    infra.FindNode(detect.node_id())->SetUp(false);
    all_layers.StartReconcileLoop(sim::SimTime::Millis(250));
    engine.RunUntil(engine.Now() + sim::SimTime::Seconds(2));
    const sched::PodView after = all_layers.FindPod("smart-mobility/detect");
    std::printf("detector rescheduled to %s (%s)\n", after.node_id().c_str(),
                std::string(sched::PodPhaseName(after.phase())).c_str());
  }
  (void)edge;
  mirto.Stop();
  std::printf("\nsmart-mobility example done.\n");
  return 0;
}
