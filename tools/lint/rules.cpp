#include "rules.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <map>
#include <regex>

#include "ast.hpp"
#include "callgraph.hpp"
#include "flow_rules.hpp"
#include "lexer.hpp"
#include "lifetime_rules.hpp"
#include "underflow_rules.hpp"
#include "unit_rules.hpp"

namespace myrtus::lint {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Finds `token` in `line` with identifier boundaries on both sides.
/// Returns npos when absent. `token` may itself contain "::" (qualified
/// names); only its first and last characters get boundary checks.
std::size_t FindToken(const std::string& line, const std::string& token,
                      std::size_t from = 0) {
  for (std::size_t pos = line.find(token, from); pos != std::string::npos;
       pos = line.find(token, pos + 1)) {
    const bool left_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
    const std::size_t end = pos + token.size();
    const bool right_ok = end >= line.size() || !IsIdentChar(line[end]);
    if (left_ok && right_ok) return pos;
  }
  return std::string::npos;
}

std::size_t SkipSpaces(const std::string& line, std::size_t pos) {
  while (pos < line.size() &&
         std::isspace(static_cast<unsigned char>(line[pos])) != 0) {
    ++pos;
  }
  return pos;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

// --- determinism ------------------------------------------------------------

/// Identifiers that are banned outright wherever they appear.
const char* const kBannedDeterminismTokens[] = {
    "system_clock",   "steady_clock", "high_resolution_clock",
    "random_device",  "mt19937",      "mt19937_64",
    "minstd_rand",    "srand",        "std::rand",
    "std::thread",    "std::jthread", "std::async",
    "std::time",      "std::clock",
};

void CheckDeterminism(const FileContext& file, std::vector<Finding>& findings) {
  for (std::size_t i = 0; i < file.code_lines.size(); ++i) {
    const std::string& line = file.code_lines[i];
    const int lineno = static_cast<int>(i) + 1;
    const auto report = [&](const std::string& what) {
      findings.push_back(
          {file.path, lineno, "determinism",
           "'" + what +
               "' breaks byte-reproducible timelines; draw time from "
               "sim::Clock and randomness from a named util::Rng stream"});
    };
    for (const char* token : kBannedDeterminismTokens) {
      if (FindToken(line, token) != std::string::npos) report(token);
    }
    // `clock()` / `rand()` — C library wall clock and ambient PRNG; the
    // nullary-call shape keeps clock_ghz, set_clock(...), rand_idx legal.
    for (const char* fn : {"clock", "rand"}) {
      const std::string name(fn);
      for (std::size_t pos = FindToken(line, name); pos != std::string::npos;
           pos = FindToken(line, name, pos + 1)) {
        if (pos >= 1 && line[pos - 1] == ':') continue;  // std:: form above
        std::size_t p = SkipSpaces(line, pos + name.size());
        if (p < line.size() && line[p] == '(') {
          p = SkipSpaces(line, p + 1);
          if (p < line.size() && line[p] == ')') report(name + "()");
        }
      }
    }
    // `time(nullptr)` / `time(NULL)` / `time(0)` without a std:: prefix
    // (the qualified form is caught by the token list above).
    for (std::size_t pos = FindToken(line, "time"); pos != std::string::npos;
         pos = FindToken(line, "time", pos + 1)) {
      if (pos >= 1 && line[pos - 1] == ':') continue;  // std::time, reported above
      std::size_t p = SkipSpaces(line, pos + 4);
      if (p >= line.size() || line[p] != '(') continue;
      p = SkipSpaces(line, p + 1);
      for (const char* arg : {"nullptr", "NULL", "0"}) {
        const std::string a(arg);
        if (line.compare(p, a.size(), a) == 0 &&
            SkipSpaces(line, p + a.size()) < line.size() &&
            line[SkipSpaces(line, p + a.size())] == ')') {
          report("time(" + a + ")");
          break;
        }
      }
    }
    // `.detach(` / `->detach(` — orphaning a thread.
    for (std::size_t pos = FindToken(line, "detach"); pos != std::string::npos;
         pos = FindToken(line, "detach", pos + 1)) {
      const bool member = (pos >= 1 && line[pos - 1] == '.') ||
                          (pos >= 2 && line[pos - 2] == '-' && line[pos - 1] == '>');
      const std::size_t p = SkipSpaces(line, pos + 6);
      if (member && p < line.size() && line[p] == '(') report(".detach()");
    }
  }
}

// --- layering ---------------------------------------------------------------

/// Direct dependency edges, mirroring the myrtus_library(... DEPS ...) calls
/// in src/CMakeLists.txt (the DESIGN.md layer table). Keep the two in sync.
const std::map<std::string, std::vector<std::string>>& DirectDeps() {
  static const std::map<std::string, std::vector<std::string>> deps = {
      {"util", {}},
      {"telemetry", {"util"}},
      {"sim", {"telemetry", "util"}},
      {"security", {"util"}},
      {"net", {"sim", "util"}},
      {"kb", {"net", "sim", "util"}},
      {"continuum", {"kb", "net", "security", "sim", "util"}},
      {"sched", {"continuum", "security", "util"}},
      {"tosca", {"sched", "security", "util"}},
      {"swarm", {"sim", "util"}},
      {"fl", {"net", "util"}},
      {"dpe", {"tosca", "continuum", "swarm", "security", "util"}},
      {"mirto",
       {"kb", "sched", "tosca", "swarm", "fl", "security", "dpe", "net",
        "continuum", "sim", "util"}},
      {"usecases", {"mirto", "dpe", "util"}},
  };
  return deps;
}

/// Transitive closure of DirectDeps(), each module also allowing itself.
const std::map<std::string, std::set<std::string>>& AllowedIncludes() {
  static const std::map<std::string, std::set<std::string>> closure = [] {
    std::map<std::string, std::set<std::string>> out;
    for (const auto& [mod, _] : DirectDeps()) {
      // Iterative DFS; the DAG is tiny.
      std::set<std::string>& reach = out[mod];
      std::vector<std::string> stack{mod};
      while (!stack.empty()) {
        const std::string cur = stack.back();
        stack.pop_back();
        if (!reach.insert(cur).second) continue;
        const auto it = DirectDeps().find(cur);
        if (it == DirectDeps().end()) continue;
        for (const std::string& d : it->second) stack.push_back(d);
      }
    }
    return out;
  }();
  return closure;
}

void CheckLayering(const FileContext& file, std::vector<Finding>& findings) {
  if (file.module.empty()) return;  // tests/bench/tools may include anything
  const auto allowed_it = AllowedIncludes().find(file.module);
  if (allowed_it == AllowedIncludes().end()) return;  // unknown module
  const std::set<std::string>& allowed = allowed_it->second;
  static const std::regex include_re("^\\s*#\\s*include\\s+\"([^\"]+)\"");
  for (std::size_t i = 0; i < file.raw_lines.size(); ++i) {
    // The include token survives stripping; the quoted path does not, so the
    // match runs on the raw line gated on the code view (this also keeps
    // includes inside comments from firing).
    if (file.code_lines[i].find("include") == std::string::npos) continue;
    std::smatch m;
    if (!std::regex_search(file.raw_lines[i], m, include_re)) continue;
    const std::string target = m[1].str();
    const std::size_t slash = target.find('/');
    if (slash == std::string::npos) continue;  // relative/local include
    const std::string target_module = target.substr(0, slash);
    if (DirectDeps().count(target_module) == 0) continue;  // not a layer path
    if (allowed.count(target_module) == 0) {
      findings.push_back(
          {file.path, static_cast<int>(i) + 1, "layering",
           "module '" + file.module + "' must not include '" + target +
               "': '" + target_module +
               "' is not beneath it in the DESIGN layer DAG"});
    }
  }
}

// --- status-discard ---------------------------------------------------------

void CheckStatusDiscard(const FileContext& file,
                        const std::set<std::string>& status_fns,
                        std::vector<Finding>& findings) {
  for (std::size_t i = 0; i < file.code_lines.size(); ++i) {
    const std::string& line = file.code_lines[i];
    for (const std::string& marker : {std::string("(void)"),
                                      std::string("static_cast<void>(")}) {
      for (std::size_t pos = line.find(marker); pos != std::string::npos;
           pos = line.find(marker, pos + 1)) {
        // Extract the call expression after the discard marker: everything up
        // to the first '(' names the callee; its trailing identifier is the
        // function name (handles obj.f(...), ptr->f(...), ns::f(...)).
        const std::size_t expr_begin = pos + marker.size();
        const std::size_t call_paren = line.find('(', expr_begin);
        if (call_paren == std::string::npos) continue;  // variable discard
        std::size_t name_end = call_paren;
        while (name_end > expr_begin &&
               std::isspace(static_cast<unsigned char>(line[name_end - 1])) != 0) {
          --name_end;
        }
        std::size_t name_begin = name_end;
        while (name_begin > expr_begin && IsIdentChar(line[name_begin - 1])) {
          --name_begin;
        }
        if (name_begin == name_end) continue;
        const std::string callee = line.substr(name_begin, name_end - name_begin);
        if (status_fns.count(callee) == 0) continue;
        const int lineno = static_cast<int>(i) + 1;
        if (HasSiteAnnotation(file, lineno, "status-discard")) continue;
        findings.push_back(
            {file.path, lineno, "status-discard",
             "result of Status-returning '" + callee +
                 "' discarded; handle the error or justify with "
                 "// LINT: discard(<reason>)"});
      }
    }
  }
}

// --- pragma-once ------------------------------------------------------------

void CheckPragmaOnce(const FileContext& file, std::vector<Finding>& findings) {
  if (!file.is_header) return;
  for (const std::string& line : file.code_lines) {
    std::size_t p = SkipSpaces(line, 0);
    if (p < line.size() && line[p] == '#') {
      p = SkipSpaces(line, p + 1);
      if (line.compare(p, 6, "pragma") == 0 &&
          line.find("once", p + 6) != std::string::npos) {
        return;
      }
    }
  }
  findings.push_back({file.path, 1, "pragma-once",
                      "header is missing '#pragma once'"});
}

// --- hygiene-banned ---------------------------------------------------------

const std::map<std::string, std::string>& BannedFunctions() {
  static const std::map<std::string, std::string> banned = {
      {"strcpy", "use std::string or std::copy"},
      {"strcat", "use std::string::append"},
      {"sprintf", "use std::snprintf or std::format"},
      {"vsprintf", "use std::vsnprintf"},
      {"gets", "use std::getline"},
      {"atoi", "use std::from_chars or std::strtol (error-aware)"},
      {"atol", "use std::from_chars or std::strtol (error-aware)"},
      {"atoll", "use std::from_chars or std::strtoll (error-aware)"},
      {"atof", "use std::from_chars or std::strtod (error-aware)"},
      {"strtok", "use std::string_view splitting (strtok is stateful)"},
  };
  return banned;
}

void CheckBannedFunctions(const FileContext& file, std::vector<Finding>& findings) {
  for (std::size_t i = 0; i < file.code_lines.size(); ++i) {
    const std::string& line = file.code_lines[i];
    for (const auto& [fn, alternative] : BannedFunctions()) {
      for (std::size_t pos = FindToken(line, fn); pos != std::string::npos;
           pos = FindToken(line, fn, pos + 1)) {
        // Only calls: the token must be followed by '('. Member access
        // (obj.atoi) would be a different function; still suspicious, still
        // matched — there are no such members in this codebase.
        const std::size_t p = SkipSpaces(line, pos + fn.size());
        if (p < line.size() && line[p] == '(') {
          findings.push_back({file.path, static_cast<int>(i) + 1,
                              "hygiene-banned",
                              "'" + fn + "' is banned: " + alternative});
        }
      }
    }
  }
}

}  // namespace

FileContext MakeFileContext(std::string path, const std::string& source) {
  FileContext ctx;
  ctx.path = std::move(path);
  ctx.is_header = ctx.path.size() >= 4 &&
                  ctx.path.compare(ctx.path.size() - 4, 4, ".hpp") == 0;
  if (StartsWith(ctx.path, "src/")) {
    const std::size_t slash = ctx.path.find('/', 4);
    if (slash != std::string::npos) ctx.module = ctx.path.substr(4, slash - 4);
  }
  ctx.raw = source;
  ctx.code = StripCommentsAndStrings(source);
  ctx.raw_lines = SplitLines(ctx.raw);
  ctx.code_lines = SplitLines(ctx.code);
  return ctx;
}

std::set<std::string> CollectStatusReturningFunctions(
    const std::vector<FileContext>& files) {
  // Matches `Status Foo(`, `util::StatusOr<T> Class::Foo(`, etc. on a single
  // stripped line. Multi-line declarations (return type alone on its line)
  // are a documented limitation — the codebase style keeps them together.
  static const std::regex decl_re(
      "(?:^|[^\\w])Status(?:Or\\s*<[^;{}()]*>)?\\s+"
      "(?:[A-Za-z_]\\w*::)*([A-Za-z_]\\w*)\\s*\\(");
  std::set<std::string> names;
  for (const FileContext& file : files) {
    for (const std::string& line : file.code_lines) {
      for (std::sregex_iterator it(line.begin(), line.end(), decl_re), end;
           it != end; ++it) {
        names.insert((*it)[1].str());
      }
    }
  }
  return names;
}

bool HasSiteAnnotation(const FileContext& file, int line, const std::string& rule) {
  const std::string allow = "LINT: allow(" + rule;
  const std::string discard = "LINT: discard(";
  const int first = std::max(1, line - 3);
  for (int l = first; l <= line && l <= static_cast<int>(file.raw_lines.size());
       ++l) {
    const std::string& raw = file.raw_lines[static_cast<std::size_t>(l) - 1];
    if (raw.find(allow) != std::string::npos) return true;
    if (rule == "status-discard" && raw.find(discard) != std::string::npos) {
      return true;
    }
  }
  return false;
}

std::vector<Finding> RunRules(const std::vector<FileContext>& files,
                              const std::vector<std::string>& determinism_allowlist,
                              std::vector<FamilyTiming>* timings,
                              const std::set<std::string>* report_only) {
  // Per-family wall-time accounting for the CLI's --timings breakdown. The
  // analyzer is host tooling measuring its own latency, never feeding a
  // simulated result.
  std::map<std::string, double> family_ms;
  std::vector<std::string> family_order;
  const auto timed = [&](const char* family, auto&& body) {
    // LINT: allow(determinism, --timings measures the analyzer's own latency)
    const auto t0 = std::chrono::steady_clock::now();
    body();
    // LINT: allow(determinism, --timings measures the analyzer's own latency)
    const auto t1 = std::chrono::steady_clock::now();
    if (family_ms.emplace(family, 0.0).second) family_order.push_back(family);
    family_ms[family] +=
        std::chrono::duration<double, std::milli>(t1 - t0).count();
  };

  std::set<std::string> status_fns;
  std::set<std::string> statusor_fns;
  std::vector<FileAst> asts;
  CallGraph graph;
  TypeFacts type_facts;
  timed("front-end", [&] {
    status_fns = CollectStatusReturningFunctions(files);
    statusor_fns = CollectStatusOrReturningFunctions(files);
    asts.reserve(files.size());
    for (const FileContext& file : files) asts.push_back(BuildFileAst(file));
    // Interprocedural front-end: the cross-TU symbol table / call graph, the
    // unsignedness fact tables, and the status-registry closure (wrappers
    // that forward a Status become status-returning themselves, so
    // status-discard sees through one or more call hops).
    graph = BuildCallGraph(files, asts);
    type_facts = CollectTypeFacts(files, asts, graph);
    AugmentStatusRegistry(files, asts, graph, &status_fns);
  });
  std::vector<Finding> findings;
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    const FileContext& file = files[fi];
    const FileAst& ast = asts[fi];
    // The per-file families are file-local, so skipping unreported files
    // cannot change the findings on the reported subset (--changed-only).
    if (report_only != nullptr && report_only->count(file.path) == 0) continue;
    std::vector<Finding> file_findings;
    timed("lexical", [&] {
      const bool time_allowed = std::any_of(
          determinism_allowlist.begin(), determinism_allowlist.end(),
          [&](const std::string& prefix) {
            return StartsWith(file.path, prefix);
          });
      if (!time_allowed) CheckDeterminism(file, file_findings);
      CheckLayering(file, file_findings);
      CheckStatusDiscard(file, status_fns, file_findings);
      CheckPragmaOnce(file, file_findings);
      CheckBannedFunctions(file, file_findings);
    });
    timed("parallel-capture-race", [&] {
      for (Finding& f : CheckParallelCaptureRace(file, ast)) {
        file_findings.push_back(std::move(f));
      }
    });
    timed("statusor-use-before-ok", [&] {
      for (Finding& f : CheckStatusOrFlow(file, ast, statusor_fns)) {
        file_findings.push_back(std::move(f));
      }
    });
    for (Finding& f : file_findings) {
      // status-discard already consulted its annotation; every other rule
      // honors the generic `LINT: allow(<rule>, reason)` escape hatch here.
      if (f.rule != "status-discard" && HasSiteAnnotation(file, f.line, f.rule)) {
        continue;
      }
      findings.push_back(std::move(f));
    }
  }
  // The cross-file families run once over the whole set (duplicate stream
  // identities, argument-passing across TUs); annotations are honored per
  // site, and --changed-only filters their findings after the fact — the
  // analysis context is always the full file set.
  std::map<std::string, const FileContext*> by_path;
  for (const FileContext& file : files) by_path[file.path] = &file;
  std::vector<Finding> cross;
  timed("rng-substream-discipline", [&] {
    for (Finding& f : CheckRngDiscipline(files, asts)) {
      cross.push_back(std::move(f));
    }
  });
  timed("unit-mismatch", [&] {
    for (Finding& f : CheckUnitMismatch(files, asts, graph)) {
      cross.push_back(std::move(f));
    }
  });
  timed("unsigned-underflow", [&] {
    for (Finding& f : CheckUnsignedUnderflow(files, asts, graph, type_facts)) {
      cross.push_back(std::move(f));
    }
  });
  timed("deferred-capture", [&] {
    const DeferredSinkTable table = BuildDeferredSinkTable(files, asts, graph);
    for (Finding& f :
         CheckDeferredCaptureLifetime(files, asts, graph, table)) {
      cross.push_back(std::move(f));
    }
  });
  for (Finding& f : cross) {
    if (report_only != nullptr && report_only->count(f.file) == 0) continue;
    const auto it = by_path.find(f.file);
    if (it != by_path.end() && HasSiteAnnotation(*it->second, f.line, f.rule)) {
      continue;
    }
    findings.push_back(std::move(f));
  }
  if (timings != nullptr) {
    for (const std::string& family : family_order) {
      timings->push_back({family, family_ms[family]});
    }
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return findings;
}

}  // namespace myrtus::lint
