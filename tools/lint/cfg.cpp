#include "cfg.hpp"

#include <cctype>

namespace myrtus::lint {
namespace {

/// A pending edge out of `node`: slot -1 means "append to succ", 0/1 address
/// a condition node's true/false slot.
struct Dangling {
  int node = 0;
  int slot = -1;
};

/// A parsed region: the node control enters through, plus every edge that
/// leaves it and still needs a target.
struct Chunk {
  int entry = -1;  // -1: the region is empty (e.g. a lone ';')
  std::vector<Dangling> exits;
};

class Builder {
 public:
  Builder(const std::string& code, const TextIndex& index)
      : code_(code), index_(index) {
    cfg_.nodes.resize(2);
    cfg_.nodes[0].kind = CfgNode::Kind::kEntry;
    cfg_.nodes[1].kind = CfgNode::Kind::kExit;
  }

  Cfg Build(std::size_t body_begin, std::size_t body_end) {
    std::size_t pos = body_begin + 1;
    Chunk body = ParseStmtList(pos, body_end);
    if (body.entry >= 0) {
      cfg_.nodes[cfg_.entry].succ.push_back(body.entry);
    } else {
      cfg_.nodes[cfg_.entry].succ.push_back(cfg_.exit);
    }
    WireAll(body.exits, cfg_.exit);
    // Any condition slot left unwired (malformed input) falls to exit.
    for (CfgNode& node : cfg_.nodes) {
      for (int& s : node.succ) {
        if (s < 0) s = cfg_.exit;
      }
    }
    return std::move(cfg_);
  }

 private:
  int NewNode(CfgNode::Kind kind, std::size_t begin, std::size_t end) {
    CfgNode node;
    node.kind = kind;
    node.begin = begin;
    node.end = end;
    const std::size_t anchor = SkipWsForward(code_, begin, end);
    node.line = index_.LineOf(anchor < end ? anchor : begin);
    if (kind == CfgNode::Kind::kCondition) node.succ = {-1, -1};
    cfg_.nodes.push_back(std::move(node));
    return static_cast<int>(cfg_.nodes.size()) - 1;
  }

  void Wire(const Dangling& d, int target) {
    CfgNode& node = cfg_.nodes[static_cast<std::size_t>(d.node)];
    if (d.slot < 0) {
      node.succ.push_back(target);
    } else if (node.succ[static_cast<std::size_t>(d.slot)] < 0) {
      node.succ[static_cast<std::size_t>(d.slot)] = target;
    }
  }

  void WireAll(const std::vector<Dangling>& exits, int target) {
    for (const Dangling& d : exits) Wire(d, target);
  }

  bool KeywordAt(std::size_t pos, const char* word) const {
    const std::size_t len = std::char_traits<char>::length(word);
    if (code_.compare(pos, len, word) != 0) return false;
    const bool left = pos == 0 || !IsIdentifierChar(code_[pos - 1]);
    const bool right =
        pos + len >= code_.size() || !IsIdentifierChar(code_[pos + len]);
    return left && right;
  }

  /// Advances past a balanced group or a single character.
  std::size_t SkipGroupOrChar(std::size_t pos, std::size_t end) const {
    const char c = code_[pos];
    if (c == '(' || c == '[' || c == '{') {
      const std::size_t close = MatchForward(code_, pos);
      if (close != std::string::npos && close < end) return close + 1;
    }
    return pos + 1;
  }

  /// Consumes a simple statement: everything up to (and including) the ';'
  /// at group depth zero. Embedded lambda bodies and brace initializers are
  /// skipped as balanced groups.
  std::size_t FindStatementEnd(std::size_t pos, std::size_t end) const {
    while (pos < end) {
      if (code_[pos] == ';') return pos + 1;
      pos = SkipGroupOrChar(pos, end);
    }
    return end;
  }

  Chunk ParseStmtList(std::size_t& pos, std::size_t end) {
    Chunk list;
    std::vector<Dangling> open;
    while (true) {
      pos = SkipWsForward(code_, pos, end);
      if (pos >= end || code_[pos] == '}') break;
      Chunk stmt = ParseStmt(pos, end);
      if (stmt.entry < 0) continue;  // empty statement
      if (list.entry < 0) {
        list.entry = stmt.entry;
      } else {
        WireAll(open, stmt.entry);
      }
      open = std::move(stmt.exits);
    }
    list.exits = std::move(open);
    return list;
  }

  Chunk ParseStmt(std::size_t& pos, std::size_t end) {
    pos = SkipWsForward(code_, pos, end);
    if (pos >= end) return {};
    const char c = code_[pos];
    if (c == ';') {
      ++pos;
      return {};
    }
    if (c == '{') {
      const std::size_t close = MatchForward(code_, pos);
      const std::size_t stop =
          close == std::string::npos || close > end ? end : close;
      std::size_t inner = pos + 1;
      Chunk block = ParseStmtList(inner, stop);
      pos = stop < end ? stop + 1 : end;
      return block;
    }
    if (KeywordAt(pos, "if")) return ParseIf(pos, end);
    if (KeywordAt(pos, "while")) return ParseWhile(pos, end);
    if (KeywordAt(pos, "for")) return ParseFor(pos, end);
    if (KeywordAt(pos, "do")) return ParseDo(pos, end);
    if (KeywordAt(pos, "return")) {
      const std::size_t stop = FindStatementEnd(pos, end);
      const int node = NewNode(CfgNode::Kind::kStatement, pos, stop);
      cfg_.nodes[static_cast<std::size_t>(node)].succ.push_back(cfg_.exit);
      pos = stop;
      return {node, {}};
    }
    if (KeywordAt(pos, "break")) {
      const std::size_t stop = FindStatementEnd(pos, end);
      const int node = NewNode(CfgNode::Kind::kStatement, pos, stop);
      pos = stop;
      if (!break_frames_.empty()) {
        break_frames_.back()->push_back({node, -1});
        return {node, {}};
      }
      return {node, {{node, -1}}};
    }
    if (KeywordAt(pos, "continue")) {
      const std::size_t stop = FindStatementEnd(pos, end);
      const int node = NewNode(CfgNode::Kind::kStatement, pos, stop);
      pos = stop;
      if (!continue_targets_.empty()) {
        cfg_.nodes[static_cast<std::size_t>(node)].succ.push_back(
            continue_targets_.back());
        return {node, {}};
      }
      return {node, {{node, -1}}};
    }
    if (KeywordAt(pos, "switch") || KeywordAt(pos, "try")) {
      return ParseOpaque(pos, end);
    }
    // Simple statement.
    const std::size_t stop = FindStatementEnd(pos, end);
    const int node = NewNode(CfgNode::Kind::kStatement, pos, stop);
    pos = stop;
    return {node, {{node, -1}}};
  }

  /// switch/try constructs become one opaque statement node covering the
  /// whole construct (rules see the text, not the internal branching).
  Chunk ParseOpaque(std::size_t& pos, std::size_t end) {
    const std::size_t begin = pos;
    while (pos < end && IsIdentifierChar(code_[pos])) ++pos;  // keyword
    pos = SkipWsForward(code_, pos, end);
    if (pos < end && code_[pos] == '(') pos = SkipGroupOrChar(pos, end);
    pos = SkipWsForward(code_, pos, end);
    if (pos < end && code_[pos] == '{') pos = SkipGroupOrChar(pos, end);
    // try: consume catch clauses; switch: nothing follows the block.
    while (true) {
      const std::size_t mark = SkipWsForward(code_, pos, end);
      if (mark >= end || !KeywordAt(mark, "catch")) break;
      pos = mark + 5;
      pos = SkipWsForward(code_, pos, end);
      if (pos < end && code_[pos] == '(') pos = SkipGroupOrChar(pos, end);
      pos = SkipWsForward(code_, pos, end);
      if (pos < end && code_[pos] == '{') pos = SkipGroupOrChar(pos, end);
    }
    const int node = NewNode(CfgNode::Kind::kStatement, begin, pos);
    return {node, {{node, -1}}};
  }

  Chunk ParseIf(std::size_t& pos, std::size_t end) {
    pos += 2;  // "if"
    pos = SkipWsForward(code_, pos, end);
    if (KeywordAt(pos, "constexpr")) {
      pos += 9;
      pos = SkipWsForward(code_, pos, end);
    }
    if (pos >= end || code_[pos] != '(') return ParseOpaqueTail(pos, end);
    const std::size_t close = MatchForward(code_, pos);
    if (close == std::string::npos || close > end) {
      return ParseOpaqueTail(pos, end);
    }
    const int cond = NewNode(CfgNode::Kind::kCondition, pos + 1, close);
    pos = close + 1;

    Chunk then = ParseStmt(pos, end);
    Chunk out;
    out.entry = cond;
    if (then.entry >= 0) {
      Wire({cond, 0}, then.entry);
      out.exits = std::move(then.exits);
    } else {
      out.exits.push_back({cond, 0});
    }
    const std::size_t mark = SkipWsForward(code_, pos, end);
    if (mark < end && KeywordAt(mark, "else")) {
      pos = mark + 4;
      Chunk alt = ParseStmt(pos, end);
      if (alt.entry >= 0) {
        Wire({cond, 1}, alt.entry);
        out.exits.insert(out.exits.end(), alt.exits.begin(), alt.exits.end());
      } else {
        out.exits.push_back({cond, 1});
      }
    } else {
      out.exits.push_back({cond, 1});
    }
    return out;
  }

  Chunk ParseWhile(std::size_t& pos, std::size_t end) {
    pos += 5;  // "while"
    pos = SkipWsForward(code_, pos, end);
    if (pos >= end || code_[pos] != '(') return ParseOpaqueTail(pos, end);
    const std::size_t close = MatchForward(code_, pos);
    if (close == std::string::npos || close > end) {
      return ParseOpaqueTail(pos, end);
    }
    const int cond = NewNode(CfgNode::Kind::kCondition, pos + 1, close);
    pos = close + 1;

    std::vector<Dangling> breaks;
    break_frames_.push_back(&breaks);
    continue_targets_.push_back(cond);
    Chunk body = ParseStmt(pos, end);
    continue_targets_.pop_back();
    break_frames_.pop_back();

    if (body.entry >= 0) {
      Wire({cond, 0}, body.entry);
      WireAll(body.exits, cond);
    } else {
      Wire({cond, 0}, cond);
    }
    Chunk out;
    out.entry = cond;
    out.exits = std::move(breaks);
    out.exits.push_back({cond, 1});
    return out;
  }

  Chunk ParseFor(std::size_t& pos, std::size_t end) {
    pos += 3;  // "for"
    pos = SkipWsForward(code_, pos, end);
    if (pos >= end || code_[pos] != '(') return ParseOpaqueTail(pos, end);
    const std::size_t open = pos;
    const std::size_t close = MatchForward(code_, pos);
    if (close == std::string::npos || close > end) {
      return ParseOpaqueTail(pos, end);
    }
    // Top-level ';' positions split init / condition / increment.
    std::vector<std::size_t> semis;
    for (std::size_t p = open + 1; p < close;) {
      if (code_[p] == ';') {
        semis.push_back(p);
        ++p;
        continue;
      }
      p = SkipGroupOrChar(p, close);
    }
    pos = close + 1;

    if (semis.size() < 2) {
      // Range-for: the whole header acts as the loop condition (the loop may
      // run zero times); its span carries the loop-variable declaration.
      const int head = NewNode(CfgNode::Kind::kCondition, open + 1, close);
      std::vector<Dangling> breaks;
      break_frames_.push_back(&breaks);
      continue_targets_.push_back(head);
      Chunk body = ParseStmt(pos, end);
      continue_targets_.pop_back();
      break_frames_.pop_back();
      if (body.entry >= 0) {
        Wire({head, 0}, body.entry);
        WireAll(body.exits, head);
      } else {
        Wire({head, 0}, head);
      }
      Chunk out;
      out.entry = head;
      out.exits = std::move(breaks);
      out.exits.push_back({head, 1});
      return out;
    }

    const std::size_t init_b = open + 1;
    const std::size_t init_e = semis[0];
    const std::size_t cond_b = semis[0] + 1;
    const std::size_t cond_e = semis[1];
    const std::size_t incr_b = semis[1] + 1;
    const std::size_t incr_e = close;

    const bool has_init =
        SkipWsForward(code_, init_b, init_e) < init_e;
    const bool has_incr =
        SkipWsForward(code_, incr_b, incr_e) < incr_e;
    const int init =
        has_init ? NewNode(CfgNode::Kind::kStatement, init_b, init_e) : -1;
    const int cond = NewNode(CfgNode::Kind::kCondition, cond_b, cond_e);
    const int incr =
        has_incr ? NewNode(CfgNode::Kind::kStatement, incr_b, incr_e) : -1;
    if (init >= 0) cfg_.nodes[static_cast<std::size_t>(init)].succ.push_back(cond);

    std::vector<Dangling> breaks;
    break_frames_.push_back(&breaks);
    continue_targets_.push_back(incr >= 0 ? incr : cond);
    Chunk body = ParseStmt(pos, end);
    continue_targets_.pop_back();
    break_frames_.pop_back();

    const int after_body = incr >= 0 ? incr : cond;
    if (body.entry >= 0) {
      Wire({cond, 0}, body.entry);
      WireAll(body.exits, after_body);
    } else {
      Wire({cond, 0}, after_body);
    }
    if (incr >= 0) cfg_.nodes[static_cast<std::size_t>(incr)].succ.push_back(cond);

    Chunk out;
    out.entry = init >= 0 ? init : cond;
    out.exits = std::move(breaks);
    out.exits.push_back({cond, 1});
    return out;
  }

  Chunk ParseDo(std::size_t& pos, std::size_t end) {
    pos += 2;  // "do"
    // The condition node is created up front so `continue` can target it.
    const int cond = NewNode(CfgNode::Kind::kCondition, pos, pos);

    std::vector<Dangling> breaks;
    break_frames_.push_back(&breaks);
    continue_targets_.push_back(cond);
    Chunk body = ParseStmt(pos, end);
    continue_targets_.pop_back();
    break_frames_.pop_back();

    std::size_t mark = SkipWsForward(code_, pos, end);
    if (mark < end && KeywordAt(mark, "while")) {
      pos = mark + 5;
      pos = SkipWsForward(code_, pos, end);
      if (pos < end && code_[pos] == '(') {
        const std::size_t close = MatchForward(code_, pos);
        if (close != std::string::npos && close <= end) {
          CfgNode& node = cfg_.nodes[static_cast<std::size_t>(cond)];
          node.begin = pos + 1;
          node.end = close;
          node.line = index_.LineOf(SkipWsForward(code_, pos + 1, close));
          pos = close + 1;
        }
      }
      mark = SkipWsForward(code_, pos, end);
      if (mark < end && code_[mark] == ';') pos = mark + 1;
    }
    WireAll(body.exits, cond);
    Wire({cond, 0}, body.entry >= 0 ? body.entry : cond);
    Chunk out;
    out.entry = body.entry >= 0 ? body.entry : cond;
    out.exits = std::move(breaks);
    out.exits.push_back({cond, 1});
    return out;
  }

  /// Fallback when a control header is malformed: treat the rest of the
  /// statement as one opaque node so the walk keeps going.
  Chunk ParseOpaqueTail(std::size_t& pos, std::size_t end) {
    const std::size_t begin = pos;
    const std::size_t stop = FindStatementEnd(pos, end);
    const int node = NewNode(CfgNode::Kind::kStatement, begin, stop);
    pos = stop;
    return {node, {{node, -1}}};
  }

  const std::string& code_;
  const TextIndex& index_;
  Cfg cfg_;
  std::vector<std::vector<Dangling>*> break_frames_;
  std::vector<int> continue_targets_;
};

}  // namespace

Cfg BuildCfg(const std::string& code, std::size_t body_begin,
             std::size_t body_end, const TextIndex& index) {
  Builder builder(code, index);
  return builder.Build(body_begin, body_end);
}

}  // namespace myrtus::lint
