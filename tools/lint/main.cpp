// myrtus_lint — project-invariant static analyzer for the MYRTUS tree.
//
//   myrtus_lint [--repo-root=DIR] [--suppressions=FILE]
//               [--allow-stale-suppressions] [--max-ms=N] [--sarif=FILE]
//               [--timings] [--changed-only[=REF]]
//               <path>...
//
// Prints one `file:line:col: rule-id: message` per unsuppressed finding
// (column omitted when the rule only knows the line) — the GCC diagnostic
// shape, so editors and CI annotators parse it natively. --sarif=FILE
// additionally writes the run as a SARIF 2.1.0 log for PR-annotation
// uploads; the console format stays the source of truth.
//
// --timings prints a per-rule-family wall-time breakdown to stderr.
// --changed-only[=REF] reports findings only for files that differ from REF
// (default HEAD: working-tree edits) plus untracked files — fast local
// iteration with full-run fidelity, because the cross-TU analysis context is
// still built from every scanned file. Implies --allow-stale-suppressions
// (suppressions for unchanged files cannot match on a filtered run).
//
// Exit codes: 0 = clean, 1 = findings, stale suppressions, or the --max-ms
// budget blown, 2 = usage or I/O error. A suppression that matched nothing is
// stale: it outlived the finding it justified and must be deleted (or the run
// re-invoked with --allow-stale-suppressions while a fix is split across
// commits).
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

/// Changed-file discovery for --changed-only: `git diff --name-only REF`
/// (committed + staged + working-tree differences) plus untracked files.
/// Returns false when git is unavailable or REF does not resolve.
bool GitChangedFiles(const std::string& repo_root, const std::string& ref,
                     std::vector<std::string>* out) {
  // REF reaches a shell; restrict it to git-refname characters so the
  // command stays inert ("origin/main", "HEAD~2", "abc123").
  for (char c : ref) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 &&
        c != '_' && c != '.' && c != '/' && c != '~' && c != '^' &&
        c != '-') {
      std::fprintf(stderr,
                   "myrtus_lint: --changed-only: invalid character in ref "
                   "'%s'\n",
                   ref.c_str());
      return false;
    }
  }
  if (repo_root.find('\'') != std::string::npos) return false;
  const std::string git = "git -C '" + repo_root + "' ";
  const std::string cmd = git + "diff --name-only '" + ref +
                          "' -- 2>/dev/null && " + git +
                          "ls-files --others --exclude-standard 2>/dev/null";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return false;
  std::string text;
  char buf[4096];
  while (std::fgets(buf, sizeof buf, pipe) != nullptr) text += buf;
  const int rc = pclose(pipe);
  if (rc != 0) {
    std::fprintf(stderr,
                 "myrtus_lint: --changed-only: git diff against '%s' failed "
                 "(not a repository, or unknown ref)\n",
                 ref.c_str());
    return false;
  }
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    if (end > start) out->push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  myrtus::lint::Options options;
  std::vector<std::string> paths;
  bool allow_stale = false;
  bool changed_only = false;
  std::string changed_ref = "HEAD";
  long max_ms = 0;
  std::string sarif_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--repo-root=", 0) == 0) {
      options.repo_root = arg.substr(12);
    } else if (arg.rfind("--suppressions=", 0) == 0) {
      options.suppressions_path = arg.substr(15);
    } else if (arg == "--allow-stale-suppressions") {
      allow_stale = true;
    } else if (arg.rfind("--max-ms=", 0) == 0) {
      max_ms = std::strtol(arg.c_str() + 9, nullptr, 10);
    } else if (arg.rfind("--sarif=", 0) == 0) {
      sarif_path = arg.substr(8);
    } else if (arg == "--timings") {
      options.collect_timings = true;
    } else if (arg == "--changed-only") {
      changed_only = true;
    } else if (arg.rfind("--changed-only=", 0) == 0) {
      changed_only = true;
      changed_ref = arg.substr(15);
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: myrtus_lint [--repo-root=DIR] [--suppressions=FILE] "
          "[--allow-stale-suppressions] [--max-ms=N] [--sarif=FILE] "
          "[--timings] [--changed-only[=REF]] <path>...\n");
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "myrtus_lint: unknown flag '%s'\n", arg.c_str());
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr, "myrtus_lint: no paths given (try: src tests bench)\n");
    return 2;
  }
  if (changed_only) {
    if (!GitChangedFiles(options.repo_root, changed_ref,
                         &options.report_paths)) {
      return 2;
    }
    options.restrict_report = true;
    allow_stale = true;  // suppressions for unchanged files cannot match
    std::fprintf(stderr,
                 "myrtus_lint: --changed-only: %zu file(s) differ from %s\n",
                 options.report_paths.size(), changed_ref.c_str());
  }

  // The analyzer is host tooling, not simulation code: wall time here gates
  // its own latency budget (--max-ms), it never feeds a computed result.
  // LINT: allow(determinism, lint CLI measures its own runtime for --max-ms)
  const auto start = std::chrono::steady_clock::now();
  auto result = myrtus::lint::LintPaths(paths, options);
  // LINT: allow(determinism, lint CLI measures its own runtime for --max-ms)
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const long elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count();
  if (!result.ok()) {
    std::fprintf(stderr, "myrtus_lint: %s\n", result.status().ToString().c_str());
    return 2;
  }

  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "myrtus_lint: cannot write SARIF log to '%s'\n",
                   sarif_path.c_str());
      return 2;
    }
    out << myrtus::lint::SarifReport(*result) << "\n";
  }

  if (options.collect_timings) {
    for (const myrtus::lint::FamilyTiming& t : result->timings) {
      std::fprintf(stderr, "myrtus_lint: timing: %-26s %9.2f ms\n",
                   t.family.c_str(), t.ms);
    }
  }

  for (const myrtus::lint::Finding& f : result->findings) {
    if (f.col > 0) {
      std::printf("%s:%d:%d: %s: %s\n", f.file.c_str(), f.line, f.col,
                  f.rule.c_str(), f.message.c_str());
    } else {
      std::printf("%s:%d: %s: %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                  f.message.c_str());
    }
  }
  bool failed = !result->findings.empty();
  for (const myrtus::lint::Suppression& sup : result->unused_suppressions) {
    std::fprintf(stderr,
                 "myrtus_lint: %s: suppression matched nothing this run: "
                 "%s %s (%s)\n",
                 allow_stale ? "note" : "error", sup.rule.c_str(),
                 sup.path_pattern.c_str(), sup.reason.c_str());
    if (!allow_stale) failed = true;
  }
  if (max_ms > 0 && elapsed_ms > max_ms) {
    std::fprintf(stderr,
                 "myrtus_lint: error: run took %ldms, over the --max-ms=%ld "
                 "budget\n",
                 elapsed_ms, max_ms);
    failed = true;
  }
  std::fprintf(stderr,
               "myrtus_lint: %zu files scanned, %zu finding(s), %zu "
               "suppressed, %ldms\n",
               result->files_scanned, result->findings.size(),
               result->suppressed, elapsed_ms);
  return failed ? 1 : 0;
}
