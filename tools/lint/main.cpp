// myrtus_lint — project-invariant static analyzer for the MYRTUS tree.
//
//   myrtus_lint [--repo-root=DIR] [--suppressions=FILE] <path>...
//
// Prints one `file:line: rule-id: message` per unsuppressed finding.
// Exit codes: 0 = clean, 1 = findings, 2 = usage or I/O error.
#include <cstdio>
#include <string>
#include <vector>

#include "lint.hpp"

int main(int argc, char** argv) {
  myrtus::lint::Options options;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--repo-root=", 0) == 0) {
      options.repo_root = arg.substr(12);
    } else if (arg.rfind("--suppressions=", 0) == 0) {
      options.suppressions_path = arg.substr(15);
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: myrtus_lint [--repo-root=DIR] [--suppressions=FILE] "
          "<path>...\n");
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "myrtus_lint: unknown flag '%s'\n", arg.c_str());
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr, "myrtus_lint: no paths given (try: src tests bench)\n");
    return 2;
  }

  auto result = myrtus::lint::LintPaths(paths, options);
  if (!result.ok()) {
    std::fprintf(stderr, "myrtus_lint: %s\n", result.status().ToString().c_str());
    return 2;
  }

  for (const myrtus::lint::Finding& f : result->findings) {
    std::printf("%s:%d: %s: %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
  }
  for (const myrtus::lint::Suppression& sup : result->unused_suppressions) {
    std::fprintf(stderr,
                 "myrtus_lint: note: suppression matched nothing this run: "
                 "%s %s (%s)\n",
                 sup.rule.c_str(), sup.path_pattern.c_str(), sup.reason.c_str());
  }
  std::fprintf(stderr, "myrtus_lint: %zu files scanned, %zu finding(s), %zu suppressed\n",
               result->files_scanned, result->findings.size(),
               result->suppressed);
  return result->findings.empty() ? 0 : 1;
}
