// Rule engine for myrtus_lint. Each rule checks one project invariant the
// compiler cannot see (see docs/LINTING.md for the rationale and examples):
//
//   determinism     — sim-driven code must not read wall clocks, ambient
//                     randomness, or spawn threads; only util::Rng streams
//                     and sim::Clock keep chaos timelines byte-reproducible.
//   layering        — #include "<module>/..." edges must follow the DESIGN
//                     layer DAG (mirrors src/CMakeLists.txt DEPS).
//   status-discard  — `(void)` / static_cast<void> discards of calls that
//                     return util::Status / util::StatusOr must carry a
//                     `// LINT: discard(<reason>)` justification.
//   pragma-once     — every header carries `#pragma once`.
//   hygiene-banned  — strcpy/sprintf/atoi-class functions are banned.
//
// Three flow-aware families run on top of the AST/CFG front-end
// (tools/lint/ast.hpp, tools/lint/cfg.hpp, tools/lint/flow_rules.hpp):
//
//   parallel-capture-race    — writes through by-reference captures inside
//                              util::Parallel* bodies must be shard-indexed.
//   statusor-use-before-ok   — .value()/operator*/operator-> on a StatusOr
//                              must be dominated by an ok()/MustOk check on
//                              every CFG path within the function.
//   rng-substream-discipline — no ambient util::Rng construction inside
//                              parallel bodies; no duplicate literal
//                              (seed, stream) pairs across src/.
//
// The capture-lifetime family (tools/lint/lifetime_rules.hpp) closes a
// deferred-sink registry over the cross-TU call graph and flags stack-scoped
// state flowing into callbacks that outlive their frame:
//
//   deferred-ref-capture     — [&] defaults / explicit &name captures into a
//                              deferred sink (waive per capture with
//                              `LINT: deferred-capture-ok(<name>) -- why`).
//   deferred-this-capture    — [this] registrations called on block-scoped
//                              receivers.
//   deferred-pointer-capture — by-value captures holding a stack address
//                              (second severity; SARIF level "warning").
//
// Any rule can additionally be waived at a single site with
// `// LINT: allow(<rule-id>, <reason>)` on the finding line or the line above.
#pragma once

#include <set>
#include <string>
#include <vector>

namespace myrtus::lint {

struct Finding {
  std::string file;  // repo-relative path
  int line = 0;      // 1-based
  std::string rule;
  std::string message;
  int col = 0;  // 1-based; 0 = unknown (whole-line finding). Last on purpose:
                // the line-only rules brace-init the first four fields.
};

/// One analyzed file: raw text for annotation lookup, stripped "code view"
/// for token matching. Paths are repo-relative with forward slashes. The
/// joined `raw`/`code` buffers are byte-for-byte the same geometry (the lexer
/// guarantees it), so offsets found in the code view address the raw text.
struct FileContext {
  std::string path;
  std::string module;  // "util", "net", ... for src/<module>/ files, else ""
  bool is_header = false;
  std::string raw;   // original source
  std::string code;  // stripped source (comments/literal contents blanked)
  std::vector<std::string> raw_lines;
  std::vector<std::string> code_lines;
};

/// Lexes `source` into a context. `path` must be repo-relative.
FileContext MakeFileContext(std::string path, const std::string& source);

/// Pass 1 of the Status-discipline rule: names of functions declared to
/// return util::Status or util::StatusOr anywhere in the scanned set.
std::set<std::string> CollectStatusReturningFunctions(
    const std::vector<FileContext>& files);

/// Wall-time spent in one rule family during a RunRules pass, for the CLI's
/// --timings breakdown. Families: "front-end" (lexing regex + ASTs + call
/// graph + fact tables), "lexical" (the per-line token rules), then one entry
/// per flow/interprocedural family.
struct FamilyTiming {
  std::string family;
  double ms = 0.0;
};

/// Runs every rule over `files` (two passes: Status registry, then checks).
/// `determinism_allowlist` holds path prefixes exempt from the determinism
/// rule — the designated host-time boundaries (bench drivers, exporters).
/// Findings are ordered by (file, line, rule).
///
/// `timings`, when non-null, receives the per-family wall-time breakdown.
/// `report_only`, when non-null, restricts *reported* findings to the given
/// repo-relative paths (the --changed-only mode): the cross-TU analysis
/// context is still built from every file, so the findings on the reported
/// subset are byte-identical to a full run's — only per-file rule execution
/// for unreported files is skipped (those families are file-local).
std::vector<Finding> RunRules(const std::vector<FileContext>& files,
                              const std::vector<std::string>& determinism_allowlist,
                              std::vector<FamilyTiming>* timings = nullptr,
                              const std::set<std::string>* report_only = nullptr);

/// True when the finding at `line` (1-based) carries a
/// `LINT: allow(<rule>` or — for status-discard — `LINT: discard(`
/// annotation on that raw line or up to three lines above (justification
/// comments may wrap).
bool HasSiteAnnotation(const FileContext& file, int line, const std::string& rule);

}  // namespace myrtus::lint
