#include "lexer.hpp"

#include <cctype>
#include <cstddef>

namespace myrtus::lint {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when the '"' at `i` opens a raw string literal (R, u8R, uR, UR, LR
/// prefix with a non-identifier character before the prefix).
bool IsRawStringQuote(const std::string& s, std::size_t i) {
  if (i == 0 || s[i - 1] != 'R') return false;
  std::size_t p = i - 1;  // index of 'R'
  if (p > 0 && (s[p - 1] == 'u' || s[p - 1] == 'U' || s[p - 1] == 'L')) {
    --p;
    if (p > 0 && s[p] == 'u' && s[p - 1] == '8') return false;  // "u8R" caught below
  } else if (p > 1 && s[p - 1] == '8' && s[p - 2] == 'u') {
    p -= 2;
  }
  return p == 0 || !IsIdentChar(s[p - 1]);
}

/// True when the '\'' at `i` is a digit separator (1'000'000), not a char
/// literal: digit before, identifier char (or another separator group) after.
bool IsDigitSeparator(const std::string& s, std::size_t i) {
  if (i == 0 || std::isdigit(static_cast<unsigned char>(s[i - 1])) == 0) return false;
  if (i + 1 >= s.size()) return false;
  return IsIdentChar(s[i + 1]);
}

}  // namespace

std::string StripCommentsAndStrings(const std::string& source) {
  std::string out = source;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  const auto blank = [&](std::size_t idx) {
    if (out[idx] != '\n') out[idx] = ' ';
  };
  std::size_t i = 0;
  while (i < source.size()) {
    const char c = source[i];
    const char next = i + 1 < source.size() ? source[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          blank(i);
          blank(i + 1);
          i += 2;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          blank(i);
          blank(i + 1);
          i += 2;
        } else if (c == '"' && IsRawStringQuote(source, i)) {
          // R"delim( ... )delim" — no escapes inside; blank between the quotes.
          std::size_t j = i + 1;
          std::string delim;
          while (j < source.size() && source[j] != '(') delim.push_back(source[j++]);
          const std::string close = ")" + delim + "\"";
          std::size_t end = source.find(close, j);
          const std::size_t stop =
              end == std::string::npos ? source.size() : end + close.size();
          for (std::size_t k = i + 1; k + 1 < stop; ++k) blank(k);
          i = stop;
        } else if (c == '"') {
          state = State::kString;
          ++i;
        } else if (c == '\'' && !IsDigitSeparator(source, i)) {
          state = State::kChar;
          ++i;
        } else {
          ++i;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          blank(i);
        }
        ++i;
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          blank(i);
          blank(i + 1);
          state = State::kCode;
          i += 2;
        } else {
          blank(i);
          ++i;
        }
        break;
      case State::kString:
      case State::kChar: {
        const char quote = state == State::kString ? '"' : '\'';
        if (c == '\\') {
          blank(i);
          if (i + 1 < source.size()) blank(i + 1);
          i += 2;
        } else if (c == quote) {
          state = State::kCode;
          ++i;
        } else {
          blank(i);
          ++i;
        }
        break;
      }
    }
  }
  return out;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  for (const char c : text) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  lines.push_back(current);
  return lines;
}

}  // namespace myrtus::lint
