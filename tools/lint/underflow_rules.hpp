// unsigned-underflow: flags unsigned `a - b` (and `a -= b`) with no
// dominating guard establishing a >= b on every CFG path to the subtraction.
//
// Unsignedness is a cross-TU name property (callgraph.hpp TypeFacts): an
// operand is unsigned when its trailing identifier is only ever declared
// with an unsigned integer type anywhere in the scanned set, or when it is a
// call to a function whose every scanned declaration returns one — so
// `node.mem_capacity_mb() - node.mem_allocated_mb()` is tracked even though
// both accessors live in another translation unit.
//
// Recognized guards:
//   * a dominating branch fact `a >= b` / `a > b` (or `b <= a` / `b < a`),
//     including the negated fact on the false edge of a single-comparison
//     condition (`if (b > a) return 0;` guards the fall-through), with facts
//     killed when either side is written;
//   * a subtrahend clamped through `std::min(a, ...)` / `std::min(..., a)`;
//   * no subtraction at all: `util::SubSat(a, b)` is the sanctioned clamp.
//
// Deliberately NOT recognized: ternary guards (`a > b ? a - b : 0`). The
// statement-level CFG cannot see into them, and the repo's reviewed idiom for
// that exact shape is util::SubSat — the rule exists to push conversions to
// it. Literal subtrahends (`v.size() - 1`) are out of scope: constant offsets
// are overwhelmingly guarded by emptiness checks the analyzer cannot model,
// and flagging them would drown the signal. docs/LINTING.md has the full
// envelope.
#pragma once

#include <string>
#include <vector>

#include "ast.hpp"
#include "callgraph.hpp"
#include "rules.hpp"

namespace myrtus::lint {

/// Runs over every file at once (`files` and `asts` are parallel arrays);
/// `facts` carries the cross-TU unsignedness tables.
std::vector<Finding> CheckUnsignedUnderflow(
    const std::vector<FileContext>& files, const std::vector<FileAst>& asts,
    const CallGraph& graph, const TypeFacts& facts);

}  // namespace myrtus::lint
