#include "callgraph.hpp"

#include <algorithm>
#include <array>
#include <cctype>

namespace myrtus::lint {
namespace {

std::size_t IdentEnd(const std::string& s, std::size_t pos) {
  while (pos < s.size() && IsIdentifierChar(s[pos])) ++pos;
  return pos;
}

std::size_t PrevNonWs(const std::string& s, std::size_t pos) {
  while (pos > 0) {
    --pos;
    if (std::isspace(static_cast<unsigned char>(s[pos])) == 0) return pos;
  }
  return std::string::npos;
}

std::string Trimmed(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

bool IsControlKeyword(const std::string& word) {
  static const std::set<std::string> kControl = {
      "if",     "while",  "for",      "switch",   "catch",  "return",
      "sizeof", "alignof", "decltype", "new",      "delete", "constexpr",
      "case",   "throw",  "co_return", "co_await", "co_yield"};
  return kControl.count(word) != 0;
}

/// Splits [begin, end) on commas at (), [], {}, <> depth zero (same angle
/// heuristic as the AST's capture/parameter splitter).
std::vector<std::pair<std::size_t, std::size_t>> SplitArgSpans(
    const std::string& code, std::size_t begin, std::size_t end) {
  std::vector<std::pair<std::size_t, std::size_t>> spans;
  int depth = 0;
  int angle = 0;
  std::size_t start = begin;
  for (std::size_t i = begin; i < end; ++i) {
    const char c = code[i];
    if (c == '(' || c == '[' || c == '{') ++depth;
    if (c == ')' || c == ']' || c == '}') --depth;
    if (c == '<') ++angle;
    if (c == '>' && angle > 0) --angle;
    if (c == ',' && depth == 0 && angle == 0) {
      spans.emplace_back(start, i);
      start = i + 1;
    }
  }
  if (SkipWsForward(code, start, end) < end || !spans.empty()) {
    spans.emplace_back(start, end);
  }
  return spans;
}

/// Trailing identifier of one parameter declaration (after cutting a default
/// argument); "" when the parameter is unnamed or the text is a bare type.
std::string ParamNameOf(const std::string& decl) {
  std::string d = decl;
  int depth = 0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    const char c = d[i];
    if (c == '(' || c == '[' || c == '{' || c == '<') ++depth;
    if (c == ')' || c == ']' || c == '}' || c == '>') --depth;
    if (c == '=' && depth == 0) {
      d.resize(i);
      break;
    }
  }
  d = Trimmed(d);
  std::size_t e = d.size();
  while (e > 0 && IsIdentifierChar(d[e - 1])) --e;
  const std::string name = d.substr(e);
  static const std::set<std::string> kTypeWords = {
      "int",   "auto",     "char",   "bool",  "double", "float",
      "long",  "short",    "unsigned", "signed", "size_t", "void",
      "const", "uint64_t", "uint32_t", "int64_t", "int32_t"};
  if (name.empty() || kTypeWords.count(name) != 0) return "";
  if (e == 0) return "";
  if (d[e - 1] == ':' || d[e - 1] == '.') return "";
  return name;
}

/// Collects the declaration text preceding the (possibly qualified) symbol
/// name: identifier/template/qualifier characters walked backwards until a
/// statement boundary. "std::uint64_t" for `std::uint64_t Free()`, "" at
/// file starts or after '}' (constructors, lambdas).
std::string ReturnTypeBefore(const std::string& code, std::size_t decl_begin) {
  std::size_t e = decl_begin;
  while (e > 0 && std::isspace(static_cast<unsigned char>(code[e - 1])) != 0) {
    --e;
  }
  std::size_t b = e;
  int angle = 0;
  while (b > 0) {
    const char c = code[b - 1];
    if (c == '>') ++angle;
    if (c == '<' && angle > 0) --angle;
    if (IsIdentifierChar(c) || c == ':' || c == '<' || c == '>' || c == '&' ||
        c == '*' || c == ',' ||
        std::isspace(static_cast<unsigned char>(c)) != 0) {
      // A ',' or space outside a template list ends the type walk: we only
      // want the innermost declaration specifier chain.
      if ((c == ',' || std::isspace(static_cast<unsigned char>(c)) != 0) &&
          angle == 0) {
        // Peek past the whitespace: another type-ish token keeps the walk
        // going ("const std::uint64_t"); anything else stops it.
        std::size_t p = b - 1;
        while (p > 0 &&
               (std::isspace(static_cast<unsigned char>(code[p - 1])) != 0)) {
          --p;
        }
        if (c == ',' || p == 0 ||
            (!IsIdentifierChar(code[p - 1]) && code[p - 1] != '>')) {
          break;
        }
      }
      --b;
      continue;
    }
    break;
  }
  return Trimmed(code.substr(b, e - b));
}

/// Walks a qualifier chain `A::B::` backwards from `name_begin`, returning
/// the offset where the qualified name starts (== name_begin when the name
/// is unqualified).
std::size_t QualifiedBegin(const std::string& code, std::size_t name_begin) {
  std::size_t b = name_begin;
  while (b >= 2 && code[b - 1] == ':' && code[b - 2] == ':') {
    std::size_t q = b - 2;
    // Skip a template argument list on the qualifier: Foo<T>::Bar.
    if (q > 0 && code[q - 1] == '>') {
      int angle = 0;
      std::size_t p = q;
      while (p > 0) {
        --p;
        if (code[p] == '>') ++angle;
        if (code[p] == '<' && --angle == 0) break;
      }
      if (angle != 0) break;
      q = p;
    }
    std::size_t qb = q;
    while (qb > 0 && IsIdentifierChar(code[qb - 1])) --qb;
    if (qb == q) break;  // `::name` with no qualifier identifier
    b = qb;
  }
  return b;
}

void AddFunctionSymbols(const std::vector<FileContext>& files,
                        const std::vector<FileAst>& asts, CallGraph* graph) {
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    const std::string& code = asts[fi].code;
    for (const FunctionInfo& fn : asts[fi].functions) {
      Symbol sym;
      sym.name = fn.name;
      sym.file_index = fi;
      sym.name_begin = fn.name_begin;
      sym.body_begin = fn.body_begin;
      sym.body_end = fn.body_end;
      sym.line = asts[fi].index.LineOf(fn.name_begin);
      const std::size_t qb = QualifiedBegin(code, fn.name_begin);
      sym.qualified =
          qb < fn.name_begin
              ? code.substr(qb, IdentEnd(code, fn.name_begin) - qb)
              : fn.name;
      sym.return_type = ReturnTypeBefore(code, qb);
      const std::size_t open =
          SkipWsForward(code, IdentEnd(code, fn.name_begin), code.size());
      if (open < code.size() && code[open] == '(') {
        const std::size_t close = MatchForward(code, open);
        if (close != std::string::npos) {
          for (const auto& [b, e] : SplitArgSpans(code, open + 1, close)) {
            ParamInfo param;
            param.text = Trimmed(code.substr(b, e - b));
            param.name = ParamNameOf(param.text);
            sym.params.push_back(std::move(param));
          }
        }
      }
      graph->symbols.push_back(std::move(sym));
    }
  }
}

void AddLambdaSymbols(const std::vector<FileContext>& files,
                      const std::vector<FileAst>& asts, CallGraph* graph) {
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    const std::string& code = asts[fi].code;
    for (const LambdaInfo& lambda : asts[fi].lambdas) {
      // `auto name = [..](..){..}` / `name = [..]...`: the '=' immediately
      // before the introducer, preceded by an identifier, names the lambda.
      const std::size_t eq = PrevNonWs(code, lambda.intro);
      if (eq == std::string::npos || code[eq] != '=') continue;
      if (eq > 0 && (code[eq - 1] == '=' || code[eq - 1] == '!' ||
                     code[eq - 1] == '<' || code[eq - 1] == '>')) {
        continue;  // comparison, not assignment
      }
      std::size_t name_begin = 0;
      const std::string name = IdentifierBefore(code, eq, &name_begin);
      if (name.empty() ||
          std::isdigit(static_cast<unsigned char>(name[0])) != 0) {
        continue;
      }
      Symbol sym;
      sym.name = name;
      sym.qualified = name;
      sym.file_index = fi;
      sym.name_begin = name_begin;
      sym.body_begin = lambda.body_begin;
      sym.body_end = lambda.body_end;
      sym.line = asts[fi].index.LineOf(name_begin);
      sym.is_lambda = true;
      for (std::size_t i = 0; i < lambda.param_names.size(); ++i) {
        sym.params.push_back({lambda.param_names[i], lambda.param_texts[i]});
      }
      graph->symbols.push_back(std::move(sym));
    }
  }
}

void CollectCallSites(const std::vector<FileContext>& files,
                      const std::vector<FileAst>& asts, CallGraph* graph) {
  // Definition positions are not call sites.
  std::vector<std::set<std::size_t>> defs(files.size());
  for (const Symbol& sym : graph->symbols) {
    defs[sym.file_index].insert(sym.name_begin);
  }
  // Innermost enclosing symbol per position, resolved by smallest span.
  std::vector<std::vector<int>> by_file(files.size());
  for (std::size_t s = 0; s < graph->symbols.size(); ++s) {
    by_file[graph->symbols[s].file_index].push_back(static_cast<int>(s));
  }
  graph->file_calls.resize(files.size());
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    const std::string& code = asts[fi].code;
    for (std::size_t i = 0; i < code.size(); ++i) {
      if (code[i] != '(') continue;
      std::size_t name_begin = 0;
      const std::string name = IdentifierBefore(code, i, &name_begin);
      if (name.empty() || IsControlKeyword(name)) continue;
      if (std::isdigit(static_cast<unsigned char>(name[0])) != 0) continue;
      if (defs[fi].count(name_begin) != 0) continue;
      // Distinguish calls from declarations/definitions: a name directly
      // preceded by another identifier or '>' ('std::vector<T> foo(') is a
      // declarator unless the preceding word is a statement keyword.
      const std::size_t prev = name_begin == 0
                                   ? std::string::npos
                                   : PrevNonWs(code, name_begin);
      bool member_call = false;
      if (prev != std::string::npos) {
        const char c = code[prev];
        if (c == '.' ||
            (c == '>' && prev > 0 && code[prev - 1] == '-')) {
          member_call = true;
        } else if (IsIdentifierChar(c)) {
          std::size_t b = prev + 1;
          while (b > 0 && IsIdentifierChar(code[b - 1])) --b;
          const std::string word = code.substr(b, prev + 1 - b);
          if (!IsControlKeyword(word) && word != "else" && word != "in") {
            continue;  // `Type name(` — a declaration
          }
        } else if (c == '>' || c == '&' || c == '*') {
          // `vector<int> name(` / `T& name(` / `T* name(` declarators; a
          // '>' closing a comparison before a call is rare enough to accept
          // the false negative (documented envelope).
          continue;
        }
      }
      const std::size_t close = MatchForward(code, i);
      if (close == std::string::npos) continue;
      CallSite site;
      site.pos = name_begin;
      site.line = asts[fi].index.LineOf(name_begin);
      site.col = asts[fi].index.ColOf(name_begin);
      site.name = name;
      site.member_call = member_call;
      site.args = SplitArgSpans(code, i + 1, close);
      // Innermost enclosing symbol.
      std::size_t best_span = std::string::npos;
      for (int s : by_file[fi]) {
        const Symbol& sym = graph->symbols[static_cast<std::size_t>(s)];
        if (name_begin > sym.body_begin && name_begin < sym.body_end) {
          const std::size_t span = sym.body_end - sym.body_begin;
          if (span < best_span) {
            best_span = span;
            site.caller = s;
          }
        }
      }
      graph->file_calls[fi].push_back(std::move(site));
    }
  }
}

}  // namespace

const std::vector<int>& CallGraph::Resolve(const std::string& name) const {
  static const std::vector<int> kEmpty;
  const auto it = by_name.find(name);
  return it == by_name.end() ? kEmpty : it->second;
}

CallGraph BuildCallGraph(const std::vector<FileContext>& files,
                         const std::vector<FileAst>& asts) {
  CallGraph graph;
  AddFunctionSymbols(files, asts, &graph);
  AddLambdaSymbols(files, asts, &graph);
  for (std::size_t s = 0; s < graph.symbols.size(); ++s) {
    graph.by_name[graph.symbols[s].name].push_back(static_cast<int>(s));
  }
  CollectCallSites(files, asts, &graph);
  graph.callees.assign(graph.symbols.size(), {});
  for (const auto& sites : graph.file_calls) {
    for (const CallSite& site : sites) {
      if (site.caller < 0) continue;
      for (int callee : graph.Resolve(site.name)) {
        graph.callees[static_cast<std::size_t>(site.caller)].push_back(callee);
      }
    }
  }
  for (auto& list : graph.callees) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  return graph;
}

namespace {

bool IsExprKeyword(const std::string& word) {
  static const std::set<std::string> kKeywords = {
      "return",   "else",    "case",      "goto",    "co_return", "throw",
      "new",      "delete",  "if",        "while",   "for",       "do",
      "switch",   "break",   "continue",  "default", "public",    "private",
      "protected", "using",  "namespace", "template", "typename", "operator",
      "const",    "constexpr", "static",  "auto",    "void",      "struct",
      "class",    "enum",    "typedef",   "template"};
  return kKeywords.count(word) != 0;
}

std::string StripWs(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (std::isspace(static_cast<unsigned char>(c)) == 0) out.push_back(c);
  }
  return out;
}

Operand FinishOperand(const std::string& code, Operand op) {
  if (op.end <= op.begin) return {};
  op.text = StripWs(code.substr(op.begin, op.end - op.begin));
  if (op.text.empty()) return {};
  if (IsExprKeyword(op.text)) return {};
  op.valid = true;
  return op;
}

}  // namespace

Operand ParseOperandBackward(const std::string& code, std::size_t end_pos) {
  Operand op;
  std::size_t e = end_pos;
  while (e > 0 && std::isspace(static_cast<unsigned char>(code[e - 1])) != 0) {
    --e;
  }
  if (e == 0) return {};
  op.end = e;
  std::size_t i = e;
  bool rightmost = true;
  while (true) {
    // Trailing () / [] groups of this segment.
    bool had_group = false;
    while (i > 0 && (code[i - 1] == ')' || code[i - 1] == ']')) {
      const char close = code[i - 1];
      const char open = close == ')' ? '(' : '[';
      int depth = 0;
      std::size_t p = i;
      bool matched = false;
      while (p > 0) {
        --p;
        if (code[p] == close) ++depth;
        if (code[p] == open && --depth == 0) {
          matched = true;
          break;
        }
      }
      if (!matched) return {};
      i = p;
      if (close == ')' && rightmost) op.is_call = true;
      had_group = true;
    }
    std::size_t ib = i;
    while (ib > 0 && IsIdentifierChar(code[ib - 1])) --ib;
    if (ib == i) {
      // A bare parenthesized expression `( ... )` is not unit-simple.
      if (had_group) return {};
      return {};
    }
    const std::string ident = code.substr(ib, i - ib);
    if (op.last_ident.empty()) op.last_ident = ident;
    i = ib;
    rightmost = false;
    if (i > 0 && code[i - 1] == '.') {
      --i;
      continue;
    }
    if (i > 1 && code[i - 1] == '>' && code[i - 2] == '-') {
      i -= 2;
      continue;
    }
    if (i > 1 && code[i - 1] == ':' && code[i - 2] == ':') {
      i -= 2;
      continue;
    }
    break;
  }
  op.begin = i;
  op.is_literal = std::isdigit(static_cast<unsigned char>(code[i])) != 0;
  return FinishOperand(code, op);
}

Operand ParseOperandForward(const std::string& code, std::size_t pos,
                            std::size_t limit) {
  Operand op;
  std::size_t p = SkipWsForward(code, pos, limit);
  if (p >= limit) return {};
  op.begin = p;
  while (p < limit && (code[p] == '-' || code[p] == '+' || code[p] == '!' ||
                       code[p] == '~')) {
    // `--` / `++` prefixes are writes, not unit-simple reads.
    if (p + 1 < limit && code[p + 1] == code[p] &&
        (code[p] == '-' || code[p] == '+')) {
      return {};
    }
    p = SkipWsForward(code, p + 1, limit);
  }
  if (p < limit && std::isdigit(static_cast<unsigned char>(code[p])) != 0) {
    while (p < limit && (IsIdentifierChar(code[p]) || code[p] == '.' ||
                         code[p] == '\'')) {
      ++p;
    }
    op.end = p;
    op.is_literal = true;
    return FinishOperand(code, op);
  }
  while (true) {
    const std::size_t ib = p;
    while (p < limit && IsIdentifierChar(code[p])) ++p;
    if (p == ib) return {};
    op.last_ident = code.substr(ib, p - ib);
    op.is_call = false;
    // Trailing groups: call parens, index brackets.
    while (p < limit && (code[p] == '(' || code[p] == '[')) {
      const std::size_t close = MatchForward(code, p);
      if (close == std::string::npos || close >= limit) return {};
      if (code[p] == '(') op.is_call = true;
      p = close + 1;
    }
    const std::size_t next = SkipWsForward(code, p, limit);
    if (next + 1 < limit && code[next] == ':' && code[next + 1] == ':') {
      p = next + 2;
      continue;
    }
    if (next + 1 < limit && code[next] == '-' && code[next + 1] == '>') {
      p = next + 2;
      continue;
    }
    if (next < limit && code[next] == '.' && next + 1 < limit &&
        IsIdentifierChar(code[next + 1]) &&
        std::isdigit(static_cast<unsigned char>(code[next + 1])) == 0) {
      p = next + 1;
      continue;
    }
    break;
  }
  op.end = p;
  return FinishOperand(code, op);
}

namespace {

/// The unsigned integer type heads the repo uses; `unsigned` itself may be
/// followed by int/long/char/short before the declared name.
bool IsUnsignedTypeWord(const std::string& word) {
  static const std::set<std::string> kUnsigned = {
      "uint8_t",  "uint16_t", "uint32_t", "uint64_t",
      "uintptr_t", "size_t",   "unsigned"};
  return kUnsigned.count(word) != 0;
}

/// Signed / floating / other value types that veto a name's unsignedness
/// when they declare the same identifier elsewhere.
bool IsSignedTypeWord(const std::string& word) {
  static const std::set<std::string> kSigned = {
      "int",     "short",   "long",    "signed",  "double",   "float",
      "int8_t",  "int16_t", "int32_t", "int64_t", "ptrdiff_t"};
  return kSigned.count(word) != 0;
}

bool IsIntWidthWord(const std::string& word) {
  return word == "int" || word == "long" || word == "char" || word == "short";
}

/// Scans one file for `<type> name` declarator pairs and records the
/// variable / function names under the matching bucket.
void ScanTypedDecls(const std::string& code, std::set<std::string>* u_names,
                    std::set<std::string>* u_fns,
                    std::set<std::string>* s_names,
                    std::set<std::string>* s_fns) {
  for (std::size_t i = 0; i < code.size();) {
    if (!IsIdentifierChar(code[i])) {
      ++i;
      continue;
    }
    const std::size_t s = i;
    const std::size_t e = IdentEnd(code, i);
    i = e;
    const std::string word = code.substr(s, e - s);
    const bool is_unsigned = IsUnsignedTypeWord(word);
    const bool is_signed = IsSignedTypeWord(word);
    if (!is_unsigned && !is_signed) continue;
    std::size_t p = SkipWsForward(code, e, code.size());
    if (word == "unsigned" || word == "signed" || word == "long" ||
        word == "short") {
      // Consume width words: `unsigned long long x`.
      while (p < code.size() && IsIdentifierChar(code[p])) {
        const std::size_t we = IdentEnd(code, p);
        if (!IsIntWidthWord(code.substr(p, we - p))) break;
        p = SkipWsForward(code, we, code.size());
      }
    }
    while (p < code.size() && (code[p] == '&' || code[p] == '*')) {
      p = SkipWsForward(code, p + 1, code.size());
    }
    // `const` between type and name.
    if (code.compare(p, 5, "const") == 0 &&
        (p + 5 >= code.size() || !IsIdentifierChar(code[p + 5]))) {
      p = SkipWsForward(code, p + 5, code.size());
    }
    const std::size_t ne = IdentEnd(code, p);
    if (ne == p) continue;
    const std::string name = code.substr(p, ne - p);
    if (std::isdigit(static_cast<unsigned char>(name[0])) != 0) continue;
    const std::size_t after = SkipWsForward(code, ne, code.size());
    const char next = after < code.size() ? code[after] : '\0';
    if (next == '(') {
      (is_unsigned ? u_fns : s_fns)->insert(name);
    } else if (next == ';' || next == '=' || next == ',' || next == ')' ||
               next == '{' || next == '[' || next == ':') {
      if (next == '=' && after + 1 < code.size() && code[after + 1] == '=') {
        continue;
      }
      if (next == ':' && after + 1 < code.size() && code[after + 1] == ':') {
        continue;
      }
      (is_unsigned ? u_names : s_names)->insert(name);
    }
  }
}

}  // namespace

TypeFacts CollectTypeFacts(const std::vector<FileContext>& files,
                           const std::vector<FileAst>& asts,
                           const CallGraph& graph) {
  TypeFacts facts;
  std::set<std::string> u_names;
  std::set<std::string> u_fns;
  std::set<std::string> s_names;
  std::set<std::string> s_fns;
  for (const FileAst& ast : asts) {
    ScanTypedDecls(ast.code, &u_names, &u_fns, &s_names, &s_fns);
  }
  // Symbol return types refine the function buckets: every definition's
  // declared return type must agree for a name to count as unsigned.
  for (const Symbol& sym : graph.symbols) {
    if (sym.return_type.empty()) continue;
    bool has_unsigned = false;
    bool has_other = false;
    std::size_t i = 0;
    while (i < sym.return_type.size()) {
      if (!IsIdentifierChar(sym.return_type[i])) {
        ++i;
        continue;
      }
      const std::size_t b = i;
      i = IdentEnd(sym.return_type, i);
      const std::string word = sym.return_type.substr(b, i - b);
      if (IsUnsignedTypeWord(word)) has_unsigned = true;
      if (IsSignedTypeWord(word) || word == "auto" || word == "void" ||
          word == "bool" || word == "Status" || word == "StatusOr") {
        has_other = true;
      }
    }
    if (has_unsigned && !has_other) u_fns.insert(sym.name);
    if (has_other) s_fns.insert(sym.name);
  }
  (void)files;
  for (const std::string& name : u_names) {
    if (s_names.count(name) == 0) facts.unsigned_names.insert(name);
  }
  for (const std::string& name : u_fns) {
    if (s_fns.count(name) == 0) facts.unsigned_returning.insert(name);
  }
  return facts;
}

void AugmentStatusRegistry(const std::vector<FileContext>& files,
                           const std::vector<FileAst>& asts,
                           const CallGraph& graph,
                           std::set<std::string>* status_fns) {
  (void)files;
  // Per symbol: the callee names its body forwards via a bare
  // `return <callee>(...);` statement.
  std::vector<std::vector<std::string>> forwards(graph.symbols.size());
  for (std::size_t s = 0; s < graph.symbols.size(); ++s) {
    const Symbol& sym = graph.symbols[s];
    // Only symbols whose declared return type could carry a Status without
    // the declaration-regex already catching it: lambdas and `auto`
    // functions. Explicit Status/StatusOr returns are in the registry from
    // pass 1; explicit other types cannot forward a Status.
    if (!sym.is_lambda && sym.return_type.find("auto") == std::string::npos) {
      continue;
    }
    const std::string& code = asts[sym.file_index].code;
    for (std::size_t pos = FindTokenInRange(code, "return", sym.body_begin,
                                            sym.body_end);
         pos != std::string::npos;
         pos = FindTokenInRange(code, "return", pos + 1, sym.body_end)) {
      // `return <unit-simple call>;` — the operand parser accepts qualified
      // and member callees alike, and rejects anything with extra operators
      // (`return F() + 1` does not forward a Status).
      const Operand ret = ParseOperandForward(code, pos + 6, sym.body_end);
      if (!ret.valid || !ret.is_call) continue;
      const std::size_t semi = SkipWsForward(code, ret.end, sym.body_end);
      if (semi >= sym.body_end || code[semi] != ';') continue;
      forwards[s].push_back(ret.last_ident);
    }
  }
  // Fixpoint: a forwarding symbol joins the registry once any forwarded
  // callee is (transitively) status-returning. Recursive and mutually
  // recursive chains terminate because the registry only grows.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t s = 0; s < graph.symbols.size(); ++s) {
      const Symbol& sym = graph.symbols[s];
      if (status_fns->count(sym.name) != 0) continue;
      for (const std::string& callee : forwards[s]) {
        if (status_fns->count(callee) != 0) {
          status_fns->insert(sym.name);
          changed = true;
          break;
        }
      }
    }
  }
}

int InnermostSymbolAt(const CallGraph& graph, std::size_t file_index,
                      std::size_t offset) {
  int best = -1;
  std::size_t best_span = std::string::npos;
  for (std::size_t s = 0; s < graph.symbols.size(); ++s) {
    const Symbol& sym = graph.symbols[s];
    if (sym.file_index != file_index) continue;
    if (offset <= sym.body_begin || offset >= sym.body_end) continue;
    const std::size_t span = sym.body_end - sym.body_begin;
    if (span < best_span) {
      best_span = span;
      best = static_cast<int>(s);
    }
  }
  return best;
}

std::size_t FindLocalDeclaration(const std::string& code,
                                 const std::string& name, std::size_t from,
                                 std::size_t to) {
  static const std::set<std::string> kStatementWords = {
      "return", "new",      "delete", "throw", "else",     "case",
      "goto",   "co_return", "break",  "continue", "sizeof", "using",
      "typedef"};
  for (std::size_t pos = FindTokenInRange(code, name, from, to);
       pos != std::string::npos;
       pos = FindTokenInRange(code, name, pos + 1, to)) {
    const std::size_t prev = PrevNonWs(code, pos);
    if (prev == std::string::npos) continue;
    const char c = code[prev];
    bool type_before = false;
    if (c == '&' || c == '*' || c == '>') {
      // `T& x`, `T* x`, `vector<T> x`. A '>' closing a comparison before a
      // declaration-shaped name is accepted: the follow-set check below
      // rejects nearly every expression context.
      type_before = true;
    } else if (IsIdentifierChar(c)) {
      std::size_t b = prev + 1;
      while (b > 0 && IsIdentifierChar(code[b - 1])) --b;
      type_before = kStatementWords.count(code.substr(b, prev + 1 - b)) == 0;
    }
    if (!type_before) continue;
    const std::size_t after =
        SkipWsForward(code, pos + name.size(), code.size());
    if (after >= code.size()) continue;
    const char n = code[after];
    if (n == '=' && after + 1 < code.size() && code[after + 1] == '=') {
      continue;
    }
    if (n == ':' && after + 1 < code.size() && code[after + 1] == ':') {
      continue;
    }
    if (n == '=' || n == ';' || n == ',' || n == '{' || n == '(' || n == ':') {
      return pos;
    }
  }
  return std::string::npos;
}

}  // namespace myrtus::lint
