// Cross-translation-unit symbol table and call graph for myrtus_lint's
// interprocedural rule families (unit-mismatch, unsigned-underflow, and the
// transitive half of status-discard).
//
// The table is built from the same syntactic FileAsts the flow rules use —
// no real name lookup, no overload resolution, no template instantiation.
// Resolution is deliberately conservative:
//
//   * free functions and methods are matched by name; an out-of-line method
//     definition `Class::Method(...)` additionally records its qualified
//     name, and a call resolves to the *whole* overload set sharing the
//     unqualified name (callers consult every candidate and only act when
//     the candidates agree),
//   * lambdas stored in named variables (`auto f = [..](..){..};`) become
//     symbols under the variable's name, so calls through the variable and
//     `(void)f()` discards resolve like any other function,
//   * virtual dispatch and overload sets collapse onto the name — a
//     documented false-negative/false-positive envelope (docs/LINTING.md):
//     rules must treat multi-candidate resolution as "any of these".
//
// On top of the graph sit two derived fact tables the rules share:
//
//   * TypeFacts — identifier names that are only ever declared with unsigned
//     integer types across the whole scanned set, and functions whose every
//     scanned declaration returns such a type, and
//   * the status-registry closure (AugmentStatusRegistry) — a symbol whose
//     body forwards a callee's result (`return Callee(...)`) where Callee
//     returns Status/StatusOr is itself status-returning, transitively, so
//     `(void)wrapper()` is flagged even when the discard is N calls deep.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "ast.hpp"
#include "rules.hpp"

namespace myrtus::lint {

/// One parameter of a symbol: the declared name ("" when unnamed) and the
/// full declaration text ("std::uint64_t capacity_mb").
struct ParamInfo {
  std::string name;
  std::string text;
};

/// One function-like definition anywhere in the scanned set.
struct Symbol {
  std::string name;       // unqualified name (or lambda variable name)
  std::string qualified;  // "Class::Method" for out-of-line methods, == name
                          // otherwise
  std::size_t file_index = 0;
  std::size_t name_begin = 0;  // offset of the name in the file's code view
  std::size_t body_begin = 0;  // offset of the body '{'
  std::size_t body_end = 0;    // offset of the matching '}'
  int line = 0;
  std::vector<ParamInfo> params;
  std::string return_type;  // leading declaration text; "" for lambdas
  bool is_lambda = false;
};

/// One call site inside a scanned file: `name(args...)`, `obj.name(args...)`,
/// `ns::name(args...)`.
struct CallSite {
  std::size_t pos = 0;  // offset of the callee name
  int line = 0;
  int col = 0;
  std::string name;         // unqualified callee name
  bool member_call = false;  // reached through '.' or '->'
  int caller = -1;          // index of the innermost enclosing symbol, or -1
  /// Top-level argument spans (begin, end) in the file's code view.
  std::vector<std::pair<std::size_t, std::size_t>> args;
};

struct CallGraph {
  std::vector<Symbol> symbols;
  /// Unqualified name -> indexes into `symbols` (the overload set).
  std::map<std::string, std::vector<int>> by_name;
  /// Per-file call sites, parallel to the scanned file vector.
  std::vector<std::vector<CallSite>> file_calls;
  /// Per-symbol callee sets (indexes into `symbols`), deduplicated. Cycles
  /// (recursion, mutual recursion) are represented as-is; consumers must
  /// fixpoint, not recurse.
  std::vector<std::vector<int>> callees;

  /// All symbols a call by `name` may reach (the overload set). Empty when
  /// the name is not defined in the scanned set.
  const std::vector<int>& Resolve(const std::string& name) const;
};

/// Builds the symbol table and call graph over the whole scanned set.
/// `files` and `asts` are parallel arrays.
CallGraph BuildCallGraph(const std::vector<FileContext>& files,
                         const std::vector<FileAst>& asts);

/// Name-level type facts derived from every declaration in the scanned set.
struct TypeFacts {
  /// Identifier names (locals, params, fields) declared with an unsigned
  /// integer type somewhere and NEVER declared with a signed/floating type —
  /// the conservative cross-TU notion of "this name is unsigned".
  std::set<std::string> unsigned_names;
  /// Function names whose every scanned definition returns an unsigned
  /// integer type.
  std::set<std::string> unsigned_returning;
};

TypeFacts CollectTypeFacts(const std::vector<FileContext>& files,
                           const std::vector<FileAst>& asts,
                           const CallGraph& graph);

/// A "unit-simple" expression operand: a numeric literal, or an identifier
/// chain (`a`, `obj.field_ms`, `ns::f(x)`, `ptr->cap_mb()[i]`) optionally
/// ending in a call. Anything with top-level operators is NOT unit-simple and
/// parses as invalid — the interprocedural rules deliberately reason only
/// about operands they can read exactly.
struct Operand {
  std::size_t begin = 0;  // span in the code view
  std::size_t end = 0;
  std::string text;        // source of the span with whitespace removed
  std::string last_ident;  // trailing call's callee, else trailing field/var
  bool is_call = false;    // operand's final token is ')'
  bool is_literal = false;
  bool valid = false;
};

/// Parses the unit-simple operand ending at (exclusive) `end_pos`, walking
/// backwards over trailing `()`/`[]` groups and `.`/`->`/`::` links.
Operand ParseOperandBackward(const std::string& code, std::size_t end_pos);

/// Parses the unit-simple operand starting at/after `pos` (whitespace and
/// unary +/-/!/~ skipped), never reading past `limit`.
Operand ParseOperandForward(const std::string& code, std::size_t pos,
                            std::size_t limit);

/// Closes `status_fns` over the call graph: any symbol whose body contains a
/// top-level `return <callee>(...);` where `callee` is (transitively) status-
/// returning joins the registry under both its unqualified and lambda names.
/// This is what lets the plain status-discard check flag
/// `(void)wrapper()` when the wrapper merely forwards a Status it never
/// inspects.
void AugmentStatusRegistry(const std::vector<FileContext>& files,
                           const std::vector<FileAst>& asts,
                           const CallGraph& graph,
                           std::set<std::string>* status_fns);

/// Index of the innermost symbol (smallest body span) in `file_index` whose
/// body strictly contains `offset`, or -1 at class/namespace scope. The same
/// smallest-span resolution CallSite::caller uses, exposed for rules that
/// attribute arbitrary offsets (stores, lambda introducers) to a symbol.
int InnermostSymbolAt(const CallGraph& graph, std::size_t file_index,
                      std::size_t offset);

/// Offset of a declaration-shaped occurrence of `name` in [from, to) of the
/// code view, or npos. Declaration-shaped: the token is preceded by a
/// type-ish token ('&', '*', '>', or an identifier that is not a statement
/// keyword) and followed by '=' (not '=='), ';', ',', '{', '(' or a range-for
/// ':'. Structured bindings and macro-introduced names are a documented miss.
std::size_t FindLocalDeclaration(const std::string& code,
                                 const std::string& name, std::size_t from,
                                 std::size_t to);

}  // namespace myrtus::lint
