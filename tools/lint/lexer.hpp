// Comment/string-stripping lexer for myrtus_lint. Rules must never fire on
// tokens that only appear inside comments or string/char literals, so every
// rule operates on the "code view" this lexer produces: a byte-for-byte copy
// of the source in which comment bodies and literal contents are replaced by
// spaces (newlines preserved, so line numbers survive). Handles // and /**/
// comments, escaped string/char literals, raw strings R"delim(...)delim"
// (including u8R/uR/UR/LR prefixes), and C++14 digit separators (1'000'000).
#pragma once

#include <string>
#include <vector>

namespace myrtus::lint {

/// Returns `source` with comments and literal contents blanked to spaces.
/// Same length and same newline positions as the input. String/char quote
/// characters are kept so tokens on either side never merge.
std::string StripCommentsAndStrings(const std::string& source);

/// Splits on '\n'; the trailing segment is kept even when empty so
/// `lines[i]` always addresses source line i+1.
std::vector<std::string> SplitLines(const std::string& text);

}  // namespace myrtus::lint
