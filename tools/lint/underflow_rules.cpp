#include "underflow_rules.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <optional>

#include "cfg.hpp"

namespace myrtus::lint {
namespace {

bool IsUnsignedOperand(const Operand& op, const TypeFacts& facts) {
  if (!op.valid || op.is_literal) return false;
  if (op.is_call) return facts.unsigned_returning.count(op.last_ident) != 0;
  return facts.unsigned_names.count(op.last_ident) != 0;
}

/// `std::min(a, x)` as a subtrahend cannot exceed `a`.
bool IsMinClampOf(const Operand& sub, const Operand& minuend) {
  return sub.is_call && sub.last_ident == "min" &&
         sub.text.find(minuend.text) != std::string::npos;
}

struct Subtraction {
  std::size_t pos = 0;  // offset of '-'
  Operand left;
  Operand right;
};

/// All unsigned-unsigned binary subtractions (and -= compounds) in a file.
std::vector<Subtraction> CollectSubtractions(const std::string& code,
                                             const TypeFacts& facts) {
  std::vector<Subtraction> subs;
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (code[i] != '-') continue;
    const char prev = i > 0 ? code[i - 1] : '\0';
    const char next = i + 1 < code.size() ? code[i + 1] : '\0';
    if (prev == '-' || next == '-' || next == '>') continue;
    const std::size_t rhs_begin = next == '=' ? i + 2 : i + 1;
    Subtraction sub;
    sub.pos = i;
    sub.left = ParseOperandBackward(code, i);
    if (!IsUnsignedOperand(sub.left, facts)) continue;
    sub.right = ParseOperandForward(code, rhs_begin, code.size());
    if (!IsUnsignedOperand(sub.right, facts)) continue;
    if (IsMinClampOf(sub.right, sub.left)) continue;
    subs.push_back(std::move(sub));
  }
  return subs;
}

// --- guard facts ------------------------------------------------------------

/// Fact key "A>=B" (both sides whitespace-stripped operand text).
std::string FactKey(const std::string& a, const std::string& b) {
  return a + ">=" + b;
}

std::string RootIdent(const std::string& text) {
  std::size_t e = 0;
  while (e < text.size() && IsIdentifierChar(text[e])) ++e;
  return text.substr(0, e);
}

struct Comparison {
  Operand left;
  Operand right;
  bool strict = false;       // `<` / `>` rather than `<=` / `>=`
  bool left_greater = false;  // the condition asserts left >(=) right
};

/// Parses [begin, end) as a single relational comparison; nullopt otherwise.
std::optional<Comparison> ParseComparison(const std::string& code,
                                          std::size_t begin, std::size_t end) {
  int depth = 0;
  for (std::size_t i = begin; i < end; ++i) {
    const char c = code[i];
    if (c == '(' || c == '[' || c == '{') ++depth;
    if (c == ')' || c == ']' || c == '}') --depth;
    if (depth != 0 || (c != '<' && c != '>')) continue;
    const char prev = i > begin ? code[i - 1] : '\0';
    const char next = i + 1 < end ? code[i + 1] : '\0';
    if (next == c || prev == c || (c == '>' && prev == '-')) continue;
    Comparison cmp;
    cmp.strict = next != '=';
    cmp.left_greater = c == '>';
    const std::size_t op_end = cmp.strict ? i + 1 : i + 2;
    cmp.left = ParseOperandBackward(code, i);
    cmp.right = ParseOperandForward(code, op_end, end);
    if (!cmp.left.valid || !cmp.right.valid) return std::nullopt;
    // The comparison must span the whole range to be THE condition term.
    if (SkipWsForward(code, begin, end) != cmp.left.begin) return std::nullopt;
    if (SkipWsForward(code, cmp.right.end, end) != end) return std::nullopt;
    return cmp;
  }
  return std::nullopt;
}

/// `a >= b` (or `b <= a`) asserts FactKey(a, b) when true. Strictness only
/// strengthens the fact, so both map to >=.
std::string TrueFact(const Comparison& cmp) {
  return cmp.left_greater ? FactKey(cmp.left.text, cmp.right.text)
                          : FactKey(cmp.right.text, cmp.left.text);
}

/// The false edge of `a < b` asserts a >= b; of `a >= b` asserts b >= a only
/// in the non-strict reading (¬(a>=b) ⇒ b>a ⇒ b>=a) — both directions hold.
std::string FalseFact(const Comparison& cmp) {
  return cmp.left_greater ? FactKey(cmp.right.text, cmp.left.text)
                          : FactKey(cmp.left.text, cmp.right.text);
}

/// Splits [begin, end) on depth-0 `&&`; empty when a depth-0 `||` appears
/// (disjunctions guarantee nothing on either edge).
std::vector<std::pair<std::size_t, std::size_t>> SplitConjuncts(
    const std::string& code, std::size_t begin, std::size_t end) {
  std::vector<std::pair<std::size_t, std::size_t>> parts;
  int depth = 0;
  std::size_t start = begin;
  for (std::size_t i = begin; i + 1 < end; ++i) {
    const char c = code[i];
    if (c == '(' || c == '[' || c == '{') ++depth;
    if (c == ')' || c == ']' || c == '}') --depth;
    if (depth != 0) continue;
    if (c == '|' && code[i + 1] == '|') return {};
    if (c == '&' && code[i + 1] == '&') {
      parts.emplace_back(start, i);
      start = i + 2;
      ++i;
    }
  }
  parts.emplace_back(start, end);
  return parts;
}

/// Per-condition facts: [0] = facts the true edge gains, [1] = false edge.
struct EdgeFacts {
  std::set<std::string> facts[2];
};

EdgeFacts ExtractEdgeFacts(const std::string& code, const CfgNode& node,
                           const std::set<std::string>& needed) {
  EdgeFacts out;
  const auto conjuncts = SplitConjuncts(code, node.begin, node.end);
  for (const auto& [b, e] : conjuncts) {
    const auto cmp = ParseComparison(code, b, e);
    if (!cmp) continue;
    const std::string fact = TrueFact(*cmp);
    if (needed.count(fact) != 0) out.facts[0].insert(fact);
    // Negation is only sound when the condition is exactly one comparison.
    if (conjuncts.size() == 1) {
      const std::string neg = FalseFact(*cmp);
      if (needed.count(neg) != 0) out.facts[1].insert(neg);
    }
  }
  return out;
}

/// True when [begin, end) writes to `root` (assignment, compound assignment,
/// or ++/--). Conservative: any write form counts; aliasing through
/// references/pointers is the documented envelope.
bool WritesTo(const std::string& code, std::size_t begin, std::size_t end,
              const std::string& root) {
  if (root.empty()) return false;
  for (std::size_t pos = FindTokenInRange(code, root, begin, end);
       pos != std::string::npos;
       pos = FindTokenInRange(code, root, pos + 1, end)) {
    const std::size_t after = SkipWsForward(code, pos + root.size(), end);
    if (after < end) {
      const char c = code[after];
      const char c2 = after + 1 < end ? code[after + 1] : '\0';
      if (c == '=' && c2 != '=') return true;
      if ((c == '+' || c == '-' || c == '*' || c == '/' || c == '%' ||
           c == '&' || c == '|' || c == '^') &&
          c2 == '=') {
        return true;
      }
      if ((c == '+' && c2 == '+') || (c == '-' && c2 == '-')) return true;
    }
    if (pos >= begin + 2 &&
        ((code[pos - 1] == '+' && code[pos - 2] == '+') ||
         (code[pos - 1] == '-' && code[pos - 2] == '-'))) {
      return true;
    }
  }
  return false;
}

/// Facts generated by `x = std::min(A, B)`-shaped assignments (declarations
/// included) in [begin, end): each unit-simple argument A yields A >= x.
/// This is how `take = std::min(len, space); ...; len -= take;` passes.
void GenMinAssignFacts(const std::string& code, std::size_t begin,
                       std::size_t end, const std::set<std::string>& needed,
                       std::set<std::string>* out) {
  for (std::size_t pos = FindTokenInRange(code, "min", begin, end);
       pos != std::string::npos;
       pos = FindTokenInRange(code, "min", pos + 1, end)) {
    const std::size_t open = SkipWsForward(code, pos + 3, end);
    if (open >= end || code[open] != '(') continue;
    const std::size_t close = MatchForward(code, open);
    if (close == std::string::npos || close >= end) continue;
    // Walk back over the (possibly std::-qualified) callee to the '='.
    std::size_t b = pos;
    while (b > begin && (IsIdentifierChar(code[b - 1]) || code[b - 1] == ':')) {
      --b;
    }
    while (b > begin &&
           std::isspace(static_cast<unsigned char>(code[b - 1])) != 0) {
      --b;
    }
    if (b == begin || code[b - 1] != '=') continue;
    if (b >= begin + 2 &&
        (code[b - 2] == '=' || code[b - 2] == '<' || code[b - 2] == '>' ||
         code[b - 2] == '!' || code[b - 2] == '+' || code[b - 2] == '-')) {
      continue;
    }
    const Operand lhs = ParseOperandBackward(code, b - 1);
    if (!lhs.valid || lhs.is_call || lhs.is_literal) continue;
    // Two top-level arguments; each unit-simple one bounds the lhs.
    int depth = 0;
    std::size_t arg_begin = open + 1;
    std::vector<std::pair<std::size_t, std::size_t>> arg_spans;
    for (std::size_t i = open + 1; i < close; ++i) {
      const char c = code[i];
      if (c == '(' || c == '[' || c == '{' || c == '<') ++depth;
      if (c == ')' || c == ']' || c == '}' || c == '>') --depth;
      if (c == ',' && depth == 0) {
        arg_spans.emplace_back(arg_begin, i);
        arg_begin = i + 1;
      }
    }
    arg_spans.emplace_back(arg_begin, close);
    for (const auto& [ab, ae] : arg_spans) {
      const Operand arg = ParseOperandForward(code, ab, ae);
      if (!arg.valid || SkipWsForward(code, arg.end, ae) != ae) continue;
      const std::string fact = FactKey(arg.text, lhs.text);
      if (needed.count(fact) != 0) out->insert(fact);
    }
  }
}

/// One function-like body: run the guard dataflow and report unguarded
/// subtractions.
void CheckBody(const FileContext& file, const FileAst& ast,
               std::size_t body_begin, std::size_t body_end,
               const std::vector<Subtraction>& subs,
               std::vector<Finding>& findings) {
  std::set<std::string> needed;
  for (const Subtraction& sub : subs) {
    needed.insert(FactKey(sub.left.text, sub.right.text));
  }
  const Cfg cfg = BuildCfg(ast.code, body_begin, body_end, ast.index);
  const std::size_t n = cfg.nodes.size();
  std::vector<EdgeFacts> edges(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (cfg.nodes[i].kind == CfgNode::Kind::kCondition) {
      edges[i] = ExtractEdgeFacts(ast.code, cfg.nodes[i], needed);
    }
  }
  // Forward must-analysis: in-state = facts guaranteed on every path.
  std::vector<std::optional<std::set<std::string>>> in(n);
  in[static_cast<std::size_t>(cfg.entry)] = std::set<std::string>{};
  std::vector<int> worklist{cfg.entry};
  while (!worklist.empty()) {
    const int node = worklist.back();
    worklist.pop_back();
    const CfgNode& cur = cfg.nodes[static_cast<std::size_t>(node)];
    std::set<std::string> out = *in[static_cast<std::size_t>(node)];
    if (cur.end > cur.begin) {
      for (auto it = out.begin(); it != out.end();) {
        const std::size_t sep = it->find(">=");
        const std::string a = RootIdent(it->substr(0, sep));
        const std::string b = RootIdent(it->substr(sep + 2));
        if (WritesTo(ast.code, cur.begin, cur.end, a) ||
            WritesTo(ast.code, cur.begin, cur.end, b)) {
          it = out.erase(it);
        } else {
          ++it;
        }
      }
      GenMinAssignFacts(ast.code, cur.begin, cur.end, needed, &out);
    }
    for (std::size_t k = 0; k < cur.succ.size(); ++k) {
      const int succ = cur.succ[k];
      std::set<std::string> next = out;
      if (cur.kind == CfgNode::Kind::kCondition && k < 2) {
        const auto& gained = edges[static_cast<std::size_t>(node)].facts[k];
        next.insert(gained.begin(), gained.end());
      }
      auto& state = in[static_cast<std::size_t>(succ)];
      if (!state) {
        state = std::move(next);
        worklist.push_back(succ);
        continue;
      }
      // Meet = intersection; re-queue on shrink.
      std::set<std::string> met;
      std::set_intersection(state->begin(), state->end(), next.begin(),
                            next.end(), std::inserter(met, met.begin()));
      if (met != *state) {
        *state = std::move(met);
        worklist.push_back(succ);
      }
    }
  }
  for (const Subtraction& sub : subs) {
    // Innermost node containing the subtraction.
    std::size_t best = n;
    std::size_t best_span = std::string::npos;
    for (std::size_t i = 0; i < n; ++i) {
      const CfgNode& node = cfg.nodes[i];
      if (node.begin <= sub.pos && sub.pos < node.end &&
          node.end - node.begin < best_span) {
        best = i;
        best_span = node.end - node.begin;
      }
    }
    if (best == n || !in[best]) continue;  // outside / unreachable
    const std::string fact = FactKey(sub.left.text, sub.right.text);
    if (in[best]->count(fact) != 0) continue;
    Finding f;
    f.file = file.path;
    f.line = ast.index.LineOf(sub.pos);
    f.col = ast.index.ColOf(sub.pos);
    f.rule = "unsigned-underflow";
    f.message = "unsigned subtraction '" + sub.left.text + " - " +
                sub.right.text + "' can wrap: no dominating guard ensures " +
                sub.left.text + " >= " + sub.right.text +
                " on every path; guard the branch, clamp the subtrahend with "
                "std::min, or use util::SubSat(" +
                sub.left.text + ", " + sub.right.text + ")";
    findings.push_back(std::move(f));
  }
}

}  // namespace

std::vector<Finding> CheckUnsignedUnderflow(
    const std::vector<FileContext>& files, const std::vector<FileAst>& asts,
    const CallGraph& graph, const TypeFacts& facts) {
  (void)graph;
  std::vector<Finding> findings;
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    const FileAst& ast = asts[fi];
    const std::vector<Subtraction> subs =
        CollectSubtractions(ast.code, facts);
    if (subs.empty()) continue;
    // Group by innermost enclosing function-like body (smallest span).
    std::vector<std::pair<std::size_t, std::size_t>> bodies;
    for (const FunctionInfo& fn : ast.functions) {
      bodies.emplace_back(fn.body_begin, fn.body_end);
    }
    for (const LambdaInfo& lambda : ast.lambdas) {
      bodies.emplace_back(lambda.body_begin, lambda.body_end);
    }
    std::map<std::size_t, std::vector<Subtraction>> grouped;
    for (const Subtraction& sub : subs) {
      std::size_t best = bodies.size();
      std::size_t best_span = std::string::npos;
      for (std::size_t b = 0; b < bodies.size(); ++b) {
        if (bodies[b].first < sub.pos && sub.pos < bodies[b].second &&
            bodies[b].second - bodies[b].first < best_span) {
          best = b;
          best_span = bodies[b].second - bodies[b].first;
        }
      }
      // Namespace-scope subtractions (constexpr tables) have no CFG; skip.
      if (best < bodies.size()) grouped[best].push_back(sub);
    }
    for (const auto& [body, body_subs] : grouped) {
      CheckBody(files[fi], ast, bodies[body].first, bodies[body].second,
                body_subs, findings);
    }
  }
  return findings;
}

}  // namespace myrtus::lint
