#include "lifetime_rules.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <map>
#include <tuple>

namespace myrtus::lint {
namespace {

/// Seed registry: the repo's known deferred entry points, (unqualified name,
/// 0-based callable-argument index). Keep in sync with docs/LINTING.md.
struct SeedSink {
  const char* name;
  int arg;
};
constexpr std::array<SeedSink, 14> kSeedSinks = {{
    {"ScheduleAt", 1},       // sim::Engine
    {"ScheduleAfter", 1},    // sim::Engine
    {"SchedulePeriodic", 1}, // sim::Engine
    {"Subscribe", 2},        // mirto::Broker
    {"Watch", 1},            // kb::Store
    {"Call", 4},             // net::Network RPC reply callback
    {"CallWithRetry", 4},    // net::Network
    {"Propose", 1},          // continuum::RaftNode
    {"RegisterTarget", 1},   // sim::ChaosController inject hook
    {"RegisterTarget", 2},   // sim::ChaosController restore hook
    {"set_span_sink", 0},    // telemetry span exporter
    {"Attach", 1},           // net::Transport datagram handler
    {"RegisterRpc", 2},      // net::Transport
    {"RegisterAsyncRpc", 2}, // net::Transport
}};

/// Callees that accept a callable but invoke it before returning (fork-join
/// pools included: Pool::Run stores the shard body in a member yet joins
/// before return). Never classified as sinks, seed or structural.
bool IsImmediateCallee(const std::string& name) {
  static const std::array<const char*, 8> kImmediate = {
      "ParallelFor", "ParallelForRng", "ParallelMap", "ParallelMapRng",
      "ParallelReduce", "Run", "RunUntil", "Step"};
  return std::find_if(kImmediate.begin(), kImmediate.end(),
                      [&](const char* n) { return name == n; }) !=
         kImmediate.end();
}

/// Parameter types whose callables the scheduler invokes synchronously
/// (FilterFn/ScoreFn plugins run inside Schedule(), before it returns).
bool IsImmediateParamType(const std::string& decl_text) {
  return FindTokenInRange(decl_text, "FilterFn", 0, decl_text.size()) !=
             std::string::npos ||
         FindTokenInRange(decl_text, "ScoreFn", 0, decl_text.size()) !=
             std::string::npos;
}

/// Container members that keep the inserted callable alive.
bool IsContainerInsert(const std::string& name) {
  static const std::array<const char*, 7> kInserts = {
      "push_back", "emplace_back", "emplace", "insert",
      "try_emplace", "assign", "push"};
  return std::find_if(kInserts.begin(), kInserts.end(),
                      [&](const char* n) { return name == n; }) !=
         kInserts.end();
}

std::size_t PrevNonWsAt(const std::string& s, std::size_t pos) {
  while (pos > 0) {
    --pos;
    if (std::isspace(static_cast<unsigned char>(s[pos])) == 0) return pos;
  }
  return std::string::npos;
}

std::string StripWs(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (std::isspace(static_cast<unsigned char>(c)) == 0) out.push_back(c);
  }
  return out;
}

/// Drain discharge: true when [from, to) contains a member call to one of the
/// engine-drain methods — Run/RunUntil/Step, plus Settle, the test-fixture
/// wrapper around RunUntil. A drain after the registration means the pending
/// callbacks fire (or are destroyed) while the registering frame is still
/// alive, so stack captures cannot dangle. Heuristic by design: a drain does
/// not cancel periodic re-arms past its horizon, but every such event dies
/// with the engine, which shares the frame at all flagged sites.
bool DrainedAfter(const std::string& code, std::size_t from, std::size_t to) {
  for (const char* drain : {"Run", "RunUntil", "Step", "Settle"}) {
    for (std::size_t pos = FindTokenInRange(code, drain, from, to);
         pos != std::string::npos;
         pos = FindTokenInRange(code, drain, pos + 1, to)) {
      const std::size_t prev = PrevNonWsAt(code, pos);
      const bool member =
          prev != std::string::npos &&
          (code[prev] == '.' ||
           (code[prev] == '>' && prev > 0 && code[prev - 1] == '-'));
      std::size_t after = pos;
      while (after < code.size() && IsIdentifierChar(code[after])) ++after;
      after = SkipWsForward(code, after, code.size());
      if (member && after < code.size() && code[after] == '(') return true;
    }
  }
  return false;
}

/// Offset of the '>' matching the '<' at `lt`, or npos.
std::size_t MatchAngleForward(const std::string& code, std::size_t lt) {
  int depth = 0;
  for (std::size_t i = lt; i < code.size(); ++i) {
    if (code[i] == '<') ++depth;
    if (code[i] == '>') {
      --depth;
      if (depth == 0) return i;
    }
    if (code[i] == ';') break;  // a stray comparison, not a template list
  }
  return std::string::npos;
}

/// One deferred store discovered syntactically: the RHS span of a member
/// std::function assignment, or one argument span of a callback-container
/// insertion. `reg` is the registration offset (the '=' or the call name).
struct StoreSpan {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t reg = 0;
  std::string sink;  // the member/field name, for diagnostics
};

/// True when [b, e) holds exactly `name` or `std::move(name)`; extracts the
/// identifier.
bool ExtractBareIdent(const std::string& code, std::size_t b, std::size_t e,
                      std::string* ident) {
  std::string text = StripWs(code.substr(b, e - b));
  const std::string kMove = "std::move(";
  if (text.size() > kMove.size() + 1 && text.compare(0, kMove.size(), kMove) == 0 &&
      text.back() == ')') {
    text = text.substr(kMove.size(), text.size() - kMove.size() - 1);
  }
  if (text.empty()) return false;
  for (char c : text) {
    if (!IsIdentifierChar(c)) return false;
  }
  if (std::isdigit(static_cast<unsigned char>(text[0])) != 0) return false;
  *ident = std::move(text);
  return true;
}

/// Collects `using X = std::function<...>` alias names in one file.
void CollectCallbackAliases(const std::string& code,
                            std::set<std::string>* aliases) {
  for (std::size_t pos = FindTokenInRange(code, "using", 0, code.size());
       pos != std::string::npos;
       pos = FindTokenInRange(code, "using", pos + 1, code.size())) {
    std::size_t p = SkipWsForward(code, pos + 5, code.size());
    std::size_t ne = p;
    while (ne < code.size() && IsIdentifierChar(code[ne])) ++ne;
    if (ne == p) continue;
    const std::string alias = code.substr(p, ne - p);
    p = SkipWsForward(code, ne, code.size());
    if (p >= code.size() || code[p] != '=') continue;
    const std::size_t semi = code.find(';', p);
    if (semi == std::string::npos) continue;
    const std::size_t fn = FindTokenInRange(code, "function", p, semi);
    if (fn == std::string::npos) continue;
    const std::size_t lt = SkipWsForward(code, fn + 8, semi);
    if (lt < semi && code[lt] == '<') aliases->insert(alias);
  }
}

/// Class-scope spans are "everything outside a symbol body" — good enough to
/// separate member declarations from locals.
bool InsideAnyBody(const std::vector<std::pair<std::size_t, std::size_t>>& bodies,
                   std::size_t offset) {
  for (const auto& [b, e] : bodies) {
    if (offset > b && offset < e) return true;
  }
  return false;
}

/// Collects std::function-typed (and alias-typed) member names declared at
/// class scope in one file.
void CollectFunctionFields(
    const std::string& code,
    const std::vector<std::pair<std::size_t, std::size_t>>& bodies,
    const std::set<std::string>& aliases, std::set<std::string>* fields) {
  const auto field_after = [&](std::size_t p) -> std::string {
    std::size_t ne = p;
    while (ne < code.size() && IsIdentifierChar(code[ne])) ++ne;
    if (ne == p) return "";
    const std::size_t after = SkipWsForward(code, ne, code.size());
    if (after >= code.size()) return "";
    const char n = code[after];
    const bool declish =
        n == ';' || (n == '=' && (after + 1 >= code.size() ||
                                  code[after + 1] != '='));
    if (!declish) return "";
    return code.substr(p, ne - p);
  };
  for (std::size_t pos = FindTokenInRange(code, "function", 0, code.size());
       pos != std::string::npos;
       pos = FindTokenInRange(code, "function", pos + 1, code.size())) {
    if (InsideAnyBody(bodies, pos)) continue;
    const std::size_t lt = SkipWsForward(code, pos + 8, code.size());
    if (lt >= code.size() || code[lt] != '<') continue;
    const std::size_t gt = MatchAngleForward(code, lt);
    if (gt == std::string::npos) continue;
    const std::size_t p = SkipWsForward(code, gt + 1, code.size());
    const std::string name = field_after(p);
    if (!name.empty()) fields->insert(name);
  }
  for (const std::string& alias : aliases) {
    for (std::size_t pos = FindTokenInRange(code, alias, 0, code.size());
         pos != std::string::npos;
         pos = FindTokenInRange(code, alias, pos + 1, code.size())) {
      if (InsideAnyBody(bodies, pos)) continue;
      const std::size_t p =
          SkipWsForward(code, pos + alias.size(), code.size());
      const std::string name = field_after(p);
      if (!name.empty()) fields->insert(name);
    }
  }
}

/// Scans one file for deferred member stores. Two shapes:
///   * assignment whose LHS trailing identifier ends in '_' (house-style
///     member) or is a dotted access to a known std::function field
///     (`hooks.on_bound = ...`), including subscripted maps
///     (`pending_[id] = ...`), and
///   * container insertions on an '_'-suffixed receiver
///     (`subs_.push_back(fn)`).
void CollectStores(const std::string& code,
                   const std::vector<CallSite>& sites,
                   const std::set<std::string>& fields,
                   std::vector<StoreSpan>* stores) {
  static const std::string kOpBefore = "=!<>+-*/%&|^~";
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (code[i] != '=') continue;
    if (i + 1 < code.size() && code[i + 1] == '=') continue;
    if (i > 0 && kOpBefore.find(code[i - 1]) != std::string::npos) continue;
    // LHS: an optional subscript group, then the trailing identifier.
    std::size_t le = i;
    while (le > 0 &&
           std::isspace(static_cast<unsigned char>(code[le - 1])) != 0) {
      --le;
    }
    if (le == 0) continue;
    if (code[le - 1] == ']') {
      int depth = 0;
      std::size_t p = le;
      bool matched = false;
      while (p > 0) {
        --p;
        if (code[p] == ']') ++depth;
        if (code[p] == '[' && --depth == 0) {
          matched = true;
          break;
        }
      }
      if (!matched) continue;
      le = p;
    }
    std::size_t nb = 0;
    const std::string name = IdentifierBefore(code, le, &nb);
    if (name.empty()) continue;
    const bool dotted =
        nb > 0 && (code[nb - 1] == '.' ||
                   (nb > 1 && code[nb - 1] == '>' && code[nb - 2] == '-'));
    const bool member = (name.back() == '_') ||
                        (dotted && fields.count(name) != 0);
    if (!member) continue;
    // RHS: up to the statement end at delimiter depth zero.
    std::size_t j = i + 1;
    int depth = 0;
    while (j < code.size()) {
      const char c = code[j];
      if (c == '(' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == ']' || c == '}') {
        if (depth == 0) break;
        --depth;
      }
      if (c == ';' && depth == 0) break;
      ++j;
    }
    stores->push_back({i + 1, j, i, name});
  }
  for (const CallSite& site : sites) {
    if (!site.member_call || !IsContainerInsert(site.name)) continue;
    const std::size_t rp = PrevNonWsAt(code, site.pos);
    if (rp == std::string::npos) continue;
    std::size_t recv_end = std::string::npos;
    if (code[rp] == '.') {
      recv_end = rp;
    } else if (code[rp] == '>' && rp > 0 && code[rp - 1] == '-') {
      recv_end = rp - 1;
    }
    if (recv_end == std::string::npos) continue;
    std::size_t rb = 0;
    const std::string recv = IdentifierBefore(code, recv_end, &rb);
    if (recv.empty() || recv.back() != '_') continue;
    for (const auto& [b, e] : site.args) {
      stores->push_back({b, e, site.pos, recv});
    }
  }
}

/// `// LINT: deferred-capture-ok(<name>) -- reason` on the finding line or
/// up to three lines above.
bool CaptureAllowed(const FileContext& file, int line,
                    const std::string& name) {
  const std::string needle = "deferred-capture-ok(" + name + ")";
  const int first = std::max(1, line - 3);
  for (int l = first;
       l <= line && l <= static_cast<int>(file.raw_lines.size()); ++l) {
    if (file.raw_lines[static_cast<std::size_t>(l) - 1].find(needle) !=
        std::string::npos) {
      return true;
    }
  }
  return false;
}

/// One lambda that flows into a deferred sink.
struct FlowHit {
  std::size_t fi = 0;
  const LambdaInfo* lam = nullptr;
  std::string sink;     // callee or member name, for messages
  std::size_t reg = 0;  // registration offset (drain discharge anchors here)
};

}  // namespace

DeferredSinkTable BuildDeferredSinkTable(const std::vector<FileContext>& files,
                                         const std::vector<FileAst>& asts,
                                         const CallGraph& graph) {
  DeferredSinkTable table;
  for (const SeedSink& seed : kSeedSinks) {
    table.sinks.insert({seed.name, seed.arg});
  }

  // Pass 1: callback aliases and std::function fields, whole-set (class
  // declarations live in headers; stores live in .cpp files).
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> bodies(
      files.size());
  for (const Symbol& sym : graph.symbols) {
    bodies[sym.file_index].emplace_back(sym.body_begin, sym.body_end);
  }
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    CollectCallbackAliases(asts[fi].code, &table.callback_aliases);
  }
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    CollectFunctionFields(asts[fi].code, bodies[fi], table.callback_aliases,
                          &table.function_fields);
  }

  // Pass 2: member/container stores, attributed to their enclosing symbol.
  std::vector<std::vector<StoreSpan>> stores(files.size());
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    CollectStores(asts[fi].code, graph.file_calls[fi], table.function_fields,
                  &stores[fi]);
  }
  const auto classify_param = [&](const Symbol& sym, std::size_t span_begin,
                                  std::size_t span_end,
                                  const std::string& code) {
    bool changed = false;
    if (IsImmediateCallee(sym.name)) return false;
    for (std::size_t i = 0; i < sym.params.size(); ++i) {
      const ParamInfo& param = sym.params[i];
      if (param.name.empty() || IsImmediateParamType(param.text)) continue;
      const std::pair<std::string, int> key{sym.name, static_cast<int>(i)};
      if (table.sinks.count(key) != 0) continue;
      if (FindTokenInRange(code, param.name, span_begin, span_end) !=
          std::string::npos) {
        table.sinks.insert(key);
        changed = true;
      }
    }
    return changed;
  };
  // A parameter stored into a member (directly, or wrapped in a lambda that
  // is itself stored) marks its (symbol, index) deferred.
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    const std::string& code = asts[fi].code;
    for (const StoreSpan& store : stores[fi]) {
      const int owner = InnermostSymbolAt(graph, fi, store.reg);
      if (owner < 0) continue;
      classify_param(graph.symbols[static_cast<std::size_t>(owner)],
                     store.begin, store.end, code);
    }
  }
  // Fixpoint over the call graph: a parameter passed into a deferred sink
  // argument (possibly wrapped: `[cb = std::move(cb)] { cb(); }`) makes the
  // forwarder a sink too, N hops deep and across TUs. Terminates because the
  // registry only grows.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t fi = 0; fi < files.size(); ++fi) {
      const std::string& code = asts[fi].code;
      for (const CallSite& site : graph.file_calls[fi]) {
        if (site.caller < 0) continue;
        const Symbol& caller =
            graph.symbols[static_cast<std::size_t>(site.caller)];
        for (std::size_t j = 0; j < site.args.size(); ++j) {
          if (!table.IsSink(site.name, static_cast<int>(j))) continue;
          if (classify_param(caller, site.args[j].first, site.args[j].second,
                             code)) {
            changed = true;
          }
        }
      }
    }
  }
  return table;
}

std::vector<Finding> CheckDeferredCaptureLifetime(
    const std::vector<FileContext>& files, const std::vector<FileAst>& asts,
    const CallGraph& graph, const DeferredSinkTable& table) {
  std::vector<Finding> findings;

  // Re-derive the store spans (cheap; keeps the table a pure value).
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> bodies(
      files.size());
  for (const Symbol& sym : graph.symbols) {
    bodies[sym.file_index].emplace_back(sym.body_begin, sym.body_end);
  }
  std::vector<std::vector<StoreSpan>> stores(files.size());
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    CollectStores(asts[fi].code, graph.file_calls[fi], table.function_fields,
                  &stores[fi]);
  }

  // --- lambda-value-flow collection ---------------------------------------
  std::vector<FlowHit> hits;
  std::set<std::tuple<std::size_t, std::size_t, std::size_t>> seen;
  const auto add_hit = [&](std::size_t fi, const LambdaInfo* lam,
                           const std::string& sink, std::size_t reg) {
    if (seen.insert({fi, lam->intro, reg}).second) {
      hits.push_back({fi, lam, sink, reg});
    }
  };
  const auto lambda_at_intro = [&](std::size_t fi,
                                   std::size_t intro) -> const LambdaInfo* {
    for (const LambdaInfo& lam : asts[fi].lambdas) {
      if (lam.intro == intro) return &lam;
    }
    return nullptr;
  };
  // A named lambda variable flowing by identifier: `auto cb = [&x]{...};
  // sink(cb)` / `sink(std::move(cb))`. Only accepted when the variable is a
  // unique lambda symbol declared inside the same enclosing symbol as the
  // use — name collisions across TUs must not alias.
  const auto lambda_by_ident =
      [&](std::size_t fi, const std::string& ident,
          int enclosing) -> const LambdaInfo* {
    if (enclosing < 0) return nullptr;
    const Symbol& outer = graph.symbols[static_cast<std::size_t>(enclosing)];
    const std::vector<int>& cands = graph.Resolve(ident);
    const Symbol* found = nullptr;
    for (int c : cands) {
      const Symbol& sym = graph.symbols[static_cast<std::size_t>(c)];
      if (!sym.is_lambda || sym.file_index != fi) continue;
      if (sym.body_begin <= outer.body_begin || sym.body_end >= outer.body_end) {
        continue;
      }
      if (found != nullptr) return nullptr;  // ambiguous
      found = &sym;
    }
    if (found == nullptr) return nullptr;
    for (const LambdaInfo& lam : asts[fi].lambdas) {
      if (lam.body_begin == found->body_begin) return &lam;
    }
    return nullptr;
  };

  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    const std::string& code = asts[fi].code;
    for (const CallSite& site : graph.file_calls[fi]) {
      for (std::size_t j = 0; j < site.args.size(); ++j) {
        if (!table.IsSink(site.name, static_cast<int>(j))) continue;
        const auto [ab, ae] = site.args[j];
        const std::size_t p0 = SkipWsForward(code, ab, ae);
        if (p0 < ae && code[p0] == '[') {
          if (const LambdaInfo* lam = lambda_at_intro(fi, p0)) {
            add_hit(fi, lam, site.name, site.pos);
          }
          continue;
        }
        std::string ident;
        if (ExtractBareIdent(code, ab, ae, &ident)) {
          if (const LambdaInfo* lam =
                  lambda_by_ident(fi, ident, site.caller)) {
            add_hit(fi, lam, site.name, site.pos);
          }
        }
      }
    }
    for (const StoreSpan& store : stores[fi]) {
      // Direct RHS lambda, or a lambda sitting in a brace-init/argument
      // position of the stored value (`targets_[k] = T{inject, [..]{}}`).
      for (const LambdaInfo& lam : asts[fi].lambdas) {
        if (lam.intro < store.begin || lam.intro >= store.end) continue;
        if (lam.intro == SkipWsForward(code, store.begin, store.end)) {
          add_hit(fi, &lam, store.sink, store.reg);
          continue;
        }
        const std::size_t prev = PrevNonWsAt(code, lam.intro);
        if (prev != std::string::npos &&
            (code[prev] == '{' || code[prev] == ',' || code[prev] == '(')) {
          add_hit(fi, &lam, store.sink, store.reg);
        }
      }
      std::string ident;
      if (ExtractBareIdent(code, store.begin, store.end, &ident)) {
        if (const LambdaInfo* lam = lambda_by_ident(
                fi, ident, InnermostSymbolAt(graph, fi, store.reg))) {
          add_hit(fi, lam, store.sink, store.reg);
        }
      }
    }
  }

  // --- per-hit capture checks ----------------------------------------------
  // Methods that register this-capturing deferred callbacks; checked against
  // block-scoped receivers in a second pass.
  std::set<std::string> risky_methods;
  std::set<std::tuple<std::size_t, std::size_t, std::string, std::string>>
      emitted;
  const auto emit = [&](std::size_t fi, std::size_t anchor,
                        const std::string& rule, const std::string& subject,
                        int line, int col, const std::string& message) {
    if (emitted.insert({fi, anchor, rule, subject}).second) {
      findings.push_back({files[fi].path, line, rule, message, col});
    }
  };

  for (const FlowHit& hit : hits) {
    const FileContext& file = files[hit.fi];
    const FileAst& ast = asts[hit.fi];
    const std::string& code = ast.code;
    const LambdaInfo& lam = *hit.lam;
    const int line = ast.index.LineOf(lam.intro);
    const int col = ast.index.ColOf(lam.intro);

    // Drain discharge: the outermost enclosing function drains the engine
    // after the registration, so the callback cannot outlive the frame.
    const FunctionInfo* outer = nullptr;
    for (const FunctionInfo& fn : ast.functions) {
      if (hit.reg > fn.body_begin && hit.reg < fn.body_end &&
          (outer == nullptr ||
           fn.body_end - fn.body_begin > outer->body_end - outer->body_begin)) {
        outer = &fn;
      }
    }
    const bool drained =
        outer != nullptr && DrainedAfter(code, hit.reg, outer->body_end);
    // A capture belonging to an inner lambda's frame dies during the drain,
    // not after it — the discharge does not apply to it.
    const auto dies_with_inner_frame = [&](const std::string& name) {
      for (const LambdaInfo& encl : ast.lambdas) {
        if (lam.intro <= encl.body_begin || lam.intro >= encl.body_end) {
          continue;
        }
        if (std::find(encl.param_names.begin(), encl.param_names.end(),
                      name) != encl.param_names.end()) {
          return true;
        }
        if (FindLocalDeclaration(code, name, encl.body_begin + 1, lam.intro) !=
            std::string::npos) {
          return true;
        }
      }
      return false;
    };

    if (lam.default_ref && !CaptureAllowed(file, line, "default") && !drained) {
      emit(hit.fi, lam.intro, "deferred-ref-capture", "default", line, col,
           "[&] default capture flows into deferred sink '" + hit.sink +
               "'; capture the needed state by value or own it via a shared "
               "owner (deferred-capture-ok(default) to waive)");
    }
    for (const std::string& name : lam.ref_captures) {
      if (std::find(lam.init_ref_captures.begin(), lam.init_ref_captures.end(),
                    name) != lam.init_ref_captures.end()) {
        continue;  // [&alias = expr] may denote a member or heap object
      }
      if (CaptureAllowed(file, line, name)) continue;
      if (drained && !dies_with_inner_frame(name)) continue;
      emit(hit.fi, lam.intro, "deferred-ref-capture", name, line, col,
           "'&" + name + "' captures a stack-scoped variable by reference "
           "into deferred sink '" + hit.sink +
               "'; the callback may outlive the frame");
    }
    // Second severity: by-value captures that smuggle a stack address.
    for (const auto& [name, init] : lam.init_value_captures) {
      if (init.size() < 2 || init[0] != '&' || !IsIdentifierChar(init[1])) {
        continue;
      }
      if (CaptureAllowed(file, line, name)) continue;
      if (drained) continue;
      emit(hit.fi, lam.intro, "deferred-pointer-capture", name, line, col,
           "'" + name + " = " + init + "' stores the address of a stack "
           "object in a callback deferred by '" + hit.sink + "'");
    }
    if (outer != nullptr && !drained) {
      for (const std::string& name : lam.value_captures) {
        if (name == "this") continue;
        if (CaptureAllowed(file, line, name)) continue;
        // Declared `T* name = &...` in the enclosing scope?
        bool pointer_to_local = false;
        for (std::size_t pos = FindTokenInRange(code, name,
                                                outer->body_begin + 1,
                                                lam.intro);
             pos != std::string::npos;
             pos = FindTokenInRange(code, name, pos + 1, lam.intro)) {
          const std::size_t prev = PrevNonWsAt(code, pos);
          if (prev == std::string::npos || code[prev] != '*') continue;
          std::size_t after = pos + name.size();
          after = SkipWsForward(code, after, code.size());
          if (after >= code.size() || code[after] != '=') continue;
          if (after + 1 < code.size() && code[after + 1] == '=') continue;
          const std::size_t v = SkipWsForward(code, after + 1, code.size());
          if (v + 1 < code.size() && code[v] == '&' &&
              IsIdentifierChar(code[v + 1])) {
            pointer_to_local = true;
            break;
          }
        }
        if (pointer_to_local) {
          emit(hit.fi, lam.intro, "deferred-pointer-capture", name, line, col,
               "'" + name + "' is a pointer to a stack object captured by "
               "value into a callback deferred by '" + hit.sink + "'");
        }
      }
    }
    // this-capture: remember the enclosing method; the danger materializes
    // at call sites whose receiver is block-scoped.
    const bool captures_this =
        lam.default_ref || lam.default_copy ||
        std::find(lam.value_captures.begin(), lam.value_captures.end(),
                  "this") != lam.value_captures.end();
    if (captures_this && !CaptureAllowed(file, line, "this")) {
      int encl = -1;
      std::size_t best_span = std::string::npos;
      for (std::size_t s = 0; s < graph.symbols.size(); ++s) {
        const Symbol& sym = graph.symbols[s];
        if (sym.file_index != hit.fi || sym.is_lambda) continue;
        if (lam.intro <= sym.body_begin || lam.intro >= sym.body_end) continue;
        const std::size_t span = sym.body_end - sym.body_begin;
        if (span < best_span) {
          best_span = span;
          encl = static_cast<int>(s);
        }
      }
      if (encl >= 0) {
        risky_methods.insert(graph.symbols[static_cast<std::size_t>(encl)].name);
      }
    }
  }

  // --- deferred-this-capture call-site pass --------------------------------
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    const std::string& code = asts[fi].code;
    for (const CallSite& site : graph.file_calls[fi]) {
      if (!site.member_call || site.caller < 0) continue;
      if (risky_methods.count(site.name) == 0) continue;
      const std::size_t dot = PrevNonWsAt(code, site.pos);
      if (dot == std::string::npos || code[dot] != '.') continue;  // skip '->'
      std::size_t rb = 0;
      const std::string recv = IdentifierBefore(code, dot, &rb);
      if (recv.empty() || recv == "this") continue;
      // Simple identifiers only: obj.a.Method() / f().Method() receivers
      // have unknowable lifetime here.
      const std::size_t before = PrevNonWsAt(code, rb);
      if (before != std::string::npos &&
          (code[before] == '.' || code[before] == ')' || code[before] == ']' ||
           code[before] == ':')) {
        continue;
      }
      const Symbol& caller =
          graph.symbols[static_cast<std::size_t>(site.caller)];
      bool is_param = false;
      for (const ParamInfo& p : caller.params) {
        if (p.name == recv) is_param = true;
      }
      if (is_param) continue;
      const std::size_t decl = FindLocalDeclaration(
          code, recv, caller.body_begin + 1, site.pos);
      if (decl == std::string::npos) continue;  // member or global: long-lived
      // Block-scoped: at least one brace still open between the body's '{'
      // and the declaration.
      int depth = 0;
      for (std::size_t p = caller.body_begin + 1; p < decl; ++p) {
        if (code[p] == '{') ++depth;
        if (code[p] == '}') --depth;
      }
      if (depth <= 0) continue;
      // Same discharge as the ref-capture rule: a drain after the arming call
      // fires the pending events while the receiver is still in scope.
      if (DrainedAfter(code, site.pos, caller.body_end)) continue;
      if (CaptureAllowed(files[fi], site.line, recv)) continue;
      emit(fi, site.pos, "deferred-this-capture", recv, site.line, site.col,
           "'" + recv + "." + site.name + "(...)' registers a deferred "
           "callback capturing 'this', but '" + recv + "' is a block-scoped "
           "local here; the callback outlives the object");
    }
  }

  return findings;
}

}  // namespace myrtus::lint
