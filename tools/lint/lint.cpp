#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "util/json.hpp"

namespace myrtus::lint {
namespace fs = std::filesystem;

namespace {

util::StatusOr<std::string> ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::Status::NotFound("cannot open " + path.string());
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

bool IsLintable(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp";
}

/// Fixture trees contain deliberately-violating files driven by unit tests.
bool InFixtureTree(const std::string& repo_relative) {
  return repo_relative.find("lint_fixtures") != std::string::npos;
}

std::string RepoRelative(const fs::path& path, const fs::path& root) {
  const fs::path rel = fs::relative(path, root);
  return rel.generic_string();
}

std::string Trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

bool HasWildcard(const std::string& pattern) {
  return pattern.find_first_of("*?") != std::string::npos;
}

/// Legacy shape: a single trailing '*' and no other wildcard. Kept as a
/// whole-subtree prefix match (crosses '/') so existing entries like
/// `src/kb/*` keep covering nested directories.
bool IsPrefixPattern(const std::string& pattern) {
  return !pattern.empty() && pattern.back() == '*' &&
         pattern.find_first_of("*?") == pattern.size() - 1;
}

/// Segment-aware glob: '*' matches any run of non-'/' characters, '?' one
/// non-'/' character. Iterative match with single-star backtracking.
bool GlobMatch(const std::string& pattern, const std::string& path) {
  std::size_t p = 0;
  std::size_t s = 0;
  std::size_t star = std::string::npos;  // position of last '*' in pattern
  std::size_t mark = 0;                  // path position that star matched to
  while (s < path.size()) {
    if (p < pattern.size() &&
        (pattern[p] == path[s] || (pattern[p] == '?' && path[s] != '/'))) {
      ++p;
      ++s;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = s;
    } else if (star != std::string::npos && path[mark] != '/') {
      // Widen the last '*' by one character — but never across a '/'.
      p = star + 1;
      s = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

}  // namespace

bool PathPatternMatches(const std::string& pattern, const std::string& path) {
  if (!HasWildcard(pattern)) return path == pattern;
  if (IsPrefixPattern(pattern)) {
    return path.rfind(pattern.substr(0, pattern.size() - 1), 0) == 0;
  }
  return GlobMatch(pattern, path);
}

bool SuppressionMatches(const Suppression& sup, const Finding& f) {
  if (sup.rule != f.rule) return false;
  if (!PathPatternMatches(sup.path_pattern, f.file)) return false;
  return sup.line == 0 || sup.line == f.line;
}

util::StatusOr<std::vector<Suppression>> ParseSuppressions(
    const std::string& text, const std::string& origin) {
  std::vector<Suppression> out;
  std::istringstream in(text);
  std::string raw;
  int lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    const std::string line = Trim(raw);
    if (line.empty() || line[0] == '#') continue;
    const auto where = origin + ":" + std::to_string(lineno);
    const std::size_t sep = line.find(" -- ");
    if (sep == std::string::npos) {
      return util::Status::InvalidArgument(
          where + ": suppression needs a ' -- <reason>' justification");
    }
    Suppression sup;
    sup.reason = Trim(line.substr(sep + 4));
    if (sup.reason.empty()) {
      return util::Status::InvalidArgument(where + ": empty reason");
    }
    std::istringstream head(line.substr(0, sep));
    std::string target;
    if (!(head >> sup.rule >> target) || !(head >> std::ws).eof()) {
      return util::Status::InvalidArgument(
          where + ": expected '<rule-id> <path[:line]> -- <reason>'");
    }
    const std::size_t colon = target.rfind(':');
    if (colon != std::string::npos &&
        target.find_first_not_of("0123456789", colon + 1) == std::string::npos &&
        colon + 1 < target.size()) {
      sup.line = std::stoi(target.substr(colon + 1));
      target.resize(colon);
    }
    sup.path_pattern = target;
    out.push_back(std::move(sup));
  }
  // Reject exact entries shadowed by a wildcard entry for the same rule: one
  // of the two is redundant, and a redundant suppression never goes stale, so
  // it would hide a fixed finding forever.
  for (const Suppression& exact : out) {
    if (HasWildcard(exact.path_pattern)) continue;
    for (const Suppression& wild : out) {
      if (&wild == &exact || wild.rule != exact.rule) continue;
      if (!HasWildcard(wild.path_pattern)) continue;
      if (PathPatternMatches(wild.path_pattern, exact.path_pattern)) {
        return util::Status::InvalidArgument(
            origin + ": exact suppression '" + exact.rule + " " +
            exact.path_pattern + "' is already covered by pattern '" +
            wild.path_pattern + "' for the same rule; drop one of the two");
      }
    }
  }
  return out;
}

std::string SarifReport(const LintResult& result) {
  using util::Json;
  // Rule metadata table: every rule the engine can emit, not just the ones
  // that fired, so result.ruleIndex-free consumers can still enumerate the
  // gate set from the log alone.
  static const struct {
    const char* id;
    const char* description;
  } kRules[] = {
      {"determinism",
       "Host clocks, ambient entropy, and raw std::thread are banned outside "
       "the allowlisted boundary modules; simulation results must be pure "
       "functions of their inputs."},
      {"layering",
       "#include edges must follow the module DAG; lower layers never reach "
       "up."},
      {"status-discard",
       "util::Status/StatusOr returns (including one-deep wrappers that "
       "forward them) must be consumed, not silently dropped."},
      {"pragma-once", "Headers open with #pragma once."},
      {"hygiene-banned",
       "Banned calls (printf-family in library code, abort, system, getenv "
       "outside config loading)."},
      {"parallel-capture-race",
       "ParallelFor bodies must not capture and mutate shared state without "
       "per-shard ownership."},
      {"statusor-use-before-ok",
       "StatusOr values must be checked ok() on every path before "
       "dereference."},
      {"rng-substream-discipline",
       "Randomness is drawn from named util::Rng substreams; ad-hoc seeding "
       "breaks run reproducibility."},
      {"unit-mismatch",
       "Suffix-inferred units of measure (_ns/_ms/_b/_mb/_mw/_mj/_pct/...) "
       "must agree across assignment, additive arithmetic, comparison, and "
       "argument passing, or cross through a named util conversion helper."},
      {"unsigned-underflow",
       "Unsigned subtraction needs a dominating guard (a >= b branch, "
       "std::min clamp) or util::SubSat; otherwise the difference can wrap."},
      {"deferred-ref-capture",
       "Lambdas flowing into deferred callback sinks (ScheduleAt, Subscribe, "
       "Watch, member std::function stores, and their forwarders via the "
       "call-graph fixpoint) must not capture stack-scoped state by "
       "reference; the callback can outlive the frame."},
      {"deferred-this-capture",
       "Calling a method that registers [this]-capturing deferred callbacks "
       "on a block-scoped receiver leaves the callback pointing at a dead "
       "object."},
      {"deferred-pointer-capture",
       "By-value captures that smuggle the address of a stack object "
       "([p = &local], or a captured T* initialized from &local) into a "
       "deferred callback; second-severity tier of the capture-lifetime "
       "family."},
  };

  Json rules = Json::MakeArray();
  for (const auto& r : kRules) {
    Json rule = Json::MakeObject();
    rule.Set("id", r.id);
    rule.Set("shortDescription",
             Json::MakeObject().Set("text", r.description));
    rules.Append(std::move(rule));
  }

  Json results = Json::MakeArray();
  for (const Finding& f : result.findings) {
    Json region = Json::MakeObject();
    region.Set("startLine", f.line);
    if (f.col > 0) region.Set("startColumn", f.col);
    Json location = Json::MakeObject();
    location.Set(
        "physicalLocation",
        Json::MakeObject()
            .Set("artifactLocation", Json::MakeObject()
                                         .Set("uri", f.file)
                                         .Set("uriBaseId", "SRCROOT"))
            .Set("region", std::move(region)));
    Json entry = Json::MakeObject();
    entry.Set("ruleId", f.rule);
    // Severity tiers: the pointer-smuggling shape needs one more hop (a
    // dereference after the frame dies) to become UB, so it reports at
    // "warning"; everything else is an "error".
    entry.Set("level",
              f.rule == "deferred-pointer-capture" ? "warning" : "error");
    entry.Set("message", Json::MakeObject().Set("text", f.message));
    entry.Set("locations", Json::MakeArray().Append(std::move(location)));
    results.Append(std::move(entry));
  }

  Json driver = Json::MakeObject();
  driver.Set("name", "myrtus-lint");
  driver.Set("informationUri",
             "https://github.com/myrtus-project/myrtus/blob/main/docs/"
             "LINTING.md");
  driver.Set("rules", std::move(rules));
  Json run = Json::MakeObject();
  run.Set("tool", Json::MakeObject().Set("driver", std::move(driver)));
  run.Set("results", std::move(results));
  run.Set("columnKind", "utf16CodeUnits");

  Json log = Json::MakeObject();
  log.Set("$schema", "https://json.schemastore.org/sarif-2.1.0.json");
  log.Set("version", "2.1.0");
  log.Set("runs", Json::MakeArray().Append(std::move(run)));
  return log.Pretty();
}

util::StatusOr<LintResult> LintPaths(const std::vector<std::string>& paths,
                                     const Options& options) {
  const fs::path root = fs::absolute(options.repo_root);
  if (!fs::is_directory(root)) {
    return util::Status::InvalidArgument("repo root " + root.string() +
                                         " is not a directory");
  }

  // Collect the file set (sorted for deterministic reports).
  std::vector<fs::path> files;
  for (const std::string& arg : paths) {
    const fs::path p = fs::path(arg).is_absolute() ? fs::path(arg) : root / arg;
    if (fs::is_regular_file(p)) {
      if (IsLintable(p)) files.push_back(p);
      continue;
    }
    if (!fs::is_directory(p)) {
      return util::Status::NotFound("no such file or directory: " + arg);
    }
    for (const auto& entry : fs::recursive_directory_iterator(p)) {
      if (entry.is_regular_file() && IsLintable(entry.path())) {
        files.push_back(entry.path());
      }
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<FileContext> contexts;
  contexts.reserve(files.size());
  for (const fs::path& file : files) {
    const std::string rel = RepoRelative(file, root);
    if (InFixtureTree(rel)) continue;
    auto source = ReadFile(file);
    if (!source.ok()) return source.status();
    contexts.push_back(MakeFileContext(rel, *source));
  }

  std::vector<Suppression> suppressions;
  fs::path sup_path = options.suppressions_path.empty()
                          ? root / "tools" / "lint" / "suppressions.txt"
                          : fs::path(options.suppressions_path);
  if (!options.suppressions_path.empty() || fs::exists(sup_path)) {
    auto text = ReadFile(sup_path);
    if (!text.ok()) return text.status();
    auto parsed = ParseSuppressions(*text, RepoRelative(sup_path, root));
    if (!parsed.ok()) return parsed.status();
    suppressions = std::move(parsed).value();
  }

  LintResult result;
  result.files_scanned = contexts.size();
  std::set<std::string> report_set(options.report_paths.begin(),
                                   options.report_paths.end());
  for (Finding& f : RunRules(contexts, options.determinism_allowlist,
                             options.collect_timings ? &result.timings
                                                     : nullptr,
                             options.restrict_report ? &report_set
                                                     : nullptr)) {
    bool suppressed = false;
    for (Suppression& sup : suppressions) {
      if (SuppressionMatches(sup, f)) {
        sup.used = true;
        suppressed = true;
      }
    }
    if (suppressed) {
      ++result.suppressed;
    } else {
      result.findings.push_back(std::move(f));
    }
  }
  for (const Suppression& sup : suppressions) {
    if (sup.used) continue;
    // Staleness is judged against the scanned scope: an entry for a path this
    // run never looked at (lint_self scans only tools/lint; a targeted run
    // scans one subtree) is out of scope, not stale. Only a full-tree run —
    // lint_repo — can convict an entry of having outlived its finding.
    const bool in_scope =
        std::any_of(contexts.begin(), contexts.end(), [&](const FileContext& f) {
          return PathPatternMatches(sup.path_pattern, f.path);
        });
    if (in_scope) result.unused_suppressions.push_back(sup);
  }
  return result;
}

}  // namespace myrtus::lint
