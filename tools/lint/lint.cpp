#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace myrtus::lint {
namespace fs = std::filesystem;

namespace {

util::StatusOr<std::string> ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::Status::NotFound("cannot open " + path.string());
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

bool IsLintable(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp";
}

/// Fixture trees contain deliberately-violating files driven by unit tests.
bool InFixtureTree(const std::string& repo_relative) {
  return repo_relative.find("lint_fixtures") != std::string::npos;
}

std::string RepoRelative(const fs::path& path, const fs::path& root) {
  const fs::path rel = fs::relative(path, root);
  return rel.generic_string();
}

std::string Trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

bool Matches(const Suppression& sup, const Finding& f) {
  if (sup.rule != f.rule) return false;
  if (!sup.path_pattern.empty() && sup.path_pattern.back() == '*') {
    const std::string prefix =
        sup.path_pattern.substr(0, sup.path_pattern.size() - 1);
    if (f.file.rfind(prefix, 0) != 0) return false;
  } else if (f.file != sup.path_pattern) {
    return false;
  }
  return sup.line == 0 || sup.line == f.line;
}

}  // namespace

util::StatusOr<std::vector<Suppression>> ParseSuppressions(
    const std::string& text, const std::string& origin) {
  std::vector<Suppression> out;
  std::istringstream in(text);
  std::string raw;
  int lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    const std::string line = Trim(raw);
    if (line.empty() || line[0] == '#') continue;
    const auto where = origin + ":" + std::to_string(lineno);
    const std::size_t sep = line.find(" -- ");
    if (sep == std::string::npos) {
      return util::Status::InvalidArgument(
          where + ": suppression needs a ' -- <reason>' justification");
    }
    Suppression sup;
    sup.reason = Trim(line.substr(sep + 4));
    if (sup.reason.empty()) {
      return util::Status::InvalidArgument(where + ": empty reason");
    }
    std::istringstream head(line.substr(0, sep));
    std::string target;
    if (!(head >> sup.rule >> target) || !(head >> std::ws).eof()) {
      return util::Status::InvalidArgument(
          where + ": expected '<rule-id> <path[:line]> -- <reason>'");
    }
    const std::size_t colon = target.rfind(':');
    if (colon != std::string::npos &&
        target.find_first_not_of("0123456789", colon + 1) == std::string::npos &&
        colon + 1 < target.size()) {
      sup.line = std::stoi(target.substr(colon + 1));
      target.resize(colon);
    }
    sup.path_pattern = target;
    out.push_back(std::move(sup));
  }
  return out;
}

util::StatusOr<LintResult> LintPaths(const std::vector<std::string>& paths,
                                     const Options& options) {
  const fs::path root = fs::absolute(options.repo_root);
  if (!fs::is_directory(root)) {
    return util::Status::InvalidArgument("repo root " + root.string() +
                                         " is not a directory");
  }

  // Collect the file set (sorted for deterministic reports).
  std::vector<fs::path> files;
  for (const std::string& arg : paths) {
    const fs::path p = fs::path(arg).is_absolute() ? fs::path(arg) : root / arg;
    if (fs::is_regular_file(p)) {
      if (IsLintable(p)) files.push_back(p);
      continue;
    }
    if (!fs::is_directory(p)) {
      return util::Status::NotFound("no such file or directory: " + arg);
    }
    for (const auto& entry : fs::recursive_directory_iterator(p)) {
      if (entry.is_regular_file() && IsLintable(entry.path())) {
        files.push_back(entry.path());
      }
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<FileContext> contexts;
  contexts.reserve(files.size());
  for (const fs::path& file : files) {
    const std::string rel = RepoRelative(file, root);
    if (InFixtureTree(rel)) continue;
    auto source = ReadFile(file);
    if (!source.ok()) return source.status();
    contexts.push_back(MakeFileContext(rel, *source));
  }

  std::vector<Suppression> suppressions;
  fs::path sup_path = options.suppressions_path.empty()
                          ? root / "tools" / "lint" / "suppressions.txt"
                          : fs::path(options.suppressions_path);
  if (!options.suppressions_path.empty() || fs::exists(sup_path)) {
    auto text = ReadFile(sup_path);
    if (!text.ok()) return text.status();
    auto parsed = ParseSuppressions(*text, RepoRelative(sup_path, root));
    if (!parsed.ok()) return parsed.status();
    suppressions = std::move(parsed).value();
  }

  LintResult result;
  result.files_scanned = contexts.size();
  for (Finding& f : RunRules(contexts, options.determinism_allowlist)) {
    bool suppressed = false;
    for (Suppression& sup : suppressions) {
      if (Matches(sup, f)) {
        sup.used = true;
        suppressed = true;
      }
    }
    if (suppressed) {
      ++result.suppressed;
    } else {
      result.findings.push_back(std::move(f));
    }
  }
  for (const Suppression& sup : suppressions) {
    if (!sup.used) result.unused_suppressions.push_back(sup);
  }
  return result;
}

}  // namespace myrtus::lint
