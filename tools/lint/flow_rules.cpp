#include "flow_rules.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <deque>
#include <map>
#include <regex>

#include "cfg.hpp"

namespace myrtus::lint {
namespace {

std::size_t IdentEnd(const std::string& s, std::size_t pos) {
  while (pos < s.size() && IsIdentifierChar(s[pos])) ++pos;
  return pos;
}

/// Last non-whitespace offset strictly before `pos`, or npos.
std::size_t PrevNonWs(const std::string& s, std::size_t pos, std::size_t floor) {
  while (pos > floor) {
    --pos;
    if (std::isspace(static_cast<unsigned char>(s[pos])) == 0) return pos;
  }
  return std::string::npos;
}

/// True when `pos` starts a mutation operator applied to the lvalue that just
/// ended: =, +=, -=, *=, /=, %=, &=, |=, ^=, <<=, >>=, ++, --. Comparison
/// operators (==, <=, >=, !=) are excluded.
bool IsWriteOpAt(const std::string& code, std::size_t pos) {
  const auto at = [&](const char* op) {
    return code.compare(pos, std::char_traits<char>::length(op), op) == 0;
  };
  if (at("==") || at("<=") || at(">=") || at("!=")) return false;
  if (at("<<=") || at(">>=") || at("++") || at("--")) return true;
  for (const char* op : {"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^="}) {
    if (at(op)) return true;
  }
  return code[pos] == '=' && (pos + 1 >= code.size() || code[pos + 1] != '=');
}

bool IsMutatingMethod(const std::string& name) {
  static const std::set<std::string> kMutating = {
      "push_back", "emplace_back", "emplace",    "insert",    "erase",
      "clear",     "resize",       "assign",     "append",    "pop_back",
      "push",      "pop",          "push_front", "pop_front", "reserve"};
  return kMutating.count(name) != 0;
}

bool IsAtomicMethod(const std::string& name) {
  static const std::set<std::string> kAtomic = {
      "fetch_add", "fetch_sub",
      "fetch_and", "fetch_or",
      "fetch_xor", "store",
      "exchange",  "compare_exchange_weak",
      "compare_exchange_strong"};
  return kAtomic.count(name) != 0;
}

bool IsKeywordNotType(const std::string& word) {
  static const std::set<std::string> kNot = {
      "return",   "delete",   "new",  "throw",    "case",    "goto",
      "using",    "typedef",  "else", "do",       "operator", "sizeof",
      "co_return", "co_await", "co_yield", "not",  "and",     "or"};
  return kNot.count(word) != 0;
}

/// Heuristic local-declaration scan over [begin, end): an identifier preceded
/// by a type-ish token (identifier that is not a statement keyword, or a
/// closing '>'), possibly through '&'/'*', and followed by one of
/// `= ; { ( , ) : [`. Catches `T name = ...`, `auto& name : range`,
/// `std::vector<int> probe;` — the declaration shapes this codebase uses.
void CollectDeclaredNames(const std::string& code, std::size_t begin,
                          std::size_t end, std::set<std::string>* names) {
  for (std::size_t i = begin; i < end;) {
    if (!IsIdentifierChar(code[i])) {
      ++i;
      continue;
    }
    const std::size_t s = i;
    const std::size_t e = IdentEnd(code, i);
    i = e;
    if (std::isdigit(static_cast<unsigned char>(code[s])) != 0) continue;
    std::size_t p = s;
    while (p > begin &&
           std::isspace(static_cast<unsigned char>(code[p - 1])) != 0) {
      --p;
    }
    while (p > begin && (code[p - 1] == '&' || code[p - 1] == '*')) --p;
    while (p > begin &&
           std::isspace(static_cast<unsigned char>(code[p - 1])) != 0) {
      --p;
    }
    if (p == begin) continue;
    const char prev = code[p - 1];
    bool type_before = false;
    if (prev == '>') {
      type_before = true;
    } else if (IsIdentifierChar(prev)) {
      std::size_t b = p;
      while (b > begin && IsIdentifierChar(code[b - 1])) --b;
      const std::string word = code.substr(b, p - b);
      if (!IsKeywordNotType(word) &&
          std::isdigit(static_cast<unsigned char>(word[0])) == 0) {
        type_before = true;
      }
    }
    if (!type_before) continue;
    const std::size_t q = SkipWsForward(code, e, end);
    if (q >= end) continue;
    const char next = code[q];
    if (next == '=' && q + 1 < end && code[q + 1] == '=') continue;
    if (next == ':' && q + 1 < end && code[q + 1] == ':') continue;
    if (next == '=' || next == ';' || next == '{' || next == '(' ||
        next == ',' || next == ')' || next == ':' || next == '[') {
      names->insert(code.substr(s, e - s));
    }
  }
}

// --- parallel-capture-race --------------------------------------------------

/// The parsed postfix chain of an lvalue expression starting at a base
/// identifier: subscript texts encountered, whether the chain itself mutates
/// (mutating method / write operator / ++ / --), and whether it bottoms out
/// in an atomic operation (always allowed).
struct LvalueChain {
  bool is_write = false;
  bool is_atomic = false;
  std::vector<std::string> subscripts;
};

LvalueChain WalkLvalueChain(const std::string& code, std::size_t after_base,
                            std::size_t end, bool prefix_incdec) {
  LvalueChain chain;
  chain.is_write = prefix_incdec;
  std::size_t p = after_base;
  while (true) {
    p = SkipWsForward(code, p, end);
    if (p >= end) break;
    if (code[p] == '[') {
      const std::size_t close = MatchForward(code, p);
      if (close == std::string::npos || close >= end) break;
      chain.subscripts.push_back(code.substr(p + 1, close - p - 1));
      p = close + 1;
      continue;
    }
    const bool dot = code[p] == '.';
    const bool arrow = code.compare(p, 2, "->") == 0;
    if (dot || arrow) {
      std::size_t m = SkipWsForward(code, p + (dot ? 1 : 2), end);
      const std::size_t mend = IdentEnd(code, m);
      if (mend == m) break;
      const std::string member = code.substr(m, mend - m);
      const std::size_t call = SkipWsForward(code, mend, end);
      if (call < end && code[call] == '(') {
        if (IsAtomicMethod(member)) {
          chain.is_atomic = true;
        } else if (IsMutatingMethod(member)) {
          chain.is_write = true;
        }
        return chain;  // a call ends the lvalue chain either way
      }
      p = mend;  // plain field access, keep walking
      continue;
    }
    break;
  }
  if (p < end && IsWriteOpAt(code, p)) chain.is_write = true;
  return chain;
}

/// True when any lambda nested inside [outer_begin, outer_end) whose body
/// contains `pos` captures `name` by value — writes there hit a copy.
bool CapturedByValueInNested(const FileAst& ast, std::size_t outer_begin,
                             std::size_t outer_end, std::size_t pos,
                             const std::string& name) {
  for (const LambdaInfo& nested : ast.lambdas) {
    if (nested.body_begin <= outer_begin || nested.body_end >= outer_end) {
      continue;
    }
    if (pos <= nested.body_begin || pos >= nested.body_end) continue;
    const auto& refs = nested.ref_captures;
    if (std::find(refs.begin(), refs.end(), name) != refs.end()) continue;
    const auto& vals = nested.value_captures;
    if (std::find(vals.begin(), vals.end(), name) != vals.end()) return true;
    if (nested.default_copy) return true;
  }
  return false;
}

}  // namespace

std::vector<Finding> CheckParallelCaptureRace(const FileContext& file,
                                              const FileAst& ast) {
  std::vector<Finding> findings;
  const std::string& code = ast.code;
  for (const LambdaInfo& lambda : ast.lambdas) {
    if (lambda.parallel_callee.empty()) continue;
    const std::size_t bb = lambda.body_begin + 1;
    const std::size_t be = lambda.body_end;

    // The shard parameter (For/ForRng variants).
    std::string shard_name;
    for (std::size_t i = 0; i < lambda.param_texts.size(); ++i) {
      if (FindTokenInRange(lambda.param_texts[i], "Shard", 0,
                           lambda.param_texts[i].size()) != std::string::npos) {
        shard_name = lambda.param_names[i];
      }
    }

    // Tokens whose presence in a subscript marks the slot as shard-owned:
    // the shard itself (shard.index / shard.begin arithmetic), induction
    // variables initialised from <shard>.begin, and — for the Map/Reduce
    // variants, whose bodies receive a per-item index — the first parameter.
    std::set<std::string> safe_tokens;
    if (!shard_name.empty()) safe_tokens.insert(shard_name);
    if (lambda.parallel_callee != "ParallelFor" &&
        lambda.parallel_callee != "ParallelForRng" &&
        !lambda.param_names.empty() && !lambda.param_names[0].empty()) {
      safe_tokens.insert(lambda.param_names[0]);
    }
    if (!shard_name.empty()) {
      const std::string begin_token = shard_name + ".begin";
      for (std::size_t f = FindTokenInRange(code, "for", bb, be);
           f != std::string::npos;
           f = FindTokenInRange(code, "for", f + 1, be)) {
        const std::size_t open = SkipWsForward(code, f + 3, be);
        if (open >= be || code[open] != '(') continue;
        const std::size_t close = MatchForward(code, open);
        if (close == std::string::npos || close > be) continue;
        const std::size_t eq = code.find('=', open);
        if (eq == std::string::npos || eq > close) continue;
        const std::size_t semi = code.find(';', eq);
        const std::size_t init_end = std::min(
            semi == std::string::npos ? close : semi, close);
        if (FindTokenInRange(code, begin_token, eq, init_end) ==
            std::string::npos) {
          continue;
        }
        std::size_t name_begin = 0;
        const std::string ind = IdentifierBefore(code, eq, &name_begin);
        if (!ind.empty()) safe_tokens.insert(ind);
      }
    }
    const auto subscript_safe = [&](const std::vector<std::string>& subs) {
      for (const std::string& sub : subs) {
        for (const std::string& token : safe_tokens) {
          if (FindTokenInRange(sub, token, 0, sub.size()) !=
              std::string::npos) {
            return true;
          }
        }
      }
      return false;
    };

    // Locals: declarations inside the body, this lambda's parameters and
    // value captures (copies), and every nested lambda's parameters.
    std::set<std::string> locals;
    CollectDeclaredNames(code, bb, be, &locals);
    for (const std::string& p : lambda.param_names) {
      if (!p.empty()) locals.insert(p);
    }
    for (const std::string& v : lambda.value_captures) locals.insert(v);
    for (const LambdaInfo& nested : ast.lambdas) {
      if (nested.body_begin <= lambda.body_begin ||
          nested.body_end >= lambda.body_end) {
        continue;
      }
      for (const std::string& p : nested.param_names) {
        if (!p.empty()) locals.insert(p);
      }
    }

    // Reference aliases: `T& name = expr;`. An alias of a shard-owned slot is
    // free to mutate; an alias of anything else captured by reference is as
    // racy as the capture itself.
    std::map<std::string, bool> alias_safe;
    for (std::size_t i = bb; i < be;) {
      if (!IsIdentifierChar(code[i])) {
        ++i;
        continue;
      }
      const std::size_t s = i;
      const std::size_t e = IdentEnd(code, i);
      i = e;
      std::size_t p = PrevNonWs(code, s, bb);
      if (p == std::string::npos || code[p] != '&') continue;
      const std::size_t before_amp = PrevNonWs(code, p, bb);
      if (before_amp == std::string::npos ||
          (!IsIdentifierChar(code[before_amp]) && code[before_amp] != '>')) {
        continue;  // address-of / logical-and, not a reference declarator
      }
      if (IsIdentifierChar(code[before_amp])) {
        std::size_t b = before_amp + 1;
        while (b > bb && IsIdentifierChar(code[b - 1])) --b;
        if (IsKeywordNotType(code.substr(b, before_amp + 1 - b))) continue;
      }
      const std::size_t eq = SkipWsForward(code, e, be);
      if (eq >= be || code[eq] != '=' ||
          (eq + 1 < be && code[eq + 1] == '=')) {
        continue;
      }
      const std::size_t semi = code.find(';', eq);
      if (semi == std::string::npos || semi > be) continue;
      const std::string rhs = code.substr(eq + 1, semi - eq - 1);
      bool safe = false;
      for (const std::string& token : safe_tokens) {
        if (FindTokenInRange(rhs, token, 0, rhs.size()) != std::string::npos) {
          safe = true;
        }
      }
      alias_safe[code.substr(s, e - s)] = safe;
    }

    const auto is_ref_capture = [&](const std::string& name) {
      const auto& refs = lambda.ref_captures;
      if (std::find(refs.begin(), refs.end(), name) != refs.end()) return true;
      if (!lambda.default_ref) return false;
      const auto& vals = lambda.value_captures;
      return std::find(vals.begin(), vals.end(), name) == vals.end();
    };

    // Scan every identifier in the body for write sites.
    for (std::size_t i = bb; i < be;) {
      if (!IsIdentifierChar(code[i])) {
        ++i;
        continue;
      }
      const std::size_t s = i;
      const std::size_t e = IdentEnd(code, i);
      i = e;
      if (std::isdigit(static_cast<unsigned char>(code[s])) != 0) continue;
      const std::size_t prev = PrevNonWs(code, s, bb);
      if (prev != std::string::npos &&
          (code[prev] == '.' || code[prev] == ':' ||
           (code[prev] == '>' && prev > bb && code[prev - 1] == '-'))) {
        continue;  // member or qualified name — not a chain base
      }
      const bool prefix_incdec =
          s >= bb + 2 && (code.compare(s - 2, 2, "++") == 0 ||
                          code.compare(s - 2, 2, "--") == 0);
      const std::string name = code.substr(s, e - s);
      const LvalueChain chain = WalkLvalueChain(code, e, be, prefix_incdec);
      if (!chain.is_write || chain.is_atomic) continue;
      // Alias resolution first: a reference alias is also a declared local,
      // but writes through it go wherever it was bound.
      const auto alias = alias_safe.find(name);
      if (alias != alias_safe.end()) {
        if (alias->second) continue;  // alias of a shard-owned slot
      } else if (locals.count(name) != 0) {
        continue;
      } else if (!is_ref_capture(name)) {
        continue;
      }
      if (subscript_safe(chain.subscripts)) continue;
      if (CapturedByValueInNested(ast, lambda.body_begin, lambda.body_end, s,
                                  name)) {
        continue;
      }
      findings.push_back(
          {file.path, ast.index.LineOf(s), "parallel-capture-race",
           "write to by-reference capture '" + name + "' inside " +
               lambda.parallel_callee +
               " body is not shard-indexed; commit results to a slot keyed "
               "by the shard (out[shard.index], out[i] for i in "
               "shard.begin..end) or use an atomic",
           ast.index.ColOf(s)});
    }
  }
  return findings;
}

// --- statusor-use-before-ok -------------------------------------------------

namespace {

enum class SoState { kUnchecked, kChecked, kUnknown };

SoState Meet(SoState a, SoState b) {
  return static_cast<SoState>(std::min(static_cast<int>(a),
                                       static_cast<int>(b)));
}

struct SoEvent {
  // kCondCheck is an ok() check inside a condition whose short-circuit
  // structure guards the rest of the expression (`v.ok() && use(*v)`,
  // `!v.ok() || use(*v)`): it discharges later uses within the same node but
  // does NOT flow out along the edges — those get branch facts instead.
  enum class Kind { kDecl, kCheck, kCondCheck, kUse, kAssign };
  std::size_t pos = 0;
  Kind kind = Kind::kDecl;
  std::string var;
};

/// One analysis unit: a function or lambda body with the interiors of its
/// directly nested lambdas blanked out (they are separate units).
struct SoUnit {
  std::size_t body_begin = 0;
  std::size_t body_end = 0;
  std::string code;  // full-file geometry, nested lambda bodies blanked
};

std::vector<SoUnit> BuildUnits(const FileAst& ast) {
  std::vector<SoUnit> units;
  const auto add = [&](std::size_t bb, std::size_t be) {
    SoUnit unit;
    unit.body_begin = bb;
    unit.body_end = be;
    unit.code = ast.code;
    for (const LambdaInfo& nested : ast.lambdas) {
      if (nested.body_begin <= bb || nested.body_end >= be) continue;
      for (std::size_t p = nested.body_begin + 1; p < nested.body_end; ++p) {
        if (unit.code[p] != '\n') unit.code[p] = ' ';
      }
    }
    units.push_back(std::move(unit));
  };
  for (const FunctionInfo& fn : ast.functions) add(fn.body_begin, fn.body_end);
  for (const LambdaInfo& lambda : ast.lambdas) {
    add(lambda.body_begin, lambda.body_end);
  }
  return units;
}

/// Finds StatusOr variable declarations in [begin, end):
/// `StatusOr<T> name ...` and `auto name = <statusor-fn>(...)`.
void CollectSoDecls(const std::string& code, std::size_t begin, std::size_t end,
                    const std::set<std::string>& statusor_fns,
                    std::vector<SoEvent>* events) {
  for (std::size_t pos = FindTokenInRange(code, "StatusOr", begin, end);
       pos != std::string::npos;
       pos = FindTokenInRange(code, "StatusOr", pos + 1, end)) {
    std::size_t p = pos + 8;
    p = SkipWsForward(code, p, end);
    if (p < end && code[p] == '<') {
      int depth = 0;
      while (p < end) {
        if (code[p] == '<') ++depth;
        if (code[p] == '>' && --depth == 0) {
          ++p;
          break;
        }
        ++p;
      }
    }
    p = SkipWsForward(code, p, end);
    const std::size_t name_end = IdentEnd(code, p);
    if (name_end == p) continue;
    const std::string name = code.substr(p, name_end - p);
    const std::size_t next = SkipWsForward(code, name_end, end);
    if (next < end && (code[next] == '=' || code[next] == ';' ||
                       code[next] == '(' || code[next] == '{')) {
      events->push_back({p, SoEvent::Kind::kDecl, name});
    }
  }
  for (std::size_t pos = FindTokenInRange(code, "auto", begin, end);
       pos != std::string::npos;
       pos = FindTokenInRange(code, "auto", pos + 1, end)) {
    std::size_t p = SkipWsForward(code, pos + 4, end);
    while (p < end && (code[p] == '&' || code[p] == '*')) ++p;
    p = SkipWsForward(code, p, end);
    const std::size_t name_end = IdentEnd(code, p);
    if (name_end == p) continue;
    const std::string name = code.substr(p, name_end - p);
    std::size_t eq = SkipWsForward(code, name_end, end);
    if (eq >= end || code[eq] != '=' || (eq + 1 < end && code[eq + 1] == '=')) {
      continue;
    }
    const std::size_t stop = std::min(end, code.find(';', eq));
    const std::size_t call = code.find('(', eq);
    if (call == std::string::npos || call >= stop) continue;
    const std::string callee = IdentifierBefore(code, call, nullptr);
    if (statusor_fns.count(callee) != 0) {
      events->push_back({p, SoEvent::Kind::kDecl, name});
    }
  }
}

/// Scans [begin, end) for events on variable `var`. `lenient_check` controls
/// whether a textual `.ok()` counts as a check (statement nodes — covers
/// ASSERT_TRUE(v.ok()) and opaque switch bodies); condition nodes pass false
/// and get branch-edge facts instead.
void CollectVarEvents(const std::string& code, std::size_t begin,
                      std::size_t end, const std::string& var,
                      bool lenient_check, std::vector<SoEvent>* events) {
  for (std::size_t pos = FindTokenInRange(code, var, begin, end);
       pos != std::string::npos;
       pos = FindTokenInRange(code, var, pos + 1, end)) {
    const std::size_t after = pos + var.size();
    const std::size_t prev = PrevNonWs(code, pos, begin);
    if (prev != std::string::npos &&
        (code[prev] == '.' || code[prev] == ':')) {
      continue;  // member or qualified name that merely ends in `var`
    }
    // `*var` — dereference unless the '*' reads as multiplication.
    if (prev != std::string::npos && code[prev] == '*') {
      const std::size_t before = PrevNonWs(code, prev, begin);
      bool mul = false;
      if (before != std::string::npos) {
        const char c = code[before];
        if (c == ')' || c == ']') mul = true;
        if (IsIdentifierChar(c)) {
          std::size_t b = before + 1;
          while (b > begin && IsIdentifierChar(code[b - 1])) --b;
          mul = !IsKeywordNotType(code.substr(b, before + 1 - b));
        }
      }
      if (!mul) {
        events->push_back({pos, SoEvent::Kind::kUse, var});
        continue;
      }
    }
    std::size_t p = SkipWsForward(code, after, end);
    if (p >= end) continue;
    if (code.compare(p, 2, "->") == 0) {
      events->push_back({pos, SoEvent::Kind::kUse, var});
      continue;
    }
    if (code[p] == '.') {
      const std::size_t m = SkipWsForward(code, p + 1, end);
      const std::size_t mend = IdentEnd(code, m);
      const std::string member = code.substr(m, mend - m);
      if (member == "value") {
        events->push_back({pos, SoEvent::Kind::kUse, var});
      } else if (member == "ok" && lenient_check) {
        events->push_back({pos, SoEvent::Kind::kCheck, var});
      }
      continue;
    }
    if (IsWriteOpAt(code, p) && code[p] == '=') {
      events->push_back({pos, SoEvent::Kind::kAssign, var});
      continue;
    }
    // `)` closing a std::move(var) — the wrapper forwards the deref; and
    // MustOk(var) / MustOk(std::move(var)) is the sanctioned assertion.
    if (code[p] == ')') {
      std::size_t open = prev;
      if (open != std::string::npos && code[open] == '(') {
        std::size_t callee_begin = 0;
        const std::string callee = IdentifierBefore(code, open, &callee_begin);
        if (callee == "move") {
          const std::size_t q = SkipWsForward(code, p + 1, end);
          if (q < end && (code[q] == '.' || code.compare(q, 2, "->") == 0)) {
            const std::size_t m = SkipWsForward(
                code, q + (code[q] == '.' ? 1 : 2), end);
            const std::size_t mend = IdentEnd(code, m);
            if (code[q] != '.' || code.substr(m, mend - m) == "value") {
              events->push_back({pos, SoEvent::Kind::kUse, var});
            }
          }
          // MustOk(std::move(var))
          const std::size_t before_move = PrevNonWs(code, callee_begin, begin);
          if (before_move != std::string::npos && code[before_move] == '(') {
            const std::string outer =
                IdentifierBefore(code, before_move, nullptr);
            if (outer == "MustOk") {
              events->push_back({pos, SoEvent::Kind::kCheck, var});
            }
          }
        } else if (callee == "MustOk") {
          events->push_back({pos, SoEvent::Kind::kCheck, var});
        }
      }
    }
  }
}

/// Branch facts and intra-condition short-circuit checks for one condition
/// span. Edge facts: `v.ok()` in a &&-only condition makes the true edge
/// checked; `!v.ok()` in a ||-only condition makes the false edge checked
/// (mixed &&/|| conditions yield no edge facts — sound, conservative). The
/// same structures guarantee everything textually after the check only
/// evaluates when v is ok, so each qualifying check also becomes a
/// kCondCheck event discharging later uses within the condition itself.
void BranchFacts(const std::string& code, std::size_t begin, std::size_t end,
                 const std::vector<std::string>& vars,
                 std::vector<std::string>* true_checked,
                 std::vector<std::string>* false_checked,
                 std::vector<SoEvent>* cond_checks) {
  bool has_and = false;
  bool has_or = false;
  int depth = 0;
  for (std::size_t p = begin; p < end; ++p) {
    const char c = code[p];
    if (c == '(' || c == '[' || c == '{') ++depth;
    if (c == ')' || c == ']' || c == '}') --depth;
    if (depth != 0 || p + 1 >= end) continue;
    if (c == '&' && code[p + 1] == '&') has_and = true;
    if (c == '|' && code[p + 1] == '|') has_or = true;
  }
  for (const std::string& var : vars) {
    const std::string probe = var + ".ok";
    for (std::size_t pos = FindTokenInRange(code, probe, begin, end);
         pos != std::string::npos;
         pos = FindTokenInRange(code, probe, pos + 1, end)) {
      const std::size_t prev = PrevNonWs(code, pos, begin);
      const bool negated = prev != std::string::npos && code[prev] == '!';
      if (negated && !has_and) {
        false_checked->push_back(var);
        cond_checks->push_back({pos, SoEvent::Kind::kCondCheck, var});
      }
      if (!negated && !has_or) {
        true_checked->push_back(var);
        cond_checks->push_back({pos, SoEvent::Kind::kCondCheck, var});
      }
    }
  }
}

}  // namespace

std::set<std::string> CollectStatusOrReturningFunctions(
    const std::vector<FileContext>& files) {
  static const std::regex decl_re(
      "(?:^|[^\\w])StatusOr\\s*<[^;{}()]*>\\s+"
      "(?:[A-Za-z_]\\w*::)*([A-Za-z_]\\w*)\\s*\\(");
  std::set<std::string> names;
  for (const FileContext& file : files) {
    for (std::sregex_iterator it(file.code.begin(), file.code.end(), decl_re),
         end;
         it != end; ++it) {
      names.insert((*it)[1].str());
    }
  }
  return names;
}

std::vector<Finding> CheckStatusOrFlow(
    const FileContext& file, const FileAst& ast,
    const std::set<std::string>& statusor_fns) {
  std::vector<Finding> findings;
  for (const SoUnit& unit : BuildUnits(ast)) {
    const std::string& code = unit.code;
    const Cfg cfg =
        BuildCfg(code, unit.body_begin, unit.body_end, ast.index);

    // Pass 1: the StatusOr variables of this unit.
    std::vector<SoEvent> decls;
    for (const CfgNode& node : cfg.nodes) {
      if (node.end > node.begin) {
        CollectSoDecls(code, node.begin, node.end, statusor_fns, &decls);
      }
    }
    if (decls.empty()) continue;
    std::vector<std::string> vars;
    for (const SoEvent& d : decls) {
      if (std::find(vars.begin(), vars.end(), d.var) == vars.end()) {
        vars.push_back(d.var);
      }
    }

    // Pass 2: per-node event lists (position-ordered) and branch facts.
    const std::size_t n = cfg.nodes.size();
    std::vector<std::vector<SoEvent>> events(n);
    std::vector<std::vector<std::string>> true_checked(n);
    std::vector<std::vector<std::string>> false_checked(n);
    for (std::size_t i = 0; i < n; ++i) {
      const CfgNode& node = cfg.nodes[i];
      if (node.end <= node.begin) continue;
      const bool is_cond = node.kind == CfgNode::Kind::kCondition;
      CollectSoDecls(code, node.begin, node.end, statusor_fns, &events[i]);
      for (const std::string& var : vars) {
        CollectVarEvents(code, node.begin, node.end, var,
                         /*lenient_check=*/!is_cond, &events[i]);
      }
      std::sort(events[i].begin(), events[i].end(),
                [](const SoEvent& a, const SoEvent& b) {
                  return a.pos < b.pos;
                });
      // Drop duplicate (pos, var) pairs the decl scans can both emit.
      events[i].erase(
          std::unique(events[i].begin(), events[i].end(),
                      [](const SoEvent& a, const SoEvent& b) {
                        return a.pos == b.pos && a.var == b.var &&
                               a.kind == b.kind;
                      }),
          events[i].end());
      if (is_cond) {
        std::vector<SoEvent> cond_checks;
        BranchFacts(code, node.begin, node.end, vars, &true_checked[i],
                    &false_checked[i], &cond_checks);
        events[i].insert(events[i].end(), cond_checks.begin(),
                         cond_checks.end());
        std::sort(events[i].begin(), events[i].end(),
                  [](const SoEvent& a, const SoEvent& b) {
                    return a.pos < b.pos;
                  });
      }
    }

    using State = std::map<std::string, SoState>;
    const auto transfer = [&](std::size_t i, State s) {
      for (const SoEvent& ev : events[i]) {
        switch (ev.kind) {
          case SoEvent::Kind::kDecl:
          case SoEvent::Kind::kAssign:
            s[ev.var] = SoState::kUnchecked;
            break;
          case SoEvent::Kind::kCheck:
            s[ev.var] = SoState::kChecked;
            break;
          case SoEvent::Kind::kCondCheck:
            break;  // discharges in-node uses only; edges get branch facts
          case SoEvent::Kind::kUse:
            break;  // state-neutral; reported in the final pass
        }
      }
      return s;
    };
    const auto merge_into = [&](State& dst, const State& src) {
      bool changed = false;
      for (const std::string& var : vars) {
        const auto sit = src.find(var);
        const SoState sv =
            sit == src.end() ? SoState::kUnknown : sit->second;
        const auto dit = dst.find(var);
        const SoState dv =
            dit == dst.end() ? SoState::kUnknown : dit->second;
        const SoState m = Meet(sv, dv);
        if (m != dv) {
          dst[var] = m;
          changed = true;
        }
      }
      return changed;
    };

    // Fixpoint: forward worklist from entry.
    std::vector<State> in(n);
    std::vector<bool> reached(n, false);
    reached[static_cast<std::size_t>(cfg.entry)] = true;
    std::deque<std::size_t> work{static_cast<std::size_t>(cfg.entry)};
    while (!work.empty()) {
      const std::size_t i = work.front();
      work.pop_front();
      const State out = transfer(i, in[i]);
      const CfgNode& node = cfg.nodes[i];
      for (std::size_t k = 0; k < node.succ.size(); ++k) {
        const auto succ = static_cast<std::size_t>(node.succ[k]);
        State edge = out;
        if (node.kind == CfgNode::Kind::kCondition) {
          const auto& facts = k == 0 ? true_checked[i] : false_checked[i];
          for (const std::string& var : facts) edge[var] = SoState::kChecked;
        }
        const bool first = !reached[succ];
        reached[succ] = true;
        if (merge_into(in[succ], edge) || first) work.push_back(succ);
      }
    }

    // Reporting pass over the stable states. A reported variable is treated
    // as checked for the rest of the node, so one broken path yields one
    // finding per variable, not one per dereference.
    for (std::size_t i = 0; i < n; ++i) {
      if (!reached[i]) continue;
      State s = in[i];
      for (const SoEvent& ev : events[i]) {
        switch (ev.kind) {
          case SoEvent::Kind::kDecl:
          case SoEvent::Kind::kAssign:
            s[ev.var] = SoState::kUnchecked;
            break;
          case SoEvent::Kind::kCheck:
          case SoEvent::Kind::kCondCheck:
            s[ev.var] = SoState::kChecked;
            break;
          case SoEvent::Kind::kUse: {
            const auto it = s.find(ev.var);
            if (it != s.end() && it->second == SoState::kUnchecked) {
              findings.push_back(
                  {file.path, ast.index.LineOf(ev.pos),
                   "statusor-use-before-ok",
                   "'" + ev.var +
                       "' may hold an error here: value()/operator*/"
                       "operator-> is not dominated by an ok()/MustOk check "
                       "on every path",
                   ast.index.ColOf(ev.pos)});
              s[ev.var] = SoState::kChecked;
            }
            break;
          }
        }
      }
    }
  }
  return findings;
}

// --- rng-substream-discipline -----------------------------------------------

namespace {

struct RngSite {
  std::size_t file_index = 0;
  std::size_t pos = 0;  // offset of the Rng token
  int line = 0;
  int col = 0;
  int argc = 0;
  bool in_parallel = false;
  std::string seed;    // normalized integer literal, "" when not literal
  std::string stream;  // string literal contents, "" when not literal
};

std::string NormalizeIntLiteral(const std::string& text) {
  std::string out;
  for (char c : text) {
    if (c == '\'') continue;
    if (std::isalnum(static_cast<unsigned char>(c)) == 0) return "";
    out.push_back(c);
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0])) == 0) {
    return "";
  }
  // Strip integer suffixes (u, l, ll, ull, ...).
  while (!out.empty()) {
    const char c = static_cast<char>(
        std::tolower(static_cast<unsigned char>(out.back())));
    if (c == 'u' || c == 'l') {
      out.pop_back();
    } else {
      break;
    }
  }
  return out;
}

void CollectRngSites(const FileContext& file, const FileAst& ast,
                     std::size_t file_index, std::vector<RngSite>* sites) {
  const std::string& code = ast.code;
  for (std::size_t pos = FindTokenInRange(code, "Rng", 0, code.size());
       pos != std::string::npos;
       pos = FindTokenInRange(code, "Rng", pos + 1, code.size())) {
    const std::size_t prev = PrevNonWs(code, pos, 0);
    if (prev != std::string::npos && code[prev] == '.') continue;
    // `class Rng {` / `struct Rng` — the definition, not a construction.
    if (prev != std::string::npos && IsIdentifierChar(code[prev])) {
      std::size_t b = prev + 1;
      while (b > 0 && IsIdentifierChar(code[b - 1])) --b;
      const std::string word = code.substr(b, prev + 1 - b);
      if (word == "class" || word == "struct" || word == "enum") continue;
    }
    std::size_t p = SkipWsForward(code, pos + 3, code.size());
    if (p < code.size() && IsIdentifierChar(code[p])) {
      p = IdentEnd(code, p);  // `Rng name(...)` declaration form
      p = SkipWsForward(code, p, code.size());
    }
    if (p >= code.size() || (code[p] != '(' && code[p] != '{')) continue;
    const std::size_t open = p;
    const std::size_t close = MatchForward(code, open);
    if (close == std::string::npos) continue;

    // Top-level argument spans.
    std::vector<std::pair<std::size_t, std::size_t>> arg_spans;
    std::size_t arg_begin = open + 1;
    int depth = 0;
    for (std::size_t q = open + 1; q < close; ++q) {
      const char c = code[q];
      if (c == '(' || c == '[' || c == '{' || c == '<') ++depth;
      if (c == ')' || c == ']' || c == '}' || c == '>') --depth;
      if (c == ',' && depth == 0) {
        arg_spans.emplace_back(arg_begin, q);
        arg_begin = q + 1;
      }
    }
    if (SkipWsForward(code, arg_begin, close) < close || !arg_spans.empty()) {
      arg_spans.emplace_back(arg_begin, close);
    }
    if (arg_spans.empty()) continue;  // `Rng r;` or `Rng()` declaration

    RngSite site;
    site.file_index = file_index;
    site.pos = pos;
    site.line = ast.index.LineOf(pos);
    site.col = ast.index.ColOf(pos);
    site.argc = static_cast<int>(arg_spans.size());
    for (const LambdaInfo& lambda : ast.lambdas) {
      if (!lambda.parallel_callee.empty() && pos > lambda.body_begin &&
          pos < lambda.body_end) {
        site.in_parallel = true;
      }
    }
    if (site.argc >= 2) {
      const std::size_t a0 = SkipWsForward(code, arg_spans[0].first,
                                           arg_spans[0].second);
      std::size_t a0_end = arg_spans[0].second;
      while (a0_end > a0 && std::isspace(static_cast<unsigned char>(
                                code[a0_end - 1])) != 0) {
        --a0_end;
      }
      site.seed = NormalizeIntLiteral(code.substr(a0, a0_end - a0));
      const std::size_t q1 = SkipWsForward(code, arg_spans[1].first,
                                           arg_spans[1].second);
      if (q1 < arg_spans[1].second && code[q1] == '"') {
        const std::size_t q2 = code.find('"', q1 + 1);
        if (q2 != std::string::npos && q2 < arg_spans[1].second) {
          // Literal contents are blanked in the code view; the geometry
          // guarantee lets us read them back from the raw text.
          site.stream = file.raw.substr(q1 + 1, q2 - q1 - 1);
        }
      }
    }
    sites->push_back(std::move(site));
  }
}

}  // namespace

std::vector<Finding> CheckRngDiscipline(const std::vector<FileContext>& files,
                                        const std::vector<FileAst>& asts) {
  std::vector<Finding> findings;
  std::vector<RngSite> all_sites;
  for (std::size_t i = 0; i < files.size(); ++i) {
    std::vector<RngSite> sites;
    CollectRngSites(files[i], asts[i], i, &sites);
    for (const RngSite& site : sites) {
      if (site.in_parallel && site.argc < 3) {
        findings.push_back(
            {files[i].path, site.line, "rng-substream-discipline",
             "util::Rng constructed inside a parallel body without a shard "
             "substream; use the Rng handed in by ParallelForRng/MapRng or "
             "the 3-arg (seed, stream, shard.index) constructor",
             site.col});
      }
      // The duplicate-identity half only covers production modules: tests
      // and fixtures reuse literal seeds on purpose.
      if (!files[i].module.empty() && !site.seed.empty() &&
          !site.stream.empty()) {
        all_sites.push_back(site);
      }
    }
  }
  std::map<std::string, std::vector<const RngSite*>> by_identity;
  for (const RngSite& site : all_sites) {
    by_identity[site.seed + '\x01' + site.stream].push_back(&site);
  }
  for (auto& [identity, group] : by_identity) {
    if (group.size() < 2) continue;
    std::sort(group.begin(), group.end(),
              [&](const RngSite* a, const RngSite* b) {
                return std::tie(files[a->file_index].path, a->line) <
                       std::tie(files[b->file_index].path, b->line);
              });
    const RngSite* first = group.front();
    for (std::size_t k = 1; k < group.size(); ++k) {
      const RngSite* site = group[k];
      findings.push_back(
          {files[site->file_index].path, site->line,
           "rng-substream-discipline",
           "duplicate RNG stream identity (" + site->seed + ", \"" +
               site->stream + "\"): also constructed at " +
               files[first->file_index].path + ":" +
               std::to_string(first->line) +
               "; correlated draws break stream independence — give each "
               "site its own stream name",
           site->col});
    }
  }
  return findings;
}

}  // namespace myrtus::lint
