// unit-mismatch: the unit-of-measure rule family.
//
// Dimensions are inferred from identifier suffixes — the codebase's naming
// convention IS its unit system, so the analyzer reads it as one:
//
//   time    _ns  _us  _ms  _s
//   bytes   _b   _kb  _mb
//   power   _mw
//   energy  _mj
//   ratio   _pct _frac
//
// CamelCase tails (`MemFreeMb`, `ReadEnergyMw`) infer the same way for the
// multi-letter units; the single-letter units (`_s`, `_b`) require the
// snake_case underscore form to stay unambiguous. Trailing member
// underscores (`width_ns_`) are stripped before inference.
//
// The rule fires when two operands with DIFFERENT known units meet in a
// context where they must agree:
//
//   * additive arithmetic  (`a_ms + b_ns`, `a_ms - b_ns`, `x_ms += y_ns`)
//   * comparisons          (`deadline_ms < now_ns`)
//   * assignment / init with a unit-simple RHS (`energy_mj = sample_mw;`)
//   * argument passing, when the call resolves through the cross-TU call
//     graph and every overload candidate agrees on the parameter's unit
//
// A named conversion helper `XToY(...)` (util::MsToNs-style, see
// src/util/units.hpp) gives its result the target unit Y, so converted flows
// pass. Multiplicative contexts are deliberately unchecked: dimension-forming
// products (`energy_mj = power_mw * duration_s * 1e-3`) are legitimate
// physics, and the named-helper convention (util::MwToMj) is the reviewed
// path for them. docs/LINTING.md documents the full FN envelope.
#pragma once

#include <string>
#include <vector>

#include "ast.hpp"
#include "callgraph.hpp"
#include "rules.hpp"

namespace myrtus::lint {

/// Unit inferred from an identifier's suffix ("ns", "mb", ...); "" when the
/// name carries no unit.
std::string UnitOfIdentifier(const std::string& name);

/// Unit of a parsed unit-simple operand: conversion-helper calls yield their
/// target unit; otherwise the trailing identifier's suffix decides. Literals
/// and invalid operands are unit-less ("").
std::string UnitOfOperand(const Operand& op);

/// Runs over every file at once (argument passing needs the call graph).
/// `files` and `asts` are parallel arrays.
std::vector<Finding> CheckUnitMismatch(const std::vector<FileContext>& files,
                                       const std::vector<FileAst>& asts,
                                       const CallGraph& graph);

}  // namespace myrtus::lint
