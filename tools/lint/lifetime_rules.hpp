// Capture-lifetime escape analysis for deferred callbacks (the "lifetime"
// tier of myrtus_lint — see docs/LINTING.md, "Deferred-sink model").
//
// The control plane is callback-driven: sim::Engine::ScheduleAt, Network::
// Call, Broker::Subscribe, Store::Watch, chaos RegisterTarget, and the
// Cluster hook structs all stash std::functions that fire arbitrarily later
// in sim time. A lambda that captures a stack local by reference into one of
// those sinks is a use-after-scope that ASan only catches when a test
// happens to hit the ordering. This family proves the absence of that flow
// at lint time, the same annotate-the-sinks-then-propagate way Clang's
// -Wthread-safety treats lock capabilities:
//
//   1. A seed table marks the known deferred entry points as (callee name,
//      argument index) pairs. "Deferred" means the callable is stored and
//      may run after the call returns; ParallelFor-style callees that join
//      before returning are vetoed by name.
//   2. Structural classification adds sinks the seed table never heard of:
//      a parameter whose name reaches a member std::function assignment
//      (`cb_ = std::move(cb)`, `hooks.on_bound = fn`) or a callback-
//      container insertion (`pending_[id] = fn`, `subs_.push_back(fn)`)
//      makes its (function, index) a sink.
//   3. A fixpoint closes the table over the PR-8 call graph: a forwarder
//      that passes its parameter into a deferred sink argument becomes a
//      deferred sink itself, N hops deep and across TUs (mirroring
//      AugmentStatusRegistry).
//   4. Every lambda whose value flows into a sink argument — written inline
//      at the call, stored into a member, or passed via a named lambda
//      variable — gets its capture list walked:
//
//        deferred-ref-capture      [&] defaults and explicit &name captures
//                                  (a non-init &name capture can only name
//                                  an automatic-storage variable, so it is
//                                  stack-scoped by construction)
//        deferred-this-capture     a method that registers [this] callbacks,
//                                  called on a receiver declared in a nested
//                                  block of the caller (the object dies at
//                                  the block's end, the callback does not)
//        deferred-pointer-capture  by-value captures holding the address of
//                                  a stack object ([p = &slot], or a local
//                                  `T* p = &x` captured by value) — second
//                                  severity: the escape needs one more hop
//                                  to go wrong, and SARIF reports "warning"
//
//   A registration is discharged when the enclosing function drains the
//   engine in the same scope (`.Run(` / `.RunUntil(` / `.Step(` after the
//   registration): the callback cannot outlive the frame. The discharge is
//   refused when the captured name belongs to an inner lambda's frame —
//   that frame dies during the drain, not after it.
//
// Escape hatches: `// LINT: deferred-capture-ok(<name>) -- <reason>` within
// three lines above the capture (name = the capture, `default`, `this`, or
// the receiver variable), the generic `LINT: allow(<rule>, reason)`, and
// suppressions.txt globs.
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "ast.hpp"
#include "callgraph.hpp"
#include "rules.hpp"

namespace myrtus::lint {

/// The deferred-sink registry: which (unqualified callee name, 0-based
/// argument index) pairs store their callable past the call's return.
/// Name-keyed, like every call-graph fact: overload sets collapse, so one
/// deferred `Call(... cb ...)` marks every same-named overload (documented
/// over-approximation; it only bites when a lambda actually flows there).
struct DeferredSinkTable {
  std::set<std::pair<std::string, int>> sinks;
  /// std::function-typed member names declared at class scope anywhere in
  /// the scanned set (`std::function<void()> on_bound;`, `WatchCallback
  /// cb_;`) — assignment through these is a deferred store even without the
  /// trailing-underscore house style.
  std::set<std::string> function_fields;
  /// `using X = std::function<...>` aliases, collected so typedef-typed
  /// fields land in function_fields too.
  std::set<std::string> callback_aliases;

  bool IsSink(const std::string& name, int arg) const {
    return sinks.count({name, arg}) != 0;
  }
};

/// Builds the registry: seeds, structural member/container stores, then the
/// call-graph fixpoint. Exposed separately so tests can assert the
/// classification itself (e.g. that a 2-hop forwarder chain closes).
DeferredSinkTable BuildDeferredSinkTable(const std::vector<FileContext>& files,
                                         const std::vector<FileAst>& asts,
                                         const CallGraph& graph);

/// Runs the three capture-lifetime rules over every lambda that flows into a
/// registered sink. Findings carry the lambda introducer's line/column
/// (call-site line for deferred-this-capture).
std::vector<Finding> CheckDeferredCaptureLifetime(
    const std::vector<FileContext>& files, const std::vector<FileAst>& asts,
    const CallGraph& graph, const DeferredSinkTable& table);

}  // namespace myrtus::lint
