// Flow-aware rule families for myrtus_lint, built on the AST/CFG front-end
// (tools/lint/ast.hpp, tools/lint/cfg.hpp):
//
//   parallel-capture-race    — every write through a by-reference capture
//                              inside a util::Parallel* body must land in a
//                              shard-indexed slot: `out[shard.index]`, an
//                              induction variable derived from shard.begin,
//                              the per-item index of ParallelMap, a reference
//                              alias of such a slot, or an atomic method.
//   statusor-use-before-ok   — .value() / operator* / operator-> on a
//                              util::StatusOr variable must be dominated by
//                              an ok()/MustOk check on every CFG path within
//                              the enclosing function (or lambda) body.
//   rng-substream-discipline — util::Rng constructed inside a parallel body
//                              must be the 3-arg (seed, stream, index)
//                              substream form (or use the rng the runtime
//                              hands in); and no two src/ call sites may
//                              construct the same literal (seed, "stream")
//                              identity — duplicate streams draw identical
//                              sequences and silently correlate components.
//
// docs/LINTING.md documents each family's false-negative envelope.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "ast.hpp"
#include "rules.hpp"

namespace myrtus::lint {

/// Names of functions declared to return util::StatusOr<...> anywhere in the
/// scanned set (the `auto v = Foo(...)` declaration heuristic needs them).
std::set<std::string> CollectStatusOrReturningFunctions(
    const std::vector<FileContext>& files);

std::vector<Finding> CheckParallelCaptureRace(const FileContext& file,
                                              const FileAst& ast);

std::vector<Finding> CheckStatusOrFlow(const FileContext& file,
                                       const FileAst& ast,
                                       const std::set<std::string>& statusor_fns);

/// Runs over every file at once: the duplicate-(seed, stream) half of the
/// rule is a cross-file property. `files` and `asts` are parallel arrays.
std::vector<Finding> CheckRngDiscipline(const std::vector<FileContext>& files,
                                        const std::vector<FileAst>& asts);

}  // namespace myrtus::lint
