// Driver for myrtus_lint: walks the tree, runs the rule engine, applies the
// checked-in suppression list, and reports `file:line: rule: message` lines
// with CI-friendly exit semantics (see main.cpp / docs/LINTING.md).
#pragma once

#include <string>
#include <vector>

#include "rules.hpp"
#include "util/status.hpp"

namespace myrtus::lint {

/// One entry of tools/lint/suppressions.txt:
///   <rule-id> <path[:line]> -- <reason>
/// Three path-pattern shapes:
///   * exact:        src/kb/registry.cpp
///   * prefix:       src/kb/*           (a single TRAILING '*' and no other
///                                       wildcard — matches across '/')
///   * glob:         src/sched/*.cpp    ('*' = any run of non-'/' chars,
///                                       '?' = one non-'/' char)
/// The reason is mandatory — a suppression without a written justification
/// is a parse error, by design. An exact entry whose path is also matched by
/// a glob/prefix entry for the same rule is rejected at parse time: one of
/// the two is redundant, and redundant suppressions rot.
struct Suppression {
  std::string rule;
  std::string path_pattern;
  int line = 0;  // 0 = any line
  std::string reason;
  bool used = false;
};

/// True when `path` matches `pattern` under the shape rules above.
bool PathPatternMatches(const std::string& pattern, const std::string& path);

/// True when the suppression covers the finding (rule, path pattern, line).
bool SuppressionMatches(const Suppression& sup, const Finding& f);

struct Options {
  /// All scanned paths are reported relative to this root, so suppressions
  /// stay stable regardless of where the binary runs.
  std::string repo_root = ".";
  /// Empty = use <repo_root>/tools/lint/suppressions.txt when present.
  std::string suppressions_path;
  /// Path prefixes where host time/threads are legitimate: bench drivers
  /// measure wall-clock by design, the telemetry exporters are the designated
  /// boundary where host timestamps may enter exported artifacts, the flight
  /// recorder's dump path is the same kind of boundary (ring contents stay
  /// sim-time stamped; only dump-file metadata may ever touch the host
  /// clock), and util/parallel is the one sanctioned home for std::thread —
  /// its fork-join pool guarantees results independent of thread scheduling,
  /// which is the property the rule exists to protect. Everything else draws
  /// parallelism through util::ParallelFor/Map/Reduce.
  std::vector<std::string> determinism_allowlist = {
      "bench/", "src/telemetry/export.", "src/telemetry/recorder.",
      "src/util/parallel."};
  /// --changed-only: when true, only findings on `report_paths`
  /// (repo-relative) are reported. The whole scanned set still feeds the
  /// cross-TU analysis, so the reported subset matches a full run exactly.
  /// An empty report_paths with restrict_report=true reports nothing.
  bool restrict_report = false;
  std::vector<std::string> report_paths;
  /// --timings: collect the per-family wall-time breakdown into
  /// LintResult::timings.
  bool collect_timings = false;
};

struct LintResult {
  std::vector<Finding> findings;  // unsuppressed only
  std::size_t files_scanned = 0;
  std::size_t suppressed = 0;
  /// Suppressions that matched nothing this run (stale entries; reported as
  /// warnings, not failures, so allowlist-style entries may stay).
  std::vector<Suppression> unused_suppressions;
  /// Per-rule-family wall time (only populated under Options::collect_timings).
  std::vector<FamilyTiming> timings;
};

util::StatusOr<std::vector<Suppression>> ParseSuppressions(
    const std::string& text, const std::string& origin);

/// Renders a run as a SARIF 2.1.0 log (one run, driver "myrtus-lint", every
/// rule in the metadata table, one result per unsuppressed finding). File
/// paths are emitted repo-relative with uriBaseId "SRCROOT" so the log stays
/// portable across checkouts; CI uploads it for PR annotations. The console
/// GCC-diagnostic format stays the default — SARIF is opt-in via --sarif=.
std::string SarifReport(const LintResult& result);

/// Walks `paths` (files or directories, relative to Options::repo_root),
/// lexes every .cpp/.hpp (skipping lint fixture trees), runs all rules, and
/// filters through the suppression list.
util::StatusOr<LintResult> LintPaths(const std::vector<std::string>& paths,
                                     const Options& options);

}  // namespace myrtus::lint
