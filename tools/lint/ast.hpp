// Lightweight syntactic front-end for myrtus_lint's flow-aware rules.
//
// This is deliberately not a C++ parser: it works on the stripped "code view"
// (tools/lint/lexer.hpp), where comments and literal contents are already
// blanked, and recovers just enough structure for the flow rules —
//
//   * a brace-matched function extractor (name + `{...}` body span),
//   * a lambda finder with a parsed capture list, parameter names, and the
//     name of the util::Parallel* entry point the lambda is passed to (when
//     it is a direct argument), and
//   * offset <-> line/column mapping so findings carry exact positions.
//
// Templates are scanned as text, overloads are matched by name only, and
// macros are seen un-expanded; docs/LINTING.md documents that false-negative
// envelope. The geometry guarantee of the lexer (same byte offsets in raw and
// stripped text) is what lets rules read literal contents back out of the raw
// text at positions discovered in the code view.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "rules.hpp"

namespace myrtus::lint {

/// Offset -> (line, column) mapping over one text buffer. Lines and columns
/// are 1-based, matching compiler diagnostics.
class TextIndex {
 public:
  explicit TextIndex(const std::string& text);
  int LineOf(std::size_t offset) const;
  int ColOf(std::size_t offset) const;

 private:
  std::vector<std::size_t> line_starts_;
};

/// Offset of the delimiter matching the opener at `open` (one of `(` `[` `{`),
/// or npos when the text is unbalanced. Operates on stripped code, so
/// delimiters inside literals never miscount.
std::size_t MatchForward(const std::string& code, std::size_t open);

/// One lambda expression found in a file.
struct LambdaInfo {
  std::size_t intro = 0;       // offset of the '[' of the capture list
  std::size_t body_begin = 0;  // offset of the body '{'
  std::size_t body_end = 0;    // offset of the matching '}'
  bool default_ref = false;    // capture-default '&'
  bool default_copy = false;   // capture-default '='
  std::vector<std::string> ref_captures;    // [&name] and [&name = expr]
  std::vector<std::string> value_captures;  // [name], [name = expr], [this]
  /// Names introduced by reference init-captures ([&alias = expr]): a subset
  /// of ref_captures. The lifetime family exempts these — the initializer may
  /// denote a member or heap object, not necessarily a stack local.
  std::vector<std::string> init_ref_captures;
  /// Value init-captures as (name, initializer text): [p = &slot] yields
  /// ("p", "&slot"). The initializer is whitespace-trimmed source text.
  std::vector<std::pair<std::string, std::string>> init_value_captures;
  std::vector<std::string> param_names;     // "" for unnamed parameters
  std::vector<std::string> param_texts;     // full declaration text per param
  /// "ParallelFor", "ParallelMap", ... when this lambda is a *direct*
  /// argument of a util::Parallel* call; empty otherwise. Lambdas wrapped in
  /// another call first (ParallelFor(n, wrap([...]))) are not attributed.
  std::string parallel_callee;
};

/// One function definition (free function, member, TEST body, ...).
struct FunctionInfo {
  std::string name;
  std::size_t name_begin = 0;  // offset of the first character of the name
  std::size_t body_begin = 0;  // offset of the body '{'
  std::size_t body_end = 0;    // offset of the matching '}'
};

/// Parsed view of one file, shared by all flow rules.
struct FileAst {
  std::string code;  // stripped text, '\n'-joined (byte-identical geometry)
  std::string raw;   // original text, same geometry as `code`
  TextIndex index;
  std::vector<FunctionInfo> functions;
  std::vector<LambdaInfo> lambdas;

  explicit FileAst(std::string code_text, std::string raw_text)
      : code(std::move(code_text)), raw(std::move(raw_text)), index(code) {}
};

FileAst BuildFileAst(const FileContext& file);

/// Identifier-boundary token search in [from, to) of `text`. Returns npos
/// when absent. The token's first/last characters get boundary checks, so
/// qualified tokens ("shard.index") work too.
std::size_t FindTokenInRange(const std::string& text, const std::string& token,
                             std::size_t from, std::size_t to);

/// True for [A-Za-z0-9_].
bool IsIdentifierChar(char c);

/// Skips spaces/tabs/newlines forward from `pos`; never past `end`.
std::size_t SkipWsForward(const std::string& text, std::size_t pos,
                          std::size_t end);

/// Returns the identifier ending at `end` (exclusive) after skipping
/// whitespace backwards, and its start offset via `begin_out`; empty when the
/// preceding token is not an identifier.
std::string IdentifierBefore(const std::string& text, std::size_t end,
                             std::size_t* begin_out);

}  // namespace myrtus::lint
