#include "unit_rules.hpp"

#include <cctype>
#include <map>

namespace myrtus::lint {
namespace {

/// unit -> dimension. Two units mix legally only through a named conversion
/// helper; two dimensions never mix additively at all.
const std::map<std::string, std::string>& UnitDims() {
  static const std::map<std::string, std::string> dims = {
      {"ns", "time"},  {"us", "time"},   {"ms", "time"}, {"s", "time"},
      {"b", "bytes"},  {"kb", "bytes"},  {"mb", "bytes"}, {"mw", "power"},
      {"mj", "energy"}, {"pct", "ratio"}, {"frac", "ratio"}};
  return dims;
}

/// CamelCase unit tokens as they appear in helper names (MsToNs). The
/// single-letter units are legal here — `SToMs` is unambiguous — but not in
/// plain camel-tail inference.
const std::map<std::string, std::string>& CamelUnitTokens() {
  static const std::map<std::string, std::string> tokens = {
      {"Ns", "ns"}, {"Us", "us"}, {"Ms", "ms"},   {"S", "s"},
      {"B", "b"},   {"Kb", "kb"}, {"Mb", "mb"},   {"Mw", "mw"},
      {"Mj", "mj"}, {"Pct", "pct"}, {"Frac", "frac"}};
  return tokens;
}

std::string CapUnit(const std::string& unit) {
  std::string out = unit;
  out[0] = static_cast<char>(
      std::toupper(static_cast<unsigned char>(out[0])));
  return out;
}

/// `MsToNs` -> "ns"; "" when the name is not a conversion-helper shape.
std::string ConversionTarget(const std::string& name) {
  for (std::size_t p = name.find("To"); p != std::string::npos;
       p = name.find("To", p + 1)) {
    if (p == 0 || p + 2 >= name.size()) continue;
    const auto from = CamelUnitTokens().find(name.substr(0, p));
    const auto to = CamelUnitTokens().find(name.substr(p + 2));
    if (from != CamelUnitTokens().end() && to != CamelUnitTokens().end()) {
      return to->second;
    }
  }
  return "";
}

struct Mismatch {
  Operand left;
  Operand right;
  std::string lu;
  std::string ru;
};

/// Renders the shared tail of a mismatch message: what the units are and how
/// to reconcile them.
std::string Describe(const Mismatch& m) {
  std::string out = "'" + m.left.text + "' is " + m.lu + " but '" +
                    m.right.text + "' is " + m.ru;
  const std::string& ld = UnitDims().at(m.lu);
  const std::string& rd = UnitDims().at(m.ru);
  if (ld == rd) {
    out += "; convert explicitly: util::" + CapUnit(m.ru) + "To" +
           CapUnit(m.lu) + "(" + m.right.text + ")";
  } else {
    out += "; these are different dimensions (" + ld + " vs " + rd +
           ") — relate them through a named helper (util::MwToMj-style)";
  }
  return out;
}

void Report(const FileContext& file, const FileAst& ast, std::size_t pos,
            const std::string& context, const Mismatch& m,
            std::vector<Finding>& findings) {
  Finding f;
  f.file = file.path;
  f.line = ast.index.LineOf(pos);
  f.col = ast.index.ColOf(pos);
  f.rule = "unit-mismatch";
  f.message = context + " mixes units: " + Describe(m);
  findings.push_back(std::move(f));
}

/// Parses both sides of the operator at [op_begin, op_end) and fills `m` when
/// they carry different known units.
bool MismatchAt(const std::string& code, std::size_t op_begin,
                std::size_t op_end, Mismatch* m) {
  m->left = ParseOperandBackward(code, op_begin);
  if (!m->left.valid) return false;
  m->right = ParseOperandForward(code, op_end, code.size());
  if (!m->right.valid) return false;
  m->lu = UnitOfOperand(m->left);
  m->ru = UnitOfOperand(m->right);
  return !m->lu.empty() && !m->ru.empty() && m->lu != m->ru;
}

void CheckOperators(const FileContext& file, const FileAst& ast,
                    std::vector<Finding>& findings) {
  const std::string& code = ast.code;
  for (std::size_t i = 0; i < code.size(); ++i) {
    const char c = code[i];
    const char prev = i > 0 ? code[i - 1] : '\0';
    const char next = i + 1 < code.size() ? code[i + 1] : '\0';
    Mismatch m;
    if (c == '+' || c == '-') {
      // Binary additive only: not ++/--/+=/-=/->.
      if (next == c || next == '=' || prev == c) continue;
      if (c == '-' && next == '>') continue;
      if (MismatchAt(code, i, i + 1, &m)) {
        Report(file, ast, i, std::string("'") + c + "'", m, findings);
      }
    } else if (c == '<' || c == '>') {
      if (next == c || prev == c) continue;  // shifts
      if (c == '>' && prev == '-') continue;  // ->
      if (prev == '=' || prev == '!') continue;
      const std::size_t end = next == '=' ? i + 2 : i + 1;
      if (MismatchAt(code, i, end, &m)) {
        Report(file, ast, i, "comparison", m, findings);
      }
    } else if (c == '=' && next == '=' && prev != '=' && prev != '!' &&
               prev != '<' && prev != '>') {
      if (MismatchAt(code, i, i + 2, &m)) {
        Report(file, ast, i, "comparison", m, findings);
      }
    } else if (c == '=' && next != '=' &&
               (prev == '+' || prev == '-')) {
      // Compound additive assignment: x_ms += y_ns.
      if (MismatchAt(code, i - 1, i + 1, &m) && !m.left.is_call &&
          !m.left.is_literal) {
        Report(file, ast, i - 1, "compound assignment", m, findings);
      }
    } else if (c == '=' && next != '=' && prev != '=' && prev != '!' &&
               prev != '<' && prev != '>' && prev != '+' && prev != '-' &&
               prev != '*' && prev != '/' && prev != '%' && prev != '&' &&
               prev != '|' && prev != '^') {
      // Plain assignment / initialization. Only a fully unit-simple RHS is
      // checked: when the RHS is an expression, the additive scan covers its
      // interior mixes instead.
      if (!MismatchAt(code, i, i + 1, &m)) continue;
      if (m.left.is_call || m.left.is_literal) continue;
      const std::size_t after =
          SkipWsForward(code, m.right.end, code.size());
      const char terminator = after < code.size() ? code[after] : '\0';
      if (terminator != ';' && terminator != ',' && terminator != ')' &&
          terminator != '}') {
        continue;
      }
      Report(file, ast, i, "assignment", m, findings);
    }
  }
}

void CheckArgumentPassing(const std::vector<FileContext>& files,
                          const std::vector<FileAst>& asts,
                          const CallGraph& graph,
                          std::vector<Finding>& findings) {
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    const std::string& code = asts[fi].code;
    for (const CallSite& site : graph.file_calls[fi]) {
      const std::vector<int>& cands = graph.Resolve(site.name);
      if (cands.empty()) continue;
      for (std::size_t j = 0; j < site.args.size(); ++j) {
        // Every overload candidate must have a j-th parameter and agree on
        // its unit; disagreement (or any unit-less candidate) skips the
        // argument — the conservative reading of a collapsed overload set.
        std::string param_unit;
        std::string param_name;
        bool agree = true;
        for (int cand : cands) {
          const Symbol& sym = graph.symbols[static_cast<std::size_t>(cand)];
          if (sym.params.size() <= j) {
            agree = false;
            break;
          }
          const std::string unit = UnitOfIdentifier(sym.params[j].name);
          if (unit.empty() || (!param_unit.empty() && unit != param_unit)) {
            agree = false;
            break;
          }
          param_unit = unit;
          param_name = sym.params[j].name;
        }
        if (!agree || param_unit.empty()) continue;
        const auto [ab, ae] = site.args[j];
        const Operand arg = ParseOperandForward(code, ab, ae);
        if (!arg.valid || SkipWsForward(code, arg.end, ae) != ae) continue;
        const std::string arg_unit = UnitOfOperand(arg);
        if (arg_unit.empty() || arg_unit == param_unit) continue;
        Mismatch m;
        m.left.text = param_name;
        m.lu = param_unit;
        m.right = arg;
        m.ru = arg_unit;
        Finding f;
        f.file = files[fi].path;
        f.line = site.line;
        f.col = site.col;
        f.rule = "unit-mismatch";
        f.message = "argument " + std::to_string(j + 1) + " of '" +
                    site.name + "' mixes units: parameter " + Describe(m);
        findings.push_back(std::move(f));
      }
    }
  }
}

}  // namespace

std::string UnitOfIdentifier(const std::string& name) {
  std::string n = name;
  while (!n.empty() && n.back() == '_') n.pop_back();
  if (n.empty()) return "";
  const std::size_t us = n.rfind('_');
  if (us != std::string::npos) {
    if (us == 0) return "";
    const std::string suffix = n.substr(us + 1);
    return UnitDims().count(suffix) != 0 ? suffix : "";
  }
  // CamelCase tail: the substring from the last uppercase letter. The
  // single-letter units need the underscore form (`Mb` reads as megabytes;
  // a trailing `B` or `S` alone does not).
  for (std::size_t i = n.size(); i-- > 1;) {
    if (std::isupper(static_cast<unsigned char>(n[i])) == 0) continue;
    const std::string tail = n.substr(i);
    if (tail.size() < 2) return "";
    const auto it = CamelUnitTokens().find(tail);
    return it != CamelUnitTokens().end() ? it->second : "";
  }
  return "";
}

std::string UnitOfOperand(const Operand& op) {
  if (!op.valid || op.is_literal) return "";
  if (op.is_call) {
    const std::string conv = ConversionTarget(op.last_ident);
    if (!conv.empty()) return conv;
  }
  return UnitOfIdentifier(op.last_ident);
}

std::vector<Finding> CheckUnitMismatch(const std::vector<FileContext>& files,
                                       const std::vector<FileAst>& asts,
                                       const CallGraph& graph) {
  std::vector<Finding> findings;
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    CheckOperators(files[fi], asts[fi], findings);
  }
  CheckArgumentPassing(files, asts, graph, findings);
  return findings;
}

}  // namespace myrtus::lint
