#include "ast.hpp"

#include <algorithm>
#include <array>
#include <cctype>

namespace myrtus::lint {
namespace {

/// Keywords that take a parenthesized head but never open a function body.
bool IsControlKeyword(const std::string& word) {
  static const std::array<const char*, 12> kControl = {
      "if",     "while",  "for",      "switch", "catch",  "return",
      "sizeof", "alignof", "decltype", "new",    "delete", "constexpr"};
  return std::find(kControl.begin(), kControl.end(), word) != kControl.end();
}

bool StartsWithToken(const std::string& text, std::size_t pos,
                     const char* token) {
  const std::size_t len = std::char_traits<char>::length(token);
  if (text.compare(pos, len, token) != 0) return false;
  const bool left_ok = pos == 0 || !IsIdentifierChar(text[pos - 1]);
  const bool right_ok =
      pos + len >= text.size() || !IsIdentifierChar(text[pos + len]);
  return left_ok && right_ok;
}

std::string Trimmed(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

/// Splits `text` on commas at (), [], {}, <> depth zero. Angle brackets are
/// tracked best-effort: good enough for capture lists and parameter lists,
/// which is all this is used for.
std::vector<std::string> SplitTopLevelCommas(const std::string& text) {
  std::vector<std::string> parts;
  int paren = 0;
  int angle = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '(' || c == '[' || c == '{') ++paren;
    if (c == ')' || c == ']' || c == '}') --paren;
    if (c == '<') ++angle;
    if (c == '>' && angle > 0) --angle;
    if (c == ',' && paren == 0 && angle == 0) {
      parts.push_back(Trimmed(text.substr(start, i - start)));
      start = i + 1;
    }
  }
  const std::string tail = Trimmed(text.substr(start));
  if (!tail.empty() || !parts.empty()) parts.push_back(tail);
  if (parts.size() == 1 && parts[0].empty()) parts.clear();
  return parts;
}

/// Parameter name: the trailing identifier of the declaration, after cutting
/// a default argument. "const util::Shard& shard" -> "shard"; "int" -> "".
std::string ParamName(const std::string& decl) {
  std::string d = decl;
  // Cut "= default" tails (SplitTopLevelCommas already kept '=' intact).
  int depth = 0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    const char c = d[i];
    if (c == '(' || c == '[' || c == '{' || c == '<') ++depth;
    if (c == ')' || c == ']' || c == '}' || c == '>') --depth;
    if (c == '=' && depth == 0) {
      d.resize(i);
      break;
    }
  }
  d = Trimmed(d);
  std::size_t e = d.size();
  while (e > 0 && IsIdentifierChar(d[e - 1])) --e;
  std::string name = d.substr(e);
  // A trailing identifier that is part of the type, not a name.
  if (name == "int" || name == "auto" || name == "char" || name == "bool" ||
      name == "double" || name == "float" || name == "long" ||
      name == "short" || name == "unsigned" || name == "signed" ||
      name == "size_t" || name == "void" || name == "const") {
    return "";
  }
  if (e > 0 && (d[e - 1] == ':' || d[e - 1] == '.')) return "";
  // "Foo bar": only a name when something type-like precedes it.
  if (e == 0) return "";
  return name;
}

/// True when the '[' at `pos` starts a lambda introducer rather than a
/// subscript or an attribute.
bool IsLambdaIntro(const std::string& code, std::size_t pos) {
  if (pos + 1 < code.size() && code[pos + 1] == '[') return false;  // [[attr]]
  std::size_t p = pos;
  while (p > 0 &&
         std::isspace(static_cast<unsigned char>(code[p - 1])) != 0) {
    --p;
  }
  if (p == 0) return true;
  const char prev = code[p - 1];
  // After an identifier, ')' or ']' a '[' is a subscript; after a string
  // quote it is part of an expression like "x"[0] (never in this codebase).
  if (IsIdentifierChar(prev) || prev == ')' || prev == ']' || prev == '"') {
    return false;
  }
  return true;
}

/// Parses the capture list text (without brackets) into `info`.
void ParseCaptures(const std::string& text, LambdaInfo& info) {
  for (const std::string& entry : SplitTopLevelCommas(text)) {
    if (entry.empty()) continue;
    if (entry == "&") {
      info.default_ref = true;
      continue;
    }
    if (entry == "=") {
      info.default_copy = true;
      continue;
    }
    if (entry == "this" || entry == "*this") {
      info.value_captures.push_back("this");
      continue;
    }
    const bool by_ref = entry[0] == '&';
    std::string name = by_ref ? Trimmed(entry.substr(1)) : entry;
    // Init-captures: keep the introduced name, remember the initializer.
    std::string init;
    const std::size_t eq = name.find('=');
    if (eq != std::string::npos) {
      init = Trimmed(name.substr(eq + 1));
      name = Trimmed(name.substr(0, eq));
    }
    std::size_t e = 0;
    while (e < name.size() && IsIdentifierChar(name[e])) ++e;
    name.resize(e);
    if (name.empty()) continue;
    (by_ref ? info.ref_captures : info.value_captures).push_back(name);
    if (eq != std::string::npos) {
      if (by_ref) {
        info.init_ref_captures.push_back(name);
      } else {
        info.init_value_captures.emplace_back(name, init);
      }
    }
  }
}

/// If the text ending at `call_open` (offset of '(') is a util::Parallel*
/// callee — possibly with explicit template arguments — returns its name.
std::string ParallelCalleeBefore(const std::string& code,
                                 std::size_t call_open) {
  std::size_t p = call_open;
  while (p > 0 &&
         std::isspace(static_cast<unsigned char>(code[p - 1])) != 0) {
    --p;
  }
  // Skip one explicit template argument list: ParallelMap<T>(...).
  if (p > 0 && code[p - 1] == '>') {
    int depth = 0;
    std::size_t q = p;
    while (q > 0) {
      --q;
      if (code[q] == '>') ++depth;
      if (code[q] == '<') {
        --depth;
        if (depth == 0) break;
      }
    }
    if (depth != 0) return "";
    p = q;
  }
  std::size_t begin = 0;
  const std::string name = IdentifierBefore(code, p, &begin);
  static const std::array<const char*, 5> kParallel = {
      "ParallelFor", "ParallelForRng", "ParallelMap", "ParallelMapRng",
      "ParallelReduce"};
  for (const char* candidate : kParallel) {
    if (name == candidate) return name;
  }
  return "";
}

void CollectLambdas(FileAst& ast) {
  const std::string& code = ast.code;
  std::vector<std::size_t> paren_stack;  // offsets of currently-open '('
  for (std::size_t i = 0; i < code.size(); ++i) {
    const char c = code[i];
    if (c == '(') {
      paren_stack.push_back(i);
      continue;
    }
    if (c == ')') {
      if (!paren_stack.empty()) paren_stack.pop_back();
      continue;
    }
    if (c != '[' || !IsLambdaIntro(code, i)) continue;
    const std::size_t intro_close = MatchForward(code, i);
    if (intro_close == std::string::npos) continue;

    LambdaInfo info;
    info.intro = i;
    ParseCaptures(code.substr(i + 1, intro_close - i - 1), info);

    std::size_t p = SkipWsForward(code, intro_close + 1, code.size());
    if (p < code.size() && code[p] == '(') {
      const std::size_t params_close = MatchForward(code, p);
      if (params_close == std::string::npos) continue;
      for (const std::string& param :
           SplitTopLevelCommas(code.substr(p + 1, params_close - p - 1))) {
        info.param_texts.push_back(param);
        info.param_names.push_back(ParamName(param));
      }
      p = params_close + 1;
    }
    // Skip specifiers and a trailing-return type up to the body brace.
    bool is_lambda = false;
    while (p < code.size()) {
      p = SkipWsForward(code, p, code.size());
      if (p >= code.size()) break;
      if (code[p] == '{') {
        is_lambda = true;
        break;
      }
      if (StartsWithToken(code, p, "mutable") ||
          StartsWithToken(code, p, "constexpr") ||
          StartsWithToken(code, p, "static")) {
        p += 6;  // at least; the loop re-skips whitespace
        while (p < code.size() && IsIdentifierChar(code[p])) ++p;
        continue;
      }
      if (StartsWithToken(code, p, "noexcept")) {
        p += 8;
        const std::size_t q = SkipWsForward(code, p, code.size());
        if (q < code.size() && code[q] == '(') {
          const std::size_t close = MatchForward(code, q);
          if (close == std::string::npos) break;
          p = close + 1;
        }
        continue;
      }
      if (code.compare(p, 2, "->") == 0) {
        p += 2;
        // Consume the return type: identifiers, qualifiers, templates.
        while (p < code.size() && code[p] != '{' && code[p] != ';' &&
               code[p] != ',' && code[p] != ')') {
          if (code[p] == '<') {
            const std::size_t close = MatchForward(code, p);
            if (close == std::string::npos) break;
            p = close + 1;
          } else {
            ++p;
          }
        }
        continue;
      }
      break;  // not a lambda after all (e.g. an array declarator)
    }
    if (!is_lambda) continue;
    info.body_begin = p;
    info.body_end = MatchForward(code, p);
    if (info.body_end == std::string::npos) continue;
    if (!paren_stack.empty()) {
      // Direct argument only: the lambda must follow the call's '(' or an
      // argument ','. A lambda nested inside another lambda's body still has
      // the outer call's '(' on the paren stack, but sits after '=' / '{' /
      // ';' instead — it belongs to the enclosing body, not the call.
      std::size_t prev = info.intro;
      while (prev > 0 &&
             std::isspace(static_cast<unsigned char>(code[prev - 1])) != 0) {
        --prev;
      }
      if (prev > 0 && (code[prev - 1] == '(' || code[prev - 1] == ',')) {
        info.parallel_callee = ParallelCalleeBefore(code, paren_stack.back());
      }
    }
    ast.lambdas.push_back(std::move(info));
  }
}

void CollectFunctions(FileAst& ast) {
  const std::string& code = ast.code;
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (code[i] != '(') continue;
    const std::size_t close = MatchForward(code, i);
    if (close == std::string::npos) continue;

    std::size_t name_begin = 0;
    const std::string name = IdentifierBefore(code, i, &name_begin);
    if (name.empty() || IsControlKeyword(name)) continue;

    // After the parameter list: specifiers, a trailing return type, or a
    // constructor initializer list may precede the body brace.
    std::size_t p = close + 1;
    bool is_function = false;
    while (p < code.size()) {
      p = SkipWsForward(code, p, code.size());
      if (p >= code.size()) break;
      if (code[p] == '{') {
        is_function = true;
        break;
      }
      if (StartsWithToken(code, p, "const") ||
          StartsWithToken(code, p, "override") ||
          StartsWithToken(code, p, "final") ||
          StartsWithToken(code, p, "mutable")) {
        while (p < code.size() && IsIdentifierChar(code[p])) ++p;
        continue;
      }
      if (StartsWithToken(code, p, "noexcept")) {
        while (p < code.size() && IsIdentifierChar(code[p])) ++p;
        const std::size_t q = SkipWsForward(code, p, code.size());
        if (q < code.size() && code[q] == '(') {
          const std::size_t nclose = MatchForward(code, q);
          if (nclose == std::string::npos) break;
          p = nclose + 1;
        }
        continue;
      }
      if (code.compare(p, 2, "->") == 0) {
        p += 2;
        while (p < code.size() && code[p] != '{' && code[p] != ';') {
          if (code[p] == '<' || code[p] == '(') {
            const std::size_t tclose = MatchForward(code, p);
            if (tclose == std::string::npos) break;
            p = tclose + 1;
          } else {
            ++p;
          }
        }
        continue;
      }
      if (code[p] == ':' && (p + 1 >= code.size() || code[p + 1] != ':')) {
        // Constructor initializer list: consume "member(expr)" / "member{expr}"
        // groups until the body brace.
        ++p;
        bool found_body = false;
        while (p < code.size()) {
          p = SkipWsForward(code, p, code.size());
          if (p >= code.size()) break;
          if (code[p] == '(') {
            const std::size_t gclose = MatchForward(code, p);
            if (gclose == std::string::npos) break;
            p = gclose + 1;
            continue;
          }
          if (code[p] == '{') {
            // An init-brace directly follows an identifier or '>'; the body
            // brace follows whitespace, ')' or '}'.
            std::size_t q = p;
            while (q > 0 && std::isspace(
                                static_cast<unsigned char>(code[q - 1])) != 0) {
              --q;
            }
            const char prev = q > 0 ? code[q - 1] : '\0';
            if (q == p && (IsIdentifierChar(prev) || prev == '>')) {
              const std::size_t gclose = MatchForward(code, p);
              if (gclose == std::string::npos) break;
              p = gclose + 1;
              continue;
            }
            found_body = true;
            break;
          }
          if (code[p] == ';') break;
          ++p;
        }
        if (found_body) {
          is_function = true;
        }
        break;
      }
      break;  // ';' (declaration), ',', operator — not a definition
    }
    if (!is_function || p >= code.size() || code[p] != '{') continue;
    const std::size_t body_end = MatchForward(code, p);
    if (body_end == std::string::npos) continue;
    FunctionInfo fn;
    fn.name = name;
    fn.name_begin = name_begin;
    fn.body_begin = p;
    fn.body_end = body_end;
    ast.functions.push_back(std::move(fn));
  }
}

}  // namespace

TextIndex::TextIndex(const std::string& text) {
  line_starts_.push_back(0);
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') line_starts_.push_back(i + 1);
  }
}

int TextIndex::LineOf(std::size_t offset) const {
  const auto it =
      std::upper_bound(line_starts_.begin(), line_starts_.end(), offset);
  return static_cast<int>(it - line_starts_.begin());
}

int TextIndex::ColOf(std::size_t offset) const {
  const int line = LineOf(offset);
  return static_cast<int>(offset -
                          line_starts_[static_cast<std::size_t>(line - 1)]) +
         1;
}

std::size_t MatchForward(const std::string& code, std::size_t open) {
  if (open >= code.size()) return std::string::npos;
  const char open_c = code[open];
  const char close_c = open_c == '(' ? ')' : open_c == '[' ? ']' : '}';
  if (open_c != '(' && open_c != '[' && open_c != '{') {
    return std::string::npos;
  }
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    if (code[i] == open_c) ++depth;
    if (code[i] == close_c) {
      --depth;
      if (depth == 0) return i;
    }
  }
  return std::string::npos;
}

bool IsIdentifierChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::size_t SkipWsForward(const std::string& text, std::size_t pos,
                          std::size_t end) {
  while (pos < end && std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
    ++pos;
  }
  return pos;
}

std::string IdentifierBefore(const std::string& text, std::size_t end,
                             std::size_t* begin_out) {
  std::size_t p = end;
  while (p > 0 && std::isspace(static_cast<unsigned char>(text[p - 1])) != 0) {
    --p;
  }
  std::size_t b = p;
  while (b > 0 && IsIdentifierChar(text[b - 1])) --b;
  if (begin_out != nullptr) *begin_out = b;
  return text.substr(b, p - b);
}

std::size_t FindTokenInRange(const std::string& text, const std::string& token,
                             std::size_t from, std::size_t to) {
  if (token.empty() || to > text.size() || from >= to) return std::string::npos;
  for (std::size_t pos = text.find(token, from);
       pos != std::string::npos && pos + token.size() <= to;
       pos = text.find(token, pos + 1)) {
    const bool left_ok = pos == 0 || !IsIdentifierChar(text[pos - 1]);
    const std::size_t end = pos + token.size();
    const bool right_ok = end >= text.size() || !IsIdentifierChar(text[end]);
    if (left_ok && right_ok) return pos;
  }
  return std::string::npos;
}

FileAst BuildFileAst(const FileContext& file) {
  FileAst ast(file.code, file.raw);
  CollectLambdas(ast);
  CollectFunctions(ast);
  return ast;
}

}  // namespace myrtus::lint
