// Statement-level control-flow graphs for myrtus_lint's flow rules.
//
// BuildCfg parses one brace-delimited body from the stripped code view into
// basic statements and conditions, wired with explicit edges:
//
//   * sequencing, `{}` blocks
//   * if / else (condition nodes carry a true edge then a false edge)
//   * while / for / range-for / do-while, with break and continue
//   * early return (wired straight to the exit node)
//
// Everything else — switch, try, goto — is kept as a single opaque statement
// node whose span covers the whole construct; rules still see its text but
// not its internal branching (a documented false-negative envelope, see
// docs/LINTING.md). No template instantiation, no overload resolution, no
// macro expansion: this is a syntactic CFG, exact for the code style this
// repository enforces.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ast.hpp"

namespace myrtus::lint {

struct CfgNode {
  enum class Kind {
    kEntry,
    kExit,
    kStatement,  // simple statement (or opaque construct)
    kCondition,  // if/while/for/do condition: succ[0] true, succ[1] false
  };
  Kind kind = Kind::kStatement;
  std::size_t begin = 0;  // span in the code buffer (condition or statement)
  std::size_t end = 0;    // exclusive
  int line = 0;           // 1-based line of the first character of the span
  std::vector<int> succ;
};

struct Cfg {
  std::vector<CfgNode> nodes;  // nodes[entry] / nodes[exit] always exist
  int entry = 0;
  int exit = 1;
};

/// Builds the CFG for the body whose '{' is at `body_begin` and matching '}'
/// at `body_end` in `code`. `index` supplies line numbers.
Cfg BuildCfg(const std::string& code, std::size_t body_begin,
             std::size_t body_end, const TextIndex& index);

}  // namespace myrtus::lint
