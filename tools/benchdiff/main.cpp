// benchdiff: compares two BENCH_*.json artifacts (bench/report.hpp schema)
// and exits nonzero when a gated metric regressed past its threshold. CI runs
// it as the regression tripwire; humans run it to quantify a change:
//
//   benchdiff BASELINE.json CANDIDATE.json [--threshold=10]
//             [--metric=<name>=<pct>]...
//
// --threshold is the default allowed regression in percent; --metric
// overrides it per metric. Direction comes from each metric's
// higher_is_better flag. Exit codes: 0 ok, 1 regression (including a gated
// baseline metric missing from the candidate), 2 usage or parse error.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "util/json.hpp"
#include "util/status.hpp"

namespace {

using myrtus::util::Json;

constexpr int kExitOk = 0;
constexpr int kExitRegression = 1;
constexpr int kExitUsage = 2;

myrtus::util::StatusOr<Json> LoadArtifact(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return myrtus::util::Status::NotFound("cannot open " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  auto parsed = Json::Parse(buf.str());
  if (!parsed.ok()) return parsed.status();
  if (!parsed->is_object() || !parsed->has("metrics")) {
    return myrtus::util::Status::InvalidArgument(
        path + " is not a bench artifact (no \"metrics\" object)");
  }
  return parsed;
}

int Usage() {
  std::fprintf(stderr,
               "usage: benchdiff BASELINE.json CANDIDATE.json"
               " [--threshold=PCT] [--metric=NAME=PCT]...\n");
  return kExitUsage;
}

}  // namespace

int main(int argc, char** argv) {
  std::string base_path;
  std::string cand_path;
  double default_threshold = 10.0;
  std::map<std::string, double> per_metric;

  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    if (arg.rfind("--threshold=", 0) == 0) {
      default_threshold =
          std::strtod(arg.c_str() + std::strlen("--threshold="), nullptr);
    } else if (arg.rfind("--metric=", 0) == 0) {
      const std::string spec = arg.substr(std::strlen("--metric="));
      const std::size_t eq = spec.rfind('=');
      if (eq == std::string::npos || eq == 0) return Usage();
      per_metric[spec.substr(0, eq)] =
          std::strtod(spec.c_str() + eq + 1, nullptr);
    } else if (base_path.empty()) {
      base_path = arg;
    } else if (cand_path.empty()) {
      cand_path = arg;
    } else {
      return Usage();
    }
  }
  if (base_path.empty() || cand_path.empty()) return Usage();

  const auto base = LoadArtifact(base_path);
  const auto cand = LoadArtifact(cand_path);
  if (!base.ok() || !cand.ok()) {
    std::fprintf(stderr, "benchdiff: %s\n",
                 (!base.ok() ? base.status() : cand.status()).ToString().c_str());
    return kExitUsage;
  }
  const std::int64_t base_schema = base->at("schema_version").as_int(-1);
  const std::int64_t cand_schema = cand->at("schema_version").as_int(-1);
  if (base_schema != cand_schema) {
    std::fprintf(stderr,
                 "benchdiff: schema_version mismatch (%lld vs %lld)\n",
                 static_cast<long long>(base_schema),
                 static_cast<long long>(cand_schema));
    return kExitUsage;
  }

  std::printf("benchdiff %s (%s) -> %s (%s)\n", base_path.c_str(),
              base->at("git_sha").as_string().c_str(), cand_path.c_str(),
              cand->at("git_sha").as_string().c_str());
  std::printf("%-34s | %12s | %12s | %9s | %s\n", "metric", "baseline",
              "candidate", "delta %", "verdict");

  int regressions = 0;
  for (const auto& [name, row] : base->at("metrics").fields()) {
    if (!row.at("gate").as_bool(true)) continue;
    const double base_value = row.at("value").as_double();
    const bool higher_is_better = row.at("higher_is_better").as_bool(false);
    const Json& cand_row = cand->at("metrics").at(name);
    if (cand_row.is_null()) {
      std::printf("%-34s | %12.4g | %12s | %9s | MISSING\n", name.c_str(),
                  base_value, "-", "-");
      ++regressions;
      continue;
    }
    const double cand_value = cand_row.at("value").as_double();
    // Delta in the "bad" direction: positive means the candidate is worse.
    const double denom = std::max(std::fabs(base_value), 1e-9);
    const double delta_pct = (higher_is_better ? base_value - cand_value
                                               : cand_value - base_value) /
                             denom * 100.0;
    const auto it = per_metric.find(name);
    const double threshold = it != per_metric.end() ? it->second
                                                    : default_threshold;
    const bool regressed = delta_pct > threshold;
    if (regressed) ++regressions;
    std::printf("%-34s | %12.4g | %12.4g | %+9.2f | %s\n", name.c_str(),
                base_value, cand_value,
                higher_is_better ? -delta_pct : delta_pct,
                regressed ? "REGRESSED" : "ok");
  }
  for (const auto& [name, row] : cand->at("metrics").fields()) {
    if (row.at("gate").as_bool(true) && base->at("metrics").at(name).is_null()) {
      std::printf("%-34s | %12s | %12.4g | %9s | new\n", name.c_str(), "-",
                  row.at("value").as_double(), "-");
    }
  }

  if (regressions > 0) {
    std::printf("%d gated metric(s) regressed past threshold\n", regressions);
    return kExitRegression;
  }
  std::printf("no regressions\n");
  return kExitOk;
}
