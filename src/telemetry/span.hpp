// Causal spans for the Monitoring & Observability building block (§III):
// every cross-layer action (a contract-net negotiation, an RPC hop, a
// scheduler pass) records a span with trace/span/parent ids so one workload
// placement is visible as a single tree across the continuum. Timestamps are
// simulation-clock nanoseconds supplied by the owning engine — wall-clock
// never leaks into a trace, keeping exports bit-reproducible per seed.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/json.hpp"

namespace myrtus::telemetry {

/// Propagatable identity of one span. Serialized into message headers
/// (`tctx`) so causality survives network hops.
struct SpanContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;

  [[nodiscard]] bool valid() const { return span_id != 0; }
  [[nodiscard]] util::Json ToJson() const;
  /// Invalid context when `j` is not a well-formed header.
  static SpanContext FromJson(const util::Json& j);
};

/// One finished (or in-flight) span.
struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  // 0 = root
  std::string name;
  std::string category;  // "net", "mirto", "sched", "kb", "continuum"
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;
  std::vector<std::pair<std::string, std::string>> attrs;
};

/// Span factory + sink. Single-threaded by design, like the simulator it
/// observes. Ids are dense counters, so two runs with the same seed produce
/// identical traces.
class Tracer {
 public:
  /// Installs the time source (typically `[&engine]{ return engine.Now().ns; }`)
  /// and returns an installation token. The engine behind the most recently
  /// installed clock must outlive any span started without an explicit
  /// timestamp; Clear() uninstalls it, and an installer whose clock closes
  /// over its own lifetime must call reset_clock(token) before that lifetime
  /// ends (see ~Network).
  std::int64_t set_clock(std::function<std::int64_t()> now_ns) {
    clock_ = std::move(now_ns);
    return ++clock_generation_;
  }
  /// Uninstalls the clock iff `token` identifies the current installation —
  /// a stale token (someone installed over us) is a no-op, preserving
  /// last-constructed-wins. Falls back to the epoch clock (NowNs() == 0).
  void reset_clock(std::int64_t token) {
    if (token == clock_generation_) clock_ = nullptr;
  }
  [[nodiscard]] std::int64_t NowNs() const { return clock_ ? clock_() : 0; }

  /// Starts a span. An invalid `parent` starts a new trace.
  SpanContext StartSpan(std::string name, std::string category,
                        SpanContext parent, std::int64_t start_ns);
  /// Convenience: parent = current(), start = NowNs().
  SpanContext StartSpan(std::string name, std::string category = "");

  void SetAttribute(const SpanContext& ctx, std::string key, std::string value);
  void EndSpan(const SpanContext& ctx, std::int64_t end_ns);
  void EndSpan(const SpanContext& ctx) { EndSpan(ctx, NowNs()); }

  /// --- Implicit context (the "current span" stack) ----------------------
  void PushContext(SpanContext ctx) { stack_.push_back(ctx); }
  void PopContext() { if (!stack_.empty()) stack_.pop_back(); }
  [[nodiscard]] SpanContext current() const {
    return stack_.empty() ? SpanContext{} : stack_.back();
  }

  [[nodiscard]] const std::vector<SpanRecord>& finished() const { return finished_; }
  [[nodiscard]] std::size_t open_spans() const { return open_.size(); }
  /// Spans discarded after the `max_finished` cap was reached.
  [[nodiscard]] std::uint64_t dropped_spans() const { return dropped_; }
  void set_max_finished(std::size_t cap) { max_finished_ = cap; }

  /// Observer invoked for every span as it ends — even spans the
  /// `max_finished` cap subsequently discards, so a bounded consumer (the
  /// flight recorder) still sees the full stream. Survives Clear(): the sink
  /// is wiring, not data.
  void set_span_sink(std::function<void(const SpanRecord&)> sink) {
    span_sink_ = std::move(sink);
  }

  /// Drops all spans, the context stack, and the installed clock; resets ids
  /// and restores the default `max_finished` cap. The span sink stays.
  void Clear();

 private:
  static constexpr std::size_t kDefaultMaxFinished = 1u << 18;

  std::function<std::int64_t()> clock_;
  std::int64_t clock_generation_ = 0;
  std::function<void(const SpanRecord&)> span_sink_;
  std::unordered_map<std::uint64_t, SpanRecord> open_;  // by span_id
  std::vector<SpanRecord> finished_;
  std::vector<SpanContext> stack_;
  std::uint64_t next_trace_id_ = 1;
  std::uint64_t next_span_id_ = 1;
  std::size_t max_finished_ = kDefaultMaxFinished;
  std::uint64_t dropped_ = 0;
};

/// RAII: pushes an existing context for the current scope (used to restore
/// causality inside async completion callbacks).
class ContextGuard {
 public:
  ContextGuard(Tracer& tracer, SpanContext ctx) : tracer_(&tracer) {
    tracer_->PushContext(ctx);
  }
  ~ContextGuard() { tracer_->PopContext(); }
  ContextGuard(const ContextGuard&) = delete;
  ContextGuard& operator=(const ContextGuard&) = delete;

 private:
  Tracer* tracer_;
};

}  // namespace myrtus::telemetry
