#include "telemetry/telemetry.hpp"

namespace myrtus::telemetry {

Telemetry& Global() {
  static Telemetry instance;
  return instance;
}

void ResetGlobal() {
  Global().tracer.Clear();
  Global().metrics.Clear();
}

}  // namespace myrtus::telemetry
