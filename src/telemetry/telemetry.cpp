#include "telemetry/telemetry.hpp"

#include "util/parallel.hpp"

namespace myrtus::telemetry {

Telemetry& Global() {
  static Telemetry& instance = []() -> Telemetry& {
    static Telemetry t;
    // Every finished span — including ones the tracer's max_finished cap
    // later discards — streams into the bounded flight ring.
    t.tracer.set_span_sink(
        [](const SpanRecord& span) { t.recorder.RecordSpan(span); });
    return t;
  }();
  return instance;
}

void ResetGlobal() {
  Global().tracer.Clear();
  Global().metrics.Clear();
  Global().recorder.Clear();
}

void EmitParallelPoolStats() {
  if (!Enabled()) return;
  const util::ParallelPoolStats stats = util::ParallelStats();
  MetricsRegistry& metrics = Global().metrics;
  metrics.Set("myrtus_parallel_regions_total",
              static_cast<double>(stats.regions));
  metrics.Set("myrtus_parallel_pooled_regions_total",
              static_cast<double>(stats.pooled_regions));
  metrics.Set("myrtus_parallel_shards_total",
              static_cast<double>(stats.shards));
  metrics.Set("myrtus_parallel_items_total",
              static_cast<double>(stats.items));
  metrics.Set("myrtus_parallel_workers", static_cast<double>(stats.workers));
  metrics.Set("myrtus_parallel_threads_started",
              static_cast<double>(stats.threads_started));
}

}  // namespace myrtus::telemetry
