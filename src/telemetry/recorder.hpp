// Flight recorder: an always-on bounded ring buffer of the most recent
// telemetry records (finished spans, counter samples, discrete events) — the
// "what happened in the seconds right before it broke" artifact. Chaos fault
// injection, Raft leadership loss, and SLO burn-rate breaches all trigger a
// dump, so post-mortems of a simulated incident come for free instead of
// requiring the full (unbounded) tracer history.
//
// Everything is simulation-time stamped and sequence-numbered: the ring is
// fed only from the single-threaded simulator side of the fence (the
// fork-join pool never emits telemetry), so two runs with the same seed —
// at ANY SetParallelWorkers count — produce byte-identical dumps. The
// recorder's steady-state cost is one ring-slot assignment per record
// (slots are reused, so string capacity amortizes away); when telemetry is
// disabled nothing reaches it at all.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/span.hpp"
#include "util/status.hpp"

namespace myrtus::telemetry {

enum class FlightRecordKind : std::uint8_t { kSpan, kCounter, kEvent };
std::string_view FlightRecordKindName(FlightRecordKind kind);

/// One entry of the ring. For spans, `at_ns` is the span end and `value` its
/// duration in nanoseconds; for counters, `value` is the sample; for events,
/// `value` is unused (0).
struct FlightRecord {
  std::int64_t at_ns = 0;
  std::uint64_t seq = 0;  // global record sequence, breaks at_ns ties
  FlightRecordKind kind = FlightRecordKind::kEvent;
  std::string name;    // span name / metric name / event name
  std::string detail;  // span category / labels / free-form detail
  double value = 0.0;
  std::uint64_t trace_id = 0;  // spans only
  std::uint64_t span_id = 0;   // spans only
};

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  /// Resizes the ring. Existing records are dropped (the ring restarts
  /// empty); sequence and trigger counters are preserved.
  void set_capacity(std::size_t capacity);
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Records currently held (<= capacity()).
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t total_recorded() const { return total_; }
  /// Records pushed out of the ring by newer ones.
  [[nodiscard]] std::uint64_t overwritten() const;

  /// Gate for overhead ablations (BM_MapeIterationTelemetry's recorder
  /// row). On by default — the recorder is meant to be always armed.
  void set_enabled(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void RecordSpan(const SpanRecord& span);
  void RecordCounter(std::string_view name, double value, std::int64_t at_ns);
  void RecordEvent(std::string_view name, std::string_view detail,
                   std::int64_t at_ns);

  /// Copy of the live records in (at_ns, seq) order. Spans enter the ring at
  /// their end time and the sim clock is monotonic, so this is a stable sort
  /// of an almost-sorted sequence.
  [[nodiscard]] std::vector<FlightRecord> Snapshot() const;

  /// Canonical JSON dump (schema "myrtus.flight.v1"): ring metadata plus the
  /// snapshot records. Byte-identical for identical record sequences.
  [[nodiscard]] std::string DumpJson() const;
  /// Chrome trace_event rendering of the snapshot: spans as complete ("X")
  /// events, events as instants ("i"), counters as counter ("C") samples.
  [[nodiscard]] std::string DumpChromeTrace() const;
  util::Status WriteJson(const std::string& path) const;
  util::Status WriteChromeTrace(const std::string& path) const;

  /// Arms automatic dumps: every Trigger() writes
  /// `<prefix><trigger-ordinal>_<sanitized-reason>.json`. Pass an empty
  /// prefix to disarm (triggers are still counted and recorded as events).
  void ArmDump(std::string path_prefix) { dump_prefix_ = std::move(path_prefix); }
  [[nodiscard]] const std::string& dump_prefix() const { return dump_prefix_; }

  /// Fault boundary hook (chaos injection, Raft leadership loss, SLO
  /// breach): records a "flight.trigger" event, bumps the trigger counter,
  /// and — when armed — dumps the ring as JSON. Returns the written path
  /// (empty when disarmed or the recorder is disabled).
  std::string Trigger(std::string_view reason, std::int64_t at_ns);

  [[nodiscard]] std::uint64_t triggers() const { return triggers_; }
  [[nodiscard]] const std::string& last_trigger() const { return last_trigger_; }

  /// Drops all records and resets counters, the enabled flag, the capacity,
  /// and the dump arming — the ResetGlobal() companion.
  void Clear();

 private:
  FlightRecord& NextSlot();

  std::vector<FlightRecord> ring_;
  std::size_t capacity_ = kDefaultCapacity;
  std::size_t head_ = 0;  // next slot to (over)write once the ring is full
  std::uint64_t total_ = 0;
  std::uint64_t seq_ = 0;
  bool enabled_ = true;
  std::string dump_prefix_;
  std::uint64_t triggers_ = 0;
  std::string last_trigger_;
};

}  // namespace myrtus::telemetry
