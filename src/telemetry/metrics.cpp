#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace myrtus::telemetry {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  counts_.assign(bounds_.size() + 1, 0);
}

std::vector<double> Histogram::ExponentialBounds(double start, double factor,
                                                 std::size_t count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  double edge = start;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(edge);
    edge *= factor;
  }
  return bounds;
}

std::vector<double> Histogram::LinearBounds(double start, double width,
                                            std::size_t count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  for (std::size_t i = 1; i <= count; ++i) {
    bounds.push_back(start + width * static_cast<double>(i));
  }
  return bounds;
}

const std::vector<double>& Histogram::DefaultLatencyBoundsMs() {
  static const std::vector<double> kBounds = ExponentialBounds(0.001, 2.0, 26);
  return kBounds;
}

void Histogram::Observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  if (total_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++total_;
  sum_ += value;
}

double Histogram::Quantile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += counts_[i];
    if (static_cast<double>(cumulative) < target) continue;
    // Interpolate within bucket i: [lo, hi).
    const double lo = i == 0 ? min_ : bounds_[i - 1];
    const double hi = i < bounds_.size() ? bounds_[i] : max_;
    const double frac =
        (target - before) / static_cast<double>(counts_[i]);
    return std::clamp(lo + frac * (hi - lo), min_, max_);
  }
  return max_;
}

std::string_view MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

std::string MetricsRegistry::EncodeLabels(const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string out;
  for (const auto& [k, v] : sorted) {
    if (!out.empty()) out += ',';
    out += k;
    out += "=\"";
    out += v;
    out += '"';
  }
  return out;
}

MetricsRegistry::Series& MetricsRegistry::Upsert(const std::string& name,
                                                 MetricKind kind,
                                                 const Labels& labels) {
  Family& family = families_[name];
  if (family.series.empty()) family.kind = kind;  // first writer fixes kind
  const std::string key = EncodeLabels(labels);
  const auto it = family.series.find(key);
  if (it != family.series.end()) return it->second;
  Series series;
  series.labels = labels;
  std::sort(series.labels.begin(), series.labels.end());
  return family.series.emplace(key, std::move(series)).first->second;
}

void MetricsRegistry::Add(const std::string& name, double delta,
                          const Labels& labels) {
  Upsert(name, MetricKind::kCounter, labels).value += delta;
}

void MetricsRegistry::Set(const std::string& name, double value,
                          const Labels& labels) {
  Upsert(name, MetricKind::kGauge, labels).value = value;
}

void MetricsRegistry::Observe(const std::string& name, double value,
                              const Labels& labels,
                              const std::vector<double>& bounds) {
  Series& series = Upsert(name, MetricKind::kHistogram, labels);
  if (series.histogram == nullptr) {
    series.histogram = std::make_unique<Histogram>(
        bounds.empty() ? Histogram::DefaultLatencyBoundsMs() : bounds);
  }
  series.histogram->Observe(value);
}

double MetricsRegistry::Value(const std::string& name,
                              const Labels& labels) const {
  const auto fit = families_.find(name);
  if (fit == families_.end()) return 0.0;
  const auto sit = fit->second.series.find(EncodeLabels(labels));
  return sit == fit->second.series.end() ? 0.0 : sit->second.value;
}

const Histogram* MetricsRegistry::FindHistogram(const std::string& name,
                                                const Labels& labels) const {
  const auto fit = families_.find(name);
  if (fit == families_.end()) return nullptr;
  const auto sit = fit->second.series.find(EncodeLabels(labels));
  return sit == fit->second.series.end() ? nullptr
                                         : sit->second.histogram.get();
}

}  // namespace myrtus::telemetry
