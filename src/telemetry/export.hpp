// Exporters: Chrome trace_event JSON (loadable in about:tracing / Perfetto's
// legacy importer) for spans, and Prometheus text exposition for metrics.
// Both stamp simulated time, so a trace of a 30 s experiment loads as a 30 s
// timeline regardless of how long the host took to simulate it.
#pragma once

#include <string>

#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"
#include "util/status.hpp"

namespace myrtus::telemetry {

/// Finished spans as `{"traceEvents": [...]}` complete ("ph":"X") events.
/// Timestamps/durations are sim-time microseconds; each trace renders as its
/// own thread row (tid = trace id), so one negotiation reads as one lane.
[[nodiscard]] std::string ChromeTraceJson(const Tracer& tracer);
util::Status WriteChromeTrace(const Tracer& tracer, const std::string& path);

/// Prometheus text exposition format (families sorted by name, then labels).
[[nodiscard]] std::string PrometheusText(const MetricsRegistry& registry);
util::Status WritePrometheusText(const MetricsRegistry& registry,
                                 const std::string& path);

}  // namespace myrtus::telemetry
