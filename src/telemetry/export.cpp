#include "telemetry/export.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "util/json.hpp"

namespace myrtus::telemetry {
namespace {

/// Prometheus sample rendering: integers without a decimal point, everything
/// else in shortest round-trippable %g form.
std::string FormatSample(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, static_cast<std::int64_t>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

std::string FormatBound(double v) { return FormatSample(v); }

util::Status WriteFile(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return util::Status::Internal("cannot open " + path + " for writing");
  }
  const std::size_t written = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  if (written != body.size()) {
    return util::Status::DataLoss("short write to " + path);
  }
  return util::Status::Ok();
}

}  // namespace

std::string ChromeTraceJson(const Tracer& tracer) {
  util::Json events = util::Json::MakeArray();
  events.Append(util::Json::MakeObject()
                    .Set("name", "process_name")
                    .Set("ph", "M")
                    .Set("pid", 1)
                    .Set("args", util::Json::MakeObject().Set("name", "myrtus-sim")));
  for (const SpanRecord& span : tracer.finished()) {
    util::Json args = util::Json::MakeObject()
                          .Set("span_id", static_cast<std::int64_t>(span.span_id))
                          .Set("parent_id",
                               static_cast<std::int64_t>(span.parent_id));
    for (const auto& [k, v] : span.attrs) args.Set(k, v);
    events.Append(
        util::Json::MakeObject()
            .Set("name", span.name)
            .Set("cat", span.category.empty() ? std::string("span") : span.category)
            .Set("ph", "X")
            .Set("ts", static_cast<double>(span.start_ns) * 1e-3)
            .Set("dur", static_cast<double>(span.end_ns - span.start_ns) * 1e-3)
            .Set("pid", 1)
            .Set("tid", static_cast<std::int64_t>(span.trace_id))
            .Set("args", std::move(args)));
  }
  return util::Json::MakeObject()
      .Set("traceEvents", std::move(events))
      .Set("displayTimeUnit", "ms")
      .Dump();
}

util::Status WriteChromeTrace(const Tracer& tracer, const std::string& path) {
  return WriteFile(path, ChromeTraceJson(tracer));
}

std::string PrometheusText(const MetricsRegistry& registry) {
  std::string out;
  for (const auto& [name, family] : registry.families()) {
    out += "# TYPE " + name + " " + std::string(MetricKindName(family.kind)) +
           "\n";
    for (const auto& [encoded, series] : family.series) {
      if (family.kind != MetricKind::kHistogram) {
        out += name;
        if (!encoded.empty()) out += "{" + encoded + "}";
        out += " " + FormatSample(series.value) + "\n";
        continue;
      }
      if (series.histogram == nullptr) continue;
      const Histogram& h = *series.histogram;
      const std::string sep = encoded.empty() ? "" : ",";
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < h.bounds().size(); ++i) {
        cumulative += h.bucket_counts()[i];
        out += name + "_bucket{" + encoded + sep + "le=\"" +
               FormatBound(h.bounds()[i]) + "\"} " +
               FormatSample(static_cast<double>(cumulative)) + "\n";
      }
      cumulative += h.bucket_counts().back();
      out += name + "_bucket{" + encoded + sep + "le=\"+Inf\"} " +
             FormatSample(static_cast<double>(cumulative)) + "\n";
      out += name + "_sum";
      if (!encoded.empty()) out += "{" + encoded + "}";
      out += " " + FormatSample(h.sum()) + "\n";
      out += name + "_count";
      if (!encoded.empty()) out += "{" + encoded + "}";
      out += " " + FormatSample(static_cast<double>(h.count())) + "\n";
    }
  }
  return out;
}

util::Status WritePrometheusText(const MetricsRegistry& registry,
                                 const std::string& path) {
  return WriteFile(path, PrometheusText(registry));
}

}  // namespace myrtus::telemetry
