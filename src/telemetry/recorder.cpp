#include "telemetry/recorder.hpp"

#include <algorithm>
#include <cstdio>

#include "util/json.hpp"

namespace myrtus::telemetry {
namespace {

util::Status WriteFile(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return util::Status::Internal("cannot open " + path + " for writing");
  }
  const std::size_t written = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  if (written != body.size()) {
    return util::Status::DataLoss("short write to " + path);
  }
  return util::Status::Ok();
}

/// Filename-safe rendering of a trigger reason ("chaos.inject:link-a" ->
/// "chaos.inject_link-a").
std::string SanitizeReason(std::string_view reason) {
  std::string out;
  out.reserve(reason.size());
  for (const char c : reason) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '.';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

std::string_view FlightRecordKindName(FlightRecordKind kind) {
  switch (kind) {
    case FlightRecordKind::kSpan: return "span";
    case FlightRecordKind::kCounter: return "counter";
    case FlightRecordKind::kEvent: return "event";
  }
  return "event";
}

void FlightRecorder::set_capacity(std::size_t capacity) {
  capacity_ = std::max<std::size_t>(1, capacity);
  ring_.clear();
  ring_.shrink_to_fit();
  head_ = 0;
  total_ = 0;
}

std::size_t FlightRecorder::size() const { return ring_.size(); }

std::uint64_t FlightRecorder::overwritten() const {
  return total_ - static_cast<std::uint64_t>(ring_.size());
}

FlightRecord& FlightRecorder::NextSlot() {
  ++total_;
  if (ring_.size() < capacity_) {
    return ring_.emplace_back();
  }
  FlightRecord& slot = ring_[head_];
  head_ = (head_ + 1) % capacity_;
  return slot;
}

void FlightRecorder::RecordSpan(const SpanRecord& span) {
  if (!enabled_) return;
  FlightRecord& r = NextSlot();
  r.at_ns = span.end_ns;
  r.seq = seq_++;
  r.kind = FlightRecordKind::kSpan;
  r.name = span.name;
  r.detail = span.category;
  r.value = static_cast<double>(span.end_ns - span.start_ns);
  r.trace_id = span.trace_id;
  r.span_id = span.span_id;
}

void FlightRecorder::RecordCounter(std::string_view name, double value,
                                   std::int64_t at_ns) {
  if (!enabled_) return;
  FlightRecord& r = NextSlot();
  r.at_ns = at_ns;
  r.seq = seq_++;
  r.kind = FlightRecordKind::kCounter;
  r.name.assign(name);
  r.detail.clear();
  r.value = value;
  r.trace_id = 0;
  r.span_id = 0;
}

void FlightRecorder::RecordEvent(std::string_view name, std::string_view detail,
                                 std::int64_t at_ns) {
  if (!enabled_) return;
  FlightRecord& r = NextSlot();
  r.at_ns = at_ns;
  r.seq = seq_++;
  r.kind = FlightRecordKind::kEvent;
  r.name.assign(name);
  r.detail.assign(detail);
  r.value = 0.0;
  r.trace_id = 0;
  r.span_id = 0;
}

std::vector<FlightRecord> FlightRecorder::Snapshot() const {
  std::vector<FlightRecord> out;
  out.reserve(ring_.size());
  // Oldest-first ring order: once full, head_ points at the oldest slot.
  if (ring_.size() < capacity_) {
    out.assign(ring_.begin(), ring_.end());
  } else {
    out.assign(ring_.begin() + static_cast<std::ptrdiff_t>(head_), ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(head_));
  }
  // Spans are recorded at end time while their start may predate neighboring
  // records; (at_ns, seq) gives one canonical total order for dumps.
  std::stable_sort(out.begin(), out.end(),
                   [](const FlightRecord& a, const FlightRecord& b) {
                     if (a.at_ns != b.at_ns) return a.at_ns < b.at_ns;
                     return a.seq < b.seq;
                   });
  return out;
}

std::string FlightRecorder::DumpJson() const {
  util::Json records = util::Json::MakeArray();
  for (const FlightRecord& r : Snapshot()) {
    util::Json rec = util::Json::MakeObject()
                         .Set("at_ns", r.at_ns)
                         .Set("seq", static_cast<std::int64_t>(r.seq))
                         .Set("kind", std::string(FlightRecordKindName(r.kind)))
                         .Set("name", r.name)
                         .Set("value", r.value);
    if (!r.detail.empty()) rec.Set("detail", r.detail);
    if (r.kind == FlightRecordKind::kSpan) {
      rec.Set("trace_id", static_cast<std::int64_t>(r.trace_id))
          .Set("span_id", static_cast<std::int64_t>(r.span_id));
    }
    records.Append(std::move(rec));
  }
  return util::Json::MakeObject()
      .Set("schema", "myrtus.flight.v1")
      .Set("capacity", static_cast<std::int64_t>(capacity_))
      .Set("total_recorded", static_cast<std::int64_t>(total_))
      .Set("overwritten", static_cast<std::int64_t>(overwritten()))
      .Set("triggers", static_cast<std::int64_t>(triggers_))
      .Set("last_trigger", last_trigger_)
      .Set("records", std::move(records))
      .Dump();
}

std::string FlightRecorder::DumpChromeTrace() const {
  util::Json events = util::Json::MakeArray();
  events.Append(
      util::Json::MakeObject()
          .Set("name", "process_name")
          .Set("ph", "M")
          .Set("pid", 1)
          .Set("args", util::Json::MakeObject().Set("name", "myrtus-flight")));
  for (const FlightRecord& r : Snapshot()) {
    switch (r.kind) {
      case FlightRecordKind::kSpan:
        events.Append(
            util::Json::MakeObject()
                .Set("name", r.name)
                .Set("cat", r.detail.empty() ? std::string("span") : r.detail)
                .Set("ph", "X")
                .Set("ts", (static_cast<double>(r.at_ns) - r.value) * 1e-3)
                .Set("dur", r.value * 1e-3)
                .Set("pid", 1)
                .Set("tid", static_cast<std::int64_t>(r.trace_id)));
        break;
      case FlightRecordKind::kCounter:
        events.Append(
            util::Json::MakeObject()
                .Set("name", r.name)
                .Set("ph", "C")
                .Set("ts", static_cast<double>(r.at_ns) * 1e-3)
                .Set("pid", 1)
                .Set("args", util::Json::MakeObject().Set("value", r.value)));
        break;
      case FlightRecordKind::kEvent:
        events.Append(
            util::Json::MakeObject()
                .Set("name", r.detail.empty() ? r.name : r.name + ":" + r.detail)
                .Set("cat", "flight")
                .Set("ph", "i")
                .Set("s", "g")
                .Set("ts", static_cast<double>(r.at_ns) * 1e-3)
                .Set("pid", 1)
                .Set("tid", 0));
        break;
    }
  }
  return util::Json::MakeObject()
      .Set("traceEvents", std::move(events))
      .Set("displayTimeUnit", "ms")
      .Dump();
}

util::Status FlightRecorder::WriteJson(const std::string& path) const {
  return WriteFile(path, DumpJson());
}

util::Status FlightRecorder::WriteChromeTrace(const std::string& path) const {
  return WriteFile(path, DumpChromeTrace());
}

std::string FlightRecorder::Trigger(std::string_view reason,
                                    std::int64_t at_ns) {
  if (!enabled_) return "";
  ++triggers_;
  last_trigger_.assign(reason);
  RecordEvent("flight.trigger", reason, at_ns);
  if (dump_prefix_.empty()) return "";
  const std::string path = dump_prefix_ + std::to_string(triggers_) + "_" +
                           SanitizeReason(reason) + ".json";
  // LINT: discard(a failed trigger dump must never abort the experiment that
  // tripped it; the trigger counter still records that it fired)
  (void)WriteJson(path);
  return path;
}

void FlightRecorder::Clear() {
  ring_.clear();
  ring_.shrink_to_fit();
  capacity_ = kDefaultCapacity;
  head_ = 0;
  total_ = 0;
  seq_ = 0;
  enabled_ = true;
  dump_prefix_.clear();
  triggers_ = 0;
  last_trigger_.clear();
}

}  // namespace myrtus::telemetry
