#include "telemetry/span.hpp"

namespace myrtus::telemetry {

util::Json SpanContext::ToJson() const {
  return util::Json::MakeObject()
      .Set("t", static_cast<std::int64_t>(trace_id))
      .Set("s", static_cast<std::int64_t>(span_id));
}

SpanContext SpanContext::FromJson(const util::Json& j) {
  SpanContext ctx;
  if (!j.is_object()) return ctx;
  ctx.trace_id = static_cast<std::uint64_t>(j.at("t").as_int());
  ctx.span_id = static_cast<std::uint64_t>(j.at("s").as_int());
  return ctx;
}

SpanContext Tracer::StartSpan(std::string name, std::string category,
                              SpanContext parent, std::int64_t start_ns) {
  SpanRecord record;
  record.span_id = next_span_id_++;
  record.trace_id = parent.valid() ? parent.trace_id : next_trace_id_++;
  record.parent_id = parent.valid() ? parent.span_id : 0;
  record.name = std::move(name);
  record.category = std::move(category);
  record.start_ns = start_ns;
  const SpanContext ctx{record.trace_id, record.span_id};
  open_.emplace(record.span_id, std::move(record));
  return ctx;
}

SpanContext Tracer::StartSpan(std::string name, std::string category) {
  return StartSpan(std::move(name), std::move(category), current(), NowNs());
}

void Tracer::SetAttribute(const SpanContext& ctx, std::string key,
                          std::string value) {
  const auto it = open_.find(ctx.span_id);
  if (it == open_.end()) return;
  it->second.attrs.emplace_back(std::move(key), std::move(value));
}

void Tracer::EndSpan(const SpanContext& ctx, std::int64_t end_ns) {
  const auto it = open_.find(ctx.span_id);
  if (it == open_.end()) return;  // already ended or cleared
  it->second.end_ns = end_ns;
  if (span_sink_) span_sink_(it->second);
  if (finished_.size() < max_finished_) {
    finished_.push_back(std::move(it->second));
  } else {
    ++dropped_;
  }
  open_.erase(it);
}

void Tracer::Clear() {
  clock_ = nullptr;
  open_.clear();
  finished_.clear();
  stack_.clear();
  next_trace_id_ = 1;
  next_span_id_ = 1;
  max_finished_ = kDefaultMaxFinished;
  dropped_ = 0;
}

}  // namespace myrtus::telemetry
