// Process-wide telemetry facade. Instrumentation across the continuum
// (transport RPCs, MIRTO negotiation, scheduler passes, Raft, monitoring)
// writes to one global Tracer + MetricsRegistry, guarded by a single enabled
// flag: when telemetry is off, every instrumentation site reduces to one
// predictable branch, so the disabled path is effectively free (quantified by
// bench_fig3_mirto_loop's overhead table).
//
// The global is deliberate: the simulator is single-threaded and telemetry
// must cross layers whose constructors predate this subsystem. Components
// that own a sim::Engine install it as the tracer clock; tests call
// ResetGlobal() between worlds to drop spans, metrics, and the clock.
#pragma once

#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"

namespace myrtus::telemetry {

struct Telemetry {
  Tracer tracer;
  MetricsRegistry metrics;
};

/// The process-wide sink.
Telemetry& Global();

namespace internal {
inline bool g_enabled = false;
}  // namespace internal

/// Fast check every instrumentation site performs first. Off by default.
inline bool Enabled() { return internal::g_enabled; }
inline void SetEnabled(bool on) { internal::g_enabled = on; }

/// Clears the global tracer (spans, context stack, clock) and all metrics.
/// Does not touch the enabled flag.
void ResetGlobal();

/// Snapshots util::ParallelStats() into the metrics registry (gauges under
/// myrtus_parallel_*). util is the bottom layer and cannot see telemetry, so
/// this bridge lives here; callers sample it at natural checkpoints (the
/// MIRTO loop does once per MAPE iteration). No-op when telemetry is off.
void EmitParallelPoolStats();

/// RAII span on the global tracer: no-op when telemetry is disabled,
/// otherwise starts a span as a child of the current context, makes it
/// current, and ends it at scope exit. The workhorse for synchronous
/// instrumentation (scheduler passes, MAPE phases, monitor sampling).
class ScopedSpan {
 public:
  ScopedSpan(std::string name, std::string category) {
    if (!Enabled()) return;
    tracer_ = &Global().tracer;
    ctx_ = tracer_->StartSpan(std::move(name), std::move(category));
    tracer_->PushContext(ctx_);
  }
  ~ScopedSpan() {
    if (tracer_ == nullptr) return;
    tracer_->PopContext();
    tracer_->EndSpan(ctx_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void SetAttribute(std::string key, std::string value) {
    if (tracer_ != nullptr) {
      tracer_->SetAttribute(ctx_, std::move(key), std::move(value));
    }
  }
  [[nodiscard]] const SpanContext& context() const { return ctx_; }

 private:
  Tracer* tracer_ = nullptr;
  SpanContext ctx_;
};

}  // namespace myrtus::telemetry
