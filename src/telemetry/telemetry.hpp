// Process-wide telemetry facade. Instrumentation across the continuum
// (transport RPCs, MIRTO negotiation, scheduler passes, Raft, monitoring)
// writes to one global Tracer + MetricsRegistry, guarded by a single enabled
// flag: when telemetry is off, every instrumentation site reduces to one
// predictable branch, so the disabled path is effectively free (quantified by
// bench_fig3_mirto_loop's overhead table).
//
// The global is deliberate: the simulator is single-threaded and telemetry
// must cross layers whose constructors predate this subsystem. Components
// that own a sim::Engine install it as the tracer clock; tests call
// ResetGlobal() between worlds to drop spans, metrics, and the clock.
#pragma once

#include <string_view>
#include <utility>

#include "telemetry/metrics.hpp"
#include "telemetry/recorder.hpp"
#include "telemetry/span.hpp"

namespace myrtus::telemetry {

struct Telemetry {
  Tracer tracer;
  MetricsRegistry metrics;
  /// Bounded ring of recent spans/counters/events (see recorder.hpp). The
  /// tracer's span sink feeds every finished span into it automatically.
  FlightRecorder recorder;
};

/// The process-wide sink.
Telemetry& Global();

namespace internal {
inline bool g_enabled = false;
}  // namespace internal

/// Fast check every instrumentation site performs first. Off by default.
inline bool Enabled() { return internal::g_enabled; }
inline void SetEnabled(bool on) { internal::g_enabled = on; }

/// Clears the global tracer (spans, context stack, clock), all metrics, and
/// the flight recorder. Does not touch the enabled flag.
void ResetGlobal();

/// Snapshots util::ParallelStats() into the metrics registry (gauges under
/// myrtus_parallel_*). util is the bottom layer and cannot see telemetry, so
/// this bridge lives here; callers sample it at natural checkpoints (the
/// MIRTO loop does once per MAPE iteration). No-op when telemetry is off.
void EmitParallelPoolStats();

/// RAII span on the global tracer: no-op when telemetry is disabled,
/// otherwise starts a span as a child of the current context, makes it
/// current, and ends it at scope exit. The workhorse for synchronous
/// instrumentation (scheduler passes, MAPE phases, monitor sampling).
class ScopedSpan {
 public:
  /// string_view parameters on purpose: when telemetry is disabled the
  /// owning std::strings are never materialized, so an instrumented hot path
  /// costs one branch — not two allocations — per scope.
  ScopedSpan(std::string_view name, std::string_view category) {
    if (!Enabled()) return;
    tracer_ = &Global().tracer;
    ctx_ = tracer_->StartSpan(std::string(name), std::string(category));
    tracer_->PushContext(ctx_);
  }
  ~ScopedSpan() {
    if (tracer_ == nullptr) return;
    tracer_->PopContext();
    tracer_->EndSpan(ctx_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Accepts any string-ish pair (literal, string_view, lvalue or rvalue
  /// std::string). Nothing is copied or allocated unless the span is live;
  /// rvalue std::strings are moved straight into the attribute.
  template <typename K, typename V>
  void SetAttribute(K&& key, V&& value) {
    if (tracer_ != nullptr) {
      tracer_->SetAttribute(ctx_, std::string(std::forward<K>(key)),
                            std::string(std::forward<V>(value)));
    }
  }
  [[nodiscard]] const SpanContext& context() const { return ctx_; }

 private:
  Tracer* tracer_ = nullptr;
  SpanContext ctx_;
};

}  // namespace myrtus::telemetry
