// Labeled counters/gauges and bucketed histograms with quantile estimation —
// the numeric half of the observability layer. Histograms are fixed-boundary
// (Prometheus-style cumulative export) with linear interpolation inside the
// winning bucket for p50/p95/p99, so memory stays O(buckets) regardless of
// sample count (unlike util::Samples, which keeps every value).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace myrtus::telemetry {

/// Label set for one series. Keys are sorted on insertion into the registry
/// so {a=1,b=2} and {b=2,a=1} address the same series.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Fixed-boundary histogram. `bounds` are ascending inclusive upper edges;
/// an implicit +Inf bucket catches the overflow.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  /// start, start*factor, start*factor^2, ... (log-bucketed latencies).
  static std::vector<double> ExponentialBounds(double start, double factor,
                                               std::size_t count);
  /// start+width, start+2*width, ... (fixed-boundary).
  static std::vector<double> LinearBounds(double start, double width,
                                          std::size_t count);
  /// Default latency bounds in milliseconds: 1 µs .. ~34 s, factor 2.
  static const std::vector<double>& DefaultLatencyBoundsMs();

  void Observe(double value);

  [[nodiscard]] std::uint64_t count() const { return total_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double observed_min() const { return total_ ? min_ : 0.0; }
  [[nodiscard]] double observed_max() const { return total_ ? max_ : 0.0; }
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts; size() == bounds().size() + 1 (last = overflow).
  [[nodiscard]] const std::vector<std::uint64_t>& bucket_counts() const {
    return counts_;
  }

  /// Quantile estimate, q in [0,1]; linear interpolation within the bucket,
  /// clamped to the observed [min, max]. 0 when empty.
  [[nodiscard]] double Quantile(double q) const;
  [[nodiscard]] double p50() const { return Quantile(0.50); }
  [[nodiscard]] double p95() const { return Quantile(0.95); }
  [[nodiscard]] double p99() const { return Quantile(0.99); }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };
std::string_view MetricKindName(MetricKind kind);

/// Registry of metric families. A family (one name) holds series keyed by
/// label set; the first writer fixes the family's kind.
class MetricsRegistry {
 public:
  struct Series {
    Labels labels;
    double value = 0.0;
    std::unique_ptr<Histogram> histogram;  // kHistogram only
  };
  struct Family {
    MetricKind kind = MetricKind::kCounter;
    std::map<std::string, Series> series;  // by encoded labels
  };

  /// Counter increment (creates the series at 0 first).
  void Add(const std::string& name, double delta = 1.0, const Labels& labels = {});
  /// Gauge set.
  void Set(const std::string& name, double value, const Labels& labels = {});
  /// Histogram observation. `bounds` seeds a new series (default latency
  /// bounds when empty) and is ignored for existing ones.
  void Observe(const std::string& name, double value, const Labels& labels = {},
               const std::vector<double>& bounds = {});

  /// Counter/gauge value; 0 when absent.
  [[nodiscard]] double Value(const std::string& name, const Labels& labels = {}) const;
  [[nodiscard]] const Histogram* FindHistogram(const std::string& name,
                                               const Labels& labels = {}) const;

  [[nodiscard]] const std::map<std::string, Family>& families() const {
    return families_;
  }
  void Clear() { families_.clear(); }

  /// `k1="v1",k2="v2"` with keys sorted — the series key and the Prometheus
  /// label rendering.
  static std::string EncodeLabels(const Labels& labels);

 private:
  Series& Upsert(const std::string& name, MetricKind kind, const Labels& labels);

  std::map<std::string, Family> families_;
};

}  // namespace myrtus::telemetry
