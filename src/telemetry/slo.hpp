// SLO self-monitoring: declarative latency/availability objectives evaluated
// with the multi-window burn-rate method (Google SRE workbook ch. 5). Each
// objective owns two rolling windows over (good, total) buckets — a fast
// window that reacts in seconds and a slow window that filters blips — and
// an alert fires only when BOTH windows burn error budget faster than the
// configured rate. Hysteresis on the clear side (burn must fall well below
// the threshold in both windows) keeps the alert from flapping at the
// boundary. All timestamps are simulation-clock nanoseconds, so burn-rate
// trajectories are byte-reproducible per seed.
//
// This is the closure of the MAPE-K Monitor phase: PR-1 telemetry *emits*
// observations, the SLO engine *consumes* them into alert state that the
// MIRTO Analyze step and the MonitoringService feed back into the knowledge
// base — the loop observes itself.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.hpp"

namespace myrtus::telemetry {

struct SloObjective {
  enum class Kind : std::uint8_t { kLatency, kAvailability };

  std::string name;
  Kind kind = Kind::kAvailability;
  /// Latency objectives: an observation is good iff value <= threshold.
  double latency_threshold_ms = 100.0;
  /// Fraction of observations that must be good (error budget = 1 - target).
  double target = 0.99;
  /// Rolling windows (sim time). Defaults suit simulated worlds where whole
  /// experiments span seconds, not weeks.
  std::int64_t fast_window_ns = 2'000'000'000;   // 2 s
  std::int64_t slow_window_ns = 10'000'000'000;  // 10 s
  /// Breach when burn rate >= threshold in BOTH windows. Burn rate 1.0 =
  /// consuming exactly the error budget; the classic page threshold is high
  /// multiples of it.
  double burn_rate_threshold = 4.0;
  /// Hysteresis: a breached objective clears only once both burn rates drop
  /// below threshold * clear_fraction.
  double clear_fraction = 0.5;
};

enum class SloState : std::uint8_t { kOk, kBreach };
std::string_view SloStateName(SloState state);

/// Live evaluation result of one objective.
struct SloStatus {
  SloState state = SloState::kOk;
  double fast_burn_rate = 0.0;
  double slow_burn_rate = 0.0;
  std::uint64_t observations = 0;  // lifetime
  std::uint64_t bad = 0;           // lifetime
  std::uint64_t breaches = 0;      // Ok -> Breach transitions
  std::int64_t last_transition_ns = 0;
};

class SloEngine {
 public:
  /// Fired on every state transition (breached == entering kBreach).
  using TransitionHandler = std::function<void(
      const std::string& name, const SloStatus& status, bool breached)>;

  /// INVALID_ARGUMENT on duplicate names, non-positive windows, a fast
  /// window at least as long as the slow one, or target outside (0, 1).
  [[nodiscard]] util::Status AddObjective(SloObjective objective);
  void set_transition_handler(TransitionHandler handler) {
    handler_ = std::move(handler);
  }

  /// Feeds one latency observation to a kLatency objective.
  void RecordLatencyMs(std::string_view name, double ms, std::int64_t now_ns);
  /// Feeds one success/failure observation to a kAvailability objective.
  void RecordAvailability(std::string_view name, bool ok, std::int64_t now_ns);

  /// Bulk paths for event-driven monitors: exactly equivalent to `ok_count`
  /// RecordAvailability(ok=true) plus `bad_count` (ok=false) calls at the
  /// same now_ns — observations commute within a bucket, so an incremental
  /// Monitor can fold its "N unchanged-up nodes" into one call and keep the
  /// availability math byte-identical to the full walk.
  void RecordAvailabilityBulk(std::string_view name, std::uint64_t ok_count,
                              std::uint64_t bad_count, std::int64_t now_ns);
  /// Same for pre-classified latency outcomes (good iff value was within the
  /// objective threshold).
  void RecordLatencyOutcomes(std::string_view name, std::uint64_t good_count,
                             std::uint64_t bad_count, std::int64_t now_ns);

  /// Recomputes burn rates and applies breach/clear transitions. When
  /// telemetry is enabled, publishes myrtus_slo_* metrics, records breach /
  /// clear events in the flight recorder, and fires a recorder dump trigger
  /// on every new breach.
  void Evaluate(std::int64_t now_ns);

  [[nodiscard]] const SloStatus* Find(std::string_view name) const;
  [[nodiscard]] const SloObjective* FindObjective(std::string_view name) const;
  /// Names of currently-breached objectives, sorted.
  [[nodiscard]] std::vector<std::string> Breached() const;
  [[nodiscard]] std::size_t objective_count() const { return slos_.size(); }
  [[nodiscard]] bool any_breached() const;

  void Clear() { slos_.clear(); }

 private:
  /// One window = deque of fixed-width buckets, evicted as time advances.
  struct Bucket {
    std::int64_t index = 0;  // at_ns / width
    std::uint64_t good = 0;
    std::uint64_t total = 0;
  };
  struct Window {
    std::int64_t span_ns = 0;
    std::int64_t bucket_width_ns = 0;
    std::deque<Bucket> buckets;

    void Observe(std::int64_t at_ns, bool good);
    void ObserveBulk(std::int64_t at_ns, std::uint64_t good,
                     std::uint64_t total);
    void Evict(std::int64_t now_ns);
    /// Fraction of bad observations in the window (0 when empty).
    [[nodiscard]] double BadFraction() const;
  };
  struct Tracked {
    SloObjective objective;
    SloStatus status;
    Window fast;
    Window slow;
  };

  void Observe(std::string_view name, SloObjective::Kind kind, bool good,
               std::int64_t now_ns);
  void ObserveBulk(std::string_view name, SloObjective::Kind kind,
                   std::uint64_t good, std::uint64_t bad, std::int64_t now_ns);

  std::map<std::string, Tracked, std::less<>> slos_;
  TransitionHandler handler_;
};

}  // namespace myrtus::telemetry
