#include "telemetry/slo.hpp"

#include <algorithm>

#include "telemetry/telemetry.hpp"

namespace myrtus::telemetry {

namespace {
/// Buckets per window: coarse enough to stay O(1)-ish, fine enough that
/// eviction granularity doesn't distort the burn rate materially.
constexpr std::int64_t kBucketsPerWindow = 20;
}  // namespace

std::string_view SloStateName(SloState state) {
  return state == SloState::kBreach ? "breach" : "ok";
}

void SloEngine::Window::Observe(std::int64_t at_ns, bool good) {
  const std::int64_t index = at_ns / bucket_width_ns;
  if (buckets.empty() || buckets.back().index < index) {
    buckets.push_back({index, 0, 0});
  }
  // Observations arrive in sim-time order (the simulator is monotonic), so
  // the target bucket is always the newest.
  Bucket& b = buckets.back();
  ++b.total;
  if (good) ++b.good;
}

void SloEngine::Window::ObserveBulk(std::int64_t at_ns, std::uint64_t good,
                                    std::uint64_t total) {
  if (total == 0) return;
  const std::int64_t index = at_ns / bucket_width_ns;
  if (buckets.empty() || buckets.back().index < index) {
    buckets.push_back({index, 0, 0});
  }
  // All `total` observations share one timestamp, hence one bucket — folding
  // them into a single increment is exactly N calls to Observe(at_ns, ...).
  Bucket& b = buckets.back();
  b.total += total;
  b.good += good;
}

void SloEngine::Window::Evict(std::int64_t now_ns) {
  const std::int64_t horizon = (now_ns - span_ns) / bucket_width_ns;
  while (!buckets.empty() && buckets.front().index < horizon) {
    buckets.pop_front();
  }
}

double SloEngine::Window::BadFraction() const {
  std::uint64_t good = 0;
  std::uint64_t total = 0;
  for (const Bucket& b : buckets) {
    good += b.good;
    total += b.total;
  }
  if (total == 0) return 0.0;
  return static_cast<double>(total - good) / static_cast<double>(total);
}

util::Status SloEngine::AddObjective(SloObjective objective) {
  if (objective.name.empty()) {
    return util::Status::InvalidArgument("SLO objective needs a name");
  }
  if (slos_.count(objective.name) > 0) {
    return util::Status::InvalidArgument("duplicate SLO objective '" +
                                         objective.name + "'");
  }
  if (objective.fast_window_ns <= 0 || objective.slow_window_ns <= 0) {
    return util::Status::InvalidArgument("SLO windows must be positive");
  }
  if (objective.fast_window_ns >= objective.slow_window_ns) {
    return util::Status::InvalidArgument(
        "fast window must be shorter than the slow window");
  }
  if (objective.target <= 0.0 || objective.target >= 1.0) {
    return util::Status::InvalidArgument(
        "SLO target must lie strictly between 0 and 1");
  }
  Tracked tracked;
  tracked.fast.span_ns = objective.fast_window_ns;
  tracked.fast.bucket_width_ns =
      std::max<std::int64_t>(1, objective.fast_window_ns / kBucketsPerWindow);
  tracked.slow.span_ns = objective.slow_window_ns;
  tracked.slow.bucket_width_ns =
      std::max<std::int64_t>(1, objective.slow_window_ns / kBucketsPerWindow);
  std::string key = objective.name;
  tracked.objective = std::move(objective);
  slos_.emplace(std::move(key), std::move(tracked));
  return util::Status::Ok();
}

void SloEngine::Observe(std::string_view name, SloObjective::Kind kind,
                        bool good, std::int64_t now_ns) {
  const auto it = slos_.find(name);
  if (it == slos_.end() || it->second.objective.kind != kind) return;
  Tracked& t = it->second;
  ++t.status.observations;
  if (!good) ++t.status.bad;
  t.fast.Observe(now_ns, good);
  t.slow.Observe(now_ns, good);
}

void SloEngine::ObserveBulk(std::string_view name, SloObjective::Kind kind,
                            std::uint64_t good, std::uint64_t bad,
                            std::int64_t now_ns) {
  const std::uint64_t total = good + bad;
  if (total == 0) return;
  const auto it = slos_.find(name);
  if (it == slos_.end() || it->second.objective.kind != kind) return;
  Tracked& t = it->second;
  t.status.observations += total;
  t.status.bad += bad;
  t.fast.ObserveBulk(now_ns, good, total);
  t.slow.ObserveBulk(now_ns, good, total);
}

void SloEngine::RecordLatencyMs(std::string_view name, double ms,
                                std::int64_t now_ns) {
  const auto it = slos_.find(name);
  if (it == slos_.end()) return;
  Observe(name, SloObjective::Kind::kLatency,
          ms <= it->second.objective.latency_threshold_ms, now_ns);
}

void SloEngine::RecordAvailability(std::string_view name, bool ok,
                                   std::int64_t now_ns) {
  Observe(name, SloObjective::Kind::kAvailability, ok, now_ns);
}

void SloEngine::RecordAvailabilityBulk(std::string_view name,
                                       std::uint64_t ok_count,
                                       std::uint64_t bad_count,
                                       std::int64_t now_ns) {
  ObserveBulk(name, SloObjective::Kind::kAvailability, ok_count, bad_count,
              now_ns);
}

void SloEngine::RecordLatencyOutcomes(std::string_view name,
                                      std::uint64_t good_count,
                                      std::uint64_t bad_count,
                                      std::int64_t now_ns) {
  ObserveBulk(name, SloObjective::Kind::kLatency, good_count, bad_count,
              now_ns);
}

void SloEngine::Evaluate(std::int64_t now_ns) {
  for (auto& [name, t] : slos_) {
    t.fast.Evict(now_ns);
    t.slow.Evict(now_ns);
    const double budget = 1.0 - t.objective.target;
    t.status.fast_burn_rate = budget > 0.0 ? t.fast.BadFraction() / budget : 0.0;
    t.status.slow_burn_rate = budget > 0.0 ? t.slow.BadFraction() / budget : 0.0;

    const double fire = t.objective.burn_rate_threshold;
    const double clear = fire * t.objective.clear_fraction;
    bool transitioned = false;
    bool breached = false;
    if (t.status.state == SloState::kOk) {
      // Multi-window agreement: the fast window proves it is happening NOW,
      // the slow window proves it is significant.
      if (t.status.fast_burn_rate >= fire && t.status.slow_burn_rate >= fire) {
        t.status.state = SloState::kBreach;
        ++t.status.breaches;
        t.status.last_transition_ns = now_ns;
        transitioned = true;
        breached = true;
      }
    } else if (t.status.fast_burn_rate < clear &&
               t.status.slow_burn_rate < clear) {
      t.status.state = SloState::kOk;
      t.status.last_transition_ns = now_ns;
      transitioned = true;
    }

    if (Enabled()) {
      auto& tel = Global();
      tel.metrics.Set("myrtus_slo_burn_rate", t.status.fast_burn_rate,
                      {{"slo", name}, {"window", "fast"}});
      tel.metrics.Set("myrtus_slo_burn_rate", t.status.slow_burn_rate,
                      {{"slo", name}, {"window", "slow"}});
      tel.metrics.Set("myrtus_slo_breached",
                      t.status.state == SloState::kBreach ? 1.0 : 0.0,
                      {{"slo", name}});
      if (transitioned) {
        if (breached) {
          tel.metrics.Add("myrtus_slo_breaches_total", 1.0, {{"slo", name}});
          tel.recorder.RecordEvent("slo.breach", name, now_ns);
          // The moment the loop noticed its objective failing is exactly the
          // flight-recorder moment: dump the ring (when armed).
          // LINT: discard(the dump path is advisory; breach state is already
          // recorded in metrics and the ring itself)
          (void)tel.recorder.Trigger("slo.breach:" + name, now_ns);
        } else {
          tel.recorder.RecordEvent("slo.clear", name, now_ns);
        }
      }
    }
    if (transitioned && handler_) handler_(name, t.status, breached);
  }
}

const SloStatus* SloEngine::Find(std::string_view name) const {
  const auto it = slos_.find(name);
  return it == slos_.end() ? nullptr : &it->second.status;
}

const SloObjective* SloEngine::FindObjective(std::string_view name) const {
  const auto it = slos_.find(name);
  return it == slos_.end() ? nullptr : &it->second.objective;
}

std::vector<std::string> SloEngine::Breached() const {
  std::vector<std::string> out;
  for (const auto& [name, t] : slos_) {
    if (t.status.state == SloState::kBreach) out.push_back(name);
  }
  return out;  // std::map iteration is already sorted
}

bool SloEngine::any_breached() const {
  return std::any_of(slos_.begin(), slos_.end(), [](const auto& kv) {
    return kv.second.status.state == SloState::kBreach;
  });
}

}  // namespace myrtus::telemetry
