// Synchronous dataflow (SDF) application IR — the DPE's high-level
// application model (§V: dataflow dialects, dfg-mlir, MDC multi-dataflow
// composition). Applications are graphs of actors exchanging tokens; the
// balance equations give each actor's repetition count, and transformation
// passes (fusion, partitioning) lower the model toward implementation.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "util/status.hpp"

namespace myrtus::dpe {

/// One SDF actor.
struct Actor {
  std::string name;
  std::uint64_t cycles_per_firing = 1'000'000;
  std::uint64_t state_bytes = 0;   // memory footprint
  bool accelerable = false;        // has an FPGA/CCU kernel implementation
  double parallel_fraction = 0.0;
};

/// A directed edge carrying `produce` tokens per source firing and consuming
/// `consume` tokens per sink firing; each token is `token_bytes`.
struct Channel {
  std::string from;
  std::string to;
  int produce = 1;
  int consume = 1;
  std::uint64_t token_bytes = 1024;
};

class DataflowGraph {
 public:
  util::Status AddActor(Actor actor);
  util::Status AddChannel(Channel channel);

  [[nodiscard]] const std::vector<Actor>& actors() const { return actors_; }
  [[nodiscard]] const std::vector<Channel>& channels() const { return channels_; }
  [[nodiscard]] const Actor* FindActor(const std::string& name) const;
  [[nodiscard]] std::size_t ActorIndex(const std::string& name) const;

  /// Solves the SDF balance equations. Returns the repetition vector
  /// (firings per iteration, indexed like actors()), or FAILED_PRECONDITION
  /// for inconsistent rates.
  [[nodiscard]] util::StatusOr<std::vector<std::uint64_t>> RepetitionVector() const;

  /// True when the graph has no directed cycles (pipelines; cycles would
  /// need initial tokens, which this subset does not model).
  [[nodiscard]] bool IsAcyclic() const;
  /// Actors in topological order (valid only when acyclic).
  [[nodiscard]] util::StatusOr<std::vector<std::size_t>> TopologicalOrder() const;

  /// Total work (cycles) of one graph iteration, weighted by repetitions.
  [[nodiscard]] util::StatusOr<std::uint64_t> IterationCycles() const;
  /// Total bytes crossing channels per iteration.
  [[nodiscard]] util::StatusOr<std::uint64_t> IterationTrafficBytes() const;

  /// --- Transformation passes ---------------------------------------------
  /// Fuses every linear chain (single-producer/single-consumer with matched
  /// rates) into one actor; returns the transformed graph and the number of
  /// fusions applied.
  [[nodiscard]] std::pair<DataflowGraph, int> FuseLinearChains() const;
  /// Partitions actors into `k` groups balancing cycles and minimizing cut
  /// traffic (greedy multilevel-ish heuristic). Returns group per actor.
  [[nodiscard]] std::vector<int> Partition(int k) const;
  /// Cut traffic (bytes/iteration) of a partitioning.
  [[nodiscard]] std::uint64_t CutBytes(const std::vector<int>& partition) const;

 private:
  std::vector<Actor> actors_;
  std::vector<Channel> channels_;
  std::map<std::string, std::size_t> index_;
};

/// Random layered pipeline generator for DSE benchmarks (Fig. 4 workloads).
DataflowGraph RandomPipeline(int actors, util::Rng& rng);

}  // namespace myrtus::dpe
