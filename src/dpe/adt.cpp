#include "dpe/adt.hpp"

#include <algorithm>

namespace myrtus::dpe {

AdtNode::AdtNode(std::string name, AdtGate gate, double probability)
    : name_(std::move(name)), gate_(gate), probability_(probability) {}

std::unique_ptr<AdtNode> AdtNode::Leaf(std::string name, double probability) {
  return std::unique_ptr<AdtNode>(
      new AdtNode(std::move(name), AdtGate::kLeaf,
                  std::clamp(probability, 0.0, 1.0)));
}

std::unique_ptr<AdtNode> AdtNode::And(
    std::string name, std::vector<std::unique_ptr<AdtNode>> children) {
  auto node = std::unique_ptr<AdtNode>(
      new AdtNode(std::move(name), AdtGate::kAnd, 0.0));
  node->children_ = std::move(children);
  return node;
}

std::unique_ptr<AdtNode> AdtNode::Or(
    std::string name, std::vector<std::unique_ptr<AdtNode>> children) {
  auto node = std::unique_ptr<AdtNode>(
      new AdtNode(std::move(name), AdtGate::kOr, 0.0));
  node->children_ = std::move(children);
  return node;
}

AdtNode* AdtNode::AddDefence(Defence defence) {
  defences_.push_back(std::move(defence));
  return this;
}

double AdtNode::AttackProbability(
    const std::vector<std::string>& active_defences) const {
  double p = probability_;
  switch (gate_) {
    case AdtGate::kLeaf:
      p = probability_;
      break;
    case AdtGate::kAnd: {
      p = 1.0;
      for (const auto& child : children_) {
        p *= child->AttackProbability(active_defences);
      }
      break;
    }
    case AdtGate::kOr: {
      double none = 1.0;
      for (const auto& child : children_) {
        none *= 1.0 - child->AttackProbability(active_defences);
      }
      p = 1.0 - none;
      break;
    }
  }
  for (const Defence& d : defences_) {
    if (std::find(active_defences.begin(), active_defences.end(), d.name) !=
        active_defences.end()) {
      p *= std::clamp(d.mitigation, 0.0, 1.0);
    }
  }
  return p;
}

std::vector<const Defence*> AdtNode::AllDefences() const {
  std::vector<const Defence*> out;
  for (const Defence& d : defences_) out.push_back(&d);
  for (const auto& child : children_) {
    const auto sub = child->AllDefences();
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

CountermeasurePlan SynthesizeCountermeasures(const AdtNode& root, double budget) {
  CountermeasurePlan plan;
  plan.residual_probability = root.AttackProbability({});
  const std::vector<const Defence*> all = root.AllDefences();

  while (true) {
    const Defence* best = nullptr;
    double best_ratio = 0.0;
    double best_prob = plan.residual_probability;
    for (const Defence* d : all) {
      if (std::find(plan.selected.begin(), plan.selected.end(), d->name) !=
          plan.selected.end()) {
        continue;
      }
      if (plan.total_cost + d->cost > budget) continue;
      std::vector<std::string> trial = plan.selected;
      trial.push_back(d->name);
      const double p = root.AttackProbability(trial);
      const double gain = plan.residual_probability - p;
      if (gain <= 1e-12) continue;
      const double ratio = gain / d->cost;
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best = d;
        best_prob = p;
      }
    }
    if (best == nullptr) break;
    plan.selected.push_back(best->name);
    if (!best->countermeasure.empty()) {
      plan.countermeasures.push_back(best->countermeasure);
    }
    plan.total_cost += best->cost;
    plan.residual_probability = best_prob;
  }
  return plan;
}

}  // namespace myrtus::dpe
