// Attack-Defence Trees (§V: Modelio's ADT modeling "for the analysis of the
// threats to which the system is exposed", synthesizing "a set of adapted
// counter-measures"). An ADT is a tree of attack goals (AND/OR refinement)
// whose leaves carry success probabilities and attacker costs; defences
// attach to nodes and reduce leaf success probability at a deployment cost.
// Countermeasure synthesis selects the defence set that minimizes root
// attack probability under a budget.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace myrtus::dpe {

enum class AdtGate : std::uint8_t { kLeaf, kAnd, kOr };

struct Defence {
  std::string name;
  double cost = 1.0;            // deployment cost units
  double mitigation = 0.5;      // multiplies the attack probability when active
  /// Countermeasure artifact the DPE emits when selected — e.g. raising the
  /// Table II security level or enabling a primitive.
  std::string countermeasure;
};

class AdtNode {
 public:
  /// Leaf attack step with base success probability.
  static std::unique_ptr<AdtNode> Leaf(std::string name, double probability);
  /// AND: all children must succeed. OR: any child suffices.
  static std::unique_ptr<AdtNode> And(std::string name,
                                      std::vector<std::unique_ptr<AdtNode>> children);
  static std::unique_ptr<AdtNode> Or(std::string name,
                                     std::vector<std::unique_ptr<AdtNode>> children);

  /// Attaches a defence to this node (applies to the whole subtree's
  /// aggregated probability).
  AdtNode* AddDefence(Defence defence);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] AdtGate gate() const { return gate_; }
  [[nodiscard]] const std::vector<std::unique_ptr<AdtNode>>& children() const {
    return children_;
  }
  [[nodiscard]] const std::vector<Defence>& defences() const { return defences_; }

  /// Success probability of this (sub)tree given the set of active defence
  /// names (children independent).
  [[nodiscard]] double AttackProbability(
      const std::vector<std::string>& active_defences) const;

  /// All defences in the subtree.
  [[nodiscard]] std::vector<const Defence*> AllDefences() const;

 private:
  AdtNode(std::string name, AdtGate gate, double probability);
  std::string name_;
  AdtGate gate_;
  double probability_ = 0.0;
  std::vector<std::unique_ptr<AdtNode>> children_;
  std::vector<Defence> defences_;
};

struct CountermeasurePlan {
  std::vector<std::string> selected;        // defence names
  std::vector<std::string> countermeasures; // emitted artifacts
  double residual_probability = 1.0;
  double total_cost = 0.0;
};

/// Greedy marginal-benefit synthesis: repeatedly adds the defence with the
/// best probability-reduction per cost until the budget is exhausted or no
/// defence helps.
CountermeasurePlan SynthesizeCountermeasures(const AdtNode& root, double budget);

}  // namespace myrtus::dpe
