#include "dpe/dataflow.hpp"

#include <algorithm>
#include <functional>
#include <numeric>
#include <queue>

namespace myrtus::dpe {
namespace {

std::uint64_t Gcd(std::uint64_t a, std::uint64_t b) {
  while (b != 0) {
    const std::uint64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

std::uint64_t Lcm(std::uint64_t a, std::uint64_t b) {
  return a / Gcd(a, b) * b;
}

}  // namespace

util::Status DataflowGraph::AddActor(Actor actor) {
  if (index_.count(actor.name) > 0) {
    return util::Status::AlreadyExists("actor " + actor.name);
  }
  index_[actor.name] = actors_.size();
  actors_.push_back(std::move(actor));
  return util::Status::Ok();
}

util::Status DataflowGraph::AddChannel(Channel channel) {
  if (index_.count(channel.from) == 0 || index_.count(channel.to) == 0) {
    return util::Status::NotFound("channel endpoints must be actors");
  }
  if (channel.produce <= 0 || channel.consume <= 0) {
    return util::Status::InvalidArgument("SDF rates must be positive");
  }
  channels_.push_back(std::move(channel));
  return util::Status::Ok();
}

const Actor* DataflowGraph::FindActor(const std::string& name) const {
  const auto it = index_.find(name);
  return it == index_.end() ? nullptr : &actors_[it->second];
}

std::size_t DataflowGraph::ActorIndex(const std::string& name) const {
  return index_.at(name);
}

util::StatusOr<std::vector<std::uint64_t>> DataflowGraph::RepetitionVector()
    const {
  // Solve q_from * produce == q_to * consume over rationals by propagation.
  const std::size_t n = actors_.size();
  if (n == 0) return std::vector<std::uint64_t>{};
  // Represent q[i] = num[i] / den[i].
  std::vector<std::uint64_t> num(n, 0);
  std::vector<std::uint64_t> den(n, 1);

  // Adjacency over channels (undirected propagation).
  std::vector<std::vector<std::size_t>> adj(n);
  for (std::size_t c = 0; c < channels_.size(); ++c) {
    adj[index_.at(channels_[c].from)].push_back(c);
    adj[index_.at(channels_[c].to)].push_back(c);
  }

  for (std::size_t start = 0; start < n; ++start) {
    if (num[start] != 0) continue;
    num[start] = 1;
    std::queue<std::size_t> frontier;
    frontier.push(start);
    while (!frontier.empty()) {
      const std::size_t u = frontier.front();
      frontier.pop();
      for (const std::size_t ci : adj[u]) {
        const Channel& ch = channels_[ci];
        const std::size_t a = index_.at(ch.from);
        const std::size_t b = index_.at(ch.to);
        const std::size_t v = (a == u) ? b : a;
        // q_a * produce = q_b * consume  =>  q_v derived from q_u.
        std::uint64_t vn;
        std::uint64_t vd;
        if (v == b) {
          vn = num[u] * static_cast<std::uint64_t>(ch.produce);
          vd = den[u] * static_cast<std::uint64_t>(ch.consume);
        } else {
          vn = num[u] * static_cast<std::uint64_t>(ch.consume);
          vd = den[u] * static_cast<std::uint64_t>(ch.produce);
        }
        const std::uint64_t g = Gcd(vn, vd);
        vn /= g;
        vd /= g;
        if (num[v] == 0) {
          num[v] = vn;
          den[v] = vd;
          frontier.push(v);
        } else if (num[v] * vd != vn * den[v]) {
          return util::Status::FailedPrecondition(
              "inconsistent SDF rates around actor " + actors_[v].name);
        }
      }
    }
  }

  // Scale to the smallest integer vector.
  std::uint64_t lcm_den = 1;
  for (const std::uint64_t d : den) lcm_den = Lcm(lcm_den, d);
  std::vector<std::uint64_t> q(n);
  std::uint64_t gcd_all = 0;
  for (std::size_t i = 0; i < n; ++i) {
    q[i] = num[i] * (lcm_den / den[i]);
    gcd_all = Gcd(gcd_all, q[i]);
  }
  if (gcd_all > 1) {
    for (std::uint64_t& v : q) v /= gcd_all;
  }
  return q;
}

bool DataflowGraph::IsAcyclic() const { return TopologicalOrder().ok(); }

util::StatusOr<std::vector<std::size_t>> DataflowGraph::TopologicalOrder() const {
  const std::size_t n = actors_.size();
  std::vector<int> indegree(n, 0);
  std::vector<std::vector<std::size_t>> out(n);
  for (const Channel& ch : channels_) {
    const std::size_t a = index_.at(ch.from);
    const std::size_t b = index_.at(ch.to);
    out[a].push_back(b);
    ++indegree[b];
  }
  std::queue<std::size_t> ready;
  for (std::size_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) ready.push(i);
  }
  std::vector<std::size_t> order;
  while (!ready.empty()) {
    const std::size_t u = ready.front();
    ready.pop();
    order.push_back(u);
    for (const std::size_t v : out[u]) {
      if (--indegree[v] == 0) ready.push(v);
    }
  }
  if (order.size() != n) {
    return util::Status::FailedPrecondition("dataflow graph has a cycle");
  }
  return order;
}

util::StatusOr<std::uint64_t> DataflowGraph::IterationCycles() const {
  auto q = RepetitionVector();
  if (!q.ok()) return q.status();
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < actors_.size(); ++i) {
    total += actors_[i].cycles_per_firing * (*q)[i];
  }
  return total;
}

util::StatusOr<std::uint64_t> DataflowGraph::IterationTrafficBytes() const {
  auto q = RepetitionVector();
  if (!q.ok()) return q.status();
  std::uint64_t total = 0;
  for (const Channel& ch : channels_) {
    const std::size_t a = index_.at(ch.from);
    total += (*q)[a] * static_cast<std::uint64_t>(ch.produce) * ch.token_bytes;
  }
  return total;
}

std::pair<DataflowGraph, int> DataflowGraph::FuseLinearChains() const {
  // Count fan-in/out.
  const std::size_t n = actors_.size();
  std::vector<int> fan_in(n, 0);
  std::vector<int> fan_out(n, 0);
  for (const Channel& ch : channels_) {
    ++fan_out[index_.at(ch.from)];
    ++fan_in[index_.at(ch.to)];
  }
  // Union-find over fusable pairs: a->b with matched rates, fan_out[a]==1,
  // fan_in[b]==1.
  std::vector<std::size_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  const std::function<std::size_t(std::size_t)> find =
      [&](std::size_t x) -> std::size_t {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  int fusions = 0;
  for (const Channel& ch : channels_) {
    const std::size_t a = index_.at(ch.from);
    const std::size_t b = index_.at(ch.to);
    if (ch.produce == ch.consume && fan_out[a] == 1 && fan_in[b] == 1) {
      const std::size_t ra = find(a);
      const std::size_t rb = find(b);
      if (ra != rb) {
        parent[rb] = ra;
        ++fusions;
      }
    }
  }

  // Build fused graph.
  DataflowGraph fused;
  std::map<std::size_t, std::string> group_name;
  std::map<std::size_t, Actor> group_actor;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t root = find(i);
    auto it = group_actor.find(root);
    if (it == group_actor.end()) {
      Actor merged = actors_[i];
      merged.name = actors_[root].name;
      if (i != root) {
        merged = actors_[root];
        merged.cycles_per_firing += actors_[i].cycles_per_firing;
        merged.state_bytes += actors_[i].state_bytes;
        merged.accelerable = merged.accelerable && actors_[i].accelerable;
      }
      group_actor[root] = merged;
    } else if (i != root) {
      it->second.cycles_per_firing += actors_[i].cycles_per_firing;
      it->second.state_bytes += actors_[i].state_bytes;
      it->second.accelerable = it->second.accelerable && actors_[i].accelerable;
    }
  }
  for (auto& [root, actor] : group_actor) {
    util::MustOk(fused.AddActor(actor));
    group_name[root] = actor.name;
  }
  for (const Channel& ch : channels_) {
    const std::size_t ra = find(index_.at(ch.from));
    const std::size_t rb = find(index_.at(ch.to));
    if (ra == rb) continue;  // internal to a fused actor
    Channel c = ch;
    c.from = group_name[ra];
    c.to = group_name[rb];
    util::MustOk(fused.AddChannel(c));
  }
  return {std::move(fused), fusions};
}

std::vector<int> DataflowGraph::Partition(int k) const {
  const std::size_t n = actors_.size();
  std::vector<int> part(n, 0);
  if (k <= 1 || n == 0) return part;

  // Greedy: actors in topological (or index) order, assign to the partition
  // with the lowest load unless co-locating with a heavy-traffic neighbor
  // wins.
  std::vector<std::uint64_t> load(static_cast<std::size_t>(k), 0);
  std::vector<std::size_t> order;
  if (auto topo = TopologicalOrder(); topo.ok()) {
    order = std::move(topo).value();
  } else {
    order.resize(n);
    std::iota(order.begin(), order.end(), 0);
  }
  std::vector<bool> placed(n, false);
  for (const std::size_t i : order) {
    // Traffic to already-placed neighbors per partition.
    std::vector<std::uint64_t> affinity(static_cast<std::size_t>(k), 0);
    for (const Channel& ch : channels_) {
      const std::size_t a = index_.at(ch.from);
      const std::size_t b = index_.at(ch.to);
      const std::uint64_t bytes =
          static_cast<std::uint64_t>(ch.produce) * ch.token_bytes;
      if (a == i && placed[b]) affinity[static_cast<std::size_t>(part[b])] += bytes;
      if (b == i && placed[a]) affinity[static_cast<std::size_t>(part[a])] += bytes;
    }
    int best = 0;
    double best_score = -1e300;
    const std::uint64_t total_cycles =
        std::max<std::uint64_t>(1, IterationCycles().ok() ? *IterationCycles() : 1);
    for (int p = 0; p < k; ++p) {
      const double balance =
          -static_cast<double>(load[static_cast<std::size_t>(p)]) /
          static_cast<double>(total_cycles);
      const double score =
          balance + 2.0 * static_cast<double>(affinity[static_cast<std::size_t>(p)]) /
                        static_cast<double>(total_cycles + 1);
      if (score > best_score) {
        best_score = score;
        best = p;
      }
    }
    part[i] = best;
    placed[i] = true;
    load[static_cast<std::size_t>(best)] += actors_[i].cycles_per_firing;
  }
  return part;
}

std::uint64_t DataflowGraph::CutBytes(const std::vector<int>& partition) const {
  std::uint64_t cut = 0;
  for (const Channel& ch : channels_) {
    const std::size_t a = index_.at(ch.from);
    const std::size_t b = index_.at(ch.to);
    if (a < partition.size() && b < partition.size() &&
        partition[a] != partition[b]) {
      cut += static_cast<std::uint64_t>(ch.produce) * ch.token_bytes;
    }
  }
  return cut;
}

DataflowGraph RandomPipeline(int actors, util::Rng& rng) {
  DataflowGraph g;
  for (int i = 0; i < actors; ++i) {
    Actor a;
    a.name = "a" + std::to_string(i);
    a.cycles_per_firing = 1'000'000 + rng.NextBounded(50'000'000);
    a.state_bytes = 1024 + rng.NextBounded(1 << 20);
    a.accelerable = rng.NextBool(0.3);
    a.parallel_fraction = rng.Uniform(0.0, 0.9);
    util::MustOk(g.AddActor(a));
  }
  // Chain backbone plus a few skip edges.
  for (int i = 0; i + 1 < actors; ++i) {
    Channel c;
    c.from = "a" + std::to_string(i);
    c.to = "a" + std::to_string(i + 1);
    c.token_bytes = 256 + rng.NextBounded(64 * 1024);
    util::MustOk(g.AddChannel(c));
  }
  for (int i = 0; i + 2 < actors; i += 3) {
    if (rng.NextBool(0.4)) {
      Channel c;
      c.from = "a" + std::to_string(i);
      c.to = "a" + std::to_string(i + 2);
      c.token_bytes = 128 + rng.NextBounded(8 * 1024);
      util::MustOk(g.AddChannel(c));
    }
  }
  return g;
}

}  // namespace myrtus::dpe
