#include "dpe/dse.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

namespace myrtus::dpe {

KpiEstimator::KpiEstimator(const DataflowGraph& graph,
                           std::vector<TargetDevice> targets)
    : graph_(graph), targets_(std::move(targets)) {
  if (auto q = graph_.RepetitionVector(); q.ok()) {
    repetitions_ = std::move(q).value();
  } else {
    repetitions_.assign(graph_.actors().size(), 1);
  }
}

util::StatusOr<KpiEstimate> KpiEstimator::Estimate(
    const Configuration& config) const {
  const auto& actors = graph_.actors();
  if (config.actor_to_device.size() != actors.size()) {
    return util::Status::InvalidArgument("mapping size != actor count");
  }
  if (config.operating_point.size() != targets_.size()) {
    return util::Status::InvalidArgument("operating points size != device count");
  }
  for (std::size_t d = 0; d < targets_.size(); ++d) {
    const int pi = config.operating_point[d];
    if (pi < 0 || static_cast<std::size_t>(pi) >=
                      targets_[d].device.operating_points().size()) {
      return util::Status::InvalidArgument("operating point out of range");
    }
  }

  KpiEstimate kpi;
  std::vector<double> device_busy_s(targets_.size(), 0.0);

  for (std::size_t a = 0; a < actors.size(); ++a) {
    const int di = config.actor_to_device[a];
    if (di < 0 || static_cast<std::size_t>(di) >= targets_.size()) {
      return util::Status::InvalidArgument("device index out of range");
    }
    const TargetDevice& target = targets_[static_cast<std::size_t>(di)];
    const int pi = config.operating_point[static_cast<std::size_t>(di)];
    if (pi < 0 || static_cast<std::size_t>(pi) >=
                      target.device.operating_points().size()) {
      return util::Status::InvalidArgument("operating point out of range");
    }
    continuum::TaskDemand demand;
    demand.cycles = actors[a].cycles_per_firing * repetitions_[a];
    demand.parallel_fraction = actors[a].parallel_fraction;
    demand.accelerable = actors[a].accelerable;
    const continuum::ExecutionEstimate est = target.device.EstimateAt(
        demand, target.device.operating_points()[static_cast<std::size_t>(pi)]);
    device_busy_s[static_cast<std::size_t>(di)] += est.latency.ToSecondsF();
    kpi.energy_mj += est.energy_mj;

    // Non-accelerable actors mapped to a pure fabric device are infeasible
    // in the MDC flow (the fabric runs only synthesized kernels).
    if (!actors[a].accelerable &&
        target.device.kind() == continuum::DeviceKind::kFpgaAccelerator) {
      kpi.feasible = false;
    }
  }

  // Inter-device transfers.
  for (const Channel& ch : graph_.channels()) {
    const std::size_t a = graph_.ActorIndex(ch.from);
    const std::size_t b = graph_.ActorIndex(ch.to);
    const int da = config.actor_to_device[a];
    const int db = config.actor_to_device[b];
    if (da == db) continue;
    const std::uint64_t bytes =
        repetitions_[a] * static_cast<std::uint64_t>(ch.produce) * ch.token_bytes;
    const TargetDevice& src = targets_[static_cast<std::size_t>(da)];
    const double xfer = src.interconnect_latency_s +
                        static_cast<double>(bytes) / src.interconnect_bw_bps;
    // Transfers serialize on the producing device's timeline (DMA model) and
    // cost interconnect energy at a flat 100 pJ/byte.
    device_busy_s[static_cast<std::size_t>(da)] += xfer;
    kpi.energy_mj += static_cast<double>(bytes) * 100e-12 * 1e3;
  }

  double makespan = 0.0;
  for (const double busy : device_busy_s) makespan = std::max(makespan, busy);
  kpi.latency_s = makespan;
  if (makespan > 0) kpi.max_device_utilization = 1.0;  // bottleneck device
  return kpi;
}

std::vector<ParetoPoint> ParetoFilter(std::vector<ParetoPoint> points) {
  std::sort(points.begin(), points.end(),
            [](const ParetoPoint& a, const ParetoPoint& b) {
              if (a.kpi.latency_s != b.kpi.latency_s) {
                return a.kpi.latency_s < b.kpi.latency_s;
              }
              return a.kpi.energy_mj < b.kpi.energy_mj;
            });
  std::vector<ParetoPoint> front;
  double best_energy = std::numeric_limits<double>::infinity();
  for (ParetoPoint& p : points) {
    if (!p.kpi.feasible) continue;
    if (p.kpi.energy_mj < best_energy - 1e-12) {
      best_energy = p.kpi.energy_mj;
      front.push_back(std::move(p));
    }
  }
  return front;
}

util::StatusOr<DseResult> ExploreExhaustive(const KpiEstimator& estimator,
                                            std::size_t max_states) {
  const std::size_t actors = estimator.graph().actors().size();
  const std::size_t devices = estimator.targets().size();
  double states = 1.0;
  for (std::size_t i = 0; i < actors; ++i) states *= static_cast<double>(devices);
  for (const TargetDevice& t : estimator.targets()) {
    states *= static_cast<double>(t.device.operating_points().size());
  }
  if (states > static_cast<double>(max_states)) {
    return util::Status::InvalidArgument("DSE space too large for exhaustive");
  }

  DseResult result;
  std::vector<ParetoPoint> all;
  Configuration config;
  config.actor_to_device.assign(actors, 0);
  config.operating_point.assign(devices, 0);

  const std::function<void(std::size_t)> enum_points = [&](std::size_t d) {
    if (d == devices) {
      auto kpi = estimator.Estimate(config);
      ++result.evaluated;
      if (kpi.ok()) all.push_back(ParetoPoint{config, *kpi});
      return;
    }
    const std::size_t npoints =
        estimator.targets()[d].device.operating_points().size();
    for (std::size_t p = 0; p < npoints; ++p) {
      config.operating_point[d] = static_cast<int>(p);
      enum_points(d + 1);
    }
  };
  const std::function<void(std::size_t)> enum_mapping = [&](std::size_t a) {
    if (a == actors) {
      enum_points(0);
      return;
    }
    for (std::size_t d = 0; d < devices; ++d) {
      config.actor_to_device[a] = static_cast<int>(d);
      enum_mapping(a + 1);
    }
  };
  enum_mapping(0);
  result.front = ParetoFilter(std::move(all));
  return result;
}

DseResult ExploreGenetic(const KpiEstimator& estimator, util::Rng& rng,
                         int population, int generations) {
  const std::size_t actors = estimator.graph().actors().size();
  const std::size_t devices = estimator.targets().size();

  const auto random_config = [&] {
    Configuration c;
    c.actor_to_device.resize(actors);
    for (int& d : c.actor_to_device) {
      d = static_cast<int>(rng.NextBounded(devices));
    }
    c.operating_point.resize(devices);
    for (std::size_t d = 0; d < devices; ++d) {
      c.operating_point[d] = static_cast<int>(rng.NextBounded(
          estimator.targets()[d].device.operating_points().size()));
    }
    return c;
  };

  DseResult result;
  std::vector<ParetoPoint> archive;
  std::vector<ParetoPoint> current;
  for (int i = 0; i < population; ++i) {
    Configuration c = random_config();
    auto kpi = estimator.Estimate(c);
    ++result.evaluated;
    if (kpi.ok()) current.push_back(ParetoPoint{std::move(c), *kpi});
  }

  // Scalarized tournament with rotating weights drives diversity along the
  // front; the archive keeps every non-dominated point seen.
  for (int gen = 0; gen < generations; ++gen) {
    archive.insert(archive.end(), current.begin(), current.end());
    archive = ParetoFilter(std::move(archive));

    const double w = (gen % 5) / 4.0;  // 0..1 sweep latency<->energy emphasis
    const auto scalar = [&](const ParetoPoint& p) {
      return w * p.kpi.latency_s * 1e3 + (1 - w) * p.kpi.energy_mj +
             (p.kpi.feasible ? 0.0 : 1e9);
    };
    const auto pick = [&]() -> const ParetoPoint& {
      const ParetoPoint* best = nullptr;
      for (int i = 0; i < 3; ++i) {
        const ParetoPoint& cand = current[rng.NextBounded(current.size())];
        if (best == nullptr || scalar(cand) < scalar(*best)) best = &cand;
      }
      return *best;
    };

    std::vector<ParetoPoint> next;
    while (next.size() < static_cast<std::size_t>(population)) {
      const ParetoPoint& a = pick();
      const ParetoPoint& b = pick();
      Configuration child;
      child.actor_to_device.resize(actors);
      for (std::size_t i = 0; i < actors; ++i) {
        child.actor_to_device[i] = rng.NextBool()
                                       ? a.config.actor_to_device[i]
                                       : b.config.actor_to_device[i];
        if (rng.NextBool(0.08)) {
          child.actor_to_device[i] = static_cast<int>(rng.NextBounded(devices));
        }
      }
      child.operating_point.resize(devices);
      for (std::size_t d = 0; d < devices; ++d) {
        child.operating_point[d] = rng.NextBool()
                                       ? a.config.operating_point[d]
                                       : b.config.operating_point[d];
        if (rng.NextBool(0.08)) {
          child.operating_point[d] = static_cast<int>(rng.NextBounded(
              estimator.targets()[d].device.operating_points().size()));
        }
      }
      auto kpi = estimator.Estimate(child);
      ++result.evaluated;
      if (kpi.ok()) next.push_back(ParetoPoint{std::move(child), *kpi});
    }
    current = std::move(next);
  }
  archive.insert(archive.end(), current.begin(), current.end());
  result.front = ParetoFilter(std::move(archive));
  return result;
}

std::vector<TargetDevice> HmpsocTargets() {
  std::vector<TargetDevice> targets;
  targets.push_back(TargetDevice{"big", continuum::MakeBigCore("big"), 8e9, 5e-6});
  targets.push_back(
      TargetDevice{"little", continuum::MakeLittleCore("little"), 8e9, 5e-6});
  targets.push_back(TargetDevice{"fpga", continuum::MakeFpgaAccelerator("fpga"),
                                 4e9, 20e-6});
  return targets;
}

}  // namespace myrtus::dpe
