#include "dpe/dse.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <utility>

#include "util/parallel.hpp"

namespace myrtus::dpe {

KpiEstimator::KpiEstimator(const DataflowGraph& graph,
                           std::vector<TargetDevice> targets)
    : graph_(graph), targets_(std::move(targets)) {
  if (auto q = graph_.RepetitionVector(); q.ok()) {
    repetitions_ = std::move(q).value();
  } else {
    repetitions_.assign(graph_.actors().size(), 1);
  }

  // Precompute the per-(actor, device, operating point) execution estimates
  // the sweep's inner loop used to recompute for every configuration. Rows
  // are laid out per device-point (point_offset_[d] + p), columns per actor.
  const auto& actors = graph_.actors();
  const std::size_t n_actors = actors.size();
  const std::size_t n_devices = targets_.size();
  point_offset_.resize(n_devices);
  std::size_t total_points = 0;
  for (std::size_t d = 0; d < n_devices; ++d) {
    point_offset_[d] = total_points;
    total_points += targets_[d].device.operating_points().size();
  }
  point_latency_s_.resize(total_points * n_actors);
  point_energy_mj_.resize(total_points * n_actors);
  infeasible_.assign(n_devices * n_actors, 0);
  for (std::size_t d = 0; d < n_devices; ++d) {
    const TargetDevice& target = targets_[d];
    const auto& points = target.device.operating_points();
    for (std::size_t a = 0; a < n_actors; ++a) {
      continuum::TaskDemand demand;
      demand.cycles = actors[a].cycles_per_firing * repetitions_[a];
      demand.parallel_fraction = actors[a].parallel_fraction;
      demand.accelerable = actors[a].accelerable;
      for (std::size_t p = 0; p < points.size(); ++p) {
        const continuum::ExecutionEstimate est =
            target.device.EstimateAt(demand, points[p]);
        const std::size_t row = (point_offset_[d] + p) * n_actors + a;
        point_latency_s_[row] = est.latency.ToSecondsF();
        point_energy_mj_[row] = est.energy_mj;
      }
      // Non-accelerable actors mapped to a pure fabric device are infeasible
      // in the MDC flow (the fabric runs only synthesized kernels).
      if (!actors[a].accelerable &&
          target.device.kind() == continuum::DeviceKind::kFpgaAccelerator) {
        infeasible_[d * n_actors + a] = 1;
      }
    }
  }

  // Channel endpoints resolve actor names once (ActorIndex is a string
  // lookup), and the producer-side transfer cost is precomputed per device.
  channel_spans_.reserve(graph_.channels().size());
  channel_xfer_s_.resize(graph_.channels().size() * n_devices);
  for (std::size_t c = 0; c < graph_.channels().size(); ++c) {
    const Channel& ch = graph_.channels()[c];
    ChannelSpan span;
    span.from = graph_.ActorIndex(ch.from);
    span.to = graph_.ActorIndex(ch.to);
    const std::uint64_t bytes = repetitions_[span.from] *
                                static_cast<std::uint64_t>(ch.produce) *
                                ch.token_bytes;
    // Interconnect energy at a flat 100 pJ/byte, expressed in mJ.
    span.energy_mj = static_cast<double>(bytes) * 100e-12 * 1e3;
    channel_spans_.push_back(span);
    for (std::size_t d = 0; d < n_devices; ++d) {
      channel_xfer_s_[c * n_devices + d] =
          targets_[d].interconnect_latency_s +
          static_cast<double>(bytes) / targets_[d].interconnect_bw_bps;
    }
  }
}

util::StatusOr<KpiEstimate> KpiEstimator::Estimate(
    const Configuration& config) const {
  const auto& actors = graph_.actors();
  if (config.actor_to_device.size() != actors.size()) {
    return util::Status::InvalidArgument("mapping size != actor count");
  }
  if (config.operating_point.size() != targets_.size()) {
    return util::Status::InvalidArgument("operating points size != device count");
  }
  for (std::size_t d = 0; d < targets_.size(); ++d) {
    const int pi = config.operating_point[d];
    if (pi < 0 || static_cast<std::size_t>(pi) >=
                      targets_[d].device.operating_points().size()) {
      return util::Status::InvalidArgument("operating point out of range");
    }
  }

  KpiEstimate kpi;
  const std::size_t n_actors = actors.size();
  const std::size_t n_devices = targets_.size();
  std::vector<double> device_busy_s(n_devices, 0.0);

  // Pure table walk: the estimates themselves were computed once in the
  // constructor. Accumulation order matches the unhoisted code (actors in
  // index order, then channels), so results are bit-identical.
  for (std::size_t a = 0; a < n_actors; ++a) {
    const int di = config.actor_to_device[a];
    if (di < 0 || static_cast<std::size_t>(di) >= n_devices) {
      return util::Status::InvalidArgument("device index out of range");
    }
    const std::size_t d = static_cast<std::size_t>(di);
    const std::size_t p =
        static_cast<std::size_t>(config.operating_point[d]);  // validated above
    const std::size_t row = (point_offset_[d] + p) * n_actors + a;
    device_busy_s[d] += point_latency_s_[row];
    kpi.energy_mj += point_energy_mj_[row];
    if (infeasible_[d * n_actors + a] != 0) kpi.feasible = false;
  }

  // Inter-device transfers serialize on the producing device's timeline
  // (DMA model) and cost flat interconnect energy.
  for (std::size_t c = 0; c < channel_spans_.size(); ++c) {
    const ChannelSpan& span = channel_spans_[c];
    const int da = config.actor_to_device[span.from];
    const int db = config.actor_to_device[span.to];
    if (da == db) continue;
    const std::size_t d = static_cast<std::size_t>(da);
    device_busy_s[d] += channel_xfer_s_[c * n_devices + d];
    kpi.energy_mj += span.energy_mj;
  }

  double makespan = 0.0;
  for (const double busy : device_busy_s) makespan = std::max(makespan, busy);
  kpi.latency_s = makespan;
  if (makespan > 0) kpi.max_device_utilization = 1.0;  // bottleneck device
  return kpi;
}

std::vector<ParetoPoint> ParetoFilter(std::vector<ParetoPoint> points) {
  std::sort(points.begin(), points.end(),
            [](const ParetoPoint& a, const ParetoPoint& b) {
              if (a.kpi.latency_s != b.kpi.latency_s) {
                return a.kpi.latency_s < b.kpi.latency_s;
              }
              return a.kpi.energy_mj < b.kpi.energy_mj;
            });
  std::vector<ParetoPoint> front;
  double best_energy = std::numeric_limits<double>::infinity();
  for (ParetoPoint& p : points) {
    if (!p.kpi.feasible) continue;
    if (p.kpi.energy_mj < best_energy - 1e-12) {
      best_energy = p.kpi.energy_mj;
      front.push_back(std::move(p));
    }
  }
  return front;
}

util::StatusOr<DseResult> ExploreExhaustive(const KpiEstimator& estimator,
                                            std::size_t max_states) {
  const std::size_t actors = estimator.graph().actors().size();
  const std::size_t devices = estimator.targets().size();
  double states = 1.0;
  for (std::size_t i = 0; i < actors; ++i) states *= static_cast<double>(devices);
  for (const TargetDevice& t : estimator.targets()) {
    states *= static_cast<double>(t.device.operating_points().size());
  }
  if (states > static_cast<double>(max_states)) {
    return util::Status::InvalidArgument("DSE space too large for exhaustive");
  }

  // Flattened mixed-radix enumeration replacing the old nested recursion:
  // state index i decodes to digits (a0 .. a_{n-1}, p0 .. p_{m-1}) with actor
  // 0 most significant and the last device's operating point fastest-varying
  // — exactly the order the recursive enumerator visited. A flat index space
  // shards trivially for ParallelFor, and commit in shard-index order keeps
  // the point list byte-identical to the serial sweep.
  std::vector<std::size_t> radix;
  radix.reserve(actors + devices);
  for (std::size_t a = 0; a < actors; ++a) radix.push_back(devices);
  for (const TargetDevice& t : estimator.targets()) {
    radix.push_back(t.device.operating_points().size());
  }
  std::size_t total = 1;
  for (const std::size_t r : radix) total *= r;  // <= max_states, no overflow

  const auto decode = [&](std::size_t idx, Configuration& config) {
    for (std::size_t pos = radix.size(); pos-- > 0;) {
      const std::size_t digit = idx % radix[pos];
      idx /= radix[pos];
      if (pos < actors) {
        config.actor_to_device[pos] = static_cast<int>(digit);
      } else {
        config.operating_point[pos - actors] = static_cast<int>(digit);
      }
    }
  };

  DseResult result;
  const std::size_t shards = util::ParallelShardCount(total);
  std::vector<std::vector<ParetoPoint>> shard_points(shards);
  std::vector<int> shard_evaluated(shards, 0);
  util::ParallelFor(total, [&](const util::Shard& shard) {
    Configuration config;
    config.actor_to_device.assign(actors, 0);
    config.operating_point.assign(devices, 0);
    std::vector<ParetoPoint>& out = shard_points[shard.index];
    out.reserve(shard.size());
    for (std::size_t i = shard.begin; i < shard.end; ++i) {
      decode(i, config);
      auto kpi = estimator.Estimate(config);
      ++shard_evaluated[shard.index];
      if (kpi.ok()) out.push_back(ParetoPoint{config, *kpi});
    }
  });

  std::vector<ParetoPoint> all;
  all.reserve(total);
  for (std::size_t s = 0; s < shards; ++s) {
    result.evaluated += shard_evaluated[s];
    for (ParetoPoint& p : shard_points[s]) all.push_back(std::move(p));
  }
  result.front = ParetoFilter(std::move(all));
  return result;
}

DseResult ExploreGenetic(const KpiEstimator& estimator, util::Rng& rng,
                         int population, int generations) {
  const std::size_t actors = estimator.graph().actors().size();
  const std::size_t devices = estimator.targets().size();

  const auto random_config = [&] {
    Configuration c;
    c.actor_to_device.resize(actors);
    for (int& d : c.actor_to_device) {
      d = static_cast<int>(rng.NextBounded(devices));
    }
    c.operating_point.resize(devices);
    for (std::size_t d = 0; d < devices; ++d) {
      c.operating_point[d] = static_cast<int>(rng.NextBounded(
          estimator.targets()[d].device.operating_points().size()));
    }
    return c;
  };

  // Parallel decomposition that preserves the serial RNG stream: all random
  // draws happen serially (config generation below consumes `rng` in exactly
  // the order the sequential algorithm did); only the RNG-free KPI
  // evaluations fan out, committed back in item order. Result: bit-identical
  // fronts at any worker count.
  struct Evaluated {
    KpiEstimate kpi;
    bool ok = false;
  };
  const auto evaluate_all = [&](const std::vector<Configuration>& configs) {
    return util::ParallelMap<Evaluated>(configs.size(), [&](std::size_t i) {
      auto kpi = estimator.Estimate(configs[i]);
      return kpi.ok() ? Evaluated{*kpi, true} : Evaluated{};
    });
  };

  DseResult result;
  std::vector<ParetoPoint> archive;
  std::vector<ParetoPoint> current;
  std::vector<Configuration> seeds;
  seeds.reserve(static_cast<std::size_t>(population));
  for (int i = 0; i < population; ++i) seeds.push_back(random_config());
  std::vector<Evaluated> evaluated = evaluate_all(seeds);
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    ++result.evaluated;
    if (evaluated[i].ok) {
      current.push_back(ParetoPoint{std::move(seeds[i]), evaluated[i].kpi});
    }
  }

  // Scalarized tournament with rotating weights drives diversity along the
  // front; the archive keeps every non-dominated point seen.
  for (int gen = 0; gen < generations; ++gen) {
    archive.insert(archive.end(), current.begin(), current.end());
    archive = ParetoFilter(std::move(archive));

    const double w = (gen % 5) / 4.0;  // 0..1 sweep latency<->energy emphasis
    const auto scalar = [&](const ParetoPoint& p) {
      return w * p.kpi.latency_s * 1e3 + (1 - w) * p.kpi.energy_mj +
             (p.kpi.feasible ? 0.0 : 1e9);
    };
    const auto pick = [&]() -> const ParetoPoint& {
      const ParetoPoint* best = nullptr;
      for (int i = 0; i < 3; ++i) {
        const ParetoPoint& cand = current[rng.NextBounded(current.size())];
        if (best == nullptr || scalar(cand) < scalar(*best)) best = &cand;
      }
      return *best;
    };

    // Children are bred serially (every rng draw in sequential order), then
    // evaluated as one parallel batch. Breeding always yields structurally
    // valid configs, so every child evaluates ok and one batch fills the
    // generation — the rng never needs the "retry on invalid" draws the
    // serial loop allowed for.
    std::vector<Configuration> children;
    children.reserve(static_cast<std::size_t>(population));
    while (children.size() < static_cast<std::size_t>(population)) {
      const ParetoPoint& a = pick();
      const ParetoPoint& b = pick();
      Configuration child;
      child.actor_to_device.resize(actors);
      for (std::size_t i = 0; i < actors; ++i) {
        child.actor_to_device[i] = rng.NextBool()
                                       ? a.config.actor_to_device[i]
                                       : b.config.actor_to_device[i];
        if (rng.NextBool(0.08)) {
          child.actor_to_device[i] = static_cast<int>(rng.NextBounded(devices));
        }
      }
      child.operating_point.resize(devices);
      for (std::size_t d = 0; d < devices; ++d) {
        child.operating_point[d] = rng.NextBool()
                                       ? a.config.operating_point[d]
                                       : b.config.operating_point[d];
        if (rng.NextBool(0.08)) {
          child.operating_point[d] = static_cast<int>(rng.NextBounded(
              estimator.targets()[d].device.operating_points().size()));
        }
      }
      children.push_back(std::move(child));
    }
    evaluated = evaluate_all(children);
    std::vector<ParetoPoint> next;
    next.reserve(children.size());
    for (std::size_t i = 0; i < children.size(); ++i) {
      ++result.evaluated;
      if (evaluated[i].ok) {
        next.push_back(ParetoPoint{std::move(children[i]), evaluated[i].kpi});
      }
    }
    current = std::move(next);
  }
  archive.insert(archive.end(), current.begin(), current.end());
  result.front = ParetoFilter(std::move(archive));
  return result;
}

std::vector<TargetDevice> HmpsocTargets() {
  std::vector<TargetDevice> targets;
  targets.push_back(TargetDevice{"big", continuum::MakeBigCore("big"), 8e9, 5e-6});
  targets.push_back(
      TargetDevice{"little", continuum::MakeLittleCore("little"), 8e9, 5e-6});
  targets.push_back(TargetDevice{"fpga", continuum::MakeFpgaAccelerator("fpga"),
                                 4e9, 20e-6});
  return targets;
}

}  // namespace myrtus::dpe
