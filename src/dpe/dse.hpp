// Design-space exploration (§V: "DSE support and device specialization",
// Mocasin-style mapping exploration). A configuration maps each actor of a
// dataflow application to a device (with an operating point); the KPI
// estimator predicts latency and energy; the explorer builds the Pareto
// front by exhaustive enumeration (small spaces) or genetic search.
#pragma once

#include <string>
#include <vector>

#include "continuum/device.hpp"
#include "dpe/dataflow.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace myrtus::dpe {

/// One target device the DSE may map actors onto.
struct TargetDevice {
  std::string name;
  continuum::Device device;
  /// Cost (seconds) and bytes/s of moving data to/from this device across
  /// the interconnect when producer and consumer map to different devices.
  double interconnect_bw_bps = 1e9;
  double interconnect_latency_s = 50e-6;
};

/// A point in the design space.
struct Configuration {
  std::vector<int> actor_to_device;        // per actor
  std::vector<int> operating_point;        // per device
};

/// Estimated KPIs of a configuration (one graph iteration).
struct KpiEstimate {
  double latency_s = 0.0;   // makespan along the device timeline
  double energy_mj = 0.0;
  double max_device_utilization = 0.0;
  bool feasible = true;     // accelerable-only constraint violations etc.
};

/// Deterministic analytical estimator (no simulation): per-device serialized
/// work + inter-device channel transfers.
class KpiEstimator {
 public:
  KpiEstimator(const DataflowGraph& graph, std::vector<TargetDevice> targets);

  [[nodiscard]] util::StatusOr<KpiEstimate> Estimate(
      const Configuration& config) const;
  [[nodiscard]] const std::vector<TargetDevice>& targets() const { return targets_; }
  [[nodiscard]] const DataflowGraph& graph() const { return graph_; }

 private:
  const DataflowGraph& graph_;
  std::vector<TargetDevice> targets_;
  std::vector<std::uint64_t> repetitions_;

  // Invariant lookups hoisted out of the per-configuration hot loop: every
  // (actor, device, operating point) execution estimate, per-actor
  // feasibility, and per-channel endpoint indices / transfer costs are pure
  // functions of (graph, targets), so they are computed once here and the
  // sweep's Estimate() calls reduce to table reads. Estimate() must add the
  // same doubles in the same order as the unhoisted code did — the tables
  // hold exactly the values the old inner calls produced.
  struct ChannelSpan {
    std::size_t from = 0;          // producer actor index (was a name lookup)
    std::size_t to = 0;            // consumer actor index
    double energy_mj = 0.0;        // interconnect energy if devices differ
  };
  std::vector<std::size_t> point_offset_;  // device d's first row in tables
  std::vector<double> point_latency_s_;    // [(point_offset_[d]+p)*actors + a]
  std::vector<double> point_energy_mj_;    // same layout
  std::vector<char> infeasible_;           // [d*actors + a]
  std::vector<ChannelSpan> channel_spans_;
  std::vector<double> channel_xfer_s_;     // [c*devices + producing device]
};

/// A Pareto-optimal design point.
struct ParetoPoint {
  Configuration config;
  KpiEstimate kpi;
};

struct DseResult {
  std::vector<ParetoPoint> front;  // sorted by latency ascending
  int evaluated = 0;
};

/// Non-dominated filter over (latency, energy).
std::vector<ParetoPoint> ParetoFilter(std::vector<ParetoPoint> points);

/// Exhaustive exploration (devices^actors * points^devices states); returns
/// INVALID_ARGUMENT when the space exceeds `max_states`.
util::StatusOr<DseResult> ExploreExhaustive(const KpiEstimator& estimator,
                                            std::size_t max_states = 2'000'000);

/// Genetic exploration for larger spaces.
DseResult ExploreGenetic(const KpiEstimator& estimator, util::Rng& rng,
                         int population = 48, int generations = 40);

/// Standard target set modeling an HMPSoC (big CPU, LITTLE CPU, FPGA fabric).
std::vector<TargetDevice> HmpsocTargets();

}  // namespace myrtus::dpe
