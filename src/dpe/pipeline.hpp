// The DPE pipeline facade (Fig. 4): Step 1 models and analyzes the
// application, Step 2 turns the model into an implementation plan (fusion,
// partitioning, countermeasure synthesis), and Step 3 performs node-level
// optimization (DSE, operating-point table) and emits the deployment
// specification as a CSAR package with runtime metadata — the Pillar 3 → 2
// hand-off MIRTO consumes.
#pragma once

#include <string>
#include <vector>

#include "dpe/adt.hpp"
#include "dpe/dataflow.hpp"
#include "dpe/dse.hpp"
#include "tosca/csar.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace myrtus::dpe {

/// Application-level inputs to the DPE.
struct DpeInput {
  std::string app_name;
  DataflowGraph graph;
  double deadline_ms = 100.0;       // end-to-end latency requirement
  std::string security_level = "low";  // floor before threat analysis
  const AdtNode* threat_model = nullptr;  // optional
  double defence_budget = 3.0;
  int partitions = 2;               // workload split for distribution
};

/// Everything the pipeline produced.
struct DpeOutput {
  DataflowGraph implementation;          // after fusion
  int fusions_applied = 0;
  std::vector<int> partition;            // actor -> partition
  std::vector<ParetoPoint> pareto_front; // node-level DSE result
  int chosen_point = -1;                 // index into pareto_front meeting deadline
  CountermeasurePlan countermeasures;
  std::string effective_security_level;  // possibly raised by the ADT
  tosca::CsarPackage package;            // final deployment specification
  bool deadline_met = false;
};

class DpePipeline {
 public:
  explicit DpePipeline(std::uint64_t seed) : rng_(seed, "dpe") {}

  /// Runs all three steps against the HMPSoC target set.
  util::StatusOr<DpeOutput> Run(const DpeInput& input);

 private:
  util::Rng rng_;
};

/// Builds the TOSCA service template for a partitioned application: one
/// workload node template per partition, sized from the actors it contains,
/// with security and placement policies attached.
tosca::ServiceTemplate BuildServiceTemplate(
    const std::string& app_name, const DataflowGraph& graph,
    const std::vector<int>& partition, const std::string& security_level);

}  // namespace myrtus::dpe
