// DynAA-style what-if simulation (§V: "To explore the effect of changes to
// the local rules on system's KPIs, a simulator such as DynAA can be used").
// A lightweight closed-loop load model evaluates a candidate swarm rule
// policy: N peers receive tasks and each decides — from its discretized local
// view — whether to process locally, offload to the least-loaded neighbor,
// or offload upstream. The resulting KPI score is the fitness FREVO-style
// evolution maximizes, closing the Fig. 4 loop (FREVO → local rules →
// Modelio/DynAA → MIRTO swarm agents).
#pragma once

#include "swarm/rules.hpp"
#include "util/rng.hpp"

namespace myrtus::dpe {

/// Observation space of a swarm agent's local rules:
///   f0: own queue depth bucket      (0..3)
///   f1: neighborhood load bucket    (0..2)
///   f2: task size bucket            (0..2)
/// Actions: 0 = run locally, 1 = offload to least-loaded neighbor,
///          2 = offload upstream (fog/cloud).
swarm::RuleSpec SwarmRuleSpec();

struct WhatIfConfig {
  int peers = 8;
  int steps = 400;              // simulated decision rounds
  double arrival_prob = 0.55;   // per peer per step
  double local_service = 1.0;   // work units a peer drains per step
  double upstream_latency = 4.0;  // fixed extra latency for action 2
  double offload_latency = 1.0;   // neighbor-hop latency for action 1
  double energy_weight = 0.15;
};

struct WhatIfOutcome {
  double mean_latency = 0.0;
  double energy = 0.0;
  double fitness = 0.0;  // higher is better
  int completed = 0;
};

/// Evaluates a rule policy on the what-if model (deterministic given seed).
WhatIfOutcome EvaluateRules(const swarm::RulePolicy& policy,
                            const WhatIfConfig& config, std::uint64_t seed);

/// The full FREVO loop: evolve rules against the what-if model. Returns the
/// evolved policy and its outcome.
struct SwarmRuleSynthesis {
  swarm::RulePolicy policy;
  WhatIfOutcome outcome;
  std::vector<double> fitness_history;
};
SwarmRuleSynthesis SynthesizeSwarmRules(const WhatIfConfig& config,
                                        std::uint64_t seed,
                                        const swarm::GaConfig& ga = {});

}  // namespace myrtus::dpe
