#include "dpe/whatif.hpp"

#include <algorithm>
#include <deque>
#include <vector>

namespace myrtus::dpe {
namespace {

int Bucket(double value, const std::vector<double>& thresholds) {
  int b = 0;
  for (const double t : thresholds) {
    if (value >= t) ++b;
  }
  return b;
}

}  // namespace

swarm::RuleSpec SwarmRuleSpec() {
  swarm::RuleSpec spec;
  spec.feature_levels = {4, 3, 3};
  spec.actions = 3;
  return spec;
}

WhatIfOutcome EvaluateRules(const swarm::RulePolicy& policy,
                            const WhatIfConfig& config, std::uint64_t seed) {
  util::Rng rng(seed, "whatif");

  struct Task {
    double size;
    int age = 0;
    double extra_latency = 0.0;
  };
  std::vector<std::deque<Task>> queues(static_cast<std::size_t>(config.peers));
  double total_latency = 0.0;
  double energy = 0.0;
  int completed = 0;

  for (int step = 0; step < config.steps; ++step) {
    // Arrivals.
    for (auto& q : queues) {
      if (rng.NextBool(config.arrival_prob)) {
        q.push_back(Task{rng.Uniform(0.4, 2.5)});
      }
    }
    // Neighborhood load (mean queue depth).
    double mean_depth = 0.0;
    for (const auto& q : queues) mean_depth += static_cast<double>(q.size());
    mean_depth /= static_cast<double>(queues.size());

    // Decisions on freshly arrived heads.
    for (std::size_t p = 0; p < queues.size(); ++p) {
      if (queues[p].empty()) continue;
      Task& head = queues[p].front();
      if (head.age > 0) continue;  // only decide once, on arrival at the head
      const int f0 = std::min<int>(3, static_cast<int>(queues[p].size()) / 2);
      const int f1 = Bucket(mean_depth, {1.5, 3.5});
      const int f2 = Bucket(head.size, {1.0, 1.8});
      const int action = policy.Act({f0, f1, f2});
      if (action == 1) {
        // Offload to the least-loaded neighbor.
        std::size_t target = p;
        std::size_t best_depth = queues[p].size();
        for (std::size_t q = 0; q < queues.size(); ++q) {
          if (q != p && queues[q].size() < best_depth) {
            best_depth = queues[q].size();
            target = q;
          }
        }
        if (target != p) {
          Task moved = head;
          moved.extra_latency += config.offload_latency;
          queues[p].pop_front();
          queues[target].push_back(moved);
          energy += 0.2;  // radio cost
          continue;
        }
      } else if (action == 2) {
        // Upstream has infinite capacity but fixed distance.
        total_latency += head.age + head.extra_latency +
                         config.upstream_latency + head.size * 0.25;
        energy += 0.5 + head.size * 0.1;
        ++completed;
        queues[p].pop_front();
        continue;
      }
      // action 0 (or failed offload): stays local.
    }

    // Service + aging.
    for (auto& q : queues) {
      double budget = config.local_service;
      while (!q.empty() && budget > 0) {
        Task& head = q.front();
        const double work = std::min(budget, head.size);
        head.size -= work;
        budget -= work;
        energy += work * 1.0;
        if (head.size <= 1e-9) {
          total_latency += head.age + head.extra_latency;
          ++completed;
          q.pop_front();
        }
      }
      for (Task& t : q) ++t.age;
    }
  }
  // Drain penalty: whatever is still queued counts as very late.
  for (const auto& q : queues) {
    for (const Task& t : q) {
      total_latency += t.age + t.extra_latency + 10.0;
      ++completed;
    }
  }

  WhatIfOutcome out;
  out.completed = completed;
  out.mean_latency =
      completed == 0 ? 0.0 : total_latency / static_cast<double>(completed);
  out.energy = energy;
  out.fitness = -(out.mean_latency + config.energy_weight * energy /
                                         std::max(1, completed));
  return out;
}

SwarmRuleSynthesis SynthesizeSwarmRules(const WhatIfConfig& config,
                                        std::uint64_t seed,
                                        const swarm::GaConfig& ga) {
  util::Rng rng(seed, "frevo");
  const swarm::RuleSpec spec = SwarmRuleSpec();
  swarm::EvolutionResult evolved = swarm::EvolveRules(
      spec,
      [&](const swarm::RulePolicy& policy) {
        // Average over a few seeds so rules generalize, not overfit one run.
        double f = 0.0;
        for (std::uint64_t s = 0; s < 3; ++s) {
          f += EvaluateRules(policy, config, seed + s).fitness;
        }
        return f / 3.0;
      },
      rng, ga);
  WhatIfOutcome outcome = EvaluateRules(evolved.best, config, seed);
  SwarmRuleSynthesis result{std::move(evolved.best), outcome,
                            std::move(evolved.fitness_history)};
  return result;
}

}  // namespace myrtus::dpe
