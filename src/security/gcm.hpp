// AES-GCM authenticated encryption (NIST SP 800-38D) with 96-bit nonces and
// 128-bit tags. Used as the record protection for the High (AES-256-GCM) and
// Medium (AES-128-GCM) security levels of Table II.
#pragma once

#include "util/bytes.hpp"
#include "util/status.hpp"

namespace myrtus::security {

/// Encrypts `plaintext` and authenticates it together with `aad`.
/// Returns ciphertext || 16-byte tag.
util::StatusOr<util::Bytes> AesGcmSeal(const util::Bytes& key,
                                       const util::Bytes& nonce12,
                                       const util::Bytes& aad,
                                       const util::Bytes& plaintext);

/// Verifies and decrypts a sealed buffer. Fails with UNAUTHENTICATED when the
/// tag does not match (ciphertext or aad tampered, wrong key/nonce).
util::StatusOr<util::Bytes> AesGcmOpen(const util::Bytes& key,
                                       const util::Bytes& nonce12,
                                       const util::Bytes& aad,
                                       const util::Bytes& sealed);

}  // namespace myrtus::security
