#include "security/cost_model.hpp"

namespace myrtus::security {

std::string_view AsymAlgName(AsymAlg alg) {
  switch (alg) {
    case AsymAlg::kRsa2048: return "RSA-2048";
    case AsymAlg::kEcdsaP256: return "ECDSA-P256";
    case AsymAlg::kDilithium2: return "CRYSTALS-Dilithium2";
    case AsymAlg::kDilithium3: return "CRYSTALS-Dilithium3";
    case AsymAlg::kFalcon512: return "FALCON-512";
    case AsymAlg::kKyber512: return "CRYSTALS-Kyber512";
    case AsymAlg::kKyber768: return "CRYSTALS-Kyber768";
  }
  return "?";
}

const AsymCost& CostOf(AsymAlg alg) {
  // keygen / sign / verify / encap / decap (us @ 1 GHz), pk bytes, artifact.
  static const AsymCost kRsa{105'000, 1'600, 48, 42, 1'550, 270, 256};
  static const AsymCost kEcdsa{38, 42, 110, 0, 0, 64, 64};
  static const AsymCost kDil2{36, 95, 34, 0, 0, 1'312, 2'420};
  static const AsymCost kDil3{58, 150, 55, 0, 0, 1'952, 3'293};
  static const AsymCost kFalcon{8'200, 270, 38, 0, 0, 897, 666};
  static const AsymCost kKyber512{22, 0, 0, 28, 23, 800, 768};
  static const AsymCost kKyber768{33, 0, 0, 40, 32, 1'184, 1'088};
  switch (alg) {
    case AsymAlg::kRsa2048: return kRsa;
    case AsymAlg::kEcdsaP256: return kEcdsa;
    case AsymAlg::kDilithium2: return kDil2;
    case AsymAlg::kDilithium3: return kDil3;
    case AsymAlg::kFalcon512: return kFalcon;
    case AsymAlg::kKyber512: return kKyber512;
    case AsymAlg::kKyber768: return kKyber768;
  }
  return kEcdsa;
}

std::string_view SymAlgName(SymAlg alg) {
  switch (alg) {
    case SymAlg::kAes256Gcm: return "AES-256-GCM";
    case SymAlg::kAes128Gcm: return "AES-128-GCM";
    case SymAlg::kAscon128: return "ASCON-128";
    case SymAlg::kSha512: return "SHA-512";
    case SymAlg::kSha256: return "SHA-256";
    case SymAlg::kAsconHash: return "ASCON-Hash";
  }
  return "?";
}

const SymCost& CostOf(SymAlg alg) {
  // Software (no AES-NI) cycles/byte on a small in-order 64-bit core, plus a
  // fixed per-message setup cost (key schedule / init permutation).
  static const SymCost kAes256{22.0, 1'400};
  static const SymCost kAes128{16.0, 1'100};
  static const SymCost kAscon{9.0, 350};
  static const SymCost kSha512{8.0, 700};
  static const SymCost kSha256{12.0, 500};
  static const SymCost kAsconH{11.0, 350};
  switch (alg) {
    case SymAlg::kAes256Gcm: return kAes256;
    case SymAlg::kAes128Gcm: return kAes128;
    case SymAlg::kAscon128: return kAscon;
    case SymAlg::kSha512: return kSha512;
    case SymAlg::kSha256: return kSha256;
    case SymAlg::kAsconHash: return kAsconH;
  }
  return kAes128;
}

double SymLatencyUs(SymAlg alg, std::size_t bytes, double core_ghz) {
  const SymCost& c = CostOf(alg);
  const double cycles =
      c.per_message_overhead_cycles + c.cycles_per_byte * static_cast<double>(bytes);
  return cycles / (core_ghz * 1e3);
}

double AsymLatencyUs(double reference_us, double core_ghz) {
  return reference_us / core_ghz;
}

}  // namespace myrtus::security
