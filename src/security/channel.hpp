// Secure channel: a TLS-like handshake + record layer binding Table II's
// suites to the real symmetric implementations. The asymmetric half of the
// handshake is a functional Diffie-Hellman over a 61-bit Mersenne prime group
// (a stand-in documented in DESIGN.md — the *timing* of production-grade
// primitives is supplied by cost_model.hpp), expanded through HKDF into
// directional AEAD keys. Records carry sequence numbers authenticated as AAD,
// so replayed or reordered records fail to open.
#pragma once

#include <cstdint>
#include <string>

#include "security/policy.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace myrtus::security {

/// Functional DH over Z_p*, p = 2^61 - 1, generator 3. NOT secure — a
/// simulator stand-in with correct algebraic behaviour (commutativity,
/// key-agreement semantics).
class SimDh {
 public:
  struct KeyPair {
    std::uint64_t private_key;
    std::uint64_t public_key;
  };
  static KeyPair Generate(util::Rng& rng);
  /// shared = peer_public ^ private mod p.
  static std::uint64_t Derive(std::uint64_t peer_public, std::uint64_t private_key);
  static std::uint64_t ModPow(std::uint64_t base, std::uint64_t exp);
};

/// One endpoint of an established channel. Both endpoints of a pair derive
/// identical keys from the DH secret; the `is_initiator` flag swaps the
/// directional keys so initiator->responder and responder->initiator records
/// use distinct keys.
class SecureChannel {
 public:
  /// Performs the handshake math directly (both sides in one call — the
  /// network substrate simulates the message exchanges) and returns the two
  /// connected endpoints (see ChannelPair below).
  static util::StatusOr<struct ChannelPair> Establish(SecurityLevel level,
                                                      util::Rng& rng);

  /// Seals a message with the channel's send key; the record sequence number
  /// is authenticated and auto-incremented.
  util::StatusOr<util::Bytes> Seal(const util::Bytes& plaintext);
  /// Opens the next record; fails on tamper, replay, or reorder.
  util::StatusOr<util::Bytes> Open(const util::Bytes& record);

  [[nodiscard]] SecurityLevel level() const { return level_; }
  [[nodiscard]] std::uint64_t sent_records() const { return send_seq_; }
  [[nodiscard]] std::uint64_t received_records() const { return recv_seq_; }

 private:
  SecureChannel(SecurityLevel level, util::Bytes send_key, util::Bytes recv_key,
                util::Bytes nonce_salt);

  util::Bytes NonceFor(std::uint64_t seq) const;

  SecurityLevel level_;
  util::Bytes send_key_;
  util::Bytes recv_key_;
  util::Bytes nonce_salt_;  // 12-byte base; XORed with the sequence number
  std::uint64_t send_seq_ = 0;
  std::uint64_t recv_seq_ = 0;
};

/// The two connected endpoints produced by SecureChannel::Establish.
struct ChannelPair {
  SecureChannel initiator;
  SecureChannel responder;
};

}  // namespace myrtus::security
