// SHA-256 and SHA-512 (FIPS 180-4). These are the "Medium" and "High"
// security-level hash primitives of Table II. Incremental (init/update/final)
// and one-shot interfaces are provided; test vectors from FIPS 180-2 appendix
// are checked in tests/security/sha2_test.cpp.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace myrtus::security {

/// Incremental SHA-256.
class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  Sha256() { Reset(); }

  void Reset();
  void Update(const std::uint8_t* data, std::size_t len);
  void Update(const util::Bytes& data) { Update(data.data(), data.size()); }
  /// Finalizes and returns the 32-byte digest. The object must be Reset()
  /// before reuse.
  util::Bytes Final();

  static util::Bytes Digest(const util::Bytes& data);
  static util::Bytes Digest(const std::uint8_t* data, std::size_t len);

 private:
  void ProcessBlock(const std::uint8_t* block);
  std::array<std::uint32_t, 8> h_{};
  std::array<std::uint8_t, 64> buf_{};
  std::size_t buf_len_ = 0;
  std::uint64_t total_len_ = 0;
};

/// Incremental SHA-512.
class Sha512 {
 public:
  static constexpr std::size_t kDigestSize = 64;
  Sha512() { Reset(); }

  void Reset();
  void Update(const std::uint8_t* data, std::size_t len);
  void Update(const util::Bytes& data) { Update(data.data(), data.size()); }
  util::Bytes Final();

  static util::Bytes Digest(const util::Bytes& data);
  static util::Bytes Digest(const std::uint8_t* data, std::size_t len);

 private:
  void ProcessBlock(const std::uint8_t* block);
  std::array<std::uint64_t, 8> h_{};
  std::array<std::uint8_t, 128> buf_{};
  std::size_t buf_len_ = 0;
  std::uint64_t total_len_ = 0;  // bytes; < 2^61 is ample for simulation use
};

}  // namespace myrtus::security
