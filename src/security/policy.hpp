// Table II of the paper as executable policy: three security levels, each
// binding an encryption primitive, an authentication (signature) scheme, a
// key-exchange mechanism, and a hash. The policy engine decides whether a
// node can host a workload with a given requirement and what a handshake at
// each level costs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "security/cost_model.hpp"
#include "util/status.hpp"

namespace myrtus::security {

/// MYRTUS security levels (Table II). Ordered: Low < Medium < High.
enum class SecurityLevel : std::uint8_t {
  kLow = 0,     // lightweight non-PQC for constrained components
  kMedium = 1,  // non-PQC, adequate for current threats
  kHigh = 2,    // post-quantum resistant
};

/// Number of levels, for fixed-size per-level tables.
inline constexpr std::size_t kNumSecurityLevels = 3;

std::string_view SecurityLevelName(SecurityLevel level);
util::StatusOr<SecurityLevel> ParseSecurityLevel(std::string_view name);

/// The concrete primitive suite a level implies (one row of Table II).
struct SecuritySuite {
  SecurityLevel level;
  SymAlg encryption;       // record protection
  AsymAlg authentication;  // digital signature
  AsymAlg key_exchange;    // KEM / key agreement
  SymAlg hashing;
};

/// Returns the Table II suite for a level.
const SecuritySuite& SuiteFor(SecurityLevel level);

/// True when a node certified for `offered` may run a workload demanding
/// `required` (levels are upward-compatible: High hardware satisfies Low
/// demands, never the reverse).
constexpr bool Satisfies(SecurityLevel offered, SecurityLevel required) {
  return static_cast<std::uint8_t>(offered) >= static_cast<std::uint8_t>(required);
}

/// Modeled one-way handshake latency at `level` on a core of `core_ghz`:
/// signature sign+verify plus KEM keygen+encap+decap (or DH equivalent).
double HandshakeLatencyUs(SecurityLevel level, double core_ghz);

/// Total handshake bytes on the wire (public keys + signatures + KEM
/// ciphertext), which the network substrate charges as traffic.
std::uint64_t HandshakeWireBytes(SecurityLevel level);

/// Modeled record-protection latency for a payload at `level`.
double RecordLatencyUs(SecurityLevel level, std::size_t payload_bytes,
                       double core_ghz);

}  // namespace myrtus::security
