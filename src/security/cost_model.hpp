// Calibrated cost & size models for the asymmetric primitives of Table II.
//
// Substitution note (see DESIGN.md): implementing lattice-based PQC and
// big-integer RSA/ECDSA from scratch is out of scope, but the *orchestration*
// experiments only need their latency/bandwidth footprint. The tables below
// use published software-benchmark figures (order-of-magnitude, mid-range
// 1 GHz-class reference core) so that the relative ordering the paper's
// security levels imply — PQC > classical > lightweight — is preserved. The
// symmetric/hash primitives are real implementations and are *measured*, not
// modeled.
#pragma once

#include <cstdint>
#include <string_view>

namespace myrtus::security {

/// Asymmetric algorithm identifiers used across Table II's three levels.
enum class AsymAlg : std::uint8_t {
  kRsa2048,
  kEcdsaP256,
  kDilithium2,
  kDilithium3,
  kFalcon512,
  kKyber512,
  kKyber768,
};

std::string_view AsymAlgName(AsymAlg alg);

/// Latency (microseconds on the 1 GHz reference core) and wire sizes (bytes).
/// Operations that do not apply to an algorithm (e.g. encapsulation for a
/// signature scheme) are zero.
struct AsymCost {
  double keygen_us = 0;
  double sign_us = 0;
  double verify_us = 0;
  double encap_us = 0;
  double decap_us = 0;
  std::uint32_t public_key_bytes = 0;
  std::uint32_t artifact_bytes = 0;  // signature or KEM ciphertext
};

/// Reference-core cost of an asymmetric algorithm.
const AsymCost& CostOf(AsymAlg alg);

/// Symmetric/hash software throughput model in cycles/byte on a small in-order
/// core. Used only to *scale* the real primitives onto simulated devices with
/// different clock rates; host-measured throughput drives the benches.
struct SymCost {
  double cycles_per_byte = 0;
  double per_message_overhead_cycles = 0;
};

enum class SymAlg : std::uint8_t {
  kAes256Gcm,
  kAes128Gcm,
  kAscon128,
  kSha512,
  kSha256,
  kAsconHash,
};

std::string_view SymAlgName(SymAlg alg);
const SymCost& CostOf(SymAlg alg);

/// Time in microseconds for `bytes` of symmetric processing on a core running
/// at `core_ghz`.
double SymLatencyUs(SymAlg alg, std::size_t bytes, double core_ghz);

/// Time in microseconds for one asymmetric operation scaled to `core_ghz`
/// (reference table is calibrated at 1 GHz).
double AsymLatencyUs(double reference_us, double core_ghz);

}  // namespace myrtus::security
