#include "security/ascon.hpp"

#include <cstring>

namespace myrtus::security {
namespace {

using util::Bytes;

inline std::uint64_t Ror(std::uint64_t x, int n) {
  return (x >> n) | (x << (64 - n));
}

constexpr std::uint64_t kAsconAeadIv = 0x80400c0600000000ULL;  // Ascon-128
constexpr std::uint64_t kAsconHashIv = 0x00400c0000000100ULL;  // Ascon-Hash

/// Loads up to 8 bytes into the high-order positions of a big-endian word.
std::uint64_t LoadPartialBe(const std::uint8_t* p, std::size_t len) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < len; ++i) {
    v |= std::uint64_t{p[i]} << (56 - 8 * i);
  }
  return v;
}

void StorePartialBe(std::uint64_t v, std::uint8_t* p, std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) {
    p[i] = static_cast<std::uint8_t>(v >> (56 - 8 * i));
  }
}

}  // namespace

void AsconState::Permute(int rounds) {
  // Round constants for the 12-round permutation; p^b uses the last b.
  static constexpr std::uint64_t kRc[12] = {0xf0, 0xe1, 0xd2, 0xc3, 0xb4, 0xa5,
                                            0x96, 0x87, 0x78, 0x69, 0x5a, 0x4b};
  auto& [x0, x1, x2, x3, x4] = x;
  for (int r = 12 - rounds; r < 12; ++r) {
    // Addition of round constant.
    x2 ^= kRc[r];
    // Substitution layer (bit-sliced 5-bit S-box).
    x0 ^= x4;
    x4 ^= x3;
    x2 ^= x1;
    std::uint64_t t0 = ~x0 & x1;
    std::uint64_t t1 = ~x1 & x2;
    std::uint64_t t2 = ~x2 & x3;
    std::uint64_t t3 = ~x3 & x4;
    std::uint64_t t4 = ~x4 & x0;
    x0 ^= t1;
    x1 ^= t2;
    x2 ^= t3;
    x3 ^= t4;
    x4 ^= t0;
    x1 ^= x0;
    x0 ^= x4;
    x3 ^= x2;
    x2 = ~x2;
    // Linear diffusion layer.
    x0 ^= Ror(x0, 19) ^ Ror(x0, 28);
    x1 ^= Ror(x1, 61) ^ Ror(x1, 39);
    x2 ^= Ror(x2, 1) ^ Ror(x2, 6);
    x3 ^= Ror(x3, 10) ^ Ror(x3, 17);
    x4 ^= Ror(x4, 7) ^ Ror(x4, 41);
  }
}

namespace {

struct AeadCore {
  AsconState s;
  std::uint64_t k0, k1;

  AeadCore(const Bytes& key, const Bytes& nonce) {
    k0 = util::LoadBe64(key.data());
    k1 = util::LoadBe64(key.data() + 8);
    const std::uint64_t n0 = util::LoadBe64(nonce.data());
    const std::uint64_t n1 = util::LoadBe64(nonce.data() + 8);
    s.x = {kAsconAeadIv, k0, k1, n0, n1};
    s.Permute(12);
    s.x[3] ^= k0;
    s.x[4] ^= k1;
  }

  void AbsorbAad(const Bytes& aad) {
    if (!aad.empty()) {
      std::size_t i = 0;
      for (; i + 8 <= aad.size(); i += 8) {
        s.x[0] ^= util::LoadBe64(aad.data() + i);
        s.Permute(6);
      }
      // Final (possibly empty) partial block with 10* padding.
      std::uint64_t last = LoadPartialBe(aad.data() + i, aad.size() - i);
      last |= 0x80ULL << (56 - 8 * (aad.size() - i));
      s.x[0] ^= last;
      s.Permute(6);
    }
    s.x[4] ^= 1;  // domain separation
  }

  Bytes FinalizeTag() {
    s.x[1] ^= k0;
    s.x[2] ^= k1;
    s.Permute(12);
    Bytes tag(16);
    util::StoreBe64(s.x[3] ^ k0, tag.data());
    util::StoreBe64(s.x[4] ^ k1, tag.data() + 8);
    return tag;
  }
};

}  // namespace

util::StatusOr<Bytes> Ascon128Seal(const Bytes& key16, const Bytes& nonce16,
                                   const Bytes& aad, const Bytes& plaintext) {
  if (key16.size() != 16 || nonce16.size() != 16) {
    return util::Status::InvalidArgument("ASCON-128 needs 16-byte key and nonce");
  }
  AeadCore core(key16, nonce16);
  core.AbsorbAad(aad);

  Bytes ct(plaintext.size() + 16);
  std::size_t i = 0;
  for (; i + 8 <= plaintext.size(); i += 8) {
    core.s.x[0] ^= util::LoadBe64(plaintext.data() + i);
    util::StoreBe64(core.s.x[0], ct.data() + i);
    core.s.Permute(6);
  }
  const std::size_t rem = plaintext.size() - i;
  core.s.x[0] ^= LoadPartialBe(plaintext.data() + i, rem);
  core.s.x[0] ^= 0x80ULL << (56 - 8 * rem);
  StorePartialBe(core.s.x[0], ct.data() + i, rem);

  const Bytes tag = core.FinalizeTag();
  std::memcpy(ct.data() + plaintext.size(), tag.data(), 16);
  return ct;
}

util::StatusOr<Bytes> Ascon128Open(const Bytes& key16, const Bytes& nonce16,
                                   const Bytes& aad, const Bytes& sealed) {
  if (key16.size() != 16 || nonce16.size() != 16) {
    return util::Status::InvalidArgument("ASCON-128 needs 16-byte key and nonce");
  }
  if (sealed.size() < 16) {
    return util::Status::InvalidArgument("sealed buffer shorter than tag");
  }
  AeadCore core(key16, nonce16);
  core.AbsorbAad(aad);

  const std::size_t ct_len = sealed.size() - 16;
  Bytes pt(ct_len);
  std::size_t i = 0;
  for (; i + 8 <= ct_len; i += 8) {
    const std::uint64_t c = util::LoadBe64(sealed.data() + i);
    util::StoreBe64(core.s.x[0] ^ c, pt.data() + i);
    core.s.x[0] = c;
    core.s.Permute(6);
  }
  const std::size_t rem = ct_len - i;
  const std::uint64_t c = LoadPartialBe(sealed.data() + i, rem);
  StorePartialBe(core.s.x[0] ^ c, pt.data() + i, rem);
  // Replace the processed bytes of the rate with the ciphertext and apply
  // the 10* padding at position `rem`.
  const std::uint64_t keep_mask = rem == 0 ? ~0ULL : (~0ULL >> (8 * rem));
  core.s.x[0] = c | (core.s.x[0] & keep_mask);
  core.s.x[0] ^= 0x80ULL << (56 - 8 * rem);

  const Bytes expected_tag = core.FinalizeTag();
  const Bytes provided_tag(sealed.end() - 16, sealed.end());
  if (!util::ConstantTimeEqual(expected_tag, provided_tag)) {
    return util::Status::Unauthenticated("ASCON tag mismatch");
  }
  return pt;
}

Bytes AsconHash(const Bytes& data) {
  AsconState s;
  s.x = {kAsconHashIv, 0, 0, 0, 0};
  s.Permute(12);

  std::size_t i = 0;
  for (; i + 8 <= data.size(); i += 8) {
    s.x[0] ^= util::LoadBe64(data.data() + i);
    s.Permute(12);
  }
  const std::size_t rem = data.size() - i;
  s.x[0] ^= LoadPartialBe(data.data() + i, rem);
  s.x[0] ^= 0x80ULL << (56 - 8 * rem);

  Bytes out(32);
  for (int block = 0; block < 4; ++block) {
    s.Permute(12);
    util::StoreBe64(s.x[0], out.data() + 8 * block);
  }
  return out;
}

}  // namespace myrtus::security
