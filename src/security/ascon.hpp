// ASCON-128 AEAD and ASCON-Hash (the NIST Lightweight Cryptography winner),
// the "Low" security-level primitives of Table II for constrained edge
// components. Implemented from the v1.2 specification: 320-bit state, 12- and
// 6-round permutations, 64-bit rate.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"
#include "util/status.hpp"

namespace myrtus::security {

/// The 320-bit ASCON permutation state with p^rounds application.
struct AsconState {
  std::array<std::uint64_t, 5> x{};

  /// Applies `rounds` rounds (<=12) of the permutation, using the final
  /// `rounds` round constants as the spec requires for p^b.
  void Permute(int rounds);
};

/// ASCON-128: 128-bit key, 128-bit nonce, 64-bit rate, 128-bit tag.
/// Seal returns ciphertext || 16-byte tag; Open verifies then decrypts.
util::StatusOr<util::Bytes> Ascon128Seal(const util::Bytes& key16,
                                         const util::Bytes& nonce16,
                                         const util::Bytes& aad,
                                         const util::Bytes& plaintext);
util::StatusOr<util::Bytes> Ascon128Open(const util::Bytes& key16,
                                         const util::Bytes& nonce16,
                                         const util::Bytes& aad,
                                         const util::Bytes& sealed);

/// ASCON-Hash: 256-bit digest, 64-bit rate, 12-round permutation.
util::Bytes AsconHash(const util::Bytes& data);

}  // namespace myrtus::security
