// HMAC (RFC 2104) over SHA-256/SHA-512, plus HKDF-style key derivation used
// by the secure-channel handshake to expand a DH shared secret into record
// keys. RFC 4231 test vectors are checked in tests.
#pragma once

#include <string_view>

#include "util/bytes.hpp"

namespace myrtus::security {

/// HMAC-SHA-256 of `data` under `key` (any key length).
util::Bytes HmacSha256(const util::Bytes& key, const util::Bytes& data);
/// HMAC-SHA-512 of `data` under `key`.
util::Bytes HmacSha512(const util::Bytes& key, const util::Bytes& data);

/// HKDF (RFC 5869) with SHA-256: extract-then-expand to `out_len` bytes.
util::Bytes HkdfSha256(const util::Bytes& ikm, const util::Bytes& salt,
                       std::string_view info, std::size_t out_len);

}  // namespace myrtus::security
