#include "security/hmac.hpp"

#include "security/sha2.hpp"

namespace myrtus::security {
namespace {

using util::Bytes;

template <typename Hash>
Bytes HmacImpl(const Bytes& key, const Bytes& data, std::size_t block_size) {
  Bytes k = key;
  if (k.size() > block_size) {
    k = Hash::Digest(k);
  }
  k.resize(block_size, 0);
  Bytes ipad(block_size);
  Bytes opad(block_size);
  for (std::size_t i = 0; i < block_size; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }
  Hash inner;
  inner.Update(ipad);
  inner.Update(data);
  const Bytes inner_digest = inner.Final();
  Hash outer;
  outer.Update(opad);
  outer.Update(inner_digest);
  return outer.Final();
}

}  // namespace

Bytes HmacSha256(const Bytes& key, const Bytes& data) {
  return HmacImpl<Sha256>(key, data, 64);
}

Bytes HmacSha512(const Bytes& key, const Bytes& data) {
  return HmacImpl<Sha512>(key, data, 128);
}

Bytes HkdfSha256(const Bytes& ikm, const Bytes& salt, std::string_view info,
                 std::size_t out_len) {
  // Extract.
  Bytes actual_salt = salt.empty() ? Bytes(Sha256::kDigestSize, 0) : salt;
  const Bytes prk = HmacSha256(actual_salt, ikm);
  // Expand.
  Bytes out;
  out.reserve(out_len);
  Bytes t;
  std::uint8_t counter = 1;
  while (out.size() < out_len) {
    Bytes block = t;
    block.insert(block.end(), info.begin(), info.end());
    block.push_back(counter++);
    t = HmacSha256(prk, block);
    out.insert(out.end(), t.begin(), t.end());
  }
  out.resize(out_len);
  return out;
}

}  // namespace myrtus::security
