#include "security/policy.hpp"

namespace myrtus::security {

std::string_view SecurityLevelName(SecurityLevel level) {
  switch (level) {
    case SecurityLevel::kLow: return "low";
    case SecurityLevel::kMedium: return "medium";
    case SecurityLevel::kHigh: return "high";
  }
  return "?";
}

util::StatusOr<SecurityLevel> ParseSecurityLevel(std::string_view name) {
  if (name == "low") return SecurityLevel::kLow;
  if (name == "medium") return SecurityLevel::kMedium;
  if (name == "high") return SecurityLevel::kHigh;
  return util::Status::InvalidArgument("unknown security level: " +
                                       std::string(name));
}

const SecuritySuite& SuiteFor(SecurityLevel level) {
  // Table II rows. High uses the NIST PQC standards (Dilithium for signing,
  // Kyber for KEM); Medium uses classical RSA/ECDSA; Low uses lightweight
  // primitives with ECDSA for both auth and key agreement as the paper lists.
  static const SecuritySuite kHigh{SecurityLevel::kHigh, SymAlg::kAes256Gcm,
                                   AsymAlg::kDilithium3, AsymAlg::kKyber768,
                                   SymAlg::kSha512};
  static const SecuritySuite kMedium{SecurityLevel::kMedium, SymAlg::kAes128Gcm,
                                     AsymAlg::kEcdsaP256, AsymAlg::kRsa2048,
                                     SymAlg::kSha256};
  static const SecuritySuite kLow{SecurityLevel::kLow, SymAlg::kAscon128,
                                  AsymAlg::kEcdsaP256, AsymAlg::kEcdsaP256,
                                  SymAlg::kAsconHash};
  switch (level) {
    case SecurityLevel::kHigh: return kHigh;
    case SecurityLevel::kMedium: return kMedium;
    case SecurityLevel::kLow: return kLow;
  }
  return kMedium;
}

double HandshakeLatencyUs(SecurityLevel level, double core_ghz) {
  const SecuritySuite& suite = SuiteFor(level);
  const AsymCost& sig = CostOf(suite.authentication);
  const AsymCost& kex = CostOf(suite.key_exchange);
  double us = AsymLatencyUs(sig.sign_us + sig.verify_us, core_ghz);
  if (kex.encap_us > 0) {
    us += AsymLatencyUs(kex.encap_us + kex.decap_us, core_ghz);
  } else {
    // Signature-style key agreement (ephemeral ECDH modeled as two keygens
    // plus a shared-point computation ~= one verify).
    us += AsymLatencyUs(2 * kex.keygen_us + kex.verify_us, core_ghz);
  }
  return us;
}

std::uint64_t HandshakeWireBytes(SecurityLevel level) {
  const SecuritySuite& suite = SuiteFor(level);
  const AsymCost& sig = CostOf(suite.authentication);
  const AsymCost& kex = CostOf(suite.key_exchange);
  // Both sides send a public key; the initiator sends a KEM ciphertext (or an
  // ephemeral public key) and each side sends one signature.
  return 2ULL * kex.public_key_bytes + kex.artifact_bytes +
         2ULL * (sig.public_key_bytes + sig.artifact_bytes);
}

double RecordLatencyUs(SecurityLevel level, std::size_t payload_bytes,
                       double core_ghz) {
  const SecuritySuite& suite = SuiteFor(level);
  return SymLatencyUs(suite.encryption, payload_bytes, core_ghz);
}

}  // namespace myrtus::security
