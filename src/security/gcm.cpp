#include "security/gcm.hpp"

#include <array>
#include <cstring>

#include "security/aes.hpp"

namespace myrtus::security {
namespace {

using util::Bytes;

struct Block {
  std::uint64_t hi = 0;  // bits 127..64 (big-endian bit order per SP 800-38D)
  std::uint64_t lo = 0;

  static Block FromBytes(const std::uint8_t* p) {
    return {util::LoadBe64(p), util::LoadBe64(p + 8)};
  }
  void ToBytes(std::uint8_t* p) const {
    util::StoreBe64(hi, p);
    util::StoreBe64(lo, p + 8);
  }
  Block operator^(const Block& o) const { return {hi ^ o.hi, lo ^ o.lo}; }
};

/// GF(2^128) multiplication, right-shift algorithm from SP 800-38D §6.3.
Block GfMul(Block x, Block y) {
  Block z{0, 0};
  Block v = y;
  for (int i = 0; i < 128; ++i) {
    const std::uint64_t bit =
        (i < 64) ? (x.hi >> (63 - i)) & 1 : (x.lo >> (127 - i)) & 1;
    if (bit) {
      z.hi ^= v.hi;
      z.lo ^= v.lo;
    }
    const bool lsb = (v.lo & 1) != 0;
    v.lo = (v.lo >> 1) | (v.hi << 63);
    v.hi >>= 1;
    if (lsb) v.hi ^= 0xe100000000000000ULL;  // R = 11100001 || 0^120
  }
  return z;
}

class Ghash {
 public:
  explicit Ghash(Block h) : h_(h) {}

  void Update(const std::uint8_t* data, std::size_t len) {
    // Processes whole stream zero-padded to 16-byte blocks per section.
    std::size_t i = 0;
    for (; i + 16 <= len; i += 16) {
      Absorb(Block::FromBytes(data + i));
    }
    if (i < len) {
      std::uint8_t padded[16] = {};
      std::memcpy(padded, data + i, len - i);
      Absorb(Block::FromBytes(padded));
    }
  }

  void AbsorbLengths(std::uint64_t aad_bits, std::uint64_t ct_bits) {
    Absorb(Block{aad_bits, ct_bits});
  }

  [[nodiscard]] Block digest() const { return y_; }

 private:
  void Absorb(Block x) { y_ = GfMul(y_ ^ x, h_); }
  Block h_;
  Block y_{0, 0};
};

struct GcmContext {
  Aes aes;
  Block h;
  std::array<std::uint8_t, 16> j0;
};

util::StatusOr<GcmContext> Setup(const Bytes& key, const Bytes& nonce12) {
  if (nonce12.size() != 12) {
    return util::Status::InvalidArgument("GCM nonce must be 12 bytes");
  }
  auto aes = Aes::Create(key);
  if (!aes.ok()) return aes.status();
  std::uint8_t zero[16] = {};
  std::uint8_t hbytes[16];
  aes->EncryptBlock(zero, hbytes);
  std::array<std::uint8_t, 16> j0{};
  std::memcpy(j0.data(), nonce12.data(), 12);
  j0[15] = 1;
  return GcmContext{std::move(aes).value(), Block::FromBytes(hbytes), j0};
}

Bytes ComputeTag(const GcmContext& ctx, const Bytes& aad, const Bytes& ct) {
  Ghash ghash(ctx.h);
  ghash.Update(aad.data(), aad.size());
  ghash.Update(ct.data(), ct.size());
  ghash.AbsorbLengths(static_cast<std::uint64_t>(aad.size()) * 8,
                      static_cast<std::uint64_t>(ct.size()) * 8);
  std::uint8_t s[16];
  ghash.digest().ToBytes(s);
  std::uint8_t ekj0[16];
  ctx.aes.EncryptBlock(ctx.j0.data(), ekj0);
  Bytes tag(16);
  for (int i = 0; i < 16; ++i) tag[static_cast<std::size_t>(i)] = s[i] ^ ekj0[i];
  return tag;
}

}  // namespace

util::StatusOr<Bytes> AesGcmSeal(const Bytes& key, const Bytes& nonce12,
                                 const Bytes& aad, const Bytes& plaintext) {
  auto ctx = Setup(key, nonce12);
  if (!ctx.ok()) return ctx.status();
  auto ctr = AesCtr::Create(key, nonce12);
  if (!ctr.ok()) return ctr.status();
  // AesCtr starts its counter at 1 (== J0); GCM encrypts payload from
  // inc32(J0), so discard the first keystream block.
  Bytes skip(16, 0);
  ctr->Crypt(skip.data(), skip.size());
  Bytes ct = ctr->Crypt(plaintext);
  Bytes tag = ComputeTag(*ctx, aad, ct);
  ct.insert(ct.end(), tag.begin(), tag.end());
  return ct;
}

util::StatusOr<Bytes> AesGcmOpen(const Bytes& key, const Bytes& nonce12,
                                 const Bytes& aad, const Bytes& sealed) {
  if (sealed.size() < 16) {
    return util::Status::InvalidArgument("sealed buffer shorter than GCM tag");
  }
  auto ctx = Setup(key, nonce12);
  if (!ctx.ok()) return ctx.status();
  Bytes ct(sealed.begin(), sealed.end() - 16);
  const Bytes provided_tag(sealed.end() - 16, sealed.end());
  const Bytes expected_tag = ComputeTag(*ctx, aad, ct);
  if (!util::ConstantTimeEqual(provided_tag, expected_tag)) {
    return util::Status::Unauthenticated("GCM tag mismatch");
  }
  auto ctr = AesCtr::Create(key, nonce12);
  if (!ctr.ok()) return ctr.status();
  Bytes skip(16, 0);
  ctr->Crypt(skip.data(), skip.size());
  return ctr->Crypt(ct);
}

}  // namespace myrtus::security
