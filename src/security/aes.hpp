// AES-128/192/256 block cipher (FIPS 197), software table-free implementation
// (S-box lookups only), plus CTR-mode stream encryption. AES-256 and AES-128
// are the "High" and "Medium" security-level ciphers of Table II. FIPS-197
// Appendix C known-answer vectors are checked in tests.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"
#include "util/status.hpp"

namespace myrtus::security {

/// AES block cipher with a fixed key. Encrypts/decrypts single 16-byte
/// blocks; modes of operation are layered on top (Ctr, Gcm).
class Aes {
 public:
  static constexpr std::size_t kBlockSize = 16;

  /// Key must be 16, 24 or 32 bytes (AES-128/192/256).
  static util::StatusOr<Aes> Create(const util::Bytes& key);

  void EncryptBlock(const std::uint8_t in[16], std::uint8_t out[16]) const;
  void DecryptBlock(const std::uint8_t in[16], std::uint8_t out[16]) const;

  [[nodiscard]] int rounds() const { return rounds_; }

 private:
  Aes() = default;
  void ExpandKey(const std::uint8_t* key, std::size_t key_len);
  // Maximum schedule: AES-256 has 15 round keys of 16 bytes.
  std::array<std::uint32_t, 60> round_keys_{};
  int rounds_ = 0;
};

/// AES-CTR keystream encryption. CTR is its own inverse; `Crypt` both
/// encrypts and decrypts. The 16-byte counter block is iv(12B) || ctr(4B).
class AesCtr {
 public:
  static util::StatusOr<AesCtr> Create(const util::Bytes& key,
                                       const util::Bytes& iv12);
  /// XORs the keystream into `data` in place.
  void Crypt(std::uint8_t* data, std::size_t len);
  util::Bytes Crypt(const util::Bytes& data);

 private:
  AesCtr(Aes aes, std::array<std::uint8_t, 16> counter)
      : aes_(std::move(aes)), counter_(counter) {}
  void NextKeystreamBlock();
  Aes aes_;
  std::array<std::uint8_t, 16> counter_{};
  std::array<std::uint8_t, 16> keystream_{};
  std::size_t keystream_used_ = 16;  // forces generation on first byte
};

}  // namespace myrtus::security
