#include "security/channel.hpp"

#include "security/ascon.hpp"
#include "security/gcm.hpp"
#include "security/hmac.hpp"

namespace myrtus::security {
namespace {

constexpr std::uint64_t kP = (1ULL << 61) - 1;  // Mersenne prime 2^61-1
constexpr std::uint64_t kG = 3;

std::uint64_t MulMod(std::uint64_t a, std::uint64_t b) {
  return static_cast<std::uint64_t>(
      (static_cast<__uint128_t>(a) * b) % kP);
}

}  // namespace

std::uint64_t SimDh::ModPow(std::uint64_t base, std::uint64_t exp) {
  std::uint64_t result = 1;
  base %= kP;
  while (exp > 0) {
    if (exp & 1) result = MulMod(result, base);
    base = MulMod(base, base);
    exp >>= 1;
  }
  return result;
}

SimDh::KeyPair SimDh::Generate(util::Rng& rng) {
  // Private exponent in [2, p-2].
  const std::uint64_t priv = 2 + rng.NextBounded(kP - 3);
  return KeyPair{priv, ModPow(kG, priv)};
}

std::uint64_t SimDh::Derive(std::uint64_t peer_public, std::uint64_t private_key) {
  return ModPow(peer_public, private_key);
}

SecureChannel::SecureChannel(SecurityLevel level, util::Bytes send_key,
                             util::Bytes recv_key, util::Bytes nonce_salt)
    : level_(level),
      send_key_(std::move(send_key)),
      recv_key_(std::move(recv_key)),
      nonce_salt_(std::move(nonce_salt)) {}

util::StatusOr<ChannelPair> SecureChannel::Establish(SecurityLevel level,
                                                     util::Rng& rng) {
  const SimDh::KeyPair a = SimDh::Generate(rng);
  const SimDh::KeyPair b = SimDh::Generate(rng);
  const std::uint64_t shared = SimDh::Derive(b.public_key, a.private_key);
  // Both sides arrive at the same secret; assert the algebra holds.
  if (shared != SimDh::Derive(a.public_key, b.private_key)) {
    return util::Status::Internal("DH key agreement mismatch");
  }

  util::Bytes ikm(8);
  util::StoreBe64(shared, ikm.data());
  util::Bytes salt = util::BytesOf("myrtus-channel-v1");
  const std::size_t key_len =
      SuiteFor(level).encryption == SymAlg::kAes256Gcm ? 32 : 16;
  // key_i2r || key_r2i || nonce_salt(12)
  const util::Bytes okm =
      HkdfSha256(ikm, salt, SecurityLevelName(level), 2 * key_len + 12);
  util::Bytes k_i2r(okm.begin(), okm.begin() + static_cast<long>(key_len));
  util::Bytes k_r2i(okm.begin() + static_cast<long>(key_len),
                    okm.begin() + static_cast<long>(2 * key_len));
  util::Bytes nonce_salt(okm.end() - 12, okm.end());

  return ChannelPair{SecureChannel(level, k_i2r, k_r2i, nonce_salt),
                     SecureChannel(level, k_r2i, k_i2r, nonce_salt)};
}

util::Bytes SecureChannel::NonceFor(std::uint64_t seq) const {
  util::Bytes nonce = nonce_salt_;
  // XOR the sequence number into the last 8 bytes (TLS 1.3 style).
  for (int i = 0; i < 8; ++i) {
    nonce[4 + static_cast<std::size_t>(i)] ^=
        static_cast<std::uint8_t>(seq >> (56 - 8 * i));
  }
  return nonce;
}

util::StatusOr<util::Bytes> SecureChannel::Seal(const util::Bytes& plaintext) {
  const std::uint64_t seq = send_seq_++;
  util::Bytes aad(8);
  util::StoreBe64(seq, aad.data());
  const util::Bytes nonce = NonceFor(seq);
  switch (SuiteFor(level_).encryption) {
    case SymAlg::kAscon128: {
      util::Bytes nonce16 = nonce;
      nonce16.resize(16, 0);
      return Ascon128Seal(send_key_, nonce16, aad, plaintext);
    }
    default:
      return AesGcmSeal(send_key_, nonce, aad, plaintext);
  }
}

util::StatusOr<util::Bytes> SecureChannel::Open(const util::Bytes& record) {
  const std::uint64_t seq = recv_seq_;
  util::Bytes aad(8);
  util::StoreBe64(seq, aad.data());
  const util::Bytes nonce = NonceFor(seq);
  util::StatusOr<util::Bytes> pt = util::Status::Internal("unreached");
  switch (SuiteFor(level_).encryption) {
    case SymAlg::kAscon128: {
      util::Bytes nonce16 = nonce;
      nonce16.resize(16, 0);
      pt = Ascon128Open(recv_key_, nonce16, aad, record);
      break;
    }
    default:
      pt = AesGcmOpen(recv_key_, nonce, aad, record);
  }
  if (pt.ok()) ++recv_seq_;  // only advance on success so retries can work
  return pt;
}

}  // namespace myrtus::security
