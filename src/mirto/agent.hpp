// The MIRTO Cognitive Engine agent (Fig. 3): a per-layer/component service
// exposing a REST-like API daemon (TOSCA deployment requests, authenticated
// by the Authentication Module and checked by the TOSCA Validation
// Processor), a MIRTO Manager unifying the four optimization drivers, and
// proxies toward the Knowledge Base and the deployment mechanism. The agent
// runs the MAPE-K loop of §IV: sense → evaluate → decide → reconfigure.
//
// The loop is event-driven by default (MonitorPath::kIncremental): Monitor
// drains the infrastructure ChangeTracker and visits only nodes that mutated
// since the previous iteration, Analyze touches only down/healing nodes, and
// Plan only dirty nodes plus those whose decaying utilization is predicted to
// cross the eco-point threshold. The historical full-walk path is kept behind
// set_monitor_path(MonitorPath::kFull) and is differentially tested to
// produce byte-identical registry records, SLO states, trust scores, and
// planned decisions.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "continuum/infrastructure.hpp"
#include "kb/registry.hpp"
#include "kb/store.hpp"
#include "mirto/managers.hpp"
#include "net/transport.hpp"
#include "sched/controller.hpp"
#include "security/hmac.hpp"
#include "telemetry/slo.hpp"
#include "tosca/csar.hpp"

namespace myrtus::mirto {

/// HMAC-based bearer-token authentication (Fig. 3 "Authentication Module").
class AuthModule {
 public:
  explicit AuthModule(util::Bytes shared_secret);

  /// Issues a token for a principal: "<principal>.<hex hmac>".
  [[nodiscard]] std::string IssueToken(const std::string& principal) const;
  /// Validates; returns the principal or UNAUTHENTICATED.
  [[nodiscard]] util::StatusOr<std::string> Authenticate(
      const std::string& token) const;

 private:
  util::Bytes secret_;
};

/// The objectives every agent self-monitors by default: fleet availability
/// (fraction of continuum nodes up) and pod start wait (time from deployment
/// request to binding). Both use the sim-scale burn-rate windows.
std::vector<telemetry::SloObjective> DefaultAgentSlos();

/// How Monitor/Analyze/Plan observe the fleet: the historical O(all nodes,
/// all pending pods) walk, or the change-epoch/watch-event incremental path.
enum class MonitorPath : std::uint8_t { kFull, kIncremental };

struct AgentConfig {
  std::string host;                 // network address of this agent
  sim::SimTime mape_period = sim::SimTime::Millis(250);
  PlacementStrategy strategy = PlacementStrategy::kGreedy;
  std::string gateway_anchor;       // host used for latency costs
  std::uint64_t seed = 1;
  MonitorPath monitor_path = MonitorPath::kIncremental;
  /// SLO verdicts are re-published to the KB only when the state changes or
  /// a burn rate moves across a bucket of this width (0 = publish always).
  double slo_publish_quantum = 0.25;
  /// Self-monitoring objectives evaluated each Analyze pass. A breach marks
  /// the fleet dirty (reallocation) and is written back to the KB under
  /// /slo/<host>/<objective> — the loop observing itself.
  std::vector<telemetry::SloObjective> slo_objectives = DefaultAgentSlos();
};

/// Counters the Fig-3 bench reads out.
struct AgentStats {
  std::uint64_t deployments_accepted = 0;
  std::uint64_t deployments_rejected = 0;
  std::uint64_t mape_iterations = 0;
  std::uint64_t reallocations = 0;
  std::uint64_t operating_point_changes = 0;
  std::uint64_t auth_failures = 0;
  std::uint64_t slo_breaches = 0;   // Ok -> Breach transitions, all objectives
  std::uint64_t nodes_observed = 0;  // Monitor node visits (records written)
  std::uint64_t slo_publishes = 0;   // PutSloState writes actually issued
};

class MirtoAgent {
 public:
  /// The agent orchestrates `cluster` (its slice of the continuum), reads and
  /// writes the local KB replica `kb_store`, and serves its API on
  /// `config.host` of `network`.
  MirtoAgent(net::Network& network, sched::Cluster& cluster,
             continuum::Infrastructure& infra, kb::Store& kb_store,
             AuthModule auth, AgentConfig config);

  /// Registers the API daemon endpoints ("mirto.deploy", "mirto.status") and
  /// starts the periodic MAPE-K loop.
  void Start();
  void Stop();

  /// Local (in-process) deployment entry — same path the API daemon uses:
  /// validate the CSAR, lower to pods, plan with the managers, execute.
  /// Redeploying an application with the same entry name updates it in place
  /// (old pods are removed first) — the paper's CH2 "dynamically updated for
  /// continuous optimization".
  util::Status Deploy(const tosca::CsarPackage& package);
  /// Removes every pod of a previously deployed application.
  util::Status Undeploy(const std::string& app_name);
  [[nodiscard]] std::vector<std::string> DeployedApps() const;

  /// One MAPE-K iteration (also invoked by the periodic loop).
  void RunMapeIteration();

  /// Switches between the full-walk and incremental observation paths. Safe
  /// mid-run: the incremental caches are rebuilt (all nodes re-observed) on
  /// the first iteration after switching to kIncremental.
  void set_monitor_path(MonitorPath path);
  [[nodiscard]] MonitorPath monitor_path() const { return monitor_path_; }

  [[nodiscard]] const AgentStats& stats() const { return stats_; }
  [[nodiscard]] WlManager& wl_manager() { return wl_; }
  [[nodiscard]] NodeManager& node_manager() { return node_; }
  [[nodiscard]] NetworkManager& network_manager() { return netmgr_; }
  [[nodiscard]] PrivacySecurityManager& security_manager() { return psm_; }
  [[nodiscard]] kb::ResourceRegistry& registry() { return registry_; }
  [[nodiscard]] const std::string& host() const { return config_.host; }
  [[nodiscard]] telemetry::SloEngine& slo_engine() { return slo_; }
  /// Operating-point changes planned by the most recent Plan pass (only
  /// changed decisions) — the differential tests compare these across paths.
  [[nodiscard]] const std::vector<NodeManager::Decision>& planned_decisions()
      const {
    return planned_points_;
  }

 private:
  void Monitor();   // sample PMCs into the registry (KB)
  void Analyze();   // detect violations, mark pending work
  void Plan();      // consult managers
  void Execute();   // apply decisions

  void MonitorFull(std::int64_t now_ns);
  void MonitorIncremental(std::int64_t now_ns);
  /// Writes one node's registry record + telemetry and refreshes the cached
  /// up/down, healing, and availability bookkeeping for it.
  void ObserveNode(std::size_t index, std::int64_t now_ns);
  void AnalyzeFullTrust();
  void AnalyzeIncrementalTrust();
  void EvaluateAndPublishSlos(telemetry::ScopedSpan& span,
                              std::int64_t now_ns);
  void PlanFull();
  void PlanIncremental(std::int64_t now_ns);
  /// Predicts when a device's (strictly decaying, absent new work)
  /// utilization will cross below the eco threshold and queues the node for
  /// a Plan visit at that time.
  void QueuePlanCrossing(std::size_t index, std::int64_t now_ns);

  /// Lazily registers the ChangeTracker listener (incremental path only).
  void EnsureTrackerListener();
  /// Begins tracking a just-deployed pod's start wait. Pods the workload
  /// manager bound synchronously during Deploy are credited immediately.
  void TrackPodCreated(const std::string& pod_name, std::int64_t created_ns);
  void UntrackPod(const std::string& pod_name);
  /// Records bound waits and pending ages into pod.start_wait; both paths.
  void FlushPodStartWaits(std::int64_t now_ns);

  net::Network& network_;
  sched::Cluster& cluster_;
  continuum::Infrastructure& infra_;
  kb::Store& kb_;
  kb::ResourceRegistry registry_;
  AuthModule auth_;
  AgentConfig config_;

  WlManager wl_;
  NodeManager node_;
  NetworkManager netmgr_;
  PrivacySecurityManager psm_;

  AgentStats stats_;
  sim::EventHandle loop_;
  bool reallocation_needed_ = false;
  // Set asynchronously by the KB watch when a component record disappears
  // (lease expiry / explicit removal); consumed by the next Analyze pass.
  bool failure_signal_ = false;
  std::int64_t registry_watch_ = 0;
  std::vector<NodeManager::Decision> planned_points_;
  std::map<std::string, std::vector<std::string>> app_pods_;  // app -> pods
  telemetry::SloEngine slo_;

  /// --- Incremental observation state -------------------------------------
  MonitorPath monitor_path_;
  int tracker_listener_ = -1;
  // True while the agent itself writes /registry/nodes/ records, so the KB
  // watch does not mirror its own writes back into the dirty set.
  bool self_registry_write_ = false;
  std::vector<std::size_t> iter_dirty_;   // drained once per iteration
  std::vector<std::uint8_t> observed_up_;  // last observed up/down per index
  std::size_t observed_up_count_ = 0;
  // Analyze attention sets: nodes currently observed down (record a failure
  // outcome each iteration) and up nodes whose trust has not yet recovered
  // to exactly 1.0 (record successes until it converges — the 0.95x + 0.05
  // update reaches 1.0 in finitely many steps in double precision, after
  // which further successes are no-ops the full walk also performs).
  std::set<std::size_t> down_nodes_;
  std::set<std::size_t> healing_nodes_;
  // Plan visit prediction: min-heap of (crossing sim-time ns, node index)
  // with at most one queued entry per node.
  std::priority_queue<std::pair<std::int64_t, std::size_t>,
                      std::vector<std::pair<std::int64_t, std::size_t>>,
                      std::greater<>>
      plan_crossings_;
  std::vector<std::int64_t> plan_queued_cross_ns_;  // 0 = none queued
  std::vector<std::size_t> plan_visit_;

  /// --- Pod start-wait tracking (event-driven) -----------------------------
  struct PendingTrack {
    std::int64_t created_ns = 0;
    bool old = false;  // already aged past the latency threshold
  };
  // Pods awaiting their first binding. Maintained by the Cluster pod-event
  // hooks in both paths; the full path sweeps it per iteration (historical
  // behaviour), the incremental path records one bulk good/bad observation.
  std::map<std::string, PendingTrack> pending_pods_;
  // Pending pods in creation order, advanced past the age threshold lazily.
  std::deque<std::pair<std::int64_t, std::string>> pending_young_;
  std::size_t pending_old_ = 0;
  // Deploy-to-bind waits (ms) captured by the bind hook, flushed by Monitor.
  std::map<std::string, double> bound_waits_;
  std::int64_t pending_threshold_ns_ = 0;

  /// --- SLO publish-on-change cache ----------------------------------------
  struct SloPublished {
    bool valid = false;
    telemetry::SloState state = telemetry::SloState::kOk;
    std::int64_t fast_bucket = 0;
    std::int64_t slow_bucket = 0;
    std::uint64_t breaches = 0;
  };
  std::map<std::string, SloPublished> slo_published_;
};

}  // namespace myrtus::mirto
