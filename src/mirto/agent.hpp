// The MIRTO Cognitive Engine agent (Fig. 3): a per-layer/component service
// exposing a REST-like API daemon (TOSCA deployment requests, authenticated
// by the Authentication Module and checked by the TOSCA Validation
// Processor), a MIRTO Manager unifying the four optimization drivers, and
// proxies toward the Knowledge Base and the deployment mechanism. The agent
// runs the MAPE-K loop of §IV: sense → evaluate → decide → reconfigure.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "continuum/infrastructure.hpp"
#include "kb/registry.hpp"
#include "kb/store.hpp"
#include "mirto/managers.hpp"
#include "net/transport.hpp"
#include "sched/controller.hpp"
#include "security/hmac.hpp"
#include "telemetry/slo.hpp"
#include "tosca/csar.hpp"

namespace myrtus::mirto {

/// HMAC-based bearer-token authentication (Fig. 3 "Authentication Module").
class AuthModule {
 public:
  explicit AuthModule(util::Bytes shared_secret);

  /// Issues a token for a principal: "<principal>.<hex hmac>".
  [[nodiscard]] std::string IssueToken(const std::string& principal) const;
  /// Validates; returns the principal or UNAUTHENTICATED.
  [[nodiscard]] util::StatusOr<std::string> Authenticate(
      const std::string& token) const;

 private:
  util::Bytes secret_;
};

/// The objectives every agent self-monitors by default: fleet availability
/// (fraction of continuum nodes up) and pod start wait (time from deployment
/// request to binding). Both use the sim-scale burn-rate windows.
std::vector<telemetry::SloObjective> DefaultAgentSlos();

struct AgentConfig {
  std::string host;                 // network address of this agent
  sim::SimTime mape_period = sim::SimTime::Millis(250);
  PlacementStrategy strategy = PlacementStrategy::kGreedy;
  std::string gateway_anchor;       // host used for latency costs
  std::uint64_t seed = 1;
  /// Self-monitoring objectives evaluated each Analyze pass. A breach marks
  /// the fleet dirty (reallocation) and is written back to the KB under
  /// /slo/<host>/<objective> — the loop observing itself.
  std::vector<telemetry::SloObjective> slo_objectives = DefaultAgentSlos();
};

/// Counters the Fig-3 bench reads out.
struct AgentStats {
  std::uint64_t deployments_accepted = 0;
  std::uint64_t deployments_rejected = 0;
  std::uint64_t mape_iterations = 0;
  std::uint64_t reallocations = 0;
  std::uint64_t operating_point_changes = 0;
  std::uint64_t auth_failures = 0;
  std::uint64_t slo_breaches = 0;   // Ok -> Breach transitions, all objectives
};

class MirtoAgent {
 public:
  /// The agent orchestrates `cluster` (its slice of the continuum), reads and
  /// writes the local KB replica `kb_store`, and serves its API on
  /// `config.host` of `network`.
  MirtoAgent(net::Network& network, sched::Cluster& cluster,
             continuum::Infrastructure& infra, kb::Store& kb_store,
             AuthModule auth, AgentConfig config);

  /// Registers the API daemon endpoints ("mirto.deploy", "mirto.status") and
  /// starts the periodic MAPE-K loop.
  void Start();
  void Stop();

  /// Local (in-process) deployment entry — same path the API daemon uses:
  /// validate the CSAR, lower to pods, plan with the managers, execute.
  /// Redeploying an application with the same entry name updates it in place
  /// (old pods are removed first) — the paper's CH2 "dynamically updated for
  /// continuous optimization".
  util::Status Deploy(const tosca::CsarPackage& package);
  /// Removes every pod of a previously deployed application.
  util::Status Undeploy(const std::string& app_name);
  [[nodiscard]] std::vector<std::string> DeployedApps() const;

  /// One MAPE-K iteration (also invoked by the periodic loop).
  void RunMapeIteration();

  [[nodiscard]] const AgentStats& stats() const { return stats_; }
  [[nodiscard]] WlManager& wl_manager() { return wl_; }
  [[nodiscard]] NodeManager& node_manager() { return node_; }
  [[nodiscard]] NetworkManager& network_manager() { return netmgr_; }
  [[nodiscard]] PrivacySecurityManager& security_manager() { return psm_; }
  [[nodiscard]] kb::ResourceRegistry& registry() { return registry_; }
  [[nodiscard]] const std::string& host() const { return config_.host; }
  [[nodiscard]] telemetry::SloEngine& slo_engine() { return slo_; }

 private:
  void Monitor();   // sample PMCs into the registry (KB)
  void Analyze();   // detect violations, mark pending work
  void Plan();      // consult managers
  void Execute();   // apply decisions

  net::Network& network_;
  sched::Cluster& cluster_;
  continuum::Infrastructure& infra_;
  kb::Store& kb_;
  kb::ResourceRegistry registry_;
  AuthModule auth_;
  AgentConfig config_;

  WlManager wl_;
  NodeManager node_;
  NetworkManager netmgr_;
  PrivacySecurityManager psm_;

  AgentStats stats_;
  sim::EventHandle loop_;
  bool reallocation_needed_ = false;
  // Set asynchronously by the KB watch when a component record disappears
  // (lease expiry / explicit removal); consumed by the next Analyze pass.
  bool failure_signal_ = false;
  std::int64_t registry_watch_ = 0;
  std::vector<NodeManager::Decision> planned_points_;
  std::map<std::string, std::vector<std::string>> app_pods_;  // app -> pods
  telemetry::SloEngine slo_;
  // Pods awaiting their first binding: deploy-request sim time, consumed by
  // Monitor() into the pod.start_wait latency objective once bound.
  std::map<std::string, std::int64_t> pod_created_ns_;
};

}  // namespace myrtus::mirto
