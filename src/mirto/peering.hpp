// LIQO-style cluster peering (§IV Proxies: "LIQO allows for clustering and
// resource virtualization … achieving seamless virtualization of the
// underlying infrastructure"). A peering reflects a remote cluster's free
// capacity into the local cluster as a *virtual node*; pods bound to the
// virtual node are transparently forwarded to the remote cluster.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "sched/controller.hpp"
#include "sim/engine.hpp"

namespace myrtus::mirto {

class LiqoPeering {
 public:
  /// Peers `local` with `remote`. The virtual node appears in the local
  /// cluster under the id "liqo-<remote_name>".
  LiqoPeering(sim::Engine& engine, sched::Cluster& local, sched::Cluster& remote,
              std::string remote_name);
  ~LiqoPeering();

  LiqoPeering(const LiqoPeering&) = delete;
  LiqoPeering& operator=(const LiqoPeering&) = delete;

  /// Refreshes the virtual node's advertised capacity from the remote
  /// cluster's current free resources (periodic in production; explicit here
  /// so tests control staleness).
  void SyncCapacity();

  /// Attempts to offload a pod to the remote cluster (as LIQO does when the
  /// local scheduler binds to the virtual node). The pod name is prefixed
  /// "offloaded/" on the remote side.
  util::StatusOr<std::string> Offload(const sched::PodSpec& pod);
  /// Returns an offloaded pod's remote node, if any.
  [[nodiscard]] util::StatusOr<std::string> RemoteNodeOf(
      const std::string& pod_name) const;
  /// Releases an offloaded pod on the remote cluster.
  util::Status Reclaim(const std::string& pod_name);

  [[nodiscard]] const std::string& virtual_node_id() const { return virtual_id_; }
  [[nodiscard]] continuum::ComputeNode* virtual_node() { return virtual_node_.get(); }
  [[nodiscard]] std::size_t offloaded_count() const { return offloaded_.size(); }

 private:
  sched::Cluster& local_;
  sched::Cluster& remote_;
  std::string virtual_id_;
  std::unique_ptr<continuum::ComputeNode> virtual_node_;
  std::map<std::string, std::string> offloaded_;  // pod -> remote node
};

}  // namespace myrtus::mirto
